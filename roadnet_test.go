package roadnet_test

import (
	"bytes"
	"testing"

	"roadnet"
)

func TestFacadeQuickstart(t *testing.T) {
	g := roadnet.Generate(roadnet.GenParams{N: 500, Seed: 1})
	idx, err := roadnet.NewIndex(roadnet.CH, g, roadnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, tt := roadnet.VertexID(0), roadnet.VertexID(g.NumVertices()-1)
	d := idx.Distance(s, tt)
	if d <= 0 || d >= roadnet.Infinity {
		t.Fatalf("implausible distance %d", d)
	}
	path, pd := idx.ShortestPath(s, tt)
	if pd != d {
		t.Fatalf("path distance %d != distance %d", pd, d)
	}
	if path[0] != s || path[len(path)-1] != tt {
		t.Fatal("path endpoints wrong")
	}
}

func TestFacadeAllMethodsBuild(t *testing.T) {
	g := roadnet.Generate(roadnet.GenParams{N: 300, Seed: 2})
	for _, m := range append(roadnet.Methods(), roadnet.ALT) {
		idx, err := roadnet.NewIndex(m, g, roadnet.Config{TNR: roadnet.TNROptions{GridSize: 8}})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if idx.Method() != m {
			t.Errorf("method mismatch: %s", m)
		}
	}
}

func TestFacadePresets(t *testing.T) {
	ps := roadnet.Presets()
	if len(ps) != 10 {
		t.Fatalf("want 10 presets, got %d", len(ps))
	}
	g, err := roadnet.GeneratePreset("DE")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty preset graph")
	}
}

func TestFacadeDIMACSRoundtrip(t *testing.T) {
	g := roadnet.Generate(roadnet.GenParams{N: 200, Seed: 3})
	var gr, co bytes.Buffer
	if err := roadnet.WriteDIMACS(&gr, &co, g); err != nil {
		t.Fatal(err)
	}
	g2, err := roadnet.LoadDIMACS(&gr, &co)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("roundtrip changed the graph")
	}
}

func TestFacadeDistanceMatrix(t *testing.T) {
	g := roadnet.Generate(roadnet.GenParams{N: 400, Seed: 5})
	sources := []roadnet.VertexID{0, 7, 100}
	targets := []roadnet.VertexID{3, 200, 399, 7}
	chIdx, err := roadnet.NewIndex(roadnet.CH, g, roadnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := roadnet.NewIndex(roadnet.Dijkstra, g, roadnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fast := roadnet.DistanceMatrix(chIdx, sources, targets)
	slow := roadnet.DistanceMatrix(baseline, sources, targets)
	for i := range sources {
		for j := range targets {
			if fast[i][j] != slow[i][j] {
				t.Errorf("matrix[%d][%d]: CH %d vs baseline %d", i, j, fast[i][j], slow[i][j])
			}
		}
	}
}

func TestFacadeNearestK(t *testing.T) {
	g := roadnet.Generate(roadnet.GenParams{N: 400, Seed: 6})
	idx, err := roadnet.NewIndex(roadnet.SILC, g, roadnet.Config{
		SILC: roadnet.SILCOptions{EnableNearest: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := roadnet.NearestK(idx, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("NearestK returned %d results", len(res))
	}
	for i, nb := range res {
		if want := idx.Distance(10, nb.V); want != nb.Dist {
			t.Errorf("result %d: dist %d, index says %d", i, nb.Dist, want)
		}
	}
	// Non-SILC index must be rejected.
	chIdx, err := roadnet.NewIndex(roadnet.CH, g, roadnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := roadnet.NearestK(chIdx, 10, 3); err == nil {
		t.Error("NearestK on a CH index should error")
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	g := roadnet.Generate(roadnet.GenParams{N: 300, Seed: 7})
	idx, err := roadnet.NewIndex(roadnet.CH, g, roadnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := roadnet.SaveIndex(idx, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := roadnet.LoadIndex(roadnet.CH, &buf, g)
	if err != nil {
		t.Fatal(err)
	}
	s, tt := roadnet.VertexID(0), roadnet.VertexID(250)
	if loaded.Distance(s, tt) != idx.Distance(s, tt) {
		t.Error("loaded index disagrees with original")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	g := roadnet.Generate(roadnet.GenParams{N: 900, Seed: 4})
	qs, err := roadnet.LInfQuerySets(g, roadnet.WorkloadConfig{PairsPerSet: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Fatalf("want 10 Q sets, got %d", len(qs))
	}
	rs, err := roadnet.NetworkDistanceQuerySets(g, roadnet.WorkloadConfig{PairsPerSet: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 10 {
		t.Fatalf("want 10 R sets, got %d", len(rs))
	}
}
