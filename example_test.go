package roadnet_test

import (
	"fmt"

	"roadnet"
)

// ExampleNewIndex shows the core workflow: generate (or load) a road
// network, build an index, and answer the paper's two query types.
func ExampleNewIndex() {
	g := roadnet.Generate(roadnet.GenParams{N: 1000, Seed: 1})
	idx, err := roadnet.NewIndex(roadnet.CH, g, roadnet.Config{})
	if err != nil {
		panic(err)
	}
	s, t := roadnet.VertexID(0), roadnet.VertexID(500)
	dist := idx.Distance(s, t)
	path, _ := idx.ShortestPath(s, t)
	fmt.Println(dist == roadnet.Infinity, len(path) > 1, path[0] == s)
	// Output: false true true
}

// ExampleDistanceMatrix computes a many-to-many table with the CH bucket
// algorithm.
func ExampleDistanceMatrix() {
	g := roadnet.Generate(roadnet.GenParams{N: 500, Seed: 2})
	idx, err := roadnet.NewIndex(roadnet.CH, g, roadnet.Config{})
	if err != nil {
		panic(err)
	}
	depots := []roadnet.VertexID{1, 2}
	customers := []roadnet.VertexID{100, 200, 300}
	matrix := roadnet.DistanceMatrix(idx, depots, customers)
	fmt.Println(len(matrix), len(matrix[0]), matrix[0][0] > 0)
	// Output: 2 3 true
}

// ExampleNearestK finds the nearest vertices by network distance with a
// SILC index built for distance browsing.
func ExampleNearestK() {
	g := roadnet.Generate(roadnet.GenParams{N: 500, Seed: 3})
	idx, err := roadnet.NewIndex(roadnet.SILC, g, roadnet.Config{
		SILC: roadnet.SILCOptions{EnableNearest: true},
	})
	if err != nil {
		panic(err)
	}
	nearest, err := roadnet.NearestK(idx, 42, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(nearest), nearest[0].Dist <= nearest[1].Dist)
	// Output: 3 true
}

// ExampleLInfQuerySets generates the paper's Q1..Q10 workloads.
func ExampleLInfQuerySets() {
	g := roadnet.Generate(roadnet.GenParams{N: 1000, Seed: 4})
	sets, err := roadnet.LInfQuerySets(g, roadnet.WorkloadConfig{PairsPerSet: 10, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(sets), sets[0].Name, sets[9].Name, sets[0].Lo < sets[9].Lo)
	// Output: 10 Q1 Q10 true
}
