// Package pq implements the addressable binary min-heap used by every
// Dijkstra-style search in this repository. Items are identified by a dense
// int32 id (a vertex id), keys are int64 distances, and DecreaseKey is
// supported through an id -> heap position index.
package pq

// Heap is an addressable binary min-heap keyed by int64 priorities.
// The zero value is not usable; call New.
type Heap struct {
	ids  []int32 // heap order
	keys []int64 // keys[i] is the key of ids[i]
	pos  []int32 // pos[id] = index in ids, or -1 when absent
}

// New returns a heap able to hold ids in [0, capacity).
func New(capacity int) *Heap {
	h := &Heap{pos: make([]int32, capacity)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of items currently on the heap.
func (h *Heap) Len() int { return len(h.ids) }

// Empty reports whether the heap holds no items.
func (h *Heap) Empty() bool { return len(h.ids) == 0 }

// Clear removes all items. It runs in time proportional to the number of
// items on the heap, not the capacity.
func (h *Heap) Clear() {
	for _, id := range h.ids {
		h.pos[id] = -1
	}
	h.ids = h.ids[:0]
	h.keys = h.keys[:0]
}

// Contains reports whether id is currently on the heap.
func (h *Heap) Contains(id int32) bool { return h.pos[id] >= 0 }

// Key returns the current key of id. It must only be called when
// Contains(id) is true.
func (h *Heap) Key(id int32) int64 { return h.keys[h.pos[id]] }

// Push inserts id with the given key, or decreases/increases its key if the
// id is already present.
func (h *Heap) Push(id int32, key int64) {
	if p := h.pos[id]; p >= 0 {
		old := h.keys[p]
		h.keys[p] = key
		if key < old {
			h.up(int(p))
		} else if key > old {
			h.down(int(p))
		}
		return
	}
	h.ids = append(h.ids, id)
	h.keys = append(h.keys, key)
	h.pos[id] = int32(len(h.ids) - 1)
	h.up(len(h.ids) - 1)
}

// Min returns the id and key of the minimum item without removing it.
// It must only be called on a non-empty heap.
func (h *Heap) Min() (id int32, key int64) { return h.ids[0], h.keys[0] }

// Pop removes and returns the id with the smallest key.
// It must only be called on a non-empty heap.
func (h *Heap) Pop() (id int32, key int64) {
	id, key = h.ids[0], h.keys[0]
	last := len(h.ids) - 1
	h.swap(0, last)
	h.pos[id] = -1
	h.ids = h.ids[:last]
	h.keys = h.keys[:last]
	if last > 0 {
		h.down(0)
	}
	return id, key
}

func (h *Heap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] <= h.keys[i] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.ids)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && h.keys[r] < h.keys[l] {
			small = r
		}
		if h.keys[i] <= h.keys[small] {
			return
		}
		h.swap(i, small)
		i = small
	}
}
