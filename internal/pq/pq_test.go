package pq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapBasic(t *testing.T) {
	h := New(10)
	if !h.Empty() {
		t.Fatal("new heap should be empty")
	}
	h.Push(3, 30)
	h.Push(1, 10)
	h.Push(2, 20)
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if id, key := h.Min(); id != 1 || key != 10 {
		t.Fatalf("Min = (%d, %d), want (1, 10)", id, key)
	}
	id, key := h.Pop()
	if id != 1 || key != 10 {
		t.Fatalf("Pop = (%d, %d), want (1, 10)", id, key)
	}
	if h.Contains(1) {
		t.Fatal("popped id should not be contained")
	}
	if !h.Contains(2) || h.Key(2) != 20 {
		t.Fatal("id 2 should be on the heap with key 20")
	}
}

func TestHeapDecreaseKey(t *testing.T) {
	h := New(5)
	h.Push(0, 100)
	h.Push(1, 50)
	h.Push(2, 75)
	h.Push(0, 10) // decrease
	if id, key := h.Min(); id != 0 || key != 10 {
		t.Fatalf("after decrease, Min = (%d, %d), want (0, 10)", id, key)
	}
	h.Push(0, 200) // increase is allowed too
	if id, _ := h.Min(); id != 1 {
		t.Fatalf("after increase, Min id = %d, want 1", id)
	}
}

func TestHeapClear(t *testing.T) {
	h := New(4)
	h.Push(0, 1)
	h.Push(3, 2)
	h.Clear()
	if !h.Empty() || h.Contains(0) || h.Contains(3) {
		t.Fatal("Clear did not reset heap")
	}
	h.Push(3, 9)
	if id, key := h.Pop(); id != 3 || key != 9 {
		t.Fatalf("heap unusable after Clear: got (%d, %d)", id, key)
	}
}

func TestHeapSortsRandomKeys(t *testing.T) {
	const n = 2000
	rng := rand.New(rand.NewSource(42))
	h := New(n)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
		h.Push(int32(i), keys[i])
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 0; i < n; i++ {
		_, key := h.Pop()
		if key != keys[i] {
			t.Fatalf("pop %d: key %d, want %d", i, key, keys[i])
		}
	}
	if !h.Empty() {
		t.Fatal("heap should be empty after popping everything")
	}
}

func TestHeapRandomMixedOps(t *testing.T) {
	// Model-based test against a map.
	rng := rand.New(rand.NewSource(7))
	const capacity = 64
	h := New(capacity)
	model := map[int32]int64{}
	for op := 0; op < 20000; op++ {
		switch rng.Intn(3) {
		case 0, 1: // push/update
			id := int32(rng.Intn(capacity))
			key := rng.Int63n(1000)
			h.Push(id, key)
			model[id] = key
		case 2: // pop
			if len(model) == 0 {
				continue
			}
			id, key := h.Pop()
			want, ok := model[id]
			if !ok || want != key {
				t.Fatalf("op %d: popped (%d, %d), model has %d (present=%v)", op, id, key, want, ok)
			}
			for mid, mkey := range model {
				if mkey < key {
					t.Fatalf("op %d: popped key %d but model holds smaller key %d (id %d)", op, key, mkey, mid)
				}
			}
			delete(model, id)
		}
	}
	if h.Len() != len(model) {
		t.Fatalf("length mismatch: heap %d, model %d", h.Len(), len(model))
	}
}
