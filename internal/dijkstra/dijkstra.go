// Package dijkstra implements Dijkstra's algorithm and the bidirectional
// variant of Pohl that the paper uses as its baseline (§3.1). A reusable,
// generation-stamped search context makes repeated queries cheap: arrays are
// allocated once per context and invalidated in O(1) between queries.
//
// The unidirectional search doubles as the ground truth in tests and as the
// workhorse of the preprocessing phases of TNR, SILC and PCPD.
package dijkstra

import (
	"context"
	"sort"

	"roadnet/internal/cancel"
	"roadnet/internal/graph"
	"roadnet/internal/pq"
)

// Context holds the per-search state for unidirectional Dijkstra runs on a
// fixed graph. A Context is not safe for concurrent use; create one context
// per goroutine.
type Context struct {
	g      *graph.Graph
	dist   []int64
	parent []int32 // arc-entering predecessor vertex, -1 at sources
	gen    []uint32
	cur    uint32
	heap   *pq.Heap

	// target marking, generation-stamped so Run does not pay O(n) setup
	targetGen []uint32

	// settled vertices of the last run, in settle order
	settled []graph.VertexID
}

// NewContext returns a context for searches on g.
func NewContext(g *graph.Graph) *Context {
	n := g.NumVertices()
	return &Context{
		g:         g,
		dist:      make([]int64, n),
		parent:    make([]int32, n),
		gen:       make([]uint32, n),
		heap:      pq.New(n),
		targetGen: make([]uint32, n),
	}
}

// Graph returns the graph this context searches.
func (c *Context) Graph() *graph.Graph { return c.g }

func (c *Context) reset() {
	c.cur++
	if c.cur == 0 { // uint32 wrap: invalidate everything explicitly
		for i := range c.gen {
			c.gen[i] = 0
			c.targetGen[i] = 0
		}
		c.cur = 1
	}
	c.heap.Clear()
	c.settled = c.settled[:0]
}

func (c *Context) visit(v graph.VertexID, d int64, parent int32) {
	if c.gen[v] != c.cur {
		c.gen[v] = c.cur
		c.dist[v] = d
		c.parent[v] = parent
		c.heap.Push(v, d)
	} else if d < c.dist[v] && c.heap.Contains(v) {
		c.dist[v] = d
		c.parent[v] = parent
		c.heap.Push(v, d)
	}
}

// Dist returns the distance of v computed by the last search, or
// graph.Infinity if v was not reached.
func (c *Context) Dist(v graph.VertexID) int64 {
	if c.gen[v] != c.cur {
		return graph.Infinity
	}
	return c.dist[v]
}

// Reached reports whether v was reached (settled or queued) by the last search.
func (c *Context) Reached(v graph.VertexID) bool { return c.gen[v] == c.cur }

// Settled returns the vertices settled by the last search in settle order.
// The slice is reused between runs; callers must not retain it.
func (c *Context) Settled() []graph.VertexID { return c.settled }

// Parent returns the predecessor of v on the shortest-path tree of the last
// search, or -1 for sources and unreached vertices.
func (c *Context) Parent(v graph.VertexID) graph.VertexID {
	if c.gen[v] != c.cur {
		return -1
	}
	return c.parent[v]
}

// PathTo reconstructs the path from the source of the last search to t as a
// vertex sequence, or nil if t was not reached.
func (c *Context) PathTo(t graph.VertexID) []graph.VertexID {
	if c.gen[t] != c.cur {
		return nil
	}
	var rev []graph.VertexID
	for v := t; v >= 0; v = c.parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Options controls optional termination rules of Run.
type Options struct {
	// Targets, when non-nil, stops the search once all target vertices have
	// been settled (or the queue empties).
	Targets []graph.VertexID
	// MaxDist, when positive, stops the search once the minimum queue key
	// exceeds MaxDist; vertices beyond it are left unreached.
	MaxDist int64
	// MaxSettled, when positive, stops after settling that many vertices.
	MaxSettled int
	// SettleTies, combined with Targets, keeps settling until the queue
	// minimum exceeds the distance of the last settled target, so that
	// every vertex at least as close as the farthest target is settled.
	// TNR's access-node computation needs this to cover tied shortest
	// paths exactly.
	SettleTies bool
}

// Run executes Dijkstra's algorithm from the given sources (multi-source is
// used by preprocessing code) and returns the number of settled vertices.
func (c *Context) Run(sources []graph.VertexID, opt Options) int {
	n, _ := c.RunContext(context.Background(), sources, opt)
	return n
}

// RunContext is Run with cancellation: the settle loop polls ctx every
// cancel.Interval settles and aborts with its error, leaving the context
// in the partial state of the interrupted search. The online spatial
// queries (network k-NN fallback, network range) run their bounded
// searches through this so a disconnected client stops consuming CPU
// within a bounded number of settles.
func (c *Context) RunContext(ctx context.Context, sources []graph.VertexID, opt Options) (int, error) {
	c.reset()
	for _, s := range sources {
		c.visit(s, 0, -1)
	}
	remaining := 0
	haveTargets := opt.Targets != nil
	if haveTargets {
		for _, t := range opt.Targets {
			if c.targetGen[t] != c.cur {
				c.targetGen[t] = c.cur
				remaining++
			}
		}
	}
	tieBound := int64(-1)
	for !c.heap.Empty() {
		if err := cancel.Poll(ctx, len(c.settled)); err != nil {
			return len(c.settled), err
		}
		v, d := c.heap.Pop()
		if opt.MaxDist > 0 && d > opt.MaxDist {
			return len(c.settled), nil
		}
		if tieBound >= 0 && d > tieBound {
			return len(c.settled), nil
		}
		c.settled = append(c.settled, v)
		if haveTargets && c.targetGen[v] == c.cur {
			remaining--
			if remaining == 0 {
				if !opt.SettleTies {
					return len(c.settled), nil
				}
				tieBound = d
			}
		}
		if opt.MaxSettled > 0 && len(c.settled) >= opt.MaxSettled {
			return len(c.settled), nil
		}
		lo, hi := c.g.ArcsOf(v)
		for a := lo; a < hi; a++ {
			c.visit(c.g.Head(a), d+int64(c.g.ArcWeight(a)), int32(v))
		}
	}
	return len(c.settled), nil
}

// KNearest returns the k vertices nearest to s by network distance,
// excluding s itself, ordered by (distance, id) ascending — the bounded
// search settles until k vertices are found, then keeps settling ties of
// the k-th distance so the (distance, id)-minimal set is exact. Distances
// are available via Dist afterwards. This is the oracle the spatial tier
// falls back to when the index cannot accelerate k-NN, and the ground
// truth its accelerated answers must match bit for bit.
func (c *Context) KNearest(ctx context.Context, s graph.VertexID, k int) ([]graph.VertexID, error) {
	if k <= 0 {
		return nil, nil
	}
	c.reset()
	c.visit(s, 0, -1)
	out := make([]graph.VertexID, 0, k)
	bound := int64(-1)
	for !c.heap.Empty() {
		if err := cancel.Poll(ctx, len(c.settled)); err != nil {
			return nil, err
		}
		v, d := c.heap.Pop()
		if bound >= 0 && d > bound {
			break
		}
		c.settled = append(c.settled, v)
		if v != s {
			out = append(out, v)
			if len(out) == k && bound < 0 {
				bound = d // settle remaining ties of the k-th distance
			}
		}
		lo, hi := c.g.ArcsOf(v)
		for a := lo; a < hi; a++ {
			c.visit(c.g.Head(a), d+int64(c.g.ArcWeight(a)), int32(v))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c.dist[out[i]] != c.dist[out[j]] {
			return c.dist[out[i]] < c.dist[out[j]]
		}
		return out[i] < out[j]
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// ShortestPath runs a single-pair query and returns the path and distance,
// or (nil, graph.Infinity) when t is unreachable from s.
func (c *Context) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	c.Run([]graph.VertexID{s}, Options{Targets: []graph.VertexID{t}})
	if !c.Reached(t) {
		return nil, graph.Infinity
	}
	return c.PathTo(t), c.Dist(t)
}

// Distance runs a single-pair distance query.
func (c *Context) Distance(s, t graph.VertexID) int64 {
	c.Run([]graph.VertexID{s}, Options{Targets: []graph.VertexID{t}})
	return c.Dist(t)
}

// PathWeight sums the edge weights along a vertex path, verifying that each
// hop is an existing edge. It returns graph.Infinity if a hop is missing.
// Tests use it to validate the paths returned by every technique.
func PathWeight(g *graph.Graph, path []graph.VertexID) int64 {
	if len(path) == 0 {
		return graph.Infinity
	}
	var total int64
	for i := 0; i+1 < len(path); i++ {
		w, ok := g.HasEdge(path[i], path[i+1])
		if !ok {
			return graph.Infinity
		}
		total += int64(w)
	}
	return total
}
