package dijkstra

import (
	"context"

	"roadnet/internal/cancel"
	"roadnet/internal/graph"
	"roadnet/internal/pq"
)

// Bidirectional implements the bidirectional Dijkstra's algorithm of §3.1:
// two simultaneous Dijkstra instances grow shortest-path trees from s and t,
// and the shortest path is found either at the meeting vertex or across an
// edge joining the two search scopes. It is the paper's baseline technique
// and also the fallback TNR uses for local queries.
//
// A Bidirectional is not safe for concurrent use.
type Bidirectional struct {
	g *graph.Graph

	dist   [2][]int64
	parent [2][]int32
	gen    [2][]uint32
	cur    [2]uint32
	heap   [2]*pq.Heap

	// pathBuf and pathIter are the searcher-owned scratch behind OpenPath
	// and the path collectors: the parent walk is assembled into pathBuf
	// (reused across queries, so steady-state path production allocates
	// nothing) and streamed from pathIter.
	pathBuf  []graph.VertexID
	pathIter graph.SlicePath
}

// NewBidirectional returns a reusable bidirectional searcher on g.
func NewBidirectional(g *graph.Graph) *Bidirectional {
	n := g.NumVertices()
	b := &Bidirectional{g: g}
	for side := 0; side < 2; side++ {
		b.dist[side] = make([]int64, n)
		b.parent[side] = make([]int32, n)
		b.gen[side] = make([]uint32, n)
		b.heap[side] = pq.New(n)
	}
	return b
}

func (b *Bidirectional) reset() {
	for side := 0; side < 2; side++ {
		b.cur[side]++
		if b.cur[side] == 0 {
			for i := range b.gen[side] {
				b.gen[side][i] = 0
			}
			b.cur[side] = 1
		}
		b.heap[side].Clear()
	}
}

func (b *Bidirectional) visit(side int, v graph.VertexID, d int64, parent int32) {
	if b.gen[side][v] != b.cur[side] {
		b.gen[side][v] = b.cur[side]
		b.dist[side][v] = d
		b.parent[side][v] = parent
		b.heap[side].Push(v, d)
	} else if d < b.dist[side][v] && b.heap[side].Contains(v) {
		b.dist[side][v] = d
		b.parent[side][v] = parent
		b.heap[side].Push(v, d)
	}
}

func (b *Bidirectional) reached(side int, v graph.VertexID) bool {
	return b.gen[side][v] == b.cur[side]
}

// Result carries the outcome of one bidirectional query.
type Result struct {
	// Dist is the shortest-path distance, or graph.Infinity if t is
	// unreachable from s.
	Dist int64
	// Meet is the vertex on the shortest path where the two search trees
	// join, or -1 when unreachable.
	Meet graph.VertexID
	// Settled is the total number of vertices settled by both searches,
	// reported so benchmarks can compare search-space sizes.
	Settled int
}

// Query computes the shortest-path distance between s and t. The returned
// Result's Meet vertex can be passed to Path to reconstruct the path.
func (b *Bidirectional) Query(s, t graph.VertexID) Result {
	r, _ := b.QueryContext(context.Background(), s, t)
	return r
}

// QueryContext is Query with cancellation: the search polls ctx every
// cancel.Interval settled vertices and aborts with ctx's error when it is
// done, so a long search on a large network stops within a bounded number
// of settles of the request being cancelled.
func (b *Bidirectional) QueryContext(ctx context.Context, s, t graph.VertexID) (Result, error) {
	// Per the cancellation contract, an already-cancelled context aborts
	// before any work, trivial s == t queries included.
	if err := ctx.Err(); err != nil {
		return Result{Dist: graph.Infinity, Meet: -1}, err
	}
	b.reset()
	if s == t {
		return Result{Dist: 0, Meet: s}, nil
	}
	b.visit(0, s, 0, -1)
	b.visit(1, t, 0, -1)

	best := graph.Infinity
	meet := graph.VertexID(-1)
	settled := 0

	for !b.heap[0].Empty() || !b.heap[1].Empty() {
		if err := cancel.Poll(ctx, settled); err != nil {
			return Result{Dist: graph.Infinity, Meet: -1, Settled: settled}, err
		}
		// Alternate by smaller queue head; a finished side stops expanding.
		k0, k1 := graph.Infinity, graph.Infinity
		if !b.heap[0].Empty() {
			_, k0 = b.heap[0].Min()
		}
		if !b.heap[1].Empty() {
			_, k1 = b.heap[1].Min()
		}
		// Termination: with best maintained on every arc relaxation, no
		// undiscovered s-t path can be shorter than topF + topB, so the two
		// traversals may stop once that sum reaches best. Each search then
		// explores a ball of roughly dist(s, t)/2, the behaviour §3.1
		// describes.
		if k0+k1 >= best {
			break
		}
		side := 0
		if k1 < k0 {
			side = 1
		}
		v, d := b.heap[side].Pop()
		settled++
		other := 1 - side
		lo, hi := b.g.ArcsOf(v)
		for a := lo; a < hi; a++ {
			w := b.g.Head(a)
			nd := d + int64(b.g.ArcWeight(a))
			b.visit(side, w, nd, int32(v))
			// Check for a crossing through w.
			if b.reached(other, w) {
				if total := nd + b.dist[other][w]; total < best {
					best = total
					meet = w
				}
			}
		}
	}
	if meet < 0 {
		return Result{Dist: graph.Infinity, Meet: -1, Settled: settled}, nil
	}
	return Result{Dist: best, Meet: meet, Settled: settled}, nil
}

// fillPath assembles the s-t path of the last Query call into the
// searcher-owned scratch buffer and returns it (nil when unreachable).
// The slice is invalidated by the next path reconstruction.
func (b *Bidirectional) fillPath(r Result) []graph.VertexID {
	if r.Meet < 0 {
		return nil
	}
	fwd := b.pathBuf[:0]
	if !b.reached(0, r.Meet) {
		// s == t query: the search never ran, the path is the single vertex.
		fwd = append(fwd, r.Meet)
		b.pathBuf = fwd
		return fwd
	}
	for v := r.Meet; v >= 0; v = b.parent[0][v] {
		fwd = append(fwd, v)
		if b.parent[0][v] < 0 {
			break
		}
	}
	for i, j := 0, len(fwd)-1; i < j; i, j = i+1, j-1 {
		fwd[i], fwd[j] = fwd[j], fwd[i]
	}
	for v := b.parent[1][r.Meet]; v >= 0; v = b.parent[1][v] {
		fwd = append(fwd, v)
		if b.parent[1][v] < 0 {
			break
		}
	}
	b.pathBuf = fwd
	return fwd
}

// Path reconstructs the s-t path of the last Query call from its Result as
// a caller-owned slice. It returns nil when the result was unreachable.
func (b *Bidirectional) Path(r Result) []graph.VertexID {
	scratch := b.fillPath(r)
	if scratch == nil {
		return nil
	}
	return append(make([]graph.VertexID, 0, len(scratch)), scratch...)
}

// OpenPath runs the query and returns a PathIterator over the shortest
// path plus its length, or (nil, Infinity, nil) when t is unreachable. The
// parent walk is assembled into searcher-owned scratch, so streaming a
// path allocates nothing in steady state; the iterator is invalidated by
// this searcher's next query.
func (b *Bidirectional) OpenPath(ctx context.Context, s, t graph.VertexID) (graph.PathIterator, int64, error) {
	r, err := b.QueryContext(ctx, s, t)
	if err != nil {
		return nil, graph.Infinity, err
	}
	if r.Dist >= graph.Infinity {
		return nil, graph.Infinity, nil
	}
	b.pathIter.Reset(b.fillPath(r))
	return &b.pathIter, r.Dist, nil
}

// Distance is a convenience wrapper returning only the distance.
func (b *Bidirectional) Distance(s, t graph.VertexID) int64 {
	return b.Query(s, t).Dist
}

// ShortestPath is a convenience wrapper returning the path and distance.
func (b *Bidirectional) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	r := b.Query(s, t)
	if r.Dist >= graph.Infinity {
		return nil, graph.Infinity
	}
	return b.Path(r), r.Dist
}

// DistanceContext is Distance with cancellation (see QueryContext).
func (b *Bidirectional) DistanceContext(ctx context.Context, s, t graph.VertexID) (int64, error) {
	r, err := b.QueryContext(ctx, s, t)
	return r.Dist, err
}

// ShortestPathContext is ShortestPath with cancellation (see QueryContext).
// It is a thin collector over OpenPath: the iterator is drained into a
// fresh caller-owned slice.
func (b *Bidirectional) ShortestPathContext(ctx context.Context, s, t graph.VertexID) ([]graph.VertexID, int64, error) {
	it, d, err := b.OpenPath(ctx, s, t)
	if err != nil || it == nil {
		return nil, graph.Infinity, err
	}
	path, err := graph.AppendPath(make([]graph.VertexID, 0, len(b.pathBuf)), it)
	if err != nil {
		return nil, graph.Infinity, err
	}
	return path, d, nil
}
