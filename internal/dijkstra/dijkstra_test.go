package dijkstra_test

import (
	"testing"

	"roadnet/internal/dijkstra"
	"roadnet/internal/gen"
	"roadnet/internal/graph"
	"roadnet/internal/testutil"
)

// figure1Distances lists ground-truth distances on the paper's Figure 1
// network, verified by hand against the paper's worked examples.
var figure1Distances = []struct {
	s, t graph.VertexID
	d    int64
}{
	{testutil.V3, testutil.V8, 2}, // via v1 (the c1 shortcut example)
	{testutil.V3, testutil.V7, 6}, // the paper's CH query example
	{testutil.V1, testutil.V7, 5}, // the paper's TNR query example
	{testutil.V8, testutil.V4, 3}, // SILC: passes through v6
	{testutil.V8, testutil.V5, 3},
	{testutil.V8, testutil.V6, 2},
	{testutil.V8, testutil.V7, 4},
	{testutil.V8, testutil.V1, 1},
	{testutil.V8, testutil.V3, 2},
	{testutil.V8, testutil.V2, 2},
	{testutil.V7, testutil.V6, 2}, // the c2 shortcut
	{testutil.V7, testutil.V8, 4}, // the c3 shortcut
	{testutil.V1, testutil.V1, 0},
}

func TestDijkstraFigure1(t *testing.T) {
	g := testutil.Figure1()
	ctx := dijkstra.NewContext(g)
	for _, c := range figure1Distances {
		if got := ctx.Distance(c.s, c.t); got != c.d {
			t.Errorf("dist(v%d, v%d) = %d, want %d", c.s+1, c.t+1, got, c.d)
		}
	}
}

func TestDijkstraPathValid(t *testing.T) {
	g := testutil.Figure1()
	ctx := dijkstra.NewContext(g)
	for _, c := range figure1Distances {
		path, d := ctx.ShortestPath(c.s, c.t)
		if d != c.d {
			t.Errorf("ShortestPath(v%d, v%d) distance = %d, want %d", c.s+1, c.t+1, d, c.d)
		}
		if len(path) == 0 || path[0] != c.s || path[len(path)-1] != c.t {
			t.Errorf("path endpoints wrong: %v", path)
		}
		if w := dijkstra.PathWeight(g, path); w != c.d && !(c.s == c.t && w == graph.Infinity) {
			if c.s == c.t {
				continue // single-vertex path has no edges; PathWeight is 0
			}
			t.Errorf("path %v weighs %d, want %d", path, w, c.d)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	// Two disconnected components.
	g := gen.RandomConnected(5, 3, 10, 1)
	// Build a disconnected graph: two copies side by side.
	b := graph.NewBuilder(10)
	for i := 0; i < 10; i++ {
		b.AddVertex(g.Coord(graph.VertexID(i % 5)))
	}
	for _, e := range g.Edges() {
		_ = b.AddEdge(e.U, e.V, e.Weight)
		_ = b.AddEdge(e.U+5, e.V+5, e.Weight)
	}
	dg := b.Build()
	ctx := dijkstra.NewContext(dg)
	if d := ctx.Distance(0, 7); d != graph.Infinity {
		t.Errorf("distance across components = %d, want Infinity", d)
	}
	if p, _ := ctx.ShortestPath(0, 7); p != nil {
		t.Errorf("path across components = %v, want nil", p)
	}
}

func TestDijkstraEarlyTermination(t *testing.T) {
	g := testutil.SmallRoad(900, 5)
	ctx := dijkstra.NewContext(g)
	full := ctx.Run([]graph.VertexID{0}, dijkstra.Options{})
	if full != g.NumVertices() {
		t.Fatalf("full run settled %d of %d vertices", full, g.NumVertices())
	}
	// Terminating at a single nearby target must settle far fewer vertices.
	target := g.Head(0) // a neighbor of vertex 0 exists by connectivity
	few := ctx.Run([]graph.VertexID{0}, dijkstra.Options{Targets: []graph.VertexID{target}})
	if few > full/2 {
		t.Errorf("targeted run settled %d vertices, expected far fewer than %d", few, full)
	}
	if !ctx.Reached(target) {
		t.Error("target not reached")
	}
}

func TestDijkstraMaxDistAndMaxSettled(t *testing.T) {
	g := testutil.SmallRoad(900, 6)
	ctx := dijkstra.NewContext(g)
	ctx.Run([]graph.VertexID{0}, dijkstra.Options{MaxSettled: 10})
	if n := len(ctx.Settled()); n != 10 {
		t.Errorf("MaxSettled: settled %d, want 10", n)
	}
	ctx.Run([]graph.VertexID{0}, dijkstra.Options{MaxDist: 1})
	for _, v := range ctx.Settled() {
		if ctx.Dist(v) > 1 {
			t.Errorf("MaxDist violated: vertex %d at distance %d", v, ctx.Dist(v))
		}
	}
}

func TestDijkstraMultiSource(t *testing.T) {
	g := testutil.Figure1()
	ctx := dijkstra.NewContext(g)
	ctx.Run([]graph.VertexID{testutil.V3, testutil.V7}, dijkstra.Options{})
	// v8 is at distance 2 from v3 and 4 from v7; multi-source takes the min.
	if d := ctx.Dist(testutil.V8); d != 2 {
		t.Errorf("multi-source dist(v8) = %d, want 2", d)
	}
	if d := ctx.Dist(testutil.V5); d != 1 {
		t.Errorf("multi-source dist(v5) = %d, want 1 (from v7)", d)
	}
}

func TestContextReuseAcrossQueries(t *testing.T) {
	g := testutil.SmallRoad(400, 7)
	ctx := dijkstra.NewContext(g)
	fresh := dijkstra.NewContext(g)
	pairs := testutil.SamplePairs(g, 50, 3)
	for _, p := range pairs {
		if got, want := ctx.Distance(p[0], p[1]), fresh.Distance(p[0], p[1]); got != want {
			t.Fatalf("reused context differs: dist(%d,%d)=%d want %d", p[0], p[1], got, want)
		}
	}
}

func TestBidirectionalFigure1(t *testing.T) {
	g := testutil.Figure1()
	bi := dijkstra.NewBidirectional(g)
	for _, c := range figure1Distances {
		r := bi.Query(c.s, c.t)
		if r.Dist != c.d {
			t.Errorf("bidi dist(v%d, v%d) = %d, want %d", c.s+1, c.t+1, r.Dist, c.d)
		}
	}
}

func TestBidirectionalMatchesDijkstraOnRoadNetwork(t *testing.T) {
	g := testutil.SmallRoad(900, 11)
	bi := dijkstra.NewBidirectional(g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 200, 1),
		func(s, tt graph.VertexID) int64 { return bi.Query(s, tt).Dist })
}

func TestBidirectionalMatchesDijkstraOnAdversarialGraph(t *testing.T) {
	g := gen.RandomConnected(150, 300, 1000, 99)
	bi := dijkstra.NewBidirectional(g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g)[:2000],
		func(s, tt graph.VertexID) int64 { return bi.Query(s, tt).Dist })
}

func TestBidirectionalPaths(t *testing.T) {
	g := testutil.SmallRoad(400, 13)
	bi := dijkstra.NewBidirectional(g)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 100, 2), bi.ShortestPath)
}

func TestBidirectionalSameVertex(t *testing.T) {
	g := testutil.Figure1()
	bi := dijkstra.NewBidirectional(g)
	r := bi.Query(testutil.V4, testutil.V4)
	if r.Dist != 0 {
		t.Errorf("dist(v, v) = %d, want 0", r.Dist)
	}
	if p := bi.Path(r); len(p) != 1 || p[0] != testutil.V4 {
		t.Errorf("path(v, v) = %v, want [v4]", p)
	}
}

func TestBidirectionalSearchSpaceSmaller(t *testing.T) {
	// §3.1: each bidirectional traversal reaches ~dist/2, so the combined
	// settled count is usually smaller than unidirectional Dijkstra's.
	g := testutil.SmallRoad(2500, 17)
	bi := dijkstra.NewBidirectional(g)
	ctx := dijkstra.NewContext(g)
	var uniTotal, biTotal int
	for _, p := range testutil.SamplePairs(g, 30, 5) {
		if p[0] == p[1] {
			continue
		}
		uniTotal += ctx.Run([]graph.VertexID{p[0]}, dijkstra.Options{Targets: []graph.VertexID{p[1]}})
		biTotal += bi.Query(p[0], p[1]).Settled
	}
	if biTotal >= uniTotal {
		t.Errorf("bidirectional settled %d >= unidirectional %d; expected smaller search space", biTotal, uniTotal)
	}
}

func TestPathWeightRejectsFakePath(t *testing.T) {
	g := testutil.Figure1()
	if w := dijkstra.PathWeight(g, []graph.VertexID{testutil.V1, testutil.V7}); w != graph.Infinity {
		t.Errorf("fake path weight = %d, want Infinity", w)
	}
	if w := dijkstra.PathWeight(g, nil); w != graph.Infinity {
		t.Errorf("empty path weight = %d, want Infinity", w)
	}
	if w := dijkstra.PathWeight(g, []graph.VertexID{testutil.V3, testutil.V1, testutil.V8}); w != 2 {
		t.Errorf("valid path weight = %d, want 2", w)
	}
}
