package dijkstra_test

import (
	"context"
	"errors"
	"testing"

	"roadnet/internal/cancel"
	"roadnet/internal/dijkstra"
	"roadnet/internal/graph"
	"roadnet/internal/testutil"
)

// countdownCtx reports Done after its Err method has been consulted a given
// number of times — a deterministic stand-in for a context cancelled
// mid-query, independent of wall-clock timing.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// TestQueryContextAbortsMidSearch proves the bounded-interval cancellation
// contract on the baseline search: the context stays live for exactly one
// poll, so the query starts working and must stop at the second poll —
// within cancel.Interval settles, far before the search would complete.
func TestQueryContextAbortsMidSearch(t *testing.T) {
	g := testutil.SmallRoad(4000, 41)
	bi := dijkstra.NewBidirectional(g)

	// Pick the sampled pair whose full search settles the most vertices.
	var longest [2]graph.VertexID
	maxSettled := 0
	for _, p := range testutil.SamplePairs(g, 50, 653) {
		if r := bi.Query(p[0], p[1]); r.Dist < graph.Infinity && r.Settled > maxSettled {
			longest, maxSettled = p, r.Settled
		}
	}
	if maxSettled <= 2*cancel.Interval {
		t.Fatalf("largest sampled search settles only %d vertices; need > %d for a meaningful abort test",
			maxSettled, 2*cancel.Interval)
	}
	want := bi.Query(longest[0], longest[1]).Dist

	ctx := &countdownCtx{Context: context.Background(), remaining: 1}
	r, err := bi.QueryContext(ctx, longest[0], longest[1])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext with mid-search cancellation: err = %v, want context.Canceled", err)
	}
	if r.Settled > 2*cancel.Interval {
		t.Fatalf("aborted search settled %d vertices, want <= %d (bounded abort)", r.Settled, 2*cancel.Interval)
	}
	if r.Settled >= maxSettled {
		t.Fatalf("aborted search settled %d vertices, no fewer than the full search's %d", r.Settled, maxSettled)
	}

	// The searcher is reusable and exact after the mid-search abort.
	if d, err := bi.DistanceContext(context.Background(), longest[0], longest[1]); err != nil || d != want {
		t.Fatalf("after abort: dist = %d, err = %v, want %d, nil", d, err, want)
	}
}

// TestQueryContextDeadline checks the deadline form of cancellation: an
// expired deadline aborts the search with context.DeadlineExceeded before
// any work is done.
func TestQueryContextDeadline(t *testing.T) {
	g := testutil.SmallRoad(900, 41)
	bi := dijkstra.NewBidirectional(g)
	ctx, cancelFn := context.WithTimeout(context.Background(), -1)
	defer cancelFn()
	r, err := bi.QueryContext(ctx, 0, graph.VertexID(g.NumVertices()-1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("QueryContext past deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if r.Settled != 0 {
		t.Fatalf("expired-deadline search settled %d vertices, want 0", r.Settled)
	}
}
