package geom

import (
	"testing"
	"testing/quick"
)

func TestNormalizerCellBounds(t *testing.T) {
	n := NewNormalizer(Rect{MinX: -100, MinY: -100, MaxX: 99, MaxY: 99}, 4)
	if n.Bits() != 4 {
		t.Fatalf("Bits = %d", n.Bits())
	}
	if n.CodeSpaceSize() != 1<<8 {
		t.Fatalf("CodeSpaceSize = %d, want 256", n.CodeSpaceSize())
	}
	cases := []struct {
		p    Point
		x, y uint32
	}{
		{Point{X: -100, Y: -100}, 0, 0},
		{Point{X: 99, Y: 99}, 15, 15},
		{Point{X: 5, Y: 5}, 8, 8},         // 105/200 * 16 = 8.4 -> cell 8
		{Point{X: -1000, Y: 1000}, 0, 15}, // clamped
	}
	for _, c := range cases {
		x, y := n.Cell(c.p)
		if x != c.x || y != c.y {
			t.Errorf("Cell(%v) = (%d, %d), want (%d, %d)", c.p, x, y, c.x, c.y)
		}
	}
}

func TestNormalizerCodeWithinSpace(t *testing.T) {
	bounds := Rect{MinX: -5000, MinY: 17, MaxX: 70000, MaxY: 90001}
	for _, bits := range []uint{1, 8, 16} {
		n := NewNormalizer(bounds, bits)
		f := func(x, y int32) bool {
			return n.Code(Point{X: x, Y: y}) < n.CodeSpaceSize()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("bits=%d: %v", bits, err)
		}
	}
}

func TestNormalizerOrderPreserving(t *testing.T) {
	// Monotonicity per axis: larger coordinate never maps to a smaller cell.
	n := NewNormalizer(Rect{MinX: 0, MinY: 0, MaxX: 1 << 20, MaxY: 1 << 20}, 10)
	f := func(a, b uint32) bool {
		x1, x2 := int32(a%(1<<20)), int32(b%(1<<20))
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		c1, _ := n.Cell(Point{X: x1})
		c2, _ := n.Cell(Point{X: x2})
		return c1 <= c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizerPanicsOnBadBits(t *testing.T) {
	for _, bits := range []uint{0, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d should panic", bits)
				}
			}()
			NewNormalizer(Rect{MaxX: 10, MaxY: 10}, bits)
		}()
	}
}
