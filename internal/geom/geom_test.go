package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLInf(t *testing.T) {
	cases := []struct {
		p, q Point
		want int64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 4},
		{Point{0, 0}, Point{-5, 2}, 5},
		{Point{-3, -3}, Point{3, 3}, 6},
		{Point{2147483647, 0}, Point{-2147483648, 0}, 4294967295},
	}
	for _, c := range cases {
		if got := c.p.LInf(c.q); got != c.want {
			t.Errorf("LInf(%v, %v) = %d, want %d", c.p, c.q, got, c.want)
		}
		if got := c.q.LInf(c.p); got != c.want {
			t.Errorf("LInf(%v, %v) = %d, want %d (symmetry)", c.q, c.p, got, c.want)
		}
	}
}

func TestLInfProperties(t *testing.T) {
	// Triangle inequality and non-negativity on random points.
	f := func(ax, ay, bx, by, cx, cy int32) bool {
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		dab, dbc, dac := a.LInf(b), b.LInf(c), a.LInf(c)
		return dab >= 0 && dac <= dab+dbc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Point{10, 20}, Point{-5, 3})
	if r.MinX != -5 || r.MaxX != 10 || r.MinY != 3 || r.MaxY != 20 {
		t.Fatalf("NewRect normalized wrong: %+v", r)
	}
	for _, p := range []Point{{-5, 3}, {10, 20}, {0, 10}, {-5, 20}} {
		if !r.Contains(p) {
			t.Errorf("rect %+v should contain %v", r, p)
		}
	}
	for _, p := range []Point{{-6, 3}, {11, 20}, {0, 2}, {0, 21}} {
		if r.Contains(p) {
			t.Errorf("rect %+v should not contain %v", r, p)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{5, 5, 15, 15}, true},
		{Rect{10, 10, 20, 20}, true}, // corner touch counts
		{Rect{11, 0, 20, 10}, false},
		{Rect{0, 11, 10, 20}, false},
		{Rect{-10, -10, -1, -1}, false},
		{Rect{2, 2, 3, 3}, true}, // containment
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%+v, %+v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects(%+v, %+v) = %v, want %v (symmetry)", c.b, a, got, c.want)
		}
		if a.Disjoint(c.b) == c.want {
			t.Errorf("Disjoint(%+v, %+v) should be %v", a, c.b, !c.want)
		}
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 5, 5}
	b := Rect{-3, 2, 2, 9}
	u := a.Union(b)
	want := Rect{-3, 0, 5, 9}
	if u != want {
		t.Errorf("Union = %+v, want %+v", u, want)
	}
}

func TestBoundingRect(t *testing.T) {
	if got := BoundingRect(nil); got != (Rect{}) {
		t.Errorf("BoundingRect(nil) = %+v, want zero", got)
	}
	pts := []Point{{3, 4}, {-1, 7}, {5, -2}}
	want := Rect{-1, -2, 5, 7}
	if got := BoundingRect(pts); got != want {
		t.Errorf("BoundingRect = %+v, want %+v", got, want)
	}
	for _, p := range pts {
		if !BoundingRect(pts).Contains(p) {
			t.Errorf("bounding rect must contain %v", p)
		}
	}
}

func TestMortonRoundtrip(t *testing.T) {
	cases := []struct{ x, y uint32 }{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0xffffffff, 0}, {0, 0xffffffff},
		{0xffffffff, 0xffffffff}, {12345, 67890},
	}
	for _, c := range cases {
		z := MortonEncode(c.x, c.y)
		x, y := MortonDecode(z)
		if x != c.x || y != c.y {
			t.Errorf("roundtrip(%d, %d) = (%d, %d)", c.x, c.y, x, y)
		}
	}
}

func TestMortonRoundtripProperty(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := MortonDecode(MortonEncode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMortonOrderWithinQuadrant(t *testing.T) {
	// All codes of the quadrant [0,2^k) x [0,2^k) are less than any code
	// with a coordinate bit above k set in an enclosing aligned square —
	// i.e. a quadrant forms a contiguous Morton interval. Spot-check the
	// interval property for the 4x4 quadrant of an 8x8 square.
	maxInQuad := uint64(0)
	for x := uint32(0); x < 4; x++ {
		for y := uint32(0); y < 4; y++ {
			if z := MortonEncode(x, y); z > maxInQuad {
				maxInQuad = z
			}
		}
	}
	if maxInQuad != 15 {
		t.Errorf("4x4 quadrant max Morton code = %d, want 15", maxInQuad)
	}
	for x := uint32(4); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			if z := MortonEncode(x, y); z <= maxInQuad {
				t.Errorf("code (%d, %d) = %d should exceed quadrant max %d", x, y, z, maxInQuad)
			}
		}
	}
}

func TestGridCellOf(t *testing.T) {
	g := NewGrid(Rect{0, 0, 1023, 1023}, 16, 16)
	w, h := g.CellSize()
	if w != 64 || h != 64 {
		t.Fatalf("cell size = (%d, %d), want (64, 64)", w, h)
	}
	cases := []struct {
		p        Point
		col, row int
	}{
		{Point{0, 0}, 0, 0},
		{Point{63, 63}, 0, 0},
		{Point{64, 0}, 1, 0},
		{Point{1023, 1023}, 15, 15},
		{Point{-100, 5000}, 0, 15}, // clamped
	}
	for _, c := range cases {
		col, row := g.CellOf(c.p)
		if col != c.col || row != c.row {
			t.Errorf("CellOf(%v) = (%d, %d), want (%d, %d)", c.p, col, row, c.col, c.row)
		}
	}
}

func TestGridCellRectPartition(t *testing.T) {
	// Every point in bounds falls in exactly the cell whose rect contains it.
	g := NewGrid(Rect{-50, -50, 49, 49}, 4, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := Point{int32(rng.Intn(100) - 50), int32(rng.Intn(100) - 50)}
		col, row := g.CellOf(p)
		if !g.CellRect(col, row).Contains(p) {
			t.Fatalf("point %v not in its cell rect %+v", p, g.CellRect(col, row))
		}
		count := 0
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				if g.CellRect(c, r).Contains(p) {
					count++
				}
			}
		}
		if count != 1 {
			t.Fatalf("point %v contained in %d cell rects, want 1", p, count)
		}
	}
}

func TestGridDegenerate(t *testing.T) {
	// A grid over a single point must still work.
	g := NewGrid(Rect{5, 5, 5, 5}, 8, 8)
	col, row := g.CellOf(Point{5, 5})
	if col != 0 || row != 0 {
		t.Errorf("CellOf on degenerate grid = (%d, %d)", col, row)
	}
}

func TestChebyshevCellDist(t *testing.T) {
	cases := []struct {
		ca, ra, cb, rb, want int
	}{
		{0, 0, 0, 0, 0},
		{0, 0, 3, 1, 3},
		{5, 5, 1, 9, 4},
		{2, 2, 2, 10, 8},
	}
	for _, c := range cases {
		if got := ChebyshevCellDist(c.ca, c.ra, c.cb, c.rb); got != c.want {
			t.Errorf("ChebyshevCellDist(%d,%d,%d,%d) = %d, want %d", c.ca, c.ra, c.cb, c.rb, got, c.want)
		}
	}
}

func TestNewGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid with zero cols should panic")
		}
	}()
	NewGrid(Rect{0, 0, 10, 10}, 0, 4)
}
