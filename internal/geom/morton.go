package geom

// The Z-order (Morton) curve maps 2-D cell coordinates to a 1-D key while
// preserving spatial locality. SILC stores each colored quadtree region as a
// contiguous interval of Morton codes (Samet et al.), which is the concise
// O(sqrt n)-regions-per-vertex representation the paper describes in §3.4.

// MortonEncode interleaves the bits of x and y (each at most 31 bits) into
// a single 62-bit Z-order key: bit i of x becomes bit 2i, bit i of y becomes
// bit 2i+1.
func MortonEncode(x, y uint32) uint64 {
	return spreadBits(x) | spreadBits(y)<<1
}

// MortonDecode is the inverse of MortonEncode.
func MortonDecode(z uint64) (x, y uint32) {
	return compactBits(z), compactBits(z >> 1)
}

// spreadBits inserts a zero bit between every bit of v.
func spreadBits(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compactBits removes every other bit of v, inverting spreadBits.
func compactBits(v uint64) uint32 {
	x := v & 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}
