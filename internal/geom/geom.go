// Package geom provides the planar geometry primitives shared by the
// spatial-coherence-based indexes (SILC, PCPD), the grid-based index (TNR)
// and the workload generators: integer points, rectangles, the Chebyshev
// (L-infinity) metric, Z-order (Morton) encoding and regular grids.
//
// All coordinates are int32, matching the DIMACS coordinate files the paper
// uses (micro-degrees). Arithmetic that can overflow int32 is carried out
// in int64.
package geom

// Point is a planar point with integer coordinates.
type Point struct {
	X, Y int32
}

// LInf returns the L-infinity (Chebyshev) distance between p and q.
// The paper's query sets Q1..Q10 are defined by ranges of this metric.
func (p Point) LInf(q Point) int64 {
	dx := int64(p.X) - int64(q.X)
	if dx < 0 {
		dx = -dx
	}
	dy := int64(p.Y) - int64(q.Y)
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

// Rect is a closed axis-aligned rectangle [MinX, MaxX] x [MinY, MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY int32
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	r := Rect{MinX: a.X, MinY: a.Y, MaxX: b.X, MaxY: b.Y}
	if r.MinX > r.MaxX {
		r.MinX, r.MaxX = r.MaxX, r.MinX
	}
	if r.MinY > r.MaxY {
		r.MinY, r.MaxY = r.MaxY, r.MinY
	}
	return r
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Disjoint reports whether r and s share no point.
func (r Rect) Disjoint(s Rect) bool { return !r.Intersects(s) }

// Width returns the horizontal extent of r (number of integer columns minus one).
func (r Rect) Width() int64 { return int64(r.MaxX) - int64(r.MinX) }

// Height returns the vertical extent of r.
func (r Rect) Height() int64 { return int64(r.MaxY) - int64(r.MinY) }

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if s.MinX < r.MinX {
		r.MinX = s.MinX
	}
	if s.MinY < r.MinY {
		r.MinY = s.MinY
	}
	if s.MaxX > r.MaxX {
		r.MaxX = s.MaxX
	}
	if s.MaxY > r.MaxY {
		r.MaxY = s.MaxY
	}
	return r
}

// BoundingRect returns the bounding rectangle of the given points.
// It returns the zero Rect when pts is empty.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		if p.X < r.MinX {
			r.MinX = p.X
		}
		if p.X > r.MaxX {
			r.MaxX = p.X
		}
		if p.Y < r.MinY {
			r.MinY = p.Y
		}
		if p.Y > r.MaxY {
			r.MaxY = p.Y
		}
	}
	return r
}
