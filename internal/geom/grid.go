package geom

// Grid partitions a bounding rectangle into Cols x Rows equally sized cells.
// TNR imposes such a grid on the road network (§3.3); the workload generator
// uses a 1024x1024 grid to define the L-infinity distance buckets of the
// query sets Q1..Q10 (§4.2).
type Grid struct {
	Bounds     Rect
	Cols, Rows int
	cellW      int64 // ceil(width / cols), at least 1
	cellH      int64
}

// NewGrid builds a grid of cols x rows cells over bounds. cols and rows must
// be positive.
func NewGrid(bounds Rect, cols, rows int) Grid {
	if cols <= 0 || rows <= 0 {
		panic("geom: grid dimensions must be positive")
	}
	g := Grid{Bounds: bounds, Cols: cols, Rows: rows}
	g.cellW = divCeil(bounds.Width()+1, int64(cols))
	if g.cellW < 1 {
		g.cellW = 1
	}
	g.cellH = divCeil(bounds.Height()+1, int64(rows))
	if g.cellH < 1 {
		g.cellH = 1
	}
	return g
}

func divCeil(a, b int64) int64 { return (a + b - 1) / b }

// CellSize returns the width and height of one grid cell.
func (g Grid) CellSize() (w, h int64) { return g.cellW, g.cellH }

// CellOf returns the column and row of the cell containing p. Points outside
// the bounds are clamped to the border cells, which keeps every vertex of a
// network inside the grid even if its coordinates sit on the boundary.
func (g Grid) CellOf(p Point) (col, row int) {
	col = int((int64(p.X) - int64(g.Bounds.MinX)) / g.cellW)
	row = int((int64(p.Y) - int64(g.Bounds.MinY)) / g.cellH)
	if col < 0 {
		col = 0
	}
	if col >= g.Cols {
		col = g.Cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.Rows {
		row = g.Rows - 1
	}
	return col, row
}

// CellIndex returns a dense index for cell (col, row).
func (g Grid) CellIndex(col, row int) int { return row*g.Cols + col }

// NumCells returns the total number of cells.
func (g Grid) NumCells() int { return g.Cols * g.Rows }

// CellRect returns the rectangle covered by cell (col, row), clipped to the
// grid bounds.
func (g Grid) CellRect(col, row int) Rect {
	minX := int64(g.Bounds.MinX) + int64(col)*g.cellW
	minY := int64(g.Bounds.MinY) + int64(row)*g.cellH
	maxX := minX + g.cellW - 1
	maxY := minY + g.cellH - 1
	if maxX > int64(g.Bounds.MaxX) {
		maxX = int64(g.Bounds.MaxX)
	}
	if maxY > int64(g.Bounds.MaxY) {
		maxY = int64(g.Bounds.MaxY)
	}
	return Rect{MinX: int32(minX), MinY: int32(minY), MaxX: int32(maxX), MaxY: int32(maxY)}
}

// ChebyshevCellDist returns the Chebyshev distance between two cells, i.e.
// max(|dc|, |dr|). TNR's locality filter is expressed in this metric: cell B
// lies beyond the outer shell (the boundary of the 9x9 block) of cell A iff
// ChebyshevCellDist(A, B) > 4, and inside/on the 5x5 inner block iff <= 2.
func ChebyshevCellDist(colA, rowA, colB, rowB int) int {
	dc := colA - colB
	if dc < 0 {
		dc = -dc
	}
	dr := rowA - rowB
	if dr < 0 {
		dr = -dr
	}
	if dc > dr {
		return dc
	}
	return dr
}
