package geom

// Normalizer maps points of a bounding rectangle onto a 2^Bits x 2^Bits
// integer grid, the coordinate space in which SILC's and PCPD's quadtrees
// and Z-order intervals live.
type Normalizer struct {
	bounds Rect
	bits   uint
	scaleX int64 // fixed-point multiplier: cell = (p - min) * scale >> shift
	scaleY int64
}

// normShift is the fixed-point precision of the normalizer.
const normShift = 32

// NewNormalizer builds a normalizer of the given rectangle onto a grid with
// bits bits per axis (1 <= bits <= 16).
func NewNormalizer(bounds Rect, bits uint) Normalizer {
	if bits < 1 || bits > 16 {
		panic("geom: normalizer bits out of range")
	}
	cells := int64(1) << bits
	w := bounds.Width() + 1
	h := bounds.Height() + 1
	return Normalizer{
		bounds: bounds,
		bits:   bits,
		scaleX: (cells << normShift) / w,
		scaleY: (cells << normShift) / h,
	}
}

// Bits returns the grid resolution per axis.
func (n Normalizer) Bits() uint { return n.bits }

// Cell returns the grid cell of p, clamping out-of-bounds points.
func (n Normalizer) Cell(p Point) (x, y uint32) {
	cells := int64(1) << n.bits
	cx := ((int64(p.X) - int64(n.bounds.MinX)) * n.scaleX) >> normShift
	cy := ((int64(p.Y) - int64(n.bounds.MinY)) * n.scaleY) >> normShift
	if cx < 0 {
		cx = 0
	}
	if cx >= cells {
		cx = cells - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= cells {
		cy = cells - 1
	}
	return uint32(cx), uint32(cy)
}

// Code returns the Morton code of p's grid cell; codes occupy 2*Bits bits.
func (n Normalizer) Code(p Point) uint64 {
	x, y := n.Cell(p)
	return MortonEncode(x, y)
}

// CodeSpaceSize returns the exclusive upper bound of the code space.
func (n Normalizer) CodeSpaceSize() uint64 { return 1 << (2 * n.bits) }
