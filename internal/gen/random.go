package gen

import (
	"math/rand"

	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// RandomConnected produces a small random connected graph that is *not*
// grid-like: a random spanning tree plus extraEdges random chords, with
// uniformly random weights and random coordinates. It deliberately violates
// the spatial-coherence assumptions of road networks, which makes it a good
// adversarial input for correctness tests (every technique must stay exact
// even when its performance heuristics do not apply).
func RandomConnected(n, extraEdges int, maxWeight graph.Weight, seed int64) *graph.Graph {
	if n < 1 {
		n = 1
	}
	if maxWeight < 1 {
		maxWeight = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddVertex(geom.Point{X: int32(rng.Intn(1 << 16)), Y: int32(rng.Intn(1 << 16))})
	}
	type key struct{ u, v graph.VertexID }
	used := make(map[key]bool)
	add := func(u, v graph.VertexID) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		if used[key{u, v}] {
			return false
		}
		used[key{u, v}] = true
		_ = b.AddEdge(u, v, graph.Weight(1+rng.Intn(int(maxWeight))))
		return true
	}
	// Random spanning tree: attach each vertex to a random earlier vertex.
	for v := 1; v < n; v++ {
		add(graph.VertexID(v), graph.VertexID(rng.Intn(v)))
	}
	for i := 0; i < extraEdges; i++ {
		add(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	return b.Build()
}
