package gen

import (
	"testing"

	"roadnet/internal/graph"
)

func TestGenerateBasicProperties(t *testing.T) {
	g := Generate(Params{N: 2000, Seed: 42})
	n := g.NumVertices()
	if n < 1500 || n > 2100 {
		t.Errorf("vertex count %d far from target 2000", n)
	}
	if !graph.IsConnected(g) {
		t.Error("generated network must be connected")
	}
	if d := g.MaxDegree(); d > 8 {
		t.Errorf("max degree %d exceeds road-network bound 8", d)
	}
	// Road networks are sparse: m/n should sit well below 4.
	ratio := float64(g.NumEdges()) / float64(n)
	if ratio < 1.0 || ratio > 3.0 {
		t.Errorf("edge/vertex ratio %.2f outside road-network range", ratio)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Params{N: 500, Seed: 7})
	b := Generate(Params{N: 500, Seed: 7})
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give identical sizes")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	c := Generate(Params{N: 500, Seed: 8})
	if c.NumEdges() == a.NumEdges() && len(ea) > 0 {
		// Sizes can coincide; edge lists almost surely differ.
		diff := false
		for i, e := range c.Edges() {
			if e != ea[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical networks")
		}
	}
}

func TestGenerateWeightsPositive(t *testing.T) {
	g := Generate(Params{N: 1000, Seed: 3})
	for _, e := range g.Edges() {
		if e.Weight < 1 {
			t.Fatalf("edge %+v has non-positive weight", e)
		}
	}
}

func TestGenerateHighwayHierarchy(t *testing.T) {
	// Highway edges must be faster per unit length than local edges:
	// weights on highway rows should be smaller for similar spans.
	g := Generate(Params{N: 10000, Seed: 9})
	var minW, maxW graph.Weight = 1 << 30, 0
	for _, e := range g.Edges() {
		if e.Weight < minW {
			minW = e.Weight
		}
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	if float64(maxW) < 2*float64(minW) {
		t.Errorf("weight spread [%d, %d] too flat: no road hierarchy", minW, maxW)
	}
}

func TestGenerateTinyTarget(t *testing.T) {
	g := Generate(Params{N: 1, Seed: 1})
	if g.NumVertices() < 1 {
		t.Fatal("degenerate target must still yield vertices")
	}
	if !graph.IsConnected(g) {
		t.Error("tiny network must be connected")
	}
}

func TestPresets(t *testing.T) {
	if len(Presets) != 10 {
		t.Fatalf("want 10 presets mirroring Table 1, got %d", len(Presets))
	}
	for i := 1; i < len(Presets); i++ {
		if Presets[i].TargetN <= Presets[i-1].TargetN {
			t.Errorf("presets must grow: %s (%d) after %s (%d)",
				Presets[i].Name, Presets[i].TargetN, Presets[i-1].Name, Presets[i-1].TargetN)
		}
		if Presets[i].PaperVertices <= Presets[i-1].PaperVertices {
			t.Errorf("paper vertex counts must grow at %s", Presets[i].Name)
		}
	}
	if _, err := PresetByName("DE"); err != nil {
		t.Error(err)
	}
	if _, err := PresetByName("XX"); err == nil {
		t.Error("unknown preset should error")
	}
	names := SmallPresetNames()
	if len(names) != 4 || names[0] != "DE" || names[3] != "CO" {
		t.Errorf("SmallPresetNames = %v", names)
	}
}

func TestGeneratePresetSmallest(t *testing.T) {
	g, err := GeneratePreset("DE")
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Error("DE preset must be connected")
	}
	if n := g.NumVertices(); n < 800 || n > 1100 {
		t.Errorf("DE preset size %d far from 1000", n)
	}
	if _, err := GeneratePreset("nope"); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestRandomConnected(t *testing.T) {
	g := RandomConnected(100, 50, 20, 5)
	if g.NumVertices() != 100 {
		t.Fatalf("n = %d, want 100", g.NumVertices())
	}
	if !graph.IsConnected(g) {
		t.Error("RandomConnected must be connected")
	}
	if g.NumEdges() < 99 {
		t.Errorf("edges %d < spanning tree size", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.Weight < 1 || e.Weight > 20 {
			t.Errorf("edge weight %d outside [1, 20]", e.Weight)
		}
	}
	// Degenerate inputs.
	if g := RandomConnected(0, 0, 0, 2); g.NumVertices() != 1 {
		t.Error("n<1 should clamp to 1 vertex")
	}
}
