// Package gen produces seeded synthetic road networks that stand in for the
// Ninth DIMACS Implementation Challenge datasets of the paper's Table 1
// (real USA travel-time road graphs, which are not shipped with this
// repository). The generator reproduces the structural properties the
// evaluated techniques rely on:
//
//   - near-planar, degree-bounded topology (jittered grid with random edge
//     deletions and occasional diagonals),
//   - spatial coherence: edge weights are travel times derived from
//     Euclidean length, so nearby vertices have similar shortest paths
//     (what SILC and PCPD exploit),
//   - a road hierarchy: a sparse set of "highway" and "arterial" rows and
//     columns carry higher speeds, so some vertices are much more important
//     than others (what CH and TNR exploit).
//
// Generation is fully deterministic for a given Params, so every experiment
// is reproducible. A DIMACS reader in package graph lets the real datasets
// be substituted when available.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// Spacing is the coordinate distance between adjacent grid sites.
const Spacing = 1000

// Params configures the synthetic network generator.
type Params struct {
	// N is the target number of vertices. The generated graph has roughly
	// N vertices (the exact count depends on largest-component extraction).
	N int
	// Seed makes generation deterministic.
	Seed int64
	// DeleteFrac is the fraction of grid edges randomly removed to create
	// irregularity. Default 0.20 when zero.
	DeleteFrac float64
	// DiagFrac is the probability of adding a diagonal edge at a grid site,
	// modelling non-grid roads. Default 0.05 when zero.
	DiagFrac float64
	// HighwayEvery and ArterialEvery select the rows/columns that carry
	// high-speed roads. Defaults 24 and 6 when zero.
	HighwayEvery, ArterialEvery int
	// Jitter is the maximum coordinate perturbation as a fraction of the
	// grid spacing. Default 0.35 when zero.
	Jitter float64
}

func (p Params) withDefaults() Params {
	if p.N <= 0 {
		p.N = 1000
	}
	if p.DeleteFrac == 0 {
		p.DeleteFrac = 0.20
	}
	if p.DiagFrac == 0 {
		p.DiagFrac = 0.05
	}
	if p.HighwayEvery == 0 {
		p.HighwayEvery = 24
	}
	if p.ArterialEvery == 0 {
		p.ArterialEvery = 6
	}
	if p.Jitter == 0 {
		p.Jitter = 0.35
	}
	return p
}

// Road speed multipliers. Weights are travel times: length / speed.
const (
	speedLocal    = 1.0
	speedArterial = 1.8
	speedHighway  = 3.2
	// weightScale divides travel times into a convenient integer range.
	weightScale = 8.0
)

// Generate builds a synthetic road network from p. The result is connected,
// undirected and degree-bounded (max degree 8 by construction).
func Generate(p Params) *graph.Graph {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	side := int(math.Ceil(math.Sqrt(float64(p.N))))
	if side < 2 {
		side = 2
	}
	cols, rows := side, side

	b := graph.NewBuilder(cols * rows)
	id := func(c, r int) graph.VertexID { return graph.VertexID(r*cols + c) }
	coords := make([]geom.Point, 0, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			jx := int32((rng.Float64()*2 - 1) * p.Jitter * Spacing)
			jy := int32((rng.Float64()*2 - 1) * p.Jitter * Spacing)
			pt := geom.Point{X: int32(c*Spacing) + jx, Y: int32(r*Spacing) + jy}
			coords = append(coords, pt)
			b.AddVertex(pt)
		}
	}

	euclid := func(a, bb geom.Point) float64 {
		dx := float64(a.X) - float64(bb.X)
		dy := float64(a.Y) - float64(bb.Y)
		return math.Sqrt(dx*dx + dy*dy)
	}
	addEdge := func(u, v graph.VertexID, speed float64) {
		w := graph.Weight(math.Round(euclid(coords[u], coords[v]) / (speed * weightScale)))
		if w < 1 {
			w = 1
		}
		// Builder rejects only self-loops/bad ids, which cannot occur here.
		_ = b.AddEdge(u, v, w)
	}
	rowSpeed := func(r int) float64 {
		switch {
		case r%p.HighwayEvery == 0:
			return speedHighway
		case r%p.ArterialEvery == 0:
			return speedArterial
		default:
			return speedLocal
		}
	}

	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := id(c, r)
			if c+1 < cols && rng.Float64() >= p.DeleteFrac {
				addEdge(u, id(c+1, r), rowSpeed(r))
			}
			if r+1 < rows && rng.Float64() >= p.DeleteFrac {
				addEdge(u, id(c, r+1), rowSpeed(c))
			}
			if c+1 < cols && r+1 < rows && rng.Float64() < p.DiagFrac {
				addEdge(u, id(c+1, r+1), speedLocal)
			}
		}
	}

	g := b.Build()
	g, _ = graph.LargestComponent(g)
	return g
}

// Preset names a scaled analogue of one of the paper's Table 1 datasets.
type Preset struct {
	// Name matches the paper's dataset name (DE, NH, ..., US).
	Name string
	// Region is the paper's "Corresponding Region" column.
	Region string
	// PaperVertices and PaperEdges are the Table 1 values, kept for the
	// Table 1 reproduction printout.
	PaperVertices, PaperEdges int
	// TargetN is the scaled vertex count generated here.
	TargetN int
	// Seed fixes the generated network.
	Seed int64
}

// Presets mirrors Table 1 of the paper at roughly 1/120 scale, preserving
// the relative sizes of the ten datasets. The four smallest are the ones on
// which SILC and PCPD remain feasible, exactly as in the paper.
var Presets = []Preset{
	{Name: "DE", Region: "Delaware", PaperVertices: 48812, PaperEdges: 120489, TargetN: 1000, Seed: 101},
	{Name: "NH", Region: "New Hampshire", PaperVertices: 115055, PaperEdges: 264218, TargetN: 2400, Seed: 102},
	{Name: "ME", Region: "Maine", PaperVertices: 187315, PaperEdges: 422998, TargetN: 3900, Seed: 103},
	{Name: "CO", Region: "Colorado", PaperVertices: 435666, PaperEdges: 1057066, TargetN: 9000, Seed: 104},
	{Name: "FL", Region: "Florida", PaperVertices: 1070376, PaperEdges: 2712798, TargetN: 22000, Seed: 105},
	{Name: "CA", Region: "California and Nevada", PaperVertices: 1890815, PaperEdges: 4657742, TargetN: 39000, Seed: 106},
	{Name: "E-US", Region: "Eastern US", PaperVertices: 3598623, PaperEdges: 8778114, TargetN: 75000, Seed: 107},
	{Name: "W-US", Region: "Western US", PaperVertices: 6262104, PaperEdges: 15248146, TargetN: 130000, Seed: 108},
	{Name: "C-US", Region: "Central US", PaperVertices: 14081816, PaperEdges: 34292496, TargetN: 200000, Seed: 109},
	{Name: "US", Region: "United States", PaperVertices: 23947347, PaperEdges: 58333344, TargetN: 320000, Seed: 110},
}

// PresetByName returns the preset with the given name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("gen: unknown preset %q", name)
}

// GeneratePreset generates the scaled analogue of the named Table 1 dataset.
func GeneratePreset(name string) (*graph.Graph, error) {
	p, err := PresetByName(name)
	if err != nil {
		return nil, err
	}
	return Generate(Params{N: p.TargetN, Seed: p.Seed}), nil
}

// SmallPresetNames lists the four smallest datasets, the only ones on which
// the paper could run SILC and PCPD within its 24 GB budget.
func SmallPresetNames() []string { return []string{"DE", "NH", "ME", "CO"} }
