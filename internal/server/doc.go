// Package server exposes a road-network query index over HTTP with a small
// JSON API — the "online map service" deployment shape the paper's
// introduction motivates (responsive query processing over memory-resident
// indexes).
//
// Endpoints:
//
//	GET  /v1/distance?from=ID&to=ID     distance query (§2)
//	GET  /v1/route?from=ID&to=ID        shortest path query (§2)
//	GET  /v1/nearest?x=X&y=Y            nearest vertex to a coordinate
//	GET  /v1/stats                      index and graph statistics
//	POST /v1/knn                        network k-nearest neighbors
//	POST /v1/within                     network range (vertices within a distance)
//	POST /v1/batch/distance             source x target distance matrix
//	POST /v1/batch/route                source x target full-path matrix
//
// Spatial tier: /v1/nearest snaps coordinates through a core.SpatialLocator
// (an STR-packed R-tree over the vertex coordinates — point location is
// O(log n), not a grid scan), /v1/route accepts from_x/from_y (to_x/to_y)
// coordinate endpoints snapped the same way, and /v1/knn + /v1/within
// answer the Appendix A "nearest restaurant at driving distance" workload:
// k-NN by network distance (SILC distance browsing seeded with R-tree
// candidates when the index supports it, bounded Dijkstra otherwise — the
// answers are bit-identical either way) and network range with an optional
// R-tree geometric pre-filter.
//
// Concurrency: the index data of every technique is immutable after
// construction, so the server shares one Index across all request
// goroutines and hands each request a per-goroutine query context from a
// core.Pool — there is no global query lock, and throughput scales with
// cores.
//
// Batch acceleration: the batch endpoints answer an entire sources x
// targets matrix in one request, and the distance matrix is computed with
// the best per-technique accelerator (see core.Pool.BatchDistance): CH runs
// the bucket many-to-many algorithm (one search per endpoint), TNR one
// table-lookup sweep with per-endpoint access-node operands hoisted, SILC
// target-wise walks with shared path-suffix memoization; every other
// technique answers the pairs point-to-point on a pooled searcher. Batch
// route answers are always computed per pair so they are path-identical to
// sequential /v1/route calls.
//
// Cancellation: every handler propagates r.Context() into the query, and
// every technique's search loop polls it at bounded intervals (see the
// core.Searcher cancellation contract), so a client that disconnects or
// times out stops burning server CPU within a bounded number of search
// steps — even mid-way through a long fallback search or a large batch
// matrix. An aborted request is answered with 499 (client closed request)
// or 503 (deadline exceeded); a disconnected client never reads it, but
// tests and proxies do.
//
// # Observability
//
// WithMetrics wires a metrics.Registry through every layer and serves it
// at GET /metrics in Prometheus text format: per-endpoint request counts,
// latency histograms and the in-flight gauge (recorded by the outermost
// middleware, so panic-recovery 500s and rate-limit 429s are counted like
// any other answer), per-technique query counters, batch stream
// accounting (pairs, streamed rows, truncations, vertex-budget hits),
// searcher-pool occupancy, and the draining/degraded/verified serving
// state. The scrape endpoint is exempt from rate limiting, like the
// health probes. All instrumentation is atomic adds on the request path —
// no locks, no allocations — and a server built without WithMetrics pays
// only nil checks. docs/METRICS.md documents every metric name.
package server
