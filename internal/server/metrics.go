// Server instrumentation: the /metrics exposition and the middleware that
// feeds it. The paper's whole contribution is careful measurement of query
// techniques; this file is the serve-time counterpart — every layer the
// request passes through (admission, pool, technique dispatch, streaming)
// reports what it did, in Prometheus text format, without locks on any hot
// path. docs/METRICS.md is the operator-facing reference for every name
// registered here.
package server

import (
	"net/http"
	"strconv"
	"time"

	"roadnet/internal/core"
	"roadnet/internal/metrics"
)

// WithMetrics exposes the server's instrumentation through reg and serves
// it at GET /metrics: per-endpoint request counters, latency histograms
// and the in-flight gauge, per-technique query counters, batch stream
// accounting, and readiness-state gauges. When the server builds its own
// default pool, the pool's occupancy metrics are registered too; a pool
// supplied with WithPool should be built with core.WithMetrics on the same
// registry (as cmd/spserve does), since the server must not second-guess
// a caller-owned pool's wiring.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *Server) { s.metricsReg = reg }
}

// serverMetrics holds every instrument the HTTP layer feeds. A nil
// *serverMetrics is valid and inert — all observation methods are
// nil-receiver-safe, so handlers call them unconditionally and servers
// without WithMetrics pay only the nil check.
type serverMetrics struct {
	reg *metrics.Registry

	inflight *metrics.Gauge
	requests *metrics.CounterVec
	latency  *metrics.HistogramVec

	// queries maps a query kind ("distance", "route", ...) to its
	// pre-resolved child of roadnet_queries_total, so the per-request path
	// is one map lookup and one atomic add.
	queries map[string]*metrics.Counter

	// Batch accounting, children pre-resolved per endpoint.
	pairs      map[string]*metrics.Histogram
	rows       map[string]*metrics.Counter
	truncation map[string]*metrics.Counter
	budgetHits *metrics.Counter
}

// queryKinds are the label values of roadnet_queries_total's kind label,
// one per query-serving endpoint.
var queryKinds = []string{
	"distance", "route", "nearest", "knn", "within", "batch_distance", "batch_route",
}

// batchEndpoints are the label values of the batch accounting families.
var batchEndpoints = []string{"batch_distance", "batch_route"}

// newServerMetrics registers every server-level family with reg and
// resolves the hot-path children. Called once from New, after the pool,
// health and spatial locator are wired, so the gauge functions can close
// over them.
func newServerMetrics(reg *metrics.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{reg: reg}

	m.inflight = reg.Gauge("roadnet_http_requests_in_flight",
		"Requests currently being served.")
	m.requests = reg.CounterVec("roadnet_http_requests_total",
		"Requests served, by route pattern and status (exact code for 429/499/500/503, class otherwise).",
		"endpoint", "code")
	m.latency = reg.HistogramVec("roadnet_http_request_duration_seconds",
		"Wall-clock time from the first middleware to the response, by route pattern.",
		metrics.LatencyBuckets, "endpoint")

	method := string(s.idx.Method())
	qv := reg.CounterVec("roadnet_queries_total",
		"Queries answered, by serving technique and query kind.",
		"method", "kind")
	m.queries = make(map[string]*metrics.Counter, len(queryKinds))
	for _, k := range queryKinds {
		m.queries[k] = qv.With(method, k)
	}

	pairs := reg.HistogramVec("roadnet_batch_pairs",
		"Sources x targets pairs per accepted batch request (the _sum is total pairs answered).",
		metrics.SizeBuckets, "endpoint")
	rows := reg.CounterVec("roadnet_batch_rows_streamed_total",
		"Response units streamed: matrix rows for batch distance, path cells for batch route.",
		"endpoint")
	m.pairs = make(map[string]*metrics.Histogram, len(batchEndpoints))
	m.rows = make(map[string]*metrics.Counter, len(batchEndpoints))
	for _, e := range batchEndpoints {
		m.pairs[e] = pairs.With(e)
		m.rows[e] = rows.With(e)
	}
	trunc := reg.CounterVec("roadnet_batch_truncations_total",
		"Batch responses cut short after commit: NDJSON in-band markers and JSON connection aborts.",
		"mode")
	m.truncation = map[string]*metrics.Counter{
		"json":   trunc.With("json"),
		"ndjson": trunc.With("ndjson"),
	}
	m.budgetHits = reg.Counter("roadnet_batch_vertex_budget_hits_total",
		"Batch route requests stopped by the total-vertex budget (413 or in-band truncation).")

	// Serving-state gauges read the shared Health record at scrape time —
	// the same flags /readyz reports, in a form dashboards can plot.
	h := s.health
	reg.GaugeFunc("roadnet_server_draining",
		"1 while the server is draining for shutdown (readiness answers 503).",
		func() float64 { return boolGauge(h.Draining()) })
	reg.GaugeFunc("roadnet_server_degraded",
		"1 while serving exact Dijkstra answers because the real index failed verification.",
		func() float64 { return boolGauge(h.Degraded()) })
	reg.GaugeFunc("roadnet_index_verified",
		"1 when every byte behind the serving state was built in-process or checksum-verified at load.",
		func() float64 { return boolGauge(h.Verified()) })

	// Technique-level dispatch counters. TNR's table/fallback split is the
	// live analogue of the paper's Figure 9/11 locality analysis; the k-NN
	// split shows whether the SILC fast path actually serves /v1/knn.
	if t := core.TNROf(s.idx); t != nil {
		reg.CounterFunc("roadnet_tnr_table_queries_total",
			"TNR queries answered from the precomputed transit-node tables, across all searchers.",
			func() float64 { table, _ := t.QueryCounts(); return float64(table) })
		reg.CounterFunc("roadnet_tnr_fallback_queries_total",
			"TNR queries answered by the fallback technique (local pairs), across all searchers.",
			func() float64 { _, fb := t.QueryCounts(); return float64(fb) })
	}
	loc := s.spatial
	reg.CounterFunc("roadnet_knn_silc_seeded_total",
		"/v1/knn queries dispatched to SILC distance browsing seeded with R-tree candidates.",
		func() float64 { seeded, _ := loc.KNNCounts(); return float64(seeded) })
	reg.CounterFunc("roadnet_knn_dijkstra_total",
		"/v1/knn queries answered by the bounded-Dijkstra fallback.",
		func() float64 { _, dij := loc.KNNCounts(); return float64(dij) })

	return m
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// countQuery records one query of the given kind against the serving
// technique. kind must be one of queryKinds.
func (m *serverMetrics) countQuery(kind string) {
	if m == nil {
		return
	}
	m.queries[kind].Inc()
}

// observeBatch records an accepted batch request's pair count.
func (m *serverMetrics) observeBatch(endpoint string, pairs int) {
	if m == nil {
		return
	}
	m.pairs[endpoint].Observe(float64(pairs))
}

// countRows records n streamed response units for a batch endpoint.
func (m *serverMetrics) countRows(endpoint string, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.rows[endpoint].Add(uint64(n))
}

// countTruncation records a committed batch response cut short, by mode.
func (m *serverMetrics) countTruncation(mode string) {
	if m == nil {
		return
	}
	m.truncation[mode].Inc()
}

// countBudgetHit records a batch route stopped by the vertex budget.
func (m *serverMetrics) countBudgetHit() {
	if m == nil {
		return
	}
	m.budgetHits.Inc()
}

// statusWriter remembers the response status for the request counter. The
// zero status means the handler never wrote — net/http sends an implicit
// 200 for that. Flush and Unwrap keep streaming and ResponseController
// working through the wrapper, exactly like trackingWriter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// codeLabel folds a status code into the label set of
// roadnet_http_requests_total: the operationally distinct codes (429 rate
// limited, 499 client gone, 500 panic, 503 overloaded/draining) stay
// exact, everything else is its class — per-code label cardinality without
// losing the codes dashboards alert on.
func codeLabel(code int) string {
	switch code {
	case 0:
		return "2xx" // handler wrote nothing; net/http sends 200
	case http.StatusTooManyRequests,
		statusClientClosedRequest,
		http.StatusInternalServerError,
		http.StatusServiceUnavailable:
		return strconv.Itoa(code)
	default:
		return strconv.Itoa(code/100) + "xx"
	}
}

// instrument is the outermost middleware: it resolves the route pattern,
// tracks the in-flight gauge, and on the way out — including the unwind of
// a deliberate mid-stream abort panic — records the latency histogram and
// the (endpoint, code) request counter. It must wrap recoverPanics so the
// 500 a recovered panic writes is observed like any other response.
func (s *Server) instrument(mux *http.ServeMux, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Resolve the pattern without dispatching: unregistered paths
		// collapse into one "other" label instead of minting a metric
		// child per probe URL a scanner throws at us.
		_, pattern := mux.Handler(r)
		if pattern == "" {
			pattern = "other"
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		s.m.inflight.Inc()
		defer func() {
			s.m.inflight.Dec()
			s.m.latency.With(pattern).Observe(time.Since(start).Seconds())
			s.m.requests.With(pattern, codeLabel(sw.code)).Inc()
		}()
		next.ServeHTTP(sw, r)
	})
}
