package server

// The spatial endpoints: /v1/knn (network k-nearest neighbors) and
// /v1/within (network range). Both POST one strict JSON object — same
// rules as the batch endpoints: unknown fields and trailing data are 400,
// an oversized body is 413 — and both accept the query point either as a
// vertex id or as a raw coordinate snapped through the R-tree. The
// searches run on the core.SpatialLocator with the request context
// propagated, so they observe the pool's admission bound, the per-request
// deadline and client disconnects like every other query.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"roadnet/internal/core"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// spatialPoint is the shared "where" of a spatial request: exactly one of
// Source (a vertex id) or the X/Y coordinate pair (snapped to its nearest
// vertex).
type spatialPoint struct {
	Source *int64 `json:"source"`
	X      *int32 `json:"x"`
	Y      *int32 `json:"y"`
}

// resolve validates the point and returns the query vertex.
func (p *spatialPoint) resolve(s *Server) (graph.VertexID, error) {
	switch {
	case p.Source != nil:
		if p.X != nil || p.Y != nil {
			return 0, errors.New(`give either "source" or "x"/"y", not both`)
		}
		id := *p.Source
		if id < 0 || id >= int64(s.g.NumVertices()) {
			return 0, fmt.Errorf("vertex %d out of range [0, %d)", id, s.g.NumVertices())
		}
		return graph.VertexID(id), nil
	case p.X != nil && p.Y != nil:
		v := s.spatial.NearestVertex(geom.Point{X: *p.X, Y: *p.Y})
		if v < 0 {
			return 0, errors.New("cannot snap coordinate: empty graph")
		}
		return v, nil
	default:
		return 0, errors.New(`need "source", or both "x" and "y"`)
	}
}

// decodeStrict decodes exactly one JSON object into v under the batch-body
// byte limit, writing the error response itself on failure (413 for an
// oversized body, 400 otherwise).
func (s *Server) decodeStrict(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{err.Error()})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON: " + err.Error()})
		return false
	}
	if _, err := dec.Token(); err != io.EOF {
		writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON: trailing data after request object"})
		return false
	}
	return true
}

type knnRequest struct {
	spatialPoint
	K int `json:"k"`
}

// neighborEntry is one (vertex, network distance) result.
type neighborEntry struct {
	Vertex   graph.VertexID `json:"vertex"`
	Distance int64          `json:"distance"`
}

type knnResponse struct {
	Source    graph.VertexID  `json:"source"`
	K         int             `json:"k"`
	Neighbors []neighborEntry `json:"neighbors"`
}

// handleKNN answers the k vertices nearest to the query point by network
// distance, ordered by (distance, id) — bit-identical across index
// techniques (the acceptance contract of the spatial tier). The query
// holds a pool searcher slot for admission control even on the paths that
// do not use it, so a bounded pool bounds spatial work too.
func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req knnRequest
	if !s.decodeStrict(w, r, &req) {
		return
	}
	if req.K < 1 || req.K > s.maxKNN {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf(
			"k must be in [1, %d], got %d", s.maxKNN, req.K)})
		return
	}
	src, err := req.resolve(s)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	sr, err := s.pool.GetContext(r.Context())
	if err != nil {
		writeAborted(w, err)
		return
	}
	defer s.pool.Put(sr)
	s.m.countQuery("knn")
	neighbors, err := s.spatial.KNearest(r.Context(), s.idx, src, req.K)
	if err != nil {
		writeAborted(w, err)
		return
	}
	resp := knnResponse{Source: src, K: req.K, Neighbors: make([]neighborEntry, len(neighbors))}
	for i, nb := range neighbors {
		resp.Neighbors[i] = neighborEntry{Vertex: nb.V, Distance: nb.Dist}
	}
	writeJSON(w, http.StatusOK, resp)
}

type withinRequest struct {
	spatialPoint
	// Radius is the network-distance bound (required, positive).
	Radius int64 `json:"radius"`
	// EuclidRadius, when positive, intersects the answer with the
	// Euclidean ball of that radius around the query point (R-tree
	// pre-filter; the bounded search stops once all geometric candidates
	// are proven).
	EuclidRadius int64 `json:"euclid_radius"`
	// Limit caps the neighbor count (0 = the server's maximum). Values
	// above the server's maximum are clamped to it.
	Limit int `json:"limit"`
}

type withinResponse struct {
	Source    graph.VertexID  `json:"source"`
	Radius    int64           `json:"radius"`
	Count     int             `json:"count"`
	Truncated bool            `json:"truncated"`
	Neighbors []neighborEntry `json:"neighbors"`
}

// handleWithin answers the vertices within a network distance of the query
// point via a bounded Dijkstra, ordered by (distance, id). Truncated
// responses (over the limit) keep the closest neighbors and say so.
func (s *Server) handleWithin(w http.ResponseWriter, r *http.Request) {
	var req withinRequest
	if !s.decodeStrict(w, r, &req) {
		return
	}
	if req.Radius < 1 {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf(
			"radius must be positive, got %d", req.Radius)})
		return
	}
	if req.EuclidRadius < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf(
			"euclid_radius must not be negative, got %d", req.EuclidRadius)})
		return
	}
	limit := req.Limit
	if limit <= 0 || limit > s.maxWithinResults {
		limit = s.maxWithinResults
	}
	src, err := req.resolve(s)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	sr, err := s.pool.GetContext(r.Context())
	if err != nil {
		writeAborted(w, err)
		return
	}
	defer s.pool.Put(sr)
	s.m.countQuery("within")
	neighbors, truncated, err := s.spatial.Within(r.Context(), src, req.Radius, core.WithinOptions{
		EuclidRadius: req.EuclidRadius,
		MaxResults:   limit,
	})
	if err != nil {
		writeAborted(w, err)
		return
	}
	resp := withinResponse{
		Source:    src,
		Radius:    req.Radius,
		Count:     len(neighbors),
		Truncated: truncated,
		Neighbors: make([]neighborEntry, len(neighbors)),
	}
	for i, nb := range neighbors {
		resp.Neighbors[i] = neighborEntry{Vertex: nb.V, Distance: nb.Dist}
	}
	writeJSON(w, http.StatusOK, resp)
}
