package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"roadnet/internal/core"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
	"roadnet/internal/metrics"
)

// DefaultMaxBatchPairs bounds the sources x targets matrix size of one
// batch request, and DefaultMaxBatchBody the request body itself (a maximal
// legitimate batch — one list of 2^20 ten-digit ids — is ~12 MB), so a
// single request cannot monopolize the server. Batch route gets a much
// lower pair cap, DefaultMaxBatchRoutePairs: a distance cell is 8 bytes
// but a route cell is a full O(path-length) vertex list, so a
// distance-sized route matrix could materialize gigabytes of paths before
// the response is written. Override with WithBatchLimits.
const (
	DefaultMaxBatchPairs      = 1 << 20
	DefaultMaxBatchRoutePairs = 1 << 14
	DefaultMaxBatchBody       = 16 << 20
)

// DefaultMaxKNN caps the k of one /v1/knn request and
// DefaultMaxWithinResults the neighbor count of one /v1/within response:
// k-NN cost grows with k on every engine, and a range answer is O(results)
// JSON. Override with WithSpatialLimits.
const (
	DefaultMaxKNN           = 1 << 10
	DefaultMaxWithinResults = 1 << 12
)

// DefaultBatchRouteVertexBudget caps the total number of path vertices one
// batch route response may carry (~4M vertices is tens of MB of JSON). The
// response is streamed, so the budget bounds bytes on the wire rather than
// resident memory — resident memory is bounded by the stream buffer no
// matter what. Override with WithBatchRouteVertexBudget.
const DefaultBatchRouteVertexBudget = 1 << 22

// statusClientClosedRequest is nginx's non-standard status for a request
// aborted because the client went away; no client reads it, but it keeps
// access logs and tests honest about why the query was cut short.
const statusClientClosedRequest = 499

// Server serves queries over one graph and one index.
type Server struct {
	g       *graph.Graph
	idx     core.Index
	pool    *core.Pool
	spatial *core.SpatialLocator
	health  *Health
	limiter *rateLimiter

	metricsReg *metrics.Registry
	m          *serverMetrics // nil when metrics are disabled

	maxBatchPairs      int
	maxBatchRoutePairs int
	maxBatchBody       int64
	routeVertexBudget  int64
	maxKNN             int
	maxWithinResults   int
	requestTimeout     time.Duration
}

// Option configures New.
type Option func(*Server)

// WithPool serves queries from a caller-built searcher pool — typically a
// bounded and/or pre-warmed one (see core.NewPool) — instead of the default
// unbounded pool. The pool must wrap the same index the server is given.
func WithPool(pool *core.Pool) Option {
	return func(s *Server) { s.pool = pool }
}

// WithBatchLimits overrides the batch guards: maxPairs bounds each id list
// and the sources x targets product, maxBody the request body size in
// bytes. Values <= 0 keep the corresponding default. The batch route pair
// cap stays at min(maxPairs, DefaultMaxBatchRoutePairs); raise it with
// WithBatchRouteLimit.
func WithBatchLimits(maxPairs int, maxBody int64) Option {
	return func(s *Server) {
		if maxPairs > 0 {
			s.maxBatchPairs = maxPairs
		}
		if maxBody > 0 {
			s.maxBatchBody = maxBody
		}
	}
}

// WithBatchRouteLimit overrides the batch route pair cap. Values <= 0 keep
// the default; the cap never exceeds the distance-matrix pair limit.
func WithBatchRouteLimit(maxPairs int) Option {
	return func(s *Server) {
		if maxPairs > 0 {
			s.maxBatchRoutePairs = maxPairs
		}
	}
}

// WithBatchRouteVertexBudget overrides the total-vertex budget of one batch
// route response. A request whose paths would exceed the budget is answered
// 413 (JSON mode, when nothing has been sent yet) or truncated in-band with
// a marker line (NDJSON mode). Values <= 0 keep the default.
func WithBatchRouteVertexBudget(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.routeVertexBudget = n
		}
	}
}

// WithRequestTimeout puts a server-side deadline on every request: the
// request context is wrapped in a timeout and the PR-3 cancellation
// plumbing does the rest — a query running past the deadline is aborted at
// its next poll and answered 503. Values <= 0 disable the deadline
// (client-side cancellation still applies).
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.requestTimeout = d }
}

// WithSpatialLimits overrides the spatial query guards: maxK caps the k of
// one /v1/knn request, maxResults the neighbor count of one /v1/within
// response (larger answers are truncated and flagged). Values <= 0 keep
// the corresponding default.
func WithSpatialLimits(maxK, maxResults int) Option {
	return func(s *Server) {
		if maxK > 0 {
			s.maxKNN = maxK
		}
		if maxResults > 0 {
			s.maxWithinResults = maxResults
		}
	}
}

// WithHealth shares a caller-owned Health record with the server's
// /healthz and /readyz endpoints, so the process lifecycle (signal
// handling, index verification) can drive what readiness reports. Without
// it the server owns a Health that always reports ready.
func WithHealth(h *Health) Option {
	return func(s *Server) { s.health = h }
}

// WithRateLimit admits at most qps requests per second per client (buckets
// keyed by the first X-Forwarded-For hop, else the remote host) with the
// given burst allowance. Requests over budget are answered 429 with a
// Retry-After header. qps <= 0 disables limiting; burst < 1 is raised
// to 1. Health probes are never limited.
func WithRateLimit(qps float64, burst int) Option {
	return func(s *Server) {
		if qps > 0 {
			s.limiter = newRateLimiter(qps, burst)
		}
	}
}

// WithSpatialLocator serves spatial queries from a caller-built locator —
// typically one wrapping an mmap-loaded R-tree (core.
// NewSpatialLocatorFromTree) or a custom node capacity — instead of the
// default STR bulk load over the graph. The locator must wrap the same
// graph the server is given.
func WithSpatialLocator(loc *core.SpatialLocator) Option {
	return func(s *Server) { s.spatial = loc }
}

// New returns a server for the given graph and index. The index is shared;
// all per-query state comes from a searcher pool, so the handler serves any
// number of requests concurrently.
func New(g *graph.Graph, idx core.Index, opts ...Option) *Server {
	s := &Server{
		g:                  g,
		idx:                idx,
		maxBatchPairs:      DefaultMaxBatchPairs,
		maxBatchRoutePairs: DefaultMaxBatchRoutePairs,
		maxBatchBody:       DefaultMaxBatchBody,
		routeVertexBudget:  DefaultBatchRouteVertexBudget,
		maxKNN:             DefaultMaxKNN,
		maxWithinResults:   DefaultMaxWithinResults,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.maxBatchRoutePairs > s.maxBatchPairs {
		s.maxBatchRoutePairs = s.maxBatchPairs
	}
	if s.pool == nil {
		// A default pool under a metrics-enabled server reports its
		// occupancy on the same registry. Caller-supplied pools wire their
		// own metrics (core.WithMetrics) — see spserve.
		if s.metricsReg != nil {
			s.pool = core.NewPool(idx, core.WithMetrics(s.metricsReg))
		} else {
			s.pool = core.NewPool(idx)
		}
	}
	if s.spatial == nil {
		s.spatial = core.NewSpatialLocator(g)
	}
	if s.health == nil {
		s.health = NewHealth()
	}
	if s.metricsReg != nil {
		s.m = newServerMetrics(s.metricsReg, s)
	}
	return s
}

// Handler returns the HTTP handler with all routes registered, wrapped in
// the resilience middleware chain: instrumentation outermost when metrics
// are enabled (so the request counter sees what every inner layer — panic
// recovery included — actually answered), then panic recovery (a crashing
// handler answers 500 and the process keeps serving), then per-client
// admission control (when configured), then the per-request deadline
// (when configured), then the routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/distance", s.handleDistance)
	mux.HandleFunc("GET /v1/route", s.handleRoute)
	mux.HandleFunc("GET /v1/nearest", s.handleNearest)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/knn", s.handleKNN)
	mux.HandleFunc("POST /v1/within", s.handleWithin)
	mux.HandleFunc("POST /v1/batch/distance", s.handleBatchDistance)
	mux.HandleFunc("POST /v1/batch/route", s.handleBatchRoute)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.m != nil {
		mux.Handle("GET /metrics", s.m.reg.Handler())
	}
	var h http.Handler = mux
	if s.requestTimeout > 0 {
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
			defer cancel()
			mux.ServeHTTP(w, r.WithContext(ctx))
		})
	}
	if s.limiter != nil {
		h = s.rateLimit(h)
	}
	h = recoverPanics(h)
	if s.m != nil {
		h = s.instrument(mux, h)
	}
	return h
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeAborted reports a query cut short by its context: 503 for a served
// deadline (the request-timeout middleware, or a bounded pool that stayed
// exhausted until the deadline), 499 for a client that went away. The 503
// carries a Retry-After so clients back off instead of hot-retrying into
// the same overload.
func writeAborted(w http.ResponseWriter, err error) {
	status := statusClientClosedRequest
	if errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{"query aborted: " + err.Error()})
}

func (s *Server) vertexParam(r *http.Request, name string) (graph.VertexID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	id, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	if id < 0 || id >= int64(s.g.NumVertices()) {
		return 0, fmt.Errorf("vertex %d out of range [0, %d)", id, s.g.NumVertices())
	}
	return graph.VertexID(id), nil
}

// distanceResponse reports one distance query. Distance must not carry
// omitempty: a from == to query answers a legitimate distance of 0, and
// omitempty would drop the field from exactly that response, so clients
// reading the raw JSON could not tell "zero" from "absent". Distance is
// meaningful only when Reachable is true (it is 0 otherwise).
type distanceResponse struct {
	From      graph.VertexID `json:"from"`
	To        graph.VertexID `json:"to"`
	Reachable bool           `json:"reachable"`
	Distance  int64          `json:"distance"`
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	from, err := s.vertexParam(r, "from")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	to, err := s.vertexParam(r, "to")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	s.m.countQuery("distance")
	d, err := s.pool.DistanceContext(r.Context(), from, to)
	if err != nil {
		writeAborted(w, err)
		return
	}
	resp := distanceResponse{From: from, To: to, Reachable: d < graph.Infinity}
	if resp.Reachable {
		resp.Distance = d
	}
	writeJSON(w, http.StatusOK, resp)
}

// routeResponse reports one path query. Distance has no omitempty for the
// same reason as distanceResponse: a from == to route has distance 0 and
// the field must still appear.
type routeResponse struct {
	From      graph.VertexID   `json:"from"`
	To        graph.VertexID   `json:"to"`
	Reachable bool             `json:"reachable"`
	Distance  int64            `json:"distance"`
	Vertices  []graph.VertexID `json:"vertices,omitempty"`
	Coords    [][2]int32       `json:"coords,omitempty"`
}

// endpointParam resolves one route endpoint: a vertex id (?from=ID) or a
// coordinate snapped to its nearest vertex (?from_x=X&from_y=Y) through
// the R-tree locator.
func (s *Server) endpointParam(r *http.Request, name string) (graph.VertexID, error) {
	q := r.URL.Query()
	if q.Get(name) != "" {
		if q.Get(name+"_x") != "" || q.Get(name+"_y") != "" {
			return 0, fmt.Errorf("give either %q or %s_x/%s_y, not both", name, name, name)
		}
		return s.vertexParam(r, name)
	}
	xs, ys := q.Get(name+"_x"), q.Get(name+"_y")
	if xs == "" && ys == "" {
		return 0, fmt.Errorf("missing parameter %q (or %s_x and %s_y)", name, name, name)
	}
	x, errX := strconv.ParseInt(xs, 10, 32)
	y, errY := strconv.ParseInt(ys, 10, 32)
	if errX != nil || errY != nil {
		return 0, fmt.Errorf("parameters %s_x and %s_y must both be integers", name, name)
	}
	v := s.spatial.NearestVertex(geom.Point{X: int32(x), Y: int32(y)})
	if v < 0 {
		return 0, fmt.Errorf("cannot snap %s_x/%s_y: empty graph", name, name)
	}
	return v, nil
}

// handleRoute answers one shortest-path query. The endpoints may be vertex
// ids or raw coordinates (from_x/from_y, to_x/to_y) snapped to their
// nearest vertices. The response is filled from the lazy PathIterator in a
// single pass — vertices and coords grow together as the path streams out
// of the searcher, instead of materializing the whole path first and
// walking it again for coordinates.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	from, err := s.endpointParam(r, "from")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	to, err := s.endpointParam(r, "to")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	s.m.countQuery("route")
	sr, err := s.pool.GetContext(r.Context())
	if err != nil {
		writeAborted(w, err)
		return
	}
	defer s.pool.Put(sr)
	it, d, err := core.OpenPath(r.Context(), sr, from, to)
	if err != nil {
		writeAborted(w, err)
		return
	}
	resp := routeResponse{From: from, To: to, Reachable: it != nil}
	if it != nil {
		resp.Distance = d
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			p := s.g.Coord(v)
			resp.Vertices = append(resp.Vertices, v)
			resp.Coords = append(resp.Coords, [2]int32{p.X, p.Y})
		}
		if err := it.Err(); err != nil {
			writeAborted(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchRequest asks for all pairs of Sources x Targets; both batch
// endpoints share the shape.
type batchRequest struct {
	Sources []int64 `json:"sources"`
	Targets []int64 `json:"targets"`
}

// batchDistanceResponse carries the matrix: Distances[i][j] is
// dist(Sources[i], Targets[j]), with -1 marking unreachable pairs.
type batchDistanceResponse struct {
	Sources   []graph.VertexID `json:"sources"`
	Targets   []graph.VertexID `json:"targets"`
	Distances [][]int64        `json:"distances"`
}

// vertexList validates raw ids from a batch request.
func (s *Server) vertexList(name string, raw []int64) ([]graph.VertexID, error) {
	out := make([]graph.VertexID, len(raw))
	for i, id := range raw {
		if id < 0 || id >= int64(s.g.NumVertices()) {
			return nil, fmt.Errorf("%s[%d]: vertex %d out of range [0, %d)",
				name, i, id, s.g.NumVertices())
		}
		out[i] = graph.VertexID(id)
	}
	return out, nil
}

// decodeBatch parses and validates a batch request body against the
// endpoint's pair limit, writing the error response itself on failure.
func (s *Server) decodeBatch(w http.ResponseWriter, r *http.Request, maxPairs int) (sources, targets []graph.VertexID, ok bool) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// A body over the MaxBytesReader limit is not malformed JSON — it
		// is a too-large request, and the status must say so (413, not 400)
		// so clients know shrinking the batch will help.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{err.Error()})
			return nil, nil, false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON: " + err.Error()})
		return nil, nil, false
	}
	// Decode stops at the end of the first JSON value; anything but EOF
	// after it is trailing garbage (a second object, stray tokens), which
	// a strict API must reject rather than silently ignore.
	if _, err := dec.Token(); err != io.EOF {
		writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON: trailing data after request object"})
		return nil, nil, false
	}
	// Cap each list as well as the product: a huge list paired with an
	// empty one has product zero but would still burn CPU in validation.
	// The product is taken in int64 so it cannot wrap on 32-bit platforms.
	if len(req.Sources) > maxPairs || len(req.Targets) > maxPairs ||
		int64(len(req.Sources))*int64(len(req.Targets)) > int64(maxPairs) {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf(
			"batch of %d x %d pairs exceeds the %d-pair limit",
			len(req.Sources), len(req.Targets), maxPairs)})
		return nil, nil, false
	}
	sources, err := s.vertexList("sources", req.Sources)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return nil, nil, false
	}
	targets, err = s.vertexList("targets", req.Targets)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return nil, nil, false
	}
	return sources, targets, true
}

// handleBatchDistance answers a sources x targets distance matrix in one
// request, dispatching to the index's batch accelerator (CH bucket
// many-to-many, TNR table sweep, SILC shared-prefix walks, or pooled
// point-to-point; see core.Pool.BatchDistance). The matrix is computed by
// the accelerator in one piece — that is what makes it fast — but the
// response is streamed through the deferred-commit buffer (see stream.go),
// byte-identical to the old json.Encoder document, and clients sending
// "Accept: application/x-ndjson" get a row-per-line framing with a
// {"done":true} terminator instead.
func (s *Server) handleBatchDistance(w http.ResponseWriter, r *http.Request) {
	sources, targets, ok := s.decodeBatch(w, r, s.maxBatchPairs)
	if !ok {
		return
	}
	s.m.countQuery("batch_distance")
	s.m.observeBatch("batch_distance", len(sources)*len(targets))
	table, err := s.pool.BatchDistance(r.Context(), sources, targets)
	if err != nil {
		writeAborted(w, err)
		return
	}
	for _, row := range table {
		for j, d := range row {
			if d >= graph.Infinity {
				row[j] = -1
			}
		}
	}
	if wantsNDJSON(r) {
		s.streamBatchDistanceNDJSON(w, sources, targets, table)
		return
	}
	s.streamBatchDistanceJSON(w, sources, targets, table)
}

// batchRouteEntry is one cell of the batch route matrix. Distance has no
// omitempty (see distanceResponse); the field order and tags here define
// the wire shape the streaming writer of stream.go reproduces byte for
// byte — change them together.
type batchRouteEntry struct {
	Reachable bool             `json:"reachable"`
	Distance  int64            `json:"distance"`
	Vertices  []graph.VertexID `json:"vertices,omitempty"`
}

// batchRouteResponse carries the path matrix: Routes[i][j] is the shortest
// path from Sources[i] to Targets[j].
type batchRouteResponse struct {
	Sources []graph.VertexID    `json:"sources"`
	Targets []graph.VertexID    `json:"targets"`
	Routes  [][]batchRouteEntry `json:"routes"`
}

// handleBatchRoute answers a sources x targets matrix of full shortest
// paths in one request, under the same guards as batch distance but a
// lower pair cap (route cells carry whole paths, not one int64). Cells are
// produced one lazy PathIterator at a time on one pooled searcher and
// streamed straight into the response (see stream.go), so every cell is
// bit-identical to the corresponding sequential /v1/route answer while
// resident memory stays bounded by the stream buffer, independent of path
// length and matrix size. Clients sending "Accept: application/x-ndjson"
// get the row-by-row NDJSON framing instead of one JSON document; both
// modes observe the total-vertex budget. The request context is polled
// inside every path query, aborting the batch mid-flight when the client
// goes away.
func (s *Server) handleBatchRoute(w http.ResponseWriter, r *http.Request) {
	sources, targets, ok := s.decodeBatch(w, r, s.maxBatchRoutePairs)
	if !ok {
		return
	}
	s.m.countQuery("batch_route")
	s.m.observeBatch("batch_route", len(sources)*len(targets))
	sr, err := s.pool.GetContext(r.Context())
	if err != nil {
		writeAborted(w, err)
		return
	}
	defer s.pool.Put(sr)
	if wantsNDJSON(r) {
		s.streamBatchRouteNDJSON(w, r, sr, sources, targets)
		return
	}
	s.streamBatchRouteJSON(w, r, sr, sources, targets)
}

type nearestResponse struct {
	Vertex graph.VertexID `json:"vertex"`
	X      int32          `json:"x"`
	Y      int32          `json:"y"`
}

// handleNearest snaps a coordinate to its nearest vertex via the R-tree
// locator (best-first MBR browsing; ties broken by smaller vertex id).
func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	x, errX := strconv.ParseInt(q.Get("x"), 10, 32)
	y, errY := strconv.ParseInt(q.Get("y"), 10, 32)
	if errX != nil || errY != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"parameters x and y must be integers"})
		return
	}
	s.m.countQuery("nearest")
	v := s.spatial.NearestVertex(geom.Point{X: int32(x), Y: int32(y)})
	if v < 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{"empty graph"})
		return
	}
	p := s.g.Coord(v)
	writeJSON(w, http.StatusOK, nearestResponse{Vertex: v, X: p.X, Y: p.Y})
}

type statsResponse struct {
	Method      string `json:"method"`
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	IndexBytes  int64  `json:"index_bytes"`
	BuildMillis int64  `json:"build_millis"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.idx.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Method:      string(st.Method),
		Vertices:    s.g.NumVertices(),
		Edges:       s.g.NumEdges(),
		IndexBytes:  st.IndexBytes,
		BuildMillis: st.BuildTime.Milliseconds(),
	})
}
