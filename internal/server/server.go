// Package server exposes a road-network query index over HTTP with a small
// JSON API — the "online map service" deployment shape the paper's
// introduction motivates (responsive query processing over memory-resident
// indexes).
//
// Endpoints:
//
//	GET  /v1/distance?from=ID&to=ID     distance query (§2)
//	GET  /v1/route?from=ID&to=ID        shortest path query (§2)
//	GET  /v1/nearest?x=X&y=Y            nearest vertex to a coordinate
//	GET  /v1/stats                      index and graph statistics
//	POST /v1/batch/distance             source x target distance matrix
//
// Concurrency: the index data of every technique is immutable after
// construction, so the server shares one Index across all request
// goroutines and hands each request a per-goroutine query context from a
// core.Pool — there is no global query lock, and throughput scales with
// cores. The batch endpoint answers an entire sources x targets matrix in
// one request; with a CH index it runs the bucket many-to-many algorithm
// (one search per endpoint instead of |S| x |T| point-to-point queries).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"roadnet/internal/core"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// maxBatchPairs bounds the sources x targets matrix size of one batch
// request, and maxBatchBody the request body itself (a maximal legitimate
// batch — one list of 2^20 ten-digit ids — is ~12 MB), so a single request
// cannot monopolize the server.
const (
	maxBatchPairs = 1 << 20
	maxBatchBody  = 16 << 20
)

// Server serves queries over one graph and one index.
type Server struct {
	g       *graph.Graph
	idx     core.Index
	pool    *core.Pool
	locator *graph.Locator
}

// New returns a server for the given graph and index. The index is shared;
// all per-query state comes from an internal searcher pool, so the handler
// serves any number of requests concurrently.
func New(g *graph.Graph, idx core.Index) *Server {
	return &Server{
		g:       g,
		idx:     idx,
		pool:    core.NewPool(idx),
		locator: graph.NewLocator(g, 0),
	}
}

// Handler returns the HTTP handler with all routes registered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/distance", s.handleDistance)
	mux.HandleFunc("GET /v1/route", s.handleRoute)
	mux.HandleFunc("GET /v1/nearest", s.handleNearest)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/batch/distance", s.handleBatchDistance)
	return mux
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) vertexParam(r *http.Request, name string) (graph.VertexID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	id, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	if id < 0 || id >= int64(s.g.NumVertices()) {
		return 0, fmt.Errorf("vertex %d out of range [0, %d)", id, s.g.NumVertices())
	}
	return graph.VertexID(id), nil
}

type distanceResponse struct {
	From      graph.VertexID `json:"from"`
	To        graph.VertexID `json:"to"`
	Reachable bool           `json:"reachable"`
	Distance  int64          `json:"distance,omitempty"`
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	from, err := s.vertexParam(r, "from")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	to, err := s.vertexParam(r, "to")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	d := s.pool.Distance(from, to)
	resp := distanceResponse{From: from, To: to, Reachable: d < graph.Infinity}
	if resp.Reachable {
		resp.Distance = d
	}
	writeJSON(w, http.StatusOK, resp)
}

type routeResponse struct {
	From      graph.VertexID   `json:"from"`
	To        graph.VertexID   `json:"to"`
	Reachable bool             `json:"reachable"`
	Distance  int64            `json:"distance,omitempty"`
	Vertices  []graph.VertexID `json:"vertices,omitempty"`
	Coords    [][2]int32       `json:"coords,omitempty"`
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	from, err := s.vertexParam(r, "from")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	to, err := s.vertexParam(r, "to")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	path, d := s.pool.ShortestPath(from, to)
	resp := routeResponse{From: from, To: to, Reachable: path != nil}
	if path != nil {
		resp.Distance = d
		resp.Vertices = path
		resp.Coords = make([][2]int32, len(path))
		for i, v := range path {
			p := s.g.Coord(v)
			resp.Coords[i] = [2]int32{p.X, p.Y}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchDistanceRequest asks for the full distance matrix between Sources
// and Targets.
type batchDistanceRequest struct {
	Sources []int64 `json:"sources"`
	Targets []int64 `json:"targets"`
}

// batchDistanceResponse carries the matrix: Distances[i][j] is
// dist(Sources[i], Targets[j]), with -1 marking unreachable pairs.
type batchDistanceResponse struct {
	Sources   []graph.VertexID `json:"sources"`
	Targets   []graph.VertexID `json:"targets"`
	Distances [][]int64        `json:"distances"`
}

// vertexList validates raw ids from a batch request.
func (s *Server) vertexList(name string, raw []int64) ([]graph.VertexID, error) {
	out := make([]graph.VertexID, len(raw))
	for i, id := range raw {
		if id < 0 || id >= int64(s.g.NumVertices()) {
			return nil, fmt.Errorf("%s[%d]: vertex %d out of range [0, %d)",
				name, i, id, s.g.NumVertices())
		}
		out[i] = graph.VertexID(id)
	}
	return out, nil
}

// handleBatchDistance answers a sources x targets distance matrix in one
// request. With a CH index the bucket many-to-many algorithm of Knopp et
// al. amortizes the work to one upward search per endpoint; other methods
// answer the pairs point-to-point on a pooled searcher.
func (s *Server) handleBatchDistance(w http.ResponseWriter, r *http.Request) {
	var req batchDistanceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON: " + err.Error()})
		return
	}
	// Cap each list as well as the product: a huge list paired with an
	// empty one has product zero but would still burn CPU in validation.
	// The product is taken in int64 so it cannot wrap on 32-bit platforms.
	if len(req.Sources) > maxBatchPairs || len(req.Targets) > maxBatchPairs ||
		int64(len(req.Sources))*int64(len(req.Targets)) > maxBatchPairs {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf(
			"batch of %d x %d pairs exceeds the %d-pair limit",
			len(req.Sources), len(req.Targets), maxBatchPairs)})
		return
	}
	sources, err := s.vertexList("sources", req.Sources)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	targets, err := s.vertexList("targets", req.Targets)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}

	var table [][]int64
	if h := core.HierarchyOf(s.idx); h != nil && len(sources) > 1 && len(targets) > 1 {
		// ManyToMany allocates its own search state per call, so it is safe
		// to run concurrently over the shared hierarchy.
		table = h.ManyToMany(sources, targets)
		for _, row := range table {
			for j, d := range row {
				if d >= graph.Infinity {
					row[j] = -1
				}
			}
		}
	} else {
		sr := s.pool.Get()
		table = make([][]int64, len(sources))
		for i, src := range sources {
			row := make([]int64, len(targets))
			for j, tgt := range targets {
				if d := sr.Distance(src, tgt); d < graph.Infinity {
					row[j] = d
				} else {
					row[j] = -1
				}
			}
			table[i] = row
		}
		s.pool.Put(sr)
	}
	writeJSON(w, http.StatusOK, batchDistanceResponse{
		Sources:   sources,
		Targets:   targets,
		Distances: table,
	})
}

type nearestResponse struct {
	Vertex graph.VertexID `json:"vertex"`
	X      int32          `json:"x"`
	Y      int32          `json:"y"`
}

func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	x, errX := strconv.ParseInt(q.Get("x"), 10, 32)
	y, errY := strconv.ParseInt(q.Get("y"), 10, 32)
	if errX != nil || errY != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"parameters x and y must be integers"})
		return
	}
	v := s.locator.Nearest(geom.Point{X: int32(x), Y: int32(y)})
	if v < 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{"empty graph"})
		return
	}
	p := s.g.Coord(v)
	writeJSON(w, http.StatusOK, nearestResponse{Vertex: v, X: p.X, Y: p.Y})
}

type statsResponse struct {
	Method      string `json:"method"`
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	IndexBytes  int64  `json:"index_bytes"`
	BuildMillis int64  `json:"build_millis"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.idx.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Method:      string(st.Method),
		Vertices:    s.g.NumVertices(),
		Edges:       s.g.NumEdges(),
		IndexBytes:  st.IndexBytes,
		BuildMillis: st.BuildTime.Milliseconds(),
	})
}
