// Package server exposes a road-network query index over HTTP with a small
// JSON API — the "online map service" deployment shape the paper's
// introduction motivates (responsive query processing over memory-resident
// indexes).
//
// Endpoints:
//
//	GET /v1/distance?from=ID&to=ID      distance query (§2)
//	GET /v1/route?from=ID&to=ID         shortest path query (§2)
//	GET /v1/nearest?x=X&y=Y             nearest vertex to a coordinate
//	GET /v1/stats                       index and graph statistics
//
// The query indexes are single-goroutine structures, so the server
// serializes queries with a mutex; for multi-core serving, run one index
// per worker.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"roadnet/internal/core"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// Server serves queries over one graph and one index.
type Server struct {
	g       *graph.Graph
	idx     core.Index
	locator *graph.Locator

	mu sync.Mutex // indexes are not safe for concurrent queries
}

// New returns a server for the given graph and index.
func New(g *graph.Graph, idx core.Index) *Server {
	return &Server{g: g, idx: idx, locator: graph.NewLocator(g, 0)}
}

// Handler returns the HTTP handler with all routes registered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/distance", s.handleDistance)
	mux.HandleFunc("GET /v1/route", s.handleRoute)
	mux.HandleFunc("GET /v1/nearest", s.handleNearest)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) vertexParam(r *http.Request, name string) (graph.VertexID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	id, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	if id < 0 || id >= int64(s.g.NumVertices()) {
		return 0, fmt.Errorf("vertex %d out of range [0, %d)", id, s.g.NumVertices())
	}
	return graph.VertexID(id), nil
}

type distanceResponse struct {
	From      graph.VertexID `json:"from"`
	To        graph.VertexID `json:"to"`
	Reachable bool           `json:"reachable"`
	Distance  int64          `json:"distance,omitempty"`
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	from, err := s.vertexParam(r, "from")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	to, err := s.vertexParam(r, "to")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	s.mu.Lock()
	d := s.idx.Distance(from, to)
	s.mu.Unlock()
	resp := distanceResponse{From: from, To: to, Reachable: d < graph.Infinity}
	if resp.Reachable {
		resp.Distance = d
	}
	writeJSON(w, http.StatusOK, resp)
}

type routeResponse struct {
	From      graph.VertexID   `json:"from"`
	To        graph.VertexID   `json:"to"`
	Reachable bool             `json:"reachable"`
	Distance  int64            `json:"distance,omitempty"`
	Vertices  []graph.VertexID `json:"vertices,omitempty"`
	Coords    [][2]int32       `json:"coords,omitempty"`
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	from, err := s.vertexParam(r, "from")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	to, err := s.vertexParam(r, "to")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	s.mu.Lock()
	path, d := s.idx.ShortestPath(from, to)
	s.mu.Unlock()
	resp := routeResponse{From: from, To: to, Reachable: path != nil}
	if path != nil {
		resp.Distance = d
		resp.Vertices = path
		resp.Coords = make([][2]int32, len(path))
		for i, v := range path {
			p := s.g.Coord(v)
			resp.Coords[i] = [2]int32{p.X, p.Y}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

type nearestResponse struct {
	Vertex graph.VertexID `json:"vertex"`
	X      int32          `json:"x"`
	Y      int32          `json:"y"`
}

func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	x, errX := strconv.ParseInt(q.Get("x"), 10, 32)
	y, errY := strconv.ParseInt(q.Get("y"), 10, 32)
	if errX != nil || errY != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"parameters x and y must be integers"})
		return
	}
	v := s.locator.Nearest(geom.Point{X: int32(x), Y: int32(y)})
	if v < 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{"empty graph"})
		return
	}
	p := s.g.Coord(v)
	writeJSON(w, http.StatusOK, nearestResponse{Vertex: v, X: p.X, Y: p.Y})
}

type statsResponse struct {
	Method      string `json:"method"`
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	IndexBytes  int64  `json:"index_bytes"`
	BuildMillis int64  `json:"build_millis"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.idx.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Method:      string(st.Method),
		Vertices:    s.g.NumVertices(),
		Edges:       s.g.NumEdges(),
		IndexBytes:  st.IndexBytes,
		BuildMillis: st.BuildTime.Milliseconds(),
	})
}
