// Batch-route response streaming. Both response modes drain one lazy
// core.PathIterator at a time into a fixed-size buffer, so serving a batch
// of long paths keeps resident memory bounded by the buffer, not by path
// length or matrix size:
//
//   - JSON mode writes the exact bytes json.Encoder would produce for
//     batchRouteResponse (the shape of the pre-streaming implementation,
//     trailing newline included), so clients cannot tell the difference.
//   - NDJSON mode (Accept: application/x-ndjson) frames the same data as
//     one JSON object per line: a header line with the echoed id lists,
//     one line per matrix cell carrying its i/j indices, and a final
//     status line — {"done":true} on success, or a {"truncated":...}
//     marker when the stream was cut short, so a consumer always knows
//     whether it saw the whole matrix.
//
// Error handling is two-phase. While the response still fits the buffer
// nothing has been sent, and an aborted query is reported with a real
// status (499/503 per writeAborted, 413 for a blown vertex budget). Once
// the buffer has spilled the 200 header is on the wire: JSON mode then
// aborts the connection (http.ErrAbortHandler), which is the only honest
// signal a single-document format has left, while NDJSON mode stays
// well-formed by closing the current cell with "truncated":true and
// appending the marker line.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"roadnet/internal/core"
	"roadnet/internal/graph"
)

// streamBufSize is the response buffer size. Small batches complete inside
// the buffer (keeping real error statuses available); anything larger
// streams through it with bounded residency.
const streamBufSize = 32 << 10

// errVertexBudget aborts a batch whose paths exceed the response budget.
var errVertexBudget = errors.New("batch route response exceeds the vertex budget")

// wantsNDJSON reports whether the client asked for the NDJSON framing.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// commitWriter passes writes through to the ResponseWriter and remembers
// that it did: once committed, the status line is on the wire and error
// reporting must switch to the in-band strategies described above.
type commitWriter struct {
	w         http.ResponseWriter
	committed bool
}

func (c *commitWriter) Write(p []byte) (int, error) {
	c.committed = true
	return c.w.Write(p)
}

// routeStream is the shared streaming state of one batch-route response.
type routeStream struct {
	cw      commitWriter
	bw      *bufio.Writer
	budget  int64
	scratch []byte
}

func (s *Server) newRouteStream(w http.ResponseWriter) *routeStream {
	st := &routeStream{cw: commitWriter{w: w}, budget: s.routeVertexBudget}
	st.bw = bufio.NewWriterSize(&st.cw, streamBufSize)
	st.scratch = make([]byte, 0, 20)
	return st
}

func (st *routeStream) writeString(s string) { _, _ = st.bw.WriteString(s) }
func (st *routeStream) writeByte(b byte)     { _ = st.bw.WriteByte(b) }

func (st *routeStream) writeInt(v int64) {
	st.scratch = strconv.AppendInt(st.scratch[:0], v, 10)
	_, _ = st.bw.Write(st.scratch)
}

// writeIDList writes a vertex id list with the exact bytes encoding/json
// produces for []graph.VertexID (the lists come from vertexList and are
// never nil, so the encoder would print [] for empty ones, as we do).
func (st *routeStream) writeIDList(ids []graph.VertexID) {
	st.writeByte('[')
	for i, v := range ids {
		if i > 0 {
			st.writeByte(',')
		}
		st.writeInt(int64(v))
	}
	st.writeByte(']')
}

// abort reports err for a stream that has not committed any bytes: the
// buffer is discarded and a real error status is written instead. The
// caller must have checked !st.cw.committed.
func (st *routeStream) abort(err error) {
	st.bw.Reset(&st.cw)
	if errors.Is(err, errVertexBudget) {
		writeJSON(st.cw.w, http.StatusRequestEntityTooLarge, errorResponse{
			err.Error() + "; request fewer pairs, or stream with Accept: application/x-ndjson"})
		return
	}
	writeAborted(st.cw.w, err)
}

// streamCell drains one OpenPath iterator into the stream as a
// batchRouteEntry object (byte-identical to its json.Marshal form). The
// prefix parameter carries the NDJSON "i"/"j" members ("" in JSON mode).
// It returns a non-nil error when the walk aborted or the budget ran out;
// in NDJSON mode the cell object is then already closed with a
// "truncated":true member, in JSON mode the document is left mid-array for
// the caller to abandon.
func (st *routeStream) streamCell(prefix string, it graph.PathIterator, d int64, ndjson bool) error {
	st.writeByte('{')
	st.writeString(prefix)
	if it == nil {
		st.writeString(`"reachable":false,"distance":0}`)
		return nil
	}
	st.writeString(`"reachable":true,"distance":`)
	st.writeInt(d)
	st.writeString(`,"vertices":[`)
	first := true
	var fail error
	for {
		v, ok := it.Next()
		if !ok {
			fail = it.Err()
			break
		}
		if st.budget <= 0 {
			fail = errVertexBudget
			break
		}
		st.budget--
		if !first {
			st.writeByte(',')
		}
		first = false
		st.writeInt(int64(v))
	}
	if fail != nil && ndjson {
		st.writeString(`],"truncated":true}`)
		return fail
	}
	if fail != nil {
		return fail
	}
	st.writeString("]}")
	return nil
}

// writeI64List writes one distance row with the exact bytes encoding/json
// produces for a []int64 (null for a nil row, [] for an empty one).
func (st *routeStream) writeI64List(row []int64) {
	if row == nil {
		st.writeString("null")
		return
	}
	st.writeByte('[')
	for j, d := range row {
		if j > 0 {
			st.writeByte(',')
		}
		st.writeInt(d)
	}
	st.writeByte(']')
}

// streamBatchDistanceJSON writes the single-document batch distance
// response with the exact bytes json.Encoder would produce for
// batchDistanceResponse — but through the fixed-size stream buffer. The
// encoder materializes the entire document before its single Write, which
// at the 2^20-pair cap is tens of MB of transient heap per request; this
// path keeps encoding residency at streamBufSize no matter the matrix.
func (s *Server) streamBatchDistanceJSON(w http.ResponseWriter, sources, targets []graph.VertexID, table [][]int64) {
	w.Header().Set("Content-Type", "application/json")
	st := s.newRouteStream(w)
	st.writeString(`{"sources":`)
	st.writeIDList(sources)
	st.writeString(`,"targets":`)
	st.writeIDList(targets)
	st.writeString(`,"distances":`)
	if table == nil {
		st.writeString("null")
	} else {
		st.writeByte('[')
		for i, row := range table {
			if i > 0 {
				st.writeByte(',')
			}
			st.writeI64List(row)
		}
		st.writeByte(']')
	}
	st.writeString("}\n")
	_ = st.bw.Flush()
	s.m.countRows("batch_distance", len(table))
}

// streamBatchDistanceNDJSON streams the matrix as one header line echoing
// the id lists, one {"i":N,"distances":[...]} line per source row (flushed
// row by row, so a consumer can pipeline), and a final {"done":true}
// marker that distinguishes a complete matrix from a cut-short stream.
func (s *Server) streamBatchDistanceNDJSON(w http.ResponseWriter, sources, targets []graph.VertexID, table [][]int64) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	st := s.newRouteStream(w)
	st.writeString(`{"sources":`)
	st.writeIDList(sources)
	st.writeString(`,"targets":`)
	st.writeIDList(targets)
	st.writeString("}\n")
	for i, row := range table {
		st.writeString(`{"i":`)
		st.writeInt(int64(i))
		st.writeString(`,"distances":`)
		st.writeI64List(row)
		st.writeString("}\n")
		_ = st.bw.Flush()
	}
	st.writeString("{\"done\":true}\n")
	_ = st.bw.Flush()
	s.m.countRows("batch_distance", len(table))
}

// streamBatchRouteJSON streams the classic single-document response.
func (s *Server) streamBatchRouteJSON(w http.ResponseWriter, r *http.Request, sr core.Searcher, sources, targets []graph.VertexID) {
	w.Header().Set("Content-Type", "application/json")
	st := s.newRouteStream(w)
	st.writeString(`{"sources":`)
	st.writeIDList(sources)
	st.writeString(`,"targets":`)
	st.writeIDList(targets)
	st.writeString(`,"routes":[`)
	cells := 0
	for i, src := range sources {
		if i > 0 {
			st.writeByte(',')
		}
		st.writeByte('[')
		for j, tgt := range targets {
			if j > 0 {
				st.writeByte(',')
			}
			it, d, err := core.OpenPath(r.Context(), sr, src, tgt)
			if err == nil {
				err = st.streamCell("", it, d, false)
			}
			if err != nil {
				if errors.Is(err, errVertexBudget) {
					s.m.countBudgetHit()
				}
				if !st.cw.committed {
					st.abort(err)
					return
				}
				s.m.countRows("batch_route", cells)
				s.m.countTruncation("json")
				// The 200 header and a partial document are on the wire;
				// killing the connection is the only way left to signal
				// failure without forging a well-formed-but-wrong response.
				panic(http.ErrAbortHandler)
			}
			cells++
		}
		st.writeByte(']')
	}
	st.writeString("]}\n")
	_ = st.bw.Flush()
	s.m.countRows("batch_route", cells)
}

// streamBatchRouteNDJSON streams the line-framed response mode.
func (s *Server) streamBatchRouteNDJSON(w http.ResponseWriter, r *http.Request, sr core.Searcher, sources, targets []graph.VertexID) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	st := s.newRouteStream(w)
	st.writeString(`{"sources":`)
	st.writeIDList(sources)
	st.writeString(`,"targets":`)
	st.writeIDList(targets)
	st.writeString("}\n")
	cells := 0
	for i, src := range sources {
		for j, tgt := range targets {
			it, d, err := core.OpenPath(r.Context(), sr, src, tgt)
			if err != nil {
				// The search itself aborted; no cell line was started.
				if !st.cw.committed {
					st.abort(err)
					return
				}
				s.m.countRows("batch_route", cells)
				s.m.countTruncation("ndjson")
				st.truncate(err)
				return
			}
			prefix := fmt.Sprintf(`"i":%d,"j":%d,`, i, j)
			if err := st.streamCell(prefix, it, d, true); err != nil {
				if errors.Is(err, errVertexBudget) {
					s.m.countBudgetHit()
				}
				if !st.cw.committed {
					st.abort(err)
					return
				}
				st.writeByte('\n')
				s.m.countRows("batch_route", cells)
				s.m.countTruncation("ndjson")
				st.truncate(err)
				return
			}
			st.writeByte('\n')
			cells++
		}
		// Row boundary: push finished rows to slow consumers.
		_ = st.bw.Flush()
	}
	st.writeString("{\"done\":true}\n")
	_ = st.bw.Flush()
	s.m.countRows("batch_route", cells)
}

// truncate ends a committed NDJSON stream with its in-band marker line.
func (st *routeStream) truncate(err error) {
	line, _ := json.Marshal(struct {
		Truncated bool   `json:"truncated"`
		Error     string `json:"error"`
	}{true, err.Error()})
	_, _ = st.bw.Write(line)
	st.writeByte('\n')
	_ = st.bw.Flush()
}
