package server_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/server"
	"roadnet/internal/testutil"
)

// newResilienceServer builds a server over a small graph with the given
// extra options.
func newResilienceServer(t *testing.T, opts ...server.Option) *httptest.Server {
	t.Helper()
	g := testutil.SmallRoad(300, 953)
	idx, err := core.BuildIndex(core.MethodDijkstra, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(g, idx, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestHealthzAlwaysOK(t *testing.T) {
	h := server.NewHealth()
	ts := newResilienceServer(t, server.WithHealth(h))
	for _, poke := range []func(){func() {}, h.SetDraining, func() { h.SetDegraded("test") }} {
		poke()
		var resp struct{ OK bool }
		getJSON(t, ts.URL+"/healthz", http.StatusOK, &resp)
		if !resp.OK {
			t.Fatal("healthz body not ok")
		}
	}
}

func TestReadyzLifecycle(t *testing.T) {
	h := server.NewHealth()
	ts := newResilienceServer(t, server.WithHealth(h))

	var resp struct {
		Ready    bool
		Draining bool
		Degraded bool
		Verified bool
		Reason   string
	}
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &resp)
	if !resp.Ready || resp.Draining || resp.Degraded {
		t.Fatalf("fresh readyz = %+v", resp)
	}

	h.SetVerified(true)
	h.SetDegraded("index checksum mismatch, serving exact Dijkstra answers")
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &resp)
	if !resp.Ready || !resp.Degraded || resp.Reason == "" {
		t.Fatalf("degraded readyz = %+v, want ready with degraded flag and reason", resp)
	}

	h.SetDraining()
	getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable, &resp)
	if resp.Ready || !resp.Draining {
		t.Fatalf("draining readyz = %+v, want not ready", resp)
	}
	// Regular queries still answer while draining: readiness gates new
	// traffic at the balancer, it does not reject in-flight work.
	var stats struct{ Vertices int }
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Vertices <= 0 {
		t.Fatalf("stats during drain: %+v", stats)
	}
}

func TestRateLimit429(t *testing.T) {
	ts := newResilienceServer(t, server.WithRateLimit(0.5, 2))

	var limited *http.Response
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case i < 2 && resp.StatusCode != http.StatusOK:
			t.Fatalf("request %d inside burst: status %d", i, resp.StatusCode)
		case i == 2:
			limited = resp
		}
	}
	if limited.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request over burst: status %d, want 429", limited.StatusCode)
	}
	if limited.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// A different client (distinct X-Forwarded-For hop) is unaffected.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	req.Header.Set("X-Forwarded-For", "203.0.113.77")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other client: status %d, want 200", resp.StatusCode)
	}

	// Health probes bypass the limiter even for the throttled client.
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz probe %d: status %d", i, resp.StatusCode)
		}
	}
}

// TestTimeout503CarriesRetryAfter pins the satellite fix: the 503 a
// request-timeout expiry produces tells the client when to come back.
func TestTimeout503CarriesRetryAfter(t *testing.T) {
	ts := newResilienceServer(t, server.WithRequestTimeout(1)) // 1ns: every query expires
	resp, err := http.Get(ts.URL + "/v1/distance?from=0&to=250")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}
