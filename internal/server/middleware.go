// Resilience middleware: panic recovery and per-client admission control.
//
// Recovery keeps one failing request from killing the process: a handler
// panic is logged with its stack and answered 500 (when the response is
// still unsent) or the connection is aborted (when a partial response is
// already on the wire — forging a well-formed tail would be worse). The
// http.ErrAbortHandler sentinel passes through untouched: it is the
// streaming code's own deliberate abort signal, already handled by
// net/http without a stack dump.
//
// Rate limiting is a token bucket per client (first X-Forwarded-For hop,
// else the RemoteAddr host), so one greedy client saturating its budget
// cannot starve the searcher pool for everyone else. Over-budget requests
// get 429 with a Retry-After telling the client when a token will be
// available. Health probes are exempt — a load balancer must never be
// told to back off from /readyz.
package server

import (
	"log"
	"math"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"
)

// trackingWriter remembers whether any part of the response reached the
// wire, which decides how a panic can be reported. It forwards Flush and
// exposes Unwrap so http.ResponseController keeps working through it.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(p)
}

func (t *trackingWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (t *trackingWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }

// recoverPanics is the outermost middleware: a panicking handler answers
// 500 and the process keeps serving.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				// A deliberate mid-stream abort (see stream.go), not a bug:
				// let net/http kill the connection quietly.
				panic(v)
			}
			log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			if !tw.wrote {
				writeJSON(tw, http.StatusInternalServerError, errorResponse{"internal server error"})
				return
			}
			// The status line is already on the wire; aborting the
			// connection is the only honest signal left.
			panic(http.ErrAbortHandler)
		}()
		next.ServeHTTP(tw, r)
	})
}

// rateLimiter hands out request tokens per client key. Buckets refill
// continuously at qps up to burst; idle buckets are swept once they are
// indistinguishable from fresh ones.
type rateLimiter struct {
	qps   float64
	burst float64
	now   func() time.Time // injectable for deterministic tests

	mu        sync.Mutex
	clients   map[string]*tokenBucket
	lastSweep time.Time
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// sweepInterval bounds how often the client map is scanned for idle
// buckets, so the sweep cost stays amortized across requests.
const sweepInterval = time.Minute

func newRateLimiter(qps float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		qps:     qps,
		burst:   float64(burst),
		now:     time.Now,
		clients: make(map[string]*tokenBucket),
	}
}

// allow takes one token from key's bucket. When the bucket is empty it
// reports the whole seconds until a token will have refilled — the
// Retry-After a polite client should honor.
func (rl *rateLimiter) allow(key string) (ok bool, retryAfter int) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	rl.sweepLocked(now)
	b := rl.clients[key]
	if b == nil {
		b = &tokenBucket{tokens: rl.burst, last: now}
		rl.clients[key] = b
	} else {
		b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.qps)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	retry := int(math.Ceil((1 - b.tokens) / rl.qps))
	if retry < 1 {
		retry = 1
	}
	return false, retry
}

// sweepLocked drops buckets idle long enough to have fully refilled — an
// absent bucket and a full one admit identically, so forgetting them only
// frees memory. Callers hold mu.
func (rl *rateLimiter) sweepLocked(now time.Time) {
	if now.Sub(rl.lastSweep) < sweepInterval {
		return
	}
	rl.lastSweep = now
	idle := time.Duration(rl.burst/rl.qps*float64(time.Second)) + time.Second
	for key, b := range rl.clients {
		if now.Sub(b.last) > idle {
			delete(rl.clients, key)
		}
	}
}

// clientKey identifies the client for admission control: the first
// X-Forwarded-For hop when a proxy supplied one, else the connection's
// remote host (port stripped, so one client's parallel connections share a
// bucket).
func clientKey(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		first, _, _ := strings.Cut(xff, ",")
		if first = strings.TrimSpace(first); first != "" {
			return first
		}
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// rateLimit is the admission middleware. Health probes and the metrics
// scrape bypass it: the load balancer asking /readyz and the collector
// scraping /metrics are not the clients being throttled — and throttling
// the scraper would blind the operator exactly when the node is busiest.
func (s *Server) rateLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" || r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			return
		}
		if ok, retry := s.limiter.allow(clientKey(r)); !ok {
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeJSON(w, http.StatusTooManyRequests,
				errorResponse{"rate limit exceeded; retry after " + strconv.Itoa(retry) + "s"})
			return
		}
		next.ServeHTTP(w, r)
	})
}
