package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/metrics"
	"roadnet/internal/server"
	"roadnet/internal/testutil"
)

// newMetricsServer builds a CH test server with a metrics registry wired
// through every layer, plus any extra options the test needs.
func newMetricsServer(t *testing.T, opts ...server.Option) (*httptest.Server, *metrics.Registry) {
	t.Helper()
	g := testutil.SmallRoad(400, 953)
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	ts := httptest.NewServer(server.New(g, idx,
		append([]server.Option{server.WithMetrics(reg)}, opts...)...).Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func wantLine(t *testing.T, out, line string) {
	t.Helper()
	if !strings.Contains(out, line+"\n") {
		t.Errorf("exposition missing %q; got:\n%s", line, out)
	}
}

// TestMetricsRequestAccounting drives distinct outcomes through the
// instrumented chain and checks each lands under the right (endpoint,
// code) label: a served query, a validation failure, and an unregistered
// path collapsed into "other".
func TestMetricsRequestAccounting(t *testing.T) {
	ts, _ := newMetricsServer(t)
	var resp struct{ Reachable bool }
	getJSON(t, ts.URL+"/v1/distance?from=0&to=5", http.StatusOK, &resp)
	getJSON(t, ts.URL+"/v1/distance?from=-1&to=5", http.StatusBadRequest, &struct{ Error string }{})
	r, err := http.Get(ts.URL + "/no/such/path")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	out := scrape(t, ts)
	wantLine(t, out, `roadnet_http_requests_total{endpoint="GET /v1/distance",code="2xx"} 1`)
	wantLine(t, out, `roadnet_http_requests_total{endpoint="GET /v1/distance",code="4xx"} 1`)
	wantLine(t, out, `roadnet_http_requests_total{endpoint="other",code="4xx"} 1`)
	wantLine(t, out, `roadnet_http_request_duration_seconds_count{endpoint="GET /v1/distance"} 2`)
	// Only the validated request reached the query layer.
	wantLine(t, out, `roadnet_queries_total{method="ch",kind="distance"} 1`)
	// The scrape itself is the only request in flight while it runs.
	wantLine(t, out, `roadnet_http_requests_in_flight 1`)
	// The default pool under a metrics-enabled server reports occupancy.
	wantLine(t, out, `roadnet_pool_in_use 0`)
}

// TestMetricsRateLimited checks a 429 keeps its exact code label and that
// the /metrics scrape itself is exempt from admission control.
func TestMetricsRateLimited(t *testing.T) {
	ts, _ := newMetricsServer(t, server.WithRateLimit(0.001, 1))
	for i := 0; i < 2; i++ {
		r, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	out := scrape(t, ts) // must not itself be rate limited
	wantLine(t, out, `roadnet_http_requests_total{endpoint="GET /v1/stats",code="2xx"} 1`)
	wantLine(t, out, `roadnet_http_requests_total{endpoint="GET /v1/stats",code="429"} 1`)
	// A second scrape still works: the exemption is per-path, not one-shot.
	out = scrape(t, ts)
	wantLine(t, out, `roadnet_http_requests_total{endpoint="GET /v1/stats",code="429"} 1`)
}

// TestMetricsHealthGauges flips the shared Health record and watches the
// serving-state gauges follow it.
func TestMetricsHealthGauges(t *testing.T) {
	h := server.NewHealth()
	h.SetVerified(true)
	ts, _ := newMetricsServer(t, server.WithHealth(h))

	out := scrape(t, ts)
	wantLine(t, out, "roadnet_server_draining 0")
	wantLine(t, out, "roadnet_server_degraded 0")
	wantLine(t, out, "roadnet_index_verified 1")

	h.SetDraining()
	h.SetDegraded("index checksum mismatch")
	h.SetVerified(false)
	out = scrape(t, ts)
	wantLine(t, out, "roadnet_server_draining 1")
	wantLine(t, out, "roadnet_server_degraded 1")
	wantLine(t, out, "roadnet_index_verified 0")
}

// TestMetricsBatchAccounting checks the pair histogram and streamed-row
// counters for both batch endpoints and framings.
func TestMetricsBatchAccounting(t *testing.T) {
	ts, _ := newMetricsServer(t)
	body := `{"sources":[0,1],"targets":[2,3,4]}`
	for _, ep := range []string{"/v1/batch/distance", "/v1/batch/route"} {
		resp, err := http.Post(ts.URL+ep, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", ep, resp.StatusCode)
		}
	}
	out := scrape(t, ts)
	wantLine(t, out, `roadnet_batch_pairs_count{endpoint="batch_distance"} 1`)
	wantLine(t, out, `roadnet_batch_pairs_sum{endpoint="batch_distance"} 6`)
	// Distance streams one row per source, route one cell per pair.
	wantLine(t, out, `roadnet_batch_rows_streamed_total{endpoint="batch_distance"} 2`)
	wantLine(t, out, `roadnet_batch_rows_streamed_total{endpoint="batch_route"} 6`)
	wantLine(t, out, `roadnet_queries_total{method="ch",kind="batch_distance"} 1`)
	wantLine(t, out, `roadnet_queries_total{method="ch",kind="batch_route"} 1`)
}

// TestMetricsVertexBudgetTruncation forces the batch route vertex budget
// to bite mid-stream in NDJSON mode and checks both the budget-hit counter
// and the truncation counter record it.
func TestMetricsVertexBudgetTruncation(t *testing.T) {
	// Budget 1: the first row (0 -> 0, a single-vertex path) fits exactly
	// and its row-boundary flush commits the stream; the second row then
	// exceeds the spent budget mid-stream, after commit.
	ts, _ := newMetricsServer(t, server.WithBatchRouteVertexBudget(1))
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch/route",
		strings.NewReader(`{"sources":[0,1],"targets":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), `"truncated":true`) {
		t.Fatalf("expected in-band truncation, got %s", raw)
	}
	out := scrape(t, ts)
	wantLine(t, out, "roadnet_batch_vertex_budget_hits_total 1")
	wantLine(t, out, `roadnet_batch_truncations_total{mode="ndjson"} 1`)
}

// TestMetricsDisabledByDefault checks a server built without WithMetrics
// serves no /metrics route and pays no instrumentation.
func TestMetricsDisabledByDefault(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics on plain server: status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsConcurrentScrape hammers queries while scraping, as the race
// detector's view of the full middleware + registry stack.
func TestMetricsConcurrentScrape(t *testing.T) {
	ts, _ := newMetricsServer(t)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 25; i++ {
				r, err := http.Get(fmt.Sprintf("%s/v1/distance?from=%d&to=%d", ts.URL, w, 100+i))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, r.Body)
				r.Body.Close()
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		scrape(t, ts)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	out := scrape(t, ts)
	wantLine(t, out, `roadnet_queries_total{method="ch",kind="distance"} 100`)
}
