package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
	"roadnet/internal/tnr"
)

// twoComponentGraph builds a graph with a 6-vertex cycle and a separate
// 3-vertex chain, so batch matrices contain unreachable (-1) cells.
func twoComponentGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(9)
	for i := 0; i < 9; i++ {
		b.AddVertex(geom.Point{X: int32(i % 3 * 10), Y: int32(i / 3 * 10)})
	}
	for i := 0; i < 6; i++ {
		if err := b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%6), graph.Weight(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 6; i < 8; i++ {
		if err := b.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 7); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// expectedBatchDistanceDoc renders the reference response: the same pool
// computation the handler runs, encoded by json.Encoder over the canonical
// batchDistanceResponse — the document shape the streaming writer must
// reproduce byte for byte.
func expectedBatchDistanceDoc(t *testing.T, idx core.Index, sources, targets []graph.VertexID) []byte {
	t.Helper()
	pool := core.NewPool(idx)
	table, err := pool.BatchDistance(context.Background(), sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table {
		for j, d := range row {
			if d >= graph.Infinity {
				row[j] = -1
			}
		}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(batchDistanceResponse{
		Sources:   sources,
		Targets:   targets,
		Distances: table,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postBatchDistance(t *testing.T, url string, body string, ndjson bool) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/batch/distance", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if ndjson {
		req.Header.Set("Accept", "application/x-ndjson")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestBatchDistanceStreamByteIdentity is the oracle for the streamed JSON
// mode: across the batch-accelerated techniques and the per-pair fallback,
// and across degenerate shapes (empty lists, single rows, unreachable
// cells), the streamed document must be byte-identical to the json.Encoder
// document of the pre-streaming implementation.
func TestBatchDistanceStreamByteIdentity(t *testing.T) {
	g := twoComponentGraph(t)
	cases := []struct{ sources, targets []int64 }{
		{[]int64{0, 1, 2}, []int64{3, 4, 6}}, // many-to-many incl. unreachable
		{[]int64{5}, []int64{0, 1, 2, 3}},    // single source row
		{[]int64{0, 6}, []int64{8}},          // single target column
		{[]int64{}, []int64{1}},              // empty sources
		{[]int64{1}, []int64{}},              // empty targets
		{[]int64{}, []int64{}},               // both empty
	}
	for _, m := range []core.Method{core.MethodDijkstra, core.MethodCH, core.MethodTNR, core.MethodSILC} {
		idx, err := core.BuildIndex(m, g, core.Config{TNR: tnr.Options{GridSize: 4}})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(New(g, idx).Handler())
		for _, c := range cases {
			body, _ := json.Marshal(map[string][]int64{"sources": c.sources, "targets": c.targets})
			status, raw := postBatchDistance(t, ts.URL, string(body), false)
			if status != http.StatusOK {
				t.Fatalf("%s %v x %v: status %d: %s", m, c.sources, c.targets, status, raw)
			}
			sources := make([]graph.VertexID, len(c.sources))
			for i, v := range c.sources {
				sources[i] = graph.VertexID(v)
			}
			targets := make([]graph.VertexID, len(c.targets))
			for i, v := range c.targets {
				targets[i] = graph.VertexID(v)
			}
			want := expectedBatchDistanceDoc(t, idx, sources, targets)
			if !bytes.Equal(raw, want) {
				t.Fatalf("%s %v x %v: streamed document diverges\n got: %s\nwant: %s",
					m, c.sources, c.targets, raw, want)
			}
		}
		ts.Close()
	}
}

// TestBatchDistanceNDJSON checks the line framing: a header echoing the id
// lists, one row line per source carrying its index, and the {"done":true}
// terminator — with the same distances the JSON mode reports.
func TestBatchDistanceNDJSON(t *testing.T) {
	g := twoComponentGraph(t)
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(g, idx).Handler())
	defer ts.Close()

	body := `{"sources":[0,1,6],"targets":[2,7]}`
	status, raw := postBatchDistance(t, ts.URL, body, true)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 5 { // header + 3 rows + done
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), raw)
	}

	var header struct {
		Sources []int64 `json:"sources"`
		Targets []int64 `json:"targets"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if fmt.Sprint(header.Sources) != "[0 1 6]" || fmt.Sprint(header.Targets) != "[2 7]" {
		t.Fatalf("header = %+v", header)
	}

	// Rows must carry increasing indices and match the JSON-mode matrix.
	statusJSON, rawJSON := postBatchDistance(t, ts.URL, body, false)
	if statusJSON != http.StatusOK {
		t.Fatalf("JSON mode status %d", statusJSON)
	}
	var doc struct {
		Distances [][]int64 `json:"distances"`
	}
	if err := json.Unmarshal(rawJSON, &doc); err != nil {
		t.Fatal(err)
	}
	for i, line := range lines[1:4] {
		var row struct {
			I         int     `json:"i"`
			Distances []int64 `json:"distances"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row line %d: %v", i, err)
		}
		if row.I != i {
			t.Fatalf("row %d carries index %d", i, row.I)
		}
		if fmt.Sprint(row.Distances) != fmt.Sprint(doc.Distances[i]) {
			t.Fatalf("row %d = %v, JSON mode says %v", i, row.Distances, doc.Distances[i])
		}
	}

	var done struct {
		Done bool `json:"done"`
	}
	if err := json.Unmarshal([]byte(lines[4]), &done); err != nil || !done.Done {
		t.Fatalf("terminator line %q (err %v)", lines[4], err)
	}
}
