package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"os"

	"roadnet/internal/core"
	"roadnet/internal/dijkstra"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
	"roadnet/internal/rtree"
	"roadnet/internal/server"
	"roadnet/internal/silc"
	"roadnet/internal/testutil"
	"roadnet/internal/tnr"
)

func postSpatial(t *testing.T, url, body string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e struct{ Error string }
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s %s: status %d (%s), want %d", url, body, resp.StatusCode, e.Error, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding: %v", url, err)
		}
	}
}

type knnResp struct {
	Source    int32
	K         int
	Neighbors []struct {
		Vertex   int32
		Distance int64
	}
}

// oracleServerKNN is the bounded-Dijkstra brute force the acceptance
// criterion compares /v1/knn answers against.
func oracleServerKNN(g *graph.Graph, s graph.VertexID, k int) []struct {
	V graph.VertexID
	D int64
} {
	c := dijkstra.NewContext(g)
	vs, err := c.KNearest(context.Background(), s, k)
	if err != nil {
		panic(err)
	}
	out := make([]struct {
		V graph.VertexID
		D int64
	}, len(vs))
	for i, v := range vs {
		out[i] = struct {
			V graph.VertexID
			D int64
		}{v, c.Dist(v)}
	}
	return out
}

// TestKNNEndpointBitIdenticalAcrossTechniques serves /v1/knn from every
// technique (plus the SILC EnableNearest fast path) and requires answers
// bit-identical to the bounded-Dijkstra oracle on a randomized graph.
func TestKNNEndpointBitIdenticalAcrossTechniques(t *testing.T) {
	g := testutil.SmallRoad(250, 4411)
	configs := []struct {
		name string
		m    core.Method
		cfg  core.Config
	}{
		{"dijkstra", core.MethodDijkstra, core.Config{}},
		{"ch", core.MethodCH, core.Config{}},
		{"tnr", core.MethodTNR, core.Config{TNR: tnr.Options{GridSize: 8}}},
		{"silc", core.MethodSILC, core.Config{}},
		{"silc+nearest", core.MethodSILC, core.Config{SILC: silc.Options{EnableNearest: true}}},
		{"pcpd", core.MethodPCPD, core.Config{}},
		{"alt", core.MethodALT, core.Config{}},
		{"arcflags", core.MethodArcFlags, core.Config{}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			idx, err := core.BuildIndex(tc.m, g, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(server.New(g, idx).Handler())
			defer ts.Close()
			for _, src := range []graph.VertexID{0, 7, 100, 249} {
				for _, k := range []int{1, 5, 13} {
					var resp knnResp
					postSpatial(t, ts.URL+"/v1/knn",
						fmt.Sprintf(`{"source":%d,"k":%d}`, src, k), http.StatusOK, &resp)
					want := oracleServerKNN(g, src, k)
					if len(resp.Neighbors) != len(want) {
						t.Fatalf("knn(%d,%d): %d neighbors, oracle %d", src, k, len(resp.Neighbors), len(want))
					}
					for i, nb := range resp.Neighbors {
						if graph.VertexID(nb.Vertex) != want[i].V || nb.Distance != want[i].D {
							t.Fatalf("knn(%d,%d)[%d] = (%d,%d), oracle (%d,%d)",
								src, k, i, nb.Vertex, nb.Distance, want[i].V, want[i].D)
						}
					}
				}
			}
		})
	}
}

func newSpatialTestServer(t *testing.T, opts ...server.Option) (*httptest.Server, *graph.Graph) {
	t.Helper()
	g := testutil.SmallRoad(300, 4412)
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(g, idx, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts, g
}

func TestKNNEndpointValidation(t *testing.T) {
	ts, _ := newSpatialTestServer(t, server.WithSpatialLimits(16, 0))
	for _, bad := range []string{
		`{"k":5}`,                         // no point
		`{"source":0}`,                    // no k
		`{"source":0,"k":0}`,              // k < 1
		`{"source":0,"k":17}`,             // k over the limit
		`{"source":99999,"k":3}`,          // out of range
		`{"source":0,"x":1,"y":2,"k":3}`,  // both id and coordinate
		`{"x":1,"k":3}`,                   // half a coordinate
		`{"source":0,"k":3,"extra":true}`, // unknown field
		`{"source":0,"k":3}{"source":1}`,  // trailing data
		`not json`,                        //
	} {
		postSpatial(t, ts.URL+"/v1/knn", bad, http.StatusBadRequest, nil)
	}

	// Coordinate form snaps and answers.
	var resp knnResp
	postSpatial(t, ts.URL+"/v1/knn", `{"x":50,"y":50,"k":3}`, http.StatusOK, &resp)
	if len(resp.Neighbors) != 3 {
		t.Fatalf("coordinate knn returned %d neighbors", len(resp.Neighbors))
	}
}

type withinResp struct {
	Source    int32
	Radius    int64
	Count     int
	Truncated bool
	Neighbors []struct {
		Vertex   int32
		Distance int64
	}
}

func TestWithinEndpoint(t *testing.T) {
	ts, g := newSpatialTestServer(t)
	c := dijkstra.NewContext(g)
	src := graph.VertexID(11)
	oracle := oracleServerKNN(g, src, 15)
	radius := oracle[len(oracle)-1].D

	c.Run([]graph.VertexID{src}, dijkstra.Options{})
	wantCount := 0
	for v := 0; v < g.NumVertices(); v++ {
		if vid := graph.VertexID(v); vid != src && c.Dist(vid) <= radius {
			wantCount++
		}
	}

	var resp withinResp
	postSpatial(t, ts.URL+"/v1/within",
		fmt.Sprintf(`{"source":%d,"radius":%d}`, src, radius), http.StatusOK, &resp)
	if resp.Count != wantCount || len(resp.Neighbors) != wantCount || resp.Truncated {
		t.Fatalf("within: count %d truncated %v, want %d", resp.Count, resp.Truncated, wantCount)
	}
	for i, nb := range resp.Neighbors {
		if d := c.Dist(graph.VertexID(nb.Vertex)); d != nb.Distance || d > radius {
			t.Fatalf("within[%d]: vertex %d distance %d (dijkstra %d)", i, nb.Vertex, nb.Distance, d)
		}
		if i > 0 {
			prev := resp.Neighbors[i-1]
			if nb.Distance < prev.Distance || (nb.Distance == prev.Distance && nb.Vertex <= prev.Vertex) {
				t.Fatalf("within order violated at %d", i)
			}
		}
	}

	// Limit truncates the closest-first prefix.
	postSpatial(t, ts.URL+"/v1/within",
		fmt.Sprintf(`{"source":%d,"radius":%d,"limit":3}`, src, radius), http.StatusOK, &resp)
	if resp.Count != 3 || !resp.Truncated {
		t.Fatalf("limited within: count %d truncated %v", resp.Count, resp.Truncated)
	}

	// Geometric pre-filter narrows the answer.
	postSpatial(t, ts.URL+"/v1/within",
		fmt.Sprintf(`{"source":%d,"radius":%d,"euclid_radius":1}`, src, radius), http.StatusOK, &resp)
	if resp.Count > wantCount {
		t.Fatalf("pre-filtered within returned %d > unfiltered %d", resp.Count, wantCount)
	}

	for _, bad := range []string{
		`{"source":11}`,             // no radius
		`{"source":11,"radius":0}`,  // radius < 1
		`{"source":11,"radius":-4}`, //
		`{"source":11,"radius":5,"euclid_radius":-1}`,
		`{"radius":5}`, // no point
	} {
		postSpatial(t, ts.URL+"/v1/within", bad, http.StatusBadRequest, nil)
	}
}

func TestRouteCoordinateEndpoints(t *testing.T) {
	ts, g := newSpatialTestServer(t)
	loc := core.NewSpatialLocator(g)
	fromP := g.Coord(3)
	toP := g.Coord(200)
	// Offset points snap back to distinct vertices.
	fx, fy := fromP.X+1, fromP.Y
	tx, ty := toP.X, toP.Y+1
	from := loc.NearestVertex(geom.Point{X: fx, Y: fy})
	to := loc.NearestVertex(geom.Point{X: tx, Y: ty})

	var viaCoord, viaID struct {
		From, To  int32
		Reachable bool
		Distance  int64
		Vertices  []int32
		Coords    [][2]int32
	}
	getJSON(t, fmt.Sprintf("%s/v1/route?from_x=%d&from_y=%d&to_x=%d&to_y=%d", ts.URL, fx, fy, tx, ty),
		http.StatusOK, &viaCoord)
	getJSON(t, fmt.Sprintf("%s/v1/route?from=%d&to=%d", ts.URL, from, to), http.StatusOK, &viaID)
	if viaCoord.From != int32(from) || viaCoord.To != int32(to) {
		t.Fatalf("coordinate route snapped to (%d,%d), locator says (%d,%d)",
			viaCoord.From, viaCoord.To, from, to)
	}
	if viaCoord.Distance != viaID.Distance || len(viaCoord.Vertices) != len(viaID.Vertices) {
		t.Fatalf("coordinate route differs from id route: %+v vs %+v", viaCoord, viaID)
	}
	if len(viaCoord.Coords) != len(viaCoord.Vertices) {
		t.Fatalf("route carries %d coords for %d vertices", len(viaCoord.Coords), len(viaCoord.Vertices))
	}
	for i, v := range viaCoord.Vertices {
		p := g.Coord(graph.VertexID(v))
		if viaCoord.Coords[i] != [2]int32{p.X, p.Y} {
			t.Fatalf("coords[%d] = %v, vertex %d is at %v", i, viaCoord.Coords[i], v, p)
		}
	}

	// Mixing id and coordinate for one endpoint is rejected.
	resp, err := http.Get(fmt.Sprintf("%s/v1/route?from=1&from_x=2&from_y=3&to=4", ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed endpoint form: status %d", resp.StatusCode)
	}
}

// TestRequestTimeout checks the per-request server-side deadline: a query
// slower than the timeout is answered 503.
func TestRequestTimeout(t *testing.T) {
	g := testutil.SmallRoad(2000, 4413)
	idx, err := core.BuildIndex(core.MethodDijkstra, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(g, idx, server.WithRequestTimeout(time.Nanosecond)).Handler())
	defer ts.Close()
	resp, err := http.Get(fmt.Sprintf("%s/v1/distance?from=0&to=%d", ts.URL, g.NumVertices()-1))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request: status %d, want 503", resp.StatusCode)
	}
	// A generous deadline leaves normal queries untouched.
	ts2 := httptest.NewServer(server.New(g, idx, server.WithRequestTimeout(time.Minute)).Handler())
	defer ts2.Close()
	var ok struct{ Reachable bool }
	getJSON(t, fmt.Sprintf("%s/v1/distance?from=0&to=1", ts2.URL), http.StatusOK, &ok)
}

// TestSpatialEndpointsConcurrent hammers knn/within/nearest concurrently;
// meaningful under -race.
func TestSpatialEndpointsConcurrent(t *testing.T) {
	g := testutil.SmallRoad(200, 4414)
	idx, err := core.BuildIndex(core.MethodSILC, g, core.Config{SILC: silc.Options{EnableNearest: true}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(g, idx).Handler())
	defer ts.Close()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var knn knnResp
				postSpatial(t, ts.URL+"/v1/knn", fmt.Sprintf(`{"source":%d,"k":4}`, (w*31+i)%200),
					http.StatusOK, &knn)
				var within withinResp
				postSpatial(t, ts.URL+"/v1/within", fmt.Sprintf(`{"source":%d,"radius":80}`, i),
					http.StatusOK, &within)
				var near struct{ Vertex int32 }
				getJSON(t, fmt.Sprintf("%s/v1/nearest?x=%d&y=%d", ts.URL, i*3, w*5), http.StatusOK, &near)
			}
		}(w)
	}
	wg.Wait()
}

// TestServerWithMappedRTree serves spatial queries from an mmap-loaded
// R-tree locator, exercising the WithSpatialLocator path end to end.
func TestServerWithMappedRTree(t *testing.T) {
	g := testutil.SmallRoad(150, 4415)
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := core.NewSpatialLocator(g)
	var buf bytes.Buffer
	if err := base.Tree().Save(&buf); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/verts.rt"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	tree, err := rtree.LoadFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	loc, err := core.NewSpatialLocatorFromTree(g, tree)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(g, idx, server.WithSpatialLocator(loc)).Handler())
	defer ts.Close()
	var near struct {
		Vertex int32
		X, Y   int32
	}
	getJSON(t, ts.URL+"/v1/nearest?x=10&y=10", http.StatusOK, &near)
	if want := base.NearestVertex(geom.Point{X: 10, Y: 10}); graph.VertexID(near.Vertex) != want {
		t.Fatalf("mapped nearest = %d, want %d", near.Vertex, want)
	}
	var knn knnResp
	postSpatial(t, ts.URL+"/v1/knn", `{"x":10,"y":10,"k":3}`, http.StatusOK, &knn)
	if len(knn.Neighbors) != 3 {
		t.Fatalf("mapped knn returned %d neighbors", len(knn.Neighbors))
	}
}
