package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/dijkstra"
	"roadnet/internal/graph"
	"roadnet/internal/server"
	"roadnet/internal/testutil"
)

func newTestServer(t *testing.T) (*httptest.Server, *graph.Graph) {
	t.Helper()
	g := testutil.SmallRoad(900, 951)
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(g, idx).Handler())
	t.Cleanup(ts.Close)
	return ts, g
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

func TestDistanceEndpoint(t *testing.T) {
	ts, g := newTestServer(t)
	ctx := dijkstra.NewContext(g)
	for _, p := range testutil.SamplePairs(g, 20, 171) {
		var resp struct {
			From, To  int32
			Reachable bool
			Distance  int64
		}
		getJSON(t, fmt.Sprintf("%s/v1/distance?from=%d&to=%d", ts.URL, p[0], p[1]), http.StatusOK, &resp)
		want := ctx.Distance(p[0], p[1])
		if !resp.Reachable {
			t.Fatalf("pair (%d,%d) reported unreachable", p[0], p[1])
		}
		if resp.Distance != want {
			t.Fatalf("distance(%d,%d) = %d, want %d", p[0], p[1], resp.Distance, want)
		}
	}
}

func TestRouteEndpoint(t *testing.T) {
	ts, g := newTestServer(t)
	ctx := dijkstra.NewContext(g)
	p := testutil.SamplePairs(g, 1, 173)[0]
	var resp struct {
		Reachable bool
		Distance  int64
		Vertices  []graph.VertexID
		Coords    [][2]int32
	}
	getJSON(t, fmt.Sprintf("%s/v1/route?from=%d&to=%d", ts.URL, p[0], p[1]), http.StatusOK, &resp)
	if !resp.Reachable {
		t.Fatal("route reported unreachable")
	}
	if resp.Distance != ctx.Distance(p[0], p[1]) {
		t.Fatalf("route distance %d, want %d", resp.Distance, ctx.Distance(p[0], p[1]))
	}
	if len(resp.Vertices) != len(resp.Coords) {
		t.Fatal("coords and vertices length mismatch")
	}
	if w := dijkstra.PathWeight(g, resp.Vertices); w != resp.Distance {
		t.Fatalf("returned route weighs %d, claims %d", w, resp.Distance)
	}
}

func TestNearestEndpoint(t *testing.T) {
	ts, g := newTestServer(t)
	p := g.Coord(42)
	var resp struct {
		Vertex graph.VertexID
		X, Y   int32
	}
	getJSON(t, fmt.Sprintf("%s/v1/nearest?x=%d&y=%d", ts.URL, p.X, p.Y), http.StatusOK, &resp)
	got := g.Coord(resp.Vertex)
	if got != p {
		t.Fatalf("nearest to a vertex position returned non-coincident vertex %d", resp.Vertex)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, g := newTestServer(t)
	var resp struct {
		Method   string
		Vertices int
		Edges    int
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &resp)
	if resp.Method != "ch" || resp.Vertices != g.NumVertices() || resp.Edges != g.NumEdges() {
		t.Fatalf("stats = %+v", resp)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []string{
		"/v1/distance",                   // missing params
		"/v1/distance?from=0",            // missing to
		"/v1/distance?from=abc&to=1",     // non-integer
		"/v1/distance?from=0&to=9999999", // out of range
		"/v1/distance?from=-1&to=0",      // negative
		"/v1/route?from=0&to=notanumber", // bad route param
		"/v1/nearest?x=a&y=2",            // bad coordinate
	}
	for _, path := range cases {
		var resp struct{ Error string }
		getJSON(t, ts.URL+path, http.StatusBadRequest, &resp)
		if resp.Error == "" {
			t.Errorf("GET %s: missing error message", path)
		}
	}
}

func postJSON(t *testing.T, url, body string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decoding: %v", url, err)
	}
}

type batchResponse struct {
	Sources   []graph.VertexID
	Targets   []graph.VertexID
	Distances [][]int64
}

func batchBody(sources, targets []graph.VertexID) string {
	b, _ := json.Marshal(map[string]any{"sources": sources, "targets": targets})
	return string(b)
}

// checkBatchAgainstOracle posts one batch request and verifies the full
// matrix against sequential Dijkstra.
func checkBatchAgainstOracle(t *testing.T, url string, g *graph.Graph, sources, targets []graph.VertexID) {
	t.Helper()
	var resp batchResponse
	postJSON(t, url+"/v1/batch/distance", batchBody(sources, targets), http.StatusOK, &resp)
	if len(resp.Distances) != len(sources) {
		t.Fatalf("batch returned %d rows, want %d", len(resp.Distances), len(sources))
	}
	ctx := dijkstra.NewContext(g)
	for i, s := range sources {
		if len(resp.Distances[i]) != len(targets) {
			t.Fatalf("batch row %d has %d entries, want %d", i, len(resp.Distances[i]), len(targets))
		}
		for j, tgt := range targets {
			want := ctx.Distance(s, tgt)
			got := resp.Distances[i][j]
			if want >= graph.Infinity {
				if got != -1 {
					t.Errorf("batch dist(%d, %d) = %d, want -1 (unreachable)", s, tgt, got)
				}
				continue
			}
			if got != want {
				t.Errorf("batch dist(%d, %d) = %d, want %d", s, tgt, got, want)
			}
		}
	}
}

func batchEndpoints(g *graph.Graph, pairs [][2]graph.VertexID) (sources, targets []graph.VertexID) {
	for _, p := range pairs {
		sources = append(sources, p[0])
		targets = append(targets, p[1])
	}
	return sources, targets
}

// TestBatchDistance checks the many-to-many fast path: the test server's CH
// index routes batches of >1 source and >1 target through the bucket
// many-to-many algorithm.
func TestBatchDistance(t *testing.T) {
	ts, g := newTestServer(t)
	sources, targets := batchEndpoints(g, testutil.SamplePairs(g, 6, 331))
	checkBatchAgainstOracle(t, ts.URL, g, sources, targets)
}

// TestBatchDistancePointToPoint covers the pooled point-to-point paths the
// many-to-many accelerator does not: a non-CH index, and single-source and
// single-target shapes on CH.
func TestBatchDistancePointToPoint(t *testing.T) {
	g := testutil.SmallRoad(900, 951)
	idx, err := core.BuildIndex(core.MethodDijkstra, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(g, idx).Handler())
	defer ts.Close()
	sources, targets := batchEndpoints(g, testutil.SamplePairs(g, 4, 337))
	checkBatchAgainstOracle(t, ts.URL, g, sources, targets)

	chTS, chG := newTestServer(t)
	checkBatchAgainstOracle(t, chTS.URL, chG, sources[:1], targets)
	checkBatchAgainstOracle(t, chTS.URL, chG, sources, targets[:1])
}

func TestBatchDistanceEmpty(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, body := range []string{
		`{"sources":[],"targets":[]}`,
		`{"sources":[],"targets":[1,2]}`,
		`{"sources":[1,2],"targets":[]}`,
		`{}`,
	} {
		var resp batchResponse
		postJSON(t, ts.URL+"/v1/batch/distance", body, http.StatusOK, &resp)
		for _, row := range resp.Distances {
			if len(row) != len(resp.Targets) {
				t.Errorf("body %s: row width %d, want %d", body, len(row), len(resp.Targets))
			}
		}
	}
}

func TestBatchDistanceBadRequests(t *testing.T) {
	ts, g := newTestServer(t)
	n := g.NumVertices()
	cases := []string{
		fmt.Sprintf(`{"sources":[0],"targets":[%d]}`, n), // target out of range
		fmt.Sprintf(`{"sources":[%d],"targets":[0]}`, n), // source out of range
		`{"sources":[-1],"targets":[0]}`,                 // negative id
		`{"sources":[0],"targets":[0]`,                   // truncated JSON
		`{"sources":"zero","targets":[0]}`,               // wrong type
		`not json at all`,                                // not JSON
		`{"sources":[0],"targets":[0],"bogus":true}`,     // unknown field
	}
	for _, body := range cases {
		var resp struct{ Error string }
		postJSON(t, ts.URL+"/v1/batch/distance", body, http.StatusBadRequest, &resp)
		if resp.Error == "" {
			t.Errorf("POST %s: missing error message", body)
		}
	}
}

// TestConcurrentBatchRequests mirrors TestConcurrentRequests for the batch
// endpoint: 8 clients post batches while checking every matrix against the
// oracle.
func TestConcurrentBatchRequests(t *testing.T) {
	ts, g := newTestServer(t)
	sources, targets := batchEndpoints(g, testutil.SamplePairs(g, 5, 347))
	body := batchBody(sources, targets)
	ctx := dijkstra.NewContext(g)
	want := make([][]int64, len(sources))
	for i, s := range sources {
		want[i] = make([]int64, len(targets))
		for j, tgt := range targets {
			want[i][j] = ctx.Distance(s, tgt)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				resp, err := http.Post(ts.URL+"/v1/batch/distance", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var out batchResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				for i := range want {
					for j := range want[i] {
						if out.Distances[i][j] != want[i][j] {
							errs <- fmt.Errorf("concurrent batch mismatch at (%d,%d)", i, j)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts, g := newTestServer(t)
	ctx := dijkstra.NewContext(g)
	pairs := testutil.SamplePairs(g, 16, 179)
	want := make([]int64, len(pairs))
	for i, p := range pairs {
		want[i] = ctx.Distance(p[0], p[1])
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, p := range pairs {
				var resp struct{ Distance int64 }
				r, err := http.Get(fmt.Sprintf("%s/v1/distance?from=%d&to=%d", ts.URL, p[0], p[1]))
				if err != nil {
					errs <- err
					return
				}
				if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
					r.Body.Close()
					errs <- err
					return
				}
				r.Body.Close()
				if resp.Distance != want[i] {
					errs <- fmt.Errorf("concurrent distance mismatch on pair %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
