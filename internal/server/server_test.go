package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/dijkstra"
	"roadnet/internal/graph"
	"roadnet/internal/server"
	"roadnet/internal/testutil"
)

func newTestServer(t *testing.T) (*httptest.Server, *graph.Graph) {
	t.Helper()
	g := testutil.SmallRoad(900, 951)
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(g, idx).Handler())
	t.Cleanup(ts.Close)
	return ts, g
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

func TestDistanceEndpoint(t *testing.T) {
	ts, g := newTestServer(t)
	ctx := dijkstra.NewContext(g)
	for _, p := range testutil.SamplePairs(g, 20, 171) {
		var resp struct {
			From, To  int32
			Reachable bool
			Distance  int64
		}
		getJSON(t, fmt.Sprintf("%s/v1/distance?from=%d&to=%d", ts.URL, p[0], p[1]), http.StatusOK, &resp)
		want := ctx.Distance(p[0], p[1])
		if !resp.Reachable {
			t.Fatalf("pair (%d,%d) reported unreachable", p[0], p[1])
		}
		if resp.Distance != want {
			t.Fatalf("distance(%d,%d) = %d, want %d", p[0], p[1], resp.Distance, want)
		}
	}
}

func TestRouteEndpoint(t *testing.T) {
	ts, g := newTestServer(t)
	ctx := dijkstra.NewContext(g)
	p := testutil.SamplePairs(g, 1, 173)[0]
	var resp struct {
		Reachable bool
		Distance  int64
		Vertices  []graph.VertexID
		Coords    [][2]int32
	}
	getJSON(t, fmt.Sprintf("%s/v1/route?from=%d&to=%d", ts.URL, p[0], p[1]), http.StatusOK, &resp)
	if !resp.Reachable {
		t.Fatal("route reported unreachable")
	}
	if resp.Distance != ctx.Distance(p[0], p[1]) {
		t.Fatalf("route distance %d, want %d", resp.Distance, ctx.Distance(p[0], p[1]))
	}
	if len(resp.Vertices) != len(resp.Coords) {
		t.Fatal("coords and vertices length mismatch")
	}
	if w := dijkstra.PathWeight(g, resp.Vertices); w != resp.Distance {
		t.Fatalf("returned route weighs %d, claims %d", w, resp.Distance)
	}
}

func TestNearestEndpoint(t *testing.T) {
	ts, g := newTestServer(t)
	p := g.Coord(42)
	var resp struct {
		Vertex graph.VertexID
		X, Y   int32
	}
	getJSON(t, fmt.Sprintf("%s/v1/nearest?x=%d&y=%d", ts.URL, p.X, p.Y), http.StatusOK, &resp)
	got := g.Coord(resp.Vertex)
	if got != p {
		t.Fatalf("nearest to a vertex position returned non-coincident vertex %d", resp.Vertex)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, g := newTestServer(t)
	var resp struct {
		Method   string
		Vertices int
		Edges    int
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &resp)
	if resp.Method != "ch" || resp.Vertices != g.NumVertices() || resp.Edges != g.NumEdges() {
		t.Fatalf("stats = %+v", resp)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []string{
		"/v1/distance",                   // missing params
		"/v1/distance?from=0",            // missing to
		"/v1/distance?from=abc&to=1",     // non-integer
		"/v1/distance?from=0&to=9999999", // out of range
		"/v1/distance?from=-1&to=0",      // negative
		"/v1/route?from=0&to=notanumber", // bad route param
		"/v1/nearest?x=a&y=2",            // bad coordinate
	}
	for _, path := range cases {
		var resp struct{ Error string }
		getJSON(t, ts.URL+path, http.StatusBadRequest, &resp)
		if resp.Error == "" {
			t.Errorf("GET %s: missing error message", path)
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts, g := newTestServer(t)
	ctx := dijkstra.NewContext(g)
	pairs := testutil.SamplePairs(g, 16, 179)
	want := make([]int64, len(pairs))
	for i, p := range pairs {
		want[i] = ctx.Distance(p[0], p[1])
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, p := range pairs {
				var resp struct{ Distance int64 }
				r, err := http.Get(fmt.Sprintf("%s/v1/distance?from=%d&to=%d", ts.URL, p[0], p[1]))
				if err != nil {
					errs <- err
					return
				}
				if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
					r.Body.Close()
					errs <- err
					return
				}
				r.Body.Close()
				if resp.Distance != want[i] {
					errs <- fmt.Errorf("concurrent distance mismatch on pair %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
