package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeClock drives a rateLimiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeLimiter(qps float64, burst int) (*rateLimiter, *fakeClock) {
	clock := &fakeClock{t: time.Unix(1_000_000, 0)}
	rl := newRateLimiter(qps, burst)
	rl.now = clock.now
	return rl, clock
}

func TestRateLimiterBurstThenRefill(t *testing.T) {
	rl, clock := newFakeLimiter(2, 3)
	for i := 0; i < 3; i++ {
		if ok, _ := rl.allow("a"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := rl.allow("a")
	if ok {
		t.Fatal("request over burst admitted")
	}
	if retry < 1 {
		t.Fatalf("Retry-After = %d, want >= 1", retry)
	}
	// Half a second at 2 qps refills one token.
	clock.advance(500 * time.Millisecond)
	if ok, _ := rl.allow("a"); !ok {
		t.Fatal("request after refill denied")
	}
	if ok, _ := rl.allow("a"); ok {
		t.Fatal("second request after one-token refill admitted")
	}
}

func TestRateLimiterIsolatesClients(t *testing.T) {
	rl, _ := newFakeLimiter(1, 1)
	if ok, _ := rl.allow("greedy"); !ok {
		t.Fatal("first request denied")
	}
	if ok, _ := rl.allow("greedy"); ok {
		t.Fatal("greedy client not throttled")
	}
	// A different client is untouched by greedy's empty bucket.
	if ok, _ := rl.allow("polite"); !ok {
		t.Fatal("unrelated client throttled")
	}
}

func TestRateLimiterSweepsIdleBuckets(t *testing.T) {
	rl, clock := newFakeLimiter(10, 5)
	for i := 0; i < 100; i++ {
		rl.allow(string(rune('a' + i%26)))
	}
	if len(rl.clients) == 0 {
		t.Fatal("no buckets created")
	}
	// Past the sweep interval and the full-refill horizon, idle buckets are
	// forgotten on the next admission.
	clock.advance(2 * time.Minute)
	rl.allow("fresh")
	if len(rl.clients) != 1 {
		t.Fatalf("%d buckets survive the sweep, want 1", len(rl.clients))
	}
}

func TestRecoverPanicsAnswers500AndKeepsServing(t *testing.T) {
	var fail bool
	h := recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail {
			panic("injected handler bug")
		}
		writeJSON(w, http.StatusOK, healthzResponse{OK: true})
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	fail = true
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", resp.StatusCode)
	}

	// The process (and the test server) kept serving.
	fail = false
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic: status %d, want 200", resp.StatusCode)
	}
}

// TestRecoverPanicsPassesAbortHandler checks the sentinel passes through:
// the streaming code's deliberate connection abort must stay a connection
// abort, not become a logged 500.
func TestRecoverPanicsPassesAbortHandler(t *testing.T) {
	h := recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err == nil {
		// The headers may have made it out before the abort; the body must
		// then fail mid-read.
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("aborted connection produced a clean response")
	}
}

// TestRecoverPanicsAfterCommitAbortsConnection checks the committed case:
// once response bytes are on the wire a panic cannot honestly become a
// 500, so the connection dies instead.
func TestRecoverPanicsAfterCommitAbortsConnection(t *testing.T) {
	h := recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"partial":`)
		w.(http.Flusher).Flush()
		panic("bug after commit")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("post-commit panic produced a clean response")
	}
}

func TestClientKey(t *testing.T) {
	mk := func(remote, xff string) *http.Request {
		r, _ := http.NewRequest("GET", "/v1/stats", nil)
		r.RemoteAddr = remote
		if xff != "" {
			r.Header.Set("X-Forwarded-For", xff)
		}
		return r
	}
	cases := []struct {
		remote, xff, want string
	}{
		{"10.0.0.7:4312", "", "10.0.0.7"},
		{"10.0.0.7:4312", "203.0.113.9", "203.0.113.9"},
		{"10.0.0.7:4312", "203.0.113.9, 198.51.100.2", "203.0.113.9"},
		{"[::1]:80", "", "::1"},
		{"no-port", "", "no-port"},
		{"10.0.0.7:4312", " , ", "10.0.0.7"},
	}
	for _, c := range cases {
		if got := clientKey(mk(c.remote, c.xff)); got != c.want {
			t.Errorf("clientKey(remote=%q, xff=%q) = %q, want %q", c.remote, c.xff, got, c.want)
		}
	}
}
