package server_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/graph"
	"roadnet/internal/server"
	"roadnet/internal/testutil"
)

// benchHandler builds a CH-backed server over a mid-size network and
// pre-renders distance request URLs, so the benchmark loop measures request
// handling rather than setup.
func benchHandler(b *testing.B) (http.Handler, []string) {
	b.Helper()
	g := testutil.SmallRoad(2000, 41)
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	pairs := testutil.SamplePairs(g, 256, 43)
	urls := make([]string, len(pairs))
	for i, p := range pairs {
		urls[i] = fmt.Sprintf("/v1/distance?from=%d&to=%d", p[0], p[1])
	}
	return server.New(g, idx).Handler(), urls
}

func driveParallel(b *testing.B, h http.Handler, urls []string) {
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			u := urls[int(next.Add(1))%len(urls)]
			req := httptest.NewRequest(http.MethodGet, u, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("GET %s: status %d", u, rec.Code)
			}
		}
	})
}

// BenchmarkServerThroughput measures concurrent distance queries per second
// against the pooled, mutex-free server. Compare with
// BenchmarkServerThroughputSerialized (the seed's global-mutex design) at
// -cpu 4 or higher; the pooled server should scale near-linearly with
// cores while the serialized one stays flat.
func BenchmarkServerThroughput(b *testing.B) {
	h, urls := benchHandler(b)
	driveParallel(b, h, urls)
}

// BenchmarkServerThroughputSerialized reproduces the pre-pool design for
// comparison: the same handler behind one global query mutex, the way the
// server serialized all index access before searcher pools existed.
func BenchmarkServerThroughputSerialized(b *testing.B) {
	h, urls := benchHandler(b)
	var mu sync.Mutex
	serialized := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		h.ServeHTTP(w, r)
	})
	driveParallel(b, serialized, urls)
}

// BenchmarkBatchDistance measures the batch endpoint: one POST answering a
// 16 x 16 distance matrix through the CH many-to-many accelerator.
func BenchmarkBatchDistance(b *testing.B) {
	g := testutil.SmallRoad(2000, 41)
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	h := server.New(g, idx).Handler()
	var sources, targets []graph.VertexID
	for _, p := range testutil.SamplePairs(g, 16, 47) {
		sources = append(sources, p[0])
		targets = append(targets, p[1])
	}
	body := batchBody(sources, targets)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/batch/distance", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("batch: status %d", rec.Code)
			}
		}
	})
}
