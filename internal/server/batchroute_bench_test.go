package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
	"roadnet/internal/server"
	"roadnet/internal/testutil"
)

// discardResponse satisfies http.ResponseWriter without retaining the body,
// so the batch-route benchmarks measure the handler's own allocations, not
// a recorder growing a buffer as large as the response.
type discardResponse struct{ h http.Header }

func (d *discardResponse) Header() http.Header         { return d.h }
func (d *discardResponse) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponse) WriteHeader(int)             {}

// benchBatchRouteFixture builds a CH server over a long line graph — every
// requested path is ~lineN vertices, so per-request allocation is dominated
// by path production, the quantity the streamed/materialized comparison is
// about.
const lineN = 4000

func benchBatchRouteFixture(b *testing.B) (core.Index, http.Handler, []graph.VertexID, []graph.VertexID, string) {
	b.Helper()
	bd := graph.NewBuilder(lineN)
	for i := 0; i < lineN; i++ {
		bd.AddVertex(geom.Point{X: int32(i), Y: 0})
	}
	for i := 0; i < lineN-1; i++ {
		if err := bd.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 1); err != nil {
			b.Fatal(err)
		}
	}
	g := bd.Build()
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	sources := []graph.VertexID{0, 1, 2, 3}
	targets := []graph.VertexID{lineN - 4, lineN - 3, lineN - 2, lineN - 1}
	return idx, server.New(g, idx).Handler(), sources, targets, batchBody(sources, targets)
}

// BenchmarkBatchRouteStreamed measures the streaming batch-route handler:
// 16 paths of ~4000 vertices each per request, drained iterator-by-iterator
// through the fixed-size stream buffer. Its B/op is the streamed side of
// the batch_route_alloc_ratio gate (see cmd/benchcheck) and must stay
// bounded regardless of path length.
func BenchmarkBatchRouteStreamed(b *testing.B) {
	_, h, _, _, body := benchBatchRouteFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch/route", strings.NewReader(body))
		w := &discardResponse{h: make(http.Header)}
		h.ServeHTTP(w, req)
	}
}

// BenchmarkBatchRouteMaterialized reproduces the pre-streaming handler for
// comparison: materialize every path of the matrix, then encode the whole
// document in one shot. Allocation grows with total path vertices, which is
// exactly what the streamed handler avoids; the ratio of the two B/op
// medians is the machine-independent batch_route_alloc_ratio gate.
func BenchmarkBatchRouteMaterialized(b *testing.B) {
	idx, _, sources, targets, _ := benchBatchRouteFixture(b)
	type entry struct {
		Reachable bool             `json:"reachable"`
		Distance  int64            `json:"distance"`
		Vertices  []graph.VertexID `json:"vertices,omitempty"`
	}
	sr := idx.NewSearcher()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routes := make([][]entry, len(sources))
		for si, src := range sources {
			row := make([]entry, len(targets))
			for ti, tgt := range targets {
				path, d, err := sr.ShortestPathContext(ctx, src, tgt)
				if err != nil {
					b.Fatal(err)
				}
				if path != nil {
					row[ti] = entry{Reachable: true, Distance: d, Vertices: path}
				}
			}
			routes[si] = row
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(struct {
			Sources []graph.VertexID `json:"sources"`
			Targets []graph.VertexID `json:"targets"`
			Routes  [][]entry        `json:"routes"`
		}{sources, targets, routes}); err != nil {
			b.Fatal(err)
		}
		w := &discardResponse{h: make(http.Header)}
		_, _ = w.Write(buf.Bytes())
	}
}

// BenchmarkBatchRoute measures the full streamed endpoint on a realistic
// road network (short, varied paths), complementing the long-path fixture
// above.
func BenchmarkBatchRoute(b *testing.B) {
	g := testutil.SmallRoad(2000, 41)
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	h := server.New(g, idx).Handler()
	sources, targets := batchEndpoints(g, testutil.SamplePairs(g, 8, 47))
	body := batchBody(sources, targets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch/route", strings.NewReader(body))
		w := &discardResponse{h: make(http.Header)}
		h.ServeHTTP(w, req)
	}
}
