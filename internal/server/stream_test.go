package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
	"roadnet/internal/server"
	"roadnet/internal/testutil"
)

// rawBody performs a request and returns the raw response bytes, for tests
// that assert the exact wire shape rather than the decoded value.
func rawBody(t *testing.T, req *http.Request, wantStatus int) []byte {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d (body %s)",
			req.Method, req.URL, resp.StatusCode, wantStatus, body)
	}
	return body
}

func getRaw(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rawBody(t, req, wantStatus)
}

func postRaw(t *testing.T, url, body, accept string, wantStatus int) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	return rawBody(t, req, wantStatus)
}

// TestZeroDistanceJSONShape pins the regression: a from == to query has the
// legitimate distance 0, and the "distance" key must appear in the raw JSON
// of every endpoint that reports one — omitempty on an int64 would silently
// drop exactly that value.
func TestZeroDistanceJSONShape(t *testing.T) {
	ts, _ := newTestServer(t)
	const v = 7

	distance := getRaw(t, fmt.Sprintf("%s/v1/distance?from=%d&to=%d", ts.URL, v, v), http.StatusOK)
	if !bytes.Contains(distance, []byte(`"distance":0`)) {
		t.Errorf("/v1/distance from==to: %s lacks \"distance\":0", distance)
	}

	route := getRaw(t, fmt.Sprintf("%s/v1/route?from=%d&to=%d", ts.URL, v, v), http.StatusOK)
	if !bytes.Contains(route, []byte(`"distance":0`)) {
		t.Errorf("/v1/route from==to: %s lacks \"distance\":0", route)
	}
	if !bytes.Contains(route, []byte(fmt.Sprintf(`"vertices":[%d]`, v))) {
		t.Errorf("/v1/route from==to: %s lacks the single-vertex path", route)
	}

	ids := []graph.VertexID{v}
	batchDist := postRaw(t, ts.URL+"/v1/batch/distance", batchBody(ids, ids), "", http.StatusOK)
	if !bytes.Contains(batchDist, []byte(`"distances":[[0]]`)) {
		t.Errorf("/v1/batch/distance from==to: %s lacks the zero cell", batchDist)
	}

	batchRoute := postRaw(t, ts.URL+"/v1/batch/route", batchBody(ids, ids), "", http.StatusOK)
	if !bytes.Contains(batchRoute, []byte(`"distance":0`)) {
		t.Errorf("/v1/batch/route from==to: %s lacks \"distance\":0", batchRoute)
	}
}

// materializedBatchRoute rebuilds the batch route response the way the
// pre-streaming handler did — materialize every path, then one
// json.Encoder.Encode — and returns its exact bytes. The streamed response
// must be bit-identical to this.
func materializedBatchRoute(t *testing.T, idx core.Index, sources, targets []graph.VertexID) []byte {
	t.Helper()
	type entry struct {
		Reachable bool             `json:"reachable"`
		Distance  int64            `json:"distance"`
		Vertices  []graph.VertexID `json:"vertices,omitempty"`
	}
	resp := struct {
		Sources []graph.VertexID `json:"sources"`
		Targets []graph.VertexID `json:"targets"`
		Routes  [][]entry        `json:"routes"`
	}{Sources: sources, Targets: targets, Routes: make([][]entry, len(sources))}
	sr := idx.NewSearcher()
	for i, src := range sources {
		row := make([]entry, len(targets))
		for j, tgt := range targets {
			path, d, err := sr.ShortestPathContext(context.Background(), src, tgt)
			if err != nil {
				t.Fatal(err)
			}
			if path != nil {
				row[j] = entry{Reachable: true, Distance: d, Vertices: path}
			}
		}
		resp.Routes[i] = row
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBatchRouteStreamedBytesIdentical is the wire-level oracle: for every
// technique, the streamed response must match the materialized encoding
// byte for byte — same field order, same trailing newline, including the
// from == to and long-path cells.
func TestBatchRouteStreamedBytesIdentical(t *testing.T) {
	for _, method := range batchRouteMethods {
		t.Run(string(method), func(t *testing.T) {
			g := testutil.SmallRoad(400, 57)
			idx, err := core.BuildIndex(method, g, core.Config{})
			if err != nil {
				t.Fatalf("BuildIndex(%s): %v", method, err)
			}
			ts := httptest.NewServer(server.New(g, idx).Handler())
			t.Cleanup(ts.Close)
			sources, targets := batchEndpoints(g, testutil.SamplePairs(g, 4, 733))
			sources = append(sources, 11)
			targets = append(targets, 11) // exercises from == to on the diagonal
			got := postRaw(t, ts.URL+"/v1/batch/route", batchBody(sources, targets), "", http.StatusOK)
			want := materializedBatchRoute(t, idx, sources, targets)
			if !bytes.Equal(got, want) {
				t.Fatalf("streamed response differs from materialized encoding\nstreamed:     %s\nmaterialized: %s", got, want)
			}
		})
	}
}

// ndjsonLines splits and JSON-validates an NDJSON body: every line must be
// one well-formed JSON object, whatever else happened to the stream.
func ndjsonLines(t *testing.T, body []byte) []map[string]json.RawMessage {
	t.Helper()
	var lines []map[string]json.RawMessage
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			t.Fatalf("NDJSON stream contains a blank line:\n%s", body)
		}
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("NDJSON line %q is not a JSON object: %v", sc.Text(), err)
		}
		lines = append(lines, obj)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestBatchRouteNDJSON checks the line framing of the streaming mode:
// header line, one cell line per matrix entry (each identical in content to
// the sequential route answer), and the {"done":true} terminator.
func TestBatchRouteNDJSON(t *testing.T) {
	ts, g := newMethodServer(t, core.MethodCH)
	sources, targets := batchEndpoints(g, testutil.SamplePairs(g, 3, 733))
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch/route",
		strings.NewReader(batchBody(sources, targets)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := ndjsonLines(t, body)
	wantLines := 1 + len(sources)*len(targets) + 1
	if len(lines) != wantLines {
		t.Fatalf("NDJSON stream has %d lines, want %d:\n%s", len(lines), wantLines, body)
	}
	if _, ok := lines[0]["sources"]; !ok {
		t.Errorf("header line lacks sources: %s", body)
	}
	if done := string(lines[len(lines)-1]["done"]); done != "true" {
		t.Fatalf("missing {\"done\":true} terminator, got %s", body)
	}
	for n, cell := range lines[1 : len(lines)-1] {
		var i, j int
		if err := json.Unmarshal(cell["i"], &i); err != nil {
			t.Fatalf("cell %d lacks i: %v", n, err)
		}
		if err := json.Unmarshal(cell["j"], &j); err != nil {
			t.Fatalf("cell %d lacks j: %v", n, err)
		}
		if want := [2]int{n / len(targets), n % len(targets)}; i != want[0] || j != want[1] {
			t.Fatalf("cell %d carries indices (%d,%d), want (%d,%d)", n, i, j, want[0], want[1])
		}
		var seq struct {
			Reachable bool
			Distance  int64
			Vertices  []graph.VertexID
		}
		getJSON(t, fmt.Sprintf("%s/v1/route?from=%d&to=%d", ts.URL, sources[i], targets[j]), http.StatusOK, &seq)
		var got struct {
			Reachable bool
			Distance  int64
			Vertices  []graph.VertexID
		}
		line, _ := json.Marshal(cell)
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatal(err)
		}
		if got.Reachable != seq.Reachable || got.Distance != seq.Distance ||
			len(got.Vertices) != len(seq.Vertices) {
			t.Errorf("cell (%d,%d) = (%v,%d,%d vertices), sequential route = (%v,%d,%d vertices)",
				i, j, got.Reachable, got.Distance, len(got.Vertices),
				seq.Reachable, seq.Distance, len(seq.Vertices))
		}
		for k := range seq.Vertices {
			if got.Vertices[k] != seq.Vertices[k] {
				t.Fatalf("cell (%d,%d) vertex %d differs from sequential route", i, j, k)
			}
		}
	}
}

// lineGraphServer builds a server over an n-vertex path graph, where every
// 0 -> n-1 route has exactly n vertices — long deterministic paths for the
// budget and truncation tests.
func lineGraphServer(t *testing.T, n int, opts ...server.Option) *httptest.Server {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddVertex(geom.Point{X: int32(i), Y: 0})
	}
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(g, idx, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestBatchRouteVertexBudgetJSON: in JSON mode a response that would blow
// the vertex budget before anything was flushed is answered with a clean
// 413, not a truncated document.
func TestBatchRouteVertexBudgetJSON(t *testing.T) {
	ts := lineGraphServer(t, 100, server.WithBatchRouteVertexBudget(150))
	body := `{"sources":[0,0],"targets":[99]}` // two 100-vertex paths > 150
	raw := postRaw(t, ts.URL+"/v1/batch/route", body, "", http.StatusRequestEntityTooLarge)
	if !bytes.Contains(raw, []byte("vertex budget")) {
		t.Errorf("413 body %s does not mention the vertex budget", raw)
	}
	// Within budget the same request shape succeeds.
	var ok batchRouteResponse
	postJSON(t, ts.URL+"/v1/batch/route", `{"sources":[0],"targets":[99]}`, http.StatusOK, &ok)
	if len(ok.Routes) != 1 || len(ok.Routes[0][0].Vertices) != 100 {
		t.Fatalf("in-budget request: %+v", ok)
	}
}

// TestBatchRouteVertexBudgetNDJSONTruncation: once NDJSON rows are on the
// wire, budget exhaustion must truncate in-band — the open cell closes with
// "truncated":true and a final marker line reports the cause, every line
// still valid JSON.
func TestBatchRouteVertexBudgetNDJSONTruncation(t *testing.T) {
	ts := lineGraphServer(t, 100, server.WithBatchRouteVertexBudget(150))
	// Row 1 (100 vertices) fits and is flushed; row 2 exhausts the budget.
	body := `{"sources":[0,0,0],"targets":[99]}`
	raw := postRaw(t, ts.URL+"/v1/batch/route", body, "application/x-ndjson", http.StatusOK)
	lines := ndjsonLines(t, raw)
	last := lines[len(lines)-1]
	if string(last["truncated"]) != "true" {
		t.Fatalf("stream does not end with a truncation marker:\n%s", raw)
	}
	var msg string
	if err := json.Unmarshal(last["error"], &msg); err != nil || !strings.Contains(msg, "vertex budget") {
		t.Errorf("marker error = %q, want a vertex-budget message", msg)
	}
	cut := lines[len(lines)-2]
	if string(cut["truncated"]) != "true" {
		t.Errorf("interrupted cell lacks \"truncated\":true:\n%s", raw)
	}
	if _, ok := lines[len(lines)-2]["done"]; ok {
		t.Errorf("truncated stream must not claim done:\n%s", raw)
	}
}

// cancelOnFlush cancels the request context the moment the first byte
// reaches the wire, deterministically forcing a mid-stream abort.
type cancelOnFlush struct {
	http.ResponseWriter
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelOnFlush) Write(p []byte) (int, error) {
	c.once.Do(c.cancel)
	return c.ResponseWriter.Write(p)
}

// TestBatchRouteNDJSONMidStreamCancellation kills the request context after
// the first row is flushed: the stream must end with a well-formed
// truncation marker line instead of an abandoned half-written matrix.
func TestBatchRouteNDJSONMidStreamCancellation(t *testing.T) {
	g := testutil.SmallRoad(400, 57)
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := server.New(g, idx).Handler()
	ctx, cancelFn := context.WithCancel(context.Background())
	defer cancelFn()
	sources, targets := batchEndpoints(g, testutil.SamplePairs(g, 4, 733))
	req := httptest.NewRequest(http.MethodPost, "/v1/batch/route",
		strings.NewReader(batchBody(sources, targets))).WithContext(ctx)
	req.Header.Set("Accept", "application/x-ndjson")
	rec := httptest.NewRecorder()
	h.ServeHTTP(&cancelOnFlush{ResponseWriter: rec, cancel: cancelFn}, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (the header was already committed)", rec.Code)
	}
	lines := ndjsonLines(t, rec.Body.Bytes())
	if len(lines) < 2 {
		t.Fatalf("stream too short:\n%s", rec.Body.Bytes())
	}
	last := lines[len(lines)-1]
	if string(last["truncated"]) != "true" {
		t.Fatalf("cancelled stream does not end with a truncation marker:\n%s", rec.Body.Bytes())
	}
	for _, l := range lines {
		if _, ok := l["done"]; ok {
			t.Fatalf("cancelled stream claims done:\n%s", rec.Body.Bytes())
		}
	}
}

// TestBatchTrailingGarbage: a batch body must be exactly one JSON object —
// trailing tokens after it are a 400, not silently ignored.
func TestBatchTrailingGarbage(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, endpoint := range []string{"/v1/batch/distance", "/v1/batch/route"} {
		for _, body := range []string{
			`{"sources":[0],"targets":[1]}{"sources":[2]}`,
			`{"sources":[0],"targets":[1]} ]`,
			`{"sources":[0],"targets":[1]} 42`,
		} {
			raw := postRaw(t, ts.URL+endpoint, body, "", http.StatusBadRequest)
			if !bytes.Contains(raw, []byte("trailing")) {
				t.Errorf("%s with body %q: error %s does not mention trailing data", endpoint, body, raw)
			}
		}
	}
}
