// Health and readiness. Liveness (/healthz) says the process is serving;
// readiness (/readyz) says this node should receive traffic — it flips to
// 503 while draining so load balancers pull the node before shutdown, and
// it surfaces degraded mode (index verification failed, queries answered
// exactly by plain Dijkstra) so operators can see a node limping along
// without taking it out of rotation.
package server

import (
	"net/http"
	"sync/atomic"
)

// Health is the shared serving-state record behind /healthz and /readyz.
// One Health is typically owned by the process lifecycle (spserve flips
// Draining on SIGTERM, sets Degraded/Verified from the index load) and
// handed to the server with WithHealth. All methods are safe for
// concurrent use.
type Health struct {
	draining atomic.Bool
	degraded atomic.Bool
	verified atomic.Bool
	reason   atomic.Value // string: why the node is degraded
}

// NewHealth returns a Health in the fully-up state: not draining, not
// degraded, nothing verified yet.
func NewHealth() *Health { return &Health{} }

// SetDraining marks the node as shutting down: /readyz answers 503 from
// the next probe on, while in-flight and follow-up requests keep being
// served until the listener closes. There is no way back — a draining
// process exits.
func (h *Health) SetDraining() { h.draining.Store(true) }

// Draining reports whether SetDraining has been called.
func (h *Health) Draining() bool { return h.draining.Load() }

// SetDegraded marks the node as serving in degraded mode (exact answers
// from a plain Dijkstra pool after the real index failed verification),
// with a reason for the readiness report.
func (h *Health) SetDegraded(reason string) {
	h.reason.Store(reason)
	h.degraded.Store(true)
}

// Degraded reports whether the node is in degraded mode.
func (h *Health) Degraded() bool { return h.degraded.Load() }

// SetVerified records whether every checksummed file behind the serving
// state was verified at load.
func (h *Health) SetVerified(v bool) { h.verified.Store(v) }

// Verified reports the last SetVerified value.
func (h *Health) Verified() bool { return h.verified.Load() }

// healthzResponse is the liveness body: the process is up and the handler
// chain is answering.
type healthzResponse struct {
	OK bool `json:"ok"`
}

// readyzResponse is the readiness body. Verified and the failure flags use
// omitempty so the steady-state healthy answer stays minimal:
// {"ready":true,"verified":true}.
type readyzResponse struct {
	Ready    bool   `json:"ready"`
	Draining bool   `json:"draining,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	Verified bool   `json:"verified,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// handleHealthz is liveness: 200 as long as the process can run a handler.
// A supervisor restarts the process when this stops answering; it must not
// depend on index state, so it never returns anything but 200.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{OK: true})
}

// handleReadyz is readiness: 200 while the node wants traffic, 503 once it
// is draining. Degraded mode stays ready — exact answers from the Dijkstra
// fallback beat no answers — but is flagged for operators.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.health
	resp := readyzResponse{
		Ready:    !h.Draining(),
		Draining: h.Draining(),
		Degraded: h.Degraded(),
		Verified: h.verified.Load(),
	}
	if reason, ok := h.reason.Load().(string); ok {
		resp.Reason = reason
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
