package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"roadnet/internal/core"
	"roadnet/internal/graph"
	"roadnet/internal/server"
	"roadnet/internal/testutil"
)

// batchRouteMethods covers every technique: the batch route oracle below
// demands path-identity with the sequential route endpoint for all of them.
var batchRouteMethods = []core.Method{
	core.MethodDijkstra, core.MethodCH, core.MethodTNR, core.MethodSILC,
	core.MethodPCPD, core.MethodALT, core.MethodArcFlags,
}

// newMethodServer builds a server over a small shared network for the given
// technique.
func newMethodServer(t *testing.T, method core.Method, opts ...server.Option) (*httptest.Server, *graph.Graph) {
	t.Helper()
	g := testutil.SmallRoad(400, 57)
	idx, err := core.BuildIndex(method, g, core.Config{})
	if err != nil {
		t.Fatalf("BuildIndex(%s): %v", method, err)
	}
	ts := httptest.NewServer(server.New(g, idx, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts, g
}

type batchRouteResponse struct {
	Sources []graph.VertexID
	Targets []graph.VertexID
	Routes  [][]struct {
		Reachable bool
		Distance  int64
		Vertices  []graph.VertexID
	}
}

// TestBatchRoutePathIdenticalToSequential is the batch route oracle: for
// every technique, each cell of the batch matrix must be exactly the answer
// of a sequential GET /v1/route for that pair — same reachability, same
// distance, same vertex sequence.
func TestBatchRoutePathIdenticalToSequential(t *testing.T) {
	for _, method := range batchRouteMethods {
		t.Run(string(method), func(t *testing.T) {
			ts, g := newMethodServer(t, method)
			sources, targets := batchEndpoints(g, testutil.SamplePairs(g, 4, 733))
			var batch batchRouteResponse
			postJSON(t, ts.URL+"/v1/batch/route", batchBody(sources, targets), http.StatusOK, &batch)
			if len(batch.Routes) != len(sources) {
				t.Fatalf("batch returned %d rows, want %d", len(batch.Routes), len(sources))
			}
			for i, src := range sources {
				if len(batch.Routes[i]) != len(targets) {
					t.Fatalf("row %d has %d entries, want %d", i, len(batch.Routes[i]), len(targets))
				}
				for j, tgt := range targets {
					var seq struct {
						Reachable bool
						Distance  int64
						Vertices  []graph.VertexID
					}
					getJSON(t, fmt.Sprintf("%s/v1/route?from=%d&to=%d", ts.URL, src, tgt), http.StatusOK, &seq)
					got := batch.Routes[i][j]
					if got.Reachable != seq.Reachable || got.Distance != seq.Distance {
						t.Errorf("route(%d, %d): batch (%v, %d) != sequential (%v, %d)",
							src, tgt, got.Reachable, got.Distance, seq.Reachable, seq.Distance)
						continue
					}
					if len(got.Vertices) != len(seq.Vertices) {
						t.Errorf("route(%d, %d): batch path %v != sequential %v", src, tgt, got.Vertices, seq.Vertices)
						continue
					}
					for k := range got.Vertices {
						if got.Vertices[k] != seq.Vertices[k] {
							t.Errorf("route(%d, %d): batch path %v != sequential %v", src, tgt, got.Vertices, seq.Vertices)
							break
						}
					}
				}
			}
		})
	}
}

// TestBatchDistanceAcceleratedEndpoints runs the batch distance endpoint
// against the TNR and SILC accelerators through the full HTTP stack,
// verifying the matrix against the Dijkstra oracle.
func TestBatchDistanceAcceleratedEndpoints(t *testing.T) {
	for _, method := range []core.Method{core.MethodTNR, core.MethodSILC} {
		t.Run(string(method), func(t *testing.T) {
			ts, g := newMethodServer(t, method)
			sources, targets := batchEndpoints(g, testutil.SamplePairs(g, 6, 739))
			checkBatchAgainstOracle(t, ts.URL, g, sources, targets)
		})
	}
}

func TestBatchRouteBadRequests(t *testing.T) {
	ts, g := newTestServer(t)
	n := g.NumVertices()
	cases := []string{
		fmt.Sprintf(`{"sources":[0],"targets":[%d]}`, n), // target out of range
		`{"sources":[-1],"targets":[0]}`,                 // negative id
		`{"sources":[0],"targets":[0]`,                   // truncated JSON
		`{"sources":"zero","targets":[0]}`,               // wrong type
		`not json at all`,                                // not JSON
		`{"sources":[0],"targets":[0],"bogus":true}`,     // unknown field
	}
	for _, body := range cases {
		var resp struct{ Error string }
		postJSON(t, ts.URL+"/v1/batch/route", body, http.StatusBadRequest, &resp)
		if resp.Error == "" {
			t.Errorf("POST %s: missing error message", body)
		}
	}
}

// TestBatchLimits exercises the overflow guards on both batch endpoints
// with limits small enough to trip from a test: list length, pair-count
// product, and body size.
func TestBatchLimits(t *testing.T) {
	g := testutil.SmallRoad(400, 57)
	idx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(g, idx, server.WithBatchLimits(16, 256)).Handler())
	defer ts.Close()

	long := make([]graph.VertexID, 17)
	wide := make([]graph.VertexID, 5) // 5 x 5 = 25 > 16 while both lists fit
	for _, endpoint := range []string{"/v1/batch/distance", "/v1/batch/route"} {
		var resp struct{ Error string }
		postJSON(t, ts.URL+endpoint, batchBody(long, nil), http.StatusBadRequest, &resp)
		if !strings.Contains(resp.Error, "exceeds") {
			t.Errorf("%s list-length overflow: error = %q", endpoint, resp.Error)
		}
		postJSON(t, ts.URL+endpoint, batchBody(nil, long), http.StatusBadRequest, &resp)
		if !strings.Contains(resp.Error, "exceeds") {
			t.Errorf("%s target-length overflow: error = %q", endpoint, resp.Error)
		}
		postJSON(t, ts.URL+endpoint, batchBody(wide, wide), http.StatusBadRequest, &resp)
		if !strings.Contains(resp.Error, "exceeds") {
			t.Errorf("%s pair-count overflow: error = %q", endpoint, resp.Error)
		}
		// A body over the 256-byte cap is a too-large request, not bad
		// JSON: it must answer 413 so clients know to shrink the batch.
		big := batchBody(make([]graph.VertexID, 12), make([]graph.VertexID, 1))
		if len(big) <= 256 {
			big = `{"sources":[` + strings.Repeat("0,", 200) + `0],"targets":[0]}`
		}
		postJSON(t, ts.URL+endpoint, big, http.StatusRequestEntityTooLarge, &resp)
		if resp.Error == "" {
			t.Errorf("%s oversized body: missing error", endpoint)
		}
	}
}

// TestBatchRoutePairCapLowerThanDistance checks that batch route enforces
// its own, tighter pair cap: a matrix the distance endpoint accepts (cells
// are one int64 each) is rejected by the route endpoint, whose cells carry
// whole paths.
func TestBatchRoutePairCapLowerThanDistance(t *testing.T) {
	ts, g := newMethodServer(t, core.MethodCH,
		server.WithBatchLimits(1024, 0), server.WithBatchRouteLimit(16))
	ids := make([]graph.VertexID, 5) // 5 x 5 = 25: over 16, under 1024
	for i := range ids {
		ids[i] = graph.VertexID(i % g.NumVertices())
	}
	body := batchBody(ids, ids)
	var resp struct{ Error string }
	postJSON(t, ts.URL+"/v1/batch/distance", body, http.StatusOK, &struct{}{})
	postJSON(t, ts.URL+"/v1/batch/route", body, http.StatusBadRequest, &resp)
	if !strings.Contains(resp.Error, "exceeds the 16-pair limit") {
		t.Errorf("route pair-cap overflow: error = %q", resp.Error)
	}
}

// serveWithContext drives the handler directly with a cancellable request
// context, returning the recorded response.
func serveWithContext(ctx context.Context, h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestRequestContextCancelled checks that an already-cancelled request
// context aborts every query endpoint with 499 and an expired deadline
// with 503.
func TestRequestContextCancelled(t *testing.T) {
	g := testutil.SmallRoad(400, 57)
	idx, err := core.BuildIndex(core.MethodDijkstra, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := server.New(g, idx).Handler()

	cancelled, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	far := fmt.Sprintf("from=0&to=%d", g.NumVertices()-1)
	batch := batchBody([]graph.VertexID{0, 1}, []graph.VertexID{2, 3})
	for _, c := range []struct {
		method, target, body string
	}{
		{http.MethodGet, "/v1/distance?" + far, ""},
		{http.MethodGet, "/v1/route?" + far, ""},
		{http.MethodPost, "/v1/batch/distance", batch},
		{http.MethodPost, "/v1/batch/route", batch},
	} {
		if rec := serveWithContext(cancelled, h, c.method, c.target, c.body); rec.Code != 499 {
			t.Errorf("%s %s on cancelled context: status %d, want 499", c.method, c.target, rec.Code)
		}
	}

	expired, cancelExpired := context.WithTimeout(context.Background(), -1)
	defer cancelExpired()
	if rec := serveWithContext(expired, h, http.MethodGet, "/v1/distance?"+far, ""); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("distance past deadline: status %d, want %d", rec.Code, http.StatusServiceUnavailable)
	}
}

// TestBatchCancelledMidFlight cancels the request context while a large
// batch is being answered and checks the handler aborts with 499 instead
// of completing the matrix. Run under -race this also proves the abort
// path is race-clean.
func TestBatchCancelledMidFlight(t *testing.T) {
	g := testutil.SmallRoad(2000, 41)
	idx, err := core.BuildIndex(core.MethodDijkstra, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := server.New(g, idx).Handler()
	var sources, targets []graph.VertexID
	for _, p := range testutil.SamplePairs(g, 32, 743) {
		sources = append(sources, p[0])
		targets = append(targets, p[1])
	}
	body := batchBody(sources, targets) // 1024 bidirectional-Dijkstra pairs

	ctx, cancelFn := context.WithCancel(context.Background())
	timer := time.AfterFunc(2*time.Millisecond, cancelFn)
	defer timer.Stop()
	rec := serveWithContext(ctx, h, http.MethodPost, "/v1/batch/distance", body)
	if rec.Code != 499 {
		t.Fatalf("mid-flight cancellation: status %d, want 499 (batch completed before the cancel?)", rec.Code)
	}
	var resp struct{ Error string }
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil || resp.Error == "" {
		t.Fatalf("mid-flight cancellation: bad error body (err %v, error %q)", err, resp.Error)
	}
}
