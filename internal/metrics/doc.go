// Package metrics is a dependency-free, race-clean metrics registry with
// Prometheus text exposition — the measurement layer the paper's whole
// methodology implies: an experimental evaluation of query techniques is
// only as good as its instrumentation, and a production deployment of the
// winning techniques needs the same rigor at serve time.
//
// Three instrument kinds cover every signal the server emits:
//
//   - Counter: a monotonically increasing uint64 (requests served, pairs
//     answered, truncations). Backed by one atomic add; never decreases.
//   - Gauge: a float64 that goes both ways (in-flight requests, pool
//     occupancy, draining/degraded flags). Set is one atomic store, Add a
//     short CAS loop.
//   - Histogram: fixed upper-bound buckets with an observation count and
//     sum (request latency, pool get-wait, batch sizes). Observe is a
//     linear scan over ~15 bounds plus three atomic updates — no locks,
//     no allocation.
//
// Labeled variants (CounterVec, GaugeVec, HistogramVec) key children by
// their label values through a sync.Map: the read path is lock-free, and
// hot call sites resolve their child once at wiring time (see
// internal/server) rather than per observation.
//
// GaugeFunc and CounterFunc adapt values the program already maintains
// (pool occupancy, TNR fallback counters, health flags) without double
// bookkeeping: the function is called at scrape time only.
//
// Exposition follows the Prometheus text format, version 0.0.4: families
// sorted by name, children sorted by label values, histograms rendered as
// cumulative _bucket{le="..."} series plus _sum and _count. Serve a
// Registry with its Handler (conventionally at GET /metrics).
//
// Registration panics on invalid or duplicate names: wiring happens once
// at startup, and a silently dropped metric is worse than a crash during
// deployment rollout.
package metrics
