package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact text-format output for one family of
// each kind. The format is a wire contract with the Prometheus scraper; a
// formatting regression here corrupts every dashboard downstream.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests served.")
	c.Add(42)
	g := r.Gauge("in_flight", "Requests in flight.")
	g.Set(3)
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)
	cv := r.CounterVec("by_code_total", "Requests by code.", "endpoint", "code")
	cv.With("/v1/route", "2xx").Add(7)
	cv.With("/v1/route", "499").Inc()
	cv.With(`/v1/odd"path`, "2xx").Inc() // label escaping

	const want = `# HELP by_code_total Requests by code.
# TYPE by_code_total counter
by_code_total{endpoint="/v1/odd\"path",code="2xx"} 1
by_code_total{endpoint="/v1/route",code="2xx"} 7
by_code_total{endpoint="/v1/route",code="499"} 1
# HELP in_flight Requests in flight.
# TYPE in_flight gauge
in_flight 3
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 2
latency_seconds_bucket{le="0.5"} 3
latency_seconds_bucket{le="+Inf"} 4
latency_seconds_sum 2.4
latency_seconds_count 4
# HELP requests_total Total requests served.
# TYPE requests_total counter
requests_total 42
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "a_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}
