package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines; run under -race this proves the hot paths are race-clean,
// and the final values prove no update was lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "counter")
	g := r.Gauge("g", "gauge")
	h := r.Histogram("h_seconds", "histogram", []float64{0.01, 0.1, 1})
	cv := r.CounterVec("cv_total", "labeled counter", "k")
	hv := r.HistogramVec("hv_seconds", "labeled histogram", []float64{1, 2}, "k")

	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := []string{"a", "b", "c"}[i%3]
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.05)
				cv.With(key).Inc()
				hv.With(key).Observe(float64(j % 3))
				// Interleave scrapes with observations: exposition must
				// not race the hot paths.
				if j%250 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("WritePrometheus: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	const n = goroutines * perG
	if got := c.Value(); got != n {
		t.Errorf("counter = %d, want %d", got, n)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != n {
		t.Errorf("histogram count = %d, want %d", got, n)
	}
	if got, want := h.Sum(), 0.05*n; math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
	var total uint64
	for _, k := range []string{"a", "b", "c"} {
		total += cv.With(k).Value()
	}
	if total != n {
		t.Errorf("labeled counters sum to %d, want %d", total, n)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	// Non-cumulative per-bucket counts: <=1: {0.5, 1}; <=2: {1.5}; <=5: {3};
	// +Inf (overflow): {10}.
	want := []uint64{2, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 16 {
		t.Errorf("sum = %v, want 16", got)
	}
}

func TestVecSharesChildByValues(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("x_total", "", "a", "b")
	cv.With("p", "q").Add(3)
	cv.With("p", "q").Add(4)
	if got := cv.With("p", "q").Value(); got != 7 {
		t.Errorf("child = %d, want 7", got)
	}
	if got := cv.With("p", "r").Value(); got != 0 {
		t.Errorf("distinct child = %d, want 0", got)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"duplicate", func(r *Registry) { r.Counter("dup", ""); r.Counter("dup", "") }},
		{"bad name", func(r *Registry) { r.Counter("9bad", "") }},
		{"empty name", func(r *Registry) { r.Counter("", "") }},
		{"bad label", func(r *Registry) { r.CounterVec("ok_total", "", "bad-label") }},
		{"no labels vec", func(r *Registry) { r.CounterVec("ok_total", "") }},
		{"unsorted buckets", func(r *Registry) { r.Histogram("h", "", []float64{2, 1}) }},
		{"wrong label count", func(r *Registry) { r.CounterVec("v_total", "", "a").With("x", "y") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestGaugeSetAndFuncs(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp", "")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
	g.Inc()
	g.Dec()
	g.Dec()
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	var n uint64 = 41
	r.CounterFunc("fn_total", "", func() float64 { return float64(n) })
	r.GaugeFunc("fn_gauge", "", func() float64 { return -1 })
	n++
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fn_total 42\n", "fn_gauge -1\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
