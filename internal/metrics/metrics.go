package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use, but counters are normally created through a Registry so they are
// exposed.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only count up; negative deltas are a programming
// error the type system already prevents.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract) with a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets and tracks
// their sum. Observe is lock-free and allocation-free.
type Histogram struct {
	upper   []float64 // sorted strictly increasing; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic(fmt.Sprintf("metrics: histogram buckets not strictly increasing at %v", upper[i]))
		}
	}
	// Copy so a caller-retained slice cannot mutate the bounds.
	u := append([]float64(nil), upper...)
	return &Histogram{upper: u, buckets: make([]atomic.Uint64, len(u))}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.upper {
		if v <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LatencyBuckets spans 50µs to 2.5s — the range from a warm CH table
// lookup to a continental Dijkstra fallback under load.
var LatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	0.1, 0.25, 0.5, 1, 2.5,
}

// SizeBuckets is a geometric ladder for request sizes (batch pairs,
// streamed rows): 1 to ~1M in powers of 8.
var SizeBuckets = []float64{1, 8, 64, 512, 4096, 32768, 262144, 1 << 20}

// metricKind is the TYPE line of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one exposition family: a name, help, type, label schema and a
// set of children keyed by their label values.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogram families only

	// children maps the joined label values to a *child. Unlabeled
	// families have exactly one child under the empty key.
	children sync.Map

	// fn, when non-nil, makes this a function-backed single-value family
	// (CounterFunc/GaugeFunc): the value is read at scrape time.
	fn func() float64
}

// child is one labeled instrument of a family.
type child struct {
	values []string
	metric any // *Counter, *Gauge or *Histogram
}

// labelKey joins label values into a map key. \x1f (ASCII unit separator)
// cannot appear in reasonable label values; even if it does, the worst
// case is two label sets sharing a child, never corruption.
func labelKey(values []string) string {
	if len(values) == 1 {
		return values[0]
	}
	return strings.Join(values, "\x1f")
}

func (f *family) get(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	if c, ok := f.children.Load(key); ok {
		return c.(*child).metric
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = newHistogram(f.buckets)
	}
	c := &child{values: append([]string(nil), values...), metric: m}
	if prev, loaded := f.children.LoadOrStore(key, c); loaded {
		return prev.(*child).metric
	}
	return m
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Hot call sites should resolve their child once and retain it.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).(*Counter) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).(*Gauge) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).(*Histogram) }

// Registry holds metric families and renders them in the Prometheus text
// format. Registration is mutex-protected (it happens at wiring time);
// observation paths never touch the registry lock.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// validName reports whether s is a legal metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabel reports whether s is a legal label name
// ([a-zA-Z_][a-zA-Z0-9_]*).
func validLabel(s string) bool {
	if s == "" || strings.Contains(s, ":") {
		return false
	}
	return validName(s)
}

func (r *Registry) add(name, help string, kind metricKind, labels []string, buckets []float64, fn func() float64) *family {
	if !validName(name) {
		panic("metrics: invalid metric name " + name)
	}
	for _, l := range labels {
		if !validLabel(l) {
			panic("metrics: invalid label name " + l + " on " + name)
		}
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, buckets: buckets, fn: fn}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic("metrics: duplicate registration of " + name)
	}
	r.fams[name] = f
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.add(name, help, kindCounter, nil, nil, nil).get(nil).(*Counter)
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("metrics: CounterVec needs at least one label; use Counter")
	}
	return &CounterVec{r.add(name, help, kindCounter, labels, nil, nil)}
}

// CounterFunc registers a counter whose value is fn() at scrape time — for
// counts the program already maintains (e.g. TNR fallback counters). fn
// must be safe for concurrent use and monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(name, help, kindCounter, nil, nil, fn)
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.add(name, help, kindGauge, nil, nil, nil).get(nil).(*Gauge)
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("metrics: GaugeVec needs at least one label; use Gauge")
	}
	return &GaugeVec{r.add(name, help, kindGauge, labels, nil, nil)}
}

// GaugeFunc registers a gauge whose value is fn() at scrape time — for
// state the program already tracks (pool occupancy, draining flags). fn
// must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(name, help, kindGauge, nil, nil, fn)
}

// Histogram registers and returns an unlabeled histogram with the given
// upper bucket bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.add(name, help, kindHistogram, nil, buckets, nil).get(nil).(*Histogram)
}

// HistogramVec registers a histogram family with the given bounds and
// label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("metrics: HistogramVec needs at least one label; use Histogram")
	}
	return &HistogramVec{r.add(name, help, kindHistogram, labels, buckets, nil)}
}

// families returns a name-sorted snapshot for exposition.
func (r *Registry) families() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
