package metrics

// Prometheus text exposition, format version 0.0.4. The writer renders a
// point-in-time snapshot: families sorted by name, children sorted by
// label values, histograms as cumulative _bucket{le="..."} series plus
// _sum and _count. Values observed while a scrape is in flight may or may
// not appear in it — each individual sample is still atomically read, so
// a scrape never sees a torn value.

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		writeFamily(bw, f)
	}
	return bw.Flush()
}

// Handler serves the registry in the Prometheus text format — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func writeFamily(bw *bufio.Writer, f *family) {
	bw.WriteString("# HELP ")
	bw.WriteString(f.name)
	bw.WriteByte(' ')
	bw.WriteString(escapeHelp(f.help))
	bw.WriteString("\n# TYPE ")
	bw.WriteString(f.name)
	bw.WriteByte(' ')
	bw.WriteString(string(f.kind))
	bw.WriteByte('\n')

	if f.fn != nil {
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(formatFloat(f.fn()))
		bw.WriteByte('\n')
		return
	}

	for _, c := range f.sortedChildren() {
		switch m := c.metric.(type) {
		case *Counter:
			writeSample(bw, f.name, "", f.labels, c.values, "", "", strconv.FormatUint(m.Value(), 10))
		case *Gauge:
			writeSample(bw, f.name, "", f.labels, c.values, "", "", formatFloat(m.Value()))
		case *Histogram:
			var cum uint64
			for i, ub := range m.upper {
				cum += m.buckets[i].Load()
				writeSample(bw, f.name, "_bucket", f.labels, c.values, "le", formatFloat(ub), strconv.FormatUint(cum, 10))
			}
			writeSample(bw, f.name, "_bucket", f.labels, c.values, "le", "+Inf", strconv.FormatUint(m.Count(), 10))
			writeSample(bw, f.name, "_sum", f.labels, c.values, "", "", formatFloat(m.Sum()))
			writeSample(bw, f.name, "_count", f.labels, c.values, "", "", strconv.FormatUint(m.Count(), 10))
		}
	}
}

// sortedChildren snapshots the children sorted by label values, so the
// exposition order is stable across scrapes.
func (f *family) sortedChildren() []*child {
	var out []*child
	f.children.Range(func(_, v any) bool {
		out = append(out, v.(*child))
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// writeSample renders one line: name[suffix]{labels...,extraK="extraV"} value.
func writeSample(bw *bufio.Writer, name, suffix string, labels, values []string, extraK, extraV, val string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || extraK != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		if extraK != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraK)
			bw.WriteString(`="`)
			bw.WriteString(extraV)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(val)
	bw.WriteByte('\n')
}

// formatFloat renders a float the way Prometheus clients conventionally
// do: shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	return labelEscaper.Replace(s)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	return helpEscaper.Replace(s)
}
