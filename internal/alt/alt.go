// Package alt implements ALT (A*, Landmarks, Triangle inequality) of
// Goldberg and Harrelson, surveyed in the paper's Appendix A as related
// work: a small set of landmarks is selected, the distance from every
// vertex to every landmark is precomputed, and queries run A* with the
// lower bound max_L |dist(L, t) - dist(L, v)| derived from the triangle
// inequality.
//
// The paper cites prior results showing ALT is dominated by CH in both
// space and query time; this implementation exists so that the claim can be
// checked on our testbed (see the ablation benchmarks).
package alt

import (
	"context"
	"time"

	"roadnet/internal/cancel"
	"roadnet/internal/dijkstra"
	"roadnet/internal/graph"
	"roadnet/internal/pq"
)

// Options configures Build.
type Options struct {
	// NumLandmarks is the number of landmarks (default 16).
	NumLandmarks int
	// Seed selects the first landmark (farthest-point selection is then
	// deterministic).
	Seed int64
}

// Index is a built ALT index. The landmark tables are immutable after
// Build, so one Index may be shared by any number of goroutines; per-query
// mutable state lives in a Searcher (create one per goroutine with
// NewSearcher). The Index's own Distance/ShortestPath methods delegate to
// one internal default Searcher and are therefore not safe for concurrent
// use.
type Index struct {
	g         *graph.Graph
	landmarks []graph.VertexID
	// distTo[l][v] = dist(landmarks[l], v); the graph is undirected, so one
	// table serves both bound directions.
	distTo [][]int64

	buildTime time.Duration

	// def is the default searcher backing the Index's own query methods.
	def *Searcher
}

// Searcher is a reusable A* query context over an Index. It is not safe
// for concurrent use; create one per goroutine.
type Searcher struct {
	ix *Index

	dist        []int64
	parent      []int32
	gen         []uint32
	cur         uint32
	heap        *pq.Heap
	settledLast int

	// pathBuf and pathIter are the searcher-owned scratch behind OpenPath
	// and the path collector: the parent walk is assembled into pathBuf
	// (reused across queries) and streamed from pathIter.
	pathBuf  []graph.VertexID
	pathIter graph.SlicePath
}

// NewSearcher returns a fresh query context sharing ix's immutable
// landmark tables.
func (ix *Index) NewSearcher() *Searcher {
	n := ix.g.NumVertices()
	return &Searcher{
		ix:     ix,
		dist:   make([]int64, n),
		parent: make([]int32, n),
		gen:    make([]uint32, n),
		heap:   pq.New(n),
	}
}

// Build selects landmarks by farthest-point traversal and precomputes the
// landmark distance tables.
func Build(g *graph.Graph, opts Options) *Index {
	start := time.Now()
	n := g.NumVertices()
	if opts.NumLandmarks <= 0 {
		opts.NumLandmarks = 16
	}
	if opts.NumLandmarks > n {
		opts.NumLandmarks = n
	}
	ix := &Index{g: g}
	ctx := dijkstra.NewContext(g)
	// Farthest-point selection: start anywhere, repeatedly add the vertex
	// maximizing the minimum distance to the chosen landmarks.
	first := graph.VertexID(opts.Seed % int64(n))
	if first < 0 {
		first += graph.VertexID(n)
	}
	minDist := make([]int64, n)
	for i := range minDist {
		minDist[i] = graph.Infinity
	}
	cur := first
	for len(ix.landmarks) < opts.NumLandmarks {
		ix.landmarks = append(ix.landmarks, cur)
		ctx.Run([]graph.VertexID{cur}, dijkstra.Options{})
		row := make([]int64, n)
		for v := 0; v < n; v++ {
			row[v] = ctx.Dist(graph.VertexID(v))
		}
		ix.distTo = append(ix.distTo, row)
		next := graph.VertexID(-1)
		var nextDist int64 = -1
		for v := 0; v < n; v++ {
			if row[v] < graph.Infinity && row[v] < minDist[v] {
				minDist[v] = row[v]
			}
			if minDist[v] < graph.Infinity && minDist[v] > nextDist {
				nextDist = minDist[v]
				next = graph.VertexID(v)
			}
		}
		if next < 0 || next == cur {
			break
		}
		cur = next
	}
	ix.buildTime = time.Since(start)
	return ix
}

// defSearcher lazily creates the default searcher, so indexes queried only
// through NewSearcher/pools never pay for its O(n) arrays. Lazy without a
// lock is fine: the Index's own query methods are single-goroutine by
// contract.
func (ix *Index) defSearcher() *Searcher {
	if ix.def == nil {
		ix.def = ix.NewSearcher()
	}
	return ix.def
}

// potential returns the ALT lower bound on dist(v, t).
func (ix *Index) potential(v, t graph.VertexID) int64 {
	var best int64
	for l := range ix.landmarks {
		dv, dt := ix.distTo[l][v], ix.distTo[l][t]
		if dv >= graph.Infinity || dt >= graph.Infinity {
			continue
		}
		if d := dv - dt; d > best {
			best = d
		} else if d := dt - dv; d > best {
			best = d
		}
	}
	return best
}

func (s *Searcher) reset() {
	s.cur++
	if s.cur == 0 {
		for i := range s.gen {
			s.gen[i] = 0
		}
		s.cur = 1
	}
	s.heap.Clear()
}

// runCtx executes A* from src to t and returns whether t was settled,
// with cancellation: the search polls ctx every
// cancel.Interval settled vertices and aborts with its error.
func (s *Searcher) runCtx(ctx context.Context, src, t graph.VertexID) (bool, error) {
	ix := s.ix
	s.reset()
	s.settledLast = 0
	s.gen[src] = s.cur
	s.dist[src] = 0
	s.parent[src] = -1
	s.heap.Push(src, ix.potential(src, t))
	for !s.heap.Empty() {
		if err := cancel.Poll(ctx, s.settledLast); err != nil {
			return false, err
		}
		v, _ := s.heap.Pop()
		s.settledLast++
		if v == t {
			return true, nil
		}
		d := s.dist[v]
		lo, hi := ix.g.ArcsOf(v)
		for a := lo; a < hi; a++ {
			w := ix.g.Head(a)
			nd := d + int64(ix.g.ArcWeight(a))
			if s.gen[w] != s.cur {
				s.gen[w] = s.cur
				s.dist[w] = nd
				s.parent[w] = int32(v)
				s.heap.Push(w, nd+ix.potential(w, t))
			} else if nd < s.dist[w] && s.heap.Contains(w) {
				s.dist[w] = nd
				s.parent[w] = int32(v)
				s.heap.Push(w, nd+ix.potential(w, t))
			}
		}
	}
	return false, nil
}

// Distance answers a distance query.
func (s *Searcher) Distance(src, t graph.VertexID) int64 {
	d, _ := s.DistanceContext(context.Background(), src, t)
	return d
}

// ShortestPath answers a shortest-path query.
func (s *Searcher) ShortestPath(src, t graph.VertexID) ([]graph.VertexID, int64) {
	path, d, _ := s.ShortestPathContext(context.Background(), src, t)
	return path, d
}

// DistanceContext is Distance with cancellation (see runCtx). An
// already-cancelled context aborts before any work, trivial s == t
// queries included.
func (s *Searcher) DistanceContext(ctx context.Context, src, t graph.VertexID) (int64, error) {
	if err := ctx.Err(); err != nil {
		return graph.Infinity, err
	}
	if src == t {
		return 0, nil
	}
	found, err := s.runCtx(ctx, src, t)
	if err != nil {
		return graph.Infinity, err
	}
	if !found {
		return graph.Infinity, nil
	}
	return s.dist[t], nil
}

// ShortestPathContext is ShortestPath with cancellation (see runCtx). It
// is a thin collector over OpenPath: the iterator is drained into a fresh
// caller-owned slice.
func (s *Searcher) ShortestPathContext(ctx context.Context, src, t graph.VertexID) ([]graph.VertexID, int64, error) {
	it, d, err := s.OpenPath(ctx, src, t)
	if err != nil || it == nil {
		return nil, graph.Infinity, err
	}
	path, err := graph.AppendPath(make([]graph.VertexID, 0, len(s.pathBuf)), it)
	if err != nil {
		return nil, graph.Infinity, err
	}
	return path, d, nil
}

// OpenPath runs the A* query and returns a PathIterator over the shortest
// path plus its length, or (nil, Infinity, nil) when t is unreachable. The
// parent walk is assembled into searcher-owned scratch, so streaming a
// path allocates nothing in steady state; the iterator is invalidated by
// this searcher's next query.
func (s *Searcher) OpenPath(ctx context.Context, src, t graph.VertexID) (graph.PathIterator, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, graph.Infinity, err
	}
	if src == t {
		s.pathBuf = append(s.pathBuf[:0], src)
		s.pathIter.Reset(s.pathBuf)
		return &s.pathIter, 0, nil
	}
	found, err := s.runCtx(ctx, src, t)
	if err != nil {
		return nil, graph.Infinity, err
	}
	if !found {
		return nil, graph.Infinity, nil
	}
	rev := s.pathBuf[:0]
	for v := t; v >= 0; v = graph.VertexID(s.parent[v]) {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	s.pathBuf = rev
	s.pathIter.Reset(rev)
	return &s.pathIter, s.dist[t], nil
}

// SettledLast reports the vertices settled by the last query.
func (s *Searcher) SettledLast() int { return s.settledLast }

// Distance answers a distance query on the default searcher.
func (ix *Index) Distance(s, t graph.VertexID) int64 { return ix.defSearcher().Distance(s, t) }

// ShortestPath answers a shortest-path query on the default searcher.
func (ix *Index) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	return ix.defSearcher().ShortestPath(s, t)
}

// SettledLast reports the vertices settled by the default searcher's last
// query.
func (ix *Index) SettledLast() int { return ix.defSearcher().SettledLast() }

// NumLandmarks returns the number of selected landmarks.
func (ix *Index) NumLandmarks() int { return len(ix.landmarks) }

// BuildTime returns the preprocessing duration.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// SizeBytes reports the landmark table footprint.
func (ix *Index) SizeBytes() int64 {
	var size int64
	for _, row := range ix.distTo {
		size += int64(len(row)) * 8
	}
	return size + int64(len(ix.landmarks))*4
}
