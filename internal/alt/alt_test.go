package alt_test

import (
	"testing"

	"roadnet/internal/alt"
	"roadnet/internal/dijkstra"
	"roadnet/internal/gen"
	"roadnet/internal/graph"
	"roadnet/internal/testutil"
)

func TestALTExhaustiveFigure1(t *testing.T) {
	g := testutil.Figure1()
	ix := alt.Build(g, alt.Options{NumLandmarks: 3})
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.AllPairs(g), ix.ShortestPath)
}

func TestALTRoadNetwork(t *testing.T) {
	g := testutil.SmallRoad(900, 401)
	ix := alt.Build(g, alt.Options{})
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 300, 91), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 100, 93), ix.ShortestPath)
}

func TestALTAdversarialGraph(t *testing.T) {
	g := gen.RandomConnected(150, 300, 40, 401)
	ix := alt.Build(g, alt.Options{NumLandmarks: 8})
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 400, 97), ix.Distance)
}

func TestALTPrunesSearchSpace(t *testing.T) {
	// The landmark bounds must direct the search: ALT should settle fewer
	// vertices than plain Dijkstra on long queries.
	g := testutil.SmallRoad(2500, 403)
	ix := alt.Build(g, alt.Options{})
	ctx := dijkstra.NewContext(g)
	var altTotal, dijTotal int
	for _, p := range testutil.SamplePairs(g, 30, 99) {
		if p[0] == p[1] {
			continue
		}
		ix.Distance(p[0], p[1])
		altTotal += ix.SettledLast()
		dijTotal += ctx.Run([]graph.VertexID{p[0]}, dijkstra.Options{Targets: []graph.VertexID{p[1]}})
	}
	if altTotal >= dijTotal {
		t.Errorf("ALT settled %d >= Dijkstra %d", altTotal, dijTotal)
	}
}

func TestALTDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	g0 := testutil.Figure1()
	for i := 0; i < 4; i++ {
		b.AddVertex(g0.Coord(graph.VertexID(i)))
	}
	_ = b.AddEdge(0, 1, 2)
	_ = b.AddEdge(2, 3, 2)
	g := b.Build()
	ix := alt.Build(g, alt.Options{NumLandmarks: 2})
	if d := ix.Distance(0, 3); d != graph.Infinity {
		t.Errorf("cross-component distance = %d, want Infinity", d)
	}
	if p, _ := ix.ShortestPath(0, 3); p != nil {
		t.Errorf("cross-component path = %v", p)
	}
}

func TestALTStats(t *testing.T) {
	g := testutil.SmallRoad(400, 407)
	ix := alt.Build(g, alt.Options{NumLandmarks: 4})
	if ix.NumLandmarks() != 4 {
		t.Errorf("landmarks = %d, want 4", ix.NumLandmarks())
	}
	if ix.SizeBytes() <= 0 || ix.BuildTime() <= 0 {
		t.Error("stats must be positive")
	}
	// More landmarks than vertices clamps.
	tiny := alt.Build(testutil.Figure1(), alt.Options{NumLandmarks: 100})
	if tiny.NumLandmarks() > 8 {
		t.Errorf("landmarks %d exceed vertex count", tiny.NumLandmarks())
	}
}
