// Package cancel provides the bounded-interval context polling shared by
// every query loop in the repository. Long-running searches (the
// bidirectional Dijkstra baseline, CH upward searches, SILC/PCPD path
// walks, batch matrix sweeps) call Poll with a monotonically increasing
// step counter; the context is consulted only once every Interval steps,
// so the amortized cost per loop iteration is one increment and one
// branch, while a cancelled request is still observed within a bounded
// number of steps.
package cancel

import "context"

// Interval is the number of loop steps between context polls. It is a
// power of two so the check compiles to a mask. 256 settles/hops is a few
// microseconds of work on any of the techniques, keeping cancellation
// latency far below a request round-trip while making the poll overhead
// unmeasurable.
const Interval = 256

// Poll returns the context's error when step is a multiple of Interval
// and the context is done, and nil otherwise. Passing step 0 polls, so a
// query issued on an already-cancelled context aborts before doing any
// work.
func Poll(ctx context.Context, step int) error {
	if step&(Interval-1) != 0 {
		return nil
	}
	return ctx.Err()
}
