package ch

import (
	"fmt"
	"io"
	"time"

	"roadnet/internal/binio"
	"roadnet/internal/graph"
)

// Serialization lets deployments build the hierarchy once and load it at
// startup. The format stores only the index structures; the road network
// itself travels separately (e.g. as DIMACS files) and is re-attached at
// load time, with size checks guarding against mismatched graphs.

const (
	chMagic   = "ROADNET-CH\n"
	chVersion = 1
)

// Save serializes the hierarchy.
func (h *Hierarchy) Save(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Magic(chMagic)
	bw.U8(chVersion)
	bw.I64(int64(h.g.NumVertices()))
	bw.I64(int64(h.g.NumEdges()))
	bw.I64(int64(h.numShortcuts))
	bw.I64(h.buildTime.Nanoseconds())
	bw.I32Slice(h.rank)
	bw.I32Slice(h.firstUp)
	bw.I32Slice(h.upHead)
	bw.I32Slice(h.upWeight)
	bw.I32Slice(h.upMiddle)
	// The unpack map as parallel key/value arrays.
	bw.I64(int64(len(h.unpack)))
	for k, middle := range h.unpack {
		bw.I32(k.u)
		bw.I32(k.v)
		bw.I32(middle)
	}
	return bw.Flush()
}

// ReadHierarchy deserializes a hierarchy previously written with Save
// and re-attaches it to g, which must be the same road network the
// hierarchy was built on.
func ReadHierarchy(r io.Reader, g *graph.Graph) (*Hierarchy, error) {
	br := binio.NewReader(r)
	br.Magic(chMagic)
	if v := br.U8(); br.Err() == nil && v != chVersion {
		return nil, fmt.Errorf("ch: unsupported format version %d", v)
	}
	n := br.I64()
	m := br.I64()
	if br.Err() == nil && (n != int64(g.NumVertices()) || m != int64(g.NumEdges())) {
		return nil, fmt.Errorf("ch: index was built for a %dx%d graph, got %dx%d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	h := &Hierarchy{g: g}
	h.numShortcuts = int(br.I64())
	h.buildTime = time.Duration(br.I64())
	h.rank = br.I32Slice()
	h.firstUp = br.I32Slice()
	h.upHead = br.I32Slice()
	h.upWeight = br.I32Slice()
	h.upMiddle = br.I32Slice()
	count := br.I64()
	if br.Err() != nil {
		return nil, fmt.Errorf("ch: reading index: %w", br.Err())
	}
	if count < 0 || count > int64(len(h.upHead))+m {
		return nil, fmt.Errorf("ch: implausible unpack table size %d", count)
	}
	h.unpack = make(map[pairKey]int32, count)
	for i := int64(0); i < count; i++ {
		u := br.I32()
		v := br.I32()
		middle := br.I32()
		h.unpack[pairKey{u: u, v: v}] = middle
	}
	if br.Err() != nil {
		return nil, fmt.Errorf("ch: reading index: %w", br.Err())
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// validate performs structural checks on a deserialized hierarchy so that
// corrupted files fail fast instead of producing wrong query results.
func (h *Hierarchy) validate() error {
	n := h.g.NumVertices()
	if len(h.rank) != n || len(h.firstUp) != n+1 {
		return fmt.Errorf("ch: index arrays sized for a different graph")
	}
	arcs := len(h.upHead)
	if len(h.upWeight) != arcs || len(h.upMiddle) != arcs {
		return fmt.Errorf("ch: inconsistent upward arc arrays")
	}
	if n > 0 && int(h.firstUp[n]) != arcs {
		return fmt.Errorf("ch: firstUp does not cover the arc array")
	}
	for v := 0; v < n; v++ {
		if h.firstUp[v] > h.firstUp[v+1] {
			return fmt.Errorf("ch: firstUp not monotone at %d", v)
		}
	}
	for _, head := range h.upHead {
		if head < 0 || int(head) >= n {
			return fmt.Errorf("ch: arc head %d out of range", head)
		}
	}
	return nil
}
