package ch

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"roadnet/internal/binio"
	"roadnet/internal/graph"
)

// Serialization lets deployments build the hierarchy once and load it at
// startup. The format stores only the index structures; the road network
// itself travels separately (e.g. as DIMACS or binary graph files) and is
// re-attached at load time, with size checks guarding against mismatched
// graphs.
//
// Two formats exist:
//
//   - v2 (Save): the flat zero-copy container of internal/binio. All big
//     arrays — the rank permutation, the upward CSR and the unpack table
//     (as sorted parallel key/value arrays) — are 64-byte-aligned sections
//     that a loader can mmap and cast in place.
//   - v1 (SaveV1): the legacy length-prefixed stream, kept as the
//     portability fallback and for downgrading to older readers.
//
// ReadHierarchy accepts either format from a stream; core.LoadIndexFile
// adds the mmap fast path for v2 files.

const (
	chMagic   = "ROADNET-CH\n"
	chVersion = 1
)

// Fourcc tags a flat container holding a contraction hierarchy.
const Fourcc uint32 = 'C' | 'H'<<8 | ' '<<16 | ' '<<24

// Save serializes the hierarchy in the flat v2 format.
func (h *Hierarchy) Save(w io.Writer) error {
	fw := binio.NewFlatWriter(Fourcc)
	mw := fw.Meta()
	mw.Magic(chMagic)
	mw.I64(int64(h.g.NumVertices()))
	mw.I64(int64(h.g.NumEdges()))
	mw.I64(int64(h.numShortcuts))
	mw.I64(h.buildTime.Nanoseconds())
	fw.I32Section(h.rank)
	fw.I32Section(h.firstUp)
	fw.I32Section(h.upHead)
	fw.I32Section(h.upWeight)
	fw.I32Section(h.upMiddle)
	u, v, mid := h.unpackTriples()
	fw.I32Section(u)
	fw.I32Section(v)
	fw.I32Section(mid)
	_, err := fw.WriteTo(w)
	return err
}

// unpackTriples returns the unpack table as parallel arrays sorted by
// (u, v) — the form the flat format stores and flat-loaded hierarchies
// query by binary search.
func (h *Hierarchy) unpackTriples() (u, v, mid []int32) {
	if h.unpack == nil {
		return h.unpackU, h.unpackV, h.unpackMiddle
	}
	keys := make([]pairKey, 0, len(h.unpack))
	for k := range h.unpack {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].u != keys[j].u {
			return keys[i].u < keys[j].u
		}
		return keys[i].v < keys[j].v
	})
	u = make([]int32, len(keys))
	v = make([]int32, len(keys))
	mid = make([]int32, len(keys))
	for i, k := range keys {
		u[i], v[i], mid[i] = k.u, k.v, h.unpack[k]
	}
	return u, v, mid
}

// SaveV1 serializes the hierarchy in the legacy length-prefixed v1 format,
// readable by older binaries (and on platforms where the flat container's
// cast path never applies). New deployments should prefer Save.
func (h *Hierarchy) SaveV1(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Magic(chMagic)
	bw.U8(chVersion)
	bw.I64(int64(h.g.NumVertices()))
	bw.I64(int64(h.g.NumEdges()))
	bw.I64(int64(h.numShortcuts))
	bw.I64(h.buildTime.Nanoseconds())
	bw.I32Slice(h.rank)
	bw.I32Slice(h.firstUp)
	bw.I32Slice(h.upHead)
	bw.I32Slice(h.upWeight)
	bw.I32Slice(h.upMiddle)
	// The unpack map as parallel key/value arrays.
	u, v, mid := h.unpackTriples()
	bw.I64(int64(len(u)))
	for i := range u {
		bw.I32(u[i])
		bw.I32(v[i])
		bw.I32(mid[i])
	}
	return bw.Flush()
}

// ReadHierarchy deserializes a hierarchy previously written with Save (v2)
// or SaveV1, re-attaching it to g, which must be the same road network the
// hierarchy was built on. This is the copying stream path; use
// core.LoadIndexFile for the zero-copy mmap path.
func ReadHierarchy(r io.Reader, g *graph.Graph) (*Hierarchy, error) {
	br := bufio.NewReader(r)
	if prefix, err := br.Peek(len(binio.FlatMagic)); err == nil && binio.IsFlat(prefix) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("ch: reading index: %w", err)
		}
		f, err := binio.ParseFlat(data, true)
		if err != nil {
			return nil, fmt.Errorf("ch: %w", err)
		}
		return HierarchyFromFlat(f, g)
	}
	return readHierarchyV1(br, g)
}

// HierarchyFromFlat builds a hierarchy over the sections of f. The
// hierarchy aliases f's data; f must stay open for its lifetime. Path
// unpacking on a flat-loaded hierarchy resolves shortcut middles by binary
// search over the sorted unpack sections instead of a rebuilt map, so no
// per-entry work happens at load time.
func HierarchyFromFlat(f *binio.FlatFile, g *graph.Graph) (*Hierarchy, error) {
	if f.Fourcc() != Fourcc {
		return nil, fmt.Errorf("ch: flat container fourcc %#x is not a contraction hierarchy", f.Fourcc())
	}
	mr := f.Meta()
	mr.Magic(chMagic)
	n := mr.I64()
	m := mr.I64()
	numShortcuts := mr.I64()
	buildNs := mr.I64()
	if err := mr.Err(); err != nil {
		return nil, fmt.Errorf("ch: reading header: %w", err)
	}
	if n != int64(g.NumVertices()) || m != int64(g.NumEdges()) {
		return nil, fmt.Errorf("ch: index was built for a %dx%d graph, got %dx%d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	h := &Hierarchy{
		g:            g,
		numShortcuts: int(numShortcuts),
		buildTime:    time.Duration(buildNs),
	}
	var err error
	read := func(i int) []int32 {
		if err != nil {
			return nil
		}
		var s []int32
		if s, err = f.I32(i); err != nil {
			err = fmt.Errorf("ch: %w", err)
		}
		return s
	}
	h.rank = read(0)
	h.firstUp = read(1)
	h.upHead = read(2)
	h.upWeight = read(3)
	h.upMiddle = read(4)
	h.unpackU = read(5)
	h.unpackV = read(6)
	h.unpackMiddle = read(7)
	if err != nil {
		return nil, err
	}
	// O(1) structural checks. Flat loads deliberately skip the per-element
	// scans of the v1 path so a mapped index touches no data pages at
	// startup; the sections are trusted to the format that produced them.
	arcs := len(h.upHead)
	if len(h.rank) != int(n) || len(h.firstUp) != int(n)+1 ||
		len(h.upWeight) != arcs || len(h.upMiddle) != arcs {
		return nil, fmt.Errorf("%w: ch index arrays sized for a different graph", binio.ErrCorrupt)
	}
	if n > 0 && int(h.firstUp[n]) != arcs {
		return nil, fmt.Errorf("%w: ch firstUp does not cover the arc array", binio.ErrCorrupt)
	}
	if len(h.unpackU) != len(h.unpackV) || len(h.unpackU) != len(h.unpackMiddle) {
		return nil, fmt.Errorf("%w: ch unpack sections have inconsistent lengths", binio.ErrCorrupt)
	}
	return h, nil
}

// readHierarchyV1 decodes the legacy length-prefixed format.
func readHierarchyV1(r io.Reader, g *graph.Graph) (*Hierarchy, error) {
	br := binio.NewReader(r)
	br.Magic(chMagic)
	if v := br.U8(); br.Err() == nil && v != chVersion {
		return nil, fmt.Errorf("ch: unsupported format version %d (this reader supports v%d and the v%d flat container)",
			v, chVersion, binio.FlatVersion)
	}
	n := br.I64()
	m := br.I64()
	if br.Err() == nil && (n != int64(g.NumVertices()) || m != int64(g.NumEdges())) {
		return nil, fmt.Errorf("ch: index was built for a %dx%d graph, got %dx%d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	h := &Hierarchy{g: g}
	h.numShortcuts = int(br.I64())
	h.buildTime = time.Duration(br.I64())
	h.rank = br.I32Slice()
	h.firstUp = br.I32Slice()
	h.upHead = br.I32Slice()
	h.upWeight = br.I32Slice()
	h.upMiddle = br.I32Slice()
	count := br.I64()
	if br.Err() != nil {
		return nil, fmt.Errorf("ch: reading index: %w", br.Err())
	}
	if count < 0 || count > int64(len(h.upHead))+m {
		return nil, fmt.Errorf("ch: implausible unpack table size %d", count)
	}
	h.unpack = make(map[pairKey]int32, count)
	for i := int64(0); i < count; i++ {
		u := br.I32()
		v := br.I32()
		middle := br.I32()
		h.unpack[pairKey{u: u, v: v}] = middle
	}
	if br.Err() != nil {
		return nil, fmt.Errorf("ch: reading index: %w", br.Err())
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// validate performs structural checks on a deserialized hierarchy so that
// corrupted files fail fast instead of producing wrong query results.
func (h *Hierarchy) validate() error {
	n := h.g.NumVertices()
	if len(h.rank) != n || len(h.firstUp) != n+1 {
		return fmt.Errorf("ch: index arrays sized for a different graph")
	}
	arcs := len(h.upHead)
	if len(h.upWeight) != arcs || len(h.upMiddle) != arcs {
		return fmt.Errorf("ch: inconsistent upward arc arrays")
	}
	if n > 0 && int(h.firstUp[n]) != arcs {
		return fmt.Errorf("ch: firstUp does not cover the arc array")
	}
	for v := 0; v < n; v++ {
		if h.firstUp[v] > h.firstUp[v+1] {
			return fmt.Errorf("ch: firstUp not monotone at %d", v)
		}
	}
	for _, head := range h.upHead {
		if head < 0 || int(head) >= n {
			return fmt.Errorf("ch: arc head %d out of range", head)
		}
	}
	return nil
}
