package ch

import (
	"context"

	"roadnet/internal/cancel"
	"roadnet/internal/graph"
)

// hopFrame is one pending shortcut segment (u, w) of the unpack stack.
type hopFrame struct{ u, w graph.VertexID }

// unpackIter lazily expands the augmented (shortcut-level) path of the
// last upward search into original-graph vertices. The augmented path is
// short — one hop per shortcut level, bounded by the search depth — but
// its expansion can be thousands of vertices, so the expansion is the part
// worth streaming: shortcuts are split through their middle-vertex tags on
// demand with an explicit stack, in the pre-order of §3.2's recursive
// expansion (c1 -> (v3,v1),(v1,v8)). The stack holds one frame per
// unexpanded level, so resident state is O(shortcut nesting depth), not
// O(path length).
type unpackIter struct {
	h   *Hierarchy
	ctx context.Context
	aug []graph.VertexID
	hop int // next augmented hop to expand

	stack   []hopFrame
	started bool
	emitted int
	err     error
	done    bool
}

// Next implements graph.PathIterator, polling ctx every cancel.Interval
// emitted vertices.
func (it *unpackIter) Next() (graph.VertexID, bool) {
	if it.done {
		return 0, false
	}
	if !it.started {
		it.started = true
		it.emitted++
		return it.aug[0], true
	}
	for {
		if len(it.stack) == 0 {
			if it.hop+1 >= len(it.aug) {
				it.done = true
				return 0, false
			}
			it.stack = append(it.stack, hopFrame{it.aug[it.hop], it.aug[it.hop+1]})
			it.hop++
		}
		f := it.stack[len(it.stack)-1]
		it.stack = it.stack[:len(it.stack)-1]
		if middle, ok := it.h.middleOf(f.u, f.w); ok && middle >= 0 {
			// Shortcut: expand (u, mid) before (mid, w), so push in reverse.
			it.stack = append(it.stack,
				hopFrame{graph.VertexID(middle), f.w},
				hopFrame{f.u, graph.VertexID(middle)})
			continue
		}
		// Original edge: emit its head.
		if err := cancel.Poll(it.ctx, it.emitted); err != nil {
			it.err = err
			it.done = true
			return 0, false
		}
		it.emitted++
		return f.w, true
	}
}

// Err implements graph.PathIterator.
func (it *unpackIter) Err() error { return it.err }

// OpenPath runs the upward search and returns a PathIterator over the
// exact shortest path in the original graph (shortcuts unpacked lazily)
// plus its length, or (nil, Infinity, nil) when t is unreachable. The
// iterator reads the searcher's parent arrays and scratch buffers and is
// invalidated by this searcher's next query.
func (s *Searcher) OpenPath(ctx context.Context, from, to graph.VertexID) (graph.PathIterator, int64, error) {
	if err := s.runCtx(ctx, from, to); err != nil {
		return nil, graph.Infinity, err
	}
	return s.openPathFromLast(ctx, from, to)
}

// openPathFromLast builds the augmented path of the last run call into
// searcher scratch and returns the lazy unpack iterator over it.
func (s *Searcher) openPathFromLast(ctx context.Context, from, to graph.VertexID) (graph.PathIterator, int64, error) {
	if s.lastMeet < 0 {
		if from == to && s.lastDist == 0 {
			return s.singleVertexIter(from), 0, nil
		}
		return nil, graph.Infinity, nil
	}
	if from == to {
		return s.singleVertexIter(from), 0, nil
	}
	// Augmented path: from -> meet (side 0, reversed) then meet -> to.
	up := s.upBuf[:0]
	for v := s.lastMeet; v >= 0; v = s.parent[0][v] {
		up = append(up, v)
		if s.parent[0][v] < 0 {
			break
		}
	}
	s.upBuf = up
	aug := s.augBuf[:0]
	for i := len(up) - 1; i >= 0; i-- {
		aug = append(aug, up[i])
	}
	for v := s.parent[1][s.lastMeet]; v >= 0; v = s.parent[1][v] {
		aug = append(aug, v)
		if s.parent[1][v] < 0 {
			break
		}
	}
	s.augBuf = aug
	s.unpack = unpackIter{h: s.h, ctx: ctx, aug: aug, stack: s.unpack.stack[:0]}
	return &s.unpack, s.lastDist, nil
}

// singleVertexIter returns an iterator over the trivial one-vertex path,
// reusing searcher scratch.
func (s *Searcher) singleVertexIter(v graph.VertexID) graph.PathIterator {
	s.augBuf = append(s.augBuf[:0], v)
	s.pathIter.Reset(s.augBuf)
	return &s.pathIter
}
