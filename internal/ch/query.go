package ch

import (
	"context"

	"roadnet/internal/cancel"
	"roadnet/internal/graph"
	"roadnet/internal/pq"
)

// Searcher is a reusable query context over a Hierarchy. Queries run the
// modified bidirectional Dijkstra of §3.2: both traversals relax only arcs
// leading to higher-ranked vertices, and the searches may not stop at the
// first meeting vertex — they continue until the frontier keys reach the
// best distance found ("there exist a few conditions that a traversal
// should fulfill before it can terminate").
//
// Stall-on-demand: when a vertex v is settled, the searcher checks whether
// some already-reached higher neighbor w proves a shorter path to v
// (dist[w] + w(v, w) < dist[v], valid because the graph is undirected). A
// stalled vertex's arcs cannot lie on a shortest path, so they are not
// relaxed, shrinking the upward search space. Disable with DisableStalling
// to measure the effect (see BenchmarkAblationCHStalling).
//
// A Searcher is not safe for concurrent use; create one per goroutine.
type Searcher struct {
	h *Hierarchy

	// DisableStalling turns off the stall-on-demand optimization.
	DisableStalling bool

	dist      [2][]int64
	parentArc [2][]int32 // upward-CSR arc used to reach the vertex, -1 at roots
	parent    [2][]int32
	gen       [2][]uint32
	cur       [2]uint32
	heap      [2]*pq.Heap

	// lastMeet caches the meeting vertex of the last query for path
	// reconstruction.
	lastMeet graph.VertexID
	lastDist int64
	// settledCount of the last query, for search-space statistics.
	settledCount int

	// Path-production scratch, reused across queries so streaming a path
	// allocates nothing in steady state: upBuf holds the side-0 parent
	// chain, augBuf the augmented (shortcut-level) path, unpack the lazy
	// expansion iterator and pathIter the trivial single-vertex case.
	upBuf    []graph.VertexID
	augBuf   []graph.VertexID
	unpack   unpackIter
	pathIter graph.SlicePath
}

// NewSearcher returns a fresh query context for h.
func (h *Hierarchy) NewSearcher() *Searcher {
	n := h.g.NumVertices()
	s := &Searcher{h: h, lastMeet: -1}
	for side := 0; side < 2; side++ {
		s.dist[side] = make([]int64, n)
		s.parentArc[side] = make([]int32, n)
		s.parent[side] = make([]int32, n)
		s.gen[side] = make([]uint32, n)
		s.heap[side] = pq.New(n)
	}
	return s
}

func (s *Searcher) reset() {
	for side := 0; side < 2; side++ {
		s.cur[side]++
		if s.cur[side] == 0 {
			for i := range s.gen[side] {
				s.gen[side][i] = 0
			}
			s.cur[side] = 1
		}
		s.heap[side].Clear()
	}
	s.lastMeet = -1
	s.lastDist = graph.Infinity
	s.settledCount = 0
}

func (s *Searcher) visit(side int, v graph.VertexID, d int64, parent, arc int32) {
	if s.gen[side][v] != s.cur[side] {
		s.gen[side][v] = s.cur[side]
		s.dist[side][v] = d
		s.parent[side][v] = parent
		s.parentArc[side][v] = arc
		s.heap[side].Push(v, d)
	} else if d < s.dist[side][v] && s.heap[side].Contains(v) {
		s.dist[side][v] = d
		s.parent[side][v] = parent
		s.parentArc[side][v] = arc
		s.heap[side].Push(v, d)
	}
}

// Distance returns dist(s, t), or graph.Infinity when t is unreachable.
func (s *Searcher) Distance(from, to graph.VertexID) int64 {
	s.run(from, to)
	return s.lastDist
}

// DistanceContext is Distance with cancellation: the upward searches poll
// ctx every cancel.Interval settled vertices and abort with its error.
func (s *Searcher) DistanceContext(ctx context.Context, from, to graph.VertexID) (int64, error) {
	if err := s.runCtx(ctx, from, to); err != nil {
		return graph.Infinity, err
	}
	return s.lastDist, nil
}

// SettledLast returns how many vertices the two upward searches of the last
// query settled, for search-space comparisons against plain Dijkstra.
func (s *Searcher) SettledLast() int { return s.settledCount }

func (s *Searcher) run(from, to graph.VertexID) {
	_ = s.runCtx(context.Background(), from, to)
}

func (s *Searcher) runCtx(ctx context.Context, from, to graph.VertexID) error {
	// Per the cancellation contract, an already-cancelled context aborts
	// before any work, trivial from == to queries included.
	if err := ctx.Err(); err != nil {
		return err
	}
	s.reset()
	if from == to {
		s.lastDist = 0
		s.lastMeet = from
		return nil
	}
	s.visit(0, from, 0, -1, -1)
	s.visit(1, to, 0, -1, -1)
	h := s.h
	best := graph.Infinity
	meet := graph.VertexID(-1)

	for {
		if err := cancel.Poll(ctx, s.settledCount); err != nil {
			return err
		}
		k0, k1 := graph.Infinity, graph.Infinity
		if !s.heap[0].Empty() {
			_, k0 = s.heap[0].Min()
		}
		if !s.heap[1].Empty() {
			_, k1 = s.heap[1].Min()
		}
		if k0 >= best && k1 >= best {
			break
		}
		side := 0
		if k1 < k0 {
			side = 1
		}
		if s.heap[side].Empty() {
			side = 1 - side
		}
		v, d := s.heap[side].Pop()
		s.settledCount++
		// Meeting check: v settled in this side; if the other side has
		// reached it, the concatenation is a candidate.
		other := 1 - side
		if s.gen[other][v] == s.cur[other] {
			if total := d + s.dist[other][v]; total < best {
				best = total
				meet = v
			}
		}
		// Stall-on-demand: a shorter path to v through a higher-ranked
		// neighbor proves v's outgoing arcs useless for shortest paths.
		if !s.DisableStalling {
			stalled := false
			for a := h.firstUp[v]; a < h.firstUp[v+1]; a++ {
				w := h.upHead[a]
				if s.gen[side][w] == s.cur[side] && s.dist[side][w]+int64(h.upWeight[a]) < d {
					stalled = true
					break
				}
			}
			if stalled {
				continue
			}
		}
		for a := h.firstUp[v]; a < h.firstUp[v+1]; a++ {
			s.visit(side, h.upHead[a], d+int64(h.upWeight[a]), int32(v), a)
		}
	}
	s.lastDist = best
	s.lastMeet = meet
	return nil
}

// ShortestPath returns the exact shortest path in the original graph
// (shortcuts unpacked) and its length.
func (s *Searcher) ShortestPath(from, to graph.VertexID) ([]graph.VertexID, int64) {
	path, d, _ := s.ShortestPathContext(context.Background(), from, to)
	return path, d
}

// ShortestPathContext is ShortestPath with cancellation (see
// DistanceContext). It is a thin collector over OpenPath: the lazy unpack
// iterator is drained into a fresh caller-owned slice.
func (s *Searcher) ShortestPathContext(ctx context.Context, from, to graph.VertexID) ([]graph.VertexID, int64, error) {
	it, d, err := s.OpenPath(ctx, from, to)
	if err != nil || it == nil {
		return nil, graph.Infinity, err
	}
	path, err := graph.AppendPath(make([]graph.VertexID, 0, 2*len(s.augBuf)), it)
	if err != nil {
		return nil, graph.Infinity, err
	}
	return path, d, nil
}

// Distance is a convenience one-shot query allocating a transient Searcher.
// Prefer NewSearcher for repeated queries.
func (h *Hierarchy) Distance(from, to graph.VertexID) int64 {
	return h.NewSearcher().Distance(from, to)
}

// ShortestPath is a convenience one-shot path query.
func (h *Hierarchy) ShortestPath(from, to graph.VertexID) ([]graph.VertexID, int64) {
	return h.NewSearcher().ShortestPath(from, to)
}
