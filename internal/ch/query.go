package ch

import (
	"context"

	"roadnet/internal/cancel"
	"roadnet/internal/graph"
	"roadnet/internal/pq"
)

// Searcher is a reusable query context over a Hierarchy. Queries run the
// modified bidirectional Dijkstra of §3.2: both traversals relax only arcs
// leading to higher-ranked vertices, and the searches may not stop at the
// first meeting vertex — they continue until the frontier keys reach the
// best distance found ("there exist a few conditions that a traversal
// should fulfill before it can terminate").
//
// Stall-on-demand: when a vertex v is settled, the searcher checks whether
// some already-reached higher neighbor w proves a shorter path to v
// (dist[w] + w(v, w) < dist[v], valid because the graph is undirected). A
// stalled vertex's arcs cannot lie on a shortest path, so they are not
// relaxed, shrinking the upward search space. Disable with DisableStalling
// to measure the effect (see BenchmarkAblationCHStalling).
//
// A Searcher is not safe for concurrent use; create one per goroutine.
type Searcher struct {
	h *Hierarchy

	// DisableStalling turns off the stall-on-demand optimization.
	DisableStalling bool

	dist      [2][]int64
	parentArc [2][]int32 // upward-CSR arc used to reach the vertex, -1 at roots
	parent    [2][]int32
	gen       [2][]uint32
	cur       [2]uint32
	heap      [2]*pq.Heap

	// lastMeet caches the meeting vertex of the last query for path
	// reconstruction.
	lastMeet graph.VertexID
	lastDist int64
	// settledCount of the last query, for search-space statistics.
	settledCount int
}

// NewSearcher returns a fresh query context for h.
func (h *Hierarchy) NewSearcher() *Searcher {
	n := h.g.NumVertices()
	s := &Searcher{h: h, lastMeet: -1}
	for side := 0; side < 2; side++ {
		s.dist[side] = make([]int64, n)
		s.parentArc[side] = make([]int32, n)
		s.parent[side] = make([]int32, n)
		s.gen[side] = make([]uint32, n)
		s.heap[side] = pq.New(n)
	}
	return s
}

func (s *Searcher) reset() {
	for side := 0; side < 2; side++ {
		s.cur[side]++
		if s.cur[side] == 0 {
			for i := range s.gen[side] {
				s.gen[side][i] = 0
			}
			s.cur[side] = 1
		}
		s.heap[side].Clear()
	}
	s.lastMeet = -1
	s.lastDist = graph.Infinity
	s.settledCount = 0
}

func (s *Searcher) visit(side int, v graph.VertexID, d int64, parent, arc int32) {
	if s.gen[side][v] != s.cur[side] {
		s.gen[side][v] = s.cur[side]
		s.dist[side][v] = d
		s.parent[side][v] = parent
		s.parentArc[side][v] = arc
		s.heap[side].Push(v, d)
	} else if d < s.dist[side][v] && s.heap[side].Contains(v) {
		s.dist[side][v] = d
		s.parent[side][v] = parent
		s.parentArc[side][v] = arc
		s.heap[side].Push(v, d)
	}
}

// Distance returns dist(s, t), or graph.Infinity when t is unreachable.
func (s *Searcher) Distance(from, to graph.VertexID) int64 {
	s.run(from, to)
	return s.lastDist
}

// DistanceContext is Distance with cancellation: the upward searches poll
// ctx every cancel.Interval settled vertices and abort with its error.
func (s *Searcher) DistanceContext(ctx context.Context, from, to graph.VertexID) (int64, error) {
	if err := s.runCtx(ctx, from, to); err != nil {
		return graph.Infinity, err
	}
	return s.lastDist, nil
}

// SettledLast returns how many vertices the two upward searches of the last
// query settled, for search-space comparisons against plain Dijkstra.
func (s *Searcher) SettledLast() int { return s.settledCount }

func (s *Searcher) run(from, to graph.VertexID) {
	_ = s.runCtx(context.Background(), from, to)
}

func (s *Searcher) runCtx(ctx context.Context, from, to graph.VertexID) error {
	// Per the cancellation contract, an already-cancelled context aborts
	// before any work, trivial from == to queries included.
	if err := ctx.Err(); err != nil {
		return err
	}
	s.reset()
	if from == to {
		s.lastDist = 0
		s.lastMeet = from
		return nil
	}
	s.visit(0, from, 0, -1, -1)
	s.visit(1, to, 0, -1, -1)
	h := s.h
	best := graph.Infinity
	meet := graph.VertexID(-1)

	for {
		if err := cancel.Poll(ctx, s.settledCount); err != nil {
			return err
		}
		k0, k1 := graph.Infinity, graph.Infinity
		if !s.heap[0].Empty() {
			_, k0 = s.heap[0].Min()
		}
		if !s.heap[1].Empty() {
			_, k1 = s.heap[1].Min()
		}
		if k0 >= best && k1 >= best {
			break
		}
		side := 0
		if k1 < k0 {
			side = 1
		}
		if s.heap[side].Empty() {
			side = 1 - side
		}
		v, d := s.heap[side].Pop()
		s.settledCount++
		// Meeting check: v settled in this side; if the other side has
		// reached it, the concatenation is a candidate.
		other := 1 - side
		if s.gen[other][v] == s.cur[other] {
			if total := d + s.dist[other][v]; total < best {
				best = total
				meet = v
			}
		}
		// Stall-on-demand: a shorter path to v through a higher-ranked
		// neighbor proves v's outgoing arcs useless for shortest paths.
		if !s.DisableStalling {
			stalled := false
			for a := h.firstUp[v]; a < h.firstUp[v+1]; a++ {
				w := h.upHead[a]
				if s.gen[side][w] == s.cur[side] && s.dist[side][w]+int64(h.upWeight[a]) < d {
					stalled = true
					break
				}
			}
			if stalled {
				continue
			}
		}
		for a := h.firstUp[v]; a < h.firstUp[v+1]; a++ {
			s.visit(side, h.upHead[a], d+int64(h.upWeight[a]), int32(v), a)
		}
	}
	s.lastDist = best
	s.lastMeet = meet
	return nil
}

// ShortestPath returns the exact shortest path in the original graph
// (shortcuts unpacked) and its length.
func (s *Searcher) ShortestPath(from, to graph.VertexID) ([]graph.VertexID, int64) {
	s.run(from, to)
	return s.pathFromLast(from, to)
}

// ShortestPathContext is ShortestPath with cancellation (see
// DistanceContext).
func (s *Searcher) ShortestPathContext(ctx context.Context, from, to graph.VertexID) ([]graph.VertexID, int64, error) {
	if err := s.runCtx(ctx, from, to); err != nil {
		return nil, graph.Infinity, err
	}
	path, d := s.pathFromLast(from, to)
	return path, d, nil
}

// pathFromLast reconstructs the unpacked path of the last run call.
func (s *Searcher) pathFromLast(from, to graph.VertexID) ([]graph.VertexID, int64) {
	if s.lastMeet < 0 {
		if from == to && s.lastDist == 0 {
			return []graph.VertexID{from}, 0
		}
		return nil, graph.Infinity
	}
	if from == to {
		return []graph.VertexID{from}, 0
	}
	// Augmented path: from -> meet (side 0, reversed) then meet -> to.
	var up []graph.VertexID
	for v := s.lastMeet; v >= 0; v = s.parent[0][v] {
		up = append(up, v)
		if s.parent[0][v] < 0 {
			break
		}
	}
	augmented := make([]graph.VertexID, 0, 2*len(up))
	for i := len(up) - 1; i >= 0; i-- {
		augmented = append(augmented, up[i])
	}
	for v := s.parent[1][s.lastMeet]; v >= 0; v = s.parent[1][v] {
		augmented = append(augmented, v)
		if s.parent[1][v] < 0 {
			break
		}
	}
	// Unpack every hop of the augmented path into original edges.
	path := make([]graph.VertexID, 0, len(augmented)*2)
	path = append(path, augmented[0])
	for i := 0; i+1 < len(augmented); i++ {
		path = s.h.appendUnpacked(path, augmented[i], augmented[i+1])
	}
	return path, s.lastDist
}

// appendUnpacked appends the original-edge expansion of the hop (u, w) to
// path (excluding u, including w). Shortcuts expand recursively through
// their middle-vertex tags, exactly as §3.2 describes for c1 -> (v3,v1),(v1,v8).
func (h *Hierarchy) appendUnpacked(path []graph.VertexID, u, w graph.VertexID) []graph.VertexID {
	middle, ok := h.middleOf(u, w)
	if !ok || middle < 0 {
		// Original edge.
		return append(path, w)
	}
	path = h.appendUnpacked(path, u, graph.VertexID(middle))
	return h.appendUnpacked(path, graph.VertexID(middle), w)
}

// Distance is a convenience one-shot query allocating a transient Searcher.
// Prefer NewSearcher for repeated queries.
func (h *Hierarchy) Distance(from, to graph.VertexID) int64 {
	return h.NewSearcher().Distance(from, to)
}

// ShortestPath is a convenience one-shot path query.
func (h *Hierarchy) ShortestPath(from, to graph.VertexID) ([]graph.VertexID, int64) {
	return h.NewSearcher().ShortestPath(from, to)
}
