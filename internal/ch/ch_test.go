package ch_test

import (
	"testing"

	"roadnet/internal/ch"
	"roadnet/internal/dijkstra"
	"roadnet/internal/gen"
	"roadnet/internal/graph"
	"roadnet/internal/testutil"
)

func TestCHFigure1Examples(t *testing.T) {
	g := testutil.Figure1()
	h := ch.Build(g, ch.Options{})
	s := h.NewSearcher()
	// The paper's worked query: dist(v3, v7) = 6.
	if d := s.Distance(testutil.V3, testutil.V7); d != 6 {
		t.Errorf("dist(v3, v7) = %d, want 6", d)
	}
	// And the path must unpack to original edges only.
	path, d := s.ShortestPath(testutil.V3, testutil.V7)
	if d != 6 {
		t.Errorf("path dist(v3, v7) = %d, want 6", d)
	}
	if w := dijkstra.PathWeight(g, path); w != 6 {
		t.Errorf("unpacked path %v weighs %d, want 6", path, w)
	}
}

func TestCHExhaustiveFigure1(t *testing.T) {
	g := testutil.Figure1()
	h := ch.Build(g, ch.Options{})
	s := h.NewSearcher()
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), s.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.AllPairs(g), s.ShortestPath)
}

func TestCHRoadNetworkDistances(t *testing.T) {
	g := testutil.SmallRoad(1600, 31)
	h := ch.Build(g, ch.Options{})
	s := h.NewSearcher()
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 400, 9), s.Distance)
}

func TestCHRoadNetworkPaths(t *testing.T) {
	g := testutil.SmallRoad(900, 33)
	h := ch.Build(g, ch.Options{})
	s := h.NewSearcher()
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 200, 11), s.ShortestPath)
}

func TestCHAdversarialGraph(t *testing.T) {
	// Non-planar random graph: heuristics are useless but answers must stay
	// exact.
	g := gen.RandomConnected(200, 400, 50, 77)
	h := ch.Build(g, ch.Options{})
	s := h.NewSearcher()
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 500, 13), s.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 100, 17), s.ShortestPath)
}

func TestCHTinyGraphs(t *testing.T) {
	// Path graph 0-1-2 and a single edge: degenerate hierarchies.
	b := graph.NewBuilder(3)
	for i := 0; i < 3; i++ {
		b.AddVertex(testutil.Figure1().Coord(graph.VertexID(i)))
	}
	if err := b.AddEdge(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	h := ch.Build(g, ch.Options{})
	s := h.NewSearcher()
	if d := s.Distance(0, 2); d != 9 {
		t.Errorf("dist(0, 2) = %d, want 9", d)
	}
	path, d := s.ShortestPath(0, 2)
	if d != 9 || len(path) != 3 {
		t.Errorf("path = %v dist %d, want [0 1 2] 9", path, d)
	}
	if d := s.Distance(1, 1); d != 0 {
		t.Errorf("dist(v, v) = %d, want 0", d)
	}
	if p, d := s.ShortestPath(1, 1); d != 0 || len(p) != 1 {
		t.Errorf("path(v, v) = %v %d", p, d)
	}
}

func TestCHDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.AddVertex(testutil.Figure1().Coord(graph.VertexID(i)))
	}
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(2, 3, 1)
	g := b.Build()
	h := ch.Build(g, ch.Options{})
	s := h.NewSearcher()
	if d := s.Distance(0, 3); d < graph.Infinity {
		t.Errorf("dist across components = %d, want Infinity", d)
	}
	if p, _ := s.ShortestPath(0, 3); p != nil {
		t.Errorf("path across components = %v, want nil", p)
	}
}

func TestCHUnpackedPathHasNoShortcuts(t *testing.T) {
	g := testutil.SmallRoad(900, 41)
	h := ch.Build(g, ch.Options{})
	s := h.NewSearcher()
	for _, p := range testutil.SamplePairs(g, 100, 19) {
		path, d := s.ShortestPath(p[0], p[1])
		if d >= graph.Infinity {
			continue
		}
		for i := 0; i+1 < len(path); i++ {
			if _, ok := g.HasEdge(path[i], path[i+1]); !ok {
				t.Fatalf("hop (%d, %d) of unpacked path is not an original edge", path[i], path[i+1])
			}
		}
	}
}

func TestCHSearchSpaceSmallerThanBidirectional(t *testing.T) {
	// The point of CH (§3.2): it avoids visiting low-ranked vertices, so its
	// search space must be far below the bidirectional baseline's.
	g := testutil.SmallRoad(2500, 43)
	h := ch.Build(g, ch.Options{})
	s := h.NewSearcher()
	bi := dijkstra.NewBidirectional(g)
	var chSettled, biSettled int
	for _, p := range testutil.SamplePairs(g, 50, 23) {
		s.Distance(p[0], p[1])
		chSettled += s.SettledLast()
		biSettled += bi.Query(p[0], p[1]).Settled
	}
	if chSettled*2 >= biSettled {
		t.Errorf("CH settled %d vs bidirectional %d; expected less than half", chSettled, biSettled)
	}
}

func TestCHConvenienceOneShotQueries(t *testing.T) {
	g := testutil.Figure1()
	h := ch.Build(g, ch.Options{})
	if d := h.Distance(testutil.V3, testutil.V7); d != 6 {
		t.Errorf("Hierarchy.Distance = %d, want 6", d)
	}
	path, d := h.ShortestPath(testutil.V3, testutil.V7)
	if d != 6 || dijkstra.PathWeight(g, path) != 6 {
		t.Errorf("Hierarchy.ShortestPath = %v, %d", path, d)
	}
}

func TestCHStatsReporting(t *testing.T) {
	g := testutil.SmallRoad(400, 47)
	h := ch.Build(g, ch.Options{})
	if h.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
	if h.BuildTime() <= 0 {
		t.Error("BuildTime must be positive")
	}
	if h.NumShortcuts() < 0 {
		t.Error("NumShortcuts negative")
	}
	if h.Graph() != g {
		t.Error("Graph() must return the original network")
	}
	// Every vertex must have a unique rank.
	seen := make(map[int32]bool)
	for v := 0; v < g.NumVertices(); v++ {
		r := h.Rank(graph.VertexID(v))
		if seen[r] {
			t.Fatalf("duplicate rank %d", r)
		}
		seen[r] = true
	}
}

func TestCHWitnessLimitVariants(t *testing.T) {
	// A tiny witness budget adds more shortcuts but must stay exact.
	g := testutil.SmallRoad(400, 53)
	loose := ch.Build(g, ch.Options{WitnessSettleLimit: 2})
	tight := ch.Build(g, ch.Options{WitnessSettleLimit: 1000})
	if loose.NumShortcuts() < tight.NumShortcuts() {
		t.Errorf("budget 2 made %d shortcuts, budget 1000 made %d; expected more with smaller budget",
			loose.NumShortcuts(), tight.NumShortcuts())
	}
	s := loose.NewSearcher()
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 200, 29), s.Distance)
}

func TestCHManyToMany(t *testing.T) {
	g := testutil.SmallRoad(900, 59)
	h := ch.Build(g, ch.Options{})
	sources := []graph.VertexID{0, 5, 17, 101, 333}
	targets := []graph.VertexID{2, 5, 60, 200, 400, 512}
	table := h.ManyToMany(sources, targets)
	ctx := dijkstra.NewContext(g)
	for i, s := range sources {
		for j, tt := range targets {
			if want := ctx.Distance(s, tt); table[i][j] != want {
				t.Errorf("ManyToMany[%d][%d] = %d, want %d", i, j, table[i][j], want)
			}
		}
	}
}

func TestCHStallingAgreesWithNoStalling(t *testing.T) {
	g := testutil.SmallRoad(1600, 61)
	h := ch.Build(g, ch.Options{})
	stalling := h.NewSearcher()
	plain := h.NewSearcher()
	plain.DisableStalling = true
	var stalledSettled, plainSettled int
	for _, p := range testutil.SamplePairs(g, 300, 37) {
		a := stalling.Distance(p[0], p[1])
		stalledSettled += stalling.SettledLast()
		b := plain.Distance(p[0], p[1])
		plainSettled += plain.SettledLast()
		if a != b {
			t.Fatalf("stalling changed dist(%d, %d): %d vs %d", p[0], p[1], a, b)
		}
	}
	if stalledSettled > plainSettled {
		t.Errorf("stalling settled %d > plain %d; expected pruning", stalledSettled, plainSettled)
	}
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 200, 41), stalling.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 60, 43), stalling.ShortestPath)
}

func TestCHManyToManyEmpty(t *testing.T) {
	g := testutil.Figure1()
	h := ch.Build(g, ch.Options{})
	if tbl := h.ManyToMany(nil, nil); len(tbl) != 0 {
		t.Errorf("empty many-to-many returned %v", tbl)
	}
	tbl := h.ManyToMany([]graph.VertexID{0}, nil)
	if len(tbl) != 1 || len(tbl[0]) != 0 {
		t.Errorf("one-to-none table shape wrong: %v", tbl)
	}
}
