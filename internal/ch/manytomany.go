package ch

import (
	"context"

	"roadnet/internal/cancel"
	"roadnet/internal/graph"
	"roadnet/internal/pq"
)

// This file implements the bucket many-to-many algorithm of Knopp et al.:
// one backward upward search per target deposits (target index, distance)
// entries at every vertex it reaches; one forward upward search per source
// then scans the buckets of the vertices it reaches. Because every shortest
// path in a contraction hierarchy has a peak vertex reached by both upward
// searches, the minimum over common vertices is exact.
//
// The paper uses CH to accelerate the preprocessing of TNR, SILC and PCPD
// (§4.1); our TNR preprocessing uses these routines to fill its access-node
// distance tables.

// ManyToMany computes the full distance table between sources and targets.
// table[i][j] is dist(sources[i], targets[j]), or graph.Infinity when
// unreachable.
func (h *Hierarchy) ManyToMany(sources, targets []graph.VertexID) [][]int64 {
	table, _ := h.ManyToManyContext(context.Background(), sources, targets)
	return table
}

// ManyToManyContext is ManyToMany with cancellation: the per-endpoint
// upward searches poll ctx every cancel.Interval settled vertices, so a
// large matrix request aborts promptly when its context is cancelled. On
// cancellation the partial table is discarded and ctx's error returned.
func (h *Hierarchy) ManyToManyContext(ctx context.Context, sources, targets []graph.VertexID) ([][]int64, error) {
	table := make([][]int64, len(sources))
	for i := range table {
		row := make([]int64, len(targets))
		for j := range row {
			row[j] = graph.Infinity
		}
		table[i] = row
	}
	err := h.manyToManyEach(ctx, sources, targets, func(si, ti int, d int64) {
		table[si][ti] = d
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// ManyToManyEach computes the same distances as ManyToMany but streams them:
// fn is called exactly once per (source index, target index) pair with a
// finite distance. Pairs that are unreachable are not reported. This lets
// callers with sparse needs (e.g. TNR's hybrid-grid table) avoid
// materializing a quadratic table.
func (h *Hierarchy) ManyToManyEach(sources, targets []graph.VertexID, fn func(si, ti int, d int64)) {
	_ = h.manyToManyEach(context.Background(), sources, targets, fn)
}

func (h *Hierarchy) manyToManyEach(ctx context.Context, sources, targets []graph.VertexID, fn func(si, ti int, d int64)) error {
	if len(sources) == 0 || len(targets) == 0 {
		return nil
	}
	n := h.g.NumVertices()
	type bucketEntry struct {
		target int32
		dist   int64
	}
	buckets := make([][]bucketEntry, n)

	// Reusable upward search state.
	dist := make([]int64, n)
	gen := make([]uint32, n)
	var cur uint32
	heap := pq.New(n)
	totalSettled := 0
	upward := func(root graph.VertexID, visitSettled func(v graph.VertexID, d int64)) error {
		cur++
		if cur == 0 {
			for i := range gen {
				gen[i] = 0
			}
			cur = 1
		}
		heap.Clear()
		gen[root] = cur
		dist[root] = 0
		heap.Push(root, 0)
		for !heap.Empty() {
			if err := cancel.Poll(ctx, totalSettled); err != nil {
				return err
			}
			v, d := heap.Pop()
			totalSettled++
			visitSettled(v, d)
			for a := h.firstUp[v]; a < h.firstUp[v+1]; a++ {
				w := h.upHead[a]
				nd := d + int64(h.upWeight[a])
				if gen[w] != cur {
					gen[w] = cur
					dist[w] = nd
					heap.Push(w, nd)
				} else if nd < dist[w] && heap.Contains(w) {
					dist[w] = nd
					heap.Push(w, nd)
				}
			}
		}
		return nil
	}

	for ti, t := range targets {
		ti32 := int32(ti)
		err := upward(t, func(v graph.VertexID, d int64) {
			buckets[v] = append(buckets[v], bucketEntry{target: ti32, dist: d})
		})
		if err != nil {
			return err
		}
	}

	// Per-source scratch row, reset via the touched list so each pair is
	// reported once with its minimum.
	row := make([]int64, len(targets))
	for j := range row {
		row[j] = graph.Infinity
	}
	var touched []int32
	for si, s := range sources {
		touched = touched[:0]
		err := upward(s, func(v graph.VertexID, d int64) {
			for _, be := range buckets[v] {
				if total := d + be.dist; total < row[be.target] {
					if row[be.target] == graph.Infinity {
						touched = append(touched, be.target)
					}
					row[be.target] = total
				}
			}
		})
		if err != nil {
			return err
		}
		for _, ti := range touched {
			fn(si, int(ti), row[ti])
			row[ti] = graph.Infinity
		}
	}
	return nil
}
