package ch_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"roadnet/internal/binio"

	"roadnet/internal/ch"
	"roadnet/internal/testutil"
)

func TestCHSerializationRoundtrip(t *testing.T) {
	g := testutil.SmallRoad(900, 801)
	h := ch.Build(g, ch.Options{})
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ch.ReadHierarchy(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumShortcuts() != h.NumShortcuts() {
		t.Errorf("shortcuts %d != %d", h2.NumShortcuts(), h.NumShortcuts())
	}
	s := h2.NewSearcher()
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 200, 131), s.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 60, 133), s.ShortestPath)
}

func TestCHSerializationRejectsWrongGraph(t *testing.T) {
	g := testutil.SmallRoad(400, 803)
	other := testutil.SmallRoad(900, 805)
	h := ch.Build(g, ch.Options{})
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.ReadHierarchy(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("loading onto a different graph must fail")
	}
}

func TestCHSerializationRejectsCorruption(t *testing.T) {
	g := testutil.SmallRoad(400, 807)
	h := ch.Build(g, ch.Options{})
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Truncation.
	if _, err := ch.ReadHierarchy(bytes.NewReader(data[:len(data)/2]), g); err == nil {
		t.Error("truncated stream must fail")
	}
	// Bad magic.
	bad := append([]byte("XX"), data[2:]...)
	if _, err := ch.ReadHierarchy(bytes.NewReader(bad), g); err == nil {
		t.Error("bad magic must fail")
	}
	// Flipped version byte.
	bad = append([]byte(nil), data...)
	bad[len("ROADNET-CH\n")] = 99
	if _, err := ch.ReadHierarchy(bytes.NewReader(bad), g); err == nil {
		t.Error("unknown version must fail")
	}
}

func TestCHV1Roundtrip(t *testing.T) {
	g := testutil.SmallRoad(900, 831)
	h := ch.Build(g, ch.Options{})
	var buf bytes.Buffer
	if err := h.SaveV1(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ch.ReadHierarchy(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumShortcuts() != h.NumShortcuts() {
		t.Errorf("shortcuts %d != %d after v1 roundtrip", h2.NumShortcuts(), h.NumShortcuts())
	}
	s := h2.NewSearcher()
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 150, 135), s.Distance)
}

func TestCHVersionErrors(t *testing.T) {
	g := testutil.SmallRoad(400, 833)
	h := ch.Build(g, ch.Options{})

	// Legacy stream with an unknown version must name the supported ones.
	var v1 bytes.Buffer
	if err := h.SaveV1(&v1); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), v1.Bytes()...)
	bad[len("ROADNET-CH\n")] = 9
	_, err := ch.ReadHierarchy(bytes.NewReader(bad), g)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("v1 stream with version 9: got %v, want a versioned error", err)
	}

	// Flat container with a future version must surface binio.ErrVersion.
	var v2 bytes.Buffer
	if err := h.Save(&v2); err != nil {
		t.Fatal(err)
	}
	bad = append([]byte(nil), v2.Bytes()...)
	bad[12] = 9 // flat header version field (little-endian u32 at offset 12)
	_, err = ch.ReadHierarchy(bytes.NewReader(bad), g)
	if !errors.Is(err, binio.ErrVersion) {
		t.Errorf("flat container with version 9: got %v, want binio.ErrVersion", err)
	}
}
