package ch

import (
	"roadnet/internal/graph"
	"roadnet/internal/pq"
)

// witnessSearcher runs the local Dijkstra searches that decide, while
// contracting a vertex v, whether a neighbor pair (u, w) needs a shortcut:
// a shortcut is required iff no "witness" path from u to w that avoids v is
// at most as short as the path through v. The search is budgeted — if the
// budget runs out before a witness is found, the shortcut is added anyway,
// which can only cost space, never correctness.
type witnessSearcher struct {
	adj        [][]halfEdge
	contracted []bool
	limit      int

	dist []int64
	gen  []uint32
	cur  uint32
	heap *pq.Heap
}

func newWitnessSearcher(n int, adj [][]halfEdge, contracted []bool, limit int) *witnessSearcher {
	return &witnessSearcher{
		adj:        adj,
		contracted: contracted,
		limit:      limit,
		dist:       make([]int64, n),
		gen:        make([]uint32, n),
		heap:       pq.New(n),
	}
}

// simulate enumerates the shortcuts contraction of v would create. For each
// uncontracted neighbor pair (u, w) whose shortest connection runs through
// v, emit(u, w, d(u,v)+d(v,w)) is called (when emit is non-nil). The number
// of shortcuts is returned, so the same routine serves both the priority
// computation (emit == nil) and the actual contraction.
func (ws *witnessSearcher) simulate(v graph.VertexID, emit func(u, w graph.VertexID, weight int64)) int {
	// Collect uncontracted neighbors and the minimal weight to each.
	var nbs []halfEdge
	for _, e := range ws.adj[v] {
		if !ws.contracted[e.to] {
			nbs = append(nbs, e)
		}
	}
	if len(nbs) < 2 {
		return 0
	}
	count := 0
	for i, eu := range nbs {
		// One witness search from u covers all targets w.
		var maxTarget int64
		for j, ew := range nbs {
			if j != i {
				if int64(ew.w) > maxTarget {
					maxTarget = int64(ew.w)
				}
			}
		}
		budget := int64(eu.w) + maxTarget
		ws.search(eu.to, v, budget)
		for j := i + 1; j < len(nbs); j++ {
			ew := nbs[j]
			through := int64(eu.w) + int64(ew.w)
			if wd := ws.distOf(ew.to); wd <= through {
				continue // witness found: no shortcut needed
			}
			count++
			if emit != nil {
				emit(eu.to, ew.to, through)
			}
		}
	}
	return count
}

func (ws *witnessSearcher) distOf(v graph.VertexID) int64 {
	if ws.gen[v] != ws.cur {
		return graph.Infinity
	}
	return ws.dist[v]
}

// search runs a budgeted Dijkstra from s on the uncontracted residual graph,
// excluding vertex banned, stopping at distance > maxDist or after the
// settle limit.
func (ws *witnessSearcher) search(s, banned graph.VertexID, maxDist int64) {
	ws.cur++
	if ws.cur == 0 {
		for i := range ws.gen {
			ws.gen[i] = 0
		}
		ws.cur = 1
	}
	ws.heap.Clear()
	ws.gen[s] = ws.cur
	ws.dist[s] = 0
	ws.heap.Push(s, 0)
	settledCount := 0
	for !ws.heap.Empty() {
		v, d := ws.heap.Pop()
		if d > maxDist {
			return
		}
		settledCount++
		if settledCount > ws.limit {
			return
		}
		for _, e := range ws.adj[v] {
			if e.to == banned || ws.contracted[e.to] {
				continue
			}
			nd := d + int64(e.w)
			if nd > maxDist {
				continue
			}
			if ws.gen[e.to] != ws.cur {
				ws.gen[e.to] = ws.cur
				ws.dist[e.to] = nd
				ws.heap.Push(e.to, nd)
			} else if nd < ws.dist[e.to] && ws.heap.Contains(e.to) {
				ws.dist[e.to] = nd
				ws.heap.Push(e.to, nd)
			}
		}
	}
}
