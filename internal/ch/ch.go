// Package ch implements Contraction Hierarchies (Geisberger et al., WEA
// 2008), the vertex-importance-based index of the paper's §3.2.
//
// Preprocessing imposes a total order on the vertices and contracts them in
// that order: when vertex v is contracted, a shortcut (u, w) tagged with v
// is inserted for every neighbor pair whose shortest path runs through v
// and has no witness path avoiding v. Queries run a bidirectional Dijkstra
// that relaxes only arcs leading to higher-ranked vertices; shortest-path
// queries additionally unpack shortcuts recursively via their middle-vertex
// tags (§3.2's transformation of c1 into (v3,v1),(v1,v8)).
//
// The vertex order is computed on the fly with the standard heuristic
// priority (edge difference + deleted neighbors + shortcut depth) and lazy
// priority updates, as suggested by the paper's reference [11].
package ch

import (
	"time"

	"roadnet/internal/graph"
	"roadnet/internal/pq"
)

// Options tunes preprocessing. The zero value gives sensible defaults.
type Options struct {
	// WitnessSettleLimit bounds the witness search per neighbor pair.
	// Smaller values speed preprocessing but add unnecessary shortcuts
	// (never incorrect ones). Default 120.
	WitnessSettleLimit int
	// EdgeDiffWeight, DeletedWeight and DepthWeight combine the heuristic
	// terms into a contraction priority. When all three are zero the
	// defaults 6, 2, 1 apply; setting any of them selects exactly the
	// given combination, so individual terms can be ablated (see the
	// ordering ablation benchmarks).
	EdgeDiffWeight, DeletedWeight, DepthWeight int
}

func (o Options) withDefaults() Options {
	if o.WitnessSettleLimit == 0 {
		o.WitnessSettleLimit = 120
	}
	if o.EdgeDiffWeight == 0 && o.DeletedWeight == 0 && o.DepthWeight == 0 {
		o.EdgeDiffWeight = 6
		o.DeletedWeight = 2
		o.DepthWeight = 1
	}
	return o
}

// Hierarchy is a built contraction hierarchy. It is immutable after Build
// and safe for concurrent queries through per-goroutine Searchers.
type Hierarchy struct {
	g    *graph.Graph
	rank []int32 // rank[v] = position of v in the contraction order

	// Upward search graph: for each vertex, arcs to higher-ranked
	// neighbors only (original edges and shortcuts alike).
	firstUp  []int32
	upHead   []int32
	upWeight []int32
	upMiddle []int32 // contracted middle vertex of a shortcut, -1 for edges

	// unpack maps a vertex pair to the middle vertex of the minimal-weight
	// edge/shortcut joining it, for recursive path unpacking. Built and
	// v1-loaded hierarchies use the map; flat-loaded (zero-copy) ones keep
	// the on-disk form instead — parallel arrays sorted by (u, v), searched
	// by middleOf — so loading never materializes per-entry heap state.
	unpack                         map[pairKey]int32
	unpackU, unpackV, unpackMiddle []int32

	numShortcuts int
	buildTime    time.Duration
}

type pairKey struct{ u, v graph.VertexID }

func orderedKey(u, v graph.VertexID) pairKey {
	if u > v {
		u, v = v, u
	}
	return pairKey{u, v}
}

// halfEdge is one adjacency entry of the dynamic graph used during
// contraction.
type halfEdge struct {
	to     graph.VertexID
	w      int32
	middle int32
}

// Build constructs the hierarchy for g.
func Build(g *graph.Graph, opts Options) *Hierarchy {
	opts = opts.withDefaults()
	start := time.Now()
	n := g.NumVertices()

	// Dynamic adjacency with parallel edges collapsed to minimum weight.
	adj := make([][]halfEdge, n)
	for v := 0; v < n; v++ {
		lo, hi := g.ArcsOf(graph.VertexID(v))
		for a := lo; a < hi; a++ {
			addOrImprove(&adj[v], halfEdge{to: g.Head(a), w: g.ArcWeight(a), middle: -1})
		}
	}

	h := &Hierarchy{
		g:      g,
		rank:   make([]int32, n),
		unpack: make(map[pairKey]int32, g.NumEdges()*2),
	}

	type finalEdge struct {
		u, v   graph.VertexID
		w      int32
		middle int32
	}
	finalEdges := make([]finalEdge, 0, g.NumEdges()*2)
	for v := 0; v < n; v++ {
		for _, e := range adj[v] {
			if graph.VertexID(v) < e.to {
				finalEdges = append(finalEdges, finalEdge{u: graph.VertexID(v), v: e.to, w: e.w, middle: -1})
			}
		}
	}

	contracted := make([]bool, n)
	deleted := make([]int32, n) // contracted-neighbor count
	depth := make([]int32, n)
	ws := newWitnessSearcher(n, adj, contracted, opts.WitnessSettleLimit)

	priority := func(v graph.VertexID) int64 {
		needed := ws.simulate(v, nil)
		degree := 0
		for _, e := range adj[v] {
			if !contracted[e.to] {
				degree++
			}
		}
		ed := int64(needed - degree)
		return int64(opts.EdgeDiffWeight)*ed +
			int64(opts.DeletedWeight)*int64(deleted[v]) +
			int64(opts.DepthWeight)*int64(depth[v])
	}

	heap := pq.New(n)
	for v := 0; v < n; v++ {
		heap.Push(graph.VertexID(v), priority(graph.VertexID(v)))
	}

	type shortcutSpec struct {
		u, w   graph.VertexID
		weight int64
	}
	nextRank := int32(0)
	var shortcuts []shortcutSpec
	for !heap.Empty() {
		v, key := heap.Pop()
		// Lazy update: re-evaluate; if the vertex no longer has minimal
		// priority, push it back and try again.
		if !heap.Empty() {
			if np := priority(v); np > key {
				if _, minKey := heap.Min(); np > minKey {
					heap.Push(v, np)
					continue
				}
			}
		}

		// Contract v: add a shortcut for every uncovered neighbor pair.
		shortcuts = shortcuts[:0]
		ws.simulate(v, func(u, w graph.VertexID, weight int64) {
			shortcuts = append(shortcuts, shortcutSpec{u: u, w: w, weight: weight})
		})

		for _, sc := range shortcuts {
			addOrImprove(&adj[sc.u], halfEdge{to: sc.w, w: int32(sc.weight), middle: int32(v)})
			addOrImprove(&adj[sc.w], halfEdge{to: sc.u, w: int32(sc.weight), middle: int32(v)})
			finalEdges = append(finalEdges, finalEdge{u: sc.u, v: sc.w, w: int32(sc.weight), middle: int32(v)})
			h.numShortcuts++
		}

		contracted[v] = true
		h.rank[v] = nextRank
		nextRank++
		for _, e := range adj[v] {
			if !contracted[e.to] {
				deleted[e.to]++
				if depth[e.to] < depth[v]+1 {
					depth[e.to] = depth[v] + 1
				}
			}
		}
	}

	// Build the upward CSR and unpacking map from the minimal edge set:
	// collapse duplicates, keeping minimum weight.
	best := make(map[pairKey]finalEdge, len(finalEdges))
	for _, e := range finalEdges {
		k := orderedKey(e.u, e.v)
		if old, ok := best[k]; !ok || e.w < old.w {
			best[k] = e
		}
	}
	degUp := make([]int32, n)
	for k := range best {
		lowFirst := k.u
		if h.rank[k.u] > h.rank[k.v] {
			lowFirst = k.v
		}
		degUp[lowFirst]++
	}
	h.firstUp = make([]int32, n+1)
	for v := 0; v < n; v++ {
		h.firstUp[v+1] = h.firstUp[v] + degUp[v]
	}
	total := h.firstUp[n]
	h.upHead = make([]int32, total)
	h.upWeight = make([]int32, total)
	h.upMiddle = make([]int32, total)
	next := make([]int32, n)
	copy(next, h.firstUp[:n])
	for k, e := range best {
		lo, hi := k.u, k.v
		if h.rank[lo] > h.rank[hi] {
			lo, hi = hi, lo
		}
		a := next[lo]
		next[lo]++
		h.upHead[a] = hi
		h.upWeight[a] = e.w
		h.upMiddle[a] = e.middle
		h.unpack[k] = e.middle
	}

	h.buildTime = time.Since(start)
	return h
}

// addOrImprove inserts e into the adjacency list, or lowers the weight of an
// existing entry to the same endpoint.
func addOrImprove(list *[]halfEdge, e halfEdge) {
	for i := range *list {
		if (*list)[i].to == e.to {
			if e.w < (*list)[i].w {
				(*list)[i] = e
			}
			return
		}
	}
	*list = append(*list, e)
}

// Rank returns the contraction order position of v (higher = more important).
func (h *Hierarchy) Rank(v graph.VertexID) int32 { return h.rank[v] }

// NumShortcuts returns the number of shortcuts created during preprocessing.
func (h *Hierarchy) NumShortcuts() int { return h.numShortcuts }

// BuildTime returns the wall-clock preprocessing duration.
func (h *Hierarchy) BuildTime() time.Duration { return h.buildTime }

// Graph returns the underlying road network.
func (h *Hierarchy) Graph() *graph.Graph { return h.g }

// SizeBytes reports the memory footprint of the index structures (upward
// CSR plus the unpacking table), which is what the paper's Figure 6(a)
// space-consumption plot measures.
func (h *Hierarchy) SizeBytes() int64 {
	csr := int64(len(h.firstUp))*4 + int64(len(h.upHead))*4 +
		int64(len(h.upWeight))*4 + int64(len(h.upMiddle))*4 + int64(len(h.rank))*4
	// map entry: key (8) + value (4) + bucket overhead (~8)
	unpack := int64(len(h.unpack)) * 20
	// Flat-loaded hierarchies keep the sorted-array form instead: 12 bytes
	// per entry, shared with the page cache when mapped.
	unpack += int64(len(h.unpackU)) * 12
	return csr + unpack
}

// middleOf resolves the middle vertex of the minimal edge/shortcut joining
// u and w: from the unpack map on built/v1-loaded hierarchies, by binary
// search over the sorted flat arrays on zero-copy loads. Reported middles
// below zero mean "original edge".
func (h *Hierarchy) middleOf(u, w graph.VertexID) (int32, bool) {
	k := orderedKey(u, w)
	if h.unpack != nil {
		middle, ok := h.unpack[k]
		return middle, ok
	}
	lo, hi := 0, len(h.unpackU)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.unpackU[mid] < k.u || (h.unpackU[mid] == k.u && h.unpackV[mid] < k.v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.unpackU) && h.unpackU[lo] == k.u && h.unpackV[lo] == k.v {
		return h.unpackMiddle[lo], true
	}
	return 0, false
}
