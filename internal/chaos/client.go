// The misbehaving-client driver: concurrent request floods whose every
// outcome is recorded, so resilience tests can assert not just "the server
// survived" but "no accepted request was dropped or mis-answered".
package chaos

import (
	"context"
	"io"
	"net/http"
	"sync"
)

// Outcome is one request's fate under load.
type Outcome struct {
	Status int   // HTTP status; 0 when no response line arrived
	Err    error // non-nil when the request or its body read failed
}

// Dropped reports the one outcome a draining server must never produce: a
// request that was accepted (the status line arrived) but whose response
// died mid-read. Requests refused outright (Status 0) are the load
// balancer's business — readiness flipped before the listener closed —
// and complete error responses are answers, not drops.
func (o Outcome) Dropped() bool { return o.Status != 0 && o.Err != nil }

// Drive floods url with GET requests from `workers` goroutines, each
// sending up to perWorker requests (stopping early when ctx is done), and
// returns every outcome. hdr is copied into each request — set
// X-Forwarded-For to impersonate a client the rate limiter will key on.
func Drive(ctx context.Context, url string, workers, perWorker int, hdr http.Header) []Outcome {
	client := &http.Client{}
	var (
		mu  sync.Mutex
		out []Outcome
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker && ctx.Err() == nil; i++ {
				o := get(ctx, client, url, hdr)
				mu.Lock()
				out = append(out, o)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return out
}

func get(ctx context.Context, client *http.Client, url string, hdr http.Header) Outcome {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Outcome{Err: err}
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := client.Do(req)
	if err != nil {
		return Outcome{Err: err}
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return Outcome{Status: resp.StatusCode, Err: err}
}
