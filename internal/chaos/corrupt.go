// Layout-aware file corruption. Flipping a byte blindly is a weak test:
// it can land in the alignment padding between sections, the one region
// the checksums deliberately do not cover (no serving byte reads from
// it). The helpers here parse the container first and aim every flip at
// checksum-covered territory, so a surviving flip is a real detection
// failure, not a lucky miss.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"roadnet/internal/binio"
)

// Range is a half-open byte range [Off, Off+Len) of a flat file.
type Range struct{ Off, Len int64 }

// Layout describes the checksum-covered regions of a flat v2 file: the
// header/table/meta prefix (its trailing CRC included) and each section's
// payload. Alignment padding between regions is absent by design.
type Layout struct {
	Fourcc   uint32
	Size     int64
	Header   Range
	Sections []Range
}

// Covered returns every covered range in file order.
func (l Layout) Covered() []Range {
	out := make([]Range, 0, 1+len(l.Sections))
	if l.Header.Len > 0 {
		out = append(out, l.Header)
	}
	return append(out, l.Sections...)
}

// ReadLayout parses the file's structure without verifying payloads (the
// caller is usually about to corrupt them).
func ReadLayout(path string) (Layout, error) {
	f, err := binio.OpenFlat(path, false, binio.WithoutVerify())
	if err != nil {
		return Layout{}, err
	}
	defer f.Close()
	l := Layout{
		Fourcc: f.Fourcc(),
		Size:   f.SizeBytes(),
		Header: Range{0, f.CoveredHeaderLen()},
	}
	for i := 0; i < f.NumSections(); i++ {
		off, size := f.SectionRange(i)
		if size > 0 {
			l.Sections = append(l.Sections, Range{off, size})
		}
	}
	return l, nil
}

// FlipByte XORs 0xff into the byte at off, in place.
func FlipByte(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0xff
	_, err = f.WriteAt(b[:], off)
	return err
}

// identityPrefix is the magic, fourcc and version fields. They are
// checksum-covered too, but flipping them changes what the file claims to
// be, which the sniffing readers answer by dispatch (ErrNotFlat,
// ErrVersion, a fourcc mismatch) before any checksum runs — so FlipCovered
// aims past them at the bytes only a checksum can defend.
const identityPrefix = 16

// FlipCovered flips one rng-chosen byte inside the file's checksum-covered
// regions (identity prefix excepted, see above) and returns its offset, so
// a failing test can name the byte that went undetected.
func FlipCovered(path string, rng *rand.Rand) (int64, error) {
	l, err := ReadLayout(path)
	if err != nil {
		return 0, err
	}
	ranges := l.Covered()
	if len(ranges) > 0 && ranges[0].Off == 0 && ranges[0].Len > identityPrefix {
		ranges[0] = Range{identityPrefix, ranges[0].Len - identityPrefix}
	}
	if len(ranges) == 0 {
		return 0, fmt.Errorf("chaos: %s has no checksum-covered bytes", path)
	}
	var total int64
	for _, r := range ranges {
		total += r.Len
	}
	pick := rng.Int63n(total)
	for _, r := range ranges {
		if pick < r.Len {
			off := r.Off + pick
			return off, FlipByte(path, off)
		}
		pick -= r.Len
	}
	panic("unreachable")
}

// Truncate cuts the file to n bytes.
func Truncate(path string, n int64) error {
	return os.Truncate(path, n)
}

// Clone copies src to dst. Tests corrupt the clone and keep the pristine
// file for the next case.
func Clone(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
