// Package chaos is the fault-injection harness behind the resilience
// tests. It does three things production code never should: corrupt saved
// flat files in controlled, layout-aware ways (corrupt.go), wrap an index
// so the queries its searchers answer can be made to panic, fail or stall
// on demand (chaos.go), and drive misbehaving client load at a live
// server while recording every request's fate (client.go).
//
// Nothing outside _test files should import this package.
package chaos
