package chaos

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"roadnet/internal/core"
	"roadnet/internal/graph"
	"roadnet/internal/server"
	"roadnet/internal/testutil"
)

func buildFlaky(t *testing.T) (*graph.Graph, *FlakyIndex) {
	t.Helper()
	g := testutil.SmallRoad(300, 953)
	idx, err := core.BuildIndex(core.MethodDijkstra, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g, Wrap(idx)
}

// TestInjectedPanicAnswers500ThenRecovers is the crash-isolation
// acceptance: a panic inside one request's search produces one 500 for
// that request, and the very next request over the same server answers
// normally — the process never dies.
func TestInjectedPanicAnswers500ThenRecovers(t *testing.T) {
	g, fl := buildFlaky(t)
	ts := httptest.NewServer(server.New(g, fl).Handler())
	defer ts.Close()

	url := ts.URL + "/v1/distance?from=0&to=150"
	fl.PanicNext(1)
	if status := getStatus(t, url); status != http.StatusInternalServerError {
		t.Fatalf("armed request: status %d, want 500", status)
	}
	if status := getStatus(t, url); status != http.StatusOK {
		t.Fatalf("request after panic: status %d, want 200", status)
	}
}

// TestInjectedFailureAnswersErrorThenRecovers: an error returned by the
// search surfaces as a non-2xx response, not a hang or a wrong answer, and
// the server keeps serving.
func TestInjectedFailureAnswersErrorThenRecovers(t *testing.T) {
	g, fl := buildFlaky(t)
	ts := httptest.NewServer(server.New(g, fl).Handler())
	defer ts.Close()

	url := ts.URL + "/v1/distance?from=0&to=150"
	fl.FailNext(1)
	if status := getStatus(t, url); status < 400 {
		t.Fatalf("armed request: status %d, want an error status", status)
	}
	if status := getStatus(t, url); status != http.StatusOK {
		t.Fatalf("request after failure: status %d, want 200", status)
	}
}

// TestShutdownUnderLoadDropsNothing is the graceful-drain acceptance:
// while slowed queries hold requests in flight, readiness flips and the
// server shuts down — every accepted request still completes with a 200,
// zero are dropped mid-response, and the drain finishes inside its bound.
func TestShutdownUnderLoadDropsNothing(t *testing.T) {
	g, fl := buildFlaky(t)
	fl.DelayEach(2 * time.Millisecond) // keep requests in flight during Shutdown

	health := server.NewHealth()
	srv := server.New(g, fl, server.WithHealth(health))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan struct{})
	go func() { httpSrv.Serve(ln); close(serveDone) }()

	url := "http://" + ln.Addr().String() + "/v1/distance?from=0&to=150"
	driveCtx, cancelDrive := context.WithCancel(context.Background())
	defer cancelDrive()
	results := make(chan []Outcome, 1)
	go func() { results <- Drive(driveCtx, url, 8, 1000, nil) }()

	// Let the flood get airborne, then drain exactly as spserve does:
	// readiness first, listener second, in-flight requests run out.
	time.Sleep(50 * time.Millisecond)
	health.SetDraining()
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		t.Fatalf("drain incomplete: %v", err)
	}
	<-serveDone
	cancelDrive()
	outcomes := <-results

	var ok, refused int
	for _, o := range outcomes {
		switch {
		case o.Dropped():
			t.Fatalf("request dropped mid-response: status %d, err %v", o.Status, o.Err)
		case o.Status == http.StatusOK:
			ok++
		case o.Status == 0:
			refused++ // post-shutdown connection failures: the balancer's problem
		default:
			t.Fatalf("request answered %d under drain, want only 200s", o.Status)
		}
	}
	if ok == 0 {
		t.Fatal("no request completed before the drain — the test raced itself")
	}
	t.Logf("drained under load: %d completed, %d refused after shutdown", ok, refused)
}

// TestRateLimitIsolatesClientsUnderLoad: a flood from one client earns
// 429s without ever starving a second client keeping inside its budget.
func TestRateLimitIsolatesClientsUnderLoad(t *testing.T) {
	g, fl := buildFlaky(t)
	ts := httptest.NewServer(server.New(g, fl, server.WithRateLimit(1, 3)).Handler())
	defer ts.Close()
	url := ts.URL + "/v1/distance?from=0&to=150"

	greedy := Drive(context.Background(), url, 4, 10,
		http.Header{"X-Forwarded-For": []string{"203.0.113.1"}})
	var ok, limited int
	for _, o := range greedy {
		switch {
		case o.Err != nil:
			t.Fatalf("greedy client: transport error %v", o.Err)
		case o.Status == http.StatusOK:
			ok++
		case o.Status == http.StatusTooManyRequests:
			limited++
		default:
			t.Fatalf("greedy client: status %d, want 200 or 429", o.Status)
		}
	}
	if ok == 0 || limited == 0 {
		t.Fatalf("greedy client saw %d 200s and %d 429s, want both", ok, limited)
	}

	// The greedy client's empty bucket must not touch this one's.
	polite := Drive(context.Background(), url, 1, 3,
		http.Header{"X-Forwarded-For": []string{"203.0.113.2"}})
	for i, o := range polite {
		if o.Err != nil || o.Status != http.StatusOK {
			t.Fatalf("polite request %d: status %d, err %v — starved by the greedy client", i, o.Status, o.Err)
		}
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}
