package chaos

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"roadnet/internal/binio"
	"roadnet/internal/ch"
	"roadnet/internal/core"
	"roadnet/internal/graph"
	"roadnet/internal/rtree"
	"roadnet/internal/silc"
	"roadnet/internal/testutil"
	"roadnet/internal/tnr"
)

// flipTrials is how many independent rng-chosen covered bytes each format
// must detect, per load path. The exhaustive every-byte sweep lives in
// internal/binio; this table proves the detection reaches every fourcc
// through its real production loader.
const flipTrials = 8

// TestEveryFormatDetectsCorruption is the flat-file damage table: for each
// of the five fourccs (GRPH, CH, TNR with its nested CH container, SILC,
// RTRE), the pristine file loads through its production loader on both the
// heap and mmap paths, while a truncated copy and copies with a flipped
// checksum-covered byte fail with ErrCorrupt on both paths.
func TestEveryFormatDetectsCorruption(t *testing.T) {
	g := testutil.SmallRoad(200, 7)
	dir := t.TempDir()

	indexLoader := func(m core.Method) func(path string, mmap bool) error {
		return func(path string, mmap bool) error {
			idx, _, err := core.LoadIndexFile(m, path, g, mmap)
			if err == nil {
				err = core.CloseIndex(idx)
			}
			return err
		}
	}
	saveIndex := func(m core.Method) func(path string) error {
		return func(path string) error {
			idx, err := core.BuildIndex(m, g, core.Config{TNR: tnr.Options{GridSize: 4}})
			if err != nil {
				return err
			}
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			return core.SaveIndex(idx, f)
		}
	}

	cases := []struct {
		name   string
		fourcc uint32
		save   func(path string) error
		load   func(path string, mmap bool) error
	}{
		{"GRPH", graph.GraphFourcc,
			func(path string) error {
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				defer f.Close()
				return g.Save(f)
			},
			func(path string, mmap bool) error {
				lg, err := graph.LoadFile(path, mmap)
				if err == nil {
					err = lg.Close()
				}
				return err
			}},
		{"CH", ch.Fourcc, saveIndex(core.MethodCH), indexLoader(core.MethodCH)},
		{"TNR", tnr.Fourcc, saveIndex(core.MethodTNR), indexLoader(core.MethodTNR)},
		{"SILC", silc.Fourcc, saveIndex(core.MethodSILC), indexLoader(core.MethodSILC)},
		{"RTRE", rtree.Fourcc,
			func(path string) error {
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				defer f.Close()
				return core.NewSpatialLocator(g).Tree().Save(f)
			},
			func(path string, mmap bool) error {
				tr, err := rtree.LoadFile(path, mmap)
				if err == nil {
					err = tr.Close()
				}
				return err
			}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pristine := filepath.Join(dir, tc.name+".bin")
			if err := tc.save(pristine); err != nil {
				t.Fatalf("save: %v", err)
			}
			layout, err := ReadLayout(pristine)
			if err != nil {
				t.Fatalf("layout: %v", err)
			}
			if layout.Fourcc != tc.fourcc {
				t.Fatalf("fourcc = %08x, want %08x", layout.Fourcc, tc.fourcc)
			}
			if layout.Header.Len == 0 {
				t.Fatal("saved file carries no checksums")
			}

			for _, mmap := range []bool{false, true} {
				mode := map[bool]string{false: "heap", true: "mmap"}[mmap]
				if err := tc.load(pristine, mmap); err != nil {
					t.Fatalf("%s: pristine file rejected: %v", mode, err)
				}

				work := filepath.Join(dir, tc.name+".work")
				for _, cut := range []int64{layout.Size - 1, layout.Size / 2} {
					mustClone(t, work, pristine)
					if err := Truncate(work, cut); err != nil {
						t.Fatal(err)
					}
					if err := tc.load(work, mmap); !errors.Is(err, binio.ErrCorrupt) {
						t.Fatalf("%s: truncation to %d bytes: err = %v, want ErrCorrupt", mode, cut, err)
					}
				}

				rng := rand.New(rand.NewSource(0x5eed + int64(len(tc.name))))
				for trial := 0; trial < flipTrials; trial++ {
					mustClone(t, work, pristine)
					off, err := FlipCovered(work, rng)
					if err != nil {
						t.Fatal(err)
					}
					if err := tc.load(work, mmap); !errors.Is(err, binio.ErrCorrupt) {
						t.Fatalf("%s: flipped byte at offset %d went undetected: err = %v, want ErrCorrupt",
							mode, off, err)
					}
				}
			}
		})
	}
}

func mustClone(t *testing.T, dst, src string) {
	t.Helper()
	if err := Clone(dst, src); err != nil {
		t.Fatal(err)
	}
}
