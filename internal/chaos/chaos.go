package chaos

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"roadnet/internal/core"
	"roadnet/internal/graph"
)

// ErrInjected is the error a FailNext-armed query returns.
var ErrInjected = errors.New("chaos: injected query failure")

// FlakyIndex wraps a core.Index so tests can inject faults into the
// queries its searchers answer. The fault budget is shared across all
// searchers (and so across all request goroutines of a server built over
// the index), which is the point: a test arms one fault and asserts the
// process survives whichever request draws it.
//
// The wrapper deliberately does not forward the optional acceleration
// interfaces (batch, lazy paths) — faulty deployments degrade to the
// simple code paths, and so do these tests.
type FlakyIndex struct {
	core.Index
	panics atomic.Int64 // queries left to panic
	fails  atomic.Int64 // queries left to fail with ErrInjected
	delay  atomic.Int64 // per-query stall, nanoseconds
}

// Wrap returns idx with fault injection points around every searcher
// query. The zero state injects nothing and answers exactly like idx.
func Wrap(idx core.Index) *FlakyIndex { return &FlakyIndex{Index: idx} }

// PanicNext arms the next n queries (across all searchers) to panic —
// the "handler bug" scenario the server's recovery middleware must absorb.
func (f *FlakyIndex) PanicNext(n int) { f.panics.Add(int64(n)) }

// FailNext arms the next n context-carrying queries to return ErrInjected.
func (f *FlakyIndex) FailNext(n int) { f.fails.Add(int64(n)) }

// DelayEach stalls every query by d (0 disables), so tests can hold
// requests in flight while they shut the server down around them.
func (f *FlakyIndex) DelayEach(d time.Duration) { f.delay.Store(int64(d)) }

// NewSearcher wraps the underlying searcher with the injection points.
func (f *FlakyIndex) NewSearcher() core.Searcher {
	return &flakySearcher{Searcher: f.Index.NewSearcher(), idx: f}
}

// takeToken consumes one unit from a fault budget, if any remains.
func takeToken(c *atomic.Int64) bool {
	for {
		v := c.Load()
		if v <= 0 {
			return false
		}
		if c.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// inject runs the armed faults that apply to every query shape: the stall
// and the panic. Error injection is handled by the Context variants, the
// only signatures that can express it.
func (f *FlakyIndex) inject() {
	if d := f.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if takeToken(&f.panics) {
		panic("chaos: injected searcher panic")
	}
}

type flakySearcher struct {
	core.Searcher
	idx *FlakyIndex
}

func (s *flakySearcher) Distance(a, b graph.VertexID) int64 {
	s.idx.inject()
	return s.Searcher.Distance(a, b)
}

func (s *flakySearcher) ShortestPath(a, b graph.VertexID) ([]graph.VertexID, int64) {
	s.idx.inject()
	return s.Searcher.ShortestPath(a, b)
}

func (s *flakySearcher) DistanceContext(ctx context.Context, a, b graph.VertexID) (int64, error) {
	s.idx.inject()
	if takeToken(&s.idx.fails) {
		return 0, ErrInjected
	}
	return s.Searcher.DistanceContext(ctx, a, b)
}

func (s *flakySearcher) ShortestPathContext(ctx context.Context, a, b graph.VertexID) ([]graph.VertexID, int64, error) {
	s.idx.inject()
	if takeToken(&s.idx.fails) {
		return nil, graph.Infinity, ErrInjected
	}
	return s.Searcher.ShortestPathContext(ctx, a, b)
}
