// Package binio is the binary persistence layer under every saved
// artifact in this repository — graphs, CH/TNR/SILC indexes and R-trees.
// Preprocessing the larger datasets takes minutes to hours (Figure 6(b));
// persisting the result is what a production deployment would do, so the
// library supports it for every structure whose construction is expensive.
//
// Two formats coexist:
//
//   - The legacy v1 streams (binio.go): length-prefixed primitive slices
//     behind a per-index magic string and version byte, read element by
//     element. Still readable, never written by current code.
//   - The flat v2 container (flat.go): an aligned, sectioned, checksummed
//     layout designed so a file can be mmap'd and its sections handed to
//     the index as zero-copy typed slices (CastSlice/CastStructs) — load
//     time is O(#sections) regardless of index size, and resident memory
//     is page cache shared across processes. OpenFlat verifies every
//     section checksum by default; WithoutVerify defers the sweep (audit
//     later with the spverify tool).
//
// Decoding failures caused by the bytes themselves — implausible lengths,
// truncated sections, checksum mismatches — wrap ErrCorrupt, so callers
// can distinguish corruption (rebuild, fall back, degrade) from
// environmental failures (missing file, permissions). docs/FORMAT.md
// documents the on-disk layout and its evolution rules.
package binio
