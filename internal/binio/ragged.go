package binio

import "fmt"

// Ragged-array helpers. The index structures hold many per-vertex rows of
// varying length ([][]int32 distance tables, [][]uint8 color maps, ...).
// The flat format stores such an array as two sections — an offsets run of
// len(rows)+1 int64s and the concatenated row data — and the loader
// rebuilds the outer slice as views into the (possibly mapped) data: one
// allocation of slice headers regardless of row count, zero copies of row
// content.

// Flatten converts rows into the offsets + concatenated-data pair the flat
// format stores. offsets[i] .. offsets[i+1] delimit row i in data.
func Flatten[T any](rows [][]T) (offsets []int64, data []T) {
	offsets = make([]int64, len(rows)+1)
	total := 0
	for i, row := range rows {
		offsets[i] = int64(total)
		total += len(row)
	}
	offsets[len(rows)] = int64(total)
	data = make([]T, 0, total)
	for _, row := range rows {
		data = append(data, row...)
	}
	return offsets, data
}

// Unflatten rebuilds the outer slice over data: row i aliases
// data[offsets[i]:offsets[i+1]]. Rows share data's backing (page cache for
// mapped sections) and must be treated as immutable.
func Unflatten[T any](offsets []int64, data []T) ([][]T, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("%w: empty ragged offsets section", ErrCorrupt)
	}
	rows := make([][]T, len(offsets)-1)
	n := int64(len(data))
	for i := range rows {
		lo, hi := offsets[i], offsets[i+1]
		if lo < 0 || hi < lo || hi > n {
			return nil, fmt.Errorf("%w: ragged row %d spans [%d, %d) of %d elements", ErrCorrupt, i, lo, hi, n)
		}
		rows[i] = data[lo:hi:hi]
	}
	return rows, nil
}
