//go:build linux || darwin

package binio

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// MmapSupported reports whether this platform can map index files instead
// of reading them onto the heap.
const MmapSupported = true

// mapFile returns the contents of the file at path plus a release
// function. With preferMmap (and a non-empty file) the contents are a
// read-only shared mapping: loading is O(1), the pages are demand-faulted
// from the page cache and shared across processes serving the same index.
// Otherwise — or when the mapping fails — the file is read onto the heap
// and the release function is nil.
func mapFile(path string, preferMmap bool) (data []byte, unmap func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if preferMmap {
		st, err := f.Stat()
		if err != nil {
			return nil, nil, err
		}
		if size := st.Size(); size > 0 && int64(int(size)) == size {
			b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
			if err == nil {
				return b, func() error { return syscall.Munmap(b) }, nil
			}
			// Fall through to the heap read: some filesystems (and empty
			// files) cannot be mapped, and a copying load is always valid.
		}
	}
	data, err = io.ReadAll(f)
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return data, nil, nil
}
