package binio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundtripPrimitives(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("HDR1")
	w.U8(7)
	w.I32(-42)
	w.I64(1 << 50)
	w.I32Slice([]int32{1, -2, 3})
	w.U32Slice([]uint32{9, 8})
	w.U8Slice([]byte("hello"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	r.Magic("HDR1")
	if v := r.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := r.I32(); v != -42 {
		t.Errorf("I32 = %d", v)
	}
	if v := r.I64(); v != 1<<50 {
		t.Errorf("I64 = %d", v)
	}
	s32 := r.I32Slice()
	if len(s32) != 3 || s32[1] != -2 {
		t.Errorf("I32Slice = %v", s32)
	}
	u32 := r.U32Slice()
	if len(u32) != 2 || u32[0] != 9 {
		t.Errorf("U32Slice = %v", u32)
	}
	if got := string(r.U8Slice()); got != "hello" {
		t.Errorf("U8Slice = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(a []int32, b []uint8, c int64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.I32Slice(a)
		w.U8Slice(b)
		w.I64(c)
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		ga := r.I32Slice()
		gb := r.U8Slice()
		gc := r.I64()
		if r.Err() != nil || gc != c || len(ga) != len(a) || len(gb) != len(b) {
			return false
		}
		for i := range a {
			if ga[i] != a[i] {
				return false
			}
		}
		for i := range b {
			if gb[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("AAAA")
	_ = w.Flush()
	r := NewReader(&buf)
	r.Magic("BBBB")
	if r.Err() == nil {
		t.Error("expected magic mismatch error")
	}
}

func TestTruncatedInput(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I32Slice(make([]int32, 100))
	_ = w.Flush()
	data := buf.Bytes()[:50] // cut mid-slice
	r := NewReader(bytes.NewReader(data))
	r.I32Slice()
	if r.Err() == nil {
		t.Error("expected truncation error")
	}
}

func TestCorruptLength(t *testing.T) {
	// A negative or absurd length must be rejected, not allocated.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64(-5)
	_ = w.Flush()
	r := NewReader(&buf)
	r.I32Slice()
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "implausible") {
		t.Errorf("expected implausible-length error, got %v", r.Err())
	}
}

func TestStickyErrors(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	r.I64() // fails: empty input
	if r.Err() == nil {
		t.Fatal("expected error on empty input")
	}
	// Further reads stay failed and return zero values.
	if v := r.I32(); v != 0 {
		t.Errorf("read after error returned %d", v)
	}
	if s := r.U8Slice(); s != nil {
		t.Errorf("slice after error returned %v", s)
	}
}
