package binio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"unsafe"
)

// buildLegacyFlat writes the same container as buildTestFlat but in the
// pre-checksum layout (flags 0, zeroed pad slots, no trailing CRC).
func buildLegacyFlat(t *testing.T) []byte {
	t.Helper()
	fw := NewFlatWriter(testFourcc)
	fw.noChecksums = true
	mw := fw.Meta()
	mw.Magic("META")
	mw.I64(12345)
	mw.I32Slice([]int32{7, -8, 9})
	fw.I32Section([]int32{1, -2, 3})
	fw.U32Section([]uint32{10, 20, 30, 40})
	fw.U8Section([]byte("payload"))
	fw.I64Section([]int64{1 << 40, -5})
	fw.I32Section(nil)
	var buf bytes.Buffer
	if _, err := fw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFlatChecksumRoundtrip(t *testing.T) {
	data := buildTestFlat(t)
	f, err := ParseFlat(data, false)
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasChecksums() {
		t.Fatal("freshly written container should carry checksums")
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify on pristine container: %v", err)
	}
	checkTestFlat(t, f)
}

func TestFlatLegacyNoChecksumsAccepted(t *testing.T) {
	data := buildLegacyFlat(t)
	if flags := binary.LittleEndian.Uint32(data[20:]); flags != 0 {
		t.Fatalf("legacy layout flags = %#x, want 0", flags)
	}
	f, err := ParseFlat(data, false)
	if err != nil {
		t.Fatalf("legacy container rejected: %v", err)
	}
	if f.HasChecksums() {
		t.Error("legacy container should report no checksums")
	}
	if err := f.Verify(); err != nil {
		t.Errorf("Verify on checksum-less container should be a no-op, got %v", err)
	}
	checkTestFlat(t, f)
}

// TestFlatChecksumLayoutCompat pins the compatibility claim: a checksummed
// container differs from the legacy layout only in the flags word, the pad
// slots and the inserted trailing CRC — everything a pre-checksum reader
// ignores.
func TestFlatChecksumLayoutCompat(t *testing.T) {
	now := buildTestFlat(t)
	old := buildLegacyFlat(t)
	fNow, err := ParseFlat(now, false)
	if err != nil {
		t.Fatal(err)
	}
	fOld, err := ParseFlat(old, false)
	if err != nil {
		t.Fatal(err)
	}
	if fNow.NumSections() != fOld.NumSections() {
		t.Fatalf("section counts diverge: %d vs %d", fNow.NumSections(), fOld.NumSections())
	}
	if !bytes.Equal(fNow.meta, fOld.meta) {
		t.Error("meta blobs diverge between layouts")
	}
	for i := 0; i < fNow.NumSections(); i++ {
		if fNow.secs[i].kind != fOld.secs[i].kind ||
			!bytes.Equal(fNow.secs[i].data, fOld.secs[i].data) {
			t.Errorf("section %d payload diverges between layouts", i)
		}
	}
}

// TestFlatChecksumDetectsEveryByteFlip flips every meaningful byte of the
// container (header, table, meta, trailing CRC, section payloads —
// everything but alignment padding) and checks that eager parsing rejects
// each mutation with a typed error.
func TestFlatChecksumDetectsEveryByteFlip(t *testing.T) {
	pristine := buildTestFlat(t)
	f, err := parseFlat(pristine, false)
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]bool, len(pristine))
	for i := int64(0); i < f.metaEnd+4; i++ {
		covered[i] = true
	}
	for _, s := range f.secs {
		if len(s.data) == 0 {
			continue
		}
		start := int64(uintptrOf(s.data) - uintptrOf(pristine))
		for j := int64(0); j < int64(len(s.data)); j++ {
			covered[start+j] = true
		}
	}
	for i, c := range covered {
		if !c {
			continue
		}
		mut := bytes.Clone(pristine)
		mut[i] ^= 0x40
		ff, err := ParseFlat(mut, false)
		if err == nil {
			t.Fatalf("byte flip at offset %d went undetected", i)
		}
		if ff != nil {
			t.Fatalf("byte flip at offset %d returned a non-nil file", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotFlat) && !errors.Is(err, ErrVersion) {
			t.Fatalf("byte flip at offset %d: untyped error %v", i, err)
		}
	}
}

func uintptrOf(b []byte) uintptr {
	if len(b) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&b[0]))
}

func TestFlatChecksummedTruncation(t *testing.T) {
	data := buildTestFlat(t)
	f, err := parseFlat(data, false)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file off right before the trailing header CRC: the structural
	// parse must already refuse it.
	if _, err := ParseFlat(data[:f.metaEnd+3], false); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncation before header CRC: err = %v, want ErrCorrupt", err)
	}
	// Cut mid-section: the table bounds check refuses it.
	if _, err := ParseFlat(data[:len(data)-1], false); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncation mid-section: err = %v, want ErrCorrupt", err)
	}
}

// TestFlatNestedCoveredByParent checks that corruption inside a nested
// container is caught by the parent's section checksum even though
// NestedFlat itself never verifies.
func TestFlatNestedCoveredByParent(t *testing.T) {
	inner := NewFlatWriter(testFourcc)
	inner.Meta().Magic("NEST")
	inner.I32Section([]int32{4, 5, 6})
	var ibuf bytes.Buffer
	if _, err := inner.WriteTo(&ibuf); err != nil {
		t.Fatal(err)
	}
	outer := NewFlatWriter(testFourcc)
	outer.Meta().Magic("OUTR")
	outer.U8Section(ibuf.Bytes())
	var obuf bytes.Buffer
	if _, err := outer.WriteTo(&obuf); err != nil {
		t.Fatal(err)
	}
	data := obuf.Bytes()

	f, err := ParseFlat(data, false)
	if err != nil {
		t.Fatal(err)
	}
	nested, err := f.NestedFlat(0)
	if err != nil {
		t.Fatal(err)
	}
	if s, err := nested.I32(0); err != nil || len(s) != 3 || s[2] != 6 {
		t.Fatalf("nested I32(0) = %v, %v", s, err)
	}

	// Corrupt a byte inside the nested container's payload region.
	raw, err := parseFlat(data, false)
	if err != nil {
		t.Fatal(err)
	}
	sectionStart := int(uintptrOf(raw.secs[0].data) - uintptrOf(data))
	mut := bytes.Clone(data)
	mut[sectionStart+len(raw.secs[0].data)-1] ^= 0x01
	if _, err := ParseFlat(mut, false); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nested corruption: parent parse err = %v, want ErrCorrupt", err)
	}
}

func TestOpenFlatVerifyPolicy(t *testing.T) {
	if !MmapSupported {
		t.Skip("needs mmap to exercise the deferred-verify path")
	}
	data := buildTestFlat(t)
	f, err := parseFlat(data, false)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte of the last non-empty section's payload — after the
	// header region, so the structural parse still succeeds.
	var corruptAt int
	for _, s := range f.secs {
		if len(s.data) > 0 {
			corruptAt = int(uintptrOf(s.data) - uintptrOf(data))
		}
	}
	mut := bytes.Clone(data)
	mut[corruptAt] ^= 0x80
	path := filepath.Join(t.TempDir(), "corrupt.flat")
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	// Heap read: verified eagerly by default.
	if _, err := OpenFlat(path, false); !errors.Is(err, ErrCorrupt) {
		t.Errorf("heap open of corrupt file: err = %v, want ErrCorrupt", err)
	}
	// Heap read with WithoutVerify: loads, but an explicit Verify catches it.
	ff, err := OpenFlat(path, false, WithoutVerify())
	if err != nil {
		t.Fatalf("heap open WithoutVerify: %v", err)
	}
	if err := ff.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("explicit Verify: err = %v, want ErrCorrupt", err)
	}
	ff.Close()
	// Mapped: deferred by default — open succeeds, Verify catches it.
	fm, err := OpenFlat(path, true)
	if err != nil {
		t.Fatalf("mmap open of corrupt file should defer verification: %v", err)
	}
	if !fm.Mapped() {
		t.Skip("mmap not actually used on this filesystem")
	}
	if err := fm.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mapped Verify: err = %v, want ErrCorrupt", err)
	}
	fm.Close()
	// Mapped with WithVerify: rejected at open.
	if _, err := OpenFlat(path, true, WithVerify()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mmap open WithVerify: err = %v, want ErrCorrupt", err)
	}

	// A pristine file passes under every policy.
	good := filepath.Join(t.TempDir(), "good.flat")
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]OpenOption{nil, {WithVerify()}, {WithoutVerify()}} {
		for _, mmap := range []bool{false, true} {
			fg, err := OpenFlat(good, mmap, opts...)
			if err != nil {
				t.Fatalf("pristine open (mmap=%v, %d opts): %v", mmap, len(opts), err)
			}
			if err := fg.Verify(); err != nil {
				t.Errorf("pristine Verify (mmap=%v): %v", mmap, err)
			}
			fg.Close()
		}
	}
}

func TestFlatCloseIdempotent(t *testing.T) {
	data := buildTestFlat(t)
	path := filepath.Join(t.TempDir(), "idx.flat")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mmap := range []bool{false, MmapSupported} {
		f, err := OpenFlat(path, mmap)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("first Close (mmap=%v): %v", mmap, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("second Close (mmap=%v): %v", mmap, err)
		}
	}
}

// TestFlatCloseConcurrent races many Close calls; exactly one may perform
// the release (the injected unmap counts invocations). Run under -race.
func TestFlatCloseConcurrent(t *testing.T) {
	data := buildTestFlat(t)
	f, err := parseFlat(data, false)
	if err != nil {
		t.Fatal(err)
	}
	var calls int32
	var mu sync.Mutex
	f.unmap = func() error {
		mu.Lock()
		calls++
		mu.Unlock()
		return nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f.Close(); err != nil {
				t.Errorf("racing Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("unmap ran %d times, want exactly 1", calls)
	}
}

// TestFlatCloseErrorPropagates injects a failing unmap and checks the
// error surfaces from the first Close only.
func TestFlatCloseErrorPropagates(t *testing.T) {
	data := buildTestFlat(t)
	f, err := parseFlat(data, false)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("munmap: injected failure")
	f.unmap = func() error { return boom }
	if err := f.Close(); !errors.Is(err, boom) {
		t.Fatalf("first Close = %v, want injected error", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close after failed unmap = %v, want nil", err)
	}
}
