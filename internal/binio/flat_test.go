package binio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unsafe"
)

const testFourcc = 0x54534554 // "TEST"

// buildTestFlat writes a container exercising every section kind plus a
// metadata blob, returning its bytes.
func buildTestFlat(t *testing.T) []byte {
	t.Helper()
	fw := NewFlatWriter(testFourcc)
	mw := fw.Meta()
	mw.Magic("META")
	mw.I64(12345)
	mw.I32Slice([]int32{7, -8, 9})
	if i := fw.I32Section([]int32{1, -2, 3}); i != 0 {
		t.Fatalf("first section index = %d", i)
	}
	fw.U32Section([]uint32{10, 20, 30, 40})
	fw.U8Section([]byte("payload"))
	fw.I64Section([]int64{1 << 40, -5})
	fw.I32Section(nil) // empty sections are legal
	var buf bytes.Buffer
	if _, err := fw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkTestFlat(t *testing.T, f *FlatFile) {
	t.Helper()
	if f.Fourcc() != testFourcc {
		t.Errorf("fourcc = %#x", f.Fourcc())
	}
	if f.NumSections() != 5 {
		t.Fatalf("NumSections = %d", f.NumSections())
	}
	mr := f.Meta()
	mr.Magic("META")
	if v := mr.I64(); v != 12345 {
		t.Errorf("meta I64 = %d", v)
	}
	if s := mr.I32Slice(); len(s) != 3 || s[1] != -8 {
		t.Errorf("meta I32Slice = %v", s)
	}
	if err := mr.Err(); err != nil {
		t.Fatal(err)
	}
	s32, err := f.I32(0)
	if err != nil || len(s32) != 3 || s32[1] != -2 {
		t.Errorf("I32(0) = %v, %v", s32, err)
	}
	u32, err := f.U32(1)
	if err != nil || len(u32) != 4 || u32[3] != 40 {
		t.Errorf("U32(1) = %v, %v", u32, err)
	}
	u8, err := f.U8(2)
	if err != nil || string(u8) != "payload" {
		t.Errorf("U8(2) = %q, %v", u8, err)
	}
	s64, err := f.I64(3)
	if err != nil || len(s64) != 2 || s64[0] != 1<<40 {
		t.Errorf("I64(3) = %v, %v", s64, err)
	}
	empty, err := f.I32(4)
	if err != nil || len(empty) != 0 {
		t.Errorf("I32(4) = %v, %v", empty, err)
	}
}

func TestFlatRoundtrip(t *testing.T) {
	data := buildTestFlat(t)
	for _, zeroCopy := range []bool{false, true} {
		f, err := ParseFlat(data, zeroCopy)
		if err != nil {
			t.Fatalf("zeroCopy=%v: %v", zeroCopy, err)
		}
		checkTestFlat(t, f)
	}
}

func TestFlatAlignment(t *testing.T) {
	data := buildTestFlat(t)
	f, err := ParseFlat(data, true)
	if err != nil {
		t.Fatal(err)
	}
	// Every section's start offset must be 64-byte aligned.
	for i := 0; i < f.NumSections(); i++ {
		entry := data[flatHeaderSize+i*flatEntrySize:]
		off := int64(uint64(entry[8]) | uint64(entry[9])<<8 | uint64(entry[10])<<16 | uint64(entry[11])<<24 |
			uint64(entry[12])<<32 | uint64(entry[13])<<40 | uint64(entry[14])<<48 | uint64(entry[15])<<56)
		if off%flatAlign != 0 {
			t.Errorf("section %d offset %d is not %d-byte aligned", i, off, flatAlign)
		}
	}
}

func TestFlatZeroCopyAliases(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("zero-copy casts require a little-endian host")
	}
	data := buildTestFlat(t)
	f, err := ParseFlat(data, true)
	if err != nil {
		t.Fatal(err)
	}
	s32, err := f.I32(0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.section(0, SectionI32)
	if err != nil {
		t.Fatal(err)
	}
	// When the section start is word-aligned the accessor must cast in
	// place, so the int32 view aliases the raw bytes.
	if uintptr(unsafePointerOf(raw))%4 == 0 && unsafePointerOf(s32byte(s32)) != unsafePointerOf(raw) {
		t.Error("aligned zero-copy access returned a copy")
	}
}

func unsafePointerOf(b []byte) uintptr {
	if len(b) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&b[0]))
}

func s32byte(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func TestFlatSectionKindMismatch(t *testing.T) {
	f, err := ParseFlat(buildTestFlat(t), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.U8(0); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("U8 over i32 section: err = %v", err)
	}
	if _, err := f.I32(99); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("out-of-range section: err = %v", err)
	}
}

func TestFlatBadMagic(t *testing.T) {
	data := buildTestFlat(t)
	data[0] ^= 0xff
	if _, err := ParseFlat(data, false); !errors.Is(err, ErrNotFlat) {
		t.Errorf("bad magic: err = %v", err)
	}
}

func TestFlatBadVersion(t *testing.T) {
	data := buildTestFlat(t)
	data[12] = 9 // container version field
	_, err := ParseFlat(data, false)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version 9: err = %v", err)
	}
	if !strings.Contains(err.Error(), "9") || !strings.Contains(err.Error(), "2") {
		t.Errorf("version error should name both versions: %v", err)
	}
}

func TestFlatTruncations(t *testing.T) {
	data := buildTestFlat(t)
	// Any truncation must fail cleanly in ParseFlat or the accessors, and
	// never panic or silently succeed with the final byte removed.
	for _, cut := range []int{0, 4, len(FlatMagic), flatHeaderSize - 1, flatHeaderSize + 3,
		len(data) / 2, len(data) - 1} {
		f, err := ParseFlat(data[:cut], false)
		if err != nil {
			continue // rejected at parse time: good
		}
		ok := true
		for i := 0; i < f.NumSections(); i++ {
			switch f.secs[i].kind {
			case SectionI32:
				_, err = f.I32(i)
			case SectionU32:
				_, err = f.U32(i)
			case SectionU8:
				_, err = f.U8(i)
			case SectionI64:
				_, err = f.I64(i)
			}
			if err != nil {
				ok = false
			}
		}
		if ok {
			t.Errorf("truncation to %d bytes (of %d) was accepted", cut, len(data))
		}
	}
}

func TestFlatHostileSectionTable(t *testing.T) {
	data := buildTestFlat(t)
	// Section 0 offset pointing past the end of the file.
	mut := bytes.Clone(data)
	for i := 8; i < 16; i++ {
		mut[flatHeaderSize+i] = 0xff
	}
	if _, err := ParseFlat(mut, false); !errors.Is(err, ErrCorrupt) {
		t.Errorf("hostile offset: err = %v", err)
	}
	// Meta length far beyond the file.
	mut = bytes.Clone(data)
	for i := 32; i < 40; i++ {
		mut[i] = 0x7f
	}
	if _, err := ParseFlat(mut, false); !errors.Is(err, ErrCorrupt) {
		t.Errorf("hostile meta length: err = %v", err)
	}
}

func TestFlatNested(t *testing.T) {
	inner := buildTestFlat(t)
	fw := NewFlatWriter(0x5453454e) // "NEST"
	fw.U8Section(inner)
	fw.I32Section([]int32{42})
	var buf bytes.Buffer
	if _, err := fw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	outer, err := ParseFlat(buf.Bytes(), true)
	if err != nil {
		t.Fatal(err)
	}
	nested, err := outer.NestedFlat(0)
	if err != nil {
		t.Fatal(err)
	}
	checkTestFlat(t, nested)
}

func TestOpenFlat(t *testing.T) {
	data := buildTestFlat(t)
	path := filepath.Join(t.TempDir(), "test.idx")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, preferMmap := range []bool{false, true} {
		f, err := OpenFlat(path, preferMmap)
		if err != nil {
			t.Fatalf("preferMmap=%v: %v", preferMmap, err)
		}
		if preferMmap && MmapSupported && hostLittleEndian && !f.Mapped() {
			t.Errorf("preferMmap=%v: expected a mapped file", preferMmap)
		}
		if !preferMmap && f.Mapped() {
			t.Error("preferMmap=false produced a mapping")
		}
		if f.SizeBytes() != int64(len(data)) {
			t.Errorf("SizeBytes = %d, want %d", f.SizeBytes(), len(data))
		}
		checkTestFlat(t, f)
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenFlat(filepath.Join(t.TempDir(), "missing.idx"), true); err == nil {
		t.Error("opening a missing file succeeded")
	}
}

func TestReaderLimitRejectsHostileLength(t *testing.T) {
	// A 16-byte input claiming a billion-element slice must fail with the
	// typed corruption error before any allocation is attempted.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64(1 << 30)
	w.I64(0)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReaderLimit(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	r.I32Slice()
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("hostile length: err = %v", err)
	}
}

func TestReaderLimitBoundsReads(t *testing.T) {
	r := NewReaderLimit(strings.NewReader("abcdefgh"), 4)
	r.I64() // needs 8 bytes, only 4 allowed
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bounded read: err = %v", err)
	}
}

func TestCorruptLengthIsTyped(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64(-5)
	_ = w.Flush()
	r := NewReader(&buf)
	r.I32Slice()
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("negative length: err = %v", err)
	}
}
