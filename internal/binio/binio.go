package binio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// maxSliceLen caps decoded slice lengths as a corruption guard (1 << 31
// elements would be far beyond any index this library builds).
const maxSliceLen = 1 << 31

// ErrCorrupt tags decoding failures caused by corrupt (or hostile) input:
// implausible length prefixes, truncated sections, reads past a declared
// size. Callers can errors.Is against it to distinguish bad files from IO
// failures.
var ErrCorrupt = errors.New("binio: corrupt data")

// Writer wraps a buffered writer with sticky error handling: after the
// first failure every Write* call is a no-op and Flush reports the error.
type Writer struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Flush flushes buffered data and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

// Magic writes a fixed identification string.
func (w *Writer) Magic(s string) { w.write([]byte(s)) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.buf[0] = v
	w.write(w.buf[:1])
}

// I64 writes an int64.
func (w *Writer) I64(v int64) {
	binary.LittleEndian.PutUint64(w.buf[:8], uint64(v))
	w.write(w.buf[:8])
}

// I32 writes an int32.
func (w *Writer) I32(v int32) {
	binary.LittleEndian.PutUint32(w.buf[:4], uint32(v))
	w.write(w.buf[:4])
}

// U32 writes a uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// I32Slice writes a length-prefixed []int32.
func (w *Writer) I32Slice(s []int32) {
	w.I64(int64(len(s)))
	for _, v := range s {
		w.I32(v)
	}
}

// U32Slice writes a length-prefixed []uint32.
func (w *Writer) U32Slice(s []uint32) {
	w.I64(int64(len(s)))
	for _, v := range s {
		w.I32(int32(v))
	}
}

// U8Slice writes a length-prefixed []uint8.
func (w *Writer) U8Slice(s []uint8) {
	w.I64(int64(len(s)))
	w.write(s)
}

// Err returns the sticky error.
func (w *Writer) Err() error { return w.err }

// Reader wraps a buffered reader with sticky error handling. A Reader may
// be bounded (NewReaderLimit) by the number of bytes known to remain in
// the input; bounded readers reject length prefixes that would decode past
// the end of the input before allocating anything.
type Reader struct {
	r   *bufio.Reader
	err error
	buf [8]byte
	// remaining is the byte budget of a bounded reader, -1 when unbounded.
	remaining int64
}

// NewReader returns an unbounded Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16), remaining: -1}
}

// NewReaderLimit returns a Reader on r that treats size as the number of
// bytes available: corrupt or hostile length prefixes exceeding it fail
// with an error wrapping ErrCorrupt instead of attempting the allocation.
// Callers loading from a file should pass the file size.
func NewReaderLimit(r io.Reader, size int64) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16), remaining: size}
}

// Err returns the sticky error.
func (r *Reader) Err() error { return r.err }

func (r *Reader) read(p []byte) {
	if r.err != nil {
		return
	}
	if r.remaining >= 0 {
		if int64(len(p)) > r.remaining {
			r.err = fmt.Errorf("%w: read of %d bytes exceeds the %d remaining in the input",
				ErrCorrupt, len(p), r.remaining)
			return
		}
		r.remaining -= int64(len(p))
	}
	_, r.err = io.ReadFull(r.r, p)
}

// Magic consumes and verifies a fixed identification string.
func (r *Reader) Magic(want string) {
	got := make([]byte, len(want))
	r.read(got)
	if r.err == nil && string(got) != want {
		r.err = fmt.Errorf("binio: bad magic %q, want %q", got, want)
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	r.read(r.buf[:1])
	return r.buf[0]
}

// I64 reads an int64.
func (r *Reader) I64() int64 {
	r.read(r.buf[:8])
	return int64(binary.LittleEndian.Uint64(r.buf[:8]))
}

// I32 reads an int32.
func (r *Reader) I32() int32 {
	r.read(r.buf[:4])
	return int32(binary.LittleEndian.Uint32(r.buf[:4]))
}

// sliceLen decodes and validates a length prefix for a slice of elemSize-
// byte elements. Negative or absurd lengths — and, on bounded readers,
// lengths whose payload exceeds the remaining input — fail with an error
// wrapping ErrCorrupt before any allocation is attempted.
func (r *Reader) sliceLen(elemSize int64) int {
	n := r.I64()
	if r.err != nil {
		return 0
	}
	if n < 0 || n > maxSliceLen {
		r.err = fmt.Errorf("%w: implausible slice length %d", ErrCorrupt, n)
		return 0
	}
	if r.remaining >= 0 && n*elemSize > r.remaining {
		r.err = fmt.Errorf("%w: implausible slice length %d (%d bytes, but only %d remain in the input)",
			ErrCorrupt, n, n*elemSize, r.remaining)
		return 0
	}
	return int(n)
}

// I32Slice reads a length-prefixed []int32.
func (r *Reader) I32Slice() []int32 {
	n := r.sliceLen(4)
	s := make([]int32, n)
	for i := range s {
		s[i] = r.I32()
	}
	if r.err != nil {
		return nil
	}
	return s
}

// U32Slice reads a length-prefixed []uint32.
func (r *Reader) U32Slice() []uint32 {
	n := r.sliceLen(4)
	s := make([]uint32, n)
	for i := range s {
		s[i] = uint32(r.I32())
	}
	if r.err != nil {
		return nil
	}
	return s
}

// U8Slice reads a length-prefixed []uint8.
func (r *Reader) U8Slice() []uint8 {
	n := r.sliceLen(1)
	s := make([]uint8, n)
	r.read(s)
	if r.err != nil {
		return nil
	}
	return s
}
