// Flat v2 container: the zero-copy on-disk format shared by every index
// serializer in this repository.
//
// A flat file is a section table plus a small metadata blob. Every large
// array (CSR adjacency, CH shortcut lists, TNR distance tables, SILC color
// maps) is stored as one section: a 64-byte-aligned, little-endian run of
// fixed-size elements. A loader can therefore mmap the file and cast each
// section in place — startup is O(#sections), resident memory is shared
// page cache, and indexes larger than RAM serve gracefully. Scalars, small
// tables and options travel in the metadata blob, encoded with the v1
// Writer/Reader primitives.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "RNFLAT2\n"
//	8       4     fourcc — the owning index type ("CH  ", "TNR ", ...)
//	12      4     container version (currently 2)
//	16      4     section count
//	20      4     flags (reserved, 0)
//	24      8     meta blob offset
//	32      8     meta blob length in bytes
//	40      24×N  section table: {kind u32, pad u32, offset u64, bytes u64}
//	...           meta blob
//	...           sections, each padded to a 64-byte boundary
//
// Section offsets are relative to the start of the container, so a flat
// file may be nested inside a U8 section of another flat file (TNR embeds
// its contraction hierarchy this way); because sections are 64-byte
// aligned, nesting preserves alignment and the nested file can still be
// cast in place.
//
// The cast fast path requires a little-endian host and aligned data; on
// big-endian hosts or unaligned buffers the section accessors transparently
// fall back to a decoding copy, so the format is portable even where
// zero-copy is not possible. See docs/FORMAT.md for the full specification.
package binio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"
	"time"
	"unsafe"
)

// FlatMagic identifies a flat v2 container.
const FlatMagic = "RNFLAT2\n"

// FlatVersion is the container version this package reads and writes.
const FlatVersion = 2

// flatAlign is the section alignment; 64 bytes keeps every section start
// on a cache-line (and, via mmap's page alignment, word-aligned for casts).
const flatAlign = 64

// flatHeaderSize is the fixed part of the header before the section table.
const flatHeaderSize = 40

// flatEntrySize is one section-table entry.
const flatEntrySize = 24

// FlagChecksums marks a container that carries CRC32C (Castagnoli)
// checksums: each section-table entry stores its section's payload CRC in
// the formerly-reserved pad slot, and a u32 CRC covering the header, the
// section table and the meta blob follows immediately after the blob.
// Readers that predate checksums ignore both locations, so checksummed
// files stay loadable by old binaries, and checksum-less files (flag
// clear) keep loading here with verification as a no-op.
const FlagChecksums = 1 << 0

// castagnoli is the CRC32C polynomial table; hash/crc32 uses the hardware
// CRC32 instruction for it where available.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SectionKind tags the element type of a section.
type SectionKind uint32

// The section kinds.
const (
	SectionU8  SectionKind = 1
	SectionI32 SectionKind = 2
	SectionU32 SectionKind = 3
	SectionI64 SectionKind = 4
)

func (k SectionKind) String() string {
	switch k {
	case SectionU8:
		return "u8"
	case SectionI32:
		return "i32"
	case SectionU32:
		return "u32"
	case SectionI64:
		return "i64"
	default:
		return fmt.Sprintf("kind(%d)", uint32(k))
	}
}

func (k SectionKind) elemSize() int64 {
	switch k {
	case SectionU8:
		return 1
	case SectionI32, SectionU32:
		return 4
	case SectionI64:
		return 8
	default:
		return 0
	}
}

// ErrNotFlat reports that a byte stream is not a flat v2 container (it may
// be a v1 length-prefixed stream); callers use it to dispatch between the
// two load paths.
var ErrNotFlat = errors.New("binio: not a flat v2 container")

// ErrVersion reports a flat container whose version this reader does not
// support.
var ErrVersion = errors.New("binio: unsupported flat container version")

// hostLittleEndian reports whether in-place casts produce little-endian
// semantics on this machine.
var hostLittleEndian = func() bool {
	var b [2]byte
	binary.NativeEndian.PutUint16(b[:], 1)
	return b[0] == 1
}()

// FlatWriter accumulates sections and a metadata blob and writes them as
// one flat container. Sections are written in the order they are added and
// are addressed by that index on the read side.
type FlatWriter struct {
	fourcc   uint32
	meta     *Writer
	metaBuf  sliceWriter
	sections []flatSection
	// noChecksums reproduces the pre-checksum v2 layout (flags 0, zero pad
	// slots). It is reachable only from this package's tests, which use it
	// to cover the legacy-file acceptance path; production savers always
	// checksum.
	noChecksums bool
}

type flatSection struct {
	kind SectionKind
	data []byte // little-endian payload (may alias the caller's slice)
}

// sliceWriter is a minimal in-memory io.Writer (bytes.Buffer without the
// import, so binio keeps its tiny dependency surface).
type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// NewFlatWriter returns a FlatWriter for a container tagged with fourcc.
func NewFlatWriter(fourcc uint32) *FlatWriter {
	fw := &FlatWriter{fourcc: fourcc}
	fw.meta = NewWriter(&fw.metaBuf)
	return fw
}

// Meta returns the writer for the metadata blob: scalars, options and
// small tables that do not warrant a section of their own.
func (fw *FlatWriter) Meta() *Writer { return fw.meta }

// U8Section adds s as a byte section and returns its index.
func (fw *FlatWriter) U8Section(s []uint8) int { return fw.add(SectionU8, s) }

// I32Section adds s as an int32 section and returns its index.
func (fw *FlatWriter) I32Section(s []int32) int {
	return fw.add(SectionI32, i32LEBytes(s))
}

// U32Section adds s as a uint32 section and returns its index.
func (fw *FlatWriter) U32Section(s []uint32) int {
	return fw.add(SectionU32, i32LEBytes(u32AsI32(s)))
}

// I64Section adds s as an int64 section and returns its index.
func (fw *FlatWriter) I64Section(s []int64) int {
	return fw.add(SectionI64, i64LEBytes(s))
}

func (fw *FlatWriter) add(kind SectionKind, data []byte) int {
	fw.sections = append(fw.sections, flatSection{kind: kind, data: data})
	return len(fw.sections) - 1
}

// WriteTo writes the container. The FlatWriter must not be reused after.
// Every section's CRC32C is recorded in its table entry and a trailing CRC
// covering the header, table and meta blob follows the blob, so a loader
// (or spverify) can detect any flipped byte in the file.
func (fw *FlatWriter) WriteTo(w io.Writer) (int64, error) {
	if err := fw.meta.Flush(); err != nil {
		return 0, err
	}
	meta := fw.metaBuf.b

	metaOff := int64(flatHeaderSize + flatEntrySize*len(fw.sections))
	metaEnd := metaOff + int64(len(meta))
	var flags uint32
	if !fw.noChecksums {
		flags = FlagChecksums
		metaEnd += 4 // the trailing header/meta CRC32C
	}
	cursor := align64(metaEnd)
	offsets := make([]int64, len(fw.sections))
	for i, s := range fw.sections {
		offsets[i] = cursor
		cursor = align64(cursor + int64(len(s.data)))
	}

	// The header and table are built in memory first: the table carries
	// each section's checksum and the trailing CRC covers the final header
	// bytes, so nothing can stream out before every checksum is known.
	var hbuf sliceWriter
	hw := NewWriter(&hbuf)
	hw.Magic(FlatMagic)
	hw.U32(fw.fourcc)
	hw.U32(FlatVersion)
	hw.U32(uint32(len(fw.sections)))
	hw.U32(flags)
	hw.I64(metaOff)
	hw.I64(int64(len(meta)))
	for i, s := range fw.sections {
		hw.U32(uint32(s.kind))
		if fw.noChecksums {
			hw.U32(0)
		} else {
			hw.U32(crc32.Checksum(s.data, castagnoli))
		}
		hw.I64(offsets[i])
		hw.I64(int64(len(s.data)))
	}
	if err := hw.Flush(); err != nil {
		return 0, err
	}

	bw := NewWriter(w)
	bw.write(hbuf.b)
	bw.write(meta)
	written := metaOff + int64(len(meta))
	if !fw.noChecksums {
		crc := crc32.Update(crc32.Checksum(hbuf.b, castagnoli), castagnoli, meta)
		var cb [4]byte
		binary.LittleEndian.PutUint32(cb[:], crc)
		bw.write(cb[:])
		written += 4
	}
	var pad [flatAlign]byte
	for i, s := range fw.sections {
		bw.write(pad[:offsets[i]-written])
		bw.write(s.data)
		written = offsets[i] + int64(len(s.data))
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return written, nil
}

func align64(off int64) int64 {
	return (off + flatAlign - 1) &^ (flatAlign - 1)
}

// FlatFile is a parsed flat container. When backed by an mmap'd (or
// otherwise aligned little-endian) buffer, section accessors cast in place
// and the returned slices alias the buffer: they are valid only until
// Close and must be treated as immutable.
type FlatFile struct {
	data     []byte
	fourcc   uint32
	flags    uint32
	metaEnd  int64 // one past the meta blob: where the header CRC lives
	meta     []byte
	secs     []parsedSection
	zeroCopy bool          // sections may alias data
	closed   atomic.Bool   // makes Close idempotent, even under races
	verified atomic.Bool   // a full Verify pass has succeeded
	unmap    func() error  // non-nil when Close must release an mmap
	verifyT  time.Duration // time OpenFlat spent verifying (0: deferred)
}

// VerifyTime reports how long OpenFlat spent verifying checksums, for
// startup observability (zero when verification was deferred or skipped).
// Later explicit Verify calls are not included — the caller timing an
// audit pass can time it directly.
func (f *FlatFile) VerifyTime() time.Duration { return f.verifyT }

type parsedSection struct {
	kind SectionKind
	crc  uint32 // stored CRC32C of data; meaningful only with FlagChecksums
	off  int64  // payload offset in the container
	data []byte
}

// IsFlat reports whether b begins with the flat container magic.
func IsFlat(b []byte) bool {
	return len(b) >= len(FlatMagic) && string(b[:len(FlatMagic)]) == FlatMagic
}

// ParseFlat parses a flat container held in data. When zeroCopy is true
// (data is mmap'd or otherwise long-lived), section accessors cast in
// place where alignment and host endianness allow; otherwise they copy.
// The returned FlatFile keeps a reference to data either way. Checksummed
// containers are verified eagerly — ParseFlat serves the stream-read
// paths, where the bytes are already resident and the verification pass
// is one CRC sweep; OpenFlat controls the policy for mapped files.
func ParseFlat(data []byte, zeroCopy bool) (*FlatFile, error) {
	f, err := parseFlat(data, zeroCopy)
	if err != nil {
		return nil, err
	}
	if err := f.Verify(); err != nil {
		return nil, err
	}
	return f, nil
}

// parseFlat parses the header and section table without touching (or
// verifying) the section payloads.
func parseFlat(data []byte, zeroCopy bool) (*FlatFile, error) {
	if !IsFlat(data) {
		return nil, ErrNotFlat
	}
	if len(data) < flatHeaderSize {
		return nil, fmt.Errorf("%w: flat header truncated at %d bytes", ErrCorrupt, len(data))
	}
	le := binary.LittleEndian
	f := &FlatFile{data: data, zeroCopy: zeroCopy && hostLittleEndian}
	f.fourcc = le.Uint32(data[8:])
	if v := le.Uint32(data[12:]); v != FlatVersion {
		return nil, fmt.Errorf("%w: file is version %d, this reader supports version %d",
			ErrVersion, v, FlatVersion)
	}
	count := int64(le.Uint32(data[16:]))
	f.flags = le.Uint32(data[20:])
	size := int64(len(data))
	if flatHeaderSize+count*flatEntrySize > size {
		return nil, fmt.Errorf("%w: section table (%d sections) exceeds file size %d",
			ErrCorrupt, count, size)
	}
	metaOff := int64(le.Uint64(data[24:]))
	metaLen := int64(le.Uint64(data[32:]))
	if metaOff < 0 || metaLen < 0 || metaOff > size || metaLen > size-metaOff {
		return nil, fmt.Errorf("%w: meta blob [%d, +%d) exceeds file size %d",
			ErrCorrupt, metaOff, metaLen, size)
	}
	f.meta = data[metaOff : metaOff+metaLen]
	f.metaEnd = metaOff + metaLen
	if f.flags&FlagChecksums != 0 && f.metaEnd+4 > size {
		return nil, fmt.Errorf("%w: checksummed container truncated before its header checksum",
			ErrCorrupt)
	}
	f.secs = make([]parsedSection, count)
	for i := range f.secs {
		entry := data[flatHeaderSize+int64(i)*flatEntrySize:]
		kind := SectionKind(le.Uint32(entry))
		crc := le.Uint32(entry[4:])
		off := int64(le.Uint64(entry[8:]))
		n := int64(le.Uint64(entry[16:]))
		es := kind.elemSize()
		if es == 0 {
			return nil, fmt.Errorf("%w: section %d has unknown kind %d", ErrCorrupt, i, uint32(kind))
		}
		if off < 0 || n < 0 || off > size || n > size-off {
			return nil, fmt.Errorf("%w: section %d [%d, +%d) exceeds file size %d",
				ErrCorrupt, i, off, n, size)
		}
		if n%es != 0 {
			return nil, fmt.Errorf("%w: section %d length %d is not a multiple of %s elements",
				ErrCorrupt, i, n, kind)
		}
		f.secs[i] = parsedSection{kind: kind, crc: crc, off: off, data: data[off : off+n]}
	}
	return f, nil
}

// OpenOption configures OpenFlat.
type OpenOption func(*openOptions)

type verifyPolicy int

const (
	verifyAuto   verifyPolicy = iota // heap reads verify, mapped files defer
	verifyAlways                     // verify at open regardless of backing
	verifyNever                      // never verify at open
)

type openOptions struct{ verify verifyPolicy }

// WithVerify forces a full checksum verification at open, even for mapped
// files. Verifying a mapping faults every page once, trading the
// O(#sections) cold start for certainty that the bytes are intact —
// the trade a server should make at boot, and the bench-gated zero-copy
// load path should not.
func WithVerify() OpenOption { return func(o *openOptions) { o.verify = verifyAlways } }

// WithoutVerify skips checksum verification at open even for heap reads.
// Corruption is then caught only by the O(1) structural checks (or by an
// explicit Verify call later — spverify audits files this way).
func WithoutVerify() OpenOption { return func(o *openOptions) { o.verify = verifyNever } }

// OpenFlat maps (or, where mmap is unavailable, reads) the file at path
// and parses it as a flat container. The caller must Close the returned
// file once every slice obtained from it is unreachable.
//
// Verification policy: by default a heap-read file is verified eagerly
// (the read already paid a full pass over the bytes) while a mapped file
// defers verification so startup stays O(#sections) — call Verify, or
// open WithVerify, to audit it. WithoutVerify skips both.
func OpenFlat(path string, preferMmap bool, opts ...OpenOption) (*FlatFile, error) {
	var o openOptions
	for _, opt := range opts {
		opt(&o)
	}
	data, unmap, err := mapFile(path, preferMmap && hostLittleEndian)
	if err != nil {
		return nil, err
	}
	f, err := parseFlat(data, true)
	if err == nil && (o.verify == verifyAlways || (o.verify == verifyAuto && unmap == nil)) {
		start := time.Now()
		err = f.Verify()
		f.verifyT = time.Since(start)
	}
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	f.unmap = unmap
	return f, nil
}

// Close releases the underlying mapping, if any. Slices obtained from the
// file must not be used afterwards. Close is idempotent — a second call
// returns nil without touching the released mapping — and when two
// goroutines race it, exactly one performs the release.
func (f *FlatFile) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	unmap := f.unmap
	f.unmap = nil
	f.data, f.meta, f.secs = nil, nil, nil
	if unmap != nil {
		return unmap()
	}
	return nil
}

// HasChecksums reports whether the container carries CRC32C checksums.
// Files written before checksum support do not; Verify accepts them as a
// no-op so legacy files keep loading, and spverify reports them as
// unauditable rather than corrupt.
func (f *FlatFile) HasChecksums() bool { return f.flags&FlagChecksums != 0 }

// Verify checks every checksum in the container: the header/table/meta
// CRC and each section's CRC32C. Nested containers need no separate pass —
// their bytes live inside a parent section, so the parent's checksum
// covers them. Verify is read-only and safe to call concurrently; on a
// mapped file it faults every page once (one sequential sweep).
// It returns nil for checksum-less containers.
func (f *FlatFile) Verify() error {
	if err := f.VerifyHeader(); err != nil {
		return err
	}
	for i := range f.secs {
		if err := f.VerifySection(i); err != nil {
			return err
		}
	}
	f.verified.Store(true)
	return nil
}

// Verified reports whether the container carries checksums and a full
// Verify pass has succeeded — i.e. the bytes are known-good, not merely
// structurally plausible. It is false for checksum-less legacy files,
// which cannot be audited.
func (f *FlatFile) Verified() bool {
	return f.HasChecksums() && f.verified.Load()
}

// VerifyHeader checks the CRC covering the fixed header, the section
// table and the meta blob.
func (f *FlatFile) VerifyHeader() error {
	if !f.HasChecksums() {
		return nil
	}
	stored := binary.LittleEndian.Uint32(f.data[f.metaEnd:])
	if got := crc32.Checksum(f.data[:f.metaEnd], castagnoli); got != stored {
		return fmt.Errorf("%w: header/meta checksum mismatch (stored %08x, computed %08x)",
			ErrCorrupt, stored, got)
	}
	return nil
}

// VerifySection checks section i's payload against its stored CRC32C.
func (f *FlatFile) VerifySection(i int) error {
	if !f.HasChecksums() {
		return nil
	}
	if i < 0 || i >= len(f.secs) {
		return fmt.Errorf("%w: section %d out of range (file has %d)", ErrCorrupt, i, len(f.secs))
	}
	s := f.secs[i]
	if got := crc32.Checksum(s.data, castagnoli); got != s.crc {
		return fmt.Errorf("%w: section %d (%s, %d bytes) checksum mismatch (stored %08x, computed %08x)",
			ErrCorrupt, i, s.kind, len(s.data), s.crc, got)
	}
	return nil
}

// Mapped reports whether the file is backed by an mmap (as opposed to a
// heap buffer).
func (f *FlatFile) Mapped() bool { return f.unmap != nil }

// SizeBytes returns the container size.
func (f *FlatFile) SizeBytes() int64 { return int64(len(f.data)) }

// Fourcc returns the container's index-type tag.
func (f *FlatFile) Fourcc() uint32 { return f.fourcc }

// NumSections returns the number of sections.
func (f *FlatFile) NumSections() int { return len(f.secs) }

// SectionInfo reports section i's kind and payload size — the shape audit
// tools (spverify) print next to each section's verification verdict.
func (f *FlatFile) SectionInfo(i int) (kind SectionKind, size int64) {
	s := f.secs[i]
	return s.kind, int64(len(s.data))
}

// SectionRange reports the byte range [off, off+size) section i's payload
// occupies in the container — where fault-injection tooling must aim for a
// flipped byte to land in checksum-covered territory.
func (f *FlatFile) SectionRange(i int) (off, size int64) {
	s := f.secs[i]
	return s.off, int64(len(s.data))
}

// CoveredHeaderLen reports the length of the leading region protected by
// the header/table/meta CRC — the fixed header, the section table, the
// meta blob, and the stored CRC itself (whose corruption is equally
// detectable). It is 0 for checksum-less containers. Together with the
// SectionRange spans this enumerates every covered byte: only the
// alignment padding between regions is uncovered (and meaningless).
func (f *FlatFile) CoveredHeaderLen() int64 {
	if !f.HasChecksums() {
		return 0
	}
	return f.metaEnd + 4
}

// Meta returns a Reader over the metadata blob, bounded by its length so
// corrupt length prefixes cannot trigger oversized allocations.
func (f *FlatFile) Meta() *Reader {
	return NewReaderLimit(&sliceReader{b: f.meta}, int64(len(f.meta)))
}

// sliceReader is a minimal in-memory io.Reader.
type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}

func (f *FlatFile) section(i int, kind SectionKind) ([]byte, error) {
	if i < 0 || i >= len(f.secs) {
		return nil, fmt.Errorf("%w: section %d out of range (file has %d)", ErrCorrupt, i, len(f.secs))
	}
	if f.secs[i].kind != kind {
		return nil, fmt.Errorf("%w: section %d is %s, want %s", ErrCorrupt, i, f.secs[i].kind, kind)
	}
	return f.secs[i].data, nil
}

// U8 returns section i as a byte slice (always zero-copy).
func (f *FlatFile) U8(i int) ([]uint8, error) {
	return f.section(i, SectionU8)
}

// I32 returns section i as an []int32, casting in place when possible.
func (f *FlatFile) I32(i int) ([]int32, error) {
	b, err := f.section(i, SectionI32)
	if err != nil {
		return nil, err
	}
	return castI32(b, f.zeroCopy), nil
}

// U32 returns section i as a []uint32, casting in place when possible.
func (f *FlatFile) U32(i int) ([]uint32, error) {
	b, err := f.section(i, SectionU32)
	if err != nil {
		return nil, err
	}
	return i32AsU32(castI32(b, f.zeroCopy)), nil
}

// I64 returns section i as an []int64, casting in place when possible.
func (f *FlatFile) I64(i int) ([]int64, error) {
	b, err := f.section(i, SectionI64)
	if err != nil {
		return nil, err
	}
	return castI64(b, f.zeroCopy), nil
}

// NestedFlat parses U8 section i as an embedded flat container. The nested
// file shares the parent's backing (do not Close the parent first) and
// inherits its zero-copy mode; closing the nested file is a no-op. The
// nested container is not verified here: its bytes are the parent
// section's payload, so the parent's checksum already covers them and a
// second CRC pass would fault the nested pages at load time for nothing.
func (f *FlatFile) NestedFlat(i int) (*FlatFile, error) {
	b, err := f.section(i, SectionU8)
	if err != nil {
		return nil, err
	}
	return parseFlat(b, f.zeroCopy)
}

// --- raw little-endian views -------------------------------------------

// i32LEBytes returns the little-endian byte image of s without copying on
// little-endian hosts.
func i32LEBytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
	}
	b := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

func i64LEBytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
	}
	b := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return b
}

// u32AsI32 reinterprets a []uint32 as []int32 (same size and layout).
func u32AsI32(s []uint32) []int32 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&s[0])), len(s))
}

// i32AsU32 is the inverse reinterpretation.
func i32AsU32(s []int32) []uint32 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&s[0])), len(s))
}

// castI32 views b as little-endian int32s: in place when allowed, aligned
// and on a little-endian host; otherwise via a decoding copy.
func castI32(b []byte, zeroCopy bool) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if zeroCopy && hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(int32(0)) == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return s
}

func castI64(b []byte, zeroCopy bool) []int64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if zeroCopy && hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(int64(0)) == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	s := make([]int64, n)
	for i := range s {
		s[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return s
}

// CastStructs reinterprets a little-endian int32 run as a slice of T,
// where T must be a struct composed solely of int32-compatible fields
// (e.g. geom.Point). It is the bridge that lets index packages map their
// own plain-old-data types over a section without binio knowing the type.
// The data must outlive the result; sizeof(T) must divide 4*len(raw).
func CastStructs[T any](raw []int32) []T {
	if len(raw) == 0 {
		return nil
	}
	var t T
	size := int(unsafe.Sizeof(t))
	if size == 0 || (4*len(raw))%size != 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&raw[0])), 4*len(raw)/size)
}
