//go:build !linux && !darwin

package binio

import (
	"fmt"
	"io"
	"os"
)

// MmapSupported reports whether this platform can map index files instead
// of reading them onto the heap.
const MmapSupported = false

// mapFile reads the file at path onto the heap; this platform has no mmap
// fast path, so the release function is always nil and loads copy.
func mapFile(path string, preferMmap bool) (data []byte, unmap func() error, err error) {
	_ = preferMmap
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	data, err = io.ReadAll(f)
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return data, nil, nil
}
