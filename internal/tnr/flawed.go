package tnr

import (
	"sort"

	"roadnet/internal/dijkstra"
	"roadnet/internal/graph"
)

// This file reproduces the defective access-node computation of Bast et al.
// that the paper analyses in Appendix B.
//
// The method samples the outer shell: it collects the vertices Sup lying on
// the ring of cells at Chebyshev distance exactly 4 from the cell C (the
// drawn boundary of the 9x9 block), computes one Dijkstra per inner-shell
// vertex vj in Sin, and marks as access nodes only those vj that minimize
// dist(vi, vj) + dist(vj, vk) for some vi in C and vk in Sup.
//
// The flaw (the paper's Figure 12(b)): a vertex vj in Sin whose only
// connection to the exterior is an edge that jumps straight over the
// sampled ring is never on a shortest path from C to Sup, so it is omitted
// even though it is a genuine access node. Queries whose shortest path runs
// through the omitted vertex then return overestimated distances.

// flawedAccessNodes implements Bast et al.'s method for one cell.
func (w *accessWorker) flawedAccessNodes(cellIdx int32, verts []graph.VertexID) []graph.VertexID {
	sin := w.innerShellVertices(cellIdx)
	sup := w.outerRingVertices(cellIdx)
	if len(sin) == 0 || len(sup) == 0 {
		return nil
	}

	// One Dijkstra per vj in Sin yields dist(vj, vi) for vi in C and
	// dist(vj, vk) for vk in Sup (the graph is undirected).
	targets := make([]graph.VertexID, 0, len(verts)+len(sup))
	targets = append(targets, verts...)
	targets = append(targets, sup...)
	toVerts := make([][]int64, len(sin))
	toSup := make([][]int64, len(sin))
	for j, vj := range sin {
		w.ctx.Run([]graph.VertexID{vj}, dijkstra.Options{Targets: targets})
		rowV := make([]int64, len(verts))
		for i, vi := range verts {
			rowV[i] = w.ctx.Dist(vi)
		}
		rowS := make([]int64, len(sup))
		for k, vk := range sup {
			rowS[k] = w.ctx.Dist(vk)
		}
		toVerts[j] = rowV
		toSup[j] = rowS
	}

	marked := make(map[graph.VertexID]bool)
	for i := range verts {
		for k := range sup {
			bestJ, bestD := -1, graph.Infinity
			for j := range sin {
				if d := toVerts[j][i] + toSup[j][k]; d < bestD {
					bestD = d
					bestJ = j
				}
			}
			if bestJ >= 0 && bestD < graph.Infinity {
				marked[sin[bestJ]] = true
			}
		}
	}
	nodes := make([]graph.VertexID, 0, len(marked))
	for a := range marked {
		nodes = append(nodes, a)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// innerShellVertices returns the endpoints of edges crossing the inner
// shell of the cell (exactly one endpoint inside the 5x5 block). The scan
// over all vertices is acceptable because the flawed variant exists only
// for the Appendix B demonstration on small inputs.
func (w *accessWorker) innerShellVertices(cellIdx int32) []graph.VertexID {
	seen := make(map[graph.VertexID]bool)
	for u := 0; u < w.g.NumVertices(); u++ {
		if w.chebToCell(graph.VertexID(u), cellIdx) > innerRadius {
			continue
		}
		w.g.Neighbors(graph.VertexID(u), func(v graph.VertexID, _ graph.Weight, _ int32) bool {
			if w.chebToCell(v, cellIdx) > innerRadius {
				seen[graph.VertexID(u)] = true
				seen[v] = true
			}
			return true
		})
	}
	nodes := make([]graph.VertexID, 0, len(seen))
	for a := range seen {
		nodes = append(nodes, a)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// outerRingVertices returns the vertices located in the ring of cells at
// Chebyshev distance exactly outerRadius from the cell — Bast et al.'s
// sampled outer boundary. Edges that jump over this ring are missed, which
// is precisely the defect.
func (w *accessWorker) outerRingVertices(cellIdx int32) []graph.VertexID {
	var nodes []graph.VertexID
	for v := 0; v < w.g.NumVertices(); v++ {
		if w.chebToCell(graph.VertexID(v), cellIdx) == outerRadius {
			nodes = append(nodes, graph.VertexID(v))
		}
	}
	return nodes
}
