package tnr_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"roadnet/internal/binio"

	"roadnet/internal/testutil"
	"roadnet/internal/tnr"
)

func TestTNRSerializationRoundtrip(t *testing.T) {
	g := testutil.SmallRoad(900, 811)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := tnr.ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := ix.NumAccessNodes()
	c2, _ := ix2.NumAccessNodes()
	if c1 != c2 {
		t.Errorf("access nodes %d != %d after roundtrip", c2, c1)
	}
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 200, 141), ix2.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 50, 143), ix2.ShortestPath)
}

func TestTNRSerializationHybrid(t *testing.T) {
	g := testutil.SmallRoad(900, 813)
	ix := buildTNR(t, g, tnr.Options{GridSize: 8, Hybrid: true, Fallback: tnr.FallbackDijkstra})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := tnr.ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	_, fine := ix2.NumAccessNodes()
	if fine == 0 {
		t.Error("hybrid fine layer lost in roundtrip")
	}
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 150, 147), ix2.Distance)
}

func TestTNRSerializationRejectsWrongGraph(t *testing.T) {
	g := testutil.SmallRoad(400, 815)
	other := testutil.SmallRoad(900, 817)
	ix := buildTNR(t, g, tnr.Options{GridSize: 8})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := tnr.ReadIndex(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("loading onto a different graph must fail")
	}
}

func TestTNRSerializationRejectsTruncation(t *testing.T) {
	g := testutil.SmallRoad(400, 819)
	ix := buildTNR(t, g, tnr.Options{GridSize: 8})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{10, len(data) / 4, len(data) / 2, len(data) - 3} {
		if _, err := tnr.ReadIndex(bytes.NewReader(data[:cut]), g); err == nil {
			t.Errorf("stream truncated at %d must fail", cut)
		}
	}
}

func TestTNRV1Roundtrip(t *testing.T) {
	g := testutil.SmallRoad(900, 841)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16})
	var buf bytes.Buffer
	if err := ix.SaveV1(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := tnr.ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := ix.NumAccessNodes()
	c2, _ := ix2.NumAccessNodes()
	if c1 != c2 {
		t.Errorf("access nodes %d != %d after v1 roundtrip", c2, c1)
	}
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 150, 145), ix2.Distance)
}

func TestTNRVersionErrors(t *testing.T) {
	g := testutil.SmallRoad(400, 843)
	ix := buildTNR(t, g, tnr.Options{GridSize: 8})

	var v1 bytes.Buffer
	if err := ix.SaveV1(&v1); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), v1.Bytes()...)
	bad[len("ROADNET-TNR\n")] = 9
	_, err := tnr.ReadIndex(bytes.NewReader(bad), g)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("v1 stream with version 9: got %v, want a versioned error", err)
	}

	var v2 bytes.Buffer
	if err := ix.Save(&v2); err != nil {
		t.Fatal(err)
	}
	bad = append([]byte(nil), v2.Bytes()...)
	bad[12] = 9 // flat header version field (little-endian u32 at offset 12)
	_, err = tnr.ReadIndex(bytes.NewReader(bad), g)
	if !errors.Is(err, binio.ErrVersion) {
		t.Errorf("flat container with version 9: got %v, want binio.ErrVersion", err)
	}
}
