package tnr_test

import (
	"testing"

	"roadnet/internal/dijkstra"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
	"roadnet/internal/testutil"
	"roadnet/internal/tnr"
)

// figure12b builds the Appendix B counterexample family: a backbone road
// plus the paper's Figure 12(b) stub — a vertex v1 in cell C0 whose only
// way out is v5, and v5's only other neighbor v6 lies beyond C0's outer
// shell, connected by an edge that jumps straight over the sampled outer
// ring. The flawed access-node computation of Bast et al. omits v5, so
// queries between v1 and v6 return incorrect results.
//
// Returns the graph and the vertex ids of v1 and v6.
func figure12b(t *testing.T) (*graph.Graph, graph.VertexID, graph.VertexID) {
	t.Helper()
	b := graph.NewBuilder(32)
	// Backbone row near the top of the map fixes the grid bounds and gives
	// the index normal cells to work with.
	var backbone []graph.VertexID
	for i := 0; i < 16; i++ {
		backbone = append(backbone, b.AddVertex(geom.Point{X: int32(50 + i*100), Y: 1550}))
	}
	for i := 0; i+1 < len(backbone); i++ {
		if err := b.AddEdge(backbone[i], backbone[i+1], 10); err != nil {
			t.Fatal(err)
		}
	}
	// A second row so the backbone is two-dimensional.
	var row2 []graph.VertexID
	for i := 0; i < 16; i++ {
		row2 = append(row2, b.AddVertex(geom.Point{X: int32(50 + i*100), Y: 1450}))
	}
	for i := 0; i+1 < len(row2); i++ {
		if err := b.AddEdge(row2[i], row2[i+1], 10); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i += 3 {
		if err := b.AddEdge(backbone[i], row2[i], 10); err != nil {
			t.Fatal(err)
		}
	}
	// The Figure 12(b) stub, at the bottom of the map: v1 in cell (0, 0),
	// v5 three cells to the right (just outside the 5x5 inner block of
	// C0), v6 seven cells out (beyond the outer shell), with the v5-v6
	// edge jumping over the ring of cells at Chebyshev distance 4.
	v1 := b.AddVertex(geom.Point{X: 60, Y: 60})
	v5 := b.AddVertex(geom.Point{X: 360, Y: 60})
	v6 := b.AddVertex(geom.Point{X: 760, Y: 60})
	if err := b.AddEdge(v1, v5, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(v5, v6, 5); err != nil {
		t.Fatal(err)
	}
	return b.Build(), v1, v6
}

func TestAppendixBFlawedTNRGivesWrongAnswer(t *testing.T) {
	g, v1, v6 := figure12b(t)
	want := dijkstra.NewContext(g).Distance(v1, v6)
	if want != 10 {
		t.Fatalf("ground truth dist(v1, v6) = %d, want 10 (fixture broken)", want)
	}

	flawed, err := tnr.Build(g, tnr.Options{GridSize: 16, Access: tnr.AccessFlawedBast})
	if err != nil {
		t.Fatal(err)
	}
	if !flawed.CanAnswerFromTables(v1, v6) {
		t.Fatal("v1 and v6 should pass the locality filter (fixture broken)")
	}
	if got := flawed.Distance(v1, v6); got == want {
		t.Errorf("flawed TNR answered dist(v1, v6) = %d correctly; the Appendix B defect did not manifest", got)
	}
}

func TestAppendixBCorrectedTNRStaysExact(t *testing.T) {
	g, v1, v6 := figure12b(t)
	corrected, err := tnr.Build(g, tnr.Options{GridSize: 16, Access: tnr.AccessCorrected})
	if err != nil {
		t.Fatal(err)
	}
	if got := corrected.Distance(v1, v6); got != 10 {
		t.Errorf("corrected TNR dist(v1, v6) = %d, want 10", got)
	}
	// The corrected method must be exact on every pair of this adversarial
	// graph, not just the counterexample pair.
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), corrected.Distance)
}

func TestFlawedTNRWorksOnBenignNetworks(t *testing.T) {
	// On a regular road network without ring-jumping edges the flawed
	// method is usually correct — that is why the defect survived in the
	// original paper's implementation. Verify it is not trivially broken.
	g := testutil.SmallRoad(900, 107)
	flawed, err := tnr.Build(g, tnr.Options{GridSize: 8, Access: tnr.AccessFlawedBast})
	if err != nil {
		t.Fatal(err)
	}
	ctx := dijkstra.NewContext(g)
	pairs := testutil.SamplePairs(g, 200, 67)
	correct := 0
	for _, p := range pairs {
		if flawed.Distance(p[0], p[1]) == ctx.Distance(p[0], p[1]) {
			correct++
		}
	}
	if correct < len(pairs)*3/4 {
		t.Errorf("flawed TNR correct on only %d/%d benign queries; implementation suspect", correct, len(pairs))
	}
}
