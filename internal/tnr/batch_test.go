package tnr_test

import (
	"context"
	"errors"
	"testing"

	"roadnet/internal/graph"
	"roadnet/internal/testutil"
	"roadnet/internal/tnr"
)

// batchEndpoints splits sampled pairs into a source list and a target list,
// giving a matrix that mixes table-answerable and fallback pairs.
func batchEndpoints(g *graph.Graph, count int, seed int64) (sources, targets []graph.VertexID) {
	for _, p := range testutil.SamplePairs(g, count, seed) {
		sources = append(sources, p[0])
		targets = append(targets, p[1])
	}
	return sources, targets
}

// checkBatchBitIdentical verifies the batch matrix against per-pair queries
// on a fresh searcher — the batch acceleration contract requires the values
// to be bit-identical.
func checkBatchBitIdentical(t *testing.T, ix *tnr.Index, sources, targets []graph.VertexID) {
	t.Helper()
	batch := ix.NewSearcher()
	table, err := batch.BatchDistance(context.Background(), sources, targets)
	if err != nil {
		t.Fatalf("BatchDistance: %v", err)
	}
	if len(table) != len(sources) {
		t.Fatalf("BatchDistance returned %d rows, want %d", len(table), len(sources))
	}
	perPair := ix.NewSearcher()
	for i, s := range sources {
		if len(table[i]) != len(targets) {
			t.Fatalf("row %d has %d entries, want %d", i, len(table[i]), len(targets))
		}
		for j, tgt := range targets {
			if want := perPair.Distance(s, tgt); table[i][j] != want {
				t.Errorf("batch dist(%d, %d) = %d, per-pair = %d", s, tgt, table[i][j], want)
			}
		}
	}
	// The acceleration must also account its queries like per-pair ones.
	if batch.TableQueries != perPair.TableQueries || batch.FallbackQueries != perPair.FallbackQueries {
		t.Errorf("batch counters (table %d, fallback %d) != per-pair (table %d, fallback %d)",
			batch.TableQueries, batch.FallbackQueries, perPair.TableQueries, perPair.FallbackQueries)
	}
}

func TestTNRBatchDistanceBitIdentical(t *testing.T) {
	g := testutil.SmallRoad(1600, 71)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16})
	sources, targets := batchEndpoints(g, 12, 443)
	checkBatchBitIdentical(t, ix, sources, targets)
}

func TestTNRBatchDistanceHybrid(t *testing.T) {
	g := testutil.SmallRoad(1600, 71)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16, Hybrid: true})
	sources, targets := batchEndpoints(g, 12, 449)
	checkBatchBitIdentical(t, ix, sources, targets)
}

func TestTNRBatchDistanceDijkstraFallback(t *testing.T) {
	g := testutil.SmallRoad(900, 73)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16, Fallback: tnr.FallbackDijkstra})
	sources, targets := batchEndpoints(g, 10, 457)
	checkBatchBitIdentical(t, ix, sources, targets)
}

func TestTNRBatchDistanceDegenerateShapes(t *testing.T) {
	g := testutil.SmallRoad(900, 73)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16})
	sources, targets := batchEndpoints(g, 6, 461)
	checkBatchBitIdentical(t, ix, sources[:1], targets)
	checkBatchBitIdentical(t, ix, sources, targets[:1])
	checkBatchBitIdentical(t, ix, nil, targets)
	checkBatchBitIdentical(t, ix, sources, nil)
	// Same vertex on both sides: diagonal of zeros.
	checkBatchBitIdentical(t, ix, sources, sources)
}

func TestTNRBatchDistanceCancelled(t *testing.T) {
	g := testutil.SmallRoad(900, 73)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16})
	sources, targets := batchEndpoints(g, 8, 467)
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	table, err := ix.NewSearcher().BatchDistance(ctx, sources, targets)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BatchDistance on cancelled context: err = %v, want context.Canceled", err)
	}
	if table != nil {
		t.Fatalf("BatchDistance on cancelled context returned a partial table")
	}
}

func TestTNRSearcherContextCancelled(t *testing.T) {
	g := testutil.SmallRoad(900, 73)
	for _, fb := range []tnr.Fallback{tnr.FallbackCH, tnr.FallbackDijkstra} {
		ix := buildTNR(t, g, tnr.Options{GridSize: 16, Fallback: fb})
		sr := ix.NewSearcher()
		ctx, cancelFn := context.WithCancel(context.Background())
		cancelFn()
		// A local pair exercises the fallback search, which must observe the
		// cancelled context before doing any work.
		s, tgt := localPair(ix, g)
		if _, err := sr.DistanceContext(ctx, s, tgt); !errors.Is(err, context.Canceled) {
			t.Errorf("fallback %v: DistanceContext err = %v, want context.Canceled", fb, err)
		}
		if _, _, err := sr.ShortestPathContext(ctx, s, tgt); !errors.Is(err, context.Canceled) {
			t.Errorf("fallback %v: ShortestPathContext err = %v, want context.Canceled", fb, err)
		}
		// The searcher remains valid for reuse after an abort.
		testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 20, 479), sr.Distance)
	}
}

// localPair finds a pair the tables cannot answer, forcing the fallback.
func localPair(ix *tnr.Index, g *graph.Graph) (graph.VertexID, graph.VertexID) {
	for _, p := range testutil.SamplePairs(g, 256, 487) {
		if p[0] != p[1] && !ix.CanAnswerFromTables(p[0], p[1]) {
			return p[0], p[1]
		}
	}
	// Adjacent vertices always fail the locality filter.
	var s, t graph.VertexID
	g.Neighbors(0, func(v graph.VertexID, _ graph.Weight, _ int32) bool {
		s, t = 0, v
		return false
	})
	return s, t
}
