// Package tnr implements Transit Node Routing (Bast et al.), the grid-based
// vertex-importance index of the paper's §3.3, including:
//
//   - the corrected access-node computation the paper proposes (§3.3
//     "Remarks" and Appendix B), which derives access nodes from true
//     shortest paths out of each cell rather than Bast et al.'s flawed
//     boundary sampling;
//   - the flawed computation itself (see flawed.go), kept for the Appendix
//     B reproduction that demonstrates incorrect query results;
//   - the 128x128-analogue single grid, the finer 256x256 analogue, and
//     the hybrid two-level grid of Appendix E.1;
//   - both fallback strategies for local queries the paper evaluates:
//     contraction hierarchies and bidirectional Dijkstra.
//
// Grid terminology follows §3.3: for a cell C, the inner shell is the
// boundary of the 5x5 cell block centred at C and the outer shell the
// boundary of the 9x9 block. Shells are interpreted graph-topologically: an
// edge crosses a shell iff exactly one endpoint lies inside the block. The
// locality filter passes for cells more than 4 cells apart (Chebyshev), in
// which case Equation 1 answers the query from the precomputed tables.
package tnr

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"roadnet/internal/ch"
	"roadnet/internal/dijkstra"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// Fallback selects the technique used for queries the transit-node tables
// cannot answer (§4.1 evaluates both).
type Fallback int

const (
	// FallbackCH answers local queries with contraction hierarchies — the
	// configuration the paper recommends.
	FallbackCH Fallback = iota
	// FallbackDijkstra answers local queries with bidirectional Dijkstra.
	FallbackDijkstra
)

// AccessAlgorithm selects how per-cell access nodes are computed.
type AccessAlgorithm int

const (
	// AccessCorrected is the paper's corrected method: access nodes are
	// derived from the true shortest paths from each cell vertex to the
	// endpoints of outer-shell-crossing edges (§3.3 Remarks). Our variant
	// additionally covers tied shortest paths, so queries are exact even on
	// networks with many equal-length paths.
	AccessCorrected AccessAlgorithm = iota
	// AccessFlawedBast reproduces the defective method of Bast et al.
	// analysed in Appendix B. It samples the outer shell ring and misses
	// access nodes reachable only through edges that jump the ring, which
	// leads to incorrect query answers. For demonstration only.
	AccessFlawedBast
)

// innerRadius and outerRadius are the Chebyshev cell radii of the 5x5 inner
// and 9x9 outer blocks of §3.3.
const (
	innerRadius = 2
	outerRadius = 4
)

// Options configures Build.
type Options struct {
	// GridSize is the number of grid cells per axis. The paper uses 128
	// (and 256 for the fine grid). Our scaled datasets default to 32.
	GridSize int
	// Hybrid additionally builds a second grid of 2*GridSize cells per
	// axis and uses it for mid-range queries, as in Appendix E.1.
	Hybrid bool
	// Fallback selects the local-query technique. Default FallbackCH.
	Fallback Fallback
	// Access selects the access-node computation. Default AccessCorrected.
	Access AccessAlgorithm
	// Hierarchy optionally supplies a prebuilt contraction hierarchy
	// (always needed for preprocessing); Build constructs one when nil.
	Hierarchy *ch.Hierarchy
}

func (o Options) withDefaults() Options {
	if o.GridSize == 0 {
		o.GridSize = 32
	}
	return o
}

const invalidDist = math.MaxInt32

// Index is a built transit-node-routing index. The grid tables and the
// fallback hierarchy are immutable after Build, so one Index may be shared
// by any number of goroutines; per-query mutable state (the fallback search
// contexts and the query counters) lives in a Searcher — create one per
// goroutine with NewSearcher. The Index's own Distance/ShortestPath methods
// delegate to one internal default Searcher and are therefore not safe for
// concurrent use.
type Index struct {
	g    *graph.Graph
	opts Options

	coarse *layer
	fine   *layer // non-nil in hybrid mode

	hierarchy *ch.Hierarchy

	buildTime time.Duration

	// def is the default searcher backing the Index's own query methods.
	def *Searcher

	// FallbackQueries counts queries answered by the fallback technique
	// since the index was built; TableQueries counts queries answered from
	// the precomputed tables. The Figure 9/11 analyses rely on this split.
	// They mirror the default searcher's counters and only cover queries
	// issued through the Index's own methods.
	FallbackQueries, TableQueries int

	// tableN and fallbackN aggregate the same split across every searcher
	// over this index, atomically, so a concurrent server can report its
	// live fallback ratio (see QueryCounts). One atomic add per query is
	// noise next to even a table lookup's O(|AN|²) work.
	tableN, fallbackN atomic.Int64
}

// QueryCounts reports how queries over this index were answered, summed
// across all searchers: table from the precomputed transit-node tables,
// fallback by the configured fallback technique. Safe for concurrent use;
// the ratio fallback/(table+fallback) is the live analogue of the
// Figure 9/11 locality analysis.
func (ix *Index) QueryCounts() (table, fallback int64) {
	return ix.tableN.Load(), ix.fallbackN.Load()
}

// Searcher is a reusable query context over an Index: it owns the mutable
// fallback search state (a CH searcher or a bidirectional Dijkstra,
// matching the configured Fallback) and counts how its queries were
// answered. It is not safe for concurrent use; create one per goroutine.
type Searcher struct {
	ix       *Index
	chSearch *ch.Searcher            // non-nil under FallbackCH
	bi       *dijkstra.Bidirectional // non-nil under FallbackDijkstra

	// FallbackQueries counts queries this searcher answered with the
	// fallback technique; TableQueries counts queries answered from the
	// precomputed tables.
	FallbackQueries, TableQueries int

	// Path-production scratch, reused across queries: walk is the lazy
	// table-walk iterator handed out by OpenPath, pathIter wraps the
	// materialized path of the flawed-access variant (which may retract).
	walk     tableWalkIter
	pathIter graph.SlicePath
}

// countTable records one query answered from the precomputed tables, on
// both the searcher's own counter and the index-wide atomic aggregate.
func (sr *Searcher) countTable() {
	sr.TableQueries++
	sr.ix.tableN.Add(1)
}

// countFallback records one query answered by the fallback technique.
func (sr *Searcher) countFallback() {
	sr.FallbackQueries++
	sr.ix.fallbackN.Add(1)
}

// NewSearcher returns a fresh query context sharing ix's immutable tables.
func (ix *Index) NewSearcher() *Searcher {
	s := &Searcher{ix: ix}
	if ix.opts.Fallback == FallbackDijkstra {
		s.bi = dijkstra.NewBidirectional(ix.g)
	} else {
		s.chSearch = ix.hierarchy.NewSearcher()
	}
	return s
}

// layer is one grid level of the index.
type layer struct {
	grid   geom.Grid
	cellOf []int32 // vertex -> cell index

	// anList is the distinct set of access nodes of this layer; cellAN maps
	// a cell to indices into anList.
	anList []graph.VertexID
	cellAN [][]int32

	// vaDist[v][i] is dist(v, anList[cellAN[cellOf[v]][i]]).
	vaDist [][]int32

	// table is the dense access-node pair table (coarse layer):
	// table[i*len(anList)+j] = dist(anList[i], anList[j]).
	table []int32

	// sparse is the per-source sparse pair table (fine layer of a hybrid):
	// sparsePartner[i] lists target access-node indices (sorted) and
	// sparseDist[i] the matching distances.
	sparsePartner [][]int32
	sparseDist    [][]int32
}

func (l *layer) cellCoords(cellIdx int32) (col, row int) {
	return int(cellIdx) % l.grid.Cols, int(cellIdx) / l.grid.Cols
}

// anPairDist returns dist(anList[i], anList[j]) from the dense or sparse
// table, or Infinity when absent.
func (l *layer) anPairDist(i, j int32) int64 {
	if l.table != nil {
		d := l.table[int(i)*len(l.anList)+int(j)]
		if d == invalidDist {
			return graph.Infinity
		}
		return int64(d)
	}
	partners := l.sparsePartner[i]
	lo, hi := 0, len(partners)
	for lo < hi {
		mid := (lo + hi) / 2
		if partners[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(partners) && partners[lo] == j {
		return int64(l.sparseDist[i][lo])
	}
	return graph.Infinity
}

// localityPasses reports whether the layer's tables can answer a query
// between the cells of s and t: the cells must lie beyond each other's
// outer shells.
func (l *layer) localityPasses(s, t graph.VertexID) bool {
	cs, ct := l.cellOf[s], l.cellOf[t]
	sc, sr := l.cellCoords(cs)
	tc, tr := l.cellCoords(ct)
	return geom.ChebyshevCellDist(sc, sr, tc, tr) > outerRadius
}

// distance evaluates Equation 1 over this layer's tables. It must only be
// called when localityPasses(s, t).
func (l *layer) distance(s, t graph.VertexID) int64 {
	ansS := l.cellAN[l.cellOf[s]]
	ansT := l.cellAN[l.cellOf[t]]
	best := graph.Infinity
	for i, ai := range ansS {
		ds := l.vaDist[s][i]
		if ds == invalidDist {
			continue
		}
		for j, aj := range ansT {
			dt := l.vaDist[t][j]
			if dt == invalidDist {
				continue
			}
			mid := l.anPairDist(ai, aj)
			if mid >= graph.Infinity {
				continue
			}
			if total := int64(ds) + mid + int64(dt); total < best {
				best = total
			}
		}
	}
	return best
}

// Build constructs a TNR index over g.
func Build(g *graph.Graph, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	start := time.Now()
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("tnr: empty graph")
	}
	h := opts.Hierarchy
	if h == nil {
		h = ch.Build(g, ch.Options{})
	}
	ix := &Index{
		g:         g,
		opts:      opts,
		hierarchy: h,
	}
	var err error
	ix.coarse, err = buildLayer(g, h, opts.GridSize, opts.Access, true)
	if err != nil {
		return nil, err
	}
	if opts.Hybrid {
		ix.fine, err = buildLayer(g, h, opts.GridSize*2, opts.Access, false)
		if err != nil {
			return nil, err
		}
	}
	ix.buildTime = time.Since(start)
	return ix, nil
}

// defSearcher lazily creates the default searcher, so indexes queried only
// through NewSearcher/pools never pay for its fallback search context.
// Lazy without a lock is fine: the Index's own query methods are
// single-goroutine by contract.
func (ix *Index) defSearcher() *Searcher {
	if ix.def == nil {
		ix.def = ix.NewSearcher()
	}
	return ix.def
}

// fallbackDistance answers a query with the configured fallback technique,
// propagating ctx into the fallback search so long local searches abort
// when the request is cancelled.
func (sr *Searcher) fallbackDistance(ctx context.Context, s, t graph.VertexID) (int64, error) {
	if sr.bi != nil {
		return sr.bi.DistanceContext(ctx, s, t)
	}
	return sr.chSearch.DistanceContext(ctx, s, t)
}

func (sr *Searcher) fallbackPath(ctx context.Context, s, t graph.VertexID) ([]graph.VertexID, int64, error) {
	if sr.bi != nil {
		return sr.bi.ShortestPathContext(ctx, s, t)
	}
	return sr.chSearch.ShortestPathContext(ctx, s, t)
}

// Distance answers a distance query (§3.3): Equation 1 over the coarse
// tables when the cells are far apart, the fine tables (hybrid mode) for
// mid-range queries, and the fallback technique otherwise.
func (sr *Searcher) Distance(s, t graph.VertexID) int64 {
	d, _ := sr.DistanceContext(context.Background(), s, t)
	return d
}

// DistanceContext is Distance with cancellation: an already-cancelled
// context aborts before any work, table answers then run to completion
// (O(|AN|²) lookups, bounded), and fallback searches poll ctx at bounded
// intervals, aborting with its error.
func (sr *Searcher) DistanceContext(ctx context.Context, s, t graph.VertexID) (int64, error) {
	if err := ctx.Err(); err != nil {
		return graph.Infinity, err
	}
	ix := sr.ix
	if ix.coarse.localityPasses(s, t) {
		sr.countTable()
		return ix.coarse.distance(s, t), nil
	}
	if ix.fine != nil && ix.fine.localityPasses(s, t) {
		sr.countTable()
		return ix.fine.distance(s, t), nil
	}
	sr.countFallback()
	return sr.fallbackDistance(ctx, s, t)
}

// Distance answers a distance query on the default searcher.
func (ix *Index) Distance(s, t graph.VertexID) int64 {
	def := ix.defSearcher()
	d := def.Distance(s, t)
	ix.FallbackQueries = def.FallbackQueries
	ix.TableQueries = def.TableQueries
	return d
}

// CanAnswerFromTables reports whether the query would be answered from the
// precomputed tables (used by the experiment harness to split timings).
func (ix *Index) CanAnswerFromTables(s, t graph.VertexID) bool {
	if ix.coarse.localityPasses(s, t) {
		return true
	}
	return ix.fine != nil && ix.fine.localityPasses(s, t)
}

// tableDistance answers from tables only; callers must have checked
// CanAnswerFromTables.
func (ix *Index) tableDistance(s, t graph.VertexID) int64 {
	if ix.coarse.localityPasses(s, t) {
		return ix.coarse.distance(s, t)
	}
	return ix.fine.distance(s, t)
}

// ShortestPath answers a shortest-path query. Per §3.3, while the current
// vertex is far from t the next hop is the neighbor v minimizing
// w(cur, v) + dist(v, t) with dist evaluated from the tables (O(k) distance
// queries); the local remainder is delegated to the fallback technique.
func (sr *Searcher) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	path, d, _ := sr.ShortestPathContext(context.Background(), s, t)
	return path, d
}

// ShortestPathContext is ShortestPath with cancellation: the hop-by-hop
// table walk polls ctx every cancel.Interval hops and the fallback searches
// poll it every cancel.Interval settled vertices; both abort with ctx's
// error. It is a thin collector over the lazy table walk of pathiter.go —
// the one behavior a collector can add is the Appendix B retraction: when
// the walk aborts with errTableMismatch (flawed access nodes only), the
// walked prefix is discarded and a full fallback search answers instead.
func (sr *Searcher) ShortestPathContext(ctx context.Context, s, t graph.VertexID) ([]graph.VertexID, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, graph.Infinity, err
	}
	ix := sr.ix
	if !ix.CanAnswerFromTables(s, t) {
		sr.countFallback()
		return sr.fallbackPath(ctx, s, t)
	}
	sr.countTable()
	total := ix.tableDistance(s, t)
	if total >= graph.Infinity {
		return nil, graph.Infinity, nil
	}
	sr.walk = tableWalkIter{sr: sr, ctx: ctx, cur: s, t: t, remaining: total}
	path, err := graph.AppendPath(nil, &sr.walk)
	if err == errTableMismatch {
		// The tables and the fallback disagree; this cannot happen with a
		// correct access-node computation, but the flawed Appendix B
		// variant can reach this point. Trust the fallback, which is exact.
		return sr.fallbackPath(ctx, s, t)
	}
	if err != nil {
		return nil, graph.Infinity, err
	}
	return path, total, nil
}

// ShortestPath answers a shortest-path query on the default searcher.
func (ix *Index) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	def := ix.defSearcher()
	path, d := def.ShortestPath(s, t)
	ix.FallbackQueries = def.FallbackQueries
	ix.TableQueries = def.TableQueries
	return path, d
}

// Hierarchy returns the contraction hierarchy used for preprocessing and,
// under FallbackCH, for local queries.
func (ix *Index) Hierarchy() *ch.Hierarchy { return ix.hierarchy }

// BuildTime returns the wall-clock preprocessing duration, including the
// hierarchy construction when Build created one.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// NumAccessNodes returns the number of distinct access nodes of the coarse
// layer and, in hybrid mode, the fine layer.
func (ix *Index) NumAccessNodes() (coarse, fine int) {
	coarse = len(ix.coarse.anList)
	if ix.fine != nil {
		fine = len(ix.fine.anList)
	}
	return coarse, fine
}

// MeanAccessNodesPerCell reports the average size of the per-cell access
// node sets of the coarse grid (the paper observes roughly 10 on all
// datasets).
func (ix *Index) MeanAccessNodesPerCell() float64 {
	total, cells := 0, 0
	for _, ans := range ix.coarse.cellAN {
		if len(ans) > 0 {
			total += len(ans)
			cells++
		}
	}
	if cells == 0 {
		return 0
	}
	return float64(total) / float64(cells)
}

// SizeBytes reports the memory footprint of the TNR structures: the
// vertex-to-access-node distances (the paper's I2), the access-node pair
// tables (I1), the per-cell access lists, plus the fallback hierarchy when
// FallbackCH is configured (Appendix E.1 justifies counting it).
func (ix *Index) SizeBytes() int64 {
	size := ix.coarse.sizeBytes()
	if ix.fine != nil {
		size += ix.fine.sizeBytes()
	}
	if ix.opts.Fallback == FallbackCH {
		size += ix.hierarchy.SizeBytes()
	}
	return size
}

func (l *layer) sizeBytes() int64 {
	var size int64
	size += int64(len(l.cellOf)) * 4
	size += int64(len(l.anList)) * 4
	for _, ans := range l.cellAN {
		size += int64(len(ans)) * 4
	}
	for _, d := range l.vaDist {
		size += int64(len(d)) * 4
	}
	size += int64(len(l.table)) * 4
	for i := range l.sparsePartner {
		size += int64(len(l.sparsePartner[i])) * 8
	}
	return size
}
