package tnr_test

import (
	"testing"

	"roadnet/internal/dijkstra"
	"roadnet/internal/graph"
	"roadnet/internal/testutil"
	"roadnet/internal/tnr"
)

func buildTNR(t *testing.T, g *graph.Graph, opts tnr.Options) *tnr.Index {
	t.Helper()
	ix, err := tnr.Build(g, opts)
	if err != nil {
		t.Fatalf("tnr.Build: %v", err)
	}
	return ix
}

func TestTNRDistancesExactRoadNetwork(t *testing.T) {
	g := testutil.SmallRoad(1600, 71)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16})
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 400, 31), ix.Distance)
}

func TestTNRUsesTablesForFarQueries(t *testing.T) {
	g := testutil.SmallRoad(1600, 71)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16})
	// Opposite corners of the map must pass the locality filter.
	var s, tt graph.VertexID = -1, -1
	b := g.Bounds()
	for v := 0; v < g.NumVertices(); v++ {
		p := g.Coord(graph.VertexID(v))
		if p.X-b.MinX < (b.MaxX-b.MinX)/8 && p.Y-b.MinY < (b.MaxY-b.MinY)/8 {
			s = graph.VertexID(v)
		}
		if b.MaxX-p.X < (b.MaxX-b.MinX)/8 && b.MaxY-p.Y < (b.MaxY-b.MinY)/8 {
			tt = graph.VertexID(v)
		}
	}
	if s < 0 || tt < 0 {
		t.Fatal("could not find corner vertices")
	}
	if !ix.CanAnswerFromTables(s, tt) {
		t.Fatalf("corner-to-corner query should pass the locality filter")
	}
	before := ix.TableQueries
	want := dijkstra.NewContext(g).Distance(s, tt)
	if got := ix.Distance(s, tt); got != want {
		t.Errorf("table-answered distance = %d, want %d", got, want)
	}
	if ix.TableQueries != before+1 {
		t.Errorf("query should have been counted as table-answered")
	}
}

func TestTNRFallsBackForLocalQueries(t *testing.T) {
	g := testutil.SmallRoad(900, 73)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16})
	// A vertex and its neighbor are in the same or adjacent cells: the
	// locality filter must reject, and the fallback must answer exactly.
	s := graph.VertexID(0)
	tt := g.Head(0)
	if ix.CanAnswerFromTables(s, tt) {
		t.Fatal("adjacent vertices should not pass the locality filter")
	}
	before := ix.FallbackQueries
	want := dijkstra.NewContext(g).Distance(s, tt)
	if got := ix.Distance(s, tt); got != want {
		t.Errorf("fallback distance = %d, want %d", got, want)
	}
	if ix.FallbackQueries != before+1 {
		t.Error("query should have been counted as fallback")
	}
}

func TestTNRShortestPathsExact(t *testing.T) {
	g := testutil.SmallRoad(1600, 79)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16})
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 150, 37), ix.ShortestPath)
}

func TestTNRWithDijkstraFallback(t *testing.T) {
	g := testutil.SmallRoad(900, 83)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16, Fallback: tnr.FallbackDijkstra})
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 200, 41), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 60, 43), ix.ShortestPath)
}

func TestTNRHybridGrid(t *testing.T) {
	g := testutil.SmallRoad(1600, 89)
	ix := buildTNR(t, g, tnr.Options{GridSize: 8, Hybrid: true})
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 300, 47), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 60, 53), ix.ShortestPath)
}

func TestTNRHybridAnswersMoreFromTables(t *testing.T) {
	g := testutil.SmallRoad(1600, 89)
	plain := buildTNR(t, g, tnr.Options{GridSize: 8})
	hybrid := buildTNR(t, g, tnr.Options{GridSize: 8, Hybrid: true})
	pairs := testutil.SamplePairs(g, 500, 59)
	var plainTables, hybridTables int
	for _, p := range pairs {
		if plain.CanAnswerFromTables(p[0], p[1]) {
			plainTables++
		}
		if hybrid.CanAnswerFromTables(p[0], p[1]) {
			hybridTables++
		}
	}
	if hybridTables <= plainTables {
		t.Errorf("hybrid grid answers %d of %d from tables, plain %d; hybrid must answer more",
			hybridTables, len(pairs), plainTables)
	}
}

func TestTNRSameVertexAndAdjacent(t *testing.T) {
	g := testutil.SmallRoad(400, 97)
	ix := buildTNR(t, g, tnr.Options{GridSize: 8})
	if d := ix.Distance(5, 5); d != 0 {
		t.Errorf("dist(v, v) = %d, want 0", d)
	}
	p, d := ix.ShortestPath(5, 5)
	if d != 0 || len(p) != 1 {
		t.Errorf("path(v, v) = %v, %d", p, d)
	}
}

func TestTNRStats(t *testing.T) {
	g := testutil.SmallRoad(900, 101)
	ix := buildTNR(t, g, tnr.Options{GridSize: 16})
	if ix.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
	if ix.BuildTime() <= 0 {
		t.Error("BuildTime must be positive")
	}
	coarse, fine := ix.NumAccessNodes()
	if coarse <= 0 {
		t.Error("expected access nodes on the coarse grid")
	}
	if fine != 0 {
		t.Error("non-hybrid index should have no fine layer")
	}
	if m := ix.MeanAccessNodesPerCell(); m <= 0 || m > 200 {
		t.Errorf("mean access nodes per cell = %.1f, implausible", m)
	}
	if ix.Hierarchy() == nil {
		t.Error("hierarchy must be available")
	}
}

func TestTNRReusesProvidedHierarchy(t *testing.T) {
	g := testutil.SmallRoad(400, 103)
	ix1 := buildTNR(t, g, tnr.Options{GridSize: 8})
	h := ix1.Hierarchy()
	ix2 := buildTNR(t, g, tnr.Options{GridSize: 8, Hierarchy: h})
	if ix2.Hierarchy() != h {
		t.Error("provided hierarchy was not reused")
	}
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 100, 61), ix2.Distance)
}

func TestTNREmptyGraphRejected(t *testing.T) {
	b := graph.NewBuilder(0)
	if _, err := tnr.Build(b.Build(), tnr.Options{}); err == nil {
		t.Error("empty graph should be rejected")
	}
}
