package tnr

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"roadnet/internal/binio"
	"roadnet/internal/ch"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// Serialization: TNR preprocessing dominates everything but SILC/PCPD
// (Figure 6(b)), so the built tables can be persisted. The embedded
// contraction hierarchy (used for fallback queries and shared
// preprocessing) is stored inline as a length-prefixed section.

const (
	tnrMagic   = "ROADNET-TNR\n"
	tnrVersion = 1
)

// Save serializes the index, including its contraction hierarchy.
func (ix *Index) Save(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Magic(tnrMagic)
	bw.U8(tnrVersion)
	bw.I64(int64(ix.g.NumVertices()))
	bw.I64(int64(ix.g.NumEdges()))
	bw.I32(int32(ix.opts.GridSize))
	bw.U8(boolByte(ix.opts.Hybrid))
	bw.U8(uint8(ix.opts.Fallback))
	bw.U8(uint8(ix.opts.Access))
	bw.I64(ix.buildTime.Nanoseconds())

	var chBuf bytes.Buffer
	if err := ix.hierarchy.Save(&chBuf); err != nil {
		return err
	}
	bw.U8Slice(chBuf.Bytes())

	writeLayer(bw, ix.coarse)
	if ix.opts.Hybrid {
		writeLayer(bw, ix.fine)
	}
	return bw.Flush()
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func writeLayer(bw *binio.Writer, l *layer) {
	bw.I32Slice(l.anList)
	bw.I64(int64(len(l.cellAN)))
	for _, ans := range l.cellAN {
		bw.I32Slice(ans)
	}
	bw.I64(int64(len(l.vaDist)))
	for _, row := range l.vaDist {
		bw.I32Slice(row)
	}
	if l.table != nil {
		bw.U8(1)
		bw.I32Slice(l.table)
	} else {
		bw.U8(0)
		bw.I64(int64(len(l.sparsePartner)))
		for i := range l.sparsePartner {
			bw.I32Slice(l.sparsePartner[i])
			bw.I32Slice(l.sparseDist[i])
		}
	}
}

// ReadIndex deserializes an index written with Save, re-attaching it to
// g (the same network it was built on).
func ReadIndex(r io.Reader, g *graph.Graph) (*Index, error) {
	br := binio.NewReader(r)
	br.Magic(tnrMagic)
	if v := br.U8(); br.Err() == nil && v != tnrVersion {
		return nil, fmt.Errorf("tnr: unsupported format version %d", v)
	}
	n := br.I64()
	m := br.I64()
	if br.Err() == nil && (n != int64(g.NumVertices()) || m != int64(g.NumEdges())) {
		return nil, fmt.Errorf("tnr: index was built for a %dx%d graph, got %dx%d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	var opts Options
	opts.GridSize = int(br.I32())
	opts.Hybrid = br.U8() != 0
	opts.Fallback = Fallback(br.U8())
	opts.Access = AccessAlgorithm(br.U8())
	buildTime := time.Duration(br.I64())
	chBytes := br.U8Slice()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("tnr: reading header: %w", err)
	}
	if opts.GridSize < 1 || opts.GridSize > 1<<14 {
		return nil, fmt.Errorf("tnr: implausible grid size %d", opts.GridSize)
	}
	h, err := ch.ReadHierarchy(bytes.NewReader(chBytes), g)
	if err != nil {
		return nil, fmt.Errorf("tnr: embedded hierarchy: %w", err)
	}
	opts.Hierarchy = h

	ix := &Index{
		g:         g,
		opts:      opts,
		hierarchy: h,
		buildTime: buildTime,
	}
	if ix.coarse, err = readLayer(br, g, opts.GridSize); err != nil {
		return nil, err
	}
	if opts.Hybrid {
		if ix.fine, err = readLayer(br, g, opts.GridSize*2); err != nil {
			return nil, err
		}
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("tnr: reading index: %w", err)
	}
	return ix, nil
}

func readLayer(br *binio.Reader, g *graph.Graph, gridSize int) (*layer, error) {
	n := g.NumVertices()
	l := &layer{
		grid:   geom.NewGrid(g.Bounds(), gridSize, gridSize),
		cellOf: make([]int32, n),
	}
	// cellOf is deterministic from the grid; recompute instead of storing.
	for v := 0; v < n; v++ {
		c, r := l.grid.CellOf(g.Coord(graph.VertexID(v)))
		l.cellOf[v] = int32(l.grid.CellIndex(c, r))
	}
	l.anList = br.I32Slice()
	numCells := br.I64()
	if br.Err() != nil {
		return nil, fmt.Errorf("tnr: reading layer: %w", br.Err())
	}
	if numCells != int64(l.grid.NumCells()) {
		return nil, fmt.Errorf("tnr: layer has %d cells, grid expects %d", numCells, l.grid.NumCells())
	}
	l.cellAN = make([][]int32, numCells)
	for i := range l.cellAN {
		l.cellAN[i] = br.I32Slice()
		for _, an := range l.cellAN[i] {
			if an < 0 || int(an) >= len(l.anList) {
				return nil, fmt.Errorf("tnr: access-node index %d out of range", an)
			}
		}
	}
	rows := br.I64()
	if br.Err() != nil {
		return nil, fmt.Errorf("tnr: reading layer: %w", br.Err())
	}
	if rows != int64(n) {
		return nil, fmt.Errorf("tnr: vaDist has %d rows, graph has %d vertices", rows, n)
	}
	l.vaDist = make([][]int32, rows)
	for i := range l.vaDist {
		l.vaDist[i] = br.I32Slice()
	}
	dense := br.U8()
	if dense != 0 {
		l.table = br.I32Slice()
		if br.Err() == nil && len(l.table) != len(l.anList)*len(l.anList) {
			return nil, fmt.Errorf("tnr: dense table size %d does not match %d access nodes",
				len(l.table), len(l.anList))
		}
	} else {
		count := br.I64()
		if br.Err() != nil {
			return nil, fmt.Errorf("tnr: reading layer: %w", br.Err())
		}
		if count != int64(len(l.anList)) {
			return nil, fmt.Errorf("tnr: sparse table rows %d do not match %d access nodes",
				count, len(l.anList))
		}
		l.sparsePartner = make([][]int32, count)
		l.sparseDist = make([][]int32, count)
		for i := int64(0); i < count; i++ {
			l.sparsePartner[i] = br.I32Slice()
			l.sparseDist[i] = br.I32Slice()
			if len(l.sparsePartner[i]) != len(l.sparseDist[i]) {
				return nil, fmt.Errorf("tnr: sparse row %d inconsistent", i)
			}
		}
	}
	if br.Err() != nil {
		return nil, fmt.Errorf("tnr: reading layer: %w", br.Err())
	}
	return l, nil
}
