package tnr

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"time"

	"roadnet/internal/binio"
	"roadnet/internal/ch"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// Serialization: TNR preprocessing dominates everything but SILC/PCPD
// (Figure 6(b)), so the built tables can be persisted. The embedded
// contraction hierarchy (used for fallback queries and shared
// preprocessing) is stored inline.
//
// Save writes the flat v2 container: the access-node distance tables —
// the multi-GB part of a continental index — are 64-byte-aligned sections
// a loader can mmap and use in place; ragged per-vertex/per-cell rows are
// stored as offsets + concatenated data and rebuilt as views (one slice-
// header allocation per ragged array, no data copies). The embedded CH is
// a nested flat container inside a byte section, so it too loads zero-
// copy. SaveV1 keeps the legacy length-prefixed stream; ReadIndex accepts
// both.

const (
	tnrMagic   = "ROADNET-TNR\n"
	tnrVersion = 1
)

// Fourcc tags a flat container holding a TNR index.
const Fourcc uint32 = 'T' | 'N'<<8 | 'R'<<16 | ' '<<24

// Save serializes the index, including its contraction hierarchy, in the
// flat v2 format.
func (ix *Index) Save(w io.Writer) error {
	fw := binio.NewFlatWriter(Fourcc)
	mw := fw.Meta()
	mw.Magic(tnrMagic)
	mw.I64(int64(ix.g.NumVertices()))
	mw.I64(int64(ix.g.NumEdges()))
	mw.I32(int32(ix.opts.GridSize))
	mw.U8(boolByte(ix.opts.Hybrid))
	mw.U8(uint8(ix.opts.Fallback))
	mw.U8(uint8(ix.opts.Access))
	mw.I64(ix.buildTime.Nanoseconds())

	var chBuf bytes.Buffer
	if err := ix.hierarchy.Save(&chBuf); err != nil {
		return err
	}
	fw.U8Section(chBuf.Bytes())

	addLayer(fw, mw, ix.coarse)
	if ix.opts.Hybrid {
		addLayer(fw, mw, ix.fine)
	}
	_, err := fw.WriteTo(w)
	return err
}

// addLayer appends one layer as ten fixed-position sections (unused table
// forms stay empty) plus a density flag in the metadata blob.
func addLayer(fw *binio.FlatWriter, mw *binio.Writer, l *layer) {
	mw.U8(boolByte(l.table != nil))
	fw.I32Section(l.anList)
	fw.I32Section(l.cellOf)
	cellOff, cellData := binio.Flatten(l.cellAN)
	fw.I64Section(cellOff)
	fw.I32Section(cellData)
	vaOff, vaData := binio.Flatten(l.vaDist)
	fw.I64Section(vaOff)
	fw.I32Section(vaData)
	fw.I32Section(l.table)
	var sparseOff []int64
	var partnerData, distData []int32
	if l.table == nil {
		sparseOff, partnerData = binio.Flatten(l.sparsePartner)
		_, distData = binio.Flatten(l.sparseDist)
	}
	fw.I64Section(sparseOff)
	fw.I32Section(partnerData)
	fw.I32Section(distData)
}

// ReadIndex deserializes an index written with Save (v2) or SaveV1,
// re-attaching it to g (the same network it was built on). This is the
// copying stream path; use core.LoadIndexFile for the zero-copy mmap path.
func ReadIndex(r io.Reader, g *graph.Graph) (*Index, error) {
	br := bufio.NewReader(r)
	if prefix, err := br.Peek(len(binio.FlatMagic)); err == nil && binio.IsFlat(prefix) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("tnr: reading index: %w", err)
		}
		f, err := binio.ParseFlat(data, true)
		if err != nil {
			return nil, fmt.Errorf("tnr: %w", err)
		}
		return IndexFromFlat(f, g)
	}
	return readIndexV1(br, g)
}

// IndexFromFlat builds an index over the sections of f. The index aliases
// f's data; f must stay open for its lifetime.
func IndexFromFlat(f *binio.FlatFile, g *graph.Graph) (*Index, error) {
	if f.Fourcc() != Fourcc {
		return nil, fmt.Errorf("tnr: flat container fourcc %#x is not a TNR index", f.Fourcc())
	}
	mr := f.Meta()
	mr.Magic(tnrMagic)
	n := mr.I64()
	m := mr.I64()
	var opts Options
	opts.GridSize = int(mr.I32())
	opts.Hybrid = mr.U8() != 0
	opts.Fallback = Fallback(mr.U8())
	opts.Access = AccessAlgorithm(mr.U8())
	buildTime := time.Duration(mr.I64())
	if err := mr.Err(); err != nil {
		return nil, fmt.Errorf("tnr: reading header: %w", err)
	}
	if n != int64(g.NumVertices()) || m != int64(g.NumEdges()) {
		return nil, fmt.Errorf("tnr: index was built for a %dx%d graph, got %dx%d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	if opts.GridSize < 1 || opts.GridSize > 1<<14 {
		return nil, fmt.Errorf("tnr: implausible grid size %d", opts.GridSize)
	}

	chFile, err := f.NestedFlat(0)
	if err != nil {
		return nil, fmt.Errorf("tnr: embedded hierarchy: %w", err)
	}
	h, err := ch.HierarchyFromFlat(chFile, g)
	if err != nil {
		return nil, fmt.Errorf("tnr: embedded hierarchy: %w", err)
	}
	opts.Hierarchy = h

	ix := &Index{
		g:         g,
		opts:      opts,
		hierarchy: h,
		buildTime: buildTime,
	}
	if ix.coarse, err = layerFromFlat(f, mr, g, opts.GridSize, 1); err != nil {
		return nil, err
	}
	if opts.Hybrid {
		if ix.fine, err = layerFromFlat(f, mr, g, opts.GridSize*2, 11); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// layerFromFlat rebuilds a layer from the ten sections starting at base.
// The outer slices of the ragged tables are views into the (possibly
// mapped) data sections: one header allocation each, no element copies or
// scans, so a mapped load touches no data pages.
func layerFromFlat(f *binio.FlatFile, mr *binio.Reader, g *graph.Graph, gridSize, base int) (*layer, error) {
	dense := mr.U8()
	if err := mr.Err(); err != nil {
		return nil, fmt.Errorf("tnr: reading layer header: %w", err)
	}
	l := &layer{grid: geom.NewGrid(g.Bounds(), gridSize, gridSize)}
	fail := func(err error) (*layer, error) { return nil, fmt.Errorf("tnr: reading layer: %w", err) }
	var err error
	if l.anList, err = f.I32(base); err != nil {
		return fail(err)
	}
	if l.cellOf, err = f.I32(base + 1); err != nil {
		return fail(err)
	}
	if len(l.cellOf) != g.NumVertices() {
		return nil, fmt.Errorf("%w: tnr cellOf sized for a different graph", binio.ErrCorrupt)
	}
	cellOff, err := f.I64(base + 2)
	if err != nil {
		return fail(err)
	}
	cellData, err := f.I32(base + 3)
	if err != nil {
		return fail(err)
	}
	if int64(len(cellOff)-1) != int64(l.grid.NumCells()) {
		return nil, fmt.Errorf("tnr: layer has %d cells, grid expects %d", len(cellOff)-1, l.grid.NumCells())
	}
	if l.cellAN, err = binio.Unflatten(cellOff, cellData); err != nil {
		return fail(err)
	}
	vaOff, err := f.I64(base + 4)
	if err != nil {
		return fail(err)
	}
	vaData, err := f.I32(base + 5)
	if err != nil {
		return fail(err)
	}
	if len(vaOff)-1 != g.NumVertices() {
		return nil, fmt.Errorf("tnr: vaDist has %d rows, graph has %d vertices", len(vaOff)-1, g.NumVertices())
	}
	if l.vaDist, err = binio.Unflatten(vaOff, vaData); err != nil {
		return fail(err)
	}
	if dense != 0 {
		if l.table, err = f.I32(base + 6); err != nil {
			return fail(err)
		}
		if l.table == nil {
			// Preserve the dense marker (anPairDist branches on table != nil)
			// even for a degenerate layer with no access nodes.
			l.table = []int32{}
		}
		if len(l.table) != len(l.anList)*len(l.anList) {
			return nil, fmt.Errorf("tnr: dense table size %d does not match %d access nodes",
				len(l.table), len(l.anList))
		}
	} else {
		sparseOff, err := f.I64(base + 7)
		if err != nil {
			return fail(err)
		}
		partnerData, err := f.I32(base + 8)
		if err != nil {
			return fail(err)
		}
		distData, err := f.I32(base + 9)
		if err != nil {
			return fail(err)
		}
		if len(sparseOff)-1 != len(l.anList) {
			return nil, fmt.Errorf("tnr: sparse table rows %d do not match %d access nodes",
				len(sparseOff)-1, len(l.anList))
		}
		if len(partnerData) != len(distData) {
			return nil, fmt.Errorf("%w: tnr sparse partner/distance sections differ in length", binio.ErrCorrupt)
		}
		if l.sparsePartner, err = binio.Unflatten(sparseOff, partnerData); err != nil {
			return fail(err)
		}
		if l.sparseDist, err = binio.Unflatten(sparseOff, distData); err != nil {
			return fail(err)
		}
	}
	return l, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// SaveV1 serializes the index in the legacy length-prefixed v1 format.
// New deployments should prefer Save.
func (ix *Index) SaveV1(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Magic(tnrMagic)
	bw.U8(tnrVersion)
	bw.I64(int64(ix.g.NumVertices()))
	bw.I64(int64(ix.g.NumEdges()))
	bw.I32(int32(ix.opts.GridSize))
	bw.U8(boolByte(ix.opts.Hybrid))
	bw.U8(uint8(ix.opts.Fallback))
	bw.U8(uint8(ix.opts.Access))
	bw.I64(ix.buildTime.Nanoseconds())

	var chBuf bytes.Buffer
	if err := ix.hierarchy.SaveV1(&chBuf); err != nil {
		return err
	}
	bw.U8Slice(chBuf.Bytes())

	writeLayerV1(bw, ix.coarse)
	if ix.opts.Hybrid {
		writeLayerV1(bw, ix.fine)
	}
	return bw.Flush()
}

func writeLayerV1(bw *binio.Writer, l *layer) {
	bw.I32Slice(l.anList)
	bw.I64(int64(len(l.cellAN)))
	for _, ans := range l.cellAN {
		bw.I32Slice(ans)
	}
	bw.I64(int64(len(l.vaDist)))
	for _, row := range l.vaDist {
		bw.I32Slice(row)
	}
	if l.table != nil {
		bw.U8(1)
		bw.I32Slice(l.table)
	} else {
		bw.U8(0)
		bw.I64(int64(len(l.sparsePartner)))
		for i := range l.sparsePartner {
			bw.I32Slice(l.sparsePartner[i])
			bw.I32Slice(l.sparseDist[i])
		}
	}
}

// readIndexV1 decodes the legacy length-prefixed format.
func readIndexV1(r io.Reader, g *graph.Graph) (*Index, error) {
	br := binio.NewReader(r)
	br.Magic(tnrMagic)
	if v := br.U8(); br.Err() == nil && v != tnrVersion {
		return nil, fmt.Errorf("tnr: unsupported format version %d (this reader supports v%d and the v%d flat container)",
			v, tnrVersion, binio.FlatVersion)
	}
	n := br.I64()
	m := br.I64()
	if br.Err() == nil && (n != int64(g.NumVertices()) || m != int64(g.NumEdges())) {
		return nil, fmt.Errorf("tnr: index was built for a %dx%d graph, got %dx%d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	var opts Options
	opts.GridSize = int(br.I32())
	opts.Hybrid = br.U8() != 0
	opts.Fallback = Fallback(br.U8())
	opts.Access = AccessAlgorithm(br.U8())
	buildTime := time.Duration(br.I64())
	chBytes := br.U8Slice()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("tnr: reading header: %w", err)
	}
	if opts.GridSize < 1 || opts.GridSize > 1<<14 {
		return nil, fmt.Errorf("tnr: implausible grid size %d", opts.GridSize)
	}
	h, err := ch.ReadHierarchy(bytes.NewReader(chBytes), g)
	if err != nil {
		return nil, fmt.Errorf("tnr: embedded hierarchy: %w", err)
	}
	opts.Hierarchy = h

	ix := &Index{
		g:         g,
		opts:      opts,
		hierarchy: h,
		buildTime: buildTime,
	}
	if ix.coarse, err = readLayerV1(br, g, opts.GridSize); err != nil {
		return nil, err
	}
	if opts.Hybrid {
		if ix.fine, err = readLayerV1(br, g, opts.GridSize*2); err != nil {
			return nil, err
		}
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("tnr: reading index: %w", err)
	}
	return ix, nil
}

func readLayerV1(br *binio.Reader, g *graph.Graph, gridSize int) (*layer, error) {
	n := g.NumVertices()
	l := &layer{
		grid:   geom.NewGrid(g.Bounds(), gridSize, gridSize),
		cellOf: make([]int32, n),
	}
	// cellOf is deterministic from the grid; recompute instead of storing.
	for v := 0; v < n; v++ {
		c, r := l.grid.CellOf(g.Coord(graph.VertexID(v)))
		l.cellOf[v] = int32(l.grid.CellIndex(c, r))
	}
	l.anList = br.I32Slice()
	numCells := br.I64()
	if br.Err() != nil {
		return nil, fmt.Errorf("tnr: reading layer: %w", br.Err())
	}
	if numCells != int64(l.grid.NumCells()) {
		return nil, fmt.Errorf("tnr: layer has %d cells, grid expects %d", numCells, l.grid.NumCells())
	}
	l.cellAN = make([][]int32, numCells)
	for i := range l.cellAN {
		l.cellAN[i] = br.I32Slice()
		for _, an := range l.cellAN[i] {
			if an < 0 || int(an) >= len(l.anList) {
				return nil, fmt.Errorf("tnr: access-node index %d out of range", an)
			}
		}
	}
	rows := br.I64()
	if br.Err() != nil {
		return nil, fmt.Errorf("tnr: reading layer: %w", br.Err())
	}
	if rows != int64(n) {
		return nil, fmt.Errorf("tnr: vaDist has %d rows, graph has %d vertices", rows, n)
	}
	l.vaDist = make([][]int32, rows)
	for i := range l.vaDist {
		l.vaDist[i] = br.I32Slice()
	}
	dense := br.U8()
	if dense != 0 {
		l.table = br.I32Slice()
		if br.Err() == nil && len(l.table) != len(l.anList)*len(l.anList) {
			return nil, fmt.Errorf("tnr: dense table size %d does not match %d access nodes",
				len(l.table), len(l.anList))
		}
	} else {
		count := br.I64()
		if br.Err() != nil {
			return nil, fmt.Errorf("tnr: reading layer: %w", br.Err())
		}
		if count != int64(len(l.anList)) {
			return nil, fmt.Errorf("tnr: sparse table rows %d do not match %d access nodes",
				count, len(l.anList))
		}
		l.sparsePartner = make([][]int32, count)
		l.sparseDist = make([][]int32, count)
		for i := int64(0); i < count; i++ {
			l.sparsePartner[i] = br.I32Slice()
			l.sparseDist[i] = br.I32Slice()
			if len(l.sparsePartner[i]) != len(l.sparseDist[i]) {
				return nil, fmt.Errorf("tnr: sparse row %d inconsistent", i)
			}
		}
	}
	if br.Err() != nil {
		return nil, fmt.Errorf("tnr: reading layer: %w", br.Err())
	}
	return l, nil
}
