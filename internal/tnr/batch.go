package tnr

import (
	"context"

	"roadnet/internal/cancel"
	"roadnet/internal/graph"
)

// This file implements the TNR batch accelerator. A sources×targets
// distance matrix over the transit-node tables vectorizes naturally: the
// per-endpoint work of Equation 1 — fetching the cell's access-node set,
// dropping unreachable access nodes, and gathering the vertex-to-access
// distances — depends only on the endpoint, so BatchDistance hoists it out
// of the |S|×|T| pair loop and computes it at most once per endpoint per
// layer (lazily, so layers no pair answers from are never hoisted). What
// remains per pair is the pure table-lookup sweep over the compacted access
// lists. Pairs that fail the locality filter are answered by the searcher's
// fallback technique with the batch context propagated.

// endpointAccess is one endpoint's compacted Equation 1 operand on one grid
// layer: the global access-node indices with a finite vertex-to-access
// distance, and those distances widened to int64 once instead of per pair.
type endpointAccess struct {
	an []int32
	d  []int64
}

// lazyAccess memoizes accessOf per endpoint on one layer: the operand is
// still computed at most once per endpoint (the batch win), but only for
// endpoints whose pairs actually answer from that layer's table — a batch
// of coarse-only or mostly-local pairs skips the other layers' hoisting
// entirely.
type lazyAccess struct {
	l    *layer
	vs   []graph.VertexID
	ea   []endpointAccess
	done []bool
}

func newLazyAccess(l *layer, vs []graph.VertexID) lazyAccess {
	return lazyAccess{l: l, vs: vs, ea: make([]endpointAccess, len(vs)), done: make([]bool, len(vs))}
}

func (la *lazyAccess) at(i int) endpointAccess {
	if !la.done[i] {
		la.ea[i] = accessOf(la.l, la.vs[i])
		la.done[i] = true
	}
	return la.ea[i]
}

// accessOf compacts v's access-node set on l.
func accessOf(l *layer, v graph.VertexID) endpointAccess {
	ans := l.cellAN[l.cellOf[v]]
	va := l.vaDist[v]
	ea := endpointAccess{an: make([]int32, 0, len(ans)), d: make([]int64, 0, len(ans))}
	for i, a := range ans {
		if va[i] == invalidDist {
			continue
		}
		ea.an = append(ea.an, a)
		ea.d = append(ea.d, int64(va[i]))
	}
	return ea
}

// batchDistance evaluates Equation 1 from the compacted operands. It
// returns exactly the value of layer.distance for the same pair: both take
// the minimum of ds + table(ai, aj) + dt over the same finite entries.
func (l *layer) batchDistance(src, tgt endpointAccess) int64 {
	best := graph.Infinity
	if l.table != nil {
		count := len(l.anList)
		for i, ai := range src.an {
			ds := src.d[i]
			row := l.table[int(ai)*count : (int(ai)+1)*count]
			for j, aj := range tgt.an {
				mid := row[aj]
				if mid == invalidDist {
					continue
				}
				if total := ds + int64(mid) + tgt.d[j]; total < best {
					best = total
				}
			}
		}
		return best
	}
	for i, ai := range src.an {
		ds := src.d[i]
		for j, aj := range tgt.an {
			mid := l.anPairDist(ai, aj)
			if mid >= graph.Infinity {
				continue
			}
			if total := ds + mid + tgt.d[j]; total < best {
				best = total
			}
		}
	}
	return best
}

// BatchDistance computes the full sources×targets distance matrix:
// table[i][j] = dist(sources[i], targets[j]), graph.Infinity for
// unreachable pairs. Table-answerable pairs run the hoisted Equation 1
// sweep above; local pairs fall back to the searcher's fallback technique.
// Results are bit-identical to per-pair Distance calls, and the searcher's
// TableQueries/FallbackQueries counters advance exactly as they would for
// the equivalent per-pair queries. The sweep polls ctx every
// cancel.Interval pairs and the fallback searches poll it internally; on
// cancellation the partial matrix is discarded and ctx's error returned.
func (sr *Searcher) BatchDistance(ctx context.Context, sources, targets []graph.VertexID) ([][]int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ix := sr.ix
	table := make([][]int64, len(sources))
	if len(sources) == 0 {
		return table, nil
	}

	srcCoarse := newLazyAccess(ix.coarse, sources)
	tgtCoarse := newLazyAccess(ix.coarse, targets)
	var srcFine, tgtFine lazyAccess
	if ix.fine != nil {
		srcFine = newLazyAccess(ix.fine, sources)
		tgtFine = newLazyAccess(ix.fine, targets)
	}

	pairs := 0
	for i, s := range sources {
		row := make([]int64, len(targets))
		for j, t := range targets {
			if err := cancel.Poll(ctx, pairs); err != nil {
				return nil, err
			}
			pairs++
			switch {
			case ix.coarse.localityPasses(s, t):
				sr.countTable()
				row[j] = ix.coarse.batchDistance(srcCoarse.at(i), tgtCoarse.at(j))
			case ix.fine != nil && ix.fine.localityPasses(s, t):
				sr.countTable()
				row[j] = ix.fine.batchDistance(srcFine.at(i), tgtFine.at(j))
			default:
				sr.countFallback()
				d, err := sr.fallbackDistance(ctx, s, t)
				if err != nil {
					return nil, err
				}
				row[j] = d
			}
		}
		table[i] = row
	}
	return table, nil
}
