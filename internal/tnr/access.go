package tnr

import (
	"runtime"
	"sort"
	"sync"

	"roadnet/internal/ch"
	"roadnet/internal/dijkstra"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// buildLayer constructs one grid level: cell assignment, outer-shell vertex
// sets, per-cell access nodes, vertex-to-access-node distances, and the
// access-node pair table (dense for the coarse grid, distance-limited
// sparse for the fine grid of a hybrid index).
func buildLayer(g *graph.Graph, h *ch.Hierarchy, gridSize int, alg AccessAlgorithm, dense bool) (*layer, error) {
	n := g.NumVertices()
	l := &layer{
		grid:   geom.NewGrid(g.Bounds(), gridSize, gridSize),
		cellOf: make([]int32, n),
		cellAN: make([][]int32, gridSize*gridSize),
		vaDist: make([][]int32, n),
	}
	cellVerts := make([][]graph.VertexID, l.grid.NumCells())
	for v := 0; v < n; v++ {
		c, r := l.grid.CellOf(g.Coord(graph.VertexID(v)))
		idx := int32(l.grid.CellIndex(c, r))
		l.cellOf[v] = idx
		cellVerts[idx] = append(cellVerts[idx], graph.VertexID(v))
	}

	vout := outerShellVertices(g, l)

	// Per-cell access-node vertex lists, computed in parallel.
	cellAccess := make([][]graph.VertexID, l.grid.NumCells())
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > l.grid.NumCells() {
		workers = l.grid.NumCells()
	}
	if workers < 1 {
		workers = 1
	}
	cellCh := make(chan int, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker := newAccessWorker(g, l)
			for cell := range cellCh {
				if len(cellVerts[cell]) == 0 || len(vout[cell]) == 0 {
					continue
				}
				switch alg {
				case AccessFlawedBast:
					cellAccess[cell] = worker.flawedAccessNodes(int32(cell), cellVerts[cell])
				default:
					cellAccess[cell] = worker.correctedAccessNodes(int32(cell), cellVerts[cell], vout[cell])
				}
				// Distances from every cell vertex to every access node.
				worker.fillVertexDistances(cellVerts[cell], cellAccess[cell], l.vaDist)
			}
		}()
	}
	for cell := 0; cell < l.grid.NumCells(); cell++ {
		cellCh <- cell
	}
	close(cellCh)
	wg.Wait()

	// Assemble the distinct global access-node list and per-cell indices.
	anIndex := make(map[graph.VertexID]int32)
	for cell, nodes := range cellAccess {
		idxs := make([]int32, len(nodes))
		for i, a := range nodes {
			gi, ok := anIndex[a]
			if !ok {
				gi = int32(len(l.anList))
				anIndex[a] = gi
				l.anList = append(l.anList, a)
			}
			idxs[i] = gi
		}
		l.cellAN[cell] = idxs
	}

	fillPairTable(l, h, dense)
	return l, nil
}

// outerShellVertices returns, per cell C, the endpoints of the edges that
// cross the outer shell of C (exactly one endpoint inside the 9x9 block
// centred at C). This is the paper's Vout set.
func outerShellVertices(g *graph.Graph, l *layer) [][]graph.VertexID {
	vout := make([][]graph.VertexID, l.grid.NumCells())
	appendForCells := func(inCol, inRow, exCol, exRow int, u, v graph.VertexID) {
		// Cells C with the 9-block containing (inCol, inRow) but not
		// (exCol, exRow): C within Chebyshev 4 of the first, beyond 4 of
		// the second.
		for dr := -outerRadius; dr <= outerRadius; dr++ {
			for dc := -outerRadius; dc <= outerRadius; dc++ {
				c, r := inCol+dc, inRow+dr
				if c < 0 || c >= l.grid.Cols || r < 0 || r >= l.grid.Rows {
					continue
				}
				if geom.ChebyshevCellDist(c, r, exCol, exRow) <= outerRadius {
					continue
				}
				idx := l.grid.CellIndex(c, r)
				vout[idx] = append(vout[idx], u, v)
			}
		}
	}
	for _, e := range g.Edges() {
		uc, ur := l.grid.CellOf(g.Coord(e.U))
		vc, vr := l.grid.CellOf(g.Coord(e.V))
		if uc == vc && ur == vr {
			continue
		}
		appendForCells(uc, ur, vc, vr, e.U, e.V)
		appendForCells(vc, vr, uc, ur, e.U, e.V)
	}
	// Deduplicate per cell.
	for cell := range vout {
		vs := vout[cell]
		if len(vs) < 2 {
			continue
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		out := vs[:1]
		for _, v := range vs[1:] {
			if v != out[len(out)-1] {
				out = append(out, v)
			}
		}
		vout[cell] = out
	}
	return vout
}

// accessWorker owns the per-goroutine scratch state of the access-node
// computation.
type accessWorker struct {
	g   *graph.Graph
	l   *layer
	ctx *dijkstra.Context

	settled []uint32 // generation marks: vertex settled in current search
	reach   []uint32 // generation marks: vertex can reach Vout in the DAG
	gen     uint32
	stack   []graph.VertexID
	anSet   map[graph.VertexID]bool
}

func newAccessWorker(g *graph.Graph, l *layer) *accessWorker {
	n := g.NumVertices()
	return &accessWorker{
		g:       g,
		l:       l,
		ctx:     dijkstra.NewContext(g),
		settled: make([]uint32, n),
		reach:   make([]uint32, n),
		anSet:   make(map[graph.VertexID]bool),
	}
}

// chebToCell returns the Chebyshev distance between v's cell and cell.
func (w *accessWorker) chebToCell(v graph.VertexID, cellIdx int32) int {
	vc, vr := w.l.cellCoords(w.l.cellOf[v])
	cc, cr := w.l.cellCoords(cellIdx)
	return geom.ChebyshevCellDist(vc, vr, cc, cr)
}

// correctedAccessNodes implements the paper's corrected method (§3.3
// Remarks), strengthened to cover tied shortest paths: for each vertex v of
// the cell, a Dijkstra settles everything up to the farthest Vout vertex;
// the shortest-path DAG edges that cross the inner shell and can still
// reach Vout contribute both endpoints as access nodes.
func (w *accessWorker) correctedAccessNodes(cellIdx int32, verts, vout []graph.VertexID) []graph.VertexID {
	clear(w.anSet)
	for _, v := range verts {
		w.ctx.Run([]graph.VertexID{v}, dijkstra.Options{Targets: vout, SettleTies: true})
		w.gen++
		for _, u := range w.ctx.Settled() {
			w.settled[u] = w.gen
		}
		// Mark vertices that can reach a settled Vout vertex by walking the
		// shortest-path DAG backwards from the Vout seeds.
		w.stack = w.stack[:0]
		for _, u := range vout {
			if w.settled[u] == w.gen && w.reach[u] != w.gen {
				w.reach[u] = w.gen
				w.stack = append(w.stack, u)
			}
		}
		for len(w.stack) > 0 {
			y := w.stack[len(w.stack)-1]
			w.stack = w.stack[:len(w.stack)-1]
			dy := w.ctx.Dist(y)
			w.g.Neighbors(y, func(x graph.VertexID, wt graph.Weight, _ int32) bool {
				if w.settled[x] == w.gen && w.reach[x] != w.gen && w.ctx.Dist(x)+int64(wt) == dy {
					w.reach[x] = w.gen
					w.stack = append(w.stack, x)
				}
				return true
			})
		}
		// Collect inner-shell crossing DAG edges that reach Vout.
		for _, x := range w.ctx.Settled() {
			if w.chebToCell(x, cellIdx) > innerRadius {
				continue
			}
			dx := w.ctx.Dist(x)
			w.g.Neighbors(x, func(y graph.VertexID, wt graph.Weight, _ int32) bool {
				if w.settled[y] != w.gen || w.reach[y] != w.gen {
					return true
				}
				if dx+int64(wt) != w.ctx.Dist(y) {
					return true
				}
				if w.chebToCell(y, cellIdx) <= innerRadius {
					return true
				}
				w.anSet[x] = true
				w.anSet[y] = true
				return true
			})
		}
	}
	nodes := make([]graph.VertexID, 0, len(w.anSet))
	for a := range w.anSet {
		nodes = append(nodes, a)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// fillVertexDistances records dist(v, a) for every cell vertex v and access
// node a, using one early-terminating Dijkstra per vertex (the paper's I2).
func (w *accessWorker) fillVertexDistances(verts, access []graph.VertexID, vaDist [][]int32) {
	if len(access) == 0 {
		return
	}
	for _, v := range verts {
		w.ctx.Run([]graph.VertexID{v}, dijkstra.Options{Targets: access})
		row := make([]int32, len(access))
		for i, a := range access {
			if d := w.ctx.Dist(a); d < graph.Infinity {
				row[i] = int32(d)
			} else {
				row[i] = invalidDist
			}
		}
		vaDist[v] = row
	}
}

// fillPairTable computes the access-node pair distances (the paper's I1)
// with the CH bucket many-to-many. Dense layers store the full table; the
// fine layer of a hybrid stores only pairs within 15 fine cells (Chebyshev),
// the maximum range a mid-range query can ask for (Appendix E.1 stores only
// pairs whose outer shells overlap, for the same reason).
func fillPairTable(l *layer, h *ch.Hierarchy, dense bool) {
	count := len(l.anList)
	if count == 0 {
		return
	}
	if dense {
		l.table = make([]int32, count*count)
		for i := range l.table {
			l.table[i] = invalidDist
		}
		h.ManyToManyEach(l.anList, l.anList, func(si, ti int, d int64) {
			l.table[si*count+ti] = int32(d)
		})
		return
	}
	const sparseRange = 15
	l.sparsePartner = make([][]int32, count)
	l.sparseDist = make([][]int32, count)
	cellColRow := make([][2]int, count)
	for i, a := range l.anList {
		c, r := l.cellCoords(l.cellOf[a])
		cellColRow[i] = [2]int{c, r}
	}
	h.ManyToManyEach(l.anList, l.anList, func(si, ti int, d int64) {
		a, b := cellColRow[si], cellColRow[ti]
		if geom.ChebyshevCellDist(a[0], a[1], b[0], b[1]) > sparseRange {
			return
		}
		l.sparsePartner[si] = append(l.sparsePartner[si], int32(ti))
		l.sparseDist[si] = append(l.sparseDist[si], int32(d))
	})
	// ManyToManyEach reports targets in bucket order, not sorted; sort each
	// partner list for binary search.
	for i := range l.sparsePartner {
		idx := make([]int, len(l.sparsePartner[i]))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(x, y int) bool {
			return l.sparsePartner[i][idx[x]] < l.sparsePartner[i][idx[y]]
		})
		sp := make([]int32, len(idx))
		sd := make([]int32, len(idx))
		for j, k := range idx {
			sp[j] = l.sparsePartner[i][k]
			sd[j] = l.sparseDist[i][k]
		}
		l.sparsePartner[i] = sp
		l.sparseDist[i] = sd
	}
}
