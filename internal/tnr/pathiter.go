package tnr

import (
	"context"
	"errors"

	"roadnet/internal/cancel"
	"roadnet/internal/graph"
)

// errTableMismatch marks a table walk whose local remainder disagreed with
// the fallback technique. This cannot happen with the corrected
// access-node computation, but the flawed Appendix B variant can reach it;
// the materializing collector reacts by discarding the walked prefix and
// trusting a full fallback search, which is exact.
var errTableMismatch = errors.New("tnr: tables and fallback disagree on the remaining distance")

// fallbackOpenPath streams a path from the configured fallback technique
// (CH lazy shortcut unpacking, or the bidirectional Dijkstra parent walk).
func (sr *Searcher) fallbackOpenPath(ctx context.Context, s, t graph.VertexID) (graph.PathIterator, int64, error) {
	if sr.bi != nil {
		return sr.bi.OpenPath(ctx, s, t)
	}
	return sr.chSearch.OpenPath(ctx, s, t)
}

// tableWalkIter is the lazy §3.3 path walk: while the current vertex is
// far from t the next hop is the neighbor v minimizing
// w(cur, v) + dist(v, t) with dist evaluated from the tables, one O(k)
// distance sweep per emitted vertex; once the walk enters t's locality it
// stitches on the fallback technique's own PathIterator, so the local
// remainder is streamed too and nothing is ever materialized.
type tableWalkIter struct {
	sr        *Searcher
	ctx       context.Context
	cur, t    graph.VertexID
	remaining int64

	tail    graph.PathIterator // non-nil once delegated to the fallback
	steps   int
	started bool
	done    bool
	err     error
}

// Next implements graph.PathIterator, polling ctx every cancel.Interval
// hops (the fallback tail polls its own search cadence).
func (it *tableWalkIter) Next() (graph.VertexID, bool) {
	if it.done {
		return 0, false
	}
	if !it.started {
		it.started = true
		return it.cur, true
	}
	if it.tail != nil {
		v, ok := it.tail.Next()
		if !ok {
			it.err = it.tail.Err()
			it.done = true
		}
		return v, ok
	}
	if it.cur == it.t {
		it.done = true
		return 0, false
	}
	if err := cancel.Poll(it.ctx, it.steps); err != nil {
		it.err = err
		it.done = true
		return 0, false
	}
	it.steps++
	ix := it.sr.ix
	if !ix.CanAnswerFromTables(it.cur, it.t) {
		// Local remainder: stitch on the fallback technique's iterator.
		return it.delegate()
	}
	// Pick the neighbor on a shortest path to t. Every neighbor is
	// evaluated with a table distance when possible; if any neighbor needs
	// a fallback we stop the traversal here and let the fallback stream
	// the rest, keeping the cost profile of §3.3.
	next := graph.VertexID(-1)
	var nextWeight int64
	found := true
	ix.g.Neighbors(it.cur, func(v graph.VertexID, wt graph.Weight, _ int32) bool {
		if !ix.CanAnswerFromTables(v, it.t) {
			if v == it.t {
				if int64(wt) == it.remaining {
					next = v
					nextWeight = int64(wt)
					return false
				}
				return true
			}
			found = false
			return false
		}
		if int64(wt)+ix.tableDistance(v, it.t) == it.remaining {
			next = v
			nextWeight = int64(wt)
			return false
		}
		return true
	})
	if !found || next < 0 {
		return it.delegate()
	}
	it.cur = next
	it.remaining -= nextWeight
	return next, true
}

// delegate opens the fallback path from cur and verifies it against the
// remaining table distance before yielding from it. A disagreement (only
// possible under the flawed Appendix B access computation) aborts the walk
// with errTableMismatch — a lazy walk cannot retract already-yielded
// vertices, so the collector handles the retraction.
func (it *tableWalkIter) delegate() (graph.VertexID, bool) {
	tail, tailDist, err := it.sr.fallbackOpenPath(it.ctx, it.cur, it.t)
	if err != nil {
		it.err = err
		it.done = true
		return 0, false
	}
	if tail == nil || tailDist != it.remaining {
		it.err = errTableMismatch
		it.done = true
		return 0, false
	}
	// The tail starts at cur, which has already been yielded.
	if _, ok := tail.Next(); !ok {
		it.err = tail.Err()
		it.done = true
		return 0, false
	}
	it.tail = tail
	v, ok := tail.Next()
	if !ok {
		it.err = tail.Err()
		it.done = true
	}
	return v, ok
}

// Err implements graph.PathIterator.
func (it *tableWalkIter) Err() error { return it.err }

// OpenPath returns a PathIterator over the shortest path from s to t plus
// its length, or (nil, Infinity, nil) when t is unreachable. Far pairs
// stream the lazy table walk stitched onto the fallback's iterator; local
// pairs stream the fallback directly. Under the flawed Appendix B access
// computation the walk may need to retract a wrong prefix, which a stream
// cannot do, so that variant materializes first and streams the corrected
// result — only the demonstration-of-incorrectness mode pays for it.
func (sr *Searcher) OpenPath(ctx context.Context, s, t graph.VertexID) (graph.PathIterator, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, graph.Infinity, err
	}
	ix := sr.ix
	if !ix.CanAnswerFromTables(s, t) {
		sr.countFallback()
		return sr.fallbackOpenPath(ctx, s, t)
	}
	if ix.opts.Access != AccessCorrected {
		path, d, err := sr.ShortestPathContext(ctx, s, t)
		if err != nil {
			return nil, graph.Infinity, err
		}
		if path == nil {
			return nil, graph.Infinity, nil
		}
		sr.pathIter.Reset(path)
		return &sr.pathIter, d, nil
	}
	sr.countTable()
	total := ix.tableDistance(s, t)
	if total >= graph.Infinity {
		return nil, graph.Infinity, nil
	}
	sr.walk = tableWalkIter{sr: sr, ctx: ctx, cur: s, t: t, remaining: total}
	return &sr.walk, total, nil
}
