package graph

import (
	"testing"

	"roadnet/internal/geom"
)

// paperFigure1 builds the 8-vertex example road network of the paper's
// Figure 1: edges (v2,v8) and (v6,v8) have weight 2, all others weight 1.
// Vertex ids are zero-based: paper's v1 is vertex 0.
func paperFigure1(t *testing.T) *Graph {
	t.Helper()
	coords := []geom.Point{
		{X: 1, Y: 2}, // v1
		{X: 1, Y: 0}, // v2
		{X: 0, Y: 1}, // v3
		{X: 5, Y: 0}, // v4
		{X: 5, Y: 2}, // v5
		{X: 4, Y: 1}, // v6
		{X: 6, Y: 2}, // v7
		{X: 2, Y: 1}, // v8
	}
	edges := []Edge{
		{U: 0, V: 2, Weight: 1}, // v1-v3
		{U: 0, V: 7, Weight: 1}, // v1-v8
		{U: 1, V: 2, Weight: 1}, // v2-v3
		{U: 1, V: 7, Weight: 2}, // v2-v8
		{U: 3, V: 4, Weight: 1}, // v4-v5
		{U: 3, V: 5, Weight: 1}, // v4-v6
		{U: 4, V: 5, Weight: 1}, // v5-v6
		{U: 4, V: 6, Weight: 1}, // v5-v7
		{U: 5, V: 7, Weight: 2}, // v6-v8
	}
	g, err := FromEdges(coords, edges)
	if err != nil {
		t.Fatalf("building Figure 1 graph: %v", err)
	}
	return g
}

func TestBuilderAndAccessors(t *testing.T) {
	g := paperFigure1(t)
	if g.NumVertices() != 8 {
		t.Fatalf("NumVertices = %d, want 8", g.NumVertices())
	}
	if g.NumEdges() != 9 {
		t.Fatalf("NumEdges = %d, want 9", g.NumEdges())
	}
	if g.NumArcs() != 18 {
		t.Fatalf("NumArcs = %d, want 18", g.NumArcs())
	}
	if d := g.Degree(7); d != 3 { // v8 neighbors: v1, v2, v6
		t.Fatalf("Degree(v8) = %d, want 3", d)
	}
	if w, ok := g.HasEdge(1, 7); !ok || w != 2 {
		t.Fatalf("HasEdge(v2, v8) = (%d, %v), want (2, true)", w, ok)
	}
	if w, ok := g.HasEdge(7, 1); !ok || w != 2 {
		t.Fatalf("HasEdge(v8, v2) = (%d, %v), want (2, true) (undirected)", w, ok)
	}
	if _, ok := g.HasEdge(0, 6); ok {
		t.Fatal("HasEdge(v1, v7) should be false")
	}
}

func TestNeighborsIteration(t *testing.T) {
	g := paperFigure1(t)
	var seen []VertexID
	g.Neighbors(7, func(w VertexID, wt Weight, edgeID int32) bool {
		seen = append(seen, w)
		return true
	})
	if len(seen) != 3 {
		t.Fatalf("v8 has %d neighbors, want 3", len(seen))
	}
	// Early stop.
	count := 0
	g.Neighbors(7, func(VertexID, Weight, int32) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early-stop iteration visited %d, want 1", count)
	}
}

func TestEdgeIDsPairArcs(t *testing.T) {
	g := paperFigure1(t)
	// Each undirected edge id must appear on exactly two arcs with equal
	// weights and opposite endpoints.
	type arcInfo struct {
		u, v VertexID
		w    Weight
	}
	byID := map[int32][]arcInfo{}
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		lo, hi := g.ArcsOf(u)
		for a := lo; a < hi; a++ {
			id := g.EdgeIDOf(a)
			byID[id] = append(byID[id], arcInfo{u, g.Head(a), g.ArcWeight(a)})
		}
	}
	if len(byID) != g.NumEdges() {
		t.Fatalf("distinct edge ids = %d, want %d", len(byID), g.NumEdges())
	}
	for id, arcs := range byID {
		if len(arcs) != 2 {
			t.Fatalf("edge %d has %d arcs, want 2", id, len(arcs))
		}
		a, b := arcs[0], arcs[1]
		if a.u != b.v || a.v != b.u || a.w != b.w {
			t.Fatalf("edge %d arcs are not opposite: %+v vs %+v", id, a, b)
		}
	}
}

func TestEdgesByIDIndexedByEdgeID(t *testing.T) {
	g := paperFigure1(t)
	byID := g.EdgesByID()
	if len(byID) != g.NumEdges() {
		t.Fatalf("EdgesByID length %d, want %d", len(byID), g.NumEdges())
	}
	// Every arc's EdgeIDOf must point at its own edge in the slice.
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		lo, hi := g.ArcsOf(u)
		for a := lo; a < hi; a++ {
			e := byID[g.EdgeIDOf(a)]
			v := g.Head(a)
			if !(e.U == u && e.V == v || e.U == v && e.V == u) {
				t.Fatalf("arc (%d,%d) maps to edge %+v", u, v, e)
			}
			if e.Weight != g.ArcWeight(a) {
				t.Fatalf("arc (%d,%d) weight %d, edge %+v", u, v, g.ArcWeight(a), e)
			}
		}
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddVertex(geom.Point{})
	b.AddVertex(geom.Point{X: 1})
	if err := b.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop should be rejected")
	}
	if err := b.AddEdge(0, 1, 0); err == nil {
		t.Error("zero weight should be rejected")
	}
	if err := b.AddEdge(0, 1, -5); err == nil {
		t.Error("negative weight should be rejected")
	}
	if err := b.AddEdge(0, 2, 1); err == nil {
		t.Error("out-of-range vertex should be rejected")
	}
	if err := b.AddEdge(0, 1, 7); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
}

func TestEdgesListedOnce(t *testing.T) {
	g := paperFigure1(t)
	edges := g.Edges()
	if len(edges) != 9 {
		t.Fatalf("Edges() returned %d, want 9", len(edges))
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Errorf("edge %+v not normalized U < V", e)
		}
	}
}

func TestMaxDegreeAndBounds(t *testing.T) {
	g := paperFigure1(t)
	if d := g.MaxDegree(); d != 3 {
		t.Fatalf("MaxDegree = %d, want 3", d)
	}
	b := g.Bounds()
	want := geom.Rect{MinX: 0, MinY: 0, MaxX: 6, MaxY: 2}
	if b != want {
		t.Fatalf("Bounds = %+v, want %+v", b, want)
	}
	if g.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
}

func TestConnectedComponents(t *testing.T) {
	coords := make([]geom.Point, 6)
	edges := []Edge{
		{U: 0, V: 1, Weight: 1},
		{U: 1, V: 2, Weight: 1},
		{U: 3, V: 4, Weight: 1},
	}
	g, err := FromEdges(coords, edges)
	if err != nil {
		t.Fatal(err)
	}
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("vertices 0,1,2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Error("vertices 3,4 should share a component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Error("vertex 5 should be isolated")
	}
	if IsConnected(g) {
		t.Error("graph should not be connected")
	}

	lc, mapping := LargestComponent(g)
	if lc.NumVertices() != 3 || lc.NumEdges() != 2 {
		t.Fatalf("largest component: %d vertices %d edges, want 3 and 2", lc.NumVertices(), lc.NumEdges())
	}
	if len(mapping) != 3 {
		t.Fatalf("mapping length = %d, want 3", len(mapping))
	}
	if !IsConnected(lc) {
		t.Error("largest component should be connected")
	}
}

func TestLargestComponentOfConnectedIsIdentity(t *testing.T) {
	g := paperFigure1(t)
	lc, mapping := LargestComponent(g)
	if lc != g || mapping != nil {
		t.Error("connected graph should be returned unchanged")
	}
}

func TestIsConnectedEmpty(t *testing.T) {
	g, err := FromEdges(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnected(g) {
		t.Error("empty graph counts as connected")
	}
}
