package graph

// PathIterator yields the vertices of one shortest path in order, on
// demand. It is the composable unit of the streaming path pipeline: CH
// shortcut unpacking, SILC first-hop walks, TNR access-node stitching and
// the Dijkstra-family parent walks all produce one, and consumers (the
// HTTP batch-route streamer, the materializing collectors) drain it
// without ever holding more than a bounded window of the path.
//
// Protocol: Next returns the path's vertices front to back, one per call,
// then reports false. After a false, Err distinguishes normal exhaustion
// (nil) from an aborted walk (the context's error): a consumer that saw
// false with a nil Err has received the complete path. Iterators whose
// Next does per-vertex work poll their context every cancel.Interval
// vertices, so draining one obeys the same cancellation contract as the
// query that opened it.
//
// An iterator reads the per-query state of the searcher that opened it: it
// is invalidated by that searcher's next query and must be drained before
// the searcher is reused or returned to a pool.
type PathIterator interface {
	// Next returns the next path vertex, or ok=false when the path is
	// exhausted or the walk was aborted (see Err).
	Next() (v VertexID, ok bool)
	// Err returns the error that cut the walk short, or nil after a
	// complete iteration. It is meaningful only once Next has returned
	// false.
	Err() error
}

// SlicePath is a PathIterator over an already-materialized vertex
// sequence. It is the adapter between the slice-returning ShortestPath
// world and the streaming one: techniques with no lazy production (and
// searcher-owned scratch buffers, which are materialized but reused) wrap
// their slices in one.
type SlicePath struct {
	path []VertexID
	at   int
}

// NewSlicePath returns an iterator over path.
func NewSlicePath(path []VertexID) *SlicePath {
	return &SlicePath{path: path}
}

// Reset re-targets the iterator at path, reusing the receiver so
// per-searcher SlicePath scratch never reallocates.
func (it *SlicePath) Reset(path []VertexID) {
	it.path = path
	it.at = 0
}

// Next implements PathIterator.
func (it *SlicePath) Next() (VertexID, bool) {
	if it.at >= len(it.path) {
		return 0, false
	}
	v := it.path[it.at]
	it.at++
	return v, true
}

// Err implements PathIterator; a materialized path cannot fail mid-walk.
func (it *SlicePath) Err() error { return nil }

// AppendPath drains it into dst and returns the extended slice — the
// collector turning an iterator back into the classic materialized path.
// On an aborted walk it returns (nil, it.Err()).
func AppendPath(dst []VertexID, it PathIterator) ([]VertexID, error) {
	for {
		v, ok := it.Next()
		if !ok {
			if err := it.Err(); err != nil {
				return nil, err
			}
			return dst, nil
		}
		dst = append(dst, v)
	}
}
