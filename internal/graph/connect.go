package graph

// ConnectedComponents labels each vertex with a component id in
// [0, numComponents) and returns the labels and the component count.
// The paper assumes connected road networks (§2); the generator uses this
// to verify connectivity and the loader uses it to extract the largest
// component from arbitrary input.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []VertexID
	for start := 0; start < n; start++ {
		if labels[start] >= 0 {
			continue
		}
		id := int32(count)
		count++
		stack = append(stack[:0], VertexID(start))
		labels[start] = id
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			lo, hi := g.ArcsOf(v)
			for a := lo; a < hi; a++ {
				if w := g.Head(a); labels[w] < 0 {
					labels[w] = id
					stack = append(stack, w)
				}
			}
		}
	}
	return labels, count
}

// IsConnected reports whether g is a single connected component.
// The empty graph counts as connected.
func IsConnected(g *Graph) bool {
	if g.NumVertices() == 0 {
		return true
	}
	_, count := ConnectedComponents(g)
	return count == 1
}

// LargestComponent returns the subgraph induced by the largest connected
// component together with a mapping from new vertex ids to original ids.
// If g is already connected, it is returned unchanged with a nil mapping.
func LargestComponent(g *Graph) (*Graph, []VertexID) {
	labels, count := ConnectedComponents(g)
	if count <= 1 {
		return g, nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	keep := int32(best)
	oldToNew := make([]VertexID, g.NumVertices())
	var newToOld []VertexID
	b := NewBuilder(sizes[best])
	for v := 0; v < g.NumVertices(); v++ {
		if labels[v] == keep {
			oldToNew[v] = b.AddVertex(g.Coord(VertexID(v)))
			newToOld = append(newToOld, VertexID(v))
		} else {
			oldToNew[v] = -1
		}
	}
	for _, e := range g.Edges() {
		if labels[e.U] == keep {
			// Both endpoints share the component; AddEdge cannot fail here.
			_ = b.AddEdge(oldToNew[e.U], oldToNew[e.V], e.Weight)
		}
	}
	return b.Build(), newToOld
}
