// Package graph provides the road-network substrate shared by every
// technique in this repository: an undirected, weighted, degree-bounded
// graph in compressed-sparse-row (CSR) form with planar vertex coordinates,
// plus construction helpers and DIMACS Implementation Challenge file IO.
//
// The paper's datasets (Table 1) are undirected graphs whose edge weights
// are travel times; coordinates come from the companion DIMACS ".co" files
// and are required by TNR's grid, SILC's and PCPD's quadtrees, and the
// L-infinity workload generator.
package graph

import (
	"fmt"
	"math"

	"roadnet/internal/binio"
	"roadnet/internal/geom"
)

// VertexID identifies a vertex; ids are dense in [0, NumVertices).
type VertexID = int32

// Weight is an edge weight (travel time) in arbitrary integer units.
type Weight = int32

// Infinity is the distance reported for unreachable vertex pairs.
// It is small enough that Infinity+Infinity does not overflow int64.
const Infinity int64 = math.MaxInt64 / 4

// Edge is one undirected edge of the network.
type Edge struct {
	U, V   VertexID
	Weight Weight
}

// Graph is an undirected weighted graph in CSR (adjacency array) form.
// Each undirected edge {u, v} is stored twice, once in each direction, as
// in the hash-table layout of the paper's Appendix D. Fields are exported
// read-only views; use Builder to construct a Graph.
type Graph struct {
	// firstOut[v] .. firstOut[v+1] delimit the arcs leaving v.
	firstOut []int32
	// head[a] is the target vertex of arc a.
	head []VertexID
	// weight[a] is the weight of arc a.
	weight []Weight
	// edgeID[a] is the id of the undirected edge arc a belongs to; the two
	// opposite arcs of an undirected edge share one edge id.
	edgeID []int32
	// coords[v] is the planar position of vertex v.
	coords []geom.Point

	numEdges int
	bounds   geom.Rect

	// backing is the flat container a mapped graph's arrays alias
	// (LoadFile); nil for built or stream-read graphs. See Close.
	backing *binio.FlatFile
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.firstOut) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// NumArcs returns the number of directed arcs (2 * NumEdges).
func (g *Graph) NumArcs() int { return len(g.head) }

// Coord returns the planar position of v.
func (g *Graph) Coord(v VertexID) geom.Point { return g.coords[v] }

// Coords returns the coordinate slice indexed by vertex id. Callers must
// treat it as read-only.
func (g *Graph) Coords() []geom.Point { return g.coords }

// Bounds returns the bounding rectangle of all vertex coordinates.
func (g *Graph) Bounds() geom.Rect { return g.bounds }

// Degree returns the number of arcs leaving v.
func (g *Graph) Degree(v VertexID) int { return int(g.firstOut[v+1] - g.firstOut[v]) }

// ArcsOf returns the half-open arc index range of v, for use with Head,
// ArcWeight and EdgeIDOf.
func (g *Graph) ArcsOf(v VertexID) (lo, hi int32) { return g.firstOut[v], g.firstOut[v+1] }

// Head returns the target vertex of arc a.
func (g *Graph) Head(a int32) VertexID { return g.head[a] }

// ArcWeight returns the weight of arc a.
func (g *Graph) ArcWeight(a int32) Weight { return g.weight[a] }

// EdgeIDOf returns the undirected edge id of arc a.
func (g *Graph) EdgeIDOf(a int32) int32 { return g.edgeID[a] }

// Neighbors calls fn for every arc (v, w) leaving v with the arc's weight
// and undirected edge id. Iteration stops early if fn returns false.
func (g *Graph) Neighbors(v VertexID, fn func(w VertexID, wt Weight, edgeID int32) bool) {
	for a := g.firstOut[v]; a < g.firstOut[v+1]; a++ {
		if !fn(g.head[a], g.weight[a], g.edgeID[a]) {
			return
		}
	}
}

// HasEdge reports whether an edge {u, v} exists, returning its minimal
// weight when several parallel edges exist.
func (g *Graph) HasEdge(u, v VertexID) (Weight, bool) {
	best := Weight(math.MaxInt32)
	found := false
	for a := g.firstOut[u]; a < g.firstOut[u+1]; a++ {
		if g.head[a] == v && g.weight[a] <= best {
			best = g.weight[a]
			found = true
		}
	}
	return best, found
}

// Edges returns all undirected edges, each reported once with U < V
// (self-loops are impossible by construction).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.numEdges)
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		for a := g.firstOut[v]; a < g.firstOut[v+1]; a++ {
			if w := g.head[a]; v < w {
				edges = append(edges, Edge{U: v, V: w, Weight: g.weight[a]})
			}
		}
	}
	return edges
}

// EdgesByID returns the undirected edges indexed by their edge id (the id
// reported by EdgeIDOf), with U < V. Unlike Edges, whose order follows the
// CSR layout, the returned slice can be indexed directly by edge id.
func (g *Graph) EdgesByID() []Edge {
	edges := make([]Edge, g.numEdges)
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		for a := g.firstOut[v]; a < g.firstOut[v+1]; a++ {
			if w := g.head[a]; v < w {
				edges[g.edgeID[a]] = Edge{U: v, V: w, Weight: g.weight[a]}
			}
		}
	}
	return edges
}

// MaxDegree returns the largest vertex degree; road networks are
// degree-bounded (§2), and tests assert the generator respects this.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VertexID(v)); d > max {
			max = d
		}
	}
	return max
}

// SizeBytes returns the in-memory footprint of the CSR arrays, used when
// reporting space consumption alongside the index structures.
func (g *Graph) SizeBytes() int64 {
	return int64(len(g.firstOut))*4 + int64(len(g.head))*4 +
		int64(len(g.weight))*4 + int64(len(g.edgeID))*4 + int64(len(g.coords))*8
}

// Builder accumulates vertices and undirected edges and produces a Graph.
type Builder struct {
	coords []geom.Point
	edges  []Edge
}

// NewBuilder returns a Builder expecting roughly n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{coords: make([]geom.Point, 0, n)}
}

// AddVertex appends a vertex at point p and returns its id.
func (b *Builder) AddVertex(p geom.Point) VertexID {
	b.coords = append(b.coords, p)
	return VertexID(len(b.coords) - 1)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.coords) }

// AddEdge adds the undirected edge {u, v} with weight w.
// Self-loops and non-positive weights are rejected.
func (b *Builder) AddEdge(u, v VertexID, w Weight) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	if w <= 0 {
		return fmt.Errorf("graph: non-positive weight %d on edge {%d, %d}", w, u, v)
	}
	n := VertexID(len(b.coords))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge {%d, %d} references unknown vertex (n=%d)", u, v, n)
	}
	b.edges = append(b.edges, Edge{U: u, V: v, Weight: w})
	return nil
}

// Build produces the CSR graph. The Builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	n := len(b.coords)
	g := &Graph{
		firstOut: make([]int32, n+1),
		head:     make([]VertexID, 2*len(b.edges)),
		weight:   make([]Weight, 2*len(b.edges)),
		edgeID:   make([]int32, 2*len(b.edges)),
		coords:   b.coords,
		numEdges: len(b.edges),
		bounds:   geom.BoundingRect(b.coords),
	}
	deg := make([]int32, n)
	for _, e := range b.edges {
		deg[e.U]++
		deg[e.V]++
	}
	for v := 0; v < n; v++ {
		g.firstOut[v+1] = g.firstOut[v] + deg[v]
	}
	next := make([]int32, n)
	copy(next, g.firstOut[:n])
	for i, e := range b.edges {
		a := next[e.U]
		next[e.U]++
		g.head[a] = e.V
		g.weight[a] = e.Weight
		g.edgeID[a] = int32(i)

		a = next[e.V]
		next[e.V]++
		g.head[a] = e.U
		g.weight[a] = e.Weight
		g.edgeID[a] = int32(i)
	}
	return g
}

// FromEdges builds a graph directly from coordinates and an edge list.
func FromEdges(coords []geom.Point, edges []Edge) (*Graph, error) {
	b := NewBuilder(len(coords))
	for _, p := range coords {
		b.AddVertex(p)
	}
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.Weight); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
