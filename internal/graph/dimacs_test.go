package graph

import (
	"bytes"
	"strings"
	"testing"
)

const sampleGR = `c test graph
p sp 4 6
a 1 2 10
a 2 1 10
a 2 3 20
a 3 2 20
a 3 4 5
a 4 3 5
`

const sampleCO = `c coordinates
p aux sp co 4
v 1 100 200
v 2 300 400
v 3 -50 0
v 4 0 -75
`

func TestReadGR(t *testing.T) {
	n, edges, err := ReadGR(strings.NewReader(sampleGR))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
	if len(edges) != 3 {
		t.Fatalf("undirected edges = %d, want 3 (opposite arcs collapsed)", len(edges))
	}
}

func TestReadDIMACSRoundtrip(t *testing.T) {
	g, err := ReadDIMACS(strings.NewReader(sampleGR), strings.NewReader(sampleCO))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("graph has %d vertices %d edges, want 4 and 3", g.NumVertices(), g.NumEdges())
	}
	if p := g.Coord(2); p.X != -50 || p.Y != 0 {
		t.Fatalf("Coord(2) = %+v, want (-50, 0)", p)
	}

	var grBuf, coBuf bytes.Buffer
	if err := WriteGR(&grBuf, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteCO(&coBuf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDIMACS(bytes.NewReader(grBuf.Bytes()), bytes.NewReader(coBuf.Bytes()))
	if err != nil {
		t.Fatalf("re-reading written graph: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("roundtrip changed graph size")
	}
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		if g.Coord(v) != g2.Coord(v) {
			t.Fatalf("roundtrip changed coordinate of %d", v)
		}
	}
	for _, e := range g.Edges() {
		if w, ok := g2.HasEdge(e.U, e.V); !ok || w != e.Weight {
			t.Fatalf("roundtrip lost edge %+v", e)
		}
	}
}

func TestReadGRParallelEdgesKeepMinimum(t *testing.T) {
	in := `p sp 2 4
a 1 2 10
a 2 1 10
a 1 2 3
a 2 1 3
`
	_, edges, err := ReadGR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1 || edges[0].Weight != 3 {
		t.Fatalf("parallel edges should collapse to minimum weight, got %+v", edges)
	}
}

func TestReadGRDropsSelfLoops(t *testing.T) {
	in := `p sp 2 3
a 1 1 5
a 1 2 7
a 2 1 7
`
	_, edges, err := ReadGR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1 {
		t.Fatalf("self loop should be dropped, got %+v", edges)
	}
}

func TestReadGRMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"missing problem line", "a 1 2 3\n"},
		{"no header at all", "c only a comment\n"},
		{"bad problem line", "p tsp 3 3\n"},
		{"non-integer weight", "p sp 2 1\na 1 2 x\n"},
		{"vertex out of range", "p sp 2 1\na 1 5 3\n"},
		{"zero weight", "p sp 2 1\na 1 2 0\n"},
		{"negative weight", "p sp 2 1\na 1 2 -4\n"},
		{"unknown record", "p sp 2 1\nz 1 2 3\n"},
		{"short arc line", "p sp 2 1\na 1 2\n"},
	}
	for _, c := range cases {
		if _, _, err := ReadGR(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadCOMalformed(t *testing.T) {
	cases := []struct {
		name, in string
		n        int
	}{
		{"missing vertex", "p aux sp co 2\nv 1 0 0\n", 2},
		{"id out of range", "v 9 0 0\n", 2},
		{"non-integer coord", "v 1 a 0\n", 1},
		{"short line", "v 1 0\n", 1},
		{"unknown record", "q 1 0 0\n", 1},
	}
	for _, c := range cases {
		if _, err := ReadCO(strings.NewReader(c.in), c.n); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
