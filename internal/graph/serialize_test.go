package graph_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roadnet/internal/gen"
	"roadnet/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.Generate(gen.Params{N: 500, Seed: 7})
}

// sameGraph asserts g and h are structurally identical.
func sameGraph(t *testing.T, g, h *graph.Graph) {
	t.Helper()
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() || h.NumArcs() != g.NumArcs() {
		t.Fatalf("sizes differ: %d/%d/%d vs %d/%d/%d",
			h.NumVertices(), h.NumEdges(), h.NumArcs(),
			g.NumVertices(), g.NumEdges(), g.NumArcs())
	}
	if h.Bounds() != g.Bounds() {
		t.Errorf("bounds differ: %v vs %v", h.Bounds(), g.Bounds())
	}
	for v := graph.VertexID(0); int(v) < g.NumVertices(); v++ {
		if h.Coord(v) != g.Coord(v) {
			t.Fatalf("coord of %d differs", v)
		}
		glo, ghi := g.ArcsOf(v)
		hlo, hhi := h.ArcsOf(v)
		if glo != hlo || ghi != hhi {
			t.Fatalf("arc range of %d differs", v)
		}
		for a := glo; a < ghi; a++ {
			if g.Head(a) != h.Head(a) || g.ArcWeight(a) != h.ArcWeight(a) || g.EdgeIDOf(a) != h.EdgeIDOf(a) {
				t.Fatalf("arc %d of %d differs", a, v)
			}
		}
	}
}

func TestGraphSaveReadRoundtrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := graph.ReadGraph(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, h)
}

func TestGraphLoadFile(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "net.graph")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for _, preferMmap := range []bool{false, true} {
		h, err := graph.LoadFile(path, preferMmap)
		if err != nil {
			t.Fatalf("preferMmap=%v: %v", preferMmap, err)
		}
		sameGraph(t, g, h)
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGraphReadRejectsGarbage(t *testing.T) {
	if _, err := graph.ReadGraph(strings.NewReader("p sp 5 4\n")); err == nil {
		t.Error("DIMACS text accepted as a binary graph")
	}
	if _, err := graph.ReadGraph(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestGraphReadRejectsTruncation(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{10, 40, len(data) / 2, len(data) - 3} {
		if _, err := graph.ReadGraph(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}
