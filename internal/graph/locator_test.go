package graph

import (
	"math/rand"
	"testing"

	"roadnet/internal/geom"
)

func locatorFixture(t *testing.T, n int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddVertex(geom.Point{X: int32(rng.Intn(100000)), Y: int32(rng.Intn(100000))})
	}
	for i := 1; i < n; i++ {
		if err := b.AddEdge(VertexID(i-1), VertexID(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func bruteNearest(g *Graph, p geom.Point) VertexID {
	best := VertexID(-1)
	bestD := int64(1) << 62
	for v := 0; v < g.NumVertices(); v++ {
		if d := euclidSq(p, g.Coord(VertexID(v))); d < bestD {
			bestD = d
			best = VertexID(v)
		}
	}
	return best
}

func TestLocatorMatchesBruteForce(t *testing.T) {
	g := locatorFixture(t, 500, 31)
	l := NewLocator(g, 0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		p := geom.Point{X: int32(rng.Intn(120000) - 10000), Y: int32(rng.Intn(120000) - 10000)}
		got := l.Nearest(p)
		want := bruteNearest(g, p)
		if euclidSq(p, g.Coord(got)) != euclidSq(p, g.Coord(want)) {
			t.Fatalf("Nearest(%v) = %d (d2=%d), brute force %d (d2=%d)",
				p, got, euclidSq(p, g.Coord(got)), want, euclidSq(p, g.Coord(want)))
		}
	}
}

func TestLocatorExactVertexPosition(t *testing.T) {
	g := locatorFixture(t, 100, 33)
	l := NewLocator(g, 8)
	for v := 0; v < g.NumVertices(); v += 7 {
		got := l.Nearest(g.Coord(VertexID(v)))
		if euclidSq(g.Coord(VertexID(v)), g.Coord(got)) != 0 {
			t.Errorf("Nearest at vertex %d position returned non-coincident %d", v, got)
		}
	}
}

func TestLocatorEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	l := NewLocator(g, 4)
	if v := l.Nearest(geom.Point{}); v != -1 {
		t.Errorf("Nearest on empty graph = %d, want -1", v)
	}
}

func TestLocatorSingleVertex(t *testing.T) {
	b := NewBuilder(1)
	b.AddVertex(geom.Point{X: 5, Y: 5})
	g := b.Build()
	l := NewLocator(g, 4)
	if v := l.Nearest(geom.Point{X: -1000, Y: 9999}); v != 0 {
		t.Errorf("Nearest = %d, want 0", v)
	}
}
