package graph

// Binary CSR serialization. Parsing DIMACS text for a continental-scale
// network takes longer than building some of the cheap indexes, so spserve
// persists the parsed CSR arrays in the flat v2 container (internal/binio)
// and maps them back in O(1): the adjacency arrays, weights, edge ids and
// coordinates are 64-byte-aligned little-endian sections that load as
// zero-copy casts of the page cache.

import (
	"fmt"
	"io"
	"unsafe"

	"roadnet/internal/binio"
	"roadnet/internal/geom"
)

// GraphFourcc tags a flat container holding a serialized road network.
const GraphFourcc uint32 = 'G' | 'R'<<8 | 'P'<<16 | 'H'<<24

const graphMeta = "ROADNET-GRAPH\n"

// Save writes g as a flat v2 container.
func (g *Graph) Save(w io.Writer) error {
	fw := binio.NewFlatWriter(GraphFourcc)
	mw := fw.Meta()
	mw.Magic(graphMeta)
	mw.I64(int64(g.NumVertices()))
	mw.I64(int64(g.numEdges))
	mw.I32(g.bounds.MinX)
	mw.I32(g.bounds.MinY)
	mw.I32(g.bounds.MaxX)
	mw.I32(g.bounds.MaxY)
	fw.I32Section(g.firstOut)
	fw.I32Section(g.head)
	fw.I32Section(g.weight)
	fw.I32Section(g.edgeID)
	fw.I32Section(pointsAsI32(g.coords))
	_, err := fw.WriteTo(w)
	return err
}

// ReadGraph reads a graph written by Save from a stream. This is the
// copying path: the whole container is read onto the heap and the arrays
// cast (or decoded) from that buffer. Use LoadFile to map the file
// instead.
func ReadGraph(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	f, err := binio.ParseFlat(data, true)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return GraphFromFlat(f)
}

// LoadFile maps (or, with preferMmap false or where unsupported, reads)
// the graph file at path. A mapped graph's arrays alias the page cache:
// loading is O(1) and the resident memory is shared with every other
// process serving the same file. Call Close on the returned graph when it
// is no longer used.
//
// By default the file's checksums are verified before the graph is used —
// a flipped byte fails the load with binio.ErrCorrupt instead of routing
// over a silently wrong network. Pass binio.WithoutVerify to skip the
// verification sweep (mapped loads then stay O(#sections)).
func LoadFile(path string, preferMmap bool, opts ...binio.OpenOption) (*Graph, error) {
	f, err := binio.OpenFlat(path, preferMmap, append([]binio.OpenOption{binio.WithVerify()}, opts...)...)
	if err != nil {
		return nil, err
	}
	g, err := GraphFromFlat(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	g.backing = f
	return g, nil
}

// GraphFromFlat builds a graph over the sections of f. The graph aliases
// f's data; f must stay open for the graph's lifetime.
func GraphFromFlat(f *binio.FlatFile) (*Graph, error) {
	if f.Fourcc() != GraphFourcc {
		return nil, fmt.Errorf("graph: container holds %s, not a road network", fourccString(f.Fourcc()))
	}
	mr := f.Meta()
	mr.Magic(graphMeta)
	n := mr.I64()
	m := mr.I64()
	var bounds geom.Rect
	bounds.MinX = mr.I32()
	bounds.MinY = mr.I32()
	bounds.MaxX = mr.I32()
	bounds.MaxY = mr.I32()
	if err := mr.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	g := &Graph{numEdges: int(m), bounds: bounds}
	var err error
	if g.firstOut, err = f.I32(0); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	if g.head, err = f.I32(1); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	if g.weight, err = f.I32(2); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	if g.edgeID, err = f.I32(3); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	rawCoords, err := f.I32(4)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	g.coords = binio.CastStructs[geom.Point](rawCoords)

	// O(1) structural checks; the arrays themselves are trusted to the
	// format (they were produced by Save) and are not scanned, so a mapped
	// load touches no data pages.
	if n < 0 || m < 0 || int64(len(g.firstOut)) != n+1 ||
		int64(len(g.coords)) != n || int64(len(g.head)) != 2*m {
		return nil, fmt.Errorf("%w: graph sections sized for %d vertices / %d edges do not match header",
			binio.ErrCorrupt, len(g.firstOut)-1, len(g.head)/2)
	}
	if len(g.weight) != len(g.head) || len(g.edgeID) != len(g.head) {
		return nil, fmt.Errorf("%w: inconsistent arc array lengths", binio.ErrCorrupt)
	}
	if n > 0 && int(g.firstOut[n]) != len(g.head) {
		return nil, fmt.Errorf("%w: firstOut does not cover the arc array", binio.ErrCorrupt)
	}
	return g, nil
}

// Close releases the file mapping behind a graph returned by LoadFile. The
// graph (and every index attached to it) must not be used afterwards. It
// is a no-op for built or stream-read graphs.
func (g *Graph) Close() error {
	if g.backing == nil {
		return nil
	}
	b := g.backing
	g.backing = nil
	return b.Close()
}

// Mapped reports whether the graph's arrays alias an mmap'd file.
func (g *Graph) Mapped() bool { return g.backing != nil && g.backing.Mapped() }

// Verified reports whether the graph's bytes are known-good: either it was
// built or stream-parsed in this process (no disk bytes to distrust), or
// its backing file carried checksums that passed verification. It is false
// for file loads that skipped verification and for checksum-less legacy
// files.
func (g *Graph) Verified() bool { return g.backing == nil || g.backing.Verified() }

// pointsAsI32 reinterprets the coordinate array as its int32 layout
// (geom.Point is exactly two int32s).
func pointsAsI32(pts []geom.Point) []int32 {
	if len(pts) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&pts[0])), 2*len(pts))
}

// fourccString renders a fourcc tag for error messages.
func fourccString(fourcc uint32) string {
	b := []byte{byte(fourcc), byte(fourcc >> 8), byte(fourcc >> 16), byte(fourcc >> 24)}
	for i, c := range b {
		if c < 0x20 || c > 0x7e {
			b[i] = '?'
		}
	}
	return fmt.Sprintf("%q", b)
}
