package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"roadnet/internal/geom"
)

// This file implements readers and writers for the 9th DIMACS
// Implementation Challenge formats used by the paper's datasets (§4.2):
//
//	.gr  distance/time graph:  "p sp <n> <m>" header, "a <u> <v> <w>" arcs
//	.co  coordinates:          "p aux sp co <n>" header, "v <id> <x> <y>"
//
// DIMACS vertex ids are 1-based; this package uses 0-based dense ids.
// DIMACS .gr files list each undirected road edge as two opposite arcs;
// ReadGR collapses duplicate arcs into single undirected edges.

// ReadGR parses a DIMACS .gr stream into an edge list, returning the vertex
// count and the undirected edges.
func ReadGR(r io.Reader) (n int, edges []Edge, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	type key struct{ u, v VertexID }
	seen := make(map[key]Weight)
	line := 0
	declaredArcs := -1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c': // comment
		case 'p':
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "sp" {
				return 0, nil, fmt.Errorf("dimacs: line %d: malformed problem line %q", line, text)
			}
			if n, err = strconv.Atoi(fields[2]); err != nil {
				return 0, nil, fmt.Errorf("dimacs: line %d: bad vertex count: %v", line, err)
			}
			if declaredArcs, err = strconv.Atoi(fields[3]); err != nil {
				return 0, nil, fmt.Errorf("dimacs: line %d: bad arc count: %v", line, err)
			}
		case 'a':
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return 0, nil, fmt.Errorf("dimacs: line %d: malformed arc line %q", line, text)
			}
			u64, err1 := strconv.ParseInt(fields[1], 10, 32)
			v64, err2 := strconv.ParseInt(fields[2], 10, 32)
			w64, err3 := strconv.ParseInt(fields[3], 10, 32)
			if err1 != nil || err2 != nil || err3 != nil {
				return 0, nil, fmt.Errorf("dimacs: line %d: non-integer arc field in %q", line, text)
			}
			if n == 0 {
				return 0, nil, fmt.Errorf("dimacs: line %d: arc before problem line", line)
			}
			if u64 < 1 || u64 > int64(n) || v64 < 1 || v64 > int64(n) {
				return 0, nil, fmt.Errorf("dimacs: line %d: vertex id out of range in %q", line, text)
			}
			if w64 <= 0 {
				return 0, nil, fmt.Errorf("dimacs: line %d: non-positive weight in %q", line, text)
			}
			u, v, w := VertexID(u64-1), VertexID(v64-1), Weight(w64)
			if u == v {
				continue // drop self loops; road data occasionally has them
			}
			if u > v {
				u, v = v, u
			}
			k := key{u, v}
			if old, ok := seen[k]; !ok || w < old {
				seen[k] = w
			}
		default:
			return 0, nil, fmt.Errorf("dimacs: line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, fmt.Errorf("dimacs: %w", err)
	}
	if declaredArcs < 0 {
		return 0, nil, fmt.Errorf("dimacs: missing problem line")
	}
	edges = make([]Edge, 0, len(seen))
	for k, w := range seen {
		edges = append(edges, Edge{U: k.u, V: k.v, Weight: w})
	}
	return n, edges, nil
}

// ReadCO parses a DIMACS .co coordinate stream for n vertices.
func ReadCO(r io.Reader, n int) ([]geom.Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	coords := make([]geom.Point, n)
	assigned := make([]bool, n)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c', 'p': // comments and the aux problem line carry no data we need
		case 'v':
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return nil, fmt.Errorf("dimacs: line %d: malformed vertex line %q", line, text)
			}
			id, err1 := strconv.ParseInt(fields[1], 10, 32)
			x, err2 := strconv.ParseInt(fields[2], 10, 32)
			y, err3 := strconv.ParseInt(fields[3], 10, 32)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dimacs: line %d: non-integer field in %q", line, text)
			}
			if id < 1 || id > int64(n) {
				return nil, fmt.Errorf("dimacs: line %d: vertex id %d out of range", line, id)
			}
			coords[id-1] = geom.Point{X: int32(x), Y: int32(y)}
			assigned[id-1] = true
		default:
			return nil, fmt.Errorf("dimacs: line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: %w", err)
	}
	for v, ok := range assigned {
		if !ok {
			return nil, fmt.Errorf("dimacs: vertex %d has no coordinates", v+1)
		}
	}
	return coords, nil
}

// ReadDIMACS reads a .gr stream and a .co stream and builds the graph.
func ReadDIMACS(gr, co io.Reader) (*Graph, error) {
	n, edges, err := ReadGR(gr)
	if err != nil {
		return nil, err
	}
	coords, err := ReadCO(co, n)
	if err != nil {
		return nil, err
	}
	return FromEdges(coords, edges)
}

// WriteGR writes g in DIMACS .gr format, emitting each undirected edge as
// two opposite arcs, as the challenge files do.
func WriteGR(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "c generated by roadnet\n")
	fmt.Fprintf(bw, "p sp %d %d\n", g.NumVertices(), 2*g.NumEdges())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "a %d %d %d\n", e.U+1, e.V+1, e.Weight)
		fmt.Fprintf(bw, "a %d %d %d\n", e.V+1, e.U+1, e.Weight)
	}
	return bw.Flush()
}

// WriteCO writes g's coordinates in DIMACS .co format.
func WriteCO(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "c generated by roadnet\n")
	fmt.Fprintf(bw, "p aux sp co %d\n", g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		p := g.Coord(VertexID(v))
		fmt.Fprintf(bw, "v %d %d %d\n", v+1, p.X, p.Y)
	}
	return bw.Flush()
}
