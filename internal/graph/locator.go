package graph

import (
	"math"

	"roadnet/internal/geom"
)

// Locator answers nearest-vertex queries ("reverse geocoding"): map
// services receive coordinates, not vertex ids, so any application built
// on the query indexes needs this lookup. It buckets vertices into a
// uniform grid and searches outward ring by ring.
type Locator struct {
	g    *Graph
	grid geom.Grid
	// cells[i] lists the vertices whose coordinates fall into cell i.
	cells [][]VertexID
}

// NewLocator builds a locator over g's vertices. gridSize cells per axis;
// pass 0 for a size derived from the vertex count.
func NewLocator(g *Graph, gridSize int) *Locator {
	if gridSize <= 0 {
		gridSize = int(math.Sqrt(float64(g.NumVertices()))/2) + 1
	}
	l := &Locator{
		g:    g,
		grid: geom.NewGrid(g.Bounds(), gridSize, gridSize),
	}
	l.cells = make([][]VertexID, l.grid.NumCells())
	for v := 0; v < g.NumVertices(); v++ {
		c, r := l.grid.CellOf(g.Coord(VertexID(v)))
		i := l.grid.CellIndex(c, r)
		l.cells[i] = append(l.cells[i], VertexID(v))
	}
	return l
}

// Nearest returns the vertex closest to p in Euclidean distance, or -1 for
// an empty graph.
func (l *Locator) Nearest(p geom.Point) VertexID {
	if l.g.NumVertices() == 0 {
		return -1
	}
	pc, pr := l.grid.CellOf(p)
	best := VertexID(-1)
	bestD := int64(math.MaxInt64)
	consider := func(v VertexID) {
		if d := euclidSq(p, l.g.Coord(v)); d < bestD {
			bestD = d
			best = v
		}
	}
	cw, chh := l.grid.CellSize()
	cell := cw
	if chh > cell {
		cell = chh
	}
	maxRing := l.grid.Cols + l.grid.Rows
	for ring := 0; ring <= maxRing; ring++ {
		for dr := -ring; dr <= ring; dr++ {
			for dc := -ring; dc <= ring; dc++ {
				if geom.ChebyshevCellDist(0, 0, dc, dr) != ring {
					continue // only the ring boundary
				}
				c, r := pc+dc, pr+dr
				if c < 0 || c >= l.grid.Cols || r < 0 || r >= l.grid.Rows {
					continue
				}
				for _, v := range l.cells[l.grid.CellIndex(c, r)] {
					consider(v)
				}
			}
		}
		// Every vertex in ring k+1 or beyond lies at least k*cell away
		// from p (L-infinity lower-bounds Euclidean distance); once the
		// best candidate beats that bound, no further ring can improve it.
		if best >= 0 {
			nextMin := int64(ring) * cell
			if nextMin*nextMin > bestD {
				break
			}
		}
	}
	return best
}

func euclidSq(a, b geom.Point) int64 {
	dx := int64(a.X) - int64(b.X)
	dy := int64(a.Y) - int64(b.Y)
	return dx*dx + dy*dy
}
