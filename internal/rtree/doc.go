// Package rtree implements an R-tree over planar integer points — the
// spatial access method behind the server's point-location tier (snap a
// coordinate to the nearest vertex, enumerate vertices in a rectangle or
// radius, seed network k-NN with geometric candidates).
//
// Two build paths are supported: Insert grows the tree one entry at a time
// with Guttman's quadratic split, and BulkLoad packs a full entry set with
// Sort-Tile-Recursive (STR), which yields near-full nodes and a tighter
// tree than repeated insertion. Node capacity is configurable; both paths
// produce the same immutable query structure. Save/LoadFile persist a tree
// in the flat v2 container (see internal/binio), so deployments bulk-load
// once and mmap at every startup.
//
// Concurrency contract (same as every index in this repository): a Tree is
// immutable once built — Insert must not be called after the tree is shared
// — and all query methods are read-only, so any number of goroutines may
// query one Tree concurrently. Per-query iteration state lives in a
// Browser, one per goroutine.
//
// Distances are squared Euclidean in int64. Like the rest of the geometry
// in this repository they assume DIMACS micro-degree coordinate magnitudes
// (|coord| < 2^30), for which the squares cannot overflow.
package rtree
