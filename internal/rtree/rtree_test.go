package rtree

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"roadnet/internal/geom"
)

// randomEntries generates n entries with duplicate coordinates likely, so
// tie-breaking is exercised.
func randomEntries(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	span := int32(n/2 + 4) // small span forces coordinate collisions
	ents := make([]Entry, n)
	for i := range ents {
		ents[i] = Entry{
			P:  geom.Point{X: rng.Int31n(span) - span/2, Y: rng.Int31n(span) - span/2},
			ID: int32(i),
		}
	}
	return ents
}

func insertBuilt(ents []Entry, opts Options) *Tree {
	t := New(opts)
	for _, e := range ents {
		t.Insert(e)
	}
	return t
}

// oracleNearestK is the linear-scan ground truth: all entries sorted by
// (squared distance, ID).
func oracleNearestK(ents []Entry, p geom.Point, k int) []Entry {
	s := append([]Entry(nil), ents...)
	sort.Slice(s, func(i, j int) bool {
		di, dj := DistSq(p, s[i].P), DistSq(p, s[j].P)
		if di != dj {
			return di < dj
		}
		return s[i].ID < s[j].ID
	})
	if len(s) > k {
		s = s[:k]
	}
	return s
}

func sortByID(s []Entry) {
	sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
}

func checkTreeInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.size == 0 {
		return
	}
	var walk func(ni int32, depth int)
	var leafDepth = -1
	total := 0
	walk = func(ni int32, depth int) {
		n := &tr.nodes[ni]
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				t.Fatalf("leaves at depths %d and %d: tree not balanced", leafDepth, depth)
			}
			total += len(n.ents)
			for _, e := range n.ents {
				if !n.rect.Contains(e.P) {
					t.Fatalf("leaf %d rect %+v does not contain entry %+v", ni, n.rect, e)
				}
			}
			if len(n.ents) > tr.max {
				t.Fatalf("leaf %d holds %d entries, cap %d", ni, len(n.ents), tr.max)
			}
			return
		}
		if len(n.kids) > tr.max {
			t.Fatalf("node %d holds %d children, cap %d", ni, len(n.kids), tr.max)
		}
		if len(n.kids) == 0 {
			t.Fatalf("internal node %d has no children", ni)
		}
		for _, k := range n.kids {
			kr := tr.nodes[k].rect
			if n.rect.Union(kr) != n.rect {
				t.Fatalf("node %d rect %+v does not cover child %d rect %+v", ni, n.rect, k, kr)
			}
			walk(k, depth+1)
		}
	}
	walk(tr.root, 1)
	if leafDepth != tr.height {
		t.Fatalf("leaf depth %d != recorded height %d", leafDepth, tr.height)
	}
	if total != tr.size {
		t.Fatalf("tree claims %d entries, leaves hold %d", tr.size, total)
	}
}

// TestOracleQueries cross-checks every query kind against a linear scan,
// for both build paths and several node capacities.
func TestOracleQueries(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 17, 64, 500} {
		for _, cap := range []int{4, 5, 16} {
			ents := randomEntries(n, int64(1000*n+cap))
			builds := map[string]*Tree{
				"bulk":   BulkLoad(ents, Options{MaxEntries: cap}),
				"insert": insertBuilt(ents, Options{MaxEntries: cap}),
			}
			rng := rand.New(rand.NewSource(int64(n + cap)))
			for name, tr := range builds {
				checkTreeInvariants(t, tr)
				if tr.Len() != n {
					t.Fatalf("%s n=%d cap=%d: Len=%d", name, n, cap, tr.Len())
				}
				if tr.Bounds() != geom.BoundingRect(entryPoints(ents)) {
					t.Fatalf("%s n=%d cap=%d: Bounds=%+v", name, n, cap, tr.Bounds())
				}
				for trial := 0; trial < 20; trial++ {
					p := geom.Point{X: rng.Int31n(int32(n+8)) - int32(n/2), Y: rng.Int31n(int32(n+8)) - int32(n/2)}

					// Rectangle search vs scan.
					r := geom.NewRect(p, geom.Point{X: p.X + rng.Int31n(10), Y: p.Y - rng.Int31n(10)})
					var got []Entry
					tr.Search(r, func(e Entry) bool { got = append(got, e); return true })
					var want []Entry
					for _, e := range ents {
						if r.Contains(e.P) {
							want = append(want, e)
						}
					}
					sortByID(got)
					sortByID(want)
					if !equalEntries(got, want) {
						t.Fatalf("%s n=%d cap=%d rect %+v: got %v want %v", name, n, cap, r, got, want)
					}

					// Radius search vs scan.
					rad := int64(rng.Intn(n + 2))
					got = got[:0]
					tr.SearchRadius(p, rad, func(e Entry, d int64) bool {
						if d != DistSq(p, e.P) {
							t.Fatalf("radius reported distSq %d for %+v, want %d", d, e, DistSq(p, e.P))
						}
						got = append(got, e)
						return true
					})
					want = want[:0]
					for _, e := range ents {
						if DistSq(p, e.P) <= rad*rad {
							want = append(want, e)
						}
					}
					sortByID(got)
					sortByID(want)
					if !equalEntries(got, want) {
						t.Fatalf("%s n=%d cap=%d radius %d at %+v: got %v want %v", name, n, cap, rad, p, got, want)
					}

					// k-NN vs scan, exact order.
					k := rng.Intn(n+3) + 1
					knn := tr.NearestK(p, k)
					oracle := oracleNearestK(ents, p, k)
					if !equalEntries(knn, oracle) {
						t.Fatalf("%s n=%d cap=%d NearestK(%+v,%d):\n got %v\nwant %v", name, n, cap, p, k, knn, oracle)
					}
				}

				// Browser enumerates everything in strict (distSq, ID) order.
				p := geom.Point{X: 1, Y: -2}
				b := tr.NewBrowser(p)
				all := make([]Entry, 0, n)
				lastD, lastID := int64(-1), int32(-1)
				for {
					e, d, ok := b.Next()
					if !ok {
						break
					}
					if d != DistSq(p, e.P) {
						t.Fatalf("browser distSq %d for %+v, want %d", d, e, DistSq(p, e.P))
					}
					if d < lastD || (d == lastD && e.ID <= lastID) {
						t.Fatalf("browser order violated at (%d,%d) after (%d,%d)", d, e.ID, lastD, lastID)
					}
					lastD, lastID = d, e.ID
					all = append(all, e)
				}
				if len(all) != n {
					t.Fatalf("%s n=%d cap=%d: browser yielded %d entries", name, n, cap, len(all))
				}
			}
		}
	}
}

func entryPoints(ents []Entry) []geom.Point {
	pts := make([]geom.Point, len(ents))
	for i, e := range ents {
		pts[i] = e.P
	}
	return pts
}

func equalEntries(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	for _, tr := range []*Tree{New(Options{}), BulkLoad(nil, Options{})} {
		if tr.Len() != 0 || tr.Height() != 1 {
			t.Fatalf("empty tree: Len=%d Height=%d", tr.Len(), tr.Height())
		}
		if _, _, ok := tr.Nearest(geom.Point{}); ok {
			t.Fatal("Nearest on empty tree returned ok")
		}
		if got := tr.NearestK(geom.Point{}, 3); len(got) != 0 {
			t.Fatalf("NearestK on empty tree returned %v", got)
		}
		tr.Search(geom.Rect{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10}, func(Entry) bool {
			t.Fatal("Search on empty tree called fn")
			return false
		})
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := BulkLoad(randomEntries(100, 7), Options{MaxEntries: 4})
	calls := 0
	complete := tr.Search(tr.Bounds(), func(Entry) bool { calls++; return calls < 5 })
	if complete || calls != 5 {
		t.Fatalf("early stop: complete=%v calls=%d", complete, calls)
	}
}

// TestSerializeRoundTrip checks that a saved tree loads back (stream and
// mmap paths) answering every query identically.
func TestSerializeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 33, 400} {
		ents := randomEntries(n, int64(n))
		orig := BulkLoad(ents, Options{MaxEntries: 8})
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatalf("n=%d: Save: %v", n, err)
		}

		stream, err := ReadTree(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: ReadTree: %v", n, err)
		}

		path := filepath.Join(t.TempDir(), "tree.rt")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		mapped, err := LoadFile(path, true)
		if err != nil {
			t.Fatalf("n=%d: LoadFile: %v", n, err)
		}

		for _, tr := range []*Tree{stream, mapped} {
			if tr.Len() != n || tr.Height() != orig.Height() || tr.MaxEntries() != orig.MaxEntries() {
				t.Fatalf("n=%d: loaded Len=%d Height=%d Max=%d", n, tr.Len(), tr.Height(), tr.MaxEntries())
			}
			checkTreeInvariants(t, tr)
			p := geom.Point{X: 3, Y: -1}
			if !equalEntries(tr.NearestK(p, 10), orig.NearestK(p, 10)) {
				t.Fatalf("n=%d: loaded NearestK differs", n)
			}
			var a, b []Entry
			r := geom.Rect{MinX: -5, MinY: -5, MaxX: 5, MaxY: 5}
			tr.Search(r, func(e Entry) bool { a = append(a, e); return true })
			orig.Search(r, func(e Entry) bool { b = append(b, e); return true })
			sortByID(a)
			sortByID(b)
			if !equalEntries(a, b) {
				t.Fatalf("n=%d: loaded Search differs", n)
			}
		}
		if err := mapped.Close(); err != nil {
			t.Fatalf("n=%d: Close: %v", n, err)
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	orig := BulkLoad(randomEntries(50, 1), Options{})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong fourcc.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[8] = 'X'
	if _, err := ReadTree(bytes.NewReader(bad)); err == nil {
		t.Fatal("wrong fourcc accepted")
	}
	// Truncated container.
	if _, err := ReadTree(bytes.NewReader(buf.Bytes()[:40])); err == nil {
		t.Fatal("truncated container accepted")
	}
}
