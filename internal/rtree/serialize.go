package rtree

// Flat v2 serialization. The tree's nodes are index-addressed arrays
// already, so the container is a direct image: per-node rectangles and
// leaf flags, plus CSR-style (offset, data) pairs for child lists and
// entry lists. A mapped load reconstructs the node table in O(#nodes)
// while the bulky child/entry arrays stay zero-copy casts of the page
// cache, so the spatial tier mmaps alongside the graph and route indexes.

import (
	"fmt"
	"io"

	"roadnet/internal/binio"
	"roadnet/internal/geom"
)

// Fourcc tags a flat container holding a serialized R-tree.
const Fourcc uint32 = 'R' | 'T'<<8 | 'R'<<16 | 'E'<<24

const treeMeta = "ROADNET-RTREE\n"

// Save writes t as a flat v2 container.
func (t *Tree) Save(w io.Writer) error {
	nNodes := len(t.nodes)
	rects := make([]int32, 0, 4*nNodes)
	leaf := make([]uint8, nNodes)
	kidOff := make([]int64, nNodes+1)
	entOff := make([]int64, nNodes+1)
	var kids []int32
	var ents []int32
	for i, n := range t.nodes {
		rects = append(rects, n.rect.MinX, n.rect.MinY, n.rect.MaxX, n.rect.MaxY)
		if n.leaf {
			leaf[i] = 1
		}
		kids = append(kids, n.kids...)
		for _, e := range n.ents {
			ents = append(ents, e.P.X, e.P.Y, e.ID)
		}
		kidOff[i+1] = int64(len(kids))
		entOff[i+1] = int64(len(ents) / 3)
	}

	fw := binio.NewFlatWriter(Fourcc)
	mw := fw.Meta()
	mw.Magic(treeMeta)
	mw.I64(int64(t.max))
	mw.I64(int64(t.size))
	mw.I64(int64(t.height))
	mw.I64(int64(t.root))
	mw.I64(int64(nNodes))
	fw.I32Section(rects)
	fw.U8Section(leaf)
	fw.I64Section(kidOff)
	fw.I32Section(kids)
	fw.I64Section(entOff)
	fw.I32Section(ents)
	_, err := fw.WriteTo(w)
	return err
}

// ReadTree reads a tree written by Save from a stream (the copying path;
// use LoadFile to map the file instead).
func ReadTree(r io.Reader) (*Tree, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	f, err := binio.ParseFlat(data, true)
	if err != nil {
		return nil, fmt.Errorf("rtree: %w", err)
	}
	return TreeFromFlat(f)
}

// LoadFile maps (or, with preferMmap false or where unsupported, reads)
// the tree file at path. Call Close on the returned tree when it is no
// longer used.
//
// By default the file's checksums are verified before the tree is used;
// pass binio.WithoutVerify to skip the sweep and keep mapped loads
// O(#sections).
func LoadFile(path string, preferMmap bool, opts ...binio.OpenOption) (*Tree, error) {
	f, err := binio.OpenFlat(path, preferMmap, append([]binio.OpenOption{binio.WithVerify()}, opts...)...)
	if err != nil {
		return nil, err
	}
	t, err := TreeFromFlat(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	t.backing = f
	return t, nil
}

// TreeFromFlat builds a tree over the sections of f. The tree's child and
// entry arrays alias f's data; f must stay open for the tree's lifetime,
// and the tree must not be Inserted into (loaded trees are query-only).
func TreeFromFlat(f *binio.FlatFile) (*Tree, error) {
	if f.Fourcc() != Fourcc {
		return nil, fmt.Errorf("rtree: container holds %q, not an R-tree", fourccString(f.Fourcc()))
	}
	mr := f.Meta()
	mr.Magic(treeMeta)
	maxEnts := mr.I64()
	size := mr.I64()
	height := mr.I64()
	root := mr.I64()
	nNodes := mr.I64()
	if err := mr.Err(); err != nil {
		return nil, fmt.Errorf("rtree: reading header: %w", err)
	}
	rects, err := f.I32(0)
	if err != nil {
		return nil, fmt.Errorf("rtree: %w", err)
	}
	leaf, err := f.U8(1)
	if err != nil {
		return nil, fmt.Errorf("rtree: %w", err)
	}
	kidOff, err := f.I64(2)
	if err != nil {
		return nil, fmt.Errorf("rtree: %w", err)
	}
	kidsRaw, err := f.I32(3)
	if err != nil {
		return nil, fmt.Errorf("rtree: %w", err)
	}
	entOff, err := f.I64(4)
	if err != nil {
		return nil, fmt.Errorf("rtree: %w", err)
	}
	entsRaw, err := f.I32(5)
	if err != nil {
		return nil, fmt.Errorf("rtree: %w", err)
	}
	ents := binio.CastStructs[Entry](entsRaw)

	if nNodes <= 0 || maxEnts < 4 || size < 0 || height < 1 ||
		root < 0 || root >= nNodes ||
		int64(len(rects)) != 4*nNodes || int64(len(leaf)) != nNodes ||
		int64(len(kidOff)) != nNodes+1 || int64(len(entOff)) != nNodes+1 ||
		kidOff[nNodes] != int64(len(kidsRaw)) || entOff[nNodes] != int64(len(ents)) {
		return nil, fmt.Errorf("%w: r-tree sections do not match header (%d nodes, %d entries)",
			binio.ErrCorrupt, nNodes, size)
	}

	t := &Tree{
		max:    int(maxEnts),
		min:    int(maxEnts) / minFillDivisor,
		root:   int32(root),
		size:   int(size),
		height: int(height),
		nodes:  make([]node, nNodes),
	}
	for i := int64(0); i < nNodes; i++ {
		ka, kb := kidOff[i], kidOff[i+1]
		ea, eb := entOff[i], entOff[i+1]
		if ka < 0 || kb < ka || kb > int64(len(kidsRaw)) ||
			ea < 0 || eb < ea || eb > int64(len(ents)) {
			return nil, fmt.Errorf("%w: r-tree node %d offsets out of range", binio.ErrCorrupt, i)
		}
		n := &t.nodes[i]
		n.rect = geom.Rect{MinX: rects[4*i], MinY: rects[4*i+1], MaxX: rects[4*i+2], MaxY: rects[4*i+3]}
		n.leaf = leaf[i] != 0
		// Full slice expressions: nothing may append into the mapped data.
		n.kids = kidsRaw[ka:kb:kb]
		n.ents = ents[ea:eb:eb]
		for _, k := range n.kids {
			if int64(k) < 0 || int64(k) >= nNodes {
				return nil, fmt.Errorf("%w: r-tree node %d references child %d of %d", binio.ErrCorrupt, i, k, nNodes)
			}
		}
	}
	return t, nil
}

// Close releases the file mapping behind a tree returned by LoadFile. The
// tree must not be used afterwards. It is a no-op for built trees.
func (t *Tree) Close() error {
	if t.backing == nil {
		return nil
	}
	b := t.backing
	t.backing = nil
	return b.Close()
}

// Mapped reports whether the tree's arrays alias an mmap'd file.
func (t *Tree) Mapped() bool { return t.backing != nil && t.backing.Mapped() }

// Verified reports whether the tree's bytes are known-good: either it was
// bulk-loaded in this process, or its backing file carried checksums that
// passed verification. It is false for file loads that skipped
// verification and for checksum-less legacy files.
func (t *Tree) Verified() bool { return t.backing == nil || t.backing.Verified() }

func fourccString(fourcc uint32) string {
	b := []byte{byte(fourcc), byte(fourcc >> 8), byte(fourcc >> 16), byte(fourcc >> 24)}
	for i, c := range b {
		if c < 0x20 || c > 0x7e {
			b[i] = '?'
		}
	}
	return string(b)
}
