package rtree

import (
	"sort"

	"roadnet/internal/binio"
	"roadnet/internal/geom"
)

// DefaultMaxEntries is the default node capacity M.
const DefaultMaxEntries = 16

// minFillDivisor sets the minimum node fill m = M/minFillDivisor used by
// the quadratic split (Guttman suggests m <= M/2).
const minFillDivisor = 2

// Entry is one indexed point with an opaque 32-bit identifier (vertex id,
// POI id, ...). Its layout is three int32s, so entry arrays serialize as
// flat i32 sections and load back as zero-copy casts (binio.CastStructs).
type Entry struct {
	P  geom.Point
	ID int32
}

// Options configures tree construction.
type Options struct {
	// MaxEntries is the node capacity M (children per internal node,
	// entries per leaf). 0 means DefaultMaxEntries; values below 4 are
	// raised to 4 so the quadratic split always has two viable groups.
	MaxEntries int
}

func (o Options) capacity() int {
	m := o.MaxEntries
	if m == 0 {
		m = DefaultMaxEntries
	}
	if m < 4 {
		m = 4
	}
	return m
}

// node is one R-tree node. Nodes are addressed by index into Tree.nodes so
// the whole structure serializes as flat arrays and survives reallocation
// during growth.
type node struct {
	rect geom.Rect
	leaf bool
	kids []int32 // child node indices (internal nodes)
	ents []Entry // entries (leaves)
}

// Tree is an R-tree over point entries. The zero value is not usable; use
// New or BulkLoad.
type Tree struct {
	max     int
	min     int
	nodes   []node
	root    int32
	size    int
	height  int // levels, 1 for a lone leaf root
	backing *binio.FlatFile
}

// New returns an empty tree ready for Insert.
func New(opts Options) *Tree {
	m := opts.capacity()
	t := &Tree{max: m, min: m / minFillDivisor, root: 0, height: 1}
	t.nodes = append(t.nodes, node{leaf: true})
	return t
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a lone leaf root, 0 never).
func (t *Tree) Height() int { return t.height }

// MaxEntries returns the node capacity the tree was built with.
func (t *Tree) MaxEntries() int { return t.max }

// Bounds returns the bounding rectangle of all entries (the zero Rect for
// an empty tree).
func (t *Tree) Bounds() geom.Rect {
	if t.size == 0 {
		return geom.Rect{}
	}
	return t.nodes[t.root].rect
}

func pointRect(p geom.Point) geom.Rect {
	return geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// area returns the rectangle area as a float64. Areas are split/descent
// heuristics only, so float rounding cannot affect query correctness.
func area(r geom.Rect) float64 {
	return float64(r.Width()) * float64(r.Height())
}

// enlargement returns how much r must grow (in area) to cover s.
func enlargement(r, s geom.Rect) float64 {
	return area(r.Union(s)) - area(r)
}

// DistSq returns the squared Euclidean distance between two points.
func DistSq(p, q geom.Point) int64 {
	dx := int64(p.X) - int64(q.X)
	dy := int64(p.Y) - int64(q.Y)
	return dx*dx + dy*dy
}

// minDistSq returns the squared Euclidean distance from p to the nearest
// point of r — the classic MINDIST lower bound driving best-first browsing.
func minDistSq(p geom.Point, r geom.Rect) int64 {
	var dx, dy int64
	if p.X < r.MinX {
		dx = int64(r.MinX) - int64(p.X)
	} else if p.X > r.MaxX {
		dx = int64(p.X) - int64(r.MaxX)
	}
	if p.Y < r.MinY {
		dy = int64(r.MinY) - int64(p.Y)
	} else if p.Y > r.MaxY {
		dy = int64(p.Y) - int64(r.MaxY)
	}
	return dx*dx + dy*dy
}

// --- incremental insertion (quadratic split) ---------------------------

// Insert adds one entry. It must not be called once the tree is shared
// across goroutines (build first, then serve — the PR-1 contract).
func (t *Tree) Insert(e Entry) {
	split, ok := t.insert(t.root, e)
	if ok {
		// Root split: grow the tree by one level.
		old := t.root
		t.nodes = append(t.nodes, node{
			rect: t.nodes[old].rect.Union(t.nodes[split].rect),
			kids: []int32{old, split},
		})
		t.root = int32(len(t.nodes) - 1)
		t.height++
	}
	t.size++
}

// insert descends to a leaf, adds e, and splits overflowing nodes on the
// way back up. It returns the index of the new sibling when node ni split.
func (t *Tree) insert(ni int32, e Entry) (int32, bool) {
	n := &t.nodes[ni]
	if n.leaf {
		if len(n.ents) == 0 {
			n.rect = pointRect(e.P)
		} else {
			n.rect = n.rect.Union(pointRect(e.P))
		}
		n.ents = append(n.ents, e)
		if len(n.ents) > t.max {
			return t.splitLeaf(ni), true
		}
		return 0, false
	}
	ci := t.chooseSubtree(n, e.P)
	child := n.kids[ci]
	sib, split := t.insert(child, e)
	n = &t.nodes[ni] // t.nodes may have been reallocated by the recursion
	n.rect = n.rect.Union(pointRect(e.P))
	if split {
		n.kids = append(n.kids, sib)
		if len(n.kids) > t.max {
			return t.splitInternal(ni), true
		}
	}
	return 0, false
}

// chooseSubtree picks the child whose rectangle needs the least area
// enlargement to cover p (ties: smaller area, then lower child index).
func (t *Tree) chooseSubtree(n *node, p geom.Point) int {
	pr := pointRect(p)
	best := 0
	bestEnl := enlargement(t.nodes[n.kids[0]].rect, pr)
	bestArea := area(t.nodes[n.kids[0]].rect)
	for i := 1; i < len(n.kids); i++ {
		r := t.nodes[n.kids[i]].rect
		enl := enlargement(r, pr)
		if enl < bestEnl || (enl == bestEnl && area(r) < bestArea) {
			best, bestEnl, bestArea = i, enl, area(r)
		}
	}
	return best
}

// splitLeaf splits an overflowing leaf with the quadratic algorithm and
// returns the index of the new sibling.
func (t *Tree) splitLeaf(ni int32) int32 {
	ents := t.nodes[ni].ents
	rects := make([]geom.Rect, len(ents))
	for i, e := range ents {
		rects[i] = pointRect(e.P)
	}
	ga, gb := t.quadraticSplit(rects)
	a := node{leaf: true, ents: make([]Entry, 0, len(ga))}
	b := node{leaf: true, ents: make([]Entry, 0, len(gb))}
	for _, i := range ga {
		a.ents = append(a.ents, ents[i])
	}
	for _, i := range gb {
		b.ents = append(b.ents, ents[i])
	}
	a.rect = groupRect(rects, ga)
	b.rect = groupRect(rects, gb)
	t.nodes[ni] = a
	t.nodes = append(t.nodes, b)
	return int32(len(t.nodes) - 1)
}

// splitInternal splits an overflowing internal node.
func (t *Tree) splitInternal(ni int32) int32 {
	kids := t.nodes[ni].kids
	rects := make([]geom.Rect, len(kids))
	for i, k := range kids {
		rects[i] = t.nodes[k].rect
	}
	ga, gb := t.quadraticSplit(rects)
	a := node{kids: make([]int32, 0, len(ga))}
	b := node{kids: make([]int32, 0, len(gb))}
	for _, i := range ga {
		a.kids = append(a.kids, kids[i])
	}
	for _, i := range gb {
		b.kids = append(b.kids, kids[i])
	}
	a.rect = groupRect(rects, ga)
	b.rect = groupRect(rects, gb)
	t.nodes[ni] = a
	t.nodes = append(t.nodes, b)
	return int32(len(t.nodes) - 1)
}

func groupRect(rects []geom.Rect, idx []int) geom.Rect {
	r := rects[idx[0]]
	for _, i := range idx[1:] {
		r = r.Union(rects[i])
	}
	return r
}

// quadraticSplit distributes the rectangle indices into two groups per
// Guttman: pick the pair of seeds wasting the most area together, then
// repeatedly assign the rectangle with the greatest preference for one
// group, honoring the minimum fill m.
func (t *Tree) quadraticSplit(rects []geom.Rect) (ga, gb []int) {
	// PickSeeds: maximize dead space d = area(union) - area(a) - area(b).
	sa, sb := 0, 1
	worst := -1.0
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			d := area(rects[i].Union(rects[j])) - area(rects[i]) - area(rects[j])
			if d > worst {
				worst, sa, sb = d, i, j
			}
		}
	}
	ga = append(ga, sa)
	gb = append(gb, sb)
	ra, rb := rects[sa], rects[sb]
	rest := make([]int, 0, len(rects)-2)
	for i := range rects {
		if i != sa && i != sb {
			rest = append(rest, i)
		}
	}
	for len(rest) > 0 {
		// If one group must take everything left to reach minimum fill,
		// assign the remainder wholesale.
		if len(ga)+len(rest) <= t.min {
			ga = append(ga, rest...)
			for _, i := range rest {
				ra = ra.Union(rects[i])
			}
			break
		}
		if len(gb)+len(rest) <= t.min {
			gb = append(gb, rest...)
			for _, i := range rest {
				rb = rb.Union(rects[i])
			}
			break
		}
		// PickNext: the rectangle with the greatest |enlargement(a) -
		// enlargement(b)| has the strongest preference; resolve it now.
		pick, pickAt := 0, 0
		maxDiff := -1.0
		for at, i := range rest {
			diff := enlargement(ra, rects[i]) - enlargement(rb, rects[i])
			if diff < 0 {
				diff = -diff
			}
			if diff > maxDiff {
				maxDiff, pick, pickAt = diff, i, at
			}
		}
		rest = append(rest[:pickAt], rest[pickAt+1:]...)
		da := enlargement(ra, rects[pick])
		db := enlargement(rb, rects[pick])
		toA := da < db ||
			(da == db && (area(ra) < area(rb) || (area(ra) == area(rb) && len(ga) <= len(gb))))
		if toA {
			ga = append(ga, pick)
			ra = ra.Union(rects[pick])
		} else {
			gb = append(gb, pick)
			rb = rb.Union(rects[pick])
		}
	}
	return ga, gb
}

// --- STR bulk load ------------------------------------------------------

// BulkLoad builds a tree over all entries with the Sort-Tile-Recursive
// packing of Leutenegger et al.: sort by x, cut into vertical slabs, sort
// each slab by y, pack runs of M entries per leaf, then repeat one level up
// over the leaf rectangles. Nodes come out near-full, so the tree is
// shallower and tighter than one grown by insertion. The input slice is
// not retained and may be reused by the caller.
func BulkLoad(entries []Entry, opts Options) *Tree {
	m := opts.capacity()
	t := &Tree{max: m, min: m / minFillDivisor}
	if len(entries) == 0 {
		t.nodes = append(t.nodes, node{leaf: true})
		t.height = 1
		return t
	}
	ents := make([]Entry, len(entries))
	copy(ents, entries)
	// Deterministic build regardless of input order.
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].P.X != ents[j].P.X {
			return ents[i].P.X < ents[j].P.X
		}
		if ents[i].P.Y != ents[j].P.Y {
			return ents[i].P.Y < ents[j].P.Y
		}
		return ents[i].ID < ents[j].ID
	})
	t.size = len(ents)

	// Pack the leaf level.
	level := t.packLeaves(ents)
	t.height = 1
	// Pack internal levels until a single root remains.
	for len(level) > 1 {
		level = t.packInternal(level)
		t.height++
	}
	t.root = level[0]
	return t
}

// packLeaves tiles the sorted entries into leaves of up to max entries and
// returns the new node indices.
func (t *Tree) packLeaves(ents []Entry) []int32 {
	nLeaves := (len(ents) + t.max - 1) / t.max
	slabs := intSqrtCeil(nLeaves)
	slabSize := slabs * t.max // entries per vertical slab
	var out []int32
	for lo := 0; lo < len(ents); lo += slabSize {
		hi := lo + slabSize
		if hi > len(ents) {
			hi = len(ents)
		}
		slab := ents[lo:hi]
		sort.Slice(slab, func(i, j int) bool {
			if slab[i].P.Y != slab[j].P.Y {
				return slab[i].P.Y < slab[j].P.Y
			}
			if slab[i].P.X != slab[j].P.X {
				return slab[i].P.X < slab[j].P.X
			}
			return slab[i].ID < slab[j].ID
		})
		for a := 0; a < len(slab); a += t.max {
			b := a + t.max
			if b > len(slab) {
				b = len(slab)
			}
			n := node{leaf: true, ents: append([]Entry(nil), slab[a:b]...)}
			n.rect = pointRect(n.ents[0].P)
			for _, e := range n.ents[1:] {
				n.rect = n.rect.Union(pointRect(e.P))
			}
			t.nodes = append(t.nodes, n)
			out = append(out, int32(len(t.nodes)-1))
		}
	}
	return out
}

// packInternal tiles one level of nodes (by rectangle center) into parent
// nodes and returns the parent indices.
func (t *Tree) packInternal(level []int32) []int32 {
	centerX := func(ni int32) int64 {
		r := t.nodes[ni].rect
		return int64(r.MinX) + int64(r.MaxX)
	}
	centerY := func(ni int32) int64 {
		r := t.nodes[ni].rect
		return int64(r.MinY) + int64(r.MaxY)
	}
	sort.Slice(level, func(i, j int) bool {
		if cx, cy := centerX(level[i]), centerX(level[j]); cx != cy {
			return cx < cy
		}
		return centerY(level[i]) < centerY(level[j])
	})
	nParents := (len(level) + t.max - 1) / t.max
	slabs := intSqrtCeil(nParents)
	slabSize := slabs * t.max
	var out []int32
	for lo := 0; lo < len(level); lo += slabSize {
		hi := lo + slabSize
		if hi > len(level) {
			hi = len(level)
		}
		slab := level[lo:hi]
		sort.Slice(slab, func(i, j int) bool {
			if cy, cx := centerY(slab[i]), centerY(slab[j]); cy != cx {
				return cy < cx
			}
			return centerX(slab[i]) < centerX(slab[j])
		})
		for a := 0; a < len(slab); a += t.max {
			b := a + t.max
			if b > len(slab) {
				b = len(slab)
			}
			n := node{kids: append([]int32(nil), slab[a:b]...)}
			n.rect = t.nodes[n.kids[0]].rect
			for _, k := range n.kids[1:] {
				n.rect = n.rect.Union(t.nodes[k].rect)
			}
			t.nodes = append(t.nodes, n)
			out = append(out, int32(len(t.nodes)-1))
		}
	}
	return out
}

func intSqrtCeil(n int) int {
	if n <= 1 {
		return n
	}
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// --- queries ------------------------------------------------------------

// Search calls fn for every entry inside r (boundary inclusive), in an
// unspecified order, until fn returns false. It reports whether the scan
// ran to completion.
func (t *Tree) Search(r geom.Rect, fn func(Entry) bool) bool {
	if t.size == 0 {
		return true
	}
	return t.search(t.root, r, fn)
}

func (t *Tree) search(ni int32, r geom.Rect, fn func(Entry) bool) bool {
	n := &t.nodes[ni]
	if !n.rect.Intersects(r) {
		return true
	}
	if n.leaf {
		for _, e := range n.ents {
			if r.Contains(e.P) && !fn(e) {
				return false
			}
		}
		return true
	}
	for _, k := range n.kids {
		if !t.search(k, r, fn) {
			return false
		}
	}
	return true
}

// SearchRadius calls fn with every entry within Euclidean distance radius
// of p (boundary inclusive) and its squared distance, in an unspecified
// order, until fn returns false.
func (t *Tree) SearchRadius(p geom.Point, radius int64, fn func(Entry, int64) bool) bool {
	if t.size == 0 || radius < 0 {
		return true
	}
	return t.searchRadius(t.root, p, radius*radius, fn)
}

func (t *Tree) searchRadius(ni int32, p geom.Point, rr int64, fn func(Entry, int64) bool) bool {
	n := &t.nodes[ni]
	if minDistSq(p, n.rect) > rr {
		return true
	}
	if n.leaf {
		for _, e := range n.ents {
			if d := DistSq(p, e.P); d <= rr && !fn(e, d) {
				return false
			}
		}
		return true
	}
	for _, k := range n.kids {
		if !t.searchRadius(k, p, rr, fn) {
			return false
		}
	}
	return true
}

// Nearest returns the entry nearest to p by Euclidean distance (ties
// broken by smaller ID) and its squared distance. ok is false on an empty
// tree.
func (t *Tree) Nearest(p geom.Point) (e Entry, distSq int64, ok bool) {
	b := t.NewBrowser(p)
	return b.Next()
}

// NearestK returns the k entries nearest to p, ordered by (squared
// distance, ID) ascending. Fewer are returned when the tree holds fewer.
func (t *Tree) NearestK(p geom.Point, k int) []Entry {
	if k <= 0 {
		return nil
	}
	b := t.NewBrowser(p)
	out := make([]Entry, 0, k)
	for len(out) < k {
		e, _, ok := b.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}

// Browser enumerates entries in order of increasing Euclidean distance
// from a query point — Hjaltason & Samet's incremental best-first browsing
// over MINDIST-ordered node rectangles, the geometric analogue of the
// paper's distance browsing (Appendix A). A Browser holds the per-query
// priority queue; it is cheap to create and must not be shared across
// goroutines.
type Browser struct {
	t    *Tree
	p    geom.Point
	heap []browseItem
}

// browseItem is a heap element: an entry (node == -1) keyed by its exact
// squared distance, or a node keyed by the MINDIST of its rectangle.
type browseItem struct {
	key  int64
	node int32 // -1: ent is an entry; otherwise a node index
	ent  Entry
}

// less orders the browse heap by (key, nodes-before-entries, entry ID).
// Expanding nodes before emitting equal-key entries keeps the output in
// strict (distance, ID) order even when an unexpanded node could still
// yield an equal-distance entry with a smaller ID.
func (b *Browser) less(x, y browseItem) bool {
	if x.key != y.key {
		return x.key < y.key
	}
	xe, ye := x.node < 0, y.node < 0
	if xe != ye {
		return ye // node sorts before entry at equal key
	}
	if xe {
		return x.ent.ID < y.ent.ID
	}
	return x.node < y.node
}

// NewBrowser starts an incremental nearest-neighbor scan from p.
func (t *Tree) NewBrowser(p geom.Point) *Browser {
	b := &Browser{t: t, p: p}
	if t.size > 0 {
		b.push(browseItem{key: minDistSq(p, t.nodes[t.root].rect), node: t.root})
	}
	return b
}

// Next returns the next entry in (distance, ID) order, its squared
// distance, and false once the tree is exhausted.
func (b *Browser) Next() (Entry, int64, bool) {
	for len(b.heap) > 0 {
		it := b.pop()
		if it.node < 0 {
			return it.ent, it.key, true
		}
		n := &b.t.nodes[it.node]
		if n.leaf {
			for _, e := range n.ents {
				b.push(browseItem{key: DistSq(b.p, e.P), node: -1, ent: e})
			}
		} else {
			for _, k := range n.kids {
				b.push(browseItem{key: minDistSq(b.p, b.t.nodes[k].rect), node: k})
			}
		}
	}
	return Entry{}, 0, false
}

func (b *Browser) push(it browseItem) {
	b.heap = append(b.heap, it)
	i := len(b.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !b.less(b.heap[i], b.heap[parent]) {
			break
		}
		b.heap[i], b.heap[parent] = b.heap[parent], b.heap[i]
		i = parent
	}
}

func (b *Browser) pop() browseItem {
	top := b.heap[0]
	last := len(b.heap) - 1
	b.heap[0] = b.heap[last]
	b.heap = b.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(b.heap) {
			break
		}
		c := l
		if r < len(b.heap) && b.less(b.heap[r], b.heap[l]) {
			c = r
		}
		if !b.less(b.heap[c], b.heap[i]) {
			break
		}
		b.heap[i], b.heap[c] = b.heap[c], b.heap[i]
		i = c
	}
	return top
}
