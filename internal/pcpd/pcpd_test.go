package pcpd_test

import (
	"testing"

	"roadnet/internal/gen"
	"roadnet/internal/graph"
	"roadnet/internal/pcpd"
	"roadnet/internal/testutil"
)

func build(t *testing.T, g *graph.Graph) *pcpd.Index {
	t.Helper()
	ix, err := pcpd.Build(g, pcpd.Options{})
	if err != nil {
		t.Fatalf("pcpd.Build: %v", err)
	}
	return ix
}

func TestPCPDExhaustiveFigure1(t *testing.T) {
	g := testutil.Figure1()
	ix := build(t, g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.AllPairs(g), ix.ShortestPath)
}

func TestPCPDRoadNetwork(t *testing.T) {
	g := testutil.SmallRoad(400, 301)
	ix := build(t, g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 400, 81), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 150, 83), ix.ShortestPath)
}

func TestPCPDExhaustiveSmallRoad(t *testing.T) {
	g := testutil.SmallRoad(100, 307)
	ix := build(t, g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.AllPairs(g), ix.ShortestPath)
}

func TestPCPDAdversarialGraph(t *testing.T) {
	g := gen.RandomConnected(120, 200, 30, 311)
	ix := build(t, g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 200, 89), ix.ShortestPath)
}

func TestPCPDCoordinateCollisions(t *testing.T) {
	b := graph.NewBuilder(5)
	p := testutil.Figure1().Coord(0)
	for i := 0; i < 5; i++ {
		b.AddVertex(p) // everyone in the same quadtree cell
	}
	for i := 0; i < 4; i++ {
		if err := b.AddEdge(graph.VertexID(i), graph.VertexID(i+1), graph.Weight(2*i+1)); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	ix := build(t, g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.AllPairs(g), ix.ShortestPath)
}

func TestPCPDDisconnected(t *testing.T) {
	b := graph.NewBuilder(6)
	g0 := testutil.Figure1()
	for i := 0; i < 6; i++ {
		b.AddVertex(g0.Coord(graph.VertexID(i)))
	}
	_ = b.AddEdge(0, 1, 3)
	_ = b.AddEdge(1, 2, 4)
	_ = b.AddEdge(3, 4, 5)
	g := b.Build()
	ix := build(t, g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.AllPairs(g), ix.ShortestPath)
}

func TestPCPDGuards(t *testing.T) {
	b := graph.NewBuilder(0)
	if _, err := pcpd.Build(b.Build(), pcpd.Options{}); err == nil {
		t.Error("empty graph should be rejected")
	}
	g := testutil.SmallRoad(400, 313)
	if _, err := pcpd.Build(g, pcpd.Options{MaxN: 100}); err == nil {
		t.Error("MaxN guard should reject oversized graphs")
	}
}

func TestPCPDStats(t *testing.T) {
	g := testutil.SmallRoad(400, 317)
	ix := build(t, g)
	if ix.SizeBytes() <= 0 || ix.BuildTime() <= 0 {
		t.Error("stats must be positive")
	}
	if ix.NumPairs() <= 0 || ix.NumNodes() < ix.NumPairs() {
		t.Errorf("implausible pair/node counts: %d pairs, %d nodes", ix.NumPairs(), ix.NumNodes())
	}
}

func TestPCPDSameVertex(t *testing.T) {
	g := testutil.Figure1()
	ix := build(t, g)
	if d := ix.Distance(2, 2); d != 0 {
		t.Errorf("dist(v, v) = %d", d)
	}
	if p, d := ix.ShortestPath(2, 2); d != 0 || len(p) != 1 {
		t.Errorf("path(v, v) = %v, %d", p, d)
	}
}
