// Package pcpd implements Path-Coherent Pairs Decomposition
// (Sankaranarayanan et al., PVLDB 2009), the second spatial-coherence index
// of the paper's §3.5.
//
// Preprocessing recursively decomposes pairs of quadtree squares (X, Y)
// until, for every pair, all shortest paths from X to Y share a common
// element ψ — an edge, or a vertex that is interior to every covered path
// (the interiority requirement guarantees strict progress of the query
// recursion). The recursion follows Appendix D: a failing pair of squares
// is split into 16 sub-pairs (or 4 when only one side is still divisible),
// and the common-element test is a nested loop over the vertices of X and Y
// that maintains the set of shared elements and aborts as soon as it
// becomes empty.
//
// A query retrieves the unique pair covering (s, t), splits the path at ψ,
// and recurses — O(k) lookups for a path of k edges; a distance query
// computes the path and returns its length.
package pcpd

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"roadnet/internal/cancel"
	"roadnet/internal/dijkstra"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

const noHop = 0xff

// Options configures Build.
type Options struct {
	// Bits is the quadtree resolution per axis (default 16).
	Bits uint
	// MaxN guards against accidental use on graphs whose first-hop matrix
	// would not fit in memory (default 20000 vertices; the paper could not
	// run PCPD beyond its four smallest datasets either).
	MaxN int
	// Workers bounds preprocessing parallelism (default GOMAXPROCS).
	Workers int
}

// psi encodes the common element of a path-coherent pair.
//   - psi >= 0: a vertex id
//   - psi == psiNone: no path (unreachable pair)
//   - edge: psiEdgeFlag | edgeID<<1 | direction (0: path traverses U->V)
type psiValue = int64

const (
	psiNone     psiValue = -1
	psiEdgeFlag psiValue = 1 << 40
)

type nodeKind uint8

const (
	kindLeaf    nodeKind = iota // a path-coherent pair: psi applies
	kindSplit16                 // both squares split: children[qa*4+qb]
	kindSplitA                  // only X split: children[qa]
	kindSplitB                  // only Y split: children[qb]
	kindTable                   // same-cell coordinate collisions: per-pair psi
)

type node struct {
	kind     nodeKind
	psi      psiValue
	children []*node
	table    map[[2]graph.VertexID]psiValue
}

// Index is a built PCPD index.
type Index struct {
	g    *graph.Graph
	norm geom.Normalizer
	code []uint32
	// hop[s] is the first-hop adjacency slot from s toward each target
	// (the all-pairs shortest-path knowledge of §3.5, kept in first-hop
	// form; it is used during construction and released afterwards).
	edges []graph.Edge
	root  *node

	buildTime time.Duration
	numPairs  int64 // leaves (path-coherent pairs), the paper's |Spcp|
	numNodes  int64
}

// Build constructs the PCPD index; it runs one Dijkstra per vertex to build
// the first-hop matrix and then the recursive pair decomposition.
func Build(g *graph.Graph, opts Options) (*Index, error) {
	start := time.Now()
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("pcpd: empty graph")
	}
	if opts.MaxN == 0 {
		opts.MaxN = 20000
	}
	if n > opts.MaxN {
		return nil, fmt.Errorf("pcpd: graph has %d vertices, above the MaxN guard %d", n, opts.MaxN)
	}
	if d := g.MaxDegree(); d >= noHop {
		return nil, fmt.Errorf("pcpd: max degree %d exceeds supported %d", d, noHop)
	}
	if opts.Bits == 0 {
		opts.Bits = 16
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}

	ix := &Index{
		g:     g,
		norm:  geom.NewNormalizer(g.Bounds(), opts.Bits),
		code:  make([]uint32, n),
		edges: g.EdgesByID(),
	}
	for v := 0; v < n; v++ {
		ix.code[v] = uint32(ix.norm.Code(g.Coord(graph.VertexID(v))))
	}

	hop := buildFirstHops(g, opts.Workers)

	order := make([]graph.VertexID, n)
	for i := range order {
		order[i] = graph.VertexID(i)
	}
	sort.Slice(order, func(i, j int) bool { return ix.code[order[i]] < ix.code[order[j]] })

	d := &decomposer{
		ix:        ix,
		hop:       hop,
		order:     order,
		vertStamp: make([]uint32, n),
		edgeStamp: make([]uint32, 2*g.NumEdges()),
	}
	span := uint64(ix.norm.CodeSpaceSize())
	ix.root = d.decompose(quad{0, span, 0, n}, quad{0, span, 0, n})
	ix.buildTime = time.Since(start)
	return ix, nil
}

// buildFirstHops computes the first-hop matrix: hop[s][t] is the adjacency
// slot of the first edge of the canonical shortest path s -> t.
func buildFirstHops(g *graph.Graph, workers int) [][]uint8 {
	n := g.NumVertices()
	hop := make([][]uint8, n)
	var wg sync.WaitGroup
	vch := make(chan graph.VertexID, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := dijkstra.NewContext(g)
			for v := range vch {
				row := make([]uint8, n)
				for i := range row {
					row[i] = noHop
				}
				ctx.Run([]graph.VertexID{v}, dijkstra.Options{})
				lo, hi := g.ArcsOf(v)
				for _, u := range ctx.Settled() {
					if u == v {
						continue
					}
					if p := ctx.Parent(u); p == v {
						for a := lo; a < hi; a++ {
							if g.Head(a) == u && int64(g.ArcWeight(a)) == ctx.Dist(u) {
								row[u] = uint8(a - lo)
								break
							}
						}
					} else {
						row[u] = row[p]
					}
				}
				hop[v] = row
			}
		}()
	}
	for v := 0; v < n; v++ {
		vch <- graph.VertexID(v)
	}
	close(vch)
	wg.Wait()
	return hop
}

// quad is an aligned Morton-code square together with the range of sorted
// vertices it contains.
type quad struct {
	codeLo, span uint64
	idxLo, idxHi int
}

func (q quad) empty() bool      { return q.idxLo >= q.idxHi }
func (q quad) splittable() bool { return q.span > 1 }

// decomposer carries the scratch state of the recursive decomposition.
type decomposer struct {
	ix    *Index
	hop   [][]uint8
	order []graph.VertexID

	vertStamp []uint32
	edgeStamp []uint32 // directed: edgeID*2 + dir
	gen       uint32

	sharedVerts []graph.VertexID
	sharedEdges []int64
}

// child returns the q-th Morton quadrant of qd.
func (d *decomposer) child(qd quad, q uint64) quad {
	quarter := qd.span / 4
	lo := qd.codeLo + q*quarter
	hi := lo + quarter
	at := qd.idxLo + sort.Search(qd.idxHi-qd.idxLo, func(k int) bool {
		return uint64(d.ix.code[d.order[qd.idxLo+k]]) >= lo
	})
	end := at + sort.Search(qd.idxHi-at, func(k int) bool {
		return uint64(d.ix.code[d.order[at+k]]) >= hi
	})
	return quad{codeLo: lo, span: quarter, idxLo: at, idxHi: end}
}

// decompose builds the subtree for the square pair (a, b), or nil when the
// pair covers no queryable vertex pair.
func (d *decomposer) decompose(a, b quad) *node {
	if a.empty() || b.empty() {
		return nil
	}
	if a.idxHi-a.idxLo == 1 && b.idxHi-b.idxLo == 1 && d.order[a.idxLo] == d.order[b.idxLo] {
		return nil // the only pair is (v, v)
	}
	if psi, ok := d.coherent(a, b); ok {
		d.ix.numNodes++
		d.ix.numPairs++
		return &node{kind: kindLeaf, psi: psi}
	}
	switch {
	case a.splittable() && b.splittable():
		nd := &node{kind: kindSplit16, children: make([]*node, 16)}
		for qa := uint64(0); qa < 4; qa++ {
			ca := d.child(a, qa)
			if ca.empty() {
				continue
			}
			for qb := uint64(0); qb < 4; qb++ {
				nd.children[qa*4+qb] = d.decompose(ca, d.child(b, qb))
			}
		}
		d.ix.numNodes++
		return nd
	case a.splittable():
		nd := &node{kind: kindSplitA, children: make([]*node, 4)}
		for qa := uint64(0); qa < 4; qa++ {
			nd.children[qa] = d.decompose(d.child(a, qa), b)
		}
		d.ix.numNodes++
		return nd
	case b.splittable():
		nd := &node{kind: kindSplitB, children: make([]*node, 4)}
		for qb := uint64(0); qb < 4; qb++ {
			nd.children[qb] = d.decompose(a, d.child(b, qb))
		}
		d.ix.numNodes++
		return nd
	default:
		// Coordinate collisions: several vertices share both unit cells.
		nd := &node{kind: kindTable, table: map[[2]graph.VertexID]psiValue{}}
		for i := a.idxLo; i < a.idxHi; i++ {
			for j := b.idxLo; j < b.idxHi; j++ {
				s, t := d.order[i], d.order[j]
				if s == t {
					continue
				}
				nd.table[[2]graph.VertexID{s, t}] = d.pairPsi(s, t)
			}
		}
		d.ix.numNodes++
		d.ix.numPairs += int64(len(nd.table))
		return nd
	}
}

// walkPath invokes fn for every directed edge (arc) of the canonical
// shortest path s -> t, or returns false when unreachable.
func (d *decomposer) walkPath(s, t graph.VertexID, fn func(from graph.VertexID, arc int32)) bool {
	g := d.ix.g
	cur := s
	for cur != t {
		slot := d.hop[cur][t]
		if slot == noHop {
			return false
		}
		lo, _ := g.ArcsOf(cur)
		a := lo + int32(slot)
		fn(cur, a)
		cur = g.Head(a)
	}
	return true
}

// coherent tests whether all shortest paths between the squares share a
// common element (the nested-loop test of Appendix D) and returns the
// chosen ψ. A common edge is preferred; otherwise a vertex that is interior
// for every pair is required.
func (d *decomposer) coherent(a, b quad) (psiValue, bool) {
	first := true
	anyPath := false
	for i := a.idxLo; i < a.idxHi; i++ {
		for j := b.idxLo; j < b.idxHi; j++ {
			s, t := d.order[i], d.order[j]
			if s == t {
				continue
			}
			if first {
				// Seed the shared sets with the first pair's path.
				d.sharedVerts = d.sharedVerts[:0]
				d.sharedEdges = d.sharedEdges[:0]
				ok := d.walkPath(s, t, func(from graph.VertexID, arc int32) {
					g := d.ix.g
					to := g.Head(arc)
					dir := int64(0)
					if e := d.ix.edges[g.EdgeIDOf(arc)]; e.U != from {
						dir = 1
					}
					d.sharedEdges = append(d.sharedEdges, int64(g.EdgeIDOf(arc))<<1|dir)
					if to != t {
						d.sharedVerts = append(d.sharedVerts, to)
					}
				})
				if !ok {
					// An unreachable pair can only be coherent if *no*
					// pair has a path (psiNone); any path elsewhere fails.
					d.sharedVerts = d.sharedVerts[:0]
					d.sharedEdges = d.sharedEdges[:0]
				} else {
					anyPath = true
				}
				first = false
				continue
			}
			// Mark this pair's path elements, then intersect.
			d.gen++
			if d.gen == 0 {
				for k := range d.vertStamp {
					d.vertStamp[k] = 0
				}
				for k := range d.edgeStamp {
					d.edgeStamp[k] = 0
				}
				d.gen = 1
			}
			g := d.ix.g
			ok := d.walkPath(s, t, func(from graph.VertexID, arc int32) {
				to := g.Head(arc)
				dir := uint32(0)
				if e := d.ix.edges[g.EdgeIDOf(arc)]; e.U != from {
					dir = 1
				}
				d.edgeStamp[uint32(g.EdgeIDOf(arc))*2+dir] = d.gen
				if to != t {
					d.vertStamp[to] = d.gen
				}
			})
			if ok {
				anyPath = true
			}
			// Interior vertices must also exclude this pair's endpoints.
			d.vertStamp[s] = 0
			d.vertStamp[t] = 0
			keepV := d.sharedVerts[:0]
			if ok {
				for _, v := range d.sharedVerts {
					if d.vertStamp[v] == d.gen {
						keepV = append(keepV, v)
					}
				}
			}
			d.sharedVerts = keepV
			keepE := d.sharedEdges[:0]
			if ok {
				for _, e := range d.sharedEdges {
					if d.edgeStamp[e] == d.gen {
						keepE = append(keepE, e)
					}
				}
			}
			d.sharedEdges = keepE
			if anyPath && len(d.sharedVerts) == 0 && len(d.sharedEdges) == 0 {
				return 0, false
			}
		}
	}
	if !anyPath {
		return psiNone, true
	}
	if len(d.sharedEdges) > 0 {
		return psiEdgeFlag | d.sharedEdges[0], true
	}
	if len(d.sharedVerts) > 0 {
		return int64(d.sharedVerts[0]), true
	}
	return 0, false
}

// pairPsi computes ψ for a single pair (used by collision tables).
func (d *decomposer) pairPsi(s, t graph.VertexID) psiValue {
	g := d.ix.g
	// Prefer an interior vertex at the middle of the path; for single-edge
	// paths use the edge.
	var arcs []int32
	var froms []graph.VertexID
	ok := d.walkPath(s, t, func(from graph.VertexID, arc int32) {
		arcs = append(arcs, arc)
		froms = append(froms, from)
	})
	if !ok {
		return psiNone
	}
	if len(arcs) == 1 {
		dir := int64(0)
		if e := d.ix.edges[g.EdgeIDOf(arcs[0])]; e.U != froms[0] {
			dir = 1
		}
		return psiEdgeFlag | int64(g.EdgeIDOf(arcs[0]))<<1 | dir
	}
	mid := g.Head(arcs[len(arcs)/2-1])
	return int64(mid)
}

// lookup descends the tree to the unique node covering (s, t).
func (ix *Index) lookup(s, t graph.VertexID) psiValue {
	span := uint64(ix.norm.CodeSpaceSize())
	cs, ct := uint64(ix.code[s]), uint64(ix.code[t])
	aLo, bLo, aSpan, bSpan := uint64(0), uint64(0), span, span
	nd := ix.root
	for nd != nil {
		switch nd.kind {
		case kindLeaf:
			return nd.psi
		case kindTable:
			if psi, ok := nd.table[[2]graph.VertexID{s, t}]; ok {
				return psi
			}
			return psiNone
		case kindSplit16:
			aSpan /= 4
			bSpan /= 4
			qa := (cs - aLo) / aSpan
			qb := (ct - bLo) / bSpan
			aLo += qa * aSpan
			bLo += qb * bSpan
			nd = nd.children[qa*4+qb]
		case kindSplitA:
			aSpan /= 4
			qa := (cs - aLo) / aSpan
			aLo += qa * aSpan
			nd = nd.children[qa]
		case kindSplitB:
			bSpan /= 4
			qb := (ct - bLo) / bSpan
			bLo += qb * bSpan
			nd = nd.children[qb]
		}
	}
	return psiNone
}

// walker carries the per-query cancellation state of one recursive path
// decomposition: a step counter polled at bounded intervals and the first
// context error observed, which aborts the recursion.
type walker struct {
	ctx   context.Context
	steps int
	err   error
}

// appendPath appends the vertices of the shortest path after s up to and
// including t, returning the accumulated weight, or false when unreachable
// or when w's context was cancelled (w.err is then set).
func (ix *Index) appendPath(w *walker, path *[]graph.VertexID, s, t graph.VertexID, total *int64, depth int) bool {
	if w.err != nil {
		return false
	}
	if w.err = cancel.Poll(w.ctx, w.steps); w.err != nil {
		return false
	}
	w.steps++
	if s == t {
		return true
	}
	if depth > ix.g.NumVertices()+2 {
		return false // defensive: corrupted index
	}
	psi := ix.lookup(s, t)
	switch {
	case psi == psiNone:
		return false
	case psi&psiEdgeFlag != 0:
		e := ix.edges[(psi&^psiEdgeFlag)>>1]
		u, v := e.U, e.V
		if psi&1 != 0 {
			u, v = v, u
		}
		if !ix.appendPath(w, path, s, u, total, depth+1) {
			return false
		}
		if path != nil {
			*path = append(*path, v)
		}
		*total += int64(e.Weight)
		return ix.appendPath(w, path, v, t, total, depth+1)
	default:
		m := graph.VertexID(psi)
		if m == s || m == t {
			return false // interiority violated: corrupted index
		}
		if !ix.appendPath(w, path, s, m, total, depth+1) {
			return false
		}
		return ix.appendPath(w, path, m, t, total, depth+1)
	}
}

// ShortestPath answers a shortest-path query by recursive decomposition
// (§3.5), returning the vertex path and its length.
func (ix *Index) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	path, d, _ := ix.ShortestPathContext(context.Background(), s, t)
	return path, d
}

// ShortestPathContext is ShortestPath with cancellation: the recursion
// polls ctx every cancel.Interval recursion steps and aborts with its
// error.
func (ix *Index) ShortestPathContext(ctx context.Context, s, t graph.VertexID) ([]graph.VertexID, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, graph.Infinity, err
	}
	if s == t {
		return []graph.VertexID{s}, 0, nil
	}
	path := []graph.VertexID{s}
	var total int64
	w := walker{ctx: ctx}
	ok := ix.appendPath(&w, &path, s, t, &total, 0)
	if w.err != nil {
		return nil, graph.Infinity, w.err
	}
	if !ok {
		return nil, graph.Infinity, nil
	}
	return path, total, nil
}

// Distance computes the shortest path and returns its length (§3.5: PCPD
// first computes the path, then returns the sum of its edge weights).
func (ix *Index) Distance(s, t graph.VertexID) int64 {
	d, _ := ix.DistanceContext(context.Background(), s, t)
	return d
}

// DistanceContext is Distance with cancellation (see ShortestPathContext).
// An already-cancelled context aborts before any work, trivial s == t
// queries included.
func (ix *Index) DistanceContext(ctx context.Context, s, t graph.VertexID) (int64, error) {
	if err := ctx.Err(); err != nil {
		return graph.Infinity, err
	}
	if s == t {
		return 0, nil
	}
	var total int64
	w := walker{ctx: ctx}
	ok := ix.appendPath(&w, nil, s, t, &total, 0)
	if w.err != nil {
		return graph.Infinity, w.err
	}
	if !ok {
		return graph.Infinity, nil
	}
	return total, nil
}

// NumPairs returns |Spcp|, the number of path-coherent pairs.
func (ix *Index) NumPairs() int64 { return ix.numPairs }

// NumNodes returns the total node count of the decomposition tree.
func (ix *Index) NumNodes() int64 { return ix.numNodes }

// BuildTime returns the wall-clock preprocessing duration.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// SizeBytes reports the decomposition tree footprint (the paper's space
// measurements count exactly this structure, whose constant factor
// Appendix C analyses).
func (ix *Index) SizeBytes() int64 {
	return ix.sizeOf(ix.root) + int64(len(ix.code))*4 + int64(len(ix.edges))*12
}

func (ix *Index) sizeOf(nd *node) int64 {
	if nd == nil {
		return 0
	}
	size := int64(48) // node header
	size += int64(len(nd.children)) * 8
	size += int64(len(nd.table)) * 24
	for _, c := range nd.children {
		size += ix.sizeOf(c)
	}
	return size
}
