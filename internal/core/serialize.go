package core

import (
	"fmt"
	"io"

	"roadnet/internal/ch"
	"roadnet/internal/graph"
	"roadnet/internal/silc"
	"roadnet/internal/tnr"
)

// SaveIndex serializes a built index. Supported methods are the ones with
// expensive preprocessing: CH, TNR and SILC. The baseline needs no index,
// and PCPD/ALT/ArcFlags rebuild quickly relative to their size on disk.
func SaveIndex(ix Index, w io.Writer) error {
	switch v := ix.(type) {
	case *chIndex:
		return v.h.Save(w)
	case *tnrIndex:
		return v.t.Save(w)
	case *silcIndex:
		return v.s.Save(w)
	default:
		return fmt.Errorf("core: method %s does not support serialization", ix.Method())
	}
}

// LoadIndex deserializes an index of the given method and re-attaches it
// to g, which must be the network the index was built on.
func LoadIndex(method Method, r io.Reader, g *graph.Graph) (Index, error) {
	switch method {
	case MethodCH:
		h, err := ch.ReadHierarchy(r, g)
		if err != nil {
			return nil, err
		}
		return &chIndex{h: h}, nil
	case MethodTNR:
		t, err := tnr.ReadIndex(r, g)
		if err != nil {
			return nil, err
		}
		return &tnrIndex{t: t}, nil
	case MethodSILC:
		s, err := silc.ReadIndex(r, g)
		if err != nil {
			return nil, err
		}
		return &silcIndex{s: s}, nil
	default:
		return nil, fmt.Errorf("core: method %s does not support serialization", method)
	}
}
