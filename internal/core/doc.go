// Package core is the paper's actual contribution rendered as code: a
// single experimental framework in which all five techniques — the
// bidirectional Dijkstra baseline, CH, TNR, SILC and PCPD (plus the ALT
// extension) — are built behind one interface and measured under identical
// conditions: same graphs, same query workloads, same timing and space
// accounting, and the same memory-ceiling rule the paper applies ("we
// report the results of a technique on a dataset only when the size of its
// indexing structure is less than 24 GB").
//
// The package divides into:
//
//   - The Index/Searcher contract (core.go): immutable index data shared
//     across goroutines, mutable per-query state confined to searchers,
//     context-polling cancellation at bounded intervals in every search
//     loop.
//   - Pool (pool.go): reusable searchers for request-per-goroutine
//     servers — optionally bounded (WithMaxSearchers), pre-warmed
//     (Prewarm) and instrumented (WithMetrics); the distance hot path
//     stays allocation-free and lock-free.
//   - Batch acceleration (batch dispatch in pool.go): the per-technique
//     many-to-many algorithms behind DistanceMatrix, all bit-identical to
//     per-pair queries.
//   - Streaming paths (path.go): lazy PathIterators over every
//     technique's native path production.
//   - The spatial tier (spatial.go): an R-tree locator composed with the
//     network engines for point location, network k-NN and range queries.
//   - Persistence (loadfile.go): the flat v2 zero-copy load path with
//     checksum verification, plus the legacy v1 streams.
package core
