package core_test

import (
	"errors"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/graph"
	"roadnet/internal/testutil"
	"roadnet/internal/tnr"
	"roadnet/internal/workload"
)

func TestAllMethodsAgreeOnRoadNetwork(t *testing.T) {
	g := testutil.SmallRoad(400, 501)
	pairs := testutil.SamplePairs(g, 150, 111)
	methods := append(core.AllMethods(), core.MethodALT)
	for _, m := range methods {
		ix, err := core.BuildIndex(m, g, core.Config{TNR: tnr.Options{GridSize: 8}})
		if err != nil {
			t.Fatalf("build %s: %v", m, err)
		}
		if ix.Method() != m {
			t.Errorf("Method() = %s, want %s", ix.Method(), m)
		}
		t.Run(string(m), func(t *testing.T) {
			testutil.CheckDistancesAgainstDijkstra(t, g, pairs, ix.Distance)
			testutil.CheckPathsAgainstDijkstra(t, g, pairs[:50], ix.ShortestPath)
		})
	}
}

func TestBuildIndexUnknownMethod(t *testing.T) {
	g := testutil.Figure1()
	if _, err := core.BuildIndex("nope", g, core.Config{}); err == nil {
		t.Error("unknown method should error")
	}
}

func TestMemoryCeiling(t *testing.T) {
	g := testutil.SmallRoad(400, 503)
	_, err := core.BuildIndex(core.MethodSILC, g, core.Config{MaxIndexBytes: 10})
	if !errors.Is(err, core.ErrIndexTooLarge) {
		t.Errorf("expected ErrIndexTooLarge, got %v", err)
	}
	// The baseline has no index and always fits.
	if _, err := core.BuildIndex(core.MethodDijkstra, g, core.Config{MaxIndexBytes: 10}); err != nil {
		t.Errorf("baseline should fit any ceiling: %v", err)
	}
}

func TestStatsReporting(t *testing.T) {
	g := testutil.SmallRoad(400, 507)
	for _, m := range []core.Method{core.MethodCH, core.MethodSILC} {
		ix, err := core.BuildIndex(m, g, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		st := ix.Stats()
		if st.Method != m || st.BuildTime <= 0 || st.IndexBytes <= 0 {
			t.Errorf("%s stats implausible: %+v", m, st)
		}
	}
	base, _ := core.BuildIndex(core.MethodDijkstra, g, core.Config{})
	if st := base.Stats(); st.BuildTime != 0 || st.IndexBytes != 0 {
		t.Errorf("baseline stats should be zero: %+v", st)
	}
}

func TestHierarchySharing(t *testing.T) {
	g := testutil.SmallRoad(400, 509)
	chIx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := core.HierarchyOf(chIx)
	if h == nil {
		t.Fatal("HierarchyOf returned nil for a CH index")
	}
	tnrIx, err := core.BuildIndex(core.MethodTNR, g, core.Config{Hierarchy: h})
	if err != nil {
		t.Fatal(err)
	}
	if core.TNROf(tnrIx).Hierarchy() != h {
		t.Error("TNR did not reuse the shared hierarchy")
	}
	if core.HierarchyOf(tnrIx) != nil {
		t.Error("HierarchyOf on a non-CH index should be nil")
	}
}

func TestMeasurements(t *testing.T) {
	g := testutil.SmallRoad(900, 511)
	sets, err := workload.LInfSets(g, workload.Config{PairsPerSet: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := core.MeasureDistance(ix, sets[0])
	if m.Queries != len(sets[0].Pairs) || m.Method != core.MethodCH || m.SetName != "Q1" {
		t.Errorf("measurement metadata wrong: %+v", m)
	}
	if m.AvgMicros < 0 {
		t.Errorf("negative time: %+v", m)
	}
	p := core.MeasurePath(ix, sets[0])
	if p.Queries != len(sets[0].Pairs) {
		t.Errorf("path measurement metadata wrong: %+v", p)
	}
}

func TestDijkstraIndexUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	g0 := testutil.Figure1()
	for i := 0; i < 4; i++ {
		b.AddVertex(g0.Coord(graph.VertexID(i)))
	}
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(2, 3, 1)
	g := b.Build()
	ix, err := core.BuildIndex(core.MethodDijkstra, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := ix.Distance(0, 3); d != graph.Infinity {
		t.Errorf("cross-component distance = %d", d)
	}
}
