package core

import (
	"errors"
	"fmt"
	"os"
	"time"

	"roadnet/internal/binio"
	"roadnet/internal/ch"
	"roadnet/internal/graph"
	"roadnet/internal/silc"
	"roadnet/internal/tnr"
)

// LoadInfo describes how an index came off disk, for startup observability
// (spserve logs one line per index from it).
type LoadInfo struct {
	// Path is the file the index was loaded from.
	Path string
	// Mapped reports the zero-copy path: the file is mmap'd and the index
	// arrays alias the mapping. False means a heap load (flat file read
	// into memory, or a legacy v1 stream decode).
	Mapped bool
	// Flat reports the v2 flat container (false: legacy v1 stream).
	Flat bool
	// SizeBytes is the on-disk size of the index file.
	SizeBytes int64
	// LoadTime is the wall-clock time from open to a queryable index.
	LoadTime time.Duration
	// Verified reports that the file carries checksums and every one was
	// verified during the load — the index bytes are known-good. False for
	// legacy v1 streams and pre-checksum flat files (which cannot be
	// audited) and for loads that passed binio.WithoutVerify.
	Verified bool
	// VerifyTime is how much of LoadTime the checksum sweep took (zero
	// when verification was skipped). Operators watching startup latency
	// want this split out: the sweep is the part WithoutVerify removes.
	VerifyTime time.Duration
}

// Mode renders the load path as a short label for logs.
func (li LoadInfo) Mode() string {
	switch {
	case li.Mapped:
		return "mmap"
	case li.Flat:
		return "heap(flat)"
	default:
		return "heap(v1)"
	}
}

// LoadIndexFile loads an index of the given method from path, re-attaching
// it to g. Flat v2 files are opened through binio.OpenFlat: with preferMmap
// (and platform support) the file is mapped and the index aliases the
// mapping — O(#sections) startup, near-zero allocations, resident memory
// shared with the page cache; otherwise the container is read onto the
// heap and still parsed without per-element decoding. Legacy v1 streams
// fall back to the copying LoadIndex path.
//
// Indexes whose LoadInfo.Mapped is true hold the mapping open; release it
// with CloseIndex when the index is retired.
//
// By default every checksum in a flat file is verified before the index
// serves a query, mapped or not: a flipped byte fails the load with
// binio.ErrCorrupt instead of producing silently wrong shortest paths (the
// caller may then fall back to a plain Dijkstra pool — see spserve's
// degraded mode). Pass binio.WithoutVerify to skip the sweep and keep
// mapped loads O(#sections); LoadInfo.Verified records which happened.
func LoadIndexFile(method Method, path string, g *graph.Graph, preferMmap bool, opts ...binio.OpenOption) (Index, LoadInfo, error) {
	start := time.Now()
	info := LoadInfo{Path: path}
	f, err := binio.OpenFlat(path, preferMmap, append([]binio.OpenOption{binio.WithVerify()}, opts...)...)
	if errors.Is(err, binio.ErrNotFlat) {
		idx, lerr := loadV1File(method, path, g)
		if lerr != nil {
			return nil, info, lerr
		}
		if st, serr := os.Stat(path); serr == nil {
			info.SizeBytes = st.Size()
		}
		info.LoadTime = time.Since(start)
		return idx, info, nil
	}
	if err != nil {
		return nil, info, err
	}
	var idx Index
	switch method {
	case MethodCH:
		h, herr := ch.HierarchyFromFlat(f, g)
		if herr != nil {
			err = herr
		} else {
			idx = &chIndex{h: h, backing: f}
		}
	case MethodTNR:
		t, terr := tnr.IndexFromFlat(f, g)
		if terr != nil {
			err = terr
		} else {
			idx = &tnrIndex{t: t, backing: f}
		}
	case MethodSILC:
		s, serr := silc.IndexFromFlat(f, g)
		if serr != nil {
			err = serr
		} else {
			idx = &silcIndex{s: s, backing: f}
		}
	default:
		err = fmt.Errorf("core: method %s does not support serialization", method)
	}
	if err != nil {
		f.Close()
		return nil, info, fmt.Errorf("%s: %w", path, err)
	}
	info.Mapped = f.Mapped()
	info.Flat = true
	info.SizeBytes = f.SizeBytes()
	info.Verified = f.Verified()
	info.VerifyTime = f.VerifyTime()
	info.LoadTime = time.Since(start)
	return idx, info, nil
}

// loadV1File decodes a legacy v1 stream file through LoadIndex.
func loadV1File(method Method, path string, g *graph.Graph) (Index, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	idx, err := LoadIndex(method, fh, g)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return idx, nil
}

// CloseIndex releases any file mapping a LoadIndexFile-loaded index holds.
// The index (and every searcher over it) must not be used afterwards. It is
// a no-op for built, stream-loaded and unmapped indexes, so callers may
// defer it unconditionally.
func CloseIndex(ix Index) error {
	type backed interface{ closeBacking() error }
	if b, ok := ix.(backed); ok {
		return b.closeBacking()
	}
	return nil
}
