package core

import (
	"context"

	"roadnet/internal/graph"
)

// PathIterator streams the vertices of one shortest path in order. It is
// defined in the leaf package internal/graph (so technique packages can
// implement it without importing core) and re-exported here as the name the
// serving layers use.
type PathIterator = graph.PathIterator

// PathStreamer is the lazy path-production contract: a Searcher
// additionally implements it when the technique can yield the shortest path
// vertex-by-vertex without materializing it first. OpenPath reports the
// path length up front (streaming consumers emit it before the vertices)
// and returns:
//
//   - (nil, Infinity, err) when the underlying search was cancelled;
//   - (nil, Infinity, nil) when t is unreachable from s;
//   - (it, d, nil) otherwise, with it yielding the full path s..t lazily.
//
// The iterator reads the searcher's per-query state: it is invalidated by
// the searcher's next query and must be drained (or abandoned) before the
// searcher is reused or returned to a Pool. Iterators poll ctx at bounded
// intervals while expanding, surfacing cancellation through Err after a
// short Next()=false tail.
type PathStreamer interface {
	OpenPath(ctx context.Context, s, t graph.VertexID) (graph.PathIterator, int64, error)
}

// OpenPath streams the shortest path from s to t through sr, using the
// technique's native lazy iterator when sr implements PathStreamer and
// falling back to materializing through ShortestPathContext otherwise
// (PCPD's recursion builds the path outside-in, so it has no native
// streamer). The two produce bit-identical vertex sequences; only the
// resident memory differs.
func OpenPath(ctx context.Context, sr Searcher, s, t graph.VertexID) (graph.PathIterator, int64, error) {
	if ps, ok := sr.(PathStreamer); ok {
		return ps.OpenPath(ctx, s, t)
	}
	path, d, err := sr.ShortestPathContext(ctx, s, t)
	if err != nil {
		return nil, graph.Infinity, err
	}
	if path == nil {
		return nil, graph.Infinity, nil
	}
	return graph.NewSlicePath(path), d, nil
}
