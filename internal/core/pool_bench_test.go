package core

import (
	"sync/atomic"
	"testing"

	"roadnet/internal/graph"
	"roadnet/internal/testutil"
)

// benchPool builds a CH index and pool over a mid-size network.
func benchPool(b *testing.B) (*Pool, [][2]graph.VertexID) {
	b.Helper()
	g := testutil.SmallRoad(2000, 41)
	idx, err := BuildIndex(MethodCH, g, Config{})
	if err != nil {
		b.Fatal(err)
	}
	return NewPool(idx), testutil.SamplePairs(g, 256, 53)
}

// BenchmarkPoolDistanceCH is the steady-state hot path of the concurrent
// server: one pooled CH distance query. Run with -benchmem; it must report
// 0 allocs/op once the pool is warm.
func BenchmarkPoolDistanceCH(b *testing.B) {
	pool, pairs := benchPool(b)
	pool.Put(pool.Get()) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		pool.Distance(p[0], p[1])
	}
}

// BenchmarkPoolDistanceCHParallel is the same hot path under contention,
// the shape the HTTP server produces. Also 0 allocs/op steady-state.
func BenchmarkPoolDistanceCHParallel(b *testing.B) {
	pool, pairs := benchPool(b)
	pool.Put(pool.Get())
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p := pairs[int(next.Add(1))%len(pairs)]
			pool.Distance(p[0], p[1])
		}
	})
}
