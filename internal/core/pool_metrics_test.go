package core

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"

	"roadnet/internal/metrics"
)

// TestPoolOccupancyAccounting checks the in-use gauge follows Get/Put and
// returns to zero, and that Prewarm does not drive it negative (warmed
// searchers were never checked out).
func TestPoolOccupancyAccounting(t *testing.T) {
	pool := NewPool(&countingIndex{}, WithMaxSearchers(4))
	if n := pool.Prewarm(3); n != 3 {
		t.Fatalf("Prewarm = %d, want 3", n)
	}
	if got := pool.Prewarmed(); got != 3 {
		t.Errorf("Prewarmed = %d, want 3", got)
	}
	if got := pool.InUse(); got != 0 {
		t.Errorf("InUse after Prewarm = %d, want 0", got)
	}
	a, b := pool.Get(), pool.Get()
	if got := pool.InUse(); got != 2 {
		t.Errorf("InUse with two checked out = %d, want 2", got)
	}
	pool.Put(a)
	pool.Put(b)
	if got := pool.InUse(); got != 0 {
		t.Errorf("InUse after returns = %d, want 0", got)
	}
	if got := pool.Waiting(); got != 0 {
		t.Errorf("Waiting on idle pool = %d, want 0", got)
	}
}

// TestPoolWaitObserved exhausts a bounded metrics-wired pool so one Get
// must block, and checks the wait lands in the get-wait histogram and the
// occupancy gauges settle back to zero.
func TestPoolWaitObserved(t *testing.T) {
	reg := metrics.NewRegistry()
	pool := NewPool(&countingIndex{}, WithMaxSearchers(1), WithMetrics(reg))

	s := pool.Get()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
		s2, err := pool.GetContext(context.Background())
		if err != nil {
			t.Errorf("GetContext: %v", err)
			return
		}
		pool.Put(s2)
	}()
	close(release)
	// Hold the only searcher until the waiter is visibly blocked, then
	// return it; the waiter's Get must then record a wait observation.
	for pool.Waiting() == 0 {
		runtime.Gosched()
	}
	pool.Put(s)
	<-done

	if got := pool.InUse(); got != 0 {
		t.Errorf("InUse after drain = %d, want 0", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "roadnet_pool_get_wait_seconds_count 1") {
		t.Errorf("expected one observed wait:\n%s", out)
	}
	if !strings.Contains(out, "roadnet_pool_max_searchers 1") {
		t.Errorf("expected cap gauge:\n%s", out)
	}
}

// TestPoolMetricsConcurrent scrapes while the pool is hammered, proving
// the gauges and histogram are race-clean against live traffic.
func TestPoolMetricsConcurrent(t *testing.T) {
	reg := metrics.NewRegistry()
	pool := NewPool(&countingIndex{}, WithMaxSearchers(2), WithMetrics(reg))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s, err := pool.GetContext(context.Background())
				if err != nil {
					t.Errorf("GetContext: %v", err)
					return
				}
				pool.Put(s)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := pool.InUse(); got != 0 {
		t.Errorf("InUse after storm = %d, want 0", got)
	}
}
