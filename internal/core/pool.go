package core

import (
	"sync"

	"roadnet/internal/graph"
)

// Pool hands out reusable Searchers over one shared Index so any number of
// goroutines can query concurrently. It is backed by sync.Pool: searchers
// are created on demand, recycled across queries, and dropped under memory
// pressure, so steady-state operation allocates nothing on the distance
// hot path.
//
// Either check out a searcher explicitly (Get/Put) to amortize the
// checkout over several queries, or use the Distance/ShortestPath
// convenience methods, which wrap one query each.
type Pool struct {
	idx  Index
	pool sync.Pool
}

// NewPool returns a searcher pool over idx.
func NewPool(idx Index) *Pool {
	p := &Pool{idx: idx}
	p.pool.New = func() any { return idx.NewSearcher() }
	return p
}

// Index returns the shared index the pool serves.
func (p *Pool) Index() Index { return p.idx }

// Get checks a searcher out of the pool. Return it with Put when done; a
// searcher that is never returned is simply garbage collected.
func (p *Pool) Get() Searcher { return p.pool.Get().(Searcher) }

// Put returns a searcher obtained from Get to the pool.
func (p *Pool) Put(s Searcher) { p.pool.Put(s) }

// Distance answers one distance query on a pooled searcher.
func (p *Pool) Distance(s, t graph.VertexID) int64 {
	sr := p.Get()
	d := sr.Distance(s, t)
	p.Put(sr)
	return d
}

// ShortestPath answers one shortest-path query on a pooled searcher.
func (p *Pool) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	sr := p.Get()
	path, d := sr.ShortestPath(s, t)
	p.Put(sr)
	return path, d
}
