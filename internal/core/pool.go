package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"roadnet/internal/graph"
	"roadnet/internal/metrics"
)

// Pool hands out reusable Searchers over one shared Index so any number of
// goroutines can query concurrently.
//
// An unbounded pool (the default) is backed by sync.Pool: searchers are
// created on demand, recycled across queries, and dropped under memory
// pressure, so steady-state operation allocates nothing on the distance
// hot path.
//
// A bounded pool (WithMaxSearchers) never creates more than the configured
// number of searchers, capping the memory spent on the O(n) per-searcher
// arrays on very large graphs: once the cap is reached, Get blocks until a
// searcher is returned. Bounded searchers are retained for the lifetime of
// the pool, never dropped.
//
// Prewarm builds searchers ahead of the first request burst, so that burst
// does not pay one O(n)-array allocation per concurrent request.
//
// Either check out a searcher explicitly (Get/Put) to amortize the
// checkout over several queries, or use the Distance/ShortestPath
// convenience methods, which wrap one query each.
type Pool struct {
	idx  Index
	pool sync.Pool

	// Bounded mode (max > 0): idle holds returned searchers and created
	// counts the live total, never exceeding max.
	max     int64
	idle    chan Searcher
	created atomic.Int64

	// Occupancy instrumentation, maintained unconditionally: plain atomic
	// adds on the Get/Put paths, so the zero-allocation guarantee of the
	// CH distance hot path is untouched (see pool_bench_test.go).
	inUse     atomic.Int64
	waiting   atomic.Int64
	prewarmed atomic.Int64

	// waitObs, when set (WithMetrics), observes how long a Get blocked for
	// a free searcher on an exhausted bounded pool. The unblocked fast
	// paths never call it — their wait is zero by construction.
	waitObs atomic.Value // func(time.Duration)

	// reg defers metric registration until after all options have applied,
	// so WithMetrics composes with WithMaxSearchers in any order.
	reg *metrics.Registry
}

// PoolOption configures NewPool.
type PoolOption func(*Pool)

// WithMaxSearchers bounds the pool to at most n live searchers; Get blocks
// when all are checked out. n <= 0 leaves the pool unbounded.
func WithMaxSearchers(n int) PoolOption {
	return func(p *Pool) {
		if n > 0 {
			p.max = int64(n)
		}
	}
}

// WithMetrics registers the pool's occupancy instrumentation with reg:
// gauges for checked-out searchers, goroutines waiting on an exhausted
// bounded pool, the prewarmed count and the configured cap, plus a
// histogram of how long Get blocked (see docs/METRICS.md). Register at
// most one pool per registry — the metric names are fixed.
func WithMetrics(reg *metrics.Registry) PoolOption {
	return func(p *Pool) { p.reg = reg }
}

// NewPool returns a searcher pool over idx.
func NewPool(idx Index, opts ...PoolOption) *Pool {
	p := &Pool{idx: idx}
	for _, opt := range opts {
		opt(p)
	}
	if p.max > 0 {
		p.idle = make(chan Searcher, p.max)
	} else {
		p.pool.New = func() any { return idx.NewSearcher() }
	}
	if p.reg != nil {
		p.registerMetrics(p.reg)
	}
	return p
}

// registerMetrics wires the occupancy gauges and the get-wait histogram.
// The gauges read the pool's live atomics at scrape time; nothing is
// added to the query hot path beyond the unconditional atomic counters.
func (p *Pool) registerMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("roadnet_pool_in_use",
		"Searchers currently checked out of the pool.",
		func() float64 { return float64(p.InUse()) })
	reg.GaugeFunc("roadnet_pool_waiting",
		"Goroutines blocked in Get waiting for a free searcher (bounded pools only).",
		func() float64 { return float64(p.Waiting()) })
	reg.GaugeFunc("roadnet_pool_prewarmed",
		"Searchers built ahead of traffic by Prewarm.",
		func() float64 { return float64(p.Prewarmed()) })
	reg.GaugeFunc("roadnet_pool_max_searchers",
		"Configured cap on live searchers (0 = unbounded).",
		func() float64 { return float64(p.MaxSearchers()) })
	h := reg.Histogram("roadnet_pool_get_wait_seconds",
		"Time a request waited for a searcher on an exhausted bounded pool. Unblocked checkouts are not observed.",
		metrics.LatencyBuckets)
	p.waitObs.Store(func(d time.Duration) { h.Observe(d.Seconds()) })
}

// InUse reports how many searchers are currently checked out.
func (p *Pool) InUse() int { return int(p.inUse.Load()) }

// Waiting reports how many goroutines are blocked in Get waiting for a
// searcher. Always zero on an unbounded pool.
func (p *Pool) Waiting() int { return int(p.waiting.Load()) }

// Prewarmed reports how many searchers Prewarm has built.
func (p *Pool) Prewarmed() int { return int(p.prewarmed.Load()) }

// Index returns the shared index the pool serves.
func (p *Pool) Index() Index { return p.idx }

// MaxSearchers returns the configured cap, or 0 when unbounded.
func (p *Pool) MaxSearchers() int { return int(p.max) }

// Get checks a searcher out of the pool. Return it with Put when done. On
// an unbounded pool a searcher that is never returned is simply garbage
// collected; on a bounded pool it permanently consumes one slot of the
// cap, and Get blocks when every searcher is checked out.
func (p *Pool) Get() Searcher {
	s, _ := p.GetContext(context.Background())
	return s
}

// GetContext is Get with cancellation: on a bounded pool whose searchers
// are all checked out, the wait for a free searcher aborts with ctx's
// error, so requests whose clients have already gone away do not queue
// behind live ones. On an unbounded pool (which never blocks) only an
// already-cancelled context aborts.
func (p *Pool) GetContext(ctx context.Context) (Searcher, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.max > 0 {
		select {
		case s := <-p.idle:
			p.inUse.Add(1)
			return s, nil
		default:
		}
		if p.created.Add(1) <= p.max {
			p.inUse.Add(1)
			return p.idx.NewSearcher(), nil
		}
		p.created.Add(-1)
		// The pool is exhausted: this request will block until a searcher
		// comes back. The wait is the pool-saturation signal operators
		// alert on, so it is both gauged (waiting) and, when metrics are
		// wired, timed into the get-wait histogram.
		obs, _ := p.waitObs.Load().(func(time.Duration))
		var start time.Time
		if obs != nil {
			start = time.Now()
		}
		p.waiting.Add(1)
		defer p.waiting.Add(-1)
		select {
		case s := <-p.idle:
			if obs != nil {
				obs(time.Since(start))
			}
			p.inUse.Add(1)
			return s, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s := p.pool.Get().(Searcher)
	p.inUse.Add(1)
	return s, nil
}

// Put returns a searcher obtained from Get to the pool.
func (p *Pool) Put(s Searcher) {
	p.inUse.Add(-1)
	p.park(s)
}

// park returns a searcher to the idle set without touching the occupancy
// accounting — the path shared by Put (which pairs with a Get) and
// Prewarm (whose searchers were never checked out).
func (p *Pool) park(s Searcher) {
	if p.max > 0 {
		p.idle <- s
		return
	}
	p.pool.Put(s)
}

// Prewarm creates up to n searchers ahead of time and parks them in the
// pool, so the first burst of concurrent requests does not pay one
// O(n)-array allocation each. On a bounded pool, n is clamped to the
// remaining headroom under the cap. It returns how many searchers were
// created.
//
// A bounded pool retains warmed searchers forever; an unbounded pool parks
// them in a sync.Pool, where the garbage collector may reclaim them after
// roughly two idle GC cycles — prewarming an unbounded pool helps a burst
// that arrives promptly, but only a bounded pool guarantees the warm set
// survives an idle period.
func (p *Pool) Prewarm(n int) int {
	warmed := make([]Searcher, 0, n)
	for i := 0; i < n; i++ {
		if p.max > 0 && p.created.Add(1) > p.max {
			p.created.Add(-1)
			break
		}
		warmed = append(warmed, p.idx.NewSearcher())
	}
	// Park them only after creating all of them: an immediate Put-per-Get
	// would let one searcher be handed back out and defeat the warming.
	// park, not Put: these searchers were never checked out, so they must
	// not drive the occupancy gauge negative.
	for _, s := range warmed {
		p.park(s)
	}
	p.prewarmed.Add(int64(len(warmed)))
	return len(warmed)
}

// Distance answers one distance query on a pooled searcher.
func (p *Pool) Distance(s, t graph.VertexID) int64 {
	sr := p.Get()
	d := sr.Distance(s, t)
	p.Put(sr)
	return d
}

// ShortestPath answers one shortest-path query on a pooled searcher.
func (p *Pool) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	sr := p.Get()
	path, d := sr.ShortestPath(s, t)
	p.Put(sr)
	return path, d
}

// DistanceContext answers one distance query on a pooled searcher with
// cancellation (see the Searcher cancellation contract). The searcher is
// returned to the pool even when the query aborts — an aborted searcher
// remains valid for reuse.
func (p *Pool) DistanceContext(ctx context.Context, s, t graph.VertexID) (int64, error) {
	sr, err := p.GetContext(ctx)
	if err != nil {
		return graph.Infinity, err
	}
	d, err := sr.DistanceContext(ctx, s, t)
	p.Put(sr)
	return d, err
}

// ShortestPathContext answers one shortest-path query on a pooled searcher
// with cancellation.
func (p *Pool) ShortestPathContext(ctx context.Context, s, t graph.VertexID) ([]graph.VertexID, int64, error) {
	sr, err := p.GetContext(ctx)
	if err != nil {
		return nil, graph.Infinity, err
	}
	path, d, err := sr.ShortestPathContext(ctx, s, t)
	p.Put(sr)
	return path, d, err
}

// BatchDistance computes the full sources×targets distance matrix with the
// best accelerator the index offers. table[i][j] is
// dist(sources[i], targets[j]), graph.Infinity for unreachable pairs.
//
// Dispatch, per the batch acceleration contract:
//   - CH: the bucket many-to-many algorithm of Knopp et al. — one upward
//     search per endpoint instead of |S|×|T| point-to-point queries (used
//     when both lists have more than one element; smaller shapes gain
//     nothing from the bucket pass).
//   - TNR, SILC: the technique's BatchDistancer fast path (one table-lookup
//     sweep with per-endpoint operands hoisted; target-wise walks with
//     shared path-suffix memoization).
//   - Everything else: per-pair DistanceContext on one pooled searcher.
//
// Every path polls ctx at bounded intervals; on cancellation the partial
// work is discarded and ctx's error returned. All paths return matrices
// bit-identical to per-pair queries.
//
// Every batch — the CH many-to-many included, even though it brings its
// own scratch state — holds one pool slot for its duration, so a bounded
// pool's cap also bounds how many batch matrices are computed at once.
func (p *Pool) BatchDistance(ctx context.Context, sources, targets []graph.VertexID) ([][]int64, error) {
	sr, err := p.GetContext(ctx)
	if err != nil {
		return nil, err
	}
	defer p.Put(sr)
	if h := HierarchyOf(p.idx); h != nil && len(sources) > 1 && len(targets) > 1 {
		return h.ManyToManyContext(ctx, sources, targets)
	}
	if bd, ok := sr.(BatchDistancer); ok {
		return bd.BatchDistance(ctx, sources, targets)
	}
	table := make([][]int64, len(sources))
	for i, s := range sources {
		row := make([]int64, len(targets))
		for j, t := range targets {
			// DistanceContext polls ctx itself, at worst every
			// cancel.Interval steps of its query loop.
			d, err := sr.DistanceContext(ctx, s, t)
			if err != nil {
				return nil, err
			}
			row[j] = d
		}
		table[i] = row
	}
	return table, nil
}
