package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"roadnet/internal/alt"
	"roadnet/internal/arcflags"
	"roadnet/internal/binio"
	"roadnet/internal/ch"
	"roadnet/internal/dijkstra"
	"roadnet/internal/graph"
	"roadnet/internal/pcpd"
	"roadnet/internal/silc"
	"roadnet/internal/tnr"
	"roadnet/internal/workload"
)

// Method identifies one of the evaluated techniques.
type Method string

// The evaluated methods. Dijkstra is the baseline of §3.1; the other four
// are the techniques compared throughout §4; ALT is the Appendix A
// extension.
const (
	MethodDijkstra Method = "dijkstra"
	MethodCH       Method = "ch"
	MethodTNR      Method = "tnr"
	MethodSILC     Method = "silc"
	MethodPCPD     Method = "pcpd"
	MethodALT      Method = "alt"
	MethodArcFlags Method = "arcflags"
)

// AllMethods lists the paper's five techniques in presentation order.
func AllMethods() []Method {
	return []Method{MethodDijkstra, MethodCH, MethodTNR, MethodSILC, MethodPCPD}
}

// Stats describes a built index.
type Stats struct {
	Method Method
	// BuildTime is the preprocessing wall-clock time (zero for the
	// baseline, which has no preprocessing).
	BuildTime time.Duration
	// IndexBytes is the in-memory size of the index structures, the
	// quantity of Figure 6(a).
	IndexBytes int64
}

// Index is the unified query interface every technique implements.
//
// Concurrency contract: the index data of every technique is immutable
// after BuildIndex/LoadIndex returns, so one Index may be shared by any
// number of goroutines — but the Distance and ShortestPath methods of the
// Index itself run on a single internal query context and are NOT safe for
// concurrent use. For concurrent serving, call NewSearcher once per
// goroutine (or use a Pool) and query through the Searchers.
type Index interface {
	// Method returns the technique's identifier.
	Method() Method
	// Distance answers a distance query (§2), returning graph.Infinity for
	// unreachable pairs.
	Distance(s, t graph.VertexID) int64
	// ShortestPath answers a shortest path query (§2), returning the
	// vertex sequence and the path length, or (nil, graph.Infinity).
	ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64)
	// NewSearcher returns a fresh query context sharing the index's
	// immutable data. Searchers from distinct NewSearcher calls may be
	// used concurrently; a single Searcher may not.
	NewSearcher() Searcher
	// Stats reports preprocessing time and space.
	Stats() Stats
}

// Searcher is a per-goroutine query context over a shared Index: it owns
// all mutable search state (distance labels, generation counters, heaps),
// while the index data it reads is immutable. A Searcher is reusable
// across any number of queries with zero steady-state allocations on the
// distance hot path, but is not safe for concurrent use — create one per
// goroutine, or hand them out through a Pool.
// Cancellation contract: the Context variants poll ctx at bounded
// intervals (every cancel.Interval settled vertices, path hops, or
// recursion steps — whichever unit the technique's query loop advances in)
// and abort with ctx's error. Every technique polls, including the
// bidirectional-Dijkstra fallback inside TNR, so a cancelled request stops
// burning CPU within a bounded number of steps no matter which index
// serves it. A query issued on an already-cancelled context aborts before
// doing any work, and an aborted Searcher remains valid for reuse.
type Searcher interface {
	// Distance answers a distance query, returning graph.Infinity for
	// unreachable pairs.
	Distance(s, t graph.VertexID) int64
	// ShortestPath answers a shortest path query, returning the vertex
	// sequence and the path length, or (nil, graph.Infinity).
	ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64)
	// DistanceContext is Distance with cancellation: it polls ctx at
	// bounded intervals and aborts with its error.
	DistanceContext(ctx context.Context, s, t graph.VertexID) (int64, error)
	// ShortestPathContext is ShortestPath with cancellation.
	ShortestPathContext(ctx context.Context, s, t graph.VertexID) ([]graph.VertexID, int64, error)
}

// BatchDistancer is the per-technique batch acceleration contract: a
// Searcher additionally implements it when the technique can answer a full
// sources×targets distance matrix faster than |S|×|T| independent
// point-to-point queries. TNR implements it with one table-lookup sweep
// whose per-endpoint access-node operands are computed once per endpoint,
// and SILC with target-wise walks that memoize shared path suffixes; CH
// batches are routed to the hierarchy's bucket many-to-many algorithm by
// Pool.BatchDistance before this interface is consulted.
//
// table[i][j] must be dist(sources[i], targets[j]) with graph.Infinity for
// unreachable pairs, bit-identical to per-pair DistanceContext calls, and
// implementations must poll ctx at bounded intervals, returning its error
// on cancellation.
type BatchDistancer interface {
	BatchDistance(ctx context.Context, sources, targets []graph.VertexID) ([][]int64, error)
}

// ErrIndexTooLarge is returned when an index exceeds the configured memory
// ceiling, mirroring the paper's 24 GB main-memory rule.
var ErrIndexTooLarge = errors.New("core: index exceeds the memory ceiling")

// Config tunes index construction for the evaluation.
type Config struct {
	// MaxIndexBytes drops indexes larger than this (0 = no ceiling). The
	// paper's analogue is its 24 GB rule.
	MaxIndexBytes int64
	// TNR holds the TNR grid configuration.
	TNR tnr.Options
	// CH holds the CH configuration.
	CH ch.Options
	// SILC holds the SILC configuration.
	SILC silc.Options
	// PCPD holds the PCPD configuration.
	PCPD pcpd.Options
	// ALT holds the ALT configuration.
	ALT alt.Options
	// ArcFlags holds the arc-flags configuration.
	ArcFlags arcflags.Options
	// Hierarchy optionally shares a prebuilt CH across methods (used by
	// the harness so TNR preprocessing does not rebuild it).
	Hierarchy *ch.Hierarchy
}

// BuildIndex constructs the index for a method under cfg.
func BuildIndex(method Method, g *graph.Graph, cfg Config) (Index, error) {
	var ix Index
	switch method {
	case MethodDijkstra:
		ix = &dijkstraIndex{g: g, bi: dijkstra.NewBidirectional(g)}
	case MethodCH:
		h := cfg.Hierarchy
		if h == nil {
			h = ch.Build(g, cfg.CH)
		}
		ix = &chIndex{h: h}
	case MethodTNR:
		opts := cfg.TNR
		if opts.Hierarchy == nil {
			opts.Hierarchy = cfg.Hierarchy
		}
		t, err := tnr.Build(g, opts)
		if err != nil {
			return nil, err
		}
		ix = &tnrIndex{t: t}
	case MethodSILC:
		s, err := silc.Build(g, cfg.SILC)
		if err != nil {
			return nil, err
		}
		ix = &silcIndex{s: s}
	case MethodPCPD:
		p, err := pcpd.Build(g, cfg.PCPD)
		if err != nil {
			return nil, err
		}
		ix = &pcpdIndex{p: p}
	case MethodALT:
		ix = &altIndex{a: alt.Build(g, cfg.ALT)}
	case MethodArcFlags:
		ix = &arcFlagsIndex{a: arcflags.Build(g, cfg.ArcFlags)}
	default:
		return nil, fmt.Errorf("core: unknown method %q", method)
	}
	if cfg.MaxIndexBytes > 0 && ix.Stats().IndexBytes > cfg.MaxIndexBytes {
		return nil, fmt.Errorf("%w: %s needs %d bytes, ceiling %d",
			ErrIndexTooLarge, method, ix.Stats().IndexBytes, cfg.MaxIndexBytes)
	}
	return ix, nil
}

// Measurement is one timing row of a figure: a method's average query time
// on one query set.
type Measurement struct {
	Method  Method
	SetName string
	Queries int
	// AvgMicros is the mean per-query wall time in microseconds, the unit
	// of every running-time figure in the paper.
	AvgMicros float64
}

// MeasureDistance times distance queries over a query set.
func MeasureDistance(ix Index, qs workload.QuerySet) Measurement {
	start := time.Now()
	var sink int64
	for _, p := range qs.Pairs {
		sink += ix.Distance(p.S, p.T)
	}
	elapsed := time.Since(start)
	_ = sink
	return Measurement{
		Method:    ix.Method(),
		SetName:   qs.Name,
		Queries:   len(qs.Pairs),
		AvgMicros: micros(elapsed, len(qs.Pairs)),
	}
}

// MeasurePath times shortest-path queries over a query set.
func MeasurePath(ix Index, qs workload.QuerySet) Measurement {
	start := time.Now()
	var sink int
	for _, p := range qs.Pairs {
		path, _ := ix.ShortestPath(p.S, p.T)
		sink += len(path)
	}
	elapsed := time.Since(start)
	_ = sink
	return Measurement{
		Method:    ix.Method(),
		SetName:   qs.Name,
		Queries:   len(qs.Pairs),
		AvgMicros: micros(elapsed, len(qs.Pairs)),
	}
}

func micros(d time.Duration, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(d.Microseconds()) / float64(n)
}

// --- adapters ---

type dijkstraIndex struct {
	g  *graph.Graph
	bi *dijkstra.Bidirectional
}

func (ix *dijkstraIndex) Method() Method { return MethodDijkstra }
func (ix *dijkstraIndex) Distance(s, t graph.VertexID) int64 {
	return ix.bi.Query(s, t).Dist
}
func (ix *dijkstraIndex) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	return ix.bi.ShortestPath(s, t)
}
func (ix *dijkstraIndex) NewSearcher() Searcher { return dijkstra.NewBidirectional(ix.g) }
func (ix *dijkstraIndex) Stats() Stats {
	return Stats{Method: MethodDijkstra}
}

type chIndex struct {
	h *ch.Hierarchy
	// s is the default searcher backing the Index's own query methods,
	// created lazily so loading an index allocates nothing per-vertex
	// until the single-goroutine convenience API is actually used (pools
	// and NewSearcher never touch it). Lazy without a lock is fine: the
	// Index's own query methods are single-goroutine by contract.
	s *ch.Searcher
	// backing is the flat container a mapped hierarchy's arrays alias
	// (LoadIndexFile); nil otherwise. See CloseIndex.
	backing *binio.FlatFile
}

func (ix *chIndex) def() *ch.Searcher {
	if ix.s == nil {
		ix.s = ix.h.NewSearcher()
	}
	return ix.s
}

func (ix *chIndex) closeBacking() error {
	if ix.backing == nil {
		return nil
	}
	return ix.backing.Close()
}

func (ix *chIndex) Method() Method { return MethodCH }
func (ix *chIndex) Distance(s, t graph.VertexID) int64 {
	return ix.def().Distance(s, t)
}
func (ix *chIndex) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	return ix.def().ShortestPath(s, t)
}
func (ix *chIndex) NewSearcher() Searcher { return ix.h.NewSearcher() }
func (ix *chIndex) Stats() Stats {
	return Stats{Method: MethodCH, BuildTime: ix.h.BuildTime(), IndexBytes: ix.h.SizeBytes()}
}

// Hierarchy exposes the underlying CH for reuse by the harness.
func (ix *chIndex) Hierarchy() *ch.Hierarchy { return ix.h }

// HierarchyOf extracts the contraction hierarchy from a CH index built by
// BuildIndex, for sharing with TNR preprocessing.
func HierarchyOf(ix Index) *ch.Hierarchy {
	if c, ok := ix.(*chIndex); ok {
		return c.h
	}
	return nil
}

type tnrIndex struct {
	t       *tnr.Index
	backing *binio.FlatFile // see chIndex.backing
}

func (ix *tnrIndex) closeBacking() error {
	if ix.backing == nil {
		return nil
	}
	return ix.backing.Close()
}

func (ix *tnrIndex) Method() Method { return MethodTNR }
func (ix *tnrIndex) Distance(s, t graph.VertexID) int64 {
	return ix.t.Distance(s, t)
}
func (ix *tnrIndex) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	return ix.t.ShortestPath(s, t)
}
func (ix *tnrIndex) NewSearcher() Searcher { return ix.t.NewSearcher() }
func (ix *tnrIndex) Stats() Stats {
	return Stats{Method: MethodTNR, BuildTime: ix.t.BuildTime(), IndexBytes: ix.t.SizeBytes()}
}

// TNROf extracts the TNR index (for fallback statistics).
func TNROf(ix Index) *tnr.Index {
	if t, ok := ix.(*tnrIndex); ok {
		return t.t
	}
	return nil
}

// SILCOf extracts the SILC index from a SILC-method Index, exposing its
// extras (NearestK distance browsing); nil for other methods.
func SILCOf(ix Index) *silc.Index {
	if s, ok := ix.(*silcIndex); ok {
		return s.s
	}
	return nil
}

type silcIndex struct {
	s       *silc.Index
	backing *binio.FlatFile // see chIndex.backing
}

func (ix *silcIndex) closeBacking() error {
	if ix.backing == nil {
		return nil
	}
	return ix.backing.Close()
}

func (ix *silcIndex) Method() Method { return MethodSILC }
func (ix *silcIndex) Distance(s, t graph.VertexID) int64 {
	return ix.s.Distance(s, t)
}
func (ix *silcIndex) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	return ix.s.ShortestPath(s, t)
}

// SILC queries only read the immutable interval tables, so the index is
// its own concurrency-safe searcher.
func (ix *silcIndex) NewSearcher() Searcher { return ix.s }
func (ix *silcIndex) Stats() Stats {
	return Stats{Method: MethodSILC, BuildTime: ix.s.BuildTime(), IndexBytes: ix.s.SizeBytes()}
}

type pcpdIndex struct{ p *pcpd.Index }

func (ix *pcpdIndex) Method() Method { return MethodPCPD }
func (ix *pcpdIndex) Distance(s, t graph.VertexID) int64 {
	return ix.p.Distance(s, t)
}
func (ix *pcpdIndex) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	return ix.p.ShortestPath(s, t)
}

// PCPD queries only read the immutable decomposition tree, so the index is
// its own concurrency-safe searcher.
func (ix *pcpdIndex) NewSearcher() Searcher { return ix.p }
func (ix *pcpdIndex) Stats() Stats {
	return Stats{Method: MethodPCPD, BuildTime: ix.p.BuildTime(), IndexBytes: ix.p.SizeBytes()}
}

type altIndex struct{ a *alt.Index }

func (ix *altIndex) Method() Method { return MethodALT }
func (ix *altIndex) Distance(s, t graph.VertexID) int64 {
	return ix.a.Distance(s, t)
}
func (ix *altIndex) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	return ix.a.ShortestPath(s, t)
}
func (ix *altIndex) NewSearcher() Searcher { return ix.a.NewSearcher() }
func (ix *altIndex) Stats() Stats {
	return Stats{Method: MethodALT, BuildTime: ix.a.BuildTime(), IndexBytes: ix.a.SizeBytes()}
}

type arcFlagsIndex struct{ a *arcflags.Index }

func (ix *arcFlagsIndex) Method() Method { return MethodArcFlags }
func (ix *arcFlagsIndex) Distance(s, t graph.VertexID) int64 {
	return ix.a.Distance(s, t)
}
func (ix *arcFlagsIndex) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	return ix.a.ShortestPath(s, t)
}
func (ix *arcFlagsIndex) NewSearcher() Searcher { return ix.a.NewSearcher() }
func (ix *arcFlagsIndex) Stats() Stats {
	return Stats{Method: MethodArcFlags, BuildTime: ix.a.BuildTime(), IndexBytes: ix.a.SizeBytes()}
}
