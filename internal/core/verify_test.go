package core_test

import (
	"errors"
	"os"
	"testing"

	"roadnet/internal/binio"
	"roadnet/internal/core"
	"roadnet/internal/testutil"
)

// TestLoadIndexFileVerified checks the default-verify contract: loads
// report Verified, WithoutVerify loads do not, and a flipped byte in the
// index fails the default load on both the heap and mmap paths.
func TestLoadIndexFileVerified(t *testing.T) {
	g := testutil.SmallRoad(300, 919)
	built, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := saveToFile(t, built, "ch.idx")

	for _, preferMmap := range []bool{false, true} {
		ix, info, err := core.LoadIndexFile(core.MethodCH, path, g, preferMmap)
		if err != nil {
			t.Fatalf("preferMmap=%v: %v", preferMmap, err)
		}
		if !info.Verified {
			t.Errorf("preferMmap=%v: default load not Verified", preferMmap)
		}
		core.CloseIndex(ix)

		ix, info, err = core.LoadIndexFile(core.MethodCH, path, g, preferMmap, binio.WithoutVerify())
		if err != nil {
			t.Fatalf("preferMmap=%v WithoutVerify: %v", preferMmap, err)
		}
		if info.Verified {
			t.Errorf("preferMmap=%v: WithoutVerify load claims Verified", preferMmap)
		}
		core.CloseIndex(ix)
	}

	// Flip the last payload byte (the tail of the final section): the
	// default load must refuse it, WithoutVerify must still open it (the
	// structural checks cannot see a payload flip).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, preferMmap := range []bool{false, true} {
		if _, _, err := core.LoadIndexFile(core.MethodCH, path, g, preferMmap); !errors.Is(err, binio.ErrCorrupt) {
			t.Errorf("preferMmap=%v: corrupt load err = %v, want ErrCorrupt", preferMmap, err)
		}
		ix, info, err := core.LoadIndexFile(core.MethodCH, path, g, preferMmap, binio.WithoutVerify())
		if err != nil {
			t.Fatalf("preferMmap=%v: WithoutVerify corrupt load: %v", preferMmap, err)
		}
		if info.Verified {
			t.Errorf("preferMmap=%v: corrupt WithoutVerify load claims Verified", preferMmap)
		}
		core.CloseIndex(ix)
	}
}
