package core_test

import (
	"sync"
	"testing"
	"testing/quick"

	"roadnet/internal/ch"
	"roadnet/internal/core"
	"roadnet/internal/dijkstra"
	"roadnet/internal/gen"
	"roadnet/internal/graph"
	"roadnet/internal/testutil"
	"roadnet/internal/tnr"
)

// TestPropertyAllMethodsAgree drives testing/quick over random graph
// shapes: for any seeded random connected graph, every technique must
// return exactly Dijkstra's distances for all sampled pairs.
func TestPropertyAllMethodsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	methods := append(core.AllMethods(), core.MethodALT)
	check := func(seed int64, sizeSel, extraSel uint8) bool {
		n := 20 + int(sizeSel)%120
		extra := int(extraSel) % (2 * n)
		g := gen.RandomConnected(n, extra, 64, seed)
		ctx := dijkstra.NewContext(g)
		pairs := testutil.SamplePairs(g, 40, seed+1)
		for _, m := range methods {
			ix, err := core.BuildIndex(m, g, core.Config{TNR: tnr.Options{GridSize: 8}})
			if err != nil {
				t.Logf("seed %d: build %s: %v", seed, m, err)
				return false
			}
			for _, p := range pairs {
				if ix.Distance(p[0], p[1]) != ctx.Distance(p[0], p[1]) {
					t.Logf("seed %d: %s disagrees on (%d, %d)", seed, m, p[0], p[1])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPathsAreValid checks, for random road networks, that every
// technique returns structurally valid paths whose weights match the
// reported distance.
func TestPropertyPathsAreValid(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	methods := append(core.AllMethods(), core.MethodALT)
	check := func(seed int64) bool {
		g := testutil.SmallRoad(250, seed)
		ctx := dijkstra.NewContext(g)
		pairs := testutil.SamplePairs(g, 20, seed+3)
		for _, m := range methods {
			ix, err := core.BuildIndex(m, g, core.Config{TNR: tnr.Options{GridSize: 8}})
			if err != nil {
				return false
			}
			for _, p := range pairs {
				path, d := ix.ShortestPath(p[0], p[1])
				want := ctx.Distance(p[0], p[1])
				if want >= graph.Infinity {
					if path != nil {
						return false
					}
					continue
				}
				if d != want || len(path) == 0 || path[0] != p[0] || path[len(path)-1] != p[1] {
					return false
				}
				if dijkstra.PathWeight(g, path) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDistanceSymmetry: on undirected graphs dist(s, t) must equal
// dist(t, s) for every technique.
func TestPropertyDistanceSymmetry(t *testing.T) {
	g := testutil.SmallRoad(300, 601)
	methods := append(core.AllMethods(), core.MethodALT)
	var indexes []core.Index
	for _, m := range methods {
		ix, err := core.BuildIndex(m, g, core.Config{TNR: tnr.Options{GridSize: 8}})
		if err != nil {
			t.Fatal(err)
		}
		indexes = append(indexes, ix)
	}
	check := func(a, b uint16) bool {
		s := graph.VertexID(int(a) % g.NumVertices())
		u := graph.VertexID(int(b) % g.NumVertices())
		for _, ix := range indexes {
			if ix.Distance(s, u) != ix.Distance(u, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTriangleInequality: distances returned by an exact index
// must satisfy d(a, c) <= d(a, b) + d(b, c).
func TestPropertyTriangleInequality(t *testing.T) {
	g := testutil.SmallRoad(300, 607)
	ix, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(x, y, z uint16) bool {
		a := graph.VertexID(int(x) % g.NumVertices())
		b := graph.VertexID(int(y) % g.NumVertices())
		c := graph.VertexID(int(z) % g.NumVertices())
		dab, dbc, dac := ix.Distance(a, b), ix.Distance(b, c), ix.Distance(a, c)
		if dab >= graph.Infinity || dbc >= graph.Infinity {
			return true
		}
		return dac <= dab+dbc
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCHConcurrentSearchers verifies that one immutable Hierarchy serves
// multiple goroutines through per-goroutine searchers.
func TestCHConcurrentSearchers(t *testing.T) {
	g := testutil.SmallRoad(900, 613)
	h := ch.Build(g, ch.Options{})
	ctx := dijkstra.NewContext(g)
	pairs := testutil.SamplePairs(g, 64, 5)
	want := make([]int64, len(pairs))
	for i, p := range pairs {
		want[i] = ctx.Distance(p[0], p[1])
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := h.NewSearcher()
			for rep := 0; rep < 20; rep++ {
				for i, p := range pairs {
					if got := s.Distance(p[0], p[1]); got != want[i] {
						select {
						case errCh <- errMismatch(p[0], p[1], got, want[i]):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

type mismatchError struct {
	s, t      graph.VertexID
	got, want int64
}

func (e mismatchError) Error() string {
	return "concurrent searcher mismatch"
}

func errMismatch(s, t graph.VertexID, got, want int64) error {
	return mismatchError{s, t, got, want}
}
