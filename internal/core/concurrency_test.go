package core

import (
	"fmt"
	"sync"
	"testing"

	"roadnet/internal/dijkstra"
	"roadnet/internal/graph"
	"roadnet/internal/testutil"
)

// concurrencyMethods lists every technique under the concurrent-query
// contract: the paper's five plus the ALT and arc-flags extensions.
var concurrencyMethods = []Method{
	MethodDijkstra, MethodCH, MethodTNR, MethodSILC, MethodPCPD,
	MethodALT, MethodArcFlags,
}

// oracleDistances precomputes ground-truth distances for the pairs with a
// sequential Dijkstra.
func oracleDistances(g *graph.Graph, pairs [][2]graph.VertexID) []int64 {
	ctx := dijkstra.NewContext(g)
	want := make([]int64, len(pairs))
	for i, p := range pairs {
		want[i] = ctx.Distance(p[0], p[1])
	}
	return want
}

// checkQueries runs every pair through sr and compares with the oracle;
// the first mismatch is reported on errs.
func checkQueries(g *graph.Graph, sr Searcher, pairs [][2]graph.VertexID, want []int64, errs chan<- error) {
	for i, p := range pairs {
		if d := sr.Distance(p[0], p[1]); d != want[i] {
			errs <- fmt.Errorf("dist(%d, %d) = %d, want %d", p[0], p[1], d, want[i])
			return
		}
		path, d := sr.ShortestPath(p[0], p[1])
		if d != want[i] {
			errs <- fmt.Errorf("path dist(%d, %d) = %d, want %d", p[0], p[1], d, want[i])
			return
		}
		if want[i] >= graph.Infinity {
			if path != nil {
				errs <- fmt.Errorf("path(%d, %d): non-nil path for unreachable pair", p[0], p[1])
				return
			}
			continue
		}
		if len(path) == 0 || path[0] != p[0] || path[len(path)-1] != p[1] {
			errs <- fmt.Errorf("path(%d, %d): bad endpoints in %v", p[0], p[1], path)
			return
		}
		if w := dijkstra.PathWeight(g, path); w != want[i] {
			errs <- fmt.Errorf("path(%d, %d): edges sum to %d, want %d", p[0], p[1], w, want[i])
			return
		}
	}
	errs <- nil
}

// TestConcurrentSearchers fires concurrent Distance and ShortestPath
// queries from 8 goroutines — each with its own Searcher — against every
// technique and checks all answers against the sequential Dijkstra oracle.
// Run under -race, this is the proof of the searcher-per-goroutine
// contract.
func TestConcurrentSearchers(t *testing.T) {
	g := testutil.SmallRoad(400, 907)
	pairs := testutil.SamplePairs(g, 40, 911)
	want := oracleDistances(g, pairs)
	const workers = 8
	for _, m := range concurrencyMethods {
		t.Run(string(m), func(t *testing.T) {
			idx, err := BuildIndex(m, g, Config{})
			if err != nil {
				t.Fatal(err)
			}
			errs := make(chan error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					checkQueries(g, idx.NewSearcher(), pairs, want, errs)
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestConcurrentPool runs the same oracle check through one shared Pool:
// goroutines check searchers in and out per query batch, so recycled
// searchers must reset cleanly between owners.
func TestConcurrentPool(t *testing.T) {
	g := testutil.SmallRoad(400, 937)
	pairs := testutil.SamplePairs(g, 40, 941)
	want := oracleDistances(g, pairs)
	const workers = 8
	for _, m := range concurrencyMethods {
		t.Run(string(m), func(t *testing.T) {
			idx, err := BuildIndex(m, g, Config{})
			if err != nil {
				t.Fatal(err)
			}
			pool := NewPool(idx)
			errs := make(chan error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i, p := range pairs {
						if d := pool.Distance(p[0], p[1]); d != want[i] {
							errs <- fmt.Errorf("pooled dist(%d, %d) = %d, want %d", p[0], p[1], d, want[i])
							return
						}
						if _, d := pool.ShortestPath(p[0], p[1]); d != want[i] {
							errs <- fmt.Errorf("pooled path dist(%d, %d) = %d, want %d", p[0], p[1], d, want[i])
							return
						}
					}
					errs <- nil
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestSearcherReuseMatchesFresh is the searcher-reuse property test: one
// pooled searcher reused across many random queries must return
// bit-identical distances and paths to a searcher constructed fresh for
// each query. This catches stale-generation and missing-reset bugs in the
// gen-counter reuse trick.
func TestSearcherReuseMatchesFresh(t *testing.T) {
	g := testutil.SmallRoad(400, 947)
	pairs := testutil.SamplePairs(g, 120, 953)
	for _, m := range concurrencyMethods {
		t.Run(string(m), func(t *testing.T) {
			idx, err := BuildIndex(m, g, Config{})
			if err != nil {
				t.Fatal(err)
			}
			pool := NewPool(idx)
			reused := pool.Get() // stays checked out for the whole run
			for _, p := range pairs {
				fresh := idx.NewSearcher()
				wantD := fresh.Distance(p[0], p[1])
				if gotD := reused.Distance(p[0], p[1]); gotD != wantD {
					t.Fatalf("reused dist(%d, %d) = %d, fresh = %d", p[0], p[1], gotD, wantD)
				}
				wantPath, wantPD := fresh.ShortestPath(p[0], p[1])
				gotPath, gotPD := reused.ShortestPath(p[0], p[1])
				if gotPD != wantPD {
					t.Fatalf("reused path dist(%d, %d) = %d, fresh = %d", p[0], p[1], gotPD, wantPD)
				}
				if len(gotPath) != len(wantPath) {
					t.Fatalf("reused path(%d, %d) = %v, fresh = %v", p[0], p[1], gotPath, wantPath)
				}
				for i := range gotPath {
					if gotPath[i] != wantPath[i] {
						t.Fatalf("reused path(%d, %d) = %v, fresh = %v", p[0], p[1], gotPath, wantPath)
					}
				}
			}
			pool.Put(reused)
		})
	}
}

// TestPoolRecyclesSearchers checks the steady-state behaviour the server
// relies on: sequential Get/Put cycles reuse the same searcher instead of
// constructing new ones.
func TestPoolRecyclesSearchers(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes recycling under the race detector")
	}
	g := testutil.SmallRoad(400, 967)
	idx, err := BuildIndex(MethodCH, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(idx)
	s1 := pool.Get()
	pool.Put(s1)
	recycled := false
	// sync.Pool gives no hard guarantee on any single cycle; a handful of
	// attempts makes a miss vanishingly unlikely without GC pressure.
	for i := 0; i < 100 && !recycled; i++ {
		s2 := pool.Get()
		recycled = s2 == s1
		pool.Put(s2)
	}
	if !recycled {
		t.Error("pool never recycled a returned searcher across 100 Get/Put cycles")
	}
}
