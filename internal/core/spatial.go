package core

// The spatial query tier: an R-tree over the vertex coordinates plus the
// network-distance services built on it. This is the layer behind the
// server's /v1/nearest (snap a coordinate to a vertex), /v1/knn (network
// k-nearest neighbors — the "nearest restaurant at driving distance"
// workload of the paper's Appendix A) and /v1/within (network range).
//
// Geometry only ever *prunes* here, it never decides: k-NN answers are
// ranked by exact network distance and are bit-identical whether they come
// from SILC distance browsing seeded with R-tree candidates or from the
// bounded-Dijkstra fallback, and a range query's geometric pre-filter only
// narrows which vertices the bounded search must prove.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"roadnet/internal/dijkstra"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
	"roadnet/internal/rtree"
)

// Neighbor is one result of a network k-NN or range query.
type Neighbor struct {
	V    graph.VertexID
	Dist int64
}

// SpatialOption configures a SpatialLocator.
type SpatialOption func(*spatialConfig)

type spatialConfig struct {
	nodeCap int
}

// WithRTreeNodeCapacity sets the R-tree node capacity (default
// rtree.DefaultMaxEntries).
func WithRTreeNodeCapacity(m int) SpatialOption {
	return func(c *spatialConfig) { c.nodeCap = m }
}

// SpatialLocator snaps coordinates to vertices and answers network k-NN
// and range queries over one graph. The R-tree is immutable after
// construction and every method is safe for concurrent use: per-query
// state lives in rtree.Browsers and in a pool of Dijkstra contexts.
type SpatialLocator struct {
	g    *graph.Graph
	tree *rtree.Tree
	dctx sync.Pool // *dijkstra.Context for the bounded-search paths

	// k-NN dispatch counters: how many KNearest calls ran the SILC
	// distance-browsing fast path (seeded) versus the bounded-Dijkstra
	// fallback. The answers are bit-identical either way; the ratio tells
	// an operator whether the index they deployed is actually serving the
	// fast path (see KNNCounts).
	knnSeeded   atomic.Int64
	knnDijkstra atomic.Int64
}

// KNNCounts reports how KNearest queries were dispatched: seeded through
// SILC distance browsing, or answered by the bounded-Dijkstra fallback.
// Safe for concurrent use.
func (l *SpatialLocator) KNNCounts() (seeded, dijkstra int64) {
	return l.knnSeeded.Load(), l.knnDijkstra.Load()
}

// NewSpatialLocator bulk-loads (STR) an R-tree over g's vertex
// coordinates.
func NewSpatialLocator(g *graph.Graph, opts ...SpatialOption) *SpatialLocator {
	var cfg spatialConfig
	for _, o := range opts {
		o(&cfg)
	}
	coords := g.Coords()
	ents := make([]rtree.Entry, len(coords))
	for v, p := range coords {
		ents[v] = rtree.Entry{P: p, ID: int32(v)}
	}
	tree := rtree.BulkLoad(ents, rtree.Options{MaxEntries: cfg.nodeCap})
	return newSpatialLocator(g, tree)
}

// NewSpatialLocatorFromTree wraps a prebuilt (typically mmap-loaded)
// R-tree. The tree must index exactly g's vertices: one entry per vertex,
// entry IDs equal to vertex ids.
func NewSpatialLocatorFromTree(g *graph.Graph, tree *rtree.Tree) (*SpatialLocator, error) {
	if tree.Len() != g.NumVertices() {
		return nil, fmt.Errorf("core: r-tree indexes %d points, graph has %d vertices",
			tree.Len(), g.NumVertices())
	}
	return newSpatialLocator(g, tree), nil
}

func newSpatialLocator(g *graph.Graph, tree *rtree.Tree) *SpatialLocator {
	l := &SpatialLocator{g: g, tree: tree}
	l.dctx.New = func() any { return dijkstra.NewContext(g) }
	return l
}

// Graph returns the graph the locator serves.
func (l *SpatialLocator) Graph() *graph.Graph { return l.g }

// Tree returns the underlying R-tree (for serialization and stats).
func (l *SpatialLocator) Tree() *rtree.Tree { return l.tree }

// NearestVertex snaps p to the geometrically nearest vertex (Euclidean;
// ties broken by smaller vertex id), or -1 on an empty graph.
func (l *SpatialLocator) NearestVertex(p geom.Point) graph.VertexID {
	e, _, ok := l.tree.Nearest(p)
	if !ok {
		return -1
	}
	return graph.VertexID(e.ID)
}

// NearestVertices returns the k geometrically nearest vertices to p in
// (Euclidean distance, id) order — the geometric candidates that seed
// network k-NN pruning.
func (l *SpatialLocator) NearestVertices(p geom.Point, k int) []graph.VertexID {
	ents := l.tree.NearestK(p, k)
	out := make([]graph.VertexID, len(ents))
	for i, e := range ents {
		out[i] = graph.VertexID(e.ID)
	}
	return out
}

// VerticesWithinRadius returns the vertices within Euclidean distance
// radius of p, in ascending id order.
func (l *SpatialLocator) VerticesWithinRadius(p geom.Point, radius int64) []graph.VertexID {
	var out []graph.VertexID
	l.tree.SearchRadius(p, radius, func(e rtree.Entry, _ int64) bool {
		out = append(out, graph.VertexID(e.ID))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KNearest returns the k vertices nearest to s by network distance,
// excluding s, ordered by (distance, id). When idx is a SILC index built
// with EnableNearest the query uses distance browsing seeded with R-tree
// geometric candidates (the seeds tighten the k-th-candidate bound before
// any region is scanned); otherwise it falls back to a bounded Dijkstra.
// Both paths rank by (distance, id), so the answer is bit-identical across
// techniques. ctx cancels mid-query.
func (l *SpatialLocator) KNearest(ctx context.Context, idx Index, s graph.VertexID, k int) ([]Neighbor, error) {
	if n := l.g.NumVertices(); k > n-1 {
		k = n - 1
	}
	if k <= 0 {
		return nil, nil
	}
	if sx := SILCOf(idx); sx != nil && sx.NearestEnabled() {
		l.knnSeeded.Add(1)
		// k+1 geometric candidates: s itself is among them and is skipped.
		seeds := l.NearestVertices(l.g.Coord(s), k+1)
		res, _, err := sx.NearestKPruned(ctx, s, k, seeds)
		if err != nil {
			return nil, err
		}
		out := make([]Neighbor, len(res))
		for i, nb := range res {
			out[i] = Neighbor{V: nb.V, Dist: nb.Dist}
		}
		return out, nil
	}
	l.knnDijkstra.Add(1)
	c := l.dctx.Get().(*dijkstra.Context)
	defer l.dctx.Put(c)
	vs, err := c.KNearest(ctx, s, k)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(vs))
	for i, v := range vs {
		out[i] = Neighbor{V: v, Dist: c.Dist(v)}
	}
	return out, nil
}

// WithinOptions tunes a network range query.
type WithinOptions struct {
	// EuclidRadius, when positive, intersects the answer with the
	// Euclidean ball of that radius around s's coordinate. The R-tree
	// resolves the ball first and the bounded search then runs in
	// target mode, stopping as soon as every geometric candidate is
	// settled — usually long before the full network ball is explored.
	EuclidRadius int64
	// MaxResults, when positive, truncates the (distance, id)-sorted
	// answer to that many neighbors; the second return value reports
	// whether truncation happened.
	MaxResults int
}

// Within returns the vertices whose network distance from s is at most
// maxDist (excluding s), ordered by (distance, id) ascending, via a
// bounded Dijkstra that stops once the queue minimum exceeds maxDist.
// maxDist must be positive; the result is empty otherwise.
func (l *SpatialLocator) Within(ctx context.Context, s graph.VertexID, maxDist int64, opt WithinOptions) ([]Neighbor, bool, error) {
	if maxDist <= 0 {
		return nil, false, nil
	}
	c := l.dctx.Get().(*dijkstra.Context)
	defer l.dctx.Put(c)
	var out []Neighbor
	if opt.EuclidRadius > 0 {
		cands := l.VerticesWithinRadius(l.g.Coord(s), opt.EuclidRadius)
		if len(cands) == 0 {
			return nil, false, nil
		}
		if _, err := c.RunContext(ctx, []graph.VertexID{s},
			dijkstra.Options{MaxDist: maxDist, Targets: cands}); err != nil {
			return nil, false, err
		}
		for _, v := range cands {
			if v == s {
				continue
			}
			// Any candidate whose (tentative) distance is within maxDist
			// was necessarily settled — the search only stops with
			// unsettled vertices strictly beyond maxDist — so Dist is
			// final here.
			if d := c.Dist(v); d <= maxDist {
				out = append(out, Neighbor{V: v, Dist: d})
			}
		}
	} else {
		if _, err := c.RunContext(ctx, []graph.VertexID{s},
			dijkstra.Options{MaxDist: maxDist}); err != nil {
			return nil, false, err
		}
		for _, v := range c.Settled() {
			if v == s {
				continue
			}
			out = append(out, Neighbor{V: v, Dist: c.Dist(v)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].V < out[j].V
	})
	if opt.MaxResults > 0 && len(out) > opt.MaxResults {
		return out[:opt.MaxResults], true, nil
	}
	return out, false, nil
}
