package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"roadnet/internal/graph"
	"roadnet/internal/testutil"
)

// buildAll builds one index per technique over g, sharing the CH hierarchy
// the way the harness does.
func buildAll(t *testing.T, g *graph.Graph) map[Method]Index {
	t.Helper()
	out := make(map[Method]Index, len(concurrencyMethods))
	var cfg Config
	for _, m := range concurrencyMethods {
		ix, err := BuildIndex(m, g, cfg)
		if err != nil {
			t.Fatalf("BuildIndex(%s): %v", m, err)
		}
		if m == MethodCH {
			cfg.Hierarchy = HierarchyOf(ix)
		}
		out[m] = ix
	}
	return out
}

// TestSearcherContextCancelledAllMethods checks the cancellation contract
// on every technique: a query issued on an already-cancelled context (and
// on an already-expired deadline) aborts with the context's error before
// doing any work, and the aborted searcher remains valid for reuse.
func TestSearcherContextCancelledAllMethods(t *testing.T) {
	g := testutil.SmallRoad(900, 951)
	pairs := testutil.SamplePairs(g, 10, 641)
	want := oracleDistances(g, pairs)
	for m, ix := range buildAll(t, g) {
		sr := ix.NewSearcher()

		cancelled, cancelFn := context.WithCancel(context.Background())
		cancelFn()
		if _, err := sr.DistanceContext(cancelled, pairs[0][0], pairs[0][1]); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: DistanceContext on cancelled ctx: err = %v, want context.Canceled", m, err)
		}
		if _, _, err := sr.ShortestPathContext(cancelled, pairs[0][0], pairs[0][1]); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: ShortestPathContext on cancelled ctx: err = %v, want context.Canceled", m, err)
		}
		// Trivial s == t queries are covered by the contract too: no
		// technique's short-circuit may report success on a dead context.
		if _, err := sr.DistanceContext(cancelled, pairs[0][0], pairs[0][0]); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: DistanceContext(s, s) on cancelled ctx: err = %v, want context.Canceled", m, err)
		}
		if _, _, err := sr.ShortestPathContext(cancelled, pairs[0][0], pairs[0][0]); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: ShortestPathContext(s, s) on cancelled ctx: err = %v, want context.Canceled", m, err)
		}

		expired, cancelExpired := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		if _, err := sr.DistanceContext(expired, pairs[0][0], pairs[0][1]); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: DistanceContext past deadline: err = %v, want context.DeadlineExceeded", m, err)
		}
		cancelExpired()

		// An aborted searcher must answer correctly afterwards.
		for i, p := range pairs {
			d, err := sr.DistanceContext(context.Background(), p[0], p[1])
			if err != nil {
				t.Fatalf("%s: DistanceContext after abort: %v", m, err)
			}
			if d != want[i] {
				t.Errorf("%s: dist(%d, %d) = %d after abort, want %d", m, p[0], p[1], d, want[i])
			}
		}
	}
}

// TestPoolContextQueries covers the pool's context conveniences and the
// generic (non-accelerated) batch path under cancellation.
func TestPoolContextQueries(t *testing.T) {
	g := testutil.SmallRoad(900, 951)
	ix, err := BuildIndex(MethodDijkstra, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(ix)
	p := testutil.SamplePairs(g, 1, 659)[0]
	d, err := pool.DistanceContext(context.Background(), p[0], p[1])
	if err != nil {
		t.Fatal(err)
	}
	if path, pd, err := pool.ShortestPathContext(context.Background(), p[0], p[1]); err != nil || pd != d || (d < graph.Infinity && path == nil) {
		t.Fatalf("ShortestPathContext = (%v, %d, %v), want distance %d", path, pd, err, d)
	}

	cancelled, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	if _, err := pool.DistanceContext(cancelled, p[0], p[1]); !errors.Is(err, context.Canceled) {
		t.Errorf("pool.DistanceContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := pool.BatchDistance(cancelled, []graph.VertexID{p[0]}, []graph.VertexID{p[1]}); !errors.Is(err, context.Canceled) {
		t.Errorf("pool.BatchDistance on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestPoolBatchDistanceMatchesPerPair checks the dispatcher end to end for
// every technique: whatever accelerator serves the batch, the matrix must
// equal per-pair distances.
func TestPoolBatchDistanceMatchesPerPair(t *testing.T) {
	g := testutil.SmallRoad(900, 951)
	var sources, targets []graph.VertexID
	for _, p := range testutil.SamplePairs(g, 8, 661) {
		sources = append(sources, p[0])
		targets = append(targets, p[1])
	}
	for m, ix := range buildAll(t, g) {
		pool := NewPool(ix)
		table, err := pool.BatchDistance(context.Background(), sources, targets)
		if err != nil {
			t.Fatalf("%s: BatchDistance: %v", m, err)
		}
		sr := ix.NewSearcher()
		for i, s := range sources {
			for j, tgt := range targets {
				if want := sr.Distance(s, tgt); table[i][j] != want {
					t.Errorf("%s: batch dist(%d, %d) = %d, per-pair = %d", m, s, tgt, table[i][j], want)
				}
			}
		}
	}
}
