package core_test

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/dijkstra"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
	"roadnet/internal/rtree"
	"roadnet/internal/silc"
	"roadnet/internal/testutil"
	"roadnet/internal/tnr"
)

// oracleKNN is the ground truth for network k-NN: a fresh Dijkstra
// context's bounded search, ranked by (distance, id).
func oracleKNN(g *graph.Graph, s graph.VertexID, k int) []core.Neighbor {
	c := dijkstra.NewContext(g)
	vs, err := c.KNearest(context.Background(), s, k)
	if err != nil {
		panic(err)
	}
	out := make([]core.Neighbor, len(vs))
	for i, v := range vs {
		out[i] = core.Neighbor{V: v, Dist: c.Dist(v)}
	}
	return out
}

// TestKNearestBitIdenticalAcrossTechniques checks the acceptance
// criterion: /v1/knn's engine answers bit-identically to the
// bounded-Dijkstra oracle on randomized graphs, whatever index backs it —
// including the SILC distance-browsing fast path, seeded and unseeded.
func TestKNearestBitIdenticalAcrossTechniques(t *testing.T) {
	g := testutil.SmallRoad(300, 8801)
	loc := core.NewSpatialLocator(g)
	rng := rand.New(rand.NewSource(42))

	methods := append(core.AllMethods(), core.MethodALT, core.MethodArcFlags)
	indexes := make(map[string]core.Index)
	for _, m := range methods {
		ix, err := core.BuildIndex(m, g, core.Config{TNR: tnr.Options{GridSize: 8}})
		if err != nil {
			t.Fatalf("build %s: %v", m, err)
		}
		indexes[string(m)] = ix
	}
	// The accelerated path: SILC with per-region nearest bounds.
	ixNearest, err := core.BuildIndex(core.MethodSILC, g, core.Config{
		SILC: silc.Options{EnableNearest: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sx := core.SILCOf(ixNearest); sx == nil || !sx.NearestEnabled() {
		t.Fatal("EnableNearest index does not report NearestEnabled")
	}
	indexes["silc+nearest"] = ixNearest

	for trial := 0; trial < 25; trial++ {
		s := graph.VertexID(rng.Intn(g.NumVertices()))
		k := rng.Intn(12) + 1
		want := oracleKNN(g, s, k)
		for name, ix := range indexes {
			got, err := loc.KNearest(context.Background(), ix, s, k)
			if err != nil {
				t.Fatalf("%s: KNearest(%d, %d): %v", name, s, k, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: KNearest(%d, %d) returned %d neighbors, oracle %d\n got %v\nwant %v",
					name, s, k, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: KNearest(%d, %d)[%d] = %+v, oracle %+v\n got %v\nwant %v",
						name, s, k, i, got[i], want[i], got, want)
				}
			}
		}
	}

	// k past the vertex count clamps.
	got, err := loc.KNearest(context.Background(), indexes["silc+nearest"], 0, g.NumVertices()+50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > g.NumVertices()-1 {
		t.Fatalf("unclamped k returned %d neighbors", len(got))
	}
}

func TestWithinMatchesOracle(t *testing.T) {
	g := testutil.SmallRoad(300, 8802)
	loc := core.NewSpatialLocator(g)
	rng := rand.New(rand.NewSource(7))
	c := dijkstra.NewContext(g)

	for trial := 0; trial < 20; trial++ {
		s := graph.VertexID(rng.Intn(g.NumVertices()))
		// A radius around the median neighbor distance so answers are
		// non-trivial but bounded.
		oracle10 := oracleKNN(g, s, 10)
		if len(oracle10) == 0 {
			continue
		}
		radius := oracle10[len(oracle10)-1].Dist + int64(rng.Intn(5))

		c.Run([]graph.VertexID{s}, dijkstra.Options{})
		var want []core.Neighbor
		for v := 0; v < g.NumVertices(); v++ {
			vid := graph.VertexID(v)
			if vid == s {
				continue
			}
			if d := c.Dist(vid); d <= radius {
				want = append(want, core.Neighbor{V: vid, Dist: d})
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Dist != want[j].Dist {
				return want[i].Dist < want[j].Dist
			}
			return want[i].V < want[j].V
		})

		got, truncated, err := loc.Within(context.Background(), s, radius, core.WithinOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if truncated {
			t.Fatal("uncapped Within reported truncation")
		}
		checkNeighbors(t, "within", got, want)

		// Geometric pre-filter: answer must be the intersection with the
		// Euclidean ball, computed here by linear scan.
		euclid := int64(rng.Intn(40) + 1)
		sq := euclid * euclid
		var wantGeo []core.Neighbor
		for _, nb := range want {
			if rtree.DistSq(g.Coord(s), g.Coord(nb.V)) <= sq {
				wantGeo = append(wantGeo, nb)
			}
		}
		gotGeo, _, err := loc.Within(context.Background(), s, radius,
			core.WithinOptions{EuclidRadius: euclid})
		if err != nil {
			t.Fatal(err)
		}
		checkNeighbors(t, "within+prefilter", gotGeo, wantGeo)

		// MaxResults truncates the sorted prefix.
		if len(want) > 3 {
			capped, trunc, err := loc.Within(context.Background(), s, radius,
				core.WithinOptions{MaxResults: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !trunc {
				t.Fatal("capped Within did not report truncation")
			}
			checkNeighbors(t, "within+cap", capped, want[:3])
		}
	}

	// Non-positive radius answers empty.
	if got, _, err := loc.Within(context.Background(), 0, 0, core.WithinOptions{}); err != nil || len(got) != 0 {
		t.Fatalf("radius 0: got %v, %v", got, err)
	}
}

func checkNeighbors(t *testing.T, what string, got, want []core.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbors, want %d\n got %v\nwant %v", what, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %+v, want %+v", what, i, got[i], want[i])
		}
	}
}

func TestNearestVertexMatchesScan(t *testing.T) {
	g := testutil.SmallRoad(200, 8803)
	loc := core.NewSpatialLocator(g)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		p := geom.Point{X: rng.Int31n(2000) - 1000, Y: rng.Int31n(2000) - 1000}
		best := graph.VertexID(-1)
		bestD := int64(1) << 62
		for v := 0; v < g.NumVertices(); v++ {
			if d := rtree.DistSq(p, g.Coord(graph.VertexID(v))); d < bestD {
				best, bestD = graph.VertexID(v), d
			}
		}
		if got := loc.NearestVertex(p); got != best {
			t.Fatalf("NearestVertex(%+v) = %d (distSq %d), scan found %d (distSq %d)",
				p, got, rtree.DistSq(p, g.Coord(got)), best, bestD)
		}
	}
}

func TestSpatialCancellation(t *testing.T) {
	g := testutil.SmallRoad(300, 8804)
	loc := core.NewSpatialLocator(g)
	ix, err := core.BuildIndex(core.MethodDijkstra, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loc.KNearest(ctx, ix, 0, 5); err == nil {
		t.Error("KNearest on cancelled context succeeded")
	}
	if _, _, err := loc.Within(ctx, 0, 1<<40, core.WithinOptions{}); err == nil {
		t.Error("Within on cancelled context succeeded")
	}
}

// TestSpatialConcurrent hammers one locator from many goroutines; run
// under -race this checks the read-only concurrency contract.
func TestSpatialConcurrent(t *testing.T) {
	g := testutil.SmallRoad(200, 8805)
	loc := core.NewSpatialLocator(g)
	ix, err := core.BuildIndex(core.MethodSILC, g, core.Config{
		SILC: silc.Options{EnableNearest: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := oracleKNN(g, 7, 5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				got, err := loc.KNearest(context.Background(), ix, 7, 5)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range got {
					if got[j] != want[j] {
						t.Errorf("worker %d: neighbor %d = %+v, want %+v", w, j, got[j], want[j])
						return
					}
				}
				loc.NearestVertex(geom.Point{X: int32(i), Y: int32(w)})
				if _, _, err := loc.Within(context.Background(), graph.VertexID(i), 100,
					core.WithinOptions{EuclidRadius: 50}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestSpatialLocatorFromTree(t *testing.T) {
	g := testutil.SmallRoad(100, 8806)
	base := core.NewSpatialLocator(g)
	loc, err := core.NewSpatialLocatorFromTree(g, base.Tree())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loc.NearestVertex(geom.Point{X: 5, Y: 5}), base.NearestVertex(geom.Point{X: 5, Y: 5}); got != want {
		t.Fatalf("FromTree NearestVertex = %d, want %d", got, want)
	}
	small := rtree.BulkLoad([]rtree.Entry{{ID: 0}}, rtree.Options{})
	if _, err := core.NewSpatialLocatorFromTree(g, small); err == nil {
		t.Error("mismatched tree accepted")
	}
}
