//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// sync.Pool deliberately randomizes Get/Put under the race detector, so
// tests asserting pool recycling must skip themselves.
const raceEnabled = true
