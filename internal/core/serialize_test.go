package core_test

import (
	"bytes"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/testutil"
	"roadnet/internal/tnr"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	g := testutil.SmallRoad(400, 901)
	pairs := testutil.SamplePairs(g, 100, 161)
	for _, m := range []core.Method{core.MethodCH, core.MethodTNR, core.MethodSILC} {
		ix, err := core.BuildIndex(m, g, core.Config{TNR: tnr.Options{GridSize: 8}})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := core.SaveIndex(ix, &buf); err != nil {
			t.Fatalf("save %s: %v", m, err)
		}
		loaded, err := core.LoadIndex(m, bytes.NewReader(buf.Bytes()), g)
		if err != nil {
			t.Fatalf("load %s: %v", m, err)
		}
		if loaded.Method() != m {
			t.Errorf("loaded method %s, want %s", loaded.Method(), m)
		}
		testutil.CheckDistancesAgainstDijkstra(t, g, pairs, loaded.Distance)
	}
}

func TestSaveUnsupportedMethods(t *testing.T) {
	g := testutil.SmallRoad(200, 903)
	for _, m := range []core.Method{core.MethodDijkstra, core.MethodPCPD, core.MethodALT, core.MethodArcFlags} {
		ix, err := core.BuildIndex(m, g, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := core.SaveIndex(ix, &buf); err == nil {
			t.Errorf("%s: expected serialization-unsupported error", m)
		}
		if _, err := core.LoadIndex(m, bytes.NewReader(nil), g); err == nil {
			t.Errorf("%s: expected load-unsupported error", m)
		}
	}
}

func TestLoadWrongMethodStream(t *testing.T) {
	g := testutil.SmallRoad(200, 905)
	chIx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.SaveIndex(chIx, &buf); err != nil {
		t.Fatal(err)
	}
	// A CH stream fed to the SILC loader must fail on the magic check.
	if _, err := core.LoadIndex(core.MethodSILC, bytes.NewReader(buf.Bytes()), g); err == nil {
		t.Error("cross-method load must fail")
	}
}
