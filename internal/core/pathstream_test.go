package core_test

import (
	"context"
	"sync"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
	"roadnet/internal/testutil"
	"roadnet/internal/tnr"
)

// drain collects an OpenPath result into a slice, or nil for unreachable.
func drain(t *testing.T, it graph.PathIterator, err error) []graph.VertexID {
	t.Helper()
	if err != nil {
		t.Fatalf("OpenPath: %v", err)
	}
	if it == nil {
		return nil
	}
	path, err := graph.AppendPath(nil, it)
	if err != nil {
		t.Fatalf("stream aborted: %v", err)
	}
	return path
}

// streamConfigs lists every index configuration with a distinct path
// pipeline: the seven methods plus the TNR variants that exercise the
// Dijkstra fallback tail and the flawed-access materializing branch.
func streamConfigs() map[string]struct {
	method core.Method
	cfg    core.Config
} {
	return map[string]struct {
		method core.Method
		cfg    core.Config
	}{
		"dijkstra":     {core.MethodDijkstra, core.Config{}},
		"ch":           {core.MethodCH, core.Config{}},
		"tnr":          {core.MethodTNR, core.Config{TNR: tnr.Options{GridSize: 8}}},
		"tnr-dijkstra": {core.MethodTNR, core.Config{TNR: tnr.Options{GridSize: 8, Fallback: tnr.FallbackDijkstra}}},
		"tnr-flawed":   {core.MethodTNR, core.Config{TNR: tnr.Options{GridSize: 8, Access: tnr.AccessFlawedBast}}},
		"silc":         {core.MethodSILC, core.Config{}},
		"pcpd":         {core.MethodPCPD, core.Config{}},
		"alt":          {core.MethodALT, core.Config{}},
		"arcflags":     {core.MethodArcFlags, core.Config{}},
	}
}

// TestOpenPathBitIdenticalToShortestPath is the streaming oracle: for every
// technique (and every TNR variant with a distinct pipeline), draining the
// lazy iterator must reproduce the materialized ShortestPathContext answer
// vertex for vertex, including the trivial from == to path.
func TestOpenPathBitIdenticalToShortestPath(t *testing.T) {
	g := testutil.SmallRoad(400, 601)
	pairs := testutil.SamplePairs(g, 120, 613)
	pairs = append(pairs, [2]graph.VertexID{7, 7}, [2]graph.VertexID{0, 0})
	ctx := context.Background()
	for name, tc := range streamConfigs() {
		t.Run(name, func(t *testing.T) {
			ix, err := core.BuildIndex(tc.method, g, tc.cfg)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			srStream := ix.NewSearcher()
			srMat := ix.NewSearcher()
			for _, p := range pairs {
				s, tt := p[0], p[1]
				it, dStream, err := core.OpenPath(ctx, srStream, s, tt)
				streamed := drain(t, it, err)
				want, dWant, err := srMat.ShortestPathContext(ctx, s, tt)
				if err != nil {
					t.Fatalf("ShortestPathContext(%d, %d): %v", s, tt, err)
				}
				if dStream != dWant && !(want == nil && dStream >= graph.Infinity) {
					t.Fatalf("dist(%d, %d): streamed %d, materialized %d", s, tt, dStream, dWant)
				}
				if len(streamed) != len(want) {
					t.Fatalf("path(%d, %d): streamed %d vertices, materialized %d\nstreamed: %v\nmaterialized: %v",
						s, tt, len(streamed), len(want), streamed, want)
				}
				for i := range want {
					if streamed[i] != want[i] {
						t.Fatalf("path(%d, %d): vertex %d differs: streamed %d, materialized %d",
							s, tt, i, streamed[i], want[i])
					}
				}
			}
		})
	}
}

// TestOpenPathUnreachable checks the (nil, Infinity, nil) contract on a
// disconnected graph for every technique that builds on one.
func TestOpenPathUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.AddVertex(geom.Point{X: int32(i), Y: int32(i % 2)})
	}
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	ctx := context.Background()
	for name, tc := range streamConfigs() {
		t.Run(name, func(t *testing.T) {
			ix, err := core.BuildIndex(tc.method, g, tc.cfg)
			if err != nil {
				t.Skipf("method does not build on a disconnected graph: %v", err)
			}
			sr := ix.NewSearcher()
			it, d, err := core.OpenPath(ctx, sr, 0, 3)
			if err != nil {
				t.Fatalf("OpenPath: %v", err)
			}
			if it != nil || d < graph.Infinity {
				t.Errorf("unreachable pair: it = %v, d = %d; want nil iterator and Infinity", it, d)
			}
			// The searcher must remain usable after the unreachable answer.
			it, d, err = core.OpenPath(ctx, sr, 0, 1)
			if path := drain(t, it, err); len(path) != 2 || d != 1 {
				t.Errorf("follow-up path = %v dist %d, want [0 1] dist 1", path, d)
			}
		})
	}
}

// TestOpenPathCancelledBeforeStart checks that an already-cancelled context
// aborts OpenPath itself, per the cancellation contract.
func TestOpenPathCancelledBeforeStart(t *testing.T) {
	g := testutil.SmallRoad(200, 617)
	cctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	for name, tc := range streamConfigs() {
		t.Run(name, func(t *testing.T) {
			ix, err := core.BuildIndex(tc.method, g, tc.cfg)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			it, _, err := core.OpenPath(cctx, ix.NewSearcher(), 0, graph.VertexID(g.NumVertices()-1))
			if err == nil {
				t.Errorf("pre-cancelled OpenPath: it = %v, err = nil; want context error", it)
			}
		})
	}
}

// TestOpenPathMidStreamCancellation cancels while the iterator is being
// drained on a path long enough to cross the polling interval, and expects
// the stream to stop with the context's error rather than run to the end.
// The line graph makes the path length (1200 vertices) deterministic.
func TestOpenPathMidStreamCancellation(t *testing.T) {
	const n = 1200
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddVertex(geom.Point{X: int32(i), Y: 0})
	}
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	for _, method := range []core.Method{core.MethodCH, core.MethodSILC} {
		t.Run(string(method), func(t *testing.T) {
			ix, err := core.BuildIndex(method, g, core.Config{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			cctx, cancelFn := context.WithCancel(context.Background())
			defer cancelFn()
			it, d, err := core.OpenPath(cctx, ix.NewSearcher(), 0, n-1)
			if err != nil || it == nil {
				t.Fatalf("OpenPath: it = %v, d = %d, err = %v", it, d, err)
			}
			emitted := 0
			for {
				if _, ok := it.Next(); !ok {
					break
				}
				emitted++
				if emitted == 10 {
					cancelFn()
				}
			}
			if it.Err() == nil {
				t.Fatalf("stream of %d vertices completed despite cancellation after 10", emitted)
			}
			if emitted >= n {
				t.Errorf("iterator emitted all %d vertices before noticing cancellation", emitted)
			}
		})
	}
}

// TestOpenPathConcurrentStreaming runs many goroutines streaming through
// per-goroutine searchers over one shared index, under -race. Each
// goroutine checks its streamed paths against its own materialized answers.
func TestOpenPathConcurrentStreaming(t *testing.T) {
	g := testutil.SmallRoad(300, 619)
	pairs := testutil.SamplePairs(g, 40, 631)
	ctx := context.Background()
	for _, method := range []core.Method{core.MethodCH, core.MethodTNR, core.MethodSILC} {
		t.Run(string(method), func(t *testing.T) {
			ix, err := core.BuildIndex(method, g, core.Config{TNR: tnr.Options{GridSize: 8}})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					srStream := ix.NewSearcher()
					srMat := ix.NewSearcher()
					for _, p := range pairs {
						it, dStream, err := core.OpenPath(ctx, srStream, p[0], p[1])
						if err != nil {
							errs <- err
							return
						}
						var streamed []graph.VertexID
						if it != nil {
							if streamed, err = graph.AppendPath(nil, it); err != nil {
								errs <- err
								return
							}
						}
						want, dWant, err := srMat.ShortestPathContext(ctx, p[0], p[1])
						if err != nil {
							errs <- err
							return
						}
						if dStream != dWant || len(streamed) != len(want) {
							t.Errorf("pair (%d, %d): streamed (%d vertices, dist %d) != materialized (%d, %d)",
								p[0], p[1], len(streamed), dStream, len(want), dWant)
							return
						}
						for i := range want {
							if streamed[i] != want[i] {
								t.Errorf("pair (%d, %d): vertex %d differs", p[0], p[1], i)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("worker: %v", err)
			}
		})
	}
}
