package core

import (
	"errors"
	"testing"

	"roadnet/internal/testutil"
)

// fakeBackedIndex stands in for a file-backed index whose backing release
// fails — the munmap-error path CloseIndex must not swallow.
type fakeBackedIndex struct {
	Index
	err   error
	calls int
}

func (f *fakeBackedIndex) closeBacking() error {
	f.calls++
	return f.err
}

func TestCloseIndexPropagatesBackingError(t *testing.T) {
	boom := errors.New("munmap: injected failure")
	f := &fakeBackedIndex{err: boom}
	if err := CloseIndex(f); !errors.Is(err, boom) {
		t.Fatalf("CloseIndex = %v, want the backing error", err)
	}
	if f.calls != 1 {
		t.Fatalf("closeBacking ran %d times, want 1", f.calls)
	}
}

func TestCloseIndexNoopForBuiltIndex(t *testing.T) {
	g := testutil.Figure1()
	ix, err := BuildIndex(MethodDijkstra, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CloseIndex(ix); err != nil {
		t.Fatalf("CloseIndex on a built index = %v, want nil", err)
	}
}
