package core_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"roadnet/internal/binio"
	"roadnet/internal/ch"
	"roadnet/internal/core"
	"roadnet/internal/testutil"
	"roadnet/internal/tnr"
)

// saveToFile writes ix with core.SaveIndex and returns the file path.
func saveToFile(t *testing.T, ix core.Index, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SaveIndex(ix, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadIndexFileOracle is the zero-copy correctness oracle: for each
// serializable technique it compares the freshly built index against the
// same index loaded back from disk through both load paths (heap and mmap)
// and requires bit-identical distances and paths on every sampled pair.
func TestLoadIndexFileOracle(t *testing.T) {
	g := testutil.SmallRoad(900, 911)
	pairs := testutil.SamplePairs(g, 200, 163)
	pathPairs := testutil.SamplePairs(g, 50, 165)
	for _, m := range []core.Method{core.MethodCH, core.MethodTNR, core.MethodSILC} {
		built, err := core.BuildIndex(m, g, core.Config{TNR: tnr.Options{GridSize: 8}})
		if err != nil {
			t.Fatal(err)
		}
		path := saveToFile(t, built, string(m)+".idx")

		for _, preferMmap := range []bool{false, true} {
			loaded, info, err := core.LoadIndexFile(m, path, g, preferMmap)
			if err != nil {
				t.Fatalf("%s preferMmap=%v: %v", m, preferMmap, err)
			}
			if !info.Flat {
				t.Errorf("%s: SaveIndex output not recognised as flat", m)
			}
			wantMapped := preferMmap && binio.MmapSupported
			if info.Mapped != wantMapped {
				t.Errorf("%s preferMmap=%v: Mapped=%v, want %v", m, preferMmap, info.Mapped, wantMapped)
			}
			if info.SizeBytes <= 0 {
				t.Errorf("%s: SizeBytes=%d, want > 0", m, info.SizeBytes)
			}
			for _, p := range pairs {
				if got, want := loaded.Distance(p[0], p[1]), built.Distance(p[0], p[1]); got != want {
					t.Fatalf("%s preferMmap=%v: dist(%d,%d)=%d, built says %d", m, preferMmap, p[0], p[1], got, want)
				}
			}
			for _, p := range pathPairs {
				gotPath, gotD := loaded.ShortestPath(p[0], p[1])
				wantPath, wantD := built.ShortestPath(p[0], p[1])
				if gotD != wantD || !reflect.DeepEqual(gotPath, wantPath) {
					t.Fatalf("%s preferMmap=%v: path(%d,%d) differs from built index", m, preferMmap, p[0], p[1])
				}
			}
			if err := core.CloseIndex(loaded); err != nil {
				t.Errorf("%s: CloseIndex: %v", m, err)
			}
		}
	}
}

// TestLoadIndexFileV1Fallback feeds LoadIndexFile a legacy v1 stream file:
// it must fall back to the copying decoder and still answer correctly.
func TestLoadIndexFileV1Fallback(t *testing.T) {
	g := testutil.SmallRoad(400, 913)
	h := ch.Build(g, ch.Options{})
	path := filepath.Join(t.TempDir(), "ch-v1.idx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SaveV1(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, info, err := core.LoadIndexFile(core.MethodCH, path, g, true)
	if err != nil {
		t.Fatal(err)
	}
	defer core.CloseIndex(loaded)
	if info.Flat || info.Mapped {
		t.Errorf("v1 file reported Flat=%v Mapped=%v, want false/false", info.Flat, info.Mapped)
	}
	if info.Mode() != "heap(v1)" {
		t.Errorf("Mode()=%q, want heap(v1)", info.Mode())
	}
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 100, 167), loaded.Distance)
}

// TestLoadIndexFileErrors covers the failure paths: missing file, garbage
// content, and a flat file of the wrong technique.
func TestLoadIndexFileErrors(t *testing.T) {
	g := testutil.SmallRoad(200, 915)

	if _, _, err := core.LoadIndexFile(core.MethodCH, filepath.Join(t.TempDir(), "absent.idx"), g, true); err == nil {
		t.Error("missing file must fail")
	}

	garbage := filepath.Join(t.TempDir(), "garbage.idx")
	if err := os.WriteFile(garbage, []byte("not an index at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.LoadIndexFile(core.MethodCH, garbage, g, true); err == nil {
		t.Error("garbage file must fail")
	}

	chIx, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	chPath := saveToFile(t, chIx, "ch.idx")
	if _, _, err := core.LoadIndexFile(core.MethodSILC, chPath, g, true); err == nil {
		t.Error("cross-method flat load must fail")
	}
	if _, _, err := core.LoadIndexFile(core.MethodDijkstra, chPath, g, true); err == nil {
		t.Error("non-serializable method must fail")
	}
}

// TestMappedSearchersShareIndex checks that searchers over an mmap-loaded
// index work and agree with the convenience methods.
func TestMappedSearchersShareIndex(t *testing.T) {
	g := testutil.SmallRoad(400, 917)
	built, err := core.BuildIndex(core.MethodCH, g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := saveToFile(t, built, "ch.idx")
	loaded, _, err := core.LoadIndexFile(core.MethodCH, path, g, true)
	if err != nil {
		t.Fatal(err)
	}
	defer core.CloseIndex(loaded)
	s := loaded.NewSearcher()
	for _, p := range testutil.SamplePairs(g, 100, 169) {
		if got, want := s.Distance(p[0], p[1]), loaded.Distance(p[0], p[1]); got != want {
			t.Fatalf("searcher dist(%d,%d)=%d, index says %d", p[0], p[1], got, want)
		}
	}
}
