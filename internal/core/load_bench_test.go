package core_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"roadnet/internal/binio"
	"roadnet/internal/ch"
	"roadnet/internal/core"
	"roadnet/internal/graph"
	"roadnet/internal/testutil"
)

// loadFixture builds one CH index over a mid-sized network and saves it to
// a temp file exactly once per test binary, so -count N repeats of the load
// benchmarks do not pay the build again.
var loadFixture struct {
	once sync.Once
	g    *graph.Graph
	path string
	err  error
}

func loadFixturePath(b *testing.B) (*graph.Graph, string) {
	b.Helper()
	loadFixture.once.Do(func() {
		loadFixture.g = testutil.SmallRoad(20000, 921)
		h := ch.Build(loadFixture.g, ch.Options{})
		dir, err := os.MkdirTemp("", "roadnet-loadbench")
		if err != nil {
			loadFixture.err = err
			return
		}
		loadFixture.path = filepath.Join(dir, "ch.idx")
		f, err := os.Create(loadFixture.path)
		if err != nil {
			loadFixture.err = err
			return
		}
		defer f.Close()
		loadFixture.err = h.Save(f)
	})
	if loadFixture.err != nil {
		b.Fatal(loadFixture.err)
	}
	return loadFixture.g, loadFixture.path
}

// benchmarkIndexLoad measures one full LoadIndexFile+CloseIndex cycle per
// iteration. The heap/mmap pair feeds the load_speedup ratio gate in
// BENCH_baseline.json: mmap loads must stay an order of magnitude cheaper
// than heap loads because they touch only the header and section table.
// Verification is skipped on both sides — the gate measures the zero-copy
// parse, and the default checksum sweep would touch every page and turn
// the ratio into a CRC benchmark.
func benchmarkIndexLoad(b *testing.B, preferMmap bool) {
	g, path := loadFixturePath(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, _, err := core.LoadIndexFile(core.MethodCH, path, g, preferMmap, binio.WithoutVerify())
		if err != nil {
			b.Fatal(err)
		}
		if err := core.CloseIndex(ix); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexLoadHeap(b *testing.B) { benchmarkIndexLoad(b, false) }

func BenchmarkIndexLoadMmap(b *testing.B) { benchmarkIndexLoad(b, true) }
