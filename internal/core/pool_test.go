package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roadnet/internal/graph"
	"roadnet/internal/testutil"
)

// countingIndex is a stub Index whose NewSearcher calls are counted, so
// pool-bounding tests can observe exactly how many searchers exist.
type countingIndex struct {
	created atomic.Int64
}

type stubSearcher struct{}

func (stubSearcher) Distance(s, t graph.VertexID) int64 { return 0 }
func (stubSearcher) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	return []graph.VertexID{s, t}, 0
}
func (stubSearcher) DistanceContext(ctx context.Context, s, t graph.VertexID) (int64, error) {
	return 0, nil
}
func (stubSearcher) ShortestPathContext(ctx context.Context, s, t graph.VertexID) ([]graph.VertexID, int64, error) {
	return []graph.VertexID{s, t}, 0, nil
}

func (ix *countingIndex) Method() Method { return MethodDijkstra }
func (ix *countingIndex) Distance(s, t graph.VertexID) int64 {
	return 0
}
func (ix *countingIndex) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	return []graph.VertexID{s, t}, 0
}
func (ix *countingIndex) NewSearcher() Searcher {
	ix.created.Add(1)
	return stubSearcher{}
}
func (ix *countingIndex) Stats() Stats { return Stats{Method: MethodDijkstra} }

// TestPoolBoundedNeverExceedsCap hammers a bounded pool from many
// goroutines and checks the cap is a hard bound on created searchers.
func TestPoolBoundedNeverExceedsCap(t *testing.T) {
	ix := &countingIndex{}
	const maxLive = 4
	pool := NewPool(ix, WithMaxSearchers(maxLive))
	if pool.MaxSearchers() != maxLive {
		t.Fatalf("MaxSearchers = %d, want %d", pool.MaxSearchers(), maxLive)
	}
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sr := pool.Get()
				_ = sr.Distance(0, 1)
				pool.Put(sr)
			}
		}()
	}
	wg.Wait()
	if n := ix.created.Load(); n > maxLive {
		t.Fatalf("bounded pool created %d searchers, cap %d", n, maxLive)
	}
}

// TestPoolBoundedGetBlocks checks that Get blocks when every searcher is
// checked out and resumes when one is returned.
func TestPoolBoundedGetBlocks(t *testing.T) {
	ix := &countingIndex{}
	pool := NewPool(ix, WithMaxSearchers(1))
	sr := pool.Get()
	obtained := make(chan Searcher)
	go func() { obtained <- pool.Get() }()
	select {
	case <-obtained:
		t.Fatal("Get returned while the only searcher was checked out")
	case <-time.After(20 * time.Millisecond):
	}
	pool.Put(sr)
	select {
	case sr2 := <-obtained:
		pool.Put(sr2)
	case <-time.After(2 * time.Second):
		t.Fatal("Get did not resume after Put")
	}
	if n := ix.created.Load(); n != 1 {
		t.Fatalf("created %d searchers, want 1", n)
	}
}

// TestPoolBoundedGetContextAborts checks that the wait for a free searcher
// on an exhausted bounded pool honors the context: a request whose client
// is gone stops queueing instead of parking behind live requests.
func TestPoolBoundedGetContextAborts(t *testing.T) {
	ix := &countingIndex{}
	pool := NewPool(ix, WithMaxSearchers(1))
	sr := pool.Get()

	expired, cancelExpired := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancelExpired()
	if _, err := pool.GetContext(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("GetContext on exhausted pool: err = %v, want context.DeadlineExceeded", err)
	}

	cancelled, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	if _, err := pool.DistanceContext(cancelled, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("DistanceContext on exhausted pool: err = %v, want context.Canceled", err)
	}

	pool.Put(sr)
	sr2, err := pool.GetContext(context.Background())
	if err != nil {
		t.Fatalf("GetContext after Put: %v", err)
	}
	pool.Put(sr2)
	if n := ix.created.Load(); n != 1 {
		t.Fatalf("created %d searchers, want 1 (aborted waits must not leak slots)", n)
	}
}

// TestPoolPrewarm checks that Prewarm builds searchers ahead of time, is
// clamped to the cap of a bounded pool, and that warmed searchers are
// reused rather than recreated.
func TestPoolPrewarm(t *testing.T) {
	ix := &countingIndex{}
	pool := NewPool(ix, WithMaxSearchers(4))
	if n := pool.Prewarm(8); n != 4 {
		t.Fatalf("Prewarm(8) on cap-4 pool = %d, want 4", n)
	}
	if n := ix.created.Load(); n != 4 {
		t.Fatalf("created %d searchers after prewarm, want 4", n)
	}
	for i := 0; i < 10; i++ {
		sr := pool.Get()
		pool.Put(sr)
	}
	if n := ix.created.Load(); n != 4 {
		t.Fatalf("created %d searchers after reuse, want 4 (warmed searchers must be reused)", n)
	}

	unbounded := &countingIndex{}
	pool2 := NewPool(unbounded)
	if n := pool2.Prewarm(5); n != 5 {
		t.Fatalf("Prewarm(5) on unbounded pool = %d, want 5", n)
	}
	if n := unbounded.created.Load(); n != 5 {
		t.Fatalf("unbounded pool created %d searchers during prewarm, want 5", n)
	}
}

// TestPoolBoundedServesExactAnswers runs a real index behind a bounded,
// pre-warmed pool under concurrency and checks answers against the oracle.
func TestPoolBoundedServesExactAnswers(t *testing.T) {
	g := testutil.SmallRoad(900, 951)
	ix, err := BuildIndex(MethodCH, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(ix, WithMaxSearchers(3))
	pool.Prewarm(3)
	pairs := testutil.SamplePairs(g, 16, 673)
	want := oracleDistances(g, pairs)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			checkQueries(g, poolSearcher{pool}, pairs, want, errs)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// poolSearcher adapts a Pool to the Searcher interface for checkQueries:
// every query checks a searcher out and back in, maximizing contention on
// the bounded pool.
type poolSearcher struct{ p *Pool }

func (ps poolSearcher) Distance(s, t graph.VertexID) int64 { return ps.p.Distance(s, t) }
func (ps poolSearcher) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	return ps.p.ShortestPath(s, t)
}
func (ps poolSearcher) DistanceContext(ctx context.Context, s, t graph.VertexID) (int64, error) {
	return ps.p.DistanceContext(ctx, s, t)
}
func (ps poolSearcher) ShortestPathContext(ctx context.Context, s, t graph.VertexID) ([]graph.VertexID, int64, error) {
	return ps.p.ShortestPathContext(ctx, s, t)
}
