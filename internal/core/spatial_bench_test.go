package core_test

// Benchmarks behind the CI knn_prune_ratio gate: R-tree-seeded SILC
// distance browsing versus the linear scan that evaluates every vertex.
// Besides wall time, each benchmark reports "candidates/op" — the number
// of exact network-distance evaluations per query, precomputed over a
// fixed 64-source query set so the metric is fully deterministic (same
// value on any machine, any -benchtime). cmd/benchcheck gates the ratio
// linear/pruned, which measures pruning effectiveness independent of
// hardware.

import (
	"context"
	"sort"
	"sync"
	"testing"

	"roadnet/internal/core"
	"roadnet/internal/graph"
	"roadnet/internal/silc"
	"roadnet/internal/testutil"
)

const (
	knnBenchVertices = 800
	knnBenchSources  = 64
	knnBenchK        = 10
)

var knnBench struct {
	once       sync.Once
	g          *graph.Graph
	sx         *silc.Index
	loc        *core.SpatialLocator
	sources    []graph.VertexID
	meanPruned float64
	meanLinear float64
}

func knnBenchSetup(b *testing.B) {
	knnBench.once.Do(func() {
		g := testutil.SmallRoad(knnBenchVertices, 4242)
		ix, err := core.BuildIndex(core.MethodSILC, g, core.Config{
			SILC: silc.Options{EnableNearest: true},
		})
		if err != nil {
			panic(err)
		}
		knnBench.g = g
		knnBench.sx = core.SILCOf(ix)
		knnBench.loc = core.NewSpatialLocator(g)
		for i := 0; i < knnBenchSources; i++ {
			knnBench.sources = append(knnBench.sources,
				graph.VertexID((i*257)%g.NumVertices()))
		}
		// Deterministic per-query candidate counts over the fixed set.
		total := 0
		for _, s := range knnBench.sources {
			seeds := knnBench.loc.NearestVertices(g.Coord(s), knnBenchK+1)
			_, examined, err := knnBench.sx.NearestKPruned(context.Background(), s, knnBenchK, seeds)
			if err != nil {
				panic(err)
			}
			total += examined
		}
		knnBench.meanPruned = float64(total) / float64(knnBenchSources)
		knnBench.meanLinear = float64(g.NumVertices() - 1)
	})
}

// BenchmarkKNNPruned answers k-NN with SILC distance browsing seeded by
// R-tree geometric candidates.
func BenchmarkKNNPruned(b *testing.B) {
	knnBenchSetup(b)
	g, sx, loc := knnBench.g, knnBench.sx, knnBench.loc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := knnBench.sources[i%len(knnBench.sources)]
		seeds := loc.NearestVertices(g.Coord(s), knnBenchK+1)
		if _, _, err := sx.NearestKPruned(context.Background(), s, knnBenchK, seeds); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(knnBench.meanPruned, "candidates/op")
}

// BenchmarkKNNLinear answers the same queries by evaluating the exact
// network distance of every vertex — the no-spatial-index strawman.
func BenchmarkKNNLinear(b *testing.B) {
	knnBenchSetup(b)
	g, sx := knnBench.g, knnBench.sx
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := knnBench.sources[i%len(knnBench.sources)]
		best := make([]core.Neighbor, 0, knnBenchK+1)
		for v := 0; v < n; v++ {
			u := graph.VertexID(v)
			if u == s {
				continue
			}
			d := sx.Distance(s, u)
			if d >= graph.Infinity {
				continue
			}
			at := sort.Search(len(best), func(j int) bool {
				return best[j].Dist > d || (best[j].Dist == d && best[j].V >= u)
			})
			if at >= knnBenchK {
				continue
			}
			best = append(best, core.Neighbor{})
			copy(best[at+1:], best[at:])
			best[at] = core.Neighbor{V: u, Dist: d}
			if len(best) > knnBenchK {
				best = best[:knnBenchK]
			}
		}
	}
	b.ReportMetric(knnBench.meanLinear, "candidates/op")
}
