package silc_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"roadnet/internal/binio"

	"roadnet/internal/gen"
	"roadnet/internal/silc"
	"roadnet/internal/testutil"
)

func TestSILCSerializationRoundtrip(t *testing.T) {
	g := testutil.SmallRoad(900, 821)
	ix := build(t, g)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := silc.ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.NumIntervals() != ix.NumIntervals() {
		t.Errorf("intervals %d != %d after roundtrip", ix2.NumIntervals(), ix.NumIntervals())
	}
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 200, 151), ix2.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 60, 153), ix2.ShortestPath)
}

func TestSILCSerializationWithExceptions(t *testing.T) {
	// Colliding coordinates force exception tables; they must roundtrip.
	g := gen.RandomConnected(80, 120, 20, 823)
	ix := build(t, g)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := silc.ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), ix2.Distance)
}

func TestSILCSerializationRejectsWrongGraph(t *testing.T) {
	g := testutil.SmallRoad(400, 825)
	other := testutil.SmallRoad(900, 827)
	ix := build(t, g)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := silc.ReadIndex(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("loading onto a different graph must fail")
	}
}

func TestSILCSerializationRejectsTruncation(t *testing.T) {
	g := testutil.SmallRoad(400, 829)
	ix := build(t, g)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := silc.ReadIndex(bytes.NewReader(data[:len(data)/3]), g); err == nil {
		t.Error("truncated stream must fail")
	}
}

func TestSILCV1Roundtrip(t *testing.T) {
	g := testutil.SmallRoad(900, 851)
	ix := build(t, g)
	var buf bytes.Buffer
	if err := ix.SaveV1(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := silc.ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.NumIntervals() != ix.NumIntervals() {
		t.Errorf("intervals %d != %d after v1 roundtrip", ix2.NumIntervals(), ix.NumIntervals())
	}
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 150, 155), ix2.Distance)
}

func TestSILCVersionErrors(t *testing.T) {
	g := testutil.SmallRoad(400, 853)
	ix := build(t, g)

	var v1 bytes.Buffer
	if err := ix.SaveV1(&v1); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), v1.Bytes()...)
	bad[len("ROADNET-SILC\n")] = 9
	_, err := silc.ReadIndex(bytes.NewReader(bad), g)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("v1 stream with version 9: got %v, want a versioned error", err)
	}

	var v2 bytes.Buffer
	if err := ix.Save(&v2); err != nil {
		t.Fatal(err)
	}
	bad = append([]byte(nil), v2.Bytes()...)
	bad[12] = 9 // flat header version field (little-endian u32 at offset 12)
	_, err = silc.ReadIndex(bytes.NewReader(bad), g)
	if !errors.Is(err, binio.ErrVersion) {
		t.Errorf("flat container with version 9: got %v, want binio.ErrVersion", err)
	}
}
