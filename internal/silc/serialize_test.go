package silc_test

import (
	"bytes"
	"testing"

	"roadnet/internal/gen"
	"roadnet/internal/silc"
	"roadnet/internal/testutil"
)

func TestSILCSerializationRoundtrip(t *testing.T) {
	g := testutil.SmallRoad(900, 821)
	ix := build(t, g)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := silc.ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.NumIntervals() != ix.NumIntervals() {
		t.Errorf("intervals %d != %d after roundtrip", ix2.NumIntervals(), ix.NumIntervals())
	}
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 200, 151), ix2.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 60, 153), ix2.ShortestPath)
}

func TestSILCSerializationWithExceptions(t *testing.T) {
	// Colliding coordinates force exception tables; they must roundtrip.
	g := gen.RandomConnected(80, 120, 20, 823)
	ix := build(t, g)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := silc.ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), ix2.Distance)
}

func TestSILCSerializationRejectsWrongGraph(t *testing.T) {
	g := testutil.SmallRoad(400, 825)
	other := testutil.SmallRoad(900, 827)
	ix := build(t, g)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := silc.ReadIndex(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("loading onto a different graph must fail")
	}
}

func TestSILCSerializationRejectsTruncation(t *testing.T) {
	g := testutil.SmallRoad(400, 829)
	ix := build(t, g)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := silc.ReadIndex(bytes.NewReader(data[:len(data)/3]), g); err == nil {
		t.Error("truncated stream must fail")
	}
}
