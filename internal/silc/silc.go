// Package silc implements Spatially Induced Linkage Cognizance (Samet et
// al., SIGMOD 2008), the spatial-coherence index of the paper's §3.4.
//
// Preprocessing computes, for every vertex v, the partition of V \ {v} into
// equivalence classes by the first hop of the shortest path leaving v, then
// compresses each partition into a colored region quadtree stored as
// intervals of a Z-order (Morton) curve (Appendix D): cells are split until
// every cell holds vertices of a single class, and the resulting aligned
// squares become contiguous Morton-code intervals kept in a sorted array
// searched binarily at query time.
//
// A shortest-path query walks the path hop by hop — O(k log n) for a path
// of k edges — and a distance query computes the path and returns its
// length, exactly as the paper evaluates it.
package silc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"roadnet/internal/dijkstra"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// noHop marks targets with no first hop (unreachable vertices and the
// source itself).
const noHop = 0xff

// maxDegree is the largest vertex degree SILC's one-byte color encoding
// supports; road networks are degree-bounded far below this (§2).
const maxDegree = noHop

// Options configures Build.
type Options struct {
	// Bits is the quadtree resolution per axis (default 16, the finest).
	Bits uint
	// Workers bounds preprocessing parallelism (default GOMAXPROCS).
	Workers int
	// EnableNearest additionally records a per-region minimum-distance
	// bound (4 bytes per interval), enabling NearestK distance-browsing
	// queries (see knn.go).
	EnableNearest bool
}

// Index is a built SILC index.
type Index struct {
	g    *graph.Graph
	norm geom.Normalizer

	// Per-source interval tables: starts[v] holds the ascending Morton
	// codes at which a new region begins, colors[v] the first-hop adjacency
	// slot of each region.
	starts [][]uint32
	colors [][]uint8

	// exceptions lists, per source, the vertices whose Morton cell is
	// shared with a different-colored vertex (coordinate collisions); the
	// pair table overrides the interval lookup. Built and v1-loaded indexes
	// use the maps; flat-loaded (zero-copy) ones keep the on-disk form
	// instead — per-source runs of (target, color) pairs sorted by target,
	// delimited by excOff and searched binarily in exceptionColor — so
	// loading never materializes per-entry heap state.
	exceptions []map[graph.VertexID]uint8
	excOff     []int64
	excTarget  []int32
	excColor   []uint8

	// code[v] is the Morton code of v.
	code []uint32

	// NearestK support (EnableNearest): order holds the vertices sorted by
	// Morton code; minDist[v][i] lower-bounds the network distance from v
	// to every vertex of region i (invalidMinDist for unreachable regions).
	order   []graph.VertexID
	minDist [][]int32

	buildTime time.Duration
	intervals int64
}

// invalidMinDist marks regions with no reachable vertex.
const invalidMinDist = int32(math.MaxInt32)

// Build constructs the SILC index for g by running one Dijkstra per vertex
// (the all-pairs preprocessing of §3.4).
func Build(g *graph.Graph, opts Options) (*Index, error) {
	start := time.Now()
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("silc: empty graph")
	}
	if d := g.MaxDegree(); d >= maxDegree {
		return nil, fmt.Errorf("silc: max degree %d exceeds supported %d", d, maxDegree)
	}
	if opts.Bits == 0 {
		opts.Bits = 16
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}

	ix := &Index{
		g:          g,
		norm:       geom.NewNormalizer(g.Bounds(), opts.Bits),
		starts:     make([][]uint32, n),
		colors:     make([][]uint8, n),
		exceptions: make([]map[graph.VertexID]uint8, n),
		code:       make([]uint32, n),
	}
	for v := 0; v < n; v++ {
		ix.code[v] = uint32(ix.norm.Code(g.Coord(graph.VertexID(v))))
	}
	// Vertices sorted by Morton code, shared by every per-source build.
	order := make([]graph.VertexID, n)
	for i := range order {
		order[i] = graph.VertexID(i)
	}
	sort.Slice(order, func(i, j int) bool { return ix.code[order[i]] < ix.code[order[j]] })
	if opts.EnableNearest {
		ix.order = order
		ix.minDist = make([][]int32, n)
	}

	var wg sync.WaitGroup
	vch := make(chan graph.VertexID, opts.Workers*4)
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := newSourceBuilder(ix, order)
			for v := range vch {
				if err := b.build(v); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	for v := 0; v < n; v++ {
		vch <- graph.VertexID(v)
	}
	close(vch)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for v := 0; v < n; v++ {
		ix.intervals += int64(len(ix.starts[v]))
	}
	ix.buildTime = time.Since(start)
	return ix, nil
}

// sourceBuilder holds the per-goroutine scratch for building one source's
// interval table.
type sourceBuilder struct {
	ix    *Index
	order []graph.VertexID
	ctx   *dijkstra.Context
	hop   []uint8 // first-hop slot per target for the current source

	starts   []uint32
	colors   []uint8
	minDists []int32 // used when EnableNearest
}

func newSourceBuilder(ix *Index, order []graph.VertexID) *sourceBuilder {
	return &sourceBuilder{
		ix:    ix,
		order: order,
		ctx:   dijkstra.NewContext(ix.g),
		hop:   make([]uint8, ix.g.NumVertices()),
	}
}

// build computes the first-hop coloring for source v and compresses it.
func (b *sourceBuilder) build(v graph.VertexID) error {
	g := b.ix.g
	b.ctx.Run([]graph.VertexID{v}, dijkstra.Options{})
	for i := range b.hop {
		b.hop[i] = noHop
	}
	// First hops propagate down the shortest-path tree in settle order.
	lo, _ := g.ArcsOf(v)
	for _, u := range b.ctx.Settled() {
		if u == v {
			continue
		}
		p := b.ctx.Parent(u)
		if p == v {
			// Find the adjacency slot of the tree edge's head u with the
			// smallest weight realizing the tree distance.
			slot := -1
			g.Neighbors(v, func(w graph.VertexID, wt graph.Weight, _ int32) bool {
				if w == u && b.ctx.Dist(u) == int64(wt) {
					slot = int(indexOfArc(g, v, u, wt) - lo)
					return false
				}
				return true
			})
			if slot < 0 {
				// The tree edge exists by construction; fall back to any
				// arc to u.
				slot = int(indexOfArc(g, v, u, -1) - lo)
			}
			b.hop[u] = uint8(slot)
		} else {
			b.hop[u] = b.hop[p]
		}
	}

	b.starts = b.starts[:0]
	b.colors = b.colors[:0]
	b.minDists = b.minDists[:0]
	exceptions := map[graph.VertexID]uint8{}
	b.rec(v, 0, uint64(b.ix.norm.CodeSpaceSize()), 0, len(b.order), exceptions)

	b.ix.starts[v] = append([]uint32(nil), b.starts...)
	b.ix.colors[v] = append([]uint8(nil), b.colors...)
	if b.ix.minDist != nil {
		b.ix.minDist[v] = append([]int32(nil), b.minDists...)
	}
	if len(exceptions) > 0 {
		b.ix.exceptions[v] = exceptions
	}
	return nil
}

// indexOfArc returns the arc index of an arc v->u (with weight wt when wt
// is non-negative).
func indexOfArc(g *graph.Graph, v, u graph.VertexID, wt graph.Weight) int32 {
	lo, hi := g.ArcsOf(v)
	for a := lo; a < hi; a++ {
		if g.Head(a) == u && (wt < 0 || g.ArcWeight(a) == wt) {
			return a
		}
	}
	return lo
}

// emit appends a region start, merging adjacent same-color regions. minD
// is the minimum source distance over the region's vertices, maintained
// only when NearestK support is enabled.
func (b *sourceBuilder) emit(code uint64, color uint8, minD int32) {
	if len(b.colors) > 0 && b.colors[len(b.colors)-1] == color {
		if b.ix.minDist != nil && minD < b.minDists[len(b.minDists)-1] {
			b.minDists[len(b.minDists)-1] = minD
		}
		return
	}
	b.starts = append(b.starts, uint32(code))
	b.colors = append(b.colors, color)
	if b.ix.minDist != nil {
		b.minDists = append(b.minDists, minD)
	}
}

// regionMinDist computes the minimum source distance over
// order[idxLo:idxHi], or invalidMinDist when nothing is reachable.
func (b *sourceBuilder) regionMinDist(idxLo, idxHi int) int32 {
	if b.ix.minDist == nil {
		return invalidMinDist
	}
	minD := invalidMinDist
	for i := idxLo; i < idxHi; i++ {
		if d := b.ctx.Dist(b.order[i]); d < graph.Infinity && int32(d) < minD {
			minD = int32(d)
		}
	}
	return minD
}

// rec performs the quadtree subdivision of the Morton code range
// [codeLo, codeLo+codeSpan) containing the sorted vertices
// order[idxLo:idxHi], emitting maximal single-color intervals. The source
// vertex src acts as a wildcard that matches any color.
func (b *sourceBuilder) rec(src graph.VertexID, codeLo, codeSpan uint64, idxLo, idxHi int, exceptions map[graph.VertexID]uint8) {
	if idxLo >= idxHi {
		return
	}
	// Single-color check (ignoring the source).
	color := uint8(noHop)
	uniform := true
	hasColor := false
	for i := idxLo; i < idxHi; i++ {
		u := b.order[i]
		if u == src {
			continue
		}
		c := b.hop[u]
		if !hasColor {
			color = c
			hasColor = true
		} else if c != color {
			uniform = false
			break
		}
	}
	if !hasColor {
		return // only the source lives here
	}
	if uniform {
		b.emit(codeLo, color, b.regionMinDist(idxLo, idxHi))
		return
	}
	if codeSpan <= 1 {
		// Coordinate collision: distinct vertices share one cell with
		// different colors. Emit the first color and record the others as
		// exceptions.
		b.emit(codeLo, color, b.regionMinDist(idxLo, idxHi))
		for i := idxLo; i < idxHi; i++ {
			u := b.order[i]
			if u != src && b.hop[u] != color {
				exceptions[u] = b.hop[u]
			}
		}
		return
	}
	quarter := codeSpan / 4
	at := idxLo
	for q := uint64(0); q < 4; q++ {
		qLo := codeLo + q*quarter
		qHi := qLo + quarter
		end := at + sort.Search(idxHi-at, func(k int) bool {
			return uint64(b.ix.code[b.order[at+k]]) >= qHi
		})
		b.rec(src, qLo, quarter, at, end, exceptions)
		at = end
	}
}

// exceptionColor resolves a coordinate-collision override for the pair
// (cur, target): from the exception map on built/v1-loaded indexes, by
// binary search over the sorted flat runs on zero-copy loads.
func (ix *Index) exceptionColor(cur, target graph.VertexID) (uint8, bool) {
	if ix.exceptions != nil {
		if exc := ix.exceptions[cur]; exc != nil {
			c, ok := exc[target]
			return c, ok
		}
		return 0, false
	}
	if ix.excOff == nil {
		return 0, false
	}
	lo, hi := int(ix.excOff[cur]), int(ix.excOff[cur+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.excTarget[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(ix.excOff[cur+1]) && ix.excTarget[lo] == target {
		return ix.excColor[lo], true
	}
	return 0, false
}

// lookup returns the first-hop adjacency slot from cur toward target.
func (ix *Index) lookup(cur, target graph.VertexID) uint8 {
	if c, ok := ix.exceptionColor(cur, target); ok {
		return c
	}
	starts := ix.starts[cur]
	if len(starts) == 0 {
		return noHop
	}
	code := ix.code[target]
	// Find the last region starting at or before code.
	i := sort.Search(len(starts), func(k int) bool { return starts[k] > code })
	if i == 0 {
		return noHop
	}
	return ix.colors[cur][i-1]
}

// ShortestPath walks the path from s to t hop by hop (§3.4), returning the
// vertex sequence and its length, or (nil, Infinity) when unreachable.
func (ix *Index) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	path, d, _ := ix.ShortestPathContext(context.Background(), s, t)
	return path, d
}

// ShortestPathContext is ShortestPath with cancellation: the hop-by-hop
// walk polls ctx every cancel.Interval hops and aborts with its error. It
// is a thin collector over the lazy walk iterator — one pass, with the
// path length accumulated as the walk advances.
func (ix *Index) ShortestPathContext(ctx context.Context, s, t graph.VertexID) ([]graph.VertexID, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, graph.Infinity, err
	}
	it := walkIter{ix: ix, ctx: ctx, cur: s, t: t}
	var path []graph.VertexID
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		path = append(path, v)
	}
	switch {
	case it.err == nil:
		return path, it.total, nil
	case errors.Is(it.err, errNoPath):
		return nil, graph.Infinity, nil
	default:
		return nil, graph.Infinity, it.err
	}
}

// Distance computes the path and returns its length (§3.4: SILC answers a
// distance query by first computing the shortest path).
func (ix *Index) Distance(s, t graph.VertexID) int64 {
	d, _ := ix.DistanceContext(context.Background(), s, t)
	return d
}

// DistanceContext is Distance with cancellation: the hop-by-hop walk polls
// ctx every cancel.Interval hops and aborts with its error. It drains the
// same lazy walk the path queries stream, discarding the vertices and
// keeping the accumulated length — so the two can never disagree.
func (ix *Index) DistanceContext(ctx context.Context, s, t graph.VertexID) (int64, error) {
	if err := ctx.Err(); err != nil {
		return graph.Infinity, err
	}
	it := walkIter{ix: ix, ctx: ctx, cur: s, t: t}
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	switch {
	case it.err == nil:
		return it.total, nil
	case errors.Is(it.err, errNoPath):
		return graph.Infinity, nil
	default:
		return graph.Infinity, it.err
	}
}

// NumIntervals returns the total number of stored Morton intervals; the
// paper's O(n sqrt n) space bound is in these units.
func (ix *Index) NumIntervals() int64 { return ix.intervals }

// BuildTime returns the wall-clock preprocessing duration.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// SizeBytes reports the index footprint: 5 bytes per interval (4-byte
// start + 1-byte color) plus the per-source slice headers and exceptions.
func (ix *Index) SizeBytes() int64 {
	var size int64
	for v := range ix.starts {
		size += int64(len(ix.starts[v]))*5 + 48
		if ix.exceptions != nil {
			if exc := ix.exceptions[v]; exc != nil {
				size += int64(len(exc)) * 16
			}
		}
		if ix.minDist != nil {
			size += int64(len(ix.minDist[v])) * 4
		}
	}
	// Flat-loaded indexes keep the sorted-run exception form instead: 5
	// bytes per entry, shared with the page cache when mapped.
	size += int64(len(ix.excTarget)) * 5
	size += int64(len(ix.excOff)) * 8
	size += int64(len(ix.code)) * 4
	size += int64(len(ix.order)) * 4
	return size
}

// MeanIntervalsPerVertex reports the average partition size, the quantity
// the paper bounds by O(sqrt n).
func (ix *Index) MeanIntervalsPerVertex() float64 {
	if len(ix.starts) == 0 {
		return 0
	}
	return float64(ix.intervals) / float64(len(ix.starts))
}
