package silc_test

import (
	"testing"

	"roadnet/internal/gen"
	"roadnet/internal/graph"
	"roadnet/internal/silc"
	"roadnet/internal/testutil"
)

func build(t *testing.T, g *graph.Graph) *silc.Index {
	t.Helper()
	ix, err := silc.Build(g, silc.Options{})
	if err != nil {
		t.Fatalf("silc.Build: %v", err)
	}
	return ix
}

func TestSILCFigure1Partition(t *testing.T) {
	// §3.4's worked example: in the partition of V \ {v8}, the shortest
	// paths from v8 to v4, v5, v6, v7 leave through v6, and those to v1
	// and v3 leave through v1.
	g := testutil.Figure1()
	ix := build(t, g)
	behindV6 := []graph.VertexID{testutil.V4, testutil.V5, testutil.V6, testutil.V7}
	for _, target := range behindV6 {
		path, _ := ix.ShortestPath(testutil.V8, target)
		if len(path) < 2 || path[1] != testutil.V6 {
			t.Errorf("path v8 -> v%d should leave through v6, got %v", target+1, path)
		}
	}
	for _, target := range []graph.VertexID{testutil.V1, testutil.V3} {
		path, _ := ix.ShortestPath(testutil.V8, target)
		if len(path) < 2 || path[1] != testutil.V1 {
			t.Errorf("path v8 -> v%d should leave through v1, got %v", target+1, path)
		}
	}
}

func TestSILCExhaustiveFigure1(t *testing.T) {
	g := testutil.Figure1()
	ix := build(t, g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.AllPairs(g), ix.ShortestPath)
}

func TestSILCRoadNetwork(t *testing.T) {
	g := testutil.SmallRoad(900, 201)
	ix := build(t, g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 300, 71), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 150, 73), ix.ShortestPath)
}

func TestSILCAdversarialGraph(t *testing.T) {
	// Random non-planar graph with colliding coordinates possible.
	g := gen.RandomConnected(150, 250, 40, 203)
	ix := build(t, g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g)[:3000], ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 200, 79), ix.ShortestPath)
}

func TestSILCCoordinateCollisions(t *testing.T) {
	// All vertices at the same point: every region degenerates to a
	// collision cell and the exception table must carry all lookups.
	b := graph.NewBuilder(6)
	p := testutil.Figure1().Coord(0)
	for i := 0; i < 6; i++ {
		b.AddVertex(p)
	}
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(graph.VertexID(i), graph.VertexID(i+1), graph.Weight(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	ix := build(t, g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.AllPairs(g), ix.ShortestPath)
}

func TestSILCDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	g0 := testutil.Figure1()
	for i := 0; i < 4; i++ {
		b.AddVertex(g0.Coord(graph.VertexID(i)))
	}
	_ = b.AddEdge(0, 1, 3)
	_ = b.AddEdge(2, 3, 4)
	g := b.Build()
	ix := build(t, g)
	if d := ix.Distance(0, 2); d != graph.Infinity {
		t.Errorf("distance across components = %d, want Infinity", d)
	}
	if p, _ := ix.ShortestPath(0, 3); p != nil {
		t.Errorf("path across components = %v, want nil", p)
	}
	if d := ix.Distance(0, 1); d != 3 {
		t.Errorf("within-component distance = %d, want 3", d)
	}
}

func TestSILCIntervalBound(t *testing.T) {
	// The concise representation must stay near the O(sqrt n) bound per
	// vertex (§3.4); allow a generous constant.
	g := testutil.SmallRoad(2500, 207)
	ix := build(t, g)
	n := float64(g.NumVertices())
	mean := ix.MeanIntervalsPerVertex()
	if mean <= 0 {
		t.Fatal("no intervals stored")
	}
	if limit := 20 * sqrt(n); mean > limit {
		t.Errorf("mean intervals per vertex %.1f exceeds 20*sqrt(n) = %.1f", mean, limit)
	}
}

func sqrt(x float64) float64 {
	r := x
	for i := 0; i < 40; i++ {
		r = (r + x/r) / 2
	}
	return r
}

func TestSILCStats(t *testing.T) {
	g := testutil.SmallRoad(400, 211)
	ix := build(t, g)
	if ix.SizeBytes() <= 0 || ix.BuildTime() <= 0 || ix.NumIntervals() <= 0 {
		t.Error("stats must be positive")
	}
}

func TestSILCRejectsEmptyAndHighDegree(t *testing.T) {
	b := graph.NewBuilder(0)
	if _, err := silc.Build(b.Build(), silc.Options{}); err == nil {
		t.Error("empty graph should be rejected")
	}
}

func TestSILCSameVertex(t *testing.T) {
	g := testutil.Figure1()
	ix := build(t, g)
	if d := ix.Distance(3, 3); d != 0 {
		t.Errorf("dist(v, v) = %d", d)
	}
	if p, d := ix.ShortestPath(3, 3); d != 0 || len(p) != 1 {
		t.Errorf("path(v, v) = %v, %d", p, d)
	}
}
