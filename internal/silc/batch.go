package silc

import (
	"context"
	"sync"

	"roadnet/internal/cancel"
	"roadnet/internal/graph"
)

// This file implements the SILC batch accelerator. The first-hop function
// is deterministic per (vertex, target), so for a fixed target t every walk
// toward t follows the unique first-hop tree into t: once some walk has
// passed through a vertex v, dist(v, t) is known, and every later walk
// reaching v can stop immediately. BatchDistance exploits this by answering
// the matrix target-by-target with a distance memo over the walked
// prefixes; sources whose shortest paths share suffixes (the common case on
// road networks, where routes funnel into arterials) pay for the shared
// hops only once instead of once per source.

// batchScratch is the recycled memo state of one BatchDistance call. The
// SILC index is its own (stateless, shared) searcher, so the O(|V|) memo
// cannot live there; pooling it keeps steady-state batches from allocating
// and zeroing 12 bytes per graph vertex on every request.
type batchScratch struct {
	memoDist []int64
	memoGen  []uint32
	gen      uint32
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// getBatchScratch returns scratch covering n vertices. The generation
// counter survives recycling, so reused arrays need no zeroing.
func getBatchScratch(n int) *batchScratch {
	sc := batchScratchPool.Get().(*batchScratch)
	if len(sc.memoDist) < n {
		sc.memoDist = make([]int64, n)
		sc.memoGen = make([]uint32, n)
		sc.gen = 0
	}
	return sc
}

// BatchDistance computes the full sources×targets distance matrix:
// table[i][j] = dist(sources[i], targets[j]), graph.Infinity for
// unreachable pairs. Results are bit-identical to per-pair Distance calls:
// a memoized suffix distance is the sum of exactly the arc weights the
// per-pair walk would have accumulated. The walks poll ctx every
// cancel.Interval hops; on cancellation the partial matrix is discarded and
// ctx's error returned.
func (ix *Index) BatchDistance(ctx context.Context, sources, targets []graph.VertexID) ([][]int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	table := make([][]int64, len(sources))
	for i := range table {
		table[i] = make([]int64, len(targets))
	}
	if len(sources) == 0 || len(targets) == 0 {
		return table, nil
	}
	n := ix.g.NumVertices()
	// Per-target memo: memoDist[v] = dist(v, t) for every vertex v some walk
	// toward the current target has passed, validated by generation.
	sc := getBatchScratch(n)
	defer batchScratchPool.Put(sc)
	memoDist, memoGen, gen := sc.memoDist, sc.memoGen, sc.gen
	defer func() { sc.gen = gen }()
	// prefixV/prefixD record the current walk: vertices visited before the
	// memo hit and the accumulated weight at each.
	prefixV := make([]graph.VertexID, 0, 64)
	prefixD := make([]int64, 0, 64)

	steps := 0
	for j, t := range targets {
		gen++
		if gen == 0 {
			// The recycled counter wrapped: stale entries from 2^32
			// targets ago would alias the new generation.
			clear(memoGen)
			gen = 1
		}
		memoGen[t] = gen
		memoDist[t] = 0
		for i, s := range sources {
			prefixV = prefixV[:0]
			prefixD = prefixD[:0]
			cur := s
			var total int64
			corrupted := false
			for memoGen[cur] != gen {
				if err := cancel.Poll(ctx, steps); err != nil {
					return nil, err
				}
				steps++
				prefixV = append(prefixV, cur)
				prefixD = append(prefixD, total)
				slot := ix.lookup(cur, t)
				if slot == noHop {
					break
				}
				lo, hi := ix.g.ArcsOf(cur)
				a := lo + int32(slot)
				if a >= hi {
					break
				}
				cur = ix.g.Head(a)
				total += int64(ix.g.ArcWeight(a))
				if len(prefixV) > n {
					// Defensive: a corrupted table would loop forever. Match
					// the per-pair guard and do not poison the memo.
					corrupted = true
					break
				}
			}
			if corrupted {
				table[i][j] = graph.Infinity
				continue
			}
			if memoGen[cur] == gen {
				// Walk resolved through the memo (or reached t, whose memo
				// entry is 0). Distances decrease along the walk, so every
				// prefix vertex's distance to t follows by subtraction.
				suffix := memoDist[cur]
				if suffix >= graph.Infinity {
					table[i][j] = graph.Infinity
					for _, v := range prefixV {
						memoGen[v] = gen
						memoDist[v] = graph.Infinity
					}
					continue
				}
				d := total + suffix
				table[i][j] = d
				for k, v := range prefixV {
					memoGen[v] = gen
					memoDist[v] = d - prefixD[k]
				}
				continue
			}
			// The walk dead-ended: no first hop from cur toward t. The walk
			// from any prefix vertex is a suffix of this walk, so all of them
			// are equally unreachable.
			table[i][j] = graph.Infinity
			for _, v := range prefixV {
				memoGen[v] = gen
				memoDist[v] = graph.Infinity
			}
		}
	}
	return table, nil
}
