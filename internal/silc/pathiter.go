package silc

import (
	"context"
	"errors"

	"roadnet/internal/cancel"
	"roadnet/internal/graph"
)

// errNoPath marks a first-hop walk that hit a vertex with no hop toward
// the target — the walk-level signal for "unreachable". The collectors
// translate it into the classic (nil, Infinity) answer; OpenPath never
// surfaces it because its distance prepass already proved reachability
// over the same deterministic tables.
var errNoPath = errors.New("silc: no first hop toward target")

// step resolves the next hop of the shortest path from cur toward t: the
// head of the arc the interval tables select and its weight, or ok=false
// when the tables yield no hop (unreachable pair or corrupted table). It
// is the single step shared by the distance walk, the path collector and
// the lazy iterator.
func (ix *Index) step(cur, t graph.VertexID) (next graph.VertexID, w int64, ok bool) {
	slot := ix.lookup(cur, t)
	if slot == noHop {
		return 0, 0, false
	}
	lo, hi := ix.g.ArcsOf(cur)
	a := lo + int32(slot)
	if a >= hi {
		return 0, 0, false
	}
	return ix.g.Head(a), int64(ix.g.ArcWeight(a)), true
}

// walkIter is the lazy first-hop walk from s to t: each Next resolves one
// interval-table lookup and yields one vertex, so resident state is O(1)
// no matter how long the path is. It carries no index-side mutable state,
// matching SILC's "the index is its own concurrency-safe searcher"
// contract — any number of walks may run concurrently.
type walkIter struct {
	ix  *Index
	ctx context.Context
	cur graph.VertexID
	t   graph.VertexID

	// total accumulates the walked weight; after a complete iteration it
	// is the path length (the quantity SILC distance queries report).
	total   int64
	steps   int
	started bool
	done    bool
	err     error
}

// Next implements graph.PathIterator, polling ctx every cancel.Interval
// hops.
func (it *walkIter) Next() (graph.VertexID, bool) {
	if it.done {
		return 0, false
	}
	if !it.started {
		it.started = true
		return it.cur, true
	}
	if it.cur == it.t {
		it.done = true
		return 0, false
	}
	if err := cancel.Poll(it.ctx, it.steps); err != nil {
		it.err = err
		it.done = true
		return 0, false
	}
	it.steps++
	next, w, ok := it.ix.step(it.cur, it.t)
	if !ok || it.steps > it.ix.g.NumVertices() {
		// No hop, or a corrupted table would loop forever.
		it.err = errNoPath
		it.done = true
		return 0, false
	}
	it.cur = next
	it.total += w
	return next, true
}

// Err implements graph.PathIterator.
func (it *walkIter) Err() error { return it.err }

// OpenPath returns a PathIterator over the shortest path from s to t plus
// its length, or (nil, Infinity, nil) when t is unreachable. The length is
// needed up front by streaming consumers, so OpenPath pays one extra
// allocation-free distance walk (O(k) table lookups) before handing out
// the lazy path walk; nothing is ever materialized.
func (ix *Index) OpenPath(ctx context.Context, s, t graph.VertexID) (graph.PathIterator, int64, error) {
	d, err := ix.DistanceContext(ctx, s, t)
	if err != nil {
		return nil, graph.Infinity, err
	}
	if d >= graph.Infinity {
		return nil, graph.Infinity, nil
	}
	return &walkIter{ix: ix, ctx: ctx, cur: s, t: t}, d, nil
}
