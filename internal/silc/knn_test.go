package silc_test

import (
	"bytes"
	"sort"
	"testing"

	"roadnet/internal/dijkstra"
	"roadnet/internal/graph"
	"roadnet/internal/silc"
	"roadnet/internal/testutil"
)

func buildNearest(t *testing.T, g *graph.Graph) *silc.Index {
	t.Helper()
	ix, err := silc.Build(g, silc.Options{EnableNearest: true})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// bruteNearestK computes the ground truth with one Dijkstra.
func bruteNearestK(g *graph.Graph, s graph.VertexID, k int) []silc.Neighbor {
	ctx := dijkstra.NewContext(g)
	ctx.Run([]graph.VertexID{s}, dijkstra.Options{})
	var all []silc.Neighbor
	for _, v := range ctx.Settled() {
		if v != s {
			all = append(all, silc.Neighbor{V: v, Dist: ctx.Dist(v)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].V < all[j].V
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestNearestKMatchesGroundTruth(t *testing.T) {
	g := testutil.SmallRoad(900, 841)
	ix := buildNearest(t, g)
	for _, s := range []graph.VertexID{0, 17, 400, graph.VertexID(g.NumVertices() - 1)} {
		for _, k := range []int{1, 3, 10} {
			got, err := ix.NearestK(s, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteNearestK(g, s, k)
			if len(got) != len(want) {
				t.Fatalf("NearestK(%d, %d): %d results, want %d", s, k, len(got), len(want))
			}
			// Distances must match exactly; vertex identity may differ on
			// ties, so compare the distance multiset.
			for i := range got {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("NearestK(%d, %d)[%d] dist %d, want %d", s, k, i, got[i].Dist, want[i].Dist)
				}
				if got[i].V == s {
					t.Fatalf("NearestK must exclude the query vertex")
				}
			}
			// And each reported distance must be the true distance of the
			// reported vertex.
			ctx := dijkstra.NewContext(g)
			for _, nb := range got {
				if d := ctx.Distance(s, nb.V); d != nb.Dist {
					t.Fatalf("NearestK reported (%d, %d) but true distance is %d", nb.V, nb.Dist, d)
				}
			}
		}
	}
}

func TestNearestKWholeGraph(t *testing.T) {
	g := testutil.SmallRoad(100, 843)
	ix := buildNearest(t, g)
	got, err := ix.NearestK(0, g.NumVertices()+10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != g.NumVertices()-1 {
		t.Fatalf("whole-graph NearestK returned %d, want %d", len(got), g.NumVertices()-1)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("results not sorted ascending")
		}
	}
}

func TestNearestKDisconnected(t *testing.T) {
	b := graph.NewBuilder(5)
	g0 := testutil.Figure1()
	for i := 0; i < 5; i++ {
		b.AddVertex(g0.Coord(graph.VertexID(i)))
	}
	_ = b.AddEdge(0, 1, 2)
	_ = b.AddEdge(1, 2, 3)
	_ = b.AddEdge(3, 4, 1)
	g := b.Build()
	ix := buildNearest(t, g)
	got, err := ix.NearestK(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("NearestK from component of size 3 returned %d, want 2", len(got))
	}
}

func TestNearestKRequiresOption(t *testing.T) {
	g := testutil.SmallRoad(100, 845)
	ix, err := silc.Build(g, silc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.NearestK(0, 3); err == nil {
		t.Error("NearestK without EnableNearest should error")
	}
	ixN := buildNearest(t, g)
	if res, err := ixN.NearestK(0, 0); err != nil || res != nil {
		t.Errorf("k=0 should return nil, nil; got %v, %v", res, err)
	}
}

func TestNearestKSurvivesSerialization(t *testing.T) {
	g := testutil.SmallRoad(400, 849)
	ix := buildNearest(t, g)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := silc.ReadIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix2.NearestK(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteNearestK(g, 7, 5)
	for i := range want {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("after roundtrip NearestK[%d] = %d, want %d", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestNearestKStillExactForQueries(t *testing.T) {
	// EnableNearest must not change the base query behavior.
	g := testutil.SmallRoad(400, 847)
	ix := buildNearest(t, g)
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 200, 191), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 60, 193), ix.ShortestPath)
}
