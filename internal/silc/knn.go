package silc

import (
	"context"
	"fmt"
	"sort"

	"roadnet/internal/graph"
)

// k-nearest-neighbor queries. The paper's Appendix A notes that "Samet et
// al. show that SILC can also be used to achieve superior performance for
// nearest neighbor queries": the per-region structure admits best-first
// distance browsing. When Options.EnableNearest is set, Build additionally
// records, per stored region, the minimum network distance from the source
// to any vertex of the region. NearestK then scans regions in ascending
// bound order, refining candidates with exact path walks, and stops as
// soon as no unexplored region can beat the current k-th candidate.
//
// Results are deterministic: candidates are ranked by (distance, vertex
// id), so the answer is the unique (dist, id)-minimal k-set — bit-identical
// to a bounded-Dijkstra oracle ranked the same way, whatever the region
// scan order.

// Neighbor is one result of a NearestK query.
type Neighbor struct {
	V    graph.VertexID
	Dist int64
}

// NearestEnabled reports whether the index was built with
// Options.EnableNearest and therefore answers NearestK queries.
func (ix *Index) NearestEnabled() bool { return ix.minDist != nil }

// NearestK returns the k vertices nearest to s by network distance, in
// ascending (distance, id) order (excluding s itself). It requires an
// index built with EnableNearest.
func (ix *Index) NearestK(s graph.VertexID, k int) ([]Neighbor, error) {
	best, _, err := ix.NearestKPruned(context.Background(), s, k, nil)
	return best, err
}

// NearestKPruned is NearestK with geometric candidate seeding: the exact
// distances of the seed vertices (typically the geometrically nearest k,
// from an R-tree) are resolved first, so the k-th-candidate bound is tight
// before any region is scanned and most regions prune without a single
// path walk. The returned count is the number of exact distance
// evaluations performed — the pruning-effectiveness measure the benchmark
// gates compare against a linear scan's n-1. Seeding never changes the
// answer, only the work; ctx cancels mid-query.
func (ix *Index) NearestKPruned(ctx context.Context, s graph.VertexID, k int, seeds []graph.VertexID) ([]Neighbor, int, error) {
	if ix.minDist == nil {
		return nil, 0, fmt.Errorf("silc: index built without EnableNearest")
	}
	if k <= 0 {
		return nil, 0, nil
	}
	starts := ix.starts[s]
	bounds := ix.minDist[s]

	// Candidate set: the k best (distance, id) pairs seen so far, tracked
	// with a sorted slice (k is small in practice).
	var best []Neighbor
	worst := func() (int64, graph.VertexID) {
		if len(best) < k {
			return graph.Infinity, graph.VertexID(1<<31 - 1)
		}
		last := best[len(best)-1]
		return last.Dist, last.V
	}
	// beats reports whether (d, v) ranks strictly before the current k-th
	// candidate — the deterministic admission rule.
	beats := func(d int64, v graph.VertexID) bool {
		wd, wv := worst()
		return d < wd || (d == wd && v < wv)
	}
	add := func(v graph.VertexID, d int64) {
		i := sort.Search(len(best), func(j int) bool {
			return best[j].Dist > d || (best[j].Dist == d && best[j].V >= v)
		})
		if i < len(best) && best[i].V == v && best[i].Dist == d {
			return // seed rediscovered by a region scan
		}
		best = append(best, Neighbor{})
		copy(best[i+1:], best[i:])
		best[i] = Neighbor{V: v, Dist: d}
		if len(best) > k {
			best = best[:k]
		}
	}

	examined := 0
	for _, u := range seeds {
		if u == s {
			continue
		}
		d, err := ix.DistanceContext(ctx, s, u)
		if err != nil {
			return nil, examined, err
		}
		examined++
		if d < graph.Infinity && beats(d, u) {
			add(u, d)
		}
	}

	// Regions sorted by their lower bound.
	type region struct {
		idx   int
		bound int64
	}
	regions := make([]region, 0, len(starts))
	for i := range starts {
		if bounds[i] == invalidMinDist {
			continue // unreachable region
		}
		regions = append(regions, region{idx: i, bound: int64(bounds[i])})
	}
	sort.Slice(regions, func(a, b int) bool { return regions[a].bound < regions[b].bound })

	for _, r := range regions {
		if wd, _ := worst(); len(best) == k && r.bound > wd {
			break // no unexplored region can improve the k-th candidate
		}
		lo, hi := ix.regionOrderRange(s, r.idx)
		for j := lo; j < hi; j++ {
			u := ix.order[j]
			if u == s {
				continue
			}
			d, err := ix.DistanceContext(ctx, s, u)
			if err != nil {
				return nil, examined, err
			}
			examined++
			if d < graph.Infinity && beats(d, u) {
				add(u, d)
			}
		}
	}
	return best, examined, nil
}

// regionOrderRange returns the index range of ix.order covered by region
// regionIdx of source s: codes in [starts[regionIdx], starts[regionIdx+1]).
func (ix *Index) regionOrderRange(s graph.VertexID, regionIdx int) (lo, hi int) {
	starts := ix.starts[s]
	from := starts[regionIdx]
	to := uint32(0xffffffff)
	bounded := false
	if regionIdx+1 < len(starts) {
		to = starts[regionIdx+1]
		bounded = true
	}
	lo = sort.Search(len(ix.order), func(j int) bool { return ix.code[ix.order[j]] >= from })
	if !bounded {
		return lo, len(ix.order)
	}
	hi = lo + sort.Search(len(ix.order)-lo, func(j int) bool { return ix.code[ix.order[lo+j]] >= to })
	return lo, hi
}
