package silc

import (
	"fmt"
	"sort"

	"roadnet/internal/graph"
)

// k-nearest-neighbor queries. The paper's Appendix A notes that "Samet et
// al. show that SILC can also be used to achieve superior performance for
// nearest neighbor queries": the per-region structure admits best-first
// distance browsing. When Options.EnableNearest is set, Build additionally
// records, per stored region, the minimum network distance from the source
// to any vertex of the region. NearestK then scans regions in ascending
// bound order, refining candidates with exact path walks, and stops as
// soon as no unexplored region can beat the current k-th candidate.

// Neighbor is one result of a NearestK query.
type Neighbor struct {
	V    graph.VertexID
	Dist int64
}

// NearestK returns the k vertices nearest to s by network distance, in
// ascending order (excluding s itself). It requires an index built with
// EnableNearest.
func (ix *Index) NearestK(s graph.VertexID, k int) ([]Neighbor, error) {
	if ix.minDist == nil {
		return nil, fmt.Errorf("silc: index built without EnableNearest")
	}
	if k <= 0 {
		return nil, nil
	}
	starts := ix.starts[s]
	bounds := ix.minDist[s]

	// Regions sorted by their lower bound.
	type region struct {
		idx   int
		bound int64
	}
	regions := make([]region, 0, len(starts))
	for i := range starts {
		if bounds[i] == invalidMinDist {
			continue // unreachable region
		}
		regions = append(regions, region{idx: i, bound: int64(bounds[i])})
	}
	sort.Slice(regions, func(a, b int) bool { return regions[a].bound < regions[b].bound })

	// Candidate set: the k best exact distances seen so far, tracked with
	// a simple sorted slice (k is small in practice).
	var best []Neighbor
	worst := func() int64 {
		if len(best) < k {
			return graph.Infinity
		}
		return best[len(best)-1].Dist
	}
	add := func(v graph.VertexID, d int64) {
		i := sort.Search(len(best), func(j int) bool { return best[j].Dist > d })
		best = append(best, Neighbor{})
		copy(best[i+1:], best[i:])
		best[i] = Neighbor{V: v, Dist: d}
		if len(best) > k {
			best = best[:k]
		}
	}

	for _, r := range regions {
		if r.bound >= worst() {
			break // no unexplored region can improve the k-th candidate
		}
		lo, hi := ix.regionOrderRange(s, r.idx)
		for j := lo; j < hi; j++ {
			u := ix.order[j]
			if u == s {
				continue
			}
			d := ix.Distance(s, u)
			if d < worst() {
				add(u, d)
			}
		}
	}
	return best, nil
}

// regionOrderRange returns the index range of ix.order covered by region
// regionIdx of source s: codes in [starts[regionIdx], starts[regionIdx+1]).
func (ix *Index) regionOrderRange(s graph.VertexID, regionIdx int) (lo, hi int) {
	starts := ix.starts[s]
	from := starts[regionIdx]
	to := uint32(0xffffffff)
	bounded := false
	if regionIdx+1 < len(starts) {
		to = starts[regionIdx+1]
		bounded = true
	}
	lo = sort.Search(len(ix.order), func(j int) bool { return ix.code[ix.order[j]] >= from })
	if !bounded {
		return lo, len(ix.order)
	}
	hi = lo + sort.Search(len(ix.order)-lo, func(j int) bool { return ix.code[ix.order[lo+j]] >= to })
	return lo, hi
}
