package silc

import (
	"fmt"
	"io"
	"time"

	"roadnet/internal/binio"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// Serialization: SILC preprocessing is all-pairs shortest paths (§3.4,
// hours on the paper's datasets), so persisting the built index matters
// even more than for CH.

const (
	silcMagic   = "ROADNET-SILC\n"
	silcVersion = 1
)

// Save serializes the index.
func (ix *Index) Save(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Magic(silcMagic)
	bw.U8(silcVersion)
	bw.I64(int64(ix.g.NumVertices()))
	bw.I64(int64(ix.g.NumEdges()))
	bw.U8(uint8(ix.norm.Bits()))
	bw.I64(ix.buildTime.Nanoseconds())
	bw.I64(ix.intervals)
	hasNearest := uint8(0)
	if ix.minDist != nil {
		hasNearest = 1
	}
	bw.U8(hasNearest)
	bw.U32Slice(ix.code)
	if hasNearest != 0 {
		bw.I32Slice(ix.order)
	}
	for v := range ix.starts {
		bw.U32Slice(ix.starts[v])
		bw.U8Slice(ix.colors[v])
		if hasNearest != 0 {
			bw.I32Slice(ix.minDist[v])
		}
		exc := ix.exceptions[v]
		bw.I64(int64(len(exc)))
		for target, color := range exc {
			bw.I32(target)
			bw.U8(color)
		}
	}
	return bw.Flush()
}

// ReadIndex deserializes an index written with Save, re-attaching it to
// g (the same network it was built on).
func ReadIndex(r io.Reader, g *graph.Graph) (*Index, error) {
	br := binio.NewReader(r)
	br.Magic(silcMagic)
	if v := br.U8(); br.Err() == nil && v != silcVersion {
		return nil, fmt.Errorf("silc: unsupported format version %d", v)
	}
	n := br.I64()
	m := br.I64()
	if br.Err() == nil && (n != int64(g.NumVertices()) || m != int64(g.NumEdges())) {
		return nil, fmt.Errorf("silc: index was built for a %dx%d graph, got %dx%d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	bits := uint(br.U8())
	if br.Err() != nil {
		return nil, fmt.Errorf("silc: reading index: %w", br.Err())
	}
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("silc: implausible normalizer bits %d", bits)
	}
	ix := &Index{
		g:          g,
		norm:       geom.NewNormalizer(g.Bounds(), bits),
		starts:     make([][]uint32, g.NumVertices()),
		colors:     make([][]uint8, g.NumVertices()),
		exceptions: make([]map[graph.VertexID]uint8, g.NumVertices()),
	}
	ix.buildTime = time.Duration(br.I64())
	ix.intervals = br.I64()
	hasNearest := br.U8() != 0
	ix.code = br.U32Slice()
	if br.Err() != nil {
		return nil, fmt.Errorf("silc: reading index: %w", br.Err())
	}
	if len(ix.code) != g.NumVertices() {
		return nil, fmt.Errorf("silc: code table sized for a different graph")
	}
	if hasNearest {
		ix.order = br.I32Slice()
		if br.Err() == nil && len(ix.order) != g.NumVertices() {
			return nil, fmt.Errorf("silc: order table sized for a different graph")
		}
		for _, ov := range ix.order {
			if ov < 0 || int64(ov) >= n {
				return nil, fmt.Errorf("silc: order entry %d out of range", ov)
			}
		}
		ix.minDist = make([][]int32, g.NumVertices())
	}
	for v := 0; v < g.NumVertices(); v++ {
		ix.starts[v] = br.U32Slice()
		ix.colors[v] = br.U8Slice()
		if len(ix.starts[v]) != len(ix.colors[v]) {
			return nil, fmt.Errorf("silc: interval arrays of vertex %d inconsistent", v)
		}
		if hasNearest {
			ix.minDist[v] = br.I32Slice()
			if br.Err() == nil && len(ix.minDist[v]) != len(ix.starts[v]) {
				return nil, fmt.Errorf("silc: minDist array of vertex %d inconsistent", v)
			}
		}
		count := br.I64()
		if br.Err() != nil {
			return nil, fmt.Errorf("silc: reading index: %w", br.Err())
		}
		if count < 0 || count > n {
			return nil, fmt.Errorf("silc: implausible exception count %d", count)
		}
		if count > 0 {
			exc := make(map[graph.VertexID]uint8, count)
			for i := int64(0); i < count; i++ {
				target := br.I32()
				color := br.U8()
				if target < 0 || int64(target) >= n {
					return nil, fmt.Errorf("silc: exception target %d out of range", target)
				}
				exc[target] = color
			}
			ix.exceptions[v] = exc
		}
	}
	if br.Err() != nil {
		return nil, fmt.Errorf("silc: reading index: %w", br.Err())
	}
	return ix, nil
}
