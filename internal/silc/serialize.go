package silc

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"roadnet/internal/binio"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// Serialization: SILC preprocessing is all-pairs shortest paths (§3.4,
// hours on the paper's datasets), so persisting the built index matters
// even more than for CH.
//
// Save writes the flat v2 container: the per-source interval tables — the
// O(n sqrt n) bulk of the index — are stored as shared offsets plus
// concatenated starts/colors/minDist sections a loader can mmap and view
// in place, and the exception maps become per-source sorted (target,
// color) runs searched binarily at query time. SaveV1 keeps the legacy
// length-prefixed stream; ReadIndex accepts both.

const (
	silcMagic   = "ROADNET-SILC\n"
	silcVersion = 1
)

// Fourcc tags a flat container holding a SILC index.
const Fourcc uint32 = 'S' | 'I'<<8 | 'L'<<16 | 'C'<<24

// Save serializes the index in the flat v2 format.
func (ix *Index) Save(w io.Writer) error {
	n := ix.g.NumVertices()
	fw := binio.NewFlatWriter(Fourcc)
	mw := fw.Meta()
	mw.Magic(silcMagic)
	mw.I64(int64(n))
	mw.I64(int64(ix.g.NumEdges()))
	mw.U8(uint8(ix.norm.Bits()))
	mw.I64(ix.buildTime.Nanoseconds())
	mw.I64(ix.intervals)
	hasNearest := uint8(0)
	if ix.minDist != nil {
		hasNearest = 1
	}
	mw.U8(hasNearest)

	rowOff, startsData := binio.Flatten(ix.starts)
	_, colorsData := binio.Flatten(ix.colors)
	fw.I64Section(rowOff)
	fw.U32Section(startsData)
	fw.U8Section(colorsData)
	var minDistData []int32
	if hasNearest != 0 {
		_, minDistData = binio.Flatten(ix.minDist)
	}
	fw.I32Section(minDistData)
	fw.U32Section(ix.code)
	fw.I32Section(ix.order)
	excOff, excTarget, excColor := ix.exceptionRuns()
	fw.I64Section(excOff)
	fw.I32Section(excTarget)
	fw.U8Section(excColor)
	_, err := fw.WriteTo(w)
	return err
}

// exceptionRuns returns the exception tables in on-disk form: per-source
// runs of (target, color) pairs sorted by target, delimited by offsets.
// Flat-loaded indexes already hold this form and pass it through.
func (ix *Index) exceptionRuns() (off []int64, targets []int32, colors []uint8) {
	if ix.exceptions == nil {
		return ix.excOff, ix.excTarget, ix.excColor
	}
	off = make([]int64, len(ix.exceptions)+1)
	total := 0
	for v, exc := range ix.exceptions {
		off[v] = int64(total)
		total += len(exc)
	}
	off[len(ix.exceptions)] = int64(total)
	targets = make([]int32, 0, total)
	colors = make([]uint8, 0, total)
	for _, exc := range ix.exceptions {
		row := make([]int32, 0, len(exc))
		for target := range exc {
			row = append(row, target)
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		targets = append(targets, row...)
		for _, target := range row {
			colors = append(colors, exc[target])
		}
	}
	return off, targets, colors
}

// ReadIndex deserializes an index written with Save (v2) or SaveV1,
// re-attaching it to g (the same network it was built on). This is the
// copying stream path; use core.LoadIndexFile for the zero-copy mmap path.
func ReadIndex(r io.Reader, g *graph.Graph) (*Index, error) {
	br := bufio.NewReader(r)
	if prefix, err := br.Peek(len(binio.FlatMagic)); err == nil && binio.IsFlat(prefix) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("silc: reading index: %w", err)
		}
		f, err := binio.ParseFlat(data, true)
		if err != nil {
			return nil, fmt.Errorf("silc: %w", err)
		}
		return IndexFromFlat(f, g)
	}
	return readIndexV1(br, g)
}

// IndexFromFlat builds an index over the sections of f. The index aliases
// f's data; f must stay open for its lifetime. Exception lookups on a
// flat-loaded index binary-search the sorted on-disk runs instead of
// rebuilt maps, so no per-entry work happens at load time.
func IndexFromFlat(f *binio.FlatFile, g *graph.Graph) (*Index, error) {
	if f.Fourcc() != Fourcc {
		return nil, fmt.Errorf("silc: flat container fourcc %#x is not a SILC index", f.Fourcc())
	}
	mr := f.Meta()
	mr.Magic(silcMagic)
	n := mr.I64()
	m := mr.I64()
	bits := uint(mr.U8())
	buildNs := mr.I64()
	intervals := mr.I64()
	hasNearest := mr.U8() != 0
	if err := mr.Err(); err != nil {
		return nil, fmt.Errorf("silc: reading header: %w", err)
	}
	if n != int64(g.NumVertices()) || m != int64(g.NumEdges()) {
		return nil, fmt.Errorf("silc: index was built for a %dx%d graph, got %dx%d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("silc: implausible normalizer bits %d", bits)
	}
	ix := &Index{
		g:         g,
		norm:      geom.NewNormalizer(g.Bounds(), bits),
		buildTime: time.Duration(buildNs),
		intervals: intervals,
	}
	var err error
	fail := func(err error) (*Index, error) { return nil, fmt.Errorf("silc: %w", err) }
	rowOff, err := f.I64(0)
	if err != nil {
		return fail(err)
	}
	startsData, err := f.U32(1)
	if err != nil {
		return fail(err)
	}
	colorsData, err := f.U8(2)
	if err != nil {
		return fail(err)
	}
	// O(1) structural checks; per-element scans are deliberately skipped so
	// a mapped load touches no data pages.
	if int64(len(rowOff))-1 != n {
		return nil, fmt.Errorf("silc: interval tables have %d rows, graph has %d vertices", len(rowOff)-1, n)
	}
	if len(startsData) != len(colorsData) {
		return nil, fmt.Errorf("%w: silc starts/colors sections differ in length", binio.ErrCorrupt)
	}
	if ix.starts, err = binio.Unflatten(rowOff, startsData); err != nil {
		return fail(err)
	}
	if ix.colors, err = binio.Unflatten(rowOff, colorsData); err != nil {
		return fail(err)
	}
	if hasNearest {
		minDistData, err := f.I32(3)
		if err != nil {
			return fail(err)
		}
		if len(minDistData) != len(startsData) {
			return nil, fmt.Errorf("%w: silc minDist section does not match the interval tables", binio.ErrCorrupt)
		}
		if ix.minDist, err = binio.Unflatten(rowOff, minDistData); err != nil {
			return fail(err)
		}
	}
	if ix.code, err = f.U32(4); err != nil {
		return fail(err)
	}
	if int64(len(ix.code)) != n {
		return nil, fmt.Errorf("silc: code table sized for a different graph")
	}
	if hasNearest {
		if ix.order, err = f.I32(5); err != nil {
			return fail(err)
		}
		if int64(len(ix.order)) != n {
			return nil, fmt.Errorf("silc: order table sized for a different graph")
		}
	}
	if ix.excOff, err = f.I64(6); err != nil {
		return fail(err)
	}
	if ix.excTarget, err = f.I32(7); err != nil {
		return fail(err)
	}
	if ix.excColor, err = f.U8(8); err != nil {
		return fail(err)
	}
	if int64(len(ix.excOff))-1 != n {
		return nil, fmt.Errorf("%w: silc exception offsets sized for a different graph", binio.ErrCorrupt)
	}
	if len(ix.excTarget) != len(ix.excColor) {
		return nil, fmt.Errorf("%w: silc exception target/color sections differ in length", binio.ErrCorrupt)
	}
	// Validate the offsets the same way Unflatten would, without building
	// row views: exception rows are sliced lazily in exceptionColor.
	if _, err := binio.Unflatten(ix.excOff, ix.excTarget); err != nil {
		return fail(err)
	}
	return ix, nil
}

// SaveV1 serializes the index in the legacy length-prefixed v1 format.
// New deployments should prefer Save.
func (ix *Index) SaveV1(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Magic(silcMagic)
	bw.U8(silcVersion)
	bw.I64(int64(ix.g.NumVertices()))
	bw.I64(int64(ix.g.NumEdges()))
	bw.U8(uint8(ix.norm.Bits()))
	bw.I64(ix.buildTime.Nanoseconds())
	bw.I64(ix.intervals)
	hasNearest := uint8(0)
	if ix.minDist != nil {
		hasNearest = 1
	}
	bw.U8(hasNearest)
	bw.U32Slice(ix.code)
	if hasNearest != 0 {
		bw.I32Slice(ix.order)
	}
	excOff, excTarget, excColor := ix.exceptionRuns()
	for v := range ix.starts {
		bw.U32Slice(ix.starts[v])
		bw.U8Slice(ix.colors[v])
		if hasNearest != 0 {
			bw.I32Slice(ix.minDist[v])
		}
		lo, hi := excRow(excOff, v)
		bw.I64(hi - lo)
		for i := lo; i < hi; i++ {
			bw.I32(excTarget[i])
			bw.U8(excColor[i])
		}
	}
	return bw.Flush()
}

// excRow returns the [lo, hi) run of row v in a flat exception table, or
// an empty run when the table is absent.
func excRow(off []int64, v int) (lo, hi int64) {
	if v+1 >= len(off) {
		return 0, 0
	}
	return off[v], off[v+1]
}

// readIndexV1 decodes the legacy length-prefixed format.
func readIndexV1(r io.Reader, g *graph.Graph) (*Index, error) {
	br := binio.NewReader(r)
	br.Magic(silcMagic)
	if v := br.U8(); br.Err() == nil && v != silcVersion {
		return nil, fmt.Errorf("silc: unsupported format version %d (this reader supports v%d and the v%d flat container)",
			v, silcVersion, binio.FlatVersion)
	}
	n := br.I64()
	m := br.I64()
	if br.Err() == nil && (n != int64(g.NumVertices()) || m != int64(g.NumEdges())) {
		return nil, fmt.Errorf("silc: index was built for a %dx%d graph, got %dx%d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	bits := uint(br.U8())
	if br.Err() != nil {
		return nil, fmt.Errorf("silc: reading index: %w", br.Err())
	}
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("silc: implausible normalizer bits %d", bits)
	}
	ix := &Index{
		g:          g,
		norm:       geom.NewNormalizer(g.Bounds(), bits),
		starts:     make([][]uint32, g.NumVertices()),
		colors:     make([][]uint8, g.NumVertices()),
		exceptions: make([]map[graph.VertexID]uint8, g.NumVertices()),
	}
	ix.buildTime = time.Duration(br.I64())
	ix.intervals = br.I64()
	hasNearest := br.U8() != 0
	ix.code = br.U32Slice()
	if br.Err() != nil {
		return nil, fmt.Errorf("silc: reading index: %w", br.Err())
	}
	if len(ix.code) != g.NumVertices() {
		return nil, fmt.Errorf("silc: code table sized for a different graph")
	}
	if hasNearest {
		ix.order = br.I32Slice()
		if br.Err() == nil && len(ix.order) != g.NumVertices() {
			return nil, fmt.Errorf("silc: order table sized for a different graph")
		}
		for _, ov := range ix.order {
			if ov < 0 || int64(ov) >= n {
				return nil, fmt.Errorf("silc: order entry %d out of range", ov)
			}
		}
		ix.minDist = make([][]int32, g.NumVertices())
	}
	for v := 0; v < g.NumVertices(); v++ {
		ix.starts[v] = br.U32Slice()
		ix.colors[v] = br.U8Slice()
		if len(ix.starts[v]) != len(ix.colors[v]) {
			return nil, fmt.Errorf("silc: interval arrays of vertex %d inconsistent", v)
		}
		if hasNearest {
			ix.minDist[v] = br.I32Slice()
			if br.Err() == nil && len(ix.minDist[v]) != len(ix.starts[v]) {
				return nil, fmt.Errorf("silc: minDist array of vertex %d inconsistent", v)
			}
		}
		count := br.I64()
		if br.Err() != nil {
			return nil, fmt.Errorf("silc: reading index: %w", br.Err())
		}
		if count < 0 || count > n {
			return nil, fmt.Errorf("silc: implausible exception count %d", count)
		}
		if count > 0 {
			exc := make(map[graph.VertexID]uint8, count)
			for i := int64(0); i < count; i++ {
				target := br.I32()
				color := br.U8()
				if target < 0 || int64(target) >= n {
					return nil, fmt.Errorf("silc: exception target %d out of range", target)
				}
				exc[target] = color
			}
			ix.exceptions[v] = exc
		}
	}
	if br.Err() != nil {
		return nil, fmt.Errorf("silc: reading index: %w", br.Err())
	}
	return ix, nil
}
