package silc_test

import (
	"context"
	"errors"
	"testing"

	"roadnet/internal/graph"
	"roadnet/internal/silc"
	"roadnet/internal/testutil"
)

func buildSILC(t *testing.T, g *graph.Graph) *silc.Index {
	t.Helper()
	ix, err := silc.Build(g, silc.Options{})
	if err != nil {
		t.Fatalf("silc.Build: %v", err)
	}
	return ix
}

// checkBatchBitIdentical verifies the batch matrix against per-pair
// Distance calls — the batch acceleration contract requires bit-identical
// values, including Infinity placement for unreachable pairs.
func checkBatchBitIdentical(t *testing.T, ix *silc.Index, sources, targets []graph.VertexID) {
	t.Helper()
	table, err := ix.BatchDistance(context.Background(), sources, targets)
	if err != nil {
		t.Fatalf("BatchDistance: %v", err)
	}
	if len(table) != len(sources) {
		t.Fatalf("BatchDistance returned %d rows, want %d", len(table), len(sources))
	}
	for i, s := range sources {
		if len(table[i]) != len(targets) {
			t.Fatalf("row %d has %d entries, want %d", i, len(table[i]), len(targets))
		}
		for j, tgt := range targets {
			if want := ix.Distance(s, tgt); table[i][j] != want {
				t.Errorf("batch dist(%d, %d) = %d, per-pair = %d", s, tgt, table[i][j], want)
			}
		}
	}
}

func TestSILCBatchDistanceBitIdentical(t *testing.T) {
	g := testutil.SmallRoad(900, 951)
	ix := buildSILC(t, g)
	var sources, targets []graph.VertexID
	for _, p := range testutil.SamplePairs(g, 12, 521) {
		sources = append(sources, p[0])
		targets = append(targets, p[1])
	}
	checkBatchBitIdentical(t, ix, sources, targets)
	checkBatchBitIdentical(t, ix, sources[:1], targets)
	checkBatchBitIdentical(t, ix, sources, targets[:1])
	checkBatchBitIdentical(t, ix, nil, targets)
	checkBatchBitIdentical(t, ix, sources, nil)
	// Sources == targets exercises the zero diagonal and heavy prefix
	// sharing at once.
	checkBatchBitIdentical(t, ix, sources, sources)
}

// TestSILCBatchDistanceSharedPrefixes stresses the memo: all vertices of a
// small graph as sources against a handful of targets means nearly every
// walk resolves through a previously recorded suffix.
func TestSILCBatchDistanceSharedPrefixes(t *testing.T) {
	g := testutil.SmallRoad(400, 57)
	ix := buildSILC(t, g)
	sources := make([]graph.VertexID, g.NumVertices())
	for i := range sources {
		sources[i] = graph.VertexID(i)
	}
	targets := []graph.VertexID{0, graph.VertexID(g.NumVertices() / 2), graph.VertexID(g.NumVertices() - 1)}
	checkBatchBitIdentical(t, ix, sources, targets)
}

// TestSILCBatchDistanceDisconnected checks that unreachable suffixes are
// memoized correctly: a two-component graph yields whole blocks of
// Infinity in the matrix.
func TestSILCBatchDistanceDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	g0 := testutil.Figure1()
	for i := 0; i < 4; i++ {
		b.AddVertex(g0.Coord(graph.VertexID(i)))
	}
	_ = b.AddEdge(0, 1, 3)
	_ = b.AddEdge(2, 3, 4)
	g := b.Build()
	ix := buildSILC(t, g)
	all := make([]graph.VertexID, g.NumVertices())
	for i := range all {
		all[i] = graph.VertexID(i)
	}
	checkBatchBitIdentical(t, ix, all, all)
}

func TestSILCBatchDistanceCancelled(t *testing.T) {
	g := testutil.SmallRoad(400, 57)
	ix := buildSILC(t, g)
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	table, err := ix.BatchDistance(ctx, []graph.VertexID{0, 1}, []graph.VertexID{2, 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BatchDistance on cancelled context: err = %v, want context.Canceled", err)
	}
	if table != nil {
		t.Fatalf("BatchDistance on cancelled context returned a partial table")
	}
}

func TestSILCContextCancelled(t *testing.T) {
	g := testutil.SmallRoad(400, 57)
	ix := buildSILC(t, g)
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	if _, err := ix.DistanceContext(ctx, 0, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("DistanceContext err = %v, want context.Canceled", err)
	}
	if _, _, err := ix.ShortestPathContext(ctx, 0, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("ShortestPathContext err = %v, want context.Canceled", err)
	}
}
