package workload

import (
	"bytes"
	"strings"
	"testing"

	"roadnet/internal/gen"
)

func TestCSVRoundtrip(t *testing.T) {
	g := gen.Generate(gen.Params{N: 900, Seed: 21})
	sets, err := LInfSets(g, Config{PairsPerSet: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sets); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sets) {
		t.Fatalf("roundtrip: %d sets, want %d", len(got), len(sets))
	}
	for i := range sets {
		if got[i].Name != sets[i].Name || got[i].Lo != sets[i].Lo || got[i].Hi != sets[i].Hi {
			t.Fatalf("set %d metadata differs: %+v vs %+v", i, got[i], sets[i])
		}
		if len(got[i].Pairs) != len(sets[i].Pairs) {
			t.Fatalf("set %d has %d pairs, want %d", i, len(got[i].Pairs), len(sets[i].Pairs))
		}
		for j := range sets[i].Pairs {
			if got[i].Pairs[j] != sets[i].Pairs[j] {
				t.Fatalf("set %d pair %d differs", i, j)
			}
		}
	}
}

func TestCSVRejectsBadInput(t *testing.T) {
	g := gen.Generate(gen.Params{N: 100, Seed: 22})
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"header only", "set,lo,hi,source,target\n"},
		{"bad header", "a,b,c,d,e\nQ1,0,5,1,2\n"},
		{"non-integer", "set,lo,hi,source,target\nQ1,0,5,x,2\n"},
		{"vertex out of range", "set,lo,hi,source,target\nQ1,0,5,1,50000\n"},
		{"short row", "set,lo,hi,source,target\nQ1,0,5\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), g); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
