package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"roadnet/internal/graph"
)

// Query-set persistence. The paper's workloads are fixed sets of 10 000
// vertex pairs per bucket; persisting them lets different implementations
// (or different runs) be measured on byte-identical workloads. The format
// is CSV with one row per pair: set name, lower bound, upper bound, source,
// target.

// WriteCSV writes the query sets.
func WriteCSV(w io.Writer, sets []QuerySet) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"set", "lo", "hi", "source", "target"}); err != nil {
		return err
	}
	for _, qs := range sets {
		lo := strconv.FormatInt(qs.Lo, 10)
		hi := strconv.FormatInt(qs.Hi, 10)
		for _, p := range qs.Pairs {
			if err := cw.Write([]string{qs.Name, lo, hi,
				strconv.FormatInt(int64(p.S), 10), strconv.FormatInt(int64(p.T), 10)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads query sets written by WriteCSV, validating vertex ids
// against g. Sets appear in first-encounter order.
func ReadCSV(r io.Reader, g *graph.Graph) ([]QuerySet, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading header: %w", err)
	}
	if header[0] != "set" {
		return nil, fmt.Errorf("workload: unexpected header %v", header)
	}
	n := int64(g.NumVertices())
	var sets []QuerySet
	index := map[string]int{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		lo, err1 := strconv.ParseInt(rec[1], 10, 64)
		hi, err2 := strconv.ParseInt(rec[2], 10, 64)
		s, err3 := strconv.ParseInt(rec[3], 10, 32)
		t, err4 := strconv.ParseInt(rec[4], 10, 32)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("workload: non-integer field in %v", rec)
		}
		if s < 0 || s >= n || t < 0 || t >= n {
			return nil, fmt.Errorf("workload: vertex id out of range in %v", rec)
		}
		i, ok := index[rec[0]]
		if !ok {
			i = len(sets)
			index[rec[0]] = i
			sets = append(sets, QuerySet{Name: rec[0], Lo: lo, Hi: hi})
		}
		sets[i].Pairs = append(sets[i].Pairs, Pair{S: graph.VertexID(s), T: graph.VertexID(t)})
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("workload: no query pairs in input")
	}
	return sets, nil
}
