// Package workload generates the paper's query workloads (§4.2, App. E.2):
//
//   - Q1..Q10: pairs of vertices bucketed by L-infinity distance. The paper
//     imposes a 1024x1024 grid with cell side l and draws pairs with L-inf
//     distance in [2^(i-1)*l, 2^i*l).
//   - R1..R10: pairs bucketed by road-network distance; the paper draws
//     pairs with dist in [2^(i-11)*ld, 2^(i-10)*ld) for a diameter
//     estimate ld.
//
// Our synthetic maps are geometrically smaller than the USA graphs (the
// scaled presets compress the ratio between map extent and vertex spacing),
// so a fixed factor-2 ladder anchored at extent/1024 would leave the lowest
// buckets empty. We therefore keep 10 geometrically growing buckets that
// span the achievable range [minSep, extent) — the ladder degenerates to
// the paper's factor-2 ladder as the maps grow. The semantics of the
// experiments are preserved: low buckets are local queries (TNR must fall
// back to CH), high buckets cross the map (TNR answers from its tables).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"roadnet/internal/dijkstra"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// Pair is one query: a source and a target vertex.
type Pair struct {
	S, T graph.VertexID
}

// QuerySet is one bucket of query pairs, e.g. Q3 or R7.
type QuerySet struct {
	// Name is "Q1".."Q10" or "R1".."R10".
	Name string
	// Lo and Hi bound the distance (L-infinity or network) of every pair:
	// Lo <= d < Hi.
	Lo, Hi int64
	// Pairs holds the generated queries.
	Pairs []Pair
}

// Config controls workload generation.
type Config struct {
	// NumSets is the number of buckets; the paper uses 10. Default 10.
	NumSets int
	// PairsPerSet is the number of queries per bucket; the paper uses
	// 10000. Default 1000.
	PairsPerSet int
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.NumSets <= 0 {
		c.NumSets = 10
	}
	if c.PairsPerSet <= 0 {
		c.PairsPerSet = 1000
	}
	return c
}

// ladder returns numSets geometric bucket boundaries spanning [lo, hi).
func ladder(lo, hi float64, numSets int) []int64 {
	if lo < 1 {
		lo = 1
	}
	if hi <= lo*2 {
		hi = lo * 2 * float64(numSets)
	}
	r := math.Pow(hi/lo, 1/float64(numSets))
	bounds := make([]int64, numSets+1)
	x := lo
	for i := 0; i <= numSets; i++ {
		bounds[i] = int64(math.Round(x))
		x *= r
	}
	bounds[numSets] = int64(hi)
	return bounds
}

// LInfSets generates the Q1..Q10 analogues for g: pairs bucketed by the
// L-infinity distance between their coordinates.
func LInfSets(g *graph.Graph, cfg Config) ([]QuerySet, error) {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	if n < 2 {
		return nil, fmt.Errorf("workload: graph too small (%d vertices)", n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bounds := geom.BoundingRect(g.Coords())
	extent := bounds.Width()
	if h := bounds.Height(); h > extent {
		extent = h
	}
	minSep := estimateMinSeparation(g, rng)
	bnds := ladder(float64(minSep), float64(extent), cfg.NumSets)

	// Acceleration grid for annulus sampling.
	const accel = 64
	grid := geom.NewGrid(bounds, accel, accel)
	cellVerts := make([][]graph.VertexID, grid.NumCells())
	for v := 0; v < n; v++ {
		c, r := grid.CellOf(g.Coord(graph.VertexID(v)))
		i := grid.CellIndex(c, r)
		cellVerts[i] = append(cellVerts[i], graph.VertexID(v))
	}

	sets := make([]QuerySet, cfg.NumSets)
	for i := 0; i < cfg.NumSets; i++ {
		lo, hi := bnds[i], bnds[i+1]
		set := QuerySet{Name: fmt.Sprintf("Q%d", i+1), Lo: lo, Hi: hi}
		set.Pairs = sampleLInfPairs(g, grid, cellVerts, rng, lo, hi, cfg.PairsPerSet)
		if len(set.Pairs) == 0 {
			return nil, fmt.Errorf("workload: no pairs with L-inf distance in [%d, %d)", lo, hi)
		}
		sets[i] = set
	}
	return sets, nil
}

// sampleLInfPairs draws up to count pairs with L-inf distance in [lo, hi):
// rejection sampling first (fast for wide annuli), then guided sampling via
// the acceleration grid for narrow annuli.
func sampleLInfPairs(g *graph.Graph, grid geom.Grid, cellVerts [][]graph.VertexID,
	rng *rand.Rand, lo, hi int64, count int) []Pair {
	n := g.NumVertices()
	pairs := make([]Pair, 0, count)
	inRange := func(s, t graph.VertexID) bool {
		d := g.Coord(s).LInf(g.Coord(t))
		return d >= lo && d < hi
	}
	rejectionBudget := count * 40
	for len(pairs) < count && rejectionBudget > 0 {
		rejectionBudget--
		s := graph.VertexID(rng.Intn(n))
		t := graph.VertexID(rng.Intn(n))
		if s != t && inRange(s, t) {
			pairs = append(pairs, Pair{S: s, T: t})
		}
	}
	// Guided phase: for a random s, enumerate grid cells overlapping the
	// L-inf annulus and pick a random in-range vertex.
	cw, chh := grid.CellSize()
	cell := cw
	if chh > cell {
		cell = chh
	}
	attempts := count * 20
	for len(pairs) < count && attempts > 0 {
		attempts--
		s := graph.VertexID(rng.Intn(n))
		sc, sr := grid.CellOf(g.Coord(s))
		rLo := int(lo/cell) - 1
		rHi := int(hi/cell) + 1
		if rLo < 0 {
			rLo = 0
		}
		var candidates []graph.VertexID
		for dr := -rHi; dr <= rHi; dr++ {
			for dc := -rHi; dc <= rHi; dc++ {
				if max(abs(dr), abs(dc)) < rLo {
					continue
				}
				c, r := sc+dc, sr+dr
				if c < 0 || c >= grid.Cols || r < 0 || r >= grid.Rows {
					continue
				}
				for _, v := range cellVerts[grid.CellIndex(c, r)] {
					if v != s && inRange(s, v) {
						candidates = append(candidates, v)
					}
				}
			}
		}
		if len(candidates) > 0 {
			pairs = append(pairs, Pair{S: s, T: candidates[rng.Intn(len(candidates))]})
		}
	}
	return pairs
}

// estimateMinSeparation returns a small achievable L-inf distance between
// distinct vertices: the minimum over sampled adjacent pairs.
func estimateMinSeparation(g *graph.Graph, rng *rand.Rand) int64 {
	n := g.NumVertices()
	best := int64(math.MaxInt64)
	for i := 0; i < 200; i++ {
		v := graph.VertexID(rng.Intn(n))
		g.Neighbors(v, func(w graph.VertexID, _ graph.Weight, _ int32) bool {
			if d := g.Coord(v).LInf(g.Coord(w)); d > 0 && d < best {
				best = d
			}
			return true
		})
	}
	if best == math.MaxInt64 {
		best = 1
	}
	return best
}

// NetworkDistanceSets generates the R1..R10 analogues (App. E.2): pairs
// bucketed by shortest-path distance. Each random source contributes up to
// perSourceCap targets to every bucket from one Dijkstra run.
func NetworkDistanceSets(g *graph.Graph, cfg Config) ([]QuerySet, error) {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	if n < 2 {
		return nil, fmt.Errorf("workload: graph too small (%d vertices)", n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	ld := EstimateDiameter(g, cfg.Seed)
	minW := minEdgeWeight(g)
	bnds := ladder(float64(minW)*1.5, float64(ld), cfg.NumSets)

	sets := make([]QuerySet, cfg.NumSets)
	for i := range sets {
		sets[i] = QuerySet{
			Name:  fmt.Sprintf("R%d", i+1),
			Lo:    bnds[i],
			Hi:    bnds[i+1],
			Pairs: make([]Pair, 0, cfg.PairsPerSet),
		}
	}
	bucketOf := func(d int64) int {
		for i := range sets {
			if d >= sets[i].Lo && d < sets[i].Hi {
				return i
			}
		}
		return -1
	}

	ctx := dijkstra.NewContext(g)
	perSourceCap := 10
	if cfg.PairsPerSet < perSourceCap {
		perSourceCap = cfg.PairsPerSet
	}
	maxSources := 40 * cfg.NumSets * (cfg.PairsPerSet/perSourceCap + 1)
	byBucket := make([][]graph.VertexID, cfg.NumSets)
	for iter := 0; iter < maxSources; iter++ {
		done := true
		for i := range sets {
			if len(sets[i].Pairs) < cfg.PairsPerSet {
				done = false
				break
			}
		}
		if done {
			break
		}
		s := graph.VertexID(rng.Intn(n))
		ctx.Run([]graph.VertexID{s}, dijkstra.Options{})
		for i := range byBucket {
			byBucket[i] = byBucket[i][:0]
		}
		for _, v := range ctx.Settled() {
			if v == s {
				continue
			}
			if b := bucketOf(ctx.Dist(v)); b >= 0 {
				byBucket[b] = append(byBucket[b], v)
			}
		}
		for i := range sets {
			need := cfg.PairsPerSet - len(sets[i].Pairs)
			if need <= 0 || len(byBucket[i]) == 0 {
				continue
			}
			take := perSourceCap
			if take > need {
				take = need
			}
			for j := 0; j < take; j++ {
				t := byBucket[i][rng.Intn(len(byBucket[i]))]
				sets[i].Pairs = append(sets[i].Pairs, Pair{S: s, T: t})
			}
		}
	}
	for i := range sets {
		if len(sets[i].Pairs) == 0 {
			return nil, fmt.Errorf("workload: no pairs with network distance in [%d, %d)", sets[i].Lo, sets[i].Hi)
		}
	}
	return sets, nil
}

// EstimateDiameter estimates the maximum shortest-path distance in g via a
// double sweep: Dijkstra from a random vertex, then from the farthest vertex
// found. This mirrors the paper's "rough estimation of the maximum distance
// ld between any two vertices".
func EstimateDiameter(g *graph.Graph, seed int64) int64 {
	rng := rand.New(rand.NewSource(seed + 13))
	ctx := dijkstra.NewContext(g)
	far := graph.VertexID(rng.Intn(g.NumVertices()))
	var ld int64
	for sweep := 0; sweep < 2; sweep++ {
		ctx.Run([]graph.VertexID{far}, dijkstra.Options{})
		for _, v := range ctx.Settled() {
			if d := ctx.Dist(v); d > ld {
				ld = d
				far = v
			}
		}
	}
	if ld < 1 {
		ld = 1
	}
	return ld
}

func minEdgeWeight(g *graph.Graph) int64 {
	best := int64(math.MaxInt64)
	for v := 0; v < g.NumVertices(); v++ {
		lo, hi := g.ArcsOf(graph.VertexID(v))
		for a := lo; a < hi; a++ {
			if w := int64(g.ArcWeight(a)); w < best {
				best = w
			}
		}
	}
	if best == math.MaxInt64 {
		return 1
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
