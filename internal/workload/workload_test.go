package workload

import (
	"testing"

	"roadnet/internal/dijkstra"
	"roadnet/internal/gen"
	"roadnet/internal/graph"
)

func testGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	return gen.Generate(gen.Params{N: n, Seed: 21})
}

func TestLInfSets(t *testing.T) {
	g := testGraph(t, 2500)
	sets, err := LInfSets(g, Config{NumSets: 10, PairsPerSet: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 10 {
		t.Fatalf("got %d sets, want 10", len(sets))
	}
	for i, qs := range sets {
		if len(qs.Pairs) == 0 {
			t.Errorf("%s is empty", qs.Name)
		}
		if i > 0 && qs.Lo < sets[i-1].Hi {
			t.Errorf("%s range [%d,%d) overlaps previous [%d,%d)", qs.Name, qs.Lo, qs.Hi, sets[i-1].Lo, sets[i-1].Hi)
		}
		for _, p := range qs.Pairs {
			if p.S == p.T {
				t.Errorf("%s has degenerate pair %v", qs.Name, p)
			}
			d := g.Coord(p.S).LInf(g.Coord(p.T))
			if d < qs.Lo || d >= qs.Hi {
				t.Errorf("%s pair (%d,%d): L-inf %d outside [%d,%d)", qs.Name, p.S, p.T, d, qs.Lo, qs.Hi)
			}
		}
	}
	// Monotonicity of bucket midpoints: Qi must contain longer-range queries
	// than Qi-1 (the defining property of the paper's sets).
	for i := 1; i < len(sets); i++ {
		if sets[i].Lo <= sets[i-1].Lo {
			t.Errorf("bucket lower bounds must grow: %d then %d", sets[i-1].Lo, sets[i].Lo)
		}
	}
}

func TestLInfSetsDeterministic(t *testing.T) {
	g := testGraph(t, 900)
	a, err := LInfSets(g, Config{PairsPerSet: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LInfSets(g, Config{PairsPerSet: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].Pairs) != len(b[i].Pairs) {
			t.Fatalf("set %d sizes differ", i)
		}
		for j := range a[i].Pairs {
			if a[i].Pairs[j] != b[i].Pairs[j] {
				t.Fatalf("set %d pair %d differs", i, j)
			}
		}
	}
}

func TestLInfSetsTooSmallGraph(t *testing.T) {
	b := graph.NewBuilder(1)
	b.AddVertex(testGraph(t, 4).Coord(0))
	g := b.Build()
	if _, err := LInfSets(g, Config{}); err == nil {
		t.Error("expected error for single-vertex graph")
	}
}

func TestNetworkDistanceSets(t *testing.T) {
	g := testGraph(t, 1600)
	sets, err := NetworkDistanceSets(g, Config{NumSets: 10, PairsPerSet: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 10 {
		t.Fatalf("got %d sets, want 10", len(sets))
	}
	ctx := dijkstra.NewContext(g)
	for _, rs := range sets {
		if len(rs.Pairs) == 0 {
			t.Errorf("%s is empty", rs.Name)
			continue
		}
		if rs.Name[0] != 'R' {
			t.Errorf("set name %q should start with R", rs.Name)
		}
		// Verify each pair's true network distance is in the declared range.
		for _, p := range rs.Pairs[:min(len(rs.Pairs), 10)] {
			d := ctx.Distance(p.S, p.T)
			if d < rs.Lo || d >= rs.Hi {
				t.Errorf("%s pair (%d,%d): network dist %d outside [%d,%d)", rs.Name, p.S, p.T, d, rs.Lo, rs.Hi)
			}
		}
	}
	for i := 1; i < len(sets); i++ {
		if sets[i].Lo < sets[i-1].Hi {
			t.Errorf("R ranges overlap at %d", i)
		}
	}
}

func TestEstimateDiameter(t *testing.T) {
	g := testGraph(t, 400)
	ld := EstimateDiameter(g, 1)
	if ld <= 0 {
		t.Fatalf("diameter estimate %d must be positive", ld)
	}
	// The estimate must be achievable: it came from an actual Dijkstra run,
	// so it is at most the true diameter and at least the eccentricity of
	// one vertex. Check it is at least as large as a random pair's distance
	// divided by 2 (double sweep lower-bound property).
	ctx := dijkstra.NewContext(g)
	d := ctx.Distance(0, graph.VertexID(g.NumVertices()-1))
	if ld < d/2 {
		t.Errorf("diameter estimate %d implausibly small vs sample distance %d", ld, d)
	}
}

func TestLadder(t *testing.T) {
	b := ladder(10, 10240, 10)
	if len(b) != 11 {
		t.Fatalf("ladder length %d, want 11", len(b))
	}
	if b[0] != 10 || b[10] != 10240 {
		t.Errorf("ladder endpoints [%d, %d], want [10, 10240]", b[0], b[10])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Errorf("ladder not strictly increasing at %d: %v", i, b)
		}
	}
	// Degenerate input gets widened rather than panicking.
	b = ladder(100, 50, 4)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("degenerate ladder not increasing: %v", b)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
