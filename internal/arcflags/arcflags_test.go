package arcflags_test

import (
	"testing"

	"roadnet/internal/arcflags"
	"roadnet/internal/dijkstra"
	"roadnet/internal/gen"
	"roadnet/internal/graph"
	"roadnet/internal/testutil"
)

func TestArcFlagsExhaustiveFigure1(t *testing.T) {
	g := testutil.Figure1()
	ix := arcflags.Build(g, arcflags.Options{GridSize: 2})
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.AllPairs(g), ix.ShortestPath)
}

func TestArcFlagsRoadNetwork(t *testing.T) {
	g := testutil.SmallRoad(900, 701)
	ix := arcflags.Build(g, arcflags.Options{GridSize: 8})
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.SamplePairs(g, 300, 101), ix.Distance)
	testutil.CheckPathsAgainstDijkstra(t, g, testutil.SamplePairs(g, 100, 103), ix.ShortestPath)
}

func TestArcFlagsAdversarialGraph(t *testing.T) {
	// Ties are common in random graphs; the tight-arc flags must cover
	// them.
	g := gen.RandomConnected(150, 300, 16, 701)
	ix := arcflags.Build(g, arcflags.Options{GridSize: 4})
	testutil.CheckDistancesAgainstDijkstra(t, g, testutil.AllPairs(g)[:4000], ix.Distance)
}

func TestArcFlagsPruneSearch(t *testing.T) {
	g := testutil.SmallRoad(2500, 703)
	ix := arcflags.Build(g, arcflags.Options{GridSize: 8})
	ctx := dijkstra.NewContext(g)
	var flagged, plain int
	for _, p := range testutil.SamplePairs(g, 30, 107) {
		if p[0] == p[1] {
			continue
		}
		ix.Distance(p[0], p[1])
		flagged += ix.SettledLast()
		plain += ctx.Run([]graph.VertexID{p[0]}, dijkstra.Options{Targets: []graph.VertexID{p[1]}})
	}
	if flagged >= plain {
		t.Errorf("arc flags settled %d >= plain Dijkstra %d; no pruning", flagged, plain)
	}
}

func TestArcFlagsDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	g0 := testutil.Figure1()
	for i := 0; i < 4; i++ {
		b.AddVertex(g0.Coord(graph.VertexID(i)))
	}
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(2, 3, 1)
	g := b.Build()
	ix := arcflags.Build(g, arcflags.Options{GridSize: 2})
	if d := ix.Distance(0, 3); d != graph.Infinity {
		t.Errorf("cross-component distance = %d", d)
	}
}

func TestArcFlagsStats(t *testing.T) {
	g := testutil.SmallRoad(400, 707)
	ix := arcflags.Build(g, arcflags.Options{})
	if ix.SizeBytes() <= 0 || ix.BuildTime() <= 0 {
		t.Error("stats must be positive")
	}
}
