// Package arcflags implements Arc Flags (Hilger et al., surveyed in the
// paper's Appendix A): a grid is imposed on the network and every directed
// arc is tagged with the set of grid cells it leads to on some shortest
// path. A query runs Dijkstra's algorithm but relaxes only arcs whose flag
// for the target's cell is set, pruning edges that cannot be on the way.
//
// The paper cites prior work showing Arc Flags inferior to CH in space and
// query time; this package lets the claim be checked on our testbed (the
// extension benchmarks do exactly that).
//
// Flags are computed exactly, ties included: for each cell C and each
// boundary vertex b of C, an arc (u -> v) is flagged for C when
// dist(u, b) = w(u, v) + dist(v, b) — i.e. the arc is tight on some
// shortest path toward b — and every arc whose head lies in C is flagged
// for C. Together these cover every shortest path into the cell.
package arcflags

import (
	"context"
	"runtime"
	"sync"
	"time"

	"roadnet/internal/cancel"
	"roadnet/internal/dijkstra"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
	"roadnet/internal/pq"
)

// Options configures Build.
type Options struct {
	// GridSize is the number of cells per axis (default 8).
	GridSize int
	// Workers bounds preprocessing parallelism (default GOMAXPROCS).
	Workers int
}

// Index is a built arc-flags index. The flag tables are immutable after
// Build, so one Index may be shared by any number of goroutines; per-query
// mutable state lives in a Searcher (create one per goroutine with
// NewSearcher). The Index's own Distance/ShortestPath methods delegate to
// one internal default Searcher and are therefore not safe for concurrent
// use.
type Index struct {
	g      *graph.Graph
	grid   geom.Grid
	cellOf []int32
	words  int
	// flags[arc*words .. arc*words+words) is the cell bitset of the arc.
	flags []uint64

	buildTime time.Duration

	// def is the default searcher backing the Index's own query methods.
	def *Searcher
}

// Searcher is a reusable flag-pruned Dijkstra context over an Index. It is
// not safe for concurrent use; create one per goroutine.
type Searcher struct {
	ix *Index

	dist        []int64
	parent      []int32
	gen         []uint32
	cur         uint32
	heap        *pq.Heap
	settledLast int

	// pathBuf and pathIter are the searcher-owned scratch behind OpenPath
	// and the path collector: the parent walk is assembled into pathBuf
	// (reused across queries) and streamed from pathIter.
	pathBuf  []graph.VertexID
	pathIter graph.SlicePath
}

// NewSearcher returns a fresh query context sharing ix's immutable flag
// tables.
func (ix *Index) NewSearcher() *Searcher {
	n := ix.g.NumVertices()
	return &Searcher{
		ix:     ix,
		dist:   make([]int64, n),
		parent: make([]int32, n),
		gen:    make([]uint32, n),
		heap:   pq.New(n),
	}
}

// Build computes arc flags for g.
func Build(g *graph.Graph, opts Options) *Index {
	start := time.Now()
	if opts.GridSize <= 0 {
		opts.GridSize = 8
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	ix := &Index{
		g:      g,
		grid:   geom.NewGrid(g.Bounds(), opts.GridSize, opts.GridSize),
		cellOf: make([]int32, n),
		words:  (opts.GridSize*opts.GridSize + 63) / 64,
	}
	ix.flags = make([]uint64, g.NumArcs()*ix.words)
	for v := 0; v < n; v++ {
		c, r := ix.grid.CellOf(g.Coord(graph.VertexID(v)))
		ix.cellOf[v] = int32(ix.grid.CellIndex(c, r))
	}

	// Arcs whose head lies in C are flagged for C.
	for u := 0; u < n; u++ {
		lo, hi := g.ArcsOf(graph.VertexID(u))
		for a := lo; a < hi; a++ {
			ix.setFlag(a, ix.cellOf[g.Head(a)])
		}
	}

	// Boundary vertices per cell.
	boundary := make([][]graph.VertexID, ix.grid.NumCells())
	for u := 0; u < n; u++ {
		cu := ix.cellOf[u]
		isBoundary := false
		g.Neighbors(graph.VertexID(u), func(v graph.VertexID, _ graph.Weight, _ int32) bool {
			if ix.cellOf[v] != cu {
				isBoundary = true
				return false
			}
			return true
		})
		if isBoundary {
			boundary[cu] = append(boundary[cu], graph.VertexID(u))
		}
	}

	// One Dijkstra per boundary vertex; tight arcs toward it get the
	// cell's flag. Workers own a context each; flag words are written with
	// atomic-free partitioning per cell (each cell processed by exactly
	// one worker would still race on shared arcs across cells), so flag
	// updates go through a mutex-guarded merge per search instead.
	var mu sync.Mutex
	var wg sync.WaitGroup
	cellCh := make(chan int, opts.Workers*2)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := dijkstra.NewContext(g)
			local := make([]int32, 0, 1024) // arcs to flag for the current cell
			for cell := range cellCh {
				local = local[:0]
				for _, b := range boundary[cell] {
					ctx.Run([]graph.VertexID{b}, dijkstra.Options{})
					for u := 0; u < n; u++ {
						du := ctx.Dist(graph.VertexID(u))
						if du >= graph.Infinity {
							continue
						}
						lo, hi := g.ArcsOf(graph.VertexID(u))
						for a := lo; a < hi; a++ {
							if ctx.Dist(g.Head(a))+int64(g.ArcWeight(a)) == du {
								local = append(local, a)
							}
						}
					}
				}
				mu.Lock()
				for _, a := range local {
					ix.setFlag(a, int32(cell))
				}
				mu.Unlock()
			}
		}()
	}
	for cell := 0; cell < ix.grid.NumCells(); cell++ {
		cellCh <- cell
	}
	close(cellCh)
	wg.Wait()

	ix.buildTime = time.Since(start)
	return ix
}

// defSearcher lazily creates the default searcher, so indexes queried only
// through NewSearcher/pools never pay for its O(n) arrays. Lazy without a
// lock is fine: the Index's own query methods are single-goroutine by
// contract.
func (ix *Index) defSearcher() *Searcher {
	if ix.def == nil {
		ix.def = ix.NewSearcher()
	}
	return ix.def
}

func (ix *Index) setFlag(arc int32, cell int32) {
	ix.flags[int(arc)*ix.words+int(cell)/64] |= 1 << (uint(cell) % 64)
}

func (ix *Index) hasFlag(arc int32, cell int32) bool {
	return ix.flags[int(arc)*ix.words+int(cell)/64]&(1<<(uint(cell)%64)) != 0
}

func (s *Searcher) reset() {
	s.cur++
	if s.cur == 0 {
		for i := range s.gen {
			s.gen[i] = 0
		}
		s.cur = 1
	}
	s.heap.Clear()
}

// runCtx executes the flag-pruned Dijkstra from src toward t, polling ctx
// every cancel.Interval settled vertices and aborting with its error.
func (s *Searcher) runCtx(ctx context.Context, src, t graph.VertexID) (bool, error) {
	ix := s.ix
	s.reset()
	s.settledLast = 0
	target := ix.cellOf[t]
	s.gen[src] = s.cur
	s.dist[src] = 0
	s.parent[src] = -1
	s.heap.Push(src, 0)
	for !s.heap.Empty() {
		if err := cancel.Poll(ctx, s.settledLast); err != nil {
			return false, err
		}
		v, d := s.heap.Pop()
		s.settledLast++
		if v == t {
			return true, nil
		}
		lo, hi := ix.g.ArcsOf(v)
		for a := lo; a < hi; a++ {
			if !ix.hasFlag(a, target) {
				continue
			}
			w := ix.g.Head(a)
			nd := d + int64(ix.g.ArcWeight(a))
			if s.gen[w] != s.cur {
				s.gen[w] = s.cur
				s.dist[w] = nd
				s.parent[w] = int32(v)
				s.heap.Push(w, nd)
			} else if nd < s.dist[w] && s.heap.Contains(w) {
				s.dist[w] = nd
				s.parent[w] = int32(v)
				s.heap.Push(w, nd)
			}
		}
	}
	return false, nil
}

// Distance answers a distance query.
func (s *Searcher) Distance(src, t graph.VertexID) int64 {
	d, _ := s.DistanceContext(context.Background(), src, t)
	return d
}

// ShortestPath answers a shortest-path query.
func (s *Searcher) ShortestPath(src, t graph.VertexID) ([]graph.VertexID, int64) {
	path, d, _ := s.ShortestPathContext(context.Background(), src, t)
	return path, d
}

// DistanceContext is Distance with cancellation (see runCtx). An
// already-cancelled context aborts before any work, trivial s == t
// queries included.
func (s *Searcher) DistanceContext(ctx context.Context, src, t graph.VertexID) (int64, error) {
	if err := ctx.Err(); err != nil {
		return graph.Infinity, err
	}
	if src == t {
		return 0, nil
	}
	found, err := s.runCtx(ctx, src, t)
	if err != nil {
		return graph.Infinity, err
	}
	if !found {
		return graph.Infinity, nil
	}
	return s.dist[t], nil
}

// ShortestPathContext is ShortestPath with cancellation (see runCtx). It
// is a thin collector over OpenPath: the iterator is drained into a fresh
// caller-owned slice.
func (s *Searcher) ShortestPathContext(ctx context.Context, src, t graph.VertexID) ([]graph.VertexID, int64, error) {
	it, d, err := s.OpenPath(ctx, src, t)
	if err != nil || it == nil {
		return nil, graph.Infinity, err
	}
	path, err := graph.AppendPath(make([]graph.VertexID, 0, len(s.pathBuf)), it)
	if err != nil {
		return nil, graph.Infinity, err
	}
	return path, d, nil
}

// OpenPath runs the flag-pruned query and returns a PathIterator over the
// shortest path plus its length, or (nil, Infinity, nil) when t is
// unreachable. The parent walk is assembled into searcher-owned scratch,
// so streaming a path allocates nothing in steady state; the iterator is
// invalidated by this searcher's next query.
func (s *Searcher) OpenPath(ctx context.Context, src, t graph.VertexID) (graph.PathIterator, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, graph.Infinity, err
	}
	if src == t {
		s.pathBuf = append(s.pathBuf[:0], src)
		s.pathIter.Reset(s.pathBuf)
		return &s.pathIter, 0, nil
	}
	found, err := s.runCtx(ctx, src, t)
	if err != nil {
		return nil, graph.Infinity, err
	}
	if !found {
		return nil, graph.Infinity, nil
	}
	rev := s.pathBuf[:0]
	for v := t; v >= 0; v = graph.VertexID(s.parent[v]) {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	s.pathBuf = rev
	s.pathIter.Reset(rev)
	return &s.pathIter, s.dist[t], nil
}

// SettledLast reports the vertices settled by the last query.
func (s *Searcher) SettledLast() int { return s.settledLast }

// Distance answers a distance query on the default searcher.
func (ix *Index) Distance(s, t graph.VertexID) int64 { return ix.defSearcher().Distance(s, t) }

// ShortestPath answers a shortest-path query on the default searcher.
func (ix *Index) ShortestPath(s, t graph.VertexID) ([]graph.VertexID, int64) {
	return ix.defSearcher().ShortestPath(s, t)
}

// SettledLast reports the vertices settled by the default searcher's last
// query.
func (ix *Index) SettledLast() int { return ix.defSearcher().SettledLast() }

// BuildTime returns the preprocessing duration.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// SizeBytes reports the flag table footprint.
func (ix *Index) SizeBytes() int64 {
	return int64(len(ix.flags))*8 + int64(len(ix.cellOf))*4
}
