// Package exp regenerates every table and figure of the paper's evaluation
// (§4 and Appendix E) as plain-text tables. Each experiment is a named unit
// runnable via cmd/spexp or the root benchmark suite; DESIGN.md maps each
// experiment id to the paper artifact it reproduces.
//
// Absolute numbers differ from the paper (scaled synthetic datasets, Go on
// different hardware); the comparative shapes are what the experiments
// reproduce. EXPERIMENTS.md records paper-vs-measured for every artifact.
package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"

	"roadnet/internal/ch"
	"roadnet/internal/core"
	"roadnet/internal/gen"
	"roadnet/internal/graph"
	"roadnet/internal/tnr"
	"roadnet/internal/workload"
)

// Config controls dataset sizes and query counts of an experiment run.
type Config struct {
	// Datasets lists the preset names to include (default: the five
	// smallest, which keep a full run in the minutes range; cmd/spexp
	// -full selects all ten).
	Datasets []string
	// QueriesPerSet is the number of queries per Q/R bucket (paper: 10000;
	// default here: 1000).
	QueriesPerSet int
	// Seed fixes workload generation.
	Seed int64
	// MaxIndexBytes mirrors the paper's 24 GB rule: indexes above the
	// ceiling are reported as "-" (default 1.5 GB).
	MaxIndexBytes int64
	// TNRGridSize is the coarse grid (default 32, our 128x128 analogue).
	TNRGridSize int
	// SILCMaxVertices and PCPDMaxVertices bound the datasets on which the
	// all-pairs techniques are attempted, mirroring the paper's
	// observation that they exceed memory beyond the four smallest
	// datasets. Defaults 25000 and 10000.
	SILCMaxVertices, PCPDMaxVertices int
	// CacheDir, when set, persists built CH/TNR/SILC indexes as flat v2
	// files and reuses them across invocations, so repeated spexp runs skip
	// the all-pairs preprocessing. Files are keyed by dataset, method and
	// the config knobs that shape the index.
	CacheDir string
	// CacheMmap maps cached index files instead of reading them onto the
	// heap (effective only where the platform supports it).
	CacheMmap bool
}

func (c Config) withDefaults() Config {
	if len(c.Datasets) == 0 {
		c.Datasets = []string{"DE", "NH", "ME", "CO", "FL"}
	}
	if c.QueriesPerSet == 0 {
		c.QueriesPerSet = 1000
	}
	if c.MaxIndexBytes == 0 {
		c.MaxIndexBytes = 3 << 29 // 1.5 GB
	}
	if c.TNRGridSize == 0 {
		c.TNRGridSize = 32
	}
	if c.SILCMaxVertices == 0 {
		c.SILCMaxVertices = 25000
	}
	if c.PCPDMaxVertices == 0 {
		c.PCPDMaxVertices = 10000
	}
	return c
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the short identifier (t1, t2, f6 ... f17, b).
	ID string
	// Paper names the artifact being reproduced.
	Paper string
	// Title describes what the experiment shows.
	Title string

	run func(l *lab, w io.Writer) error
}

// Run executes the experiment standalone with a private lab. To run several
// experiments while sharing generated datasets and built indexes, use a
// Runner.
func (e Experiment) Run(cfg Config, w io.Writer) error {
	return e.run(newLab(cfg.withDefaults()), w)
}

// Runner executes experiments against one shared lab, so datasets,
// hierarchies, indexes and workloads are built once per invocation (index
// preprocessing — PCPD in particular — dominates a full run otherwise).
type Runner struct {
	l *lab
}

// NewRunner returns a Runner for cfg.
func NewRunner(cfg Config) *Runner { return &Runner{l: newLab(cfg.withDefaults())} }

// Run executes the experiment with the given id.
func (r *Runner) Run(id string, w io.Writer) error {
	e, err := ByID(id)
	if err != nil {
		return err
	}
	return e.run(r.l, w)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "t1", Paper: "Table 1", Title: "dataset characteristics", run: runTable1},
		{ID: "t2", Paper: "Table 2", Title: "upper bound of delta-redundancy", run: runTable2},
		{ID: "f6", Paper: "Figure 6", Title: "space overhead and preprocessing time vs n", run: runFigure6},
		{ID: "f7", Paper: "Figure 7", Title: "SILC vs PCPD on shortest path queries", run: runFigure7},
		{ID: "f8", Paper: "Figure 8", Title: "distance queries vs n (Q1, Q4, Q7, Q10)", run: runFigure8},
		{ID: "f9", Paper: "Figure 9", Title: "distance queries vs query set", run: runFigure9},
		{ID: "f10", Paper: "Figure 10", Title: "shortest path queries vs n (Q1, Q4, Q7, Q10)", run: runFigure10},
		{ID: "f11", Paper: "Figure 11", Title: "shortest path queries vs query set", run: runFigure11},
		{ID: "b", Paper: "Appendix B", Title: "flawed vs corrected TNR access nodes", run: runAppendixB},
		{ID: "f13", Paper: "Figure 13", Title: "TNR grid variants: space and preprocessing", run: runFigure13},
		{ID: "f14", Paper: "Figure 14", Title: "TNR variants on distance queries", run: runFigure14},
		{ID: "f15", Paper: "Figure 15", Title: "TNR variants on shortest path queries", run: runFigure15},
		{ID: "f16", Paper: "Figure 16", Title: "distance queries vs n (R sets)", run: runFigure16},
		{ID: "f17", Paper: "Figure 17", Title: "shortest path queries vs n (R sets)", run: runFigure17},
		{ID: "ext", Paper: "Appendix A", Title: "related-work extensions (ALT, Arc Flags) vs CH", run: runExtensions},
		{ID: "knn", Paper: "Appendix A (NN queries)", Title: "geometric pruning of network k-NN and range queries", run: runSpatial},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// lab lazily generates datasets, workloads and indexes, caching them for
// the duration of one experiment run.
type lab struct {
	cfg Config

	graphs      map[string]*graph.Graph
	hierarchies map[string]*ch.Hierarchy
	indexes     map[string]map[core.Method]core.Index
	qsets       map[string][]workload.QuerySet
	rsets       map[string][]workload.QuerySet
}

func newLab(cfg Config) *lab {
	return &lab{
		cfg:         cfg,
		graphs:      map[string]*graph.Graph{},
		hierarchies: map[string]*ch.Hierarchy{},
		indexes:     map[string]map[core.Method]core.Index{},
		qsets:       map[string][]workload.QuerySet{},
		rsets:       map[string][]workload.QuerySet{},
	}
}

func (l *lab) graph(name string) (*graph.Graph, error) {
	if g, ok := l.graphs[name]; ok {
		return g, nil
	}
	g, err := gen.GeneratePreset(name)
	if err != nil {
		return nil, err
	}
	l.graphs[name] = g
	return g, nil
}

func (l *lab) hierarchy(name string) (*ch.Hierarchy, error) {
	if h, ok := l.hierarchies[name]; ok {
		return h, nil
	}
	g, err := l.graph(name)
	if err != nil {
		return nil, err
	}
	h := ch.Build(g, ch.Options{})
	l.hierarchies[name] = h
	return h, nil
}

// applicable reports whether a method is attempted on a dataset, mirroring
// the paper's feasibility limits for the all-pairs techniques.
func (l *lab) applicable(m core.Method, name string) bool {
	p, err := gen.PresetByName(name)
	if err != nil {
		return false
	}
	switch m {
	case core.MethodSILC:
		return p.TargetN <= l.cfg.SILCMaxVertices
	case core.MethodPCPD:
		return p.TargetN <= l.cfg.PCPDMaxVertices
	default:
		return true
	}
}

// index builds (or fetches) a method's index on a dataset. It returns
// (nil, nil) when the method is inapplicable or exceeds the memory ceiling,
// which callers render as "-" exactly like the paper's missing curves.
func (l *lab) index(m core.Method, name string) (core.Index, error) {
	if byM, ok := l.indexes[name]; ok {
		if ix, ok := byM[m]; ok {
			return ix, nil
		}
	}
	if !l.applicable(m, name) {
		return nil, nil
	}
	g, err := l.graph(name)
	if err != nil {
		return nil, err
	}
	cachePath := l.cachePath(m, name)
	if cachePath != "" {
		if _, serr := os.Stat(cachePath); serr == nil {
			if ix, _, lerr := core.LoadIndexFile(m, cachePath, g, l.cfg.CacheMmap); lerr == nil {
				if l.indexes[name] == nil {
					l.indexes[name] = map[core.Method]core.Index{}
				}
				l.indexes[name][m] = ix
				return ix, nil
			}
			// An unreadable cache entry (stale format, truncation) is
			// rebuilt and overwritten below.
		}
	}
	h, err := l.hierarchy(name)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		MaxIndexBytes: l.cfg.MaxIndexBytes,
		Hierarchy:     h,
		TNR:           tnr.Options{GridSize: l.cfg.TNRGridSize},
	}
	ix, err := core.BuildIndex(m, g, cfg)
	if err == core.ErrIndexTooLarge || (err != nil && errorsIsTooLarge(err)) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if cachePath != "" {
		if err := saveIndexFile(ix, cachePath); err != nil {
			return nil, fmt.Errorf("exp: caching %s: %w", cachePath, err)
		}
	}
	if l.indexes[name] == nil {
		l.indexes[name] = map[core.Method]core.Index{}
	}
	l.indexes[name][m] = ix
	return ix, nil
}

// cachePath names the on-disk cache entry for a method's index on a
// dataset, or "" when caching does not apply. The name embeds every config
// knob that shapes the index, so changed configs rebuild rather than load
// a mismatched file.
func (l *lab) cachePath(m core.Method, name string) string {
	if l.cfg.CacheDir == "" {
		return ""
	}
	switch m {
	case core.MethodCH, core.MethodSILC:
		return filepath.Join(l.cfg.CacheDir, fmt.Sprintf("%s-%s.idx", name, m))
	case core.MethodTNR:
		return filepath.Join(l.cfg.CacheDir, fmt.Sprintf("%s-%s-g%d.idx", name, m, l.cfg.TNRGridSize))
	default:
		return ""
	}
}

func saveIndexFile(ix core.Index, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := core.SaveIndex(ix, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func errorsIsTooLarge(err error) bool {
	for err != nil {
		if err == core.ErrIndexTooLarge {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func (l *lab) linfSets(name string) ([]workload.QuerySet, error) {
	if qs, ok := l.qsets[name]; ok {
		return qs, nil
	}
	g, err := l.graph(name)
	if err != nil {
		return nil, err
	}
	qs, err := workload.LInfSets(g, workload.Config{PairsPerSet: l.cfg.QueriesPerSet, Seed: l.cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	l.qsets[name] = qs
	return qs, nil
}

func (l *lab) rSets(name string) ([]workload.QuerySet, error) {
	if rs, ok := l.rsets[name]; ok {
		return rs, nil
	}
	g, err := l.graph(name)
	if err != nil {
		return nil, err
	}
	rs, err := workload.NetworkDistanceSets(g, workload.Config{PairsPerSet: l.cfg.QueriesPerSet, Seed: l.cfg.Seed + 2})
	if err != nil {
		return nil, err
	}
	l.rsets[name] = rs
	return rs, nil
}

// datasets returns the configured datasets ordered by size.
func (l *lab) datasets() []string {
	names := append([]string(nil), l.cfg.Datasets...)
	sizeOf := func(n string) int {
		p, err := gen.PresetByName(n)
		if err != nil {
			return 1 << 30
		}
		return p.TargetN
	}
	sort.Slice(names, func(i, j int) bool { return sizeOf(names[i]) < sizeOf(names[j]) })
	return names
}

// smallDatasets returns the configured datasets on which PCPD is feasible
// (Figure 7 uses the four smallest).
func (l *lab) smallDatasets() []string {
	var out []string
	for _, name := range l.datasets() {
		if l.applicable(core.MethodPCPD, name) {
			out = append(out, name)
		}
	}
	return out
}

// newTable returns a tabwriter for aligned text tables.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// fmtMicros renders a mean query time, or "-" for missing measurements.
func fmtMicros(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// fmtMB renders a byte count in MB.
func fmtMB(b int64) string {
	mb := float64(b) / (1 << 20)
	switch {
	case mb >= 100:
		return fmt.Sprintf("%.0f", mb)
	case mb >= 1:
		return fmt.Sprintf("%.1f", mb)
	default:
		return fmt.Sprintf("%.3f", mb)
	}
}
