package exp

import (
	"fmt"
	"io"
	"math/rand"

	"roadnet/internal/dijkstra"
	"roadnet/internal/gen"
	"roadnet/internal/graph"
)

// runTable1 reproduces Table 1: the dataset roster. It prints the paper's
// sizes next to the scaled synthetic analogues actually generated.
func runTable1(l *lab, w io.Writer) error {
	fmt.Fprintln(w, "Table 1: Dataset Characteristics (paper datasets vs scaled synthetic analogues)")
	tw := newTable(w)
	fmt.Fprintln(tw, "Name\tRegion\tPaper n\tPaper m\tOur n\tOur m (arcs)")
	for _, name := range l.datasets() {
		p, err := gen.PresetByName(name)
		if err != nil {
			return err
		}
		g, err := l.graph(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\n",
			p.Name, p.Region, p.PaperVertices, p.PaperEdges, g.NumVertices(), g.NumArcs())
	}
	return tw.Flush()
}

// runTable2 reproduces Table 2: the minimum observed ratio
// length(P')/length(P) between a shortest path P and the shortest
// core-disjoint path P' (an upper bound of the PCPD redundancy parameter
// delta, Appendix C). Ratios at or near 1 explain PCPD's blow-up.
func runTable2(l *lab, w io.Writer) error {
	fmt.Fprintln(w, "Table 2: Upper bound of delta (min length(P')/length(P)) per dataset")
	tw := newTable(w)
	fmt.Fprintln(tw, "Dataset\tmin ratio\tsampled pairs\tpairs with core-disjoint path")
	for _, name := range l.datasets() {
		g, err := l.graph(name)
		if err != nil {
			return err
		}
		ratio, pairs, found := minCoreDisjointRatio(g, l.cfg.Seed, l.cfg.QueriesPerSet/10+20)
		if found == 0 {
			fmt.Fprintf(tw, "%s\t-\t%d\t0\n", name, pairs)
			continue
		}
		fmt.Fprintf(tw, "%s\t%.5f\t%d\t%d\n", name, ratio, pairs, found)
	}
	return tw.Flush()
}

// minCoreDisjointRatio samples random pairs, computes the shortest path P
// and the shortest core-disjoint path P' (no interior vertex of P), and
// returns the minimum observed length ratio.
func minCoreDisjointRatio(g *graph.Graph, seed int64, samples int) (minRatio float64, pairs, found int) {
	rng := rand.New(rand.NewSource(seed + 17))
	ctx := dijkstra.NewContext(g)
	n := g.NumVertices()
	minRatio = 0
	for i := 0; i < samples; i++ {
		s := graph.VertexID(rng.Intn(n))
		t := graph.VertexID(rng.Intn(n))
		if s == t {
			continue
		}
		path, d := ctx.ShortestPath(s, t)
		if d >= graph.Infinity || len(path) < 3 {
			continue // need at least one interior vertex to remove
		}
		pairs++
		dd := coreDisjointDistance(g, path, s, t)
		if dd >= graph.Infinity {
			continue
		}
		ratio := float64(dd) / float64(d)
		if found == 0 || ratio < minRatio {
			minRatio = ratio
		}
		found++
	}
	return minRatio, pairs, found
}

// coreDisjointDistance computes the shortest s-t distance avoiding the
// interior vertices of path, by rebuilding the induced subgraph. Rebuilding
// is O(n + m) per pair, acceptable for the sampled Table 2 sizes.
func coreDisjointDistance(g *graph.Graph, path []graph.VertexID, s, t graph.VertexID) int64 {
	banned := make(map[graph.VertexID]bool, len(path))
	for _, v := range path[1 : len(path)-1] {
		banned[v] = true
	}
	b := graph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertex(g.Coord(graph.VertexID(v)))
	}
	for _, e := range g.Edges() {
		if !banned[e.U] && !banned[e.V] {
			// Ids are preserved, so AddEdge cannot fail.
			_ = b.AddEdge(e.U, e.V, e.Weight)
		}
	}
	sub := b.Build()
	return dijkstra.NewContext(sub).Distance(s, t)
}
