package exp

import (
	"fmt"
	"io"

	"roadnet/internal/core"
	"roadnet/internal/tnr"
	"roadnet/internal/workload"
)

// measure times one method on one query set, rendering "-" when the method
// is unavailable on the dataset.
func measure(ix core.Index, qs workload.QuerySet, path bool) (float64, bool) {
	if ix == nil {
		return 0, false
	}
	if path {
		return core.MeasurePath(ix, qs).AvgMicros, true
	}
	return core.MeasureDistance(ix, qs).AvgMicros, true
}

// pickSpread selects up to k evenly spread names (the paper's four
// sub-figures use DE, CO, E-US and US).
func pickSpread(names []string, k int) []string {
	if len(names) <= k {
		return names
	}
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, names[i*(len(names)-1)/(k-1)])
	}
	return out
}

// runFigure7 reproduces Figure 7: SILC vs PCPD on shortest-path queries
// over Q1..Q10 on the smallest datasets (the only ones where PCPD fits).
func runFigure7(l *lab, w io.Writer) error {
	fmt.Fprintln(w, "Figure 7: SILC vs PCPD, shortest path queries, running time (microsec)")
	for _, name := range l.smallDatasets() {
		sets, err := l.linfSets(name)
		if err != nil {
			return err
		}
		silcIx, err := l.index(core.MethodSILC, name)
		if err != nil {
			return err
		}
		pcpdIx, err := l.index(core.MethodPCPD, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n(%s)\n", name)
		tw := newTable(w)
		fmt.Fprintln(tw, "Set\tSILC\tPCPD")
		for _, qs := range sets {
			s, sOK := measure(silcIx, qs, true)
			p, pOK := measure(pcpdIx, qs, true)
			fmt.Fprintf(tw, "%s\t%s\t%s\n", qs.Name, fmtMicros(s, sOK), fmtMicros(p, pOK))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// queryFigureVsN renders a Figure 8/10/16/17-style table: one sub-table per
// selected query bucket, methods as columns, datasets (growing n) as rows.
func queryFigureVsN(l *lab, w io.Writer, title string, useRSets, path bool) error {
	methods := []core.Method{core.MethodDijkstra, core.MethodCH, core.MethodTNR, core.MethodSILC}
	buckets := []int{0, 3, 6, 9} // Q1/R1, Q4/R4, Q7/R7, Q10/R10
	fmt.Fprintln(w, title)
	for _, b := range buckets {
		var setName string
		type rowData struct {
			name  string
			n     int
			cells []string
		}
		var rows []rowData
		for _, name := range l.datasets() {
			var sets []workload.QuerySet
			var err error
			if useRSets {
				sets, err = l.rSets(name)
			} else {
				sets, err = l.linfSets(name)
			}
			if err != nil {
				return err
			}
			if b >= len(sets) {
				continue
			}
			setName = sets[b].Name
			g, err := l.graph(name)
			if err != nil {
				return err
			}
			r := rowData{name: name, n: g.NumVertices()}
			for _, m := range methods {
				ix, err := l.index(m, name)
				if err != nil {
					return err
				}
				v, ok := measure(ix, sets[b], path)
				r.cells = append(r.cells, fmtMicros(v, ok))
			}
			rows = append(rows, r)
		}
		fmt.Fprintf(w, "\n(%s)\n", setName)
		tw := newTable(w)
		fmt.Fprintln(tw, "Dataset\tn\tDijkstra\tCH\tTNR\tSILC")
		for _, r := range rows {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n", r.name, r.n, r.cells[0], r.cells[1], r.cells[2], r.cells[3])
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// queryFigureVsSet renders a Figure 9/11-style table: one sub-table per
// dataset, query sets as rows, methods as columns (no Dijkstra — the paper
// drops the baseline from these plots).
func queryFigureVsSet(l *lab, w io.Writer, title string, path bool) error {
	methods := []core.Method{core.MethodCH, core.MethodTNR, core.MethodSILC}
	fmt.Fprintln(w, title)
	for _, name := range pickSpread(l.datasets(), 4) {
		sets, err := l.linfSets(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n(%s)\n", name)
		tw := newTable(w)
		fmt.Fprintln(tw, "Set\tCH\tTNR\tSILC")
		for _, qs := range sets {
			fmt.Fprintf(tw, "%s", qs.Name)
			for _, m := range methods {
				ix, err := l.index(m, name)
				if err != nil {
					return err
				}
				v, ok := measure(ix, qs, path)
				fmt.Fprintf(tw, "\t%s", fmtMicros(v, ok))
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func runFigure8(l *lab, w io.Writer) error {
	return queryFigureVsN(l, w,
		"Figure 8: Efficiency of Distance Queries vs n, running time (microsec)", false, false)
}

func runFigure9(l *lab, w io.Writer) error {
	return queryFigureVsSet(l, w,
		"Figure 9: Efficiency of Distance Queries vs Query Sets, running time (microsec)", false)
}

func runFigure10(l *lab, w io.Writer) error {
	return queryFigureVsN(l, w,
		"Figure 10: Efficiency of Shortest Path Queries vs n, running time (microsec)", false, true)
}

func runFigure11(l *lab, w io.Writer) error {
	return queryFigureVsSet(l, w,
		"Figure 11: Efficiency of Shortest Path Queries vs Query Sets, running time (microsec)", true)
}

func runFigure16(l *lab, w io.Writer) error {
	return queryFigureVsN(l, w,
		"Figure 16: Efficiency of Distance Queries vs n on R sets, running time (microsec)", true, false)
}

func runFigure17(l *lab, w io.Writer) error {
	return queryFigureVsN(l, w,
		"Figure 17: Efficiency of Shortest Path Queries vs n on R sets, running time (microsec)", true, true)
}

// tnrVariantFigure renders Figures 14/15: one sub-table per dataset, query
// sets as rows, the TNR grid/fallback variants as columns.
func tnrVariantFigure(l *lab, w io.Writer, title string, path bool) error {
	variants := tnrVariants(l.cfg, false)
	fmt.Fprintln(w, title)
	for _, name := range pickSpread(l.datasets(), 4) {
		g, err := l.graph(name)
		if err != nil {
			return err
		}
		h, err := l.hierarchy(name)
		if err != nil {
			return err
		}
		sets, err := l.linfSets(name)
		if err != nil {
			return err
		}
		indexes := make([]*tnr.Index, len(variants))
		for i, v := range variants {
			opts := v.opts
			opts.Hierarchy = h
			ix, err := tnr.Build(g, opts)
			if err != nil {
				return err
			}
			indexes[i] = ix
		}
		fmt.Fprintf(w, "\n(%s)\n", name)
		tw := newTable(w)
		fmt.Fprint(tw, "Set")
		for _, v := range variants {
			fmt.Fprintf(tw, "\t%s", v.label)
		}
		fmt.Fprintln(tw)
		for _, qs := range sets {
			fmt.Fprintf(tw, "%s", qs.Name)
			for _, ix := range indexes {
				v := timeTNR(ix, qs, path)
				fmt.Fprintf(tw, "\t%s", fmtMicros(v, true))
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func timeTNR(ix *tnr.Index, qs workload.QuerySet, path bool) float64 {
	adapter := tnrTimer{ix: ix}
	if path {
		return core.MeasurePath(adapter, qs).AvgMicros
	}
	return core.MeasureDistance(adapter, qs).AvgMicros
}

// tnrTimer adapts a raw tnr.Index to core.Index for the measurement
// helpers.
type tnrTimer struct{ ix *tnr.Index }

func (t tnrTimer) Method() core.Method { return core.MethodTNR }
func (t tnrTimer) Distance(s, u int32) int64 {
	return t.ix.Distance(s, u)
}
func (t tnrTimer) ShortestPath(s, u int32) ([]int32, int64) {
	return t.ix.ShortestPath(s, u)
}
func (t tnrTimer) NewSearcher() core.Searcher { return t.ix.NewSearcher() }
func (t tnrTimer) Stats() core.Stats {
	return core.Stats{Method: core.MethodTNR, BuildTime: t.ix.BuildTime(), IndexBytes: t.ix.SizeBytes()}
}

func runFigure14(l *lab, w io.Writer) error {
	return tnrVariantFigure(l, w,
		"Figure 14: TNR variants, distance queries, running time (microsec)", false)
}

func runFigure15(l *lab, w io.Writer) error {
	return tnrVariantFigure(l, w,
		"Figure 15: TNR variants, shortest path queries, running time (microsec)", true)
}
