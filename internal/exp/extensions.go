package exp

import (
	"fmt"
	"io"
	"time"

	"roadnet/internal/alt"
	"roadnet/internal/arcflags"
	"roadnet/internal/workload"
)

// runExtensions checks the paper's Appendix A statement that the surveyed
// related-work techniques — ALT and Arc Flags among them — "are previously
// shown to be inferior to CH in terms of both space overhead and query
// performance". It builds the two extensions next to CH on each dataset and
// reports space, preprocessing and far-distance-query time side by side.
func runExtensions(l *lab, w io.Writer) error {
	fmt.Fprintln(w, "Appendix A extensions: ALT and Arc Flags vs CH")
	fmt.Fprintln(w, "(space MB / preprocessing sec / far-query microsec; far set = highest Q bucket)")
	tw := newTable(w)
	fmt.Fprintln(tw, "Dataset\tn\tCH\tALT(16)\tArcFlags(8x8)")
	for _, name := range l.datasets() {
		g, err := l.graph(name)
		if err != nil {
			return err
		}
		sets, err := l.linfSets(name)
		if err != nil {
			return err
		}
		far := sets[len(sets)-1]

		h, err := l.hierarchy(name)
		if err != nil {
			return err
		}
		chSearch := h.NewSearcher()
		chTime := timePairs(far.Pairs, func(s, t int32) { chSearch.Distance(s, t) })

		altIx := alt.Build(g, alt.Options{NumLandmarks: 16})
		altTime := timePairs(far.Pairs, func(s, t int32) { altIx.Distance(s, t) })

		afIx := arcflags.Build(g, arcflags.Options{GridSize: 8})
		afTime := timePairs(far.Pairs, func(s, t int32) { afIx.Distance(s, t) })

		fmt.Fprintf(tw, "%s\t%d\t%s / %.2f / %s\t%s / %.2f / %s\t%s / %.2f / %s\n",
			name, g.NumVertices(),
			fmtMB(h.SizeBytes()), h.BuildTime().Seconds(), fmtMicros(chTime, true),
			fmtMB(altIx.SizeBytes()), altIx.BuildTime().Seconds(), fmtMicros(altTime, true),
			fmtMB(afIx.SizeBytes()), afIx.BuildTime().Seconds(), fmtMicros(afTime, true))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected: ALT trails CH at every size; Arc Flags keeps a Dijkstra-like")
	fmt.Fprintln(w, "query profile, so CH pulls ahead as n grows — the Appendix A claim that")
	fmt.Fprintln(w, "both are dominated at road-network scale.")
	return nil
}

func timePairs(pairs []workload.Pair, f func(s, t int32)) float64 {
	start := time.Now()
	for _, p := range pairs {
		f(p.S, p.T)
	}
	elapsed := time.Since(start)
	if len(pairs) == 0 {
		return 0
	}
	return float64(elapsed.Nanoseconds()) / 1e3 / float64(len(pairs))
}
