package exp

import (
	"fmt"
	"io"

	"roadnet/internal/core"
	"roadnet/internal/tnr"
)

// runFigure6 reproduces Figure 6: index space (a) and preprocessing time
// (b) as functions of the dataset size, for CH, TNR, SILC and PCPD.
// Missing entries ("-") correspond to the paper's curves that stop once an
// index exceeds the memory budget.
func runFigure6(l *lab, w io.Writer) error {
	methods := []core.Method{core.MethodCH, core.MethodTNR, core.MethodSILC, core.MethodPCPD}

	fmt.Fprintln(w, "Figure 6(a): Space Consumption (MB) vs n")
	tw := newTable(w)
	fmt.Fprintln(tw, "Dataset\tn\tCH\tTNR\tSILC\tPCPD")
	type row struct {
		name  string
		n     int
		cells []string
	}
	var rows []row
	for _, name := range l.datasets() {
		g, err := l.graph(name)
		if err != nil {
			return err
		}
		r := row{name: name, n: g.NumVertices()}
		for _, m := range methods {
			ix, err := l.index(m, name)
			if err != nil {
				return err
			}
			if ix == nil {
				r.cells = append(r.cells, "-")
			} else {
				r.cells = append(r.cells, fmtMB(ix.Stats().IndexBytes))
			}
		}
		rows = append(rows, r)
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n", r.name, r.n, r.cells[0], r.cells[1], r.cells[2], r.cells[3])
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 6(b): Preprocessing Time (sec) vs n")
	tw = newTable(w)
	fmt.Fprintln(tw, "Dataset\tn\tCH\tTNR\tSILC\tPCPD")
	for _, name := range l.datasets() {
		g, err := l.graph(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d", name, g.NumVertices())
		for _, m := range methods {
			ix, err := l.index(m, name)
			if err != nil {
				return err
			}
			if ix == nil {
				fmt.Fprint(tw, "\t-")
			} else {
				fmt.Fprintf(tw, "\t%.2f", ix.Stats().BuildTime.Seconds())
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// tnrVariant builds one of the Appendix E.1 TNR configurations.
type tnrVariant struct {
	label string
	opts  tnr.Options
}

// tnrVariants returns the grid/fallback combinations of Figures 13-15:
// a single coarse grid ("128x128" analogue), a single fine grid ("256x256")
// and the hybrid grid, each with CH or bidirectional Dijkstra fallback.
func tnrVariants(cfg Config, withFine bool) []tnrVariant {
	g := cfg.TNRGridSize
	vs := []tnrVariant{
		{label: fmt.Sprintf("%dx%d (Dijkstra)", g, g), opts: tnr.Options{GridSize: g, Fallback: tnr.FallbackDijkstra}},
		{label: fmt.Sprintf("%dx%d (CH)", g, g), opts: tnr.Options{GridSize: g, Fallback: tnr.FallbackCH}},
		{label: "Hybrid (Dijkstra)", opts: tnr.Options{GridSize: g, Hybrid: true, Fallback: tnr.FallbackDijkstra}},
		{label: "Hybrid (CH)", opts: tnr.Options{GridSize: g, Hybrid: true, Fallback: tnr.FallbackCH}},
	}
	if withFine {
		fine := tnrVariant{
			label: fmt.Sprintf("%dx%d (CH)", 2*g, 2*g),
			opts:  tnr.Options{GridSize: 2 * g, Fallback: tnr.FallbackCH},
		}
		vs = append(vs[:2], append([]tnrVariant{fine}, vs[2:]...)...)
	}
	return vs
}

// runFigure13 reproduces Figure 13: TNR space (a) and preprocessing time
// (b) for the coarse, fine and hybrid grids.
func runFigure13(l *lab, w io.Writer) error {
	cfg := l.cfg
	variants := []tnrVariant{
		{label: fmt.Sprintf("%dx%d", cfg.TNRGridSize, cfg.TNRGridSize), opts: tnr.Options{GridSize: cfg.TNRGridSize}},
		{label: fmt.Sprintf("%dx%d", 2*cfg.TNRGridSize, 2*cfg.TNRGridSize), opts: tnr.Options{GridSize: 2 * cfg.TNRGridSize}},
		{label: "Hybrid", opts: tnr.Options{GridSize: cfg.TNRGridSize, Hybrid: true}},
	}

	type build struct {
		space int64
		secs  float64
		ok    bool
	}
	results := map[string]map[string]build{}
	for _, name := range l.datasets() {
		g, err := l.graph(name)
		if err != nil {
			return err
		}
		h, err := l.hierarchy(name)
		if err != nil {
			return err
		}
		results[name] = map[string]build{}
		for _, v := range variants {
			opts := v.opts
			opts.Hierarchy = h
			ix, err := tnr.Build(g, opts)
			if err != nil {
				return err
			}
			if cfg.MaxIndexBytes > 0 && ix.SizeBytes() > cfg.MaxIndexBytes {
				results[name][v.label] = build{}
				continue
			}
			results[name][v.label] = build{space: ix.SizeBytes(), secs: ix.BuildTime().Seconds(), ok: true}
		}
	}

	fmt.Fprintln(w, "Figure 13(a): TNR Space Consumption (MB) vs n")
	tw := newTable(w)
	fmt.Fprint(tw, "Dataset\tn")
	for _, v := range variants {
		fmt.Fprintf(tw, "\t%s", v.label)
	}
	fmt.Fprintln(tw)
	for _, name := range l.datasets() {
		g, _ := l.graph(name)
		fmt.Fprintf(tw, "%s\t%d", name, g.NumVertices())
		for _, v := range variants {
			b := results[name][v.label]
			if !b.ok {
				fmt.Fprint(tw, "\t-")
			} else {
				fmt.Fprintf(tw, "\t%s", fmtMB(b.space))
			}
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 13(b): TNR Preprocessing Time (sec) vs n")
	tw = newTable(w)
	fmt.Fprint(tw, "Dataset\tn")
	for _, v := range variants {
		fmt.Fprintf(tw, "\t%s", v.label)
	}
	fmt.Fprintln(tw)
	for _, name := range l.datasets() {
		g, _ := l.graph(name)
		fmt.Fprintf(tw, "%s\t%d", name, g.NumVertices())
		for _, v := range variants {
			b := results[name][v.label]
			if !b.ok {
				fmt.Fprint(tw, "\t-")
			} else {
				fmt.Fprintf(tw, "\t%.2f", b.secs)
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
