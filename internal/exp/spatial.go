package exp

import (
	"context"
	"fmt"
	"io"

	"roadnet/internal/core"
	"roadnet/internal/dijkstra"
	"roadnet/internal/graph"
	"roadnet/internal/silc"
)

// runSpatial quantifies how much geometric pruning buys the spatial query
// tier, in the units that matter for each query:
//
//   - k-NN: exact network-distance evaluations per query. SILC distance
//     browsing already prunes by quadtree regions; R-tree seeding tightens
//     its k-th-distance bound before browsing starts, so the comparison is
//     linear scan (every vertex) vs unseeded vs seeded browsing.
//   - Range (within): vertices settled by the bounded Dijkstra, with and
//     without the R-tree Euclidean pre-filter turning the sweep into a
//     targets-mode search that stops once all geometric candidates are
//     proven.
//
// Both counts are deterministic — the same pruning the CI knn_prune_ratio
// gate watches, measured across dataset sizes instead of one fixture.
func runSpatial(l *lab, w io.Writer) error {
	const (
		numQueries = 64
		k          = 10
	)
	fmt.Fprintln(w, "Spatial tier: geometric pruning of network k-NN and range queries")
	fmt.Fprintln(w, "(Appendix A notes SILC's suitability for NN queries; the R-tree adds the")
	fmt.Fprintln(w, "geometric candidate generation the comparison below quantifies)")
	fmt.Fprintf(w, "(means over %d query vertices; k = %d; within radius = k-th neighbor distance,\n", numQueries, k)
	fmt.Fprintln(w, "Euclidean pre-filter radius = 2x that; SILC-feasible datasets only)")
	tw := newTable(w)
	fmt.Fprintln(tw, "Dataset\tn\tknn linear\tknn silc\tknn silc+rtree\tprune\twithin settled\twith prefilter\tprune")
	for _, name := range l.datasets() {
		if !l.applicable(core.MethodSILC, name) {
			continue
		}
		g, err := l.graph(name)
		if err != nil {
			return err
		}
		ix, err := core.BuildIndex(core.MethodSILC, g, core.Config{
			MaxIndexBytes: l.cfg.MaxIndexBytes,
			SILC:          silc.Options{EnableNearest: true},
		})
		if err != nil || ix == nil {
			if err != nil && !errorsIsTooLarge(err) {
				return err
			}
			continue
		}
		sx := core.SILCOf(ix)
		loc := core.NewSpatialLocator(g)
		dj := dijkstra.NewContext(g)

		n := g.NumVertices()
		var seeded, unseeded, settledFull, settledPre int
		for q := 0; q < numQueries; q++ {
			s := graph.VertexID((q * 257) % n)
			seeds := loc.NearestVertices(g.Coord(s), k+1)
			res, ex, err := sx.NearestKPruned(context.Background(), s, k, seeds)
			if err != nil {
				return err
			}
			seeded += ex
			if _, ex, err = sx.NearestKPruned(context.Background(), s, k, nil); err != nil {
				return err
			}
			unseeded += ex
			if len(res) == 0 {
				continue
			}
			// Range query at the k-th neighbor's network distance: the full
			// bounded sweep vs the targets-mode search over the R-tree's
			// Euclidean candidates.
			radius := res[len(res)-1].Dist
			dj.Run([]graph.VertexID{s}, dijkstra.Options{MaxDist: radius})
			settledFull += len(dj.Settled())
			cands := loc.VerticesWithinRadius(g.Coord(s), 2*radius)
			dj.Run([]graph.VertexID{s}, dijkstra.Options{Targets: cands, MaxDist: radius})
			settledPre += len(dj.Settled())
		}
		mean := func(total int) float64 { return float64(total) / float64(numQueries) }
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.0f\t%.1fx\t%.0f\t%.0f\t%.1fx\n",
			name, n, n-1, mean(unseeded), mean(seeded),
			float64(n-1)/mean(seeded),
			mean(settledFull), mean(settledPre),
			mean(settledFull)/mean(settledPre))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected: the linear scan grows with n while browsing evaluates a small")
	fmt.Fprintln(w, "candidate set, so the prune factor stays large at every size. Seeding")
	fmt.Fprintln(w, "costs its k+1 seed evaluations up front — on these road-like datasets,")
	fmt.Fprintln(w, "where Euclidean order already matches network order, it lands near the")
	fmt.Fprintln(w, "unseeded count; its value is bounding the worst case when they diverge.")
	fmt.Fprintln(w, "The Euclidean pre-filter stops the range search before sweeping the ball.")
	return nil
}
