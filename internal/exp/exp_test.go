package exp

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps every experiment in the sub-second to seconds range.
func tinyConfig() Config {
	return Config{
		Datasets:      []string{"DE", "NH"},
		QueriesPerSet: 20,
		Seed:          7,
		TNRGridSize:   16,
	}
}

func TestAllExperimentsRun(t *testing.T) {
	exps := All()
	if testing.Short() {
		// Smoke subset: the full sweep regenerates every table and figure
		// and dominates CI time; run without -short for the complete
		// reproduction.
		exps = exps[:3]
	}
	for _, e := range exps {
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(tinyConfig(), &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("%s produced implausibly short output:\n%s", e.ID, out)
			}
			if !strings.Contains(out, e.Paper[:5]) && !strings.Contains(out, "Appendix") {
				t.Errorf("%s output does not mention its artifact:\n%s", e.ID, out)
			}
		})
	}
}

func TestRunnerSharesLab(t *testing.T) {
	r := NewRunner(tinyConfig())
	var first, second bytes.Buffer
	if err := r.Run("t1", &first); err != nil {
		t.Fatal(err)
	}
	// The second experiment reuses the generated datasets; it must still
	// produce correct output.
	if err := r.Run("t2", &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "Table 1") || !strings.Contains(second.String(), "Table 2") {
		t.Error("runner outputs wrong")
	}
	if err := r.Run("bogus", &first); err == nil {
		t.Error("unknown id should error")
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("f8"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("f99"); err == nil {
		t.Error("unknown id should error")
	}
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	if len(ids) != 16 {
		t.Errorf("expected 16 experiments, got %d", len(ids))
	}
}

func TestTable1MentionsAllDatasets(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable1(newLab(tinyConfig().withDefaults()), &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"DE", "NH", "Delaware", "New Hampshire"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("Table 1 output missing %q", name)
		}
	}
}

func TestAppendixBShowsDefect(t *testing.T) {
	var buf bytes.Buffer
	if err := runAppendixB(newLab(tinyConfig().withDefaults()), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Each trial row ends with "...\t<flawed wrong>\t<corrected wrong>"; the
	// corrected column must be all zeros and flawed must be non-zero.
	var sawFlawedWrong bool
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "counterexample-") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			t.Fatalf("unexpected row %q", line)
		}
		if fields[3] != "0" {
			t.Errorf("corrected TNR wrong on %s", fields[0])
		}
		if fields[2] != "0" {
			sawFlawedWrong = true
		}
	}
	if !sawFlawedWrong {
		t.Error("flawed TNR produced no wrong answers; the Appendix B defect did not manifest")
	}
}

func TestLabMemoryCeilingDropsMethods(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxIndexBytes = 1 // nothing but the baseline fits
	var buf bytes.Buffer
	if err := runFigure6(newLab(cfg.withDefaults()), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-") {
		t.Error("expected '-' entries under a tiny memory ceiling")
	}
}

func TestLabApplicability(t *testing.T) {
	cfg := tinyConfig().withDefaults()
	l := newLab(cfg)
	if !l.applicable("silc", "DE") {
		t.Error("SILC should be applicable on DE")
	}
	if l.applicable("pcpd", "US") {
		t.Error("PCPD should not be applicable on US")
	}
	if l.applicable("silc", "nope") {
		t.Error("unknown dataset should be inapplicable")
	}
}

func TestPickSpread(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	out := pickSpread(names, 4)
	if len(out) != 4 || out[0] != "a" || out[3] != "h" {
		t.Errorf("pickSpread = %v", out)
	}
	short := pickSpread([]string{"x"}, 4)
	if len(short) != 1 {
		t.Errorf("pickSpread short = %v", short)
	}
}
