package exp

import (
	"fmt"
	"io"
	"math/rand"

	"roadnet/internal/dijkstra"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
	"roadnet/internal/tnr"
)

// runAppendixB demonstrates the defect of Bast et al.'s access-node
// computation (Appendix B): on a family of networks containing the
// Figure 12(b) pattern — a stub whose only exit edge jumps over the
// sampled outer-shell ring — the flawed method returns incorrect distances,
// while the corrected method stays exact.
func runAppendixB(l *lab, w io.Writer) error {
	cfg := l.cfg
	fmt.Fprintln(w, "Appendix B: flawed vs corrected TNR access-node computation")
	fmt.Fprintln(w, "(queries with table-answered results compared against Dijkstra ground truth)")
	tw := newTable(w)
	fmt.Fprintln(tw, "Network\tqueries\tflawed wrong\tcorrected wrong")
	for trial := 0; trial < 3; trial++ {
		g, probes := appendixBNetwork(cfg.Seed + int64(trial))
		flawed, err := tnr.Build(g, tnr.Options{GridSize: 16, Access: tnr.AccessFlawedBast})
		if err != nil {
			return err
		}
		corrected, err := tnr.Build(g, tnr.Options{GridSize: 16, Access: tnr.AccessCorrected})
		if err != nil {
			return err
		}
		ctx := dijkstra.NewContext(g)
		var flawedWrong, correctedWrong, queries int
		for _, p := range probes {
			if !corrected.CanAnswerFromTables(p[0], p[1]) {
				continue
			}
			queries++
			want := ctx.Distance(p[0], p[1])
			if flawed.Distance(p[0], p[1]) != want {
				flawedWrong++
			}
			if corrected.Distance(p[0], p[1]) != want {
				correctedWrong++
			}
		}
		fmt.Fprintf(tw, "counterexample-%d\t%d\t%d\t%d\n", trial+1, queries, flawedWrong, correctedWrong)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nThe flawed method misses access nodes reachable only through edges that")
	fmt.Fprintln(w, "jump the sampled ring (Figure 12(b)), so some far queries return wrong")
	fmt.Fprintln(w, "distances; the corrected computation (Section 3.3 Remarks) stays exact.")
	return nil
}

// appendixBNetwork builds a backbone network with several Figure 12(b)
// stubs attached, plus probe query pairs from the stub vertices to far
// vertices.
func appendixBNetwork(seed int64) (*graph.Graph, [][2]graph.VertexID) {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(128)
	// A 16x4 backbone grid at the top of the map.
	cols, rows := 16, 4
	id := func(c, r int) graph.VertexID { return graph.VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddVertex(geom.Point{X: int32(50 + c*100), Y: int32(1250 + r*100)})
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				_ = b.AddEdge(id(c, r), id(c+1, r), graph.Weight(8+rng.Intn(5)))
			}
			if r+1 < rows {
				_ = b.AddEdge(id(c, r), id(c, r+1), graph.Weight(8+rng.Intn(5)))
			}
		}
	}
	// Stubs along the bottom: v1 in a bottom cell, v5 three cells right,
	// v6 seven cells right (its edge jumps the ring at Chebyshev 4).
	var probes [][2]graph.VertexID
	for k := 0; k < 3; k++ {
		baseX := int32(60 + k*300)
		v1 := b.AddVertex(geom.Point{X: baseX, Y: 60})
		v5 := b.AddVertex(geom.Point{X: baseX + 300, Y: 60})
		v6 := b.AddVertex(geom.Point{X: baseX + 700, Y: 60})
		_ = b.AddEdge(v1, v5, graph.Weight(4+rng.Intn(4)))
		_ = b.AddEdge(v5, v6, graph.Weight(4+rng.Intn(4)))
		probes = append(probes, [2]graph.VertexID{v1, v6}, [2]graph.VertexID{v6, v1})
	}
	return b.Build(), probes
}
