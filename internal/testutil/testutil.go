// Package testutil provides shared fixtures for the test suites of the
// query-technique packages: the paper's Figure 1 example network, small
// deterministic road networks, and helpers that check a technique's answers
// against Dijkstra ground truth.
package testutil

import (
	"testing"

	"roadnet/internal/dijkstra"
	"roadnet/internal/gen"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
)

// Figure-1 vertex ids, zero-based: V1 = paper's v1, etc.
const (
	V1 graph.VertexID = iota
	V2
	V3
	V4
	V5
	V6
	V7
	V8
)

// Figure1 builds the paper's running example (Figure 1): eight vertices,
// nine edges; (v2,v8) and (v6,v8) have weight 2, all other edges weight 1.
// The edge set is reconstructed from the paper's worked examples:
//   - contracting v1 yields shortcut c1 = (v3, v8) with weight 2 (§3.2),
//   - contracting v5 yields c2 = (v7, v6) weight 2, then v6 yields
//     c3 = (v7, v8) weight 4,
//   - dist(v3, v7) = 6 and the SILC partition of V \ {v8} groups
//     {v4, v5, v6, v7} behind v6 and {v1, v3} behind v1 (§3.4).
func Figure1() *graph.Graph {
	coords := []geom.Point{
		{X: 1, Y: 2}, // v1
		{X: 1, Y: 0}, // v2
		{X: 0, Y: 1}, // v3
		{X: 5, Y: 0}, // v4
		{X: 5, Y: 2}, // v5
		{X: 4, Y: 1}, // v6
		{X: 6, Y: 2}, // v7
		{X: 2, Y: 1}, // v8
	}
	edges := []graph.Edge{
		{U: V1, V: V3, Weight: 1},
		{U: V1, V: V8, Weight: 1},
		{U: V2, V: V3, Weight: 1},
		{U: V2, V: V8, Weight: 2},
		{U: V4, V: V5, Weight: 1},
		{U: V4, V: V6, Weight: 1},
		{U: V5, V: V6, Weight: 1},
		{U: V5, V: V7, Weight: 1},
		{U: V6, V: V8, Weight: 2},
	}
	g, err := graph.FromEdges(coords, edges)
	if err != nil {
		panic("testutil: Figure1 construction failed: " + err.Error())
	}
	return g
}

// SmallRoad returns a deterministic synthetic road network of roughly n
// vertices, suitable for exhaustive ground-truth comparison.
func SmallRoad(n int, seed int64) *graph.Graph {
	return gen.Generate(gen.Params{N: n, Seed: seed})
}

// DistanceFunc answers a distance query; PathFunc a shortest-path query.
type DistanceFunc func(s, t graph.VertexID) int64

// PathFunc returns a vertex path and its length.
type PathFunc func(s, t graph.VertexID) ([]graph.VertexID, int64)

// CheckDistancesAgainstDijkstra compares dist(s, t) from the technique under
// test with ground truth for the given pairs.
func CheckDistancesAgainstDijkstra(t *testing.T, g *graph.Graph, pairs [][2]graph.VertexID, f DistanceFunc) {
	t.Helper()
	ctx := dijkstra.NewContext(g)
	for _, p := range pairs {
		s, tt := p[0], p[1]
		want := ctx.Distance(s, tt)
		got := f(s, tt)
		if got != want {
			t.Errorf("dist(%d, %d) = %d, want %d", s, tt, got, want)
		}
	}
}

// CheckPathsAgainstDijkstra verifies that the technique's path answers are
// valid paths in g whose total weight equals the Dijkstra distance.
func CheckPathsAgainstDijkstra(t *testing.T, g *graph.Graph, pairs [][2]graph.VertexID, f PathFunc) {
	t.Helper()
	ctx := dijkstra.NewContext(g)
	for _, p := range pairs {
		s, tt := p[0], p[1]
		want := ctx.Distance(s, tt)
		path, dist := f(s, tt)
		if want >= graph.Infinity {
			if dist < graph.Infinity {
				t.Errorf("path(%d, %d): reported distance %d for unreachable pair", s, tt, dist)
			}
			continue
		}
		if dist != want {
			t.Errorf("path(%d, %d): reported distance %d, want %d", s, tt, dist, want)
			continue
		}
		if len(path) == 0 || path[0] != s || path[len(path)-1] != tt {
			t.Errorf("path(%d, %d): endpoints wrong in %v", s, tt, path)
			continue
		}
		if w := dijkstra.PathWeight(g, path); w != want {
			t.Errorf("path(%d, %d): edges sum to %d, want %d (path %v)", s, tt, w, want, path)
		}
	}
}

// AllPairs enumerates every ordered vertex pair of g, for exhaustive checks
// on small graphs.
func AllPairs(g *graph.Graph) [][2]graph.VertexID {
	n := g.NumVertices()
	pairs := make([][2]graph.VertexID, 0, n*n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			pairs = append(pairs, [2]graph.VertexID{graph.VertexID(s), graph.VertexID(t)})
		}
	}
	return pairs
}

// SamplePairs returns a deterministic pseudo-random sample of vertex pairs.
func SamplePairs(g *graph.Graph, count int, seed int64) [][2]graph.VertexID {
	n := int64(g.NumVertices())
	pairs := make([][2]graph.VertexID, 0, count)
	x := uint64(seed)*2654435761 + 1
	next := func() int64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int64(x % uint64(n))
	}
	for i := 0; i < count; i++ {
		pairs = append(pairs, [2]graph.VertexID{graph.VertexID(next()), graph.VertexID(next())})
	}
	return pairs
}
