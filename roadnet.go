// Package roadnet is a Go library for shortest path and distance queries on
// road networks, reproducing the experimental evaluation of Wu et al.,
// "Shortest Path and Distance Queries on Road Networks: An Experimental
// Evaluation" (PVLDB 5(5), 2012).
//
// It implements the five techniques the paper compares behind one
// interface:
//
//   - Bidirectional Dijkstra (the baseline, §3.1)
//   - Contraction Hierarchies, CH (§3.2)
//   - Transit Node Routing, TNR, with the paper's corrected access-node
//     computation (§3.3, Appendix B)
//   - Spatially Induced Linkage Cognizance, SILC (§3.4)
//   - Path-Coherent Pairs Decomposition, PCPD (§3.5)
//
// plus ALT (Appendix A) as an extension, together with a synthetic
// road-network generator, DIMACS file IO, the paper's two query-workload
// generators, and a benchmark harness that regenerates every table and
// figure of the evaluation (see cmd/spexp and bench_test.go).
//
// # Quick start
//
//	g := roadnet.Generate(roadnet.GenParams{N: 10000, Seed: 1})
//	idx, err := roadnet.NewIndex(roadnet.CH, g, roadnet.Config{})
//	if err != nil { ... }
//	dist := idx.Distance(42, 4711)
//	path, dist := idx.ShortestPath(42, 4711)
//
// # Concurrency
//
// Every index's data is immutable once NewIndex (or LoadIndex) returns, so
// a single Index can be shared by any number of goroutines. The mutable
// search state (distance labels, generation counters, priority queues)
// lives in per-goroutine query contexts:
//
//   - Index.Distance and Index.ShortestPath run on one internal context and
//     are NOT safe for concurrent use — they are the convenient
//     single-goroutine API.
//
//   - Index.NewSearcher returns an independent Searcher; searchers from
//     separate calls may run queries concurrently, and a searcher is
//     reusable across queries with zero steady-state allocations on the
//     distance hot path.
//
//   - NewPool wraps an Index in a pool of searchers for servers that spawn
//     a goroutine per request. By default the pool is unbounded (backed by
//     sync.Pool); WithMaxSearchers caps the number of live searchers, and
//     Pool.Prewarm builds searchers ahead of the first request burst:
//
//     pool := roadnet.NewPool(idx, roadnet.WithMaxSearchers(64))
//     pool.Prewarm(8)
//     go func() { dist := pool.Distance(42, 4711) }()
//     go func() { path, dist := pool.ShortestPath(7, 11) }()
//
// # Cancellation
//
// Every Searcher (and Pool) offers Context variants — DistanceContext and
// ShortestPathContext — that poll the context at bounded intervals (every
// 256 settled vertices, path hops, or recursion steps, depending on the
// technique) and abort with the context's error. The polling reaches every
// search loop, including the bidirectional-Dijkstra fallback inside TNR,
// so a cancelled request stops consuming CPU within a bounded number of
// steps regardless of the serving technique. A query issued on an
// already-cancelled context aborts before doing any work, and an aborted
// searcher remains valid for reuse.
//
// # Batch queries
//
// DistanceMatrix (and Pool.BatchDistance) answer a full sources×targets
// distance matrix with the best accelerator the index offers. The
// per-technique acceleration matrix:
//
//	CH        bucket many-to-many (Knopp et al.): one upward search per
//	          endpoint instead of |S|×|T| point-to-point queries
//	TNR       one table-lookup sweep; each endpoint's access-node set and
//	          distances are computed once, not once per pair
//	SILC      target-wise path walks with shared-suffix memoization: hops
//	          shared by several sources' paths are walked once
//	others    per-pair queries on one reusable searcher
//
// All accelerators return matrices bit-identical to per-pair queries.
//
// # Streaming paths
//
// OpenPath yields a path vertex-by-vertex through a PathIterator instead
// of materializing it, so consumers (the HTTP batch-route streamer in
// internal/server, cmd/spserve) hold only a bounded window of even a
// continent-length path. The streamed vertex sequence is bit-identical to
// ShortestPath's.
//
// # Spatial queries
//
// NewSpatialLocator builds the spatial query tier: an immutable R-tree
// over the vertex coordinates answering point location (NearestVertex —
// snap a raw coordinate to the network), geometric candidate generation,
// and, composed with the network engines, network-distance k-nearest
// neighbors (KNearest, SILC-accelerated when the index was built with
// SILCOptions{EnableNearest: true}) and network range queries (Within,
// with an optional Euclidean pre-filter). Geometry only ever prunes
// candidates; every returned distance is an exact network distance, and
// answers are bit-identical across index techniques. SaveRTree and
// LoadRTreeFile persist the tree in the flat v2 mmap format alongside the
// graph and index caches.
package roadnet

import (
	"context"
	"fmt"
	"io"

	"roadnet/internal/alt"
	"roadnet/internal/arcflags"
	"roadnet/internal/binio"
	"roadnet/internal/ch"
	"roadnet/internal/core"
	"roadnet/internal/gen"
	"roadnet/internal/geom"
	"roadnet/internal/graph"
	"roadnet/internal/metrics"
	"roadnet/internal/pcpd"
	"roadnet/internal/rtree"
	"roadnet/internal/silc"
	"roadnet/internal/tnr"
	"roadnet/internal/workload"
)

// Graph is an undirected weighted road network with planar coordinates.
type Graph = graph.Graph

// VertexID identifies a vertex; ids are dense in [0, NumVertices).
type VertexID = graph.VertexID

// Weight is an edge weight (travel time).
type Weight = graph.Weight

// Edge is one undirected road segment.
type Edge = graph.Edge

// Infinity is the distance reported for unreachable pairs.
const Infinity = graph.Infinity

// Method selects a query technique.
type Method = core.Method

// The available techniques.
const (
	Dijkstra = core.MethodDijkstra
	CH       = core.MethodCH
	TNR      = core.MethodTNR
	SILC     = core.MethodSILC
	PCPD     = core.MethodPCPD
	ALT      = core.MethodALT
	ArcFlags = core.MethodArcFlags
)

// Methods lists the paper's five techniques in presentation order.
func Methods() []Method { return core.AllMethods() }

// Index is the unified query interface: exact distance and shortest-path
// queries plus preprocessing statistics. Index data is immutable after
// construction; see the package comment for the concurrency contract.
type Index = core.Index

// Searcher is a per-goroutine query context over a shared Index, obtained
// from Index.NewSearcher or a Pool. A Searcher is reusable but not safe
// for concurrent use.
type Searcher = core.Searcher

// PathIterator yields the vertices of one shortest path in order, on
// demand: Next returns vertices front to back and then false, after which
// Err distinguishes normal exhaustion (nil) from an aborted walk (the
// context's error). An iterator reads the per-query state of the searcher
// that opened it — it is invalidated by that searcher's next query and
// must be drained (or abandoned) before the searcher is reused.
type PathIterator = core.PathIterator

// OpenPath streams the shortest path from s to t through sr without
// materializing it: the distance is reported up front and the vertices
// come lazily from the technique's native iterator (CH shortcut
// unpacking, SILC first-hop walks, TNR table-walk stitching, the
// Dijkstra-family parent walks). Techniques with no lazy production
// (PCPD) fall back to materializing internally; the vertex sequence is
// bit-identical either way. It returns (nil, Infinity, err) on
// cancellation, (nil, Infinity, nil) when t is unreachable from s, and
// (it, d, nil) otherwise. Iterators poll ctx at the same bounded
// intervals as the Context query variants.
func OpenPath(ctx context.Context, sr Searcher, s, t VertexID) (PathIterator, int64, error) {
	return core.OpenPath(ctx, sr, s, t)
}

// Pool hands out reusable Searchers over one shared Index so any number
// of goroutines can query concurrently with zero steady-state allocations
// on the distance hot path. See the package comment for bounding,
// pre-warming, cancellation and batch acceleration.
type Pool = core.Pool

// PoolOption configures NewPool.
type PoolOption = core.PoolOption

// WithMaxSearchers bounds a pool to at most n live searchers (Get blocks
// when all are checked out), capping the memory spent on per-searcher
// O(n) arrays on very large graphs.
func WithMaxSearchers(n int) PoolOption { return core.WithMaxSearchers(n) }

// MetricsRegistry collects instrumentation in Prometheus text exposition
// format, dependency-free and race-clean (see internal/metrics). One
// registry is typically shared by a pool (WithMetrics) and an HTTP server
// (internal/server's WithMetrics serves it at GET /metrics); docs/METRICS.md
// documents every metric the stack registers.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// WithMetrics registers the pool's occupancy instrumentation with reg:
// checked-out searchers, blocked waiters, pre-warmed spares, the
// configured cap, and a histogram of how long blocking Gets waited. The
// accounting is atomic adds only — the distance hot path stays
// allocation-free and lock-free.
func WithMetrics(reg *MetricsRegistry) PoolOption { return core.WithMetrics(reg) }

// NewPool returns a searcher pool over idx.
func NewPool(idx Index, opts ...PoolOption) *Pool { return core.NewPool(idx, opts...) }

// Stats reports an index's preprocessing time and memory footprint.
type Stats = core.Stats

// Config tunes index construction; the zero value is a sensible default
// for every method.
type Config = core.Config

// Options of the individual techniques, re-exported for Config.
type (
	// CHOptions tunes contraction hierarchy preprocessing.
	CHOptions = ch.Options
	// TNROptions tunes the TNR grid, fallback and access-node algorithm.
	TNROptions = tnr.Options
	// SILCOptions tunes the SILC quadtree.
	SILCOptions = silc.Options
	// PCPDOptions tunes the PCPD decomposition.
	PCPDOptions = pcpd.Options
	// ALTOptions tunes landmark selection.
	ALTOptions = alt.Options
	// ArcFlagsOptions tunes the arc-flags grid.
	ArcFlagsOptions = arcflags.Options
)

// NewIndex builds the index of the chosen method over g.
func NewIndex(method Method, g *Graph, cfg Config) (Index, error) {
	return core.BuildIndex(method, g, cfg)
}

// SaveIndex serializes a built index so deployments can preprocess once
// and load at startup. CH, TNR and SILC are supported (the methods whose
// preprocessing is expensive).
func SaveIndex(idx Index, w io.Writer) error { return core.SaveIndex(idx, w) }

// LoadIndex deserializes an index of the given method, re-attaching it to
// g — the same network it was built on. This is the copying stream path;
// LoadIndexFile adds the zero-copy mmap path for files.
func LoadIndex(method Method, r io.Reader, g *Graph) (Index, error) {
	return core.LoadIndex(method, r, g)
}

// LoadInfo describes how LoadIndexFile brought an index off disk: the load
// mode (mmap, heap flat, legacy v1 stream), the on-disk size and the load
// duration, for startup logging.
type LoadInfo = core.LoadInfo

// MmapSupported reports whether this platform has the zero-copy mmap load
// path (Linux and macOS). Elsewhere LoadIndexFile silently falls back to
// heap loads.
const MmapSupported = binio.MmapSupported

// ErrCorrupt is wrapped by every load error caused by bytes that do not
// hold up — failed structural validation or a checksum mismatch. Callers
// test it with errors.Is to distinguish corruption (rebuild or fall back)
// from environmental failures (missing file, permissions). spserve's
// degraded mode keys off it: a corrupt index file falls back to exact
// Dijkstra answers instead of refusing to boot.
var ErrCorrupt = binio.ErrCorrupt

// OpenOption tunes how index, graph and R-tree files are opened —
// currently whether their checksums are verified during the load.
type OpenOption = binio.OpenOption

// WithVerify forces a full checksum verification at load (the default for
// every file loader in this package): a flipped byte on disk fails the
// load with a corruption error instead of producing silently wrong paths.
func WithVerify() OpenOption { return binio.WithVerify() }

// WithoutVerify skips checksum verification at load. Mapped loads then
// stay O(#sections) — no page of a multi-GB index is touched until a
// query needs it — at the cost of trusting the bytes. Corruption can
// still be audited later with the spverify tool.
func WithoutVerify() OpenOption { return binio.WithoutVerify() }

// LoadIndexFile loads an index from a file. Flat v2 files (written by
// SaveIndex) are mapped when preferMmap is set and the platform supports
// it: the index arrays alias the page cache, making startup O(#sections)
// with near-zero allocations regardless of index size. Legacy v1 files
// load through the copying path. Call CloseIndex to release a mapping.
//
// Checksums are verified by default (see WithoutVerify);
// LoadInfo.Verified records whether the bytes are known-good.
func LoadIndexFile(method Method, path string, g *Graph, preferMmap bool, opts ...OpenOption) (Index, LoadInfo, error) {
	return core.LoadIndexFile(method, path, g, preferMmap, opts...)
}

// CloseIndex releases the file mapping behind an index loaded by
// LoadIndexFile. The index must not be used afterwards. It is a no-op for
// built or stream-loaded indexes, so it may be deferred unconditionally.
func CloseIndex(idx Index) error { return core.CloseIndex(idx) }

// SaveGraph writes g's CSR arrays as a flat v2 container, so deployments
// can parse DIMACS text once and map the binary form at every startup.
func SaveGraph(w io.Writer, g *Graph) error { return g.Save(w) }

// LoadGraph reads a graph written by SaveGraph from a stream (copying
// path; see LoadGraphFile for the zero-copy path).
func LoadGraph(r io.Reader) (*Graph, error) { return graph.ReadGraph(r) }

// LoadGraphFile maps (or, with preferMmap false or where unsupported,
// reads) a graph file written by SaveGraph. A mapped graph's arrays alias
// the page cache; call Close on the graph when it is retired. Checksums
// are verified by default (see WithoutVerify).
func LoadGraphFile(path string, preferMmap bool, opts ...OpenOption) (*Graph, error) {
	return graph.LoadFile(path, preferMmap, opts...)
}

// GenParams configures the synthetic road-network generator.
type GenParams = gen.Params

// Generate builds a seeded synthetic road network with road-like structure
// (see internal/gen for the properties it guarantees).
func Generate(p GenParams) *Graph { return gen.Generate(p) }

// DatasetPreset names a scaled analogue of one of the paper's Table 1
// datasets (DE ... US).
type DatasetPreset = gen.Preset

// Presets returns the ten scaled Table 1 dataset presets.
func Presets() []DatasetPreset { return gen.Presets }

// GeneratePreset generates the named preset dataset.
func GeneratePreset(name string) (*Graph, error) { return gen.GeneratePreset(name) }

// LoadDIMACS reads a road network from DIMACS Implementation Challenge
// .gr (graph) and .co (coordinates) streams — the format of the paper's
// real datasets.
func LoadDIMACS(gr, co io.Reader) (*Graph, error) { return graph.ReadDIMACS(gr, co) }

// WriteDIMACS writes g in DIMACS .gr/.co format.
func WriteDIMACS(gr, co io.Writer, g *Graph) error {
	if err := graph.WriteGR(gr, g); err != nil {
		return err
	}
	return graph.WriteCO(co, g)
}

// DistanceMatrix computes all source-target distances with the best
// accelerator the index offers (see the package comment's acceleration
// matrix: CH bucket many-to-many, TNR table sweep, SILC shared-prefix
// walks, per-pair queries otherwise). Unreachable pairs hold Infinity.
func DistanceMatrix(idx Index, sources, targets []VertexID) [][]int64 {
	table, _ := DistanceMatrixContext(context.Background(), idx, sources, targets)
	return table
}

// DistanceMatrixContext is DistanceMatrix with cancellation: all
// accelerators poll ctx at bounded intervals, and on cancellation the
// partial matrix is discarded and ctx's error returned. Dispatch lives in
// Pool.BatchDistance, the one copy of the per-technique batch policy.
func DistanceMatrixContext(ctx context.Context, idx Index, sources, targets []VertexID) ([][]int64, error) {
	return core.NewPool(idx).BatchDistance(ctx, sources, targets)
}

// Neighbor is one (vertex, network distance) result of a spatial query,
// ordered by (distance, id).
type Neighbor = core.Neighbor

// NearestK answers a k-nearest-neighbor query by network distance: the k
// vertices closest to s, ascending. It requires a SILC index built with
// SILCOptions{EnableNearest: true} (the paper's Appendix A notes SILC's
// suitability for nearest-neighbor queries). For a technique-independent
// k-NN engine (with SILC acceleration when available), use a
// SpatialLocator's KNearest.
func NearestK(idx Index, s VertexID, k int) ([]Neighbor, error) {
	sx := core.SILCOf(idx)
	if sx == nil {
		return nil, fmt.Errorf("roadnet: NearestK requires a SILC index")
	}
	res, err := sx.NearestK(s, k)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(res))
	for i, nb := range res {
		out[i] = Neighbor{V: nb.V, Dist: nb.Dist}
	}
	return out, nil
}

// Point is a planar vertex coordinate.
type Point = geom.Point

// SpatialLocator is the spatial query tier over one graph: an immutable
// R-tree over the vertex coordinates (point location, geometric k-NN and
// radius search) composed with the network-distance engines (KNearest,
// Within). Geometry only ever prunes; network distances decide. A locator
// is safe for concurrent use.
type SpatialLocator = core.SpatialLocator

// SpatialOption configures NewSpatialLocator.
type SpatialOption = core.SpatialOption

// WithRTreeNodeCapacity sets the R-tree node capacity (default 16,
// minimum 4).
func WithRTreeNodeCapacity(m int) SpatialOption { return core.WithRTreeNodeCapacity(m) }

// WithinOptions tunes SpatialLocator.Within: an optional Euclidean
// pre-filter radius and a result cap.
type WithinOptions = core.WithinOptions

// NewSpatialLocator bulk-loads an R-tree over g's vertex coordinates.
func NewSpatialLocator(g *Graph, opts ...SpatialOption) *SpatialLocator {
	return core.NewSpatialLocator(g, opts...)
}

// RTree is an immutable R-tree over (point, id) entries — the geometric
// index behind SpatialLocator, reusable standalone. See internal/rtree for
// the construction and query API.
type RTree = rtree.Tree

// SaveRTree writes a SpatialLocator's R-tree as a flat v2 container, so
// deployments can bulk-load once and mmap at every startup
// (LoadRTreeFile + NewSpatialLocatorFromTree).
func SaveRTree(w io.Writer, t *RTree) error { return t.Save(w) }

// LoadRTreeFile maps (or, with preferMmap false or where unsupported,
// reads) an R-tree file written by SaveRTree. Call Close on the tree when
// it is retired to release a mapping. Checksums are verified by default
// (see WithoutVerify).
func LoadRTreeFile(path string, preferMmap bool, opts ...OpenOption) (*RTree, error) {
	return rtree.LoadFile(path, preferMmap, opts...)
}

// NewSpatialLocatorFromTree wraps a previously saved (possibly mmap'd)
// R-tree; the tree must index exactly g's vertices.
func NewSpatialLocatorFromTree(g *Graph, t *RTree) (*SpatialLocator, error) {
	return core.NewSpatialLocatorFromTree(g, t)
}

// QueryPair is one (source, target) query.
type QueryPair = workload.Pair

// QuerySet is a bucket of query pairs with a distance range, e.g. Q3.
type QuerySet = workload.QuerySet

// WorkloadConfig tunes query-set generation.
type WorkloadConfig = workload.Config

// LInfQuerySets generates the paper's Q1..Q10 analogues: query pairs
// bucketed by L-infinity distance (§4.2).
func LInfQuerySets(g *Graph, cfg WorkloadConfig) ([]QuerySet, error) {
	return workload.LInfSets(g, cfg)
}

// NetworkDistanceQuerySets generates the R1..R10 analogues: query pairs
// bucketed by shortest-path distance (Appendix E.2).
func NetworkDistanceQuerySets(g *Graph, cfg WorkloadConfig) ([]QuerySet, error) {
	return workload.NetworkDistanceSets(g, cfg)
}

// SaveQuerySets persists query sets as CSV, so different runs or different
// implementations can be measured on byte-identical workloads.
func SaveQuerySets(w io.Writer, sets []QuerySet) error { return workload.WriteCSV(w, sets) }

// LoadQuerySets reads query sets written by SaveQuerySets, validating the
// vertex ids against g.
func LoadQuerySets(r io.Reader, g *Graph) ([]QuerySet, error) { return workload.ReadCSV(r, g) }
