// Tests asserting the paper's §4.7 summary claims on our testbed. These are
// the headline results of the reproduction: if one of them fails, the
// repository no longer reproduces the paper. Timing assertions use generous
// margins so they stay robust on slow or noisy machines.
package roadnet_test

import (
	"testing"
	"time"

	"roadnet/internal/ch"
	"roadnet/internal/core"
	"roadnet/internal/gen"
	"roadnet/internal/tnr"
	"roadnet/internal/workload"
)

// claimsEnv builds all techniques on a single mid-size dataset with near
// and far query sets.
type claimsEnvT struct {
	indexes map[core.Method]core.Index
	near    workload.QuerySet
	far     workload.QuerySet
}

var claimsEnv *claimsEnvT

func claims(t *testing.T) *claimsEnvT {
	t.Helper()
	if claimsEnv != nil {
		return claimsEnv
	}
	g := gen.Generate(gen.Params{N: 4000, Seed: 103})
	sets, err := workload.LInfSets(g, workload.Config{PairsPerSet: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	h := ch.Build(g, ch.Options{})
	e := &claimsEnvT{
		indexes: map[core.Method]core.Index{},
		near:    sets[0],
		far:     sets[len(sets)-1],
	}
	for _, m := range core.AllMethods() {
		ix, err := core.BuildIndex(m, g, core.Config{Hierarchy: h, TNR: tnr.Options{GridSize: 16}})
		if err != nil {
			t.Fatalf("build %s: %v", m, err)
		}
		e.indexes[m] = ix
	}
	claimsEnv = e
	return e
}

// timeSet returns the mean per-query time of a method on a set.
func timeSet(e *claimsEnvT, m core.Method, qs workload.QuerySet, path bool) float64 {
	if path {
		return core.MeasurePath(e.indexes[m], qs).AvgMicros
	}
	return core.MeasureDistance(e.indexes[m], qs).AvgMicros
}

func TestClaimDijkstraSlowestOnFarQueries(t *testing.T) {
	e := claims(t)
	dij := timeSet(e, core.MethodDijkstra, e.far, false)
	for _, m := range []core.Method{core.MethodCH, core.MethodTNR, core.MethodSILC} {
		if v := timeSet(e, m, e.far, false); v*3 > dij {
			t.Errorf("§4.5: %s (%.1f us) not clearly faster than Dijkstra (%.1f us) on far distance queries", m, v, dij)
		}
	}
}

func TestClaimCHSmallestIndex(t *testing.T) {
	e := claims(t)
	chBytes := e.indexes[core.MethodCH].Stats().IndexBytes
	for _, m := range []core.Method{core.MethodTNR, core.MethodSILC, core.MethodPCPD} {
		if b := e.indexes[m].Stats().IndexBytes; b <= chBytes {
			t.Errorf("§4.3: %s index (%d B) not larger than CH (%d B)", m, b, chBytes)
		}
	}
}

func TestClaimSILCAndPCPDPreprocessingHeavy(t *testing.T) {
	e := claims(t)
	chTime := e.indexes[core.MethodCH].Stats().BuildTime
	silcTime := e.indexes[core.MethodSILC].Stats().BuildTime
	pcpdTime := e.indexes[core.MethodPCPD].Stats().BuildTime
	if silcTime < chTime {
		t.Errorf("§4.3: SILC preprocessing (%v) should exceed CH's (%v)", silcTime, chTime)
	}
	if pcpdTime < silcTime {
		t.Errorf("§4.3/§4.7: PCPD preprocessing (%v) should exceed SILC's (%v)", pcpdTime, silcTime)
	}
}

func TestClaimSILCBeatsPCPD(t *testing.T) {
	e := claims(t)
	silc := timeSet(e, core.MethodSILC, e.far, true)
	pcpd := timeSet(e, core.MethodPCPD, e.far, true)
	if silc > pcpd*1.5 {
		t.Errorf("§4.4: SILC path queries (%.2f us) should not be clearly slower than PCPD (%.2f us)", silc, pcpd)
	}
	silcB := e.indexes[core.MethodSILC].Stats().IndexBytes
	pcpdB := e.indexes[core.MethodPCPD].Stats().IndexBytes
	if pcpdB < silcB/4 {
		t.Errorf("§4.3: PCPD space (%d) unexpectedly far below SILC (%d)", pcpdB, silcB)
	}
}

func TestClaimTNRFastestOnFarDistanceQueries(t *testing.T) {
	e := claims(t)
	tnrT := timeSet(e, core.MethodTNR, e.far, false)
	chT := timeSet(e, core.MethodCH, e.far, false)
	if tnrT > chT {
		t.Errorf("§4.5: TNR (%.2f us) should beat CH (%.2f us) on far distance queries", tnrT, chT)
	}
}

func TestClaimTNREqualsCHOnNearQueries(t *testing.T) {
	// §4.5: "TNR and CH perform identically on Q1..Q5" — every near query
	// falls back to CH. Assert on fallback counts, which are deterministic,
	// rather than on timings.
	e := claims(t)
	tnrIx := core.TNROf(e.indexes[core.MethodTNR])
	before := tnrIx.FallbackQueries
	core.MeasureDistance(e.indexes[core.MethodTNR], e.near)
	fallbacks := tnrIx.FallbackQueries - before
	if fallbacks != len(e.near.Pairs) {
		t.Errorf("§4.5: %d of %d near queries used the fallback; expected all", fallbacks, len(e.near.Pairs))
	}
}

func TestClaimTNRAnswersFarFromTables(t *testing.T) {
	e := claims(t)
	tnrIx := core.TNROf(e.indexes[core.MethodTNR])
	before := tnrIx.TableQueries
	core.MeasureDistance(e.indexes[core.MethodTNR], e.far)
	tables := tnrIx.TableQueries - before
	if tables != len(e.far.Pairs) {
		t.Errorf("§4.5: %d of %d far queries answered from tables; expected all", tables, len(e.far.Pairs))
	}
}

func TestClaimCHPathsSlowerThanDistances(t *testing.T) {
	// §4.6: CH shortest-path queries pay for shortcut unpacking.
	e := claims(t)
	dist := timeSet(e, core.MethodCH, e.far, false)
	path := timeSet(e, core.MethodCH, e.far, true)
	if path < dist {
		t.Errorf("§4.6: CH path queries (%.2f us) should cost more than distance queries (%.2f us)", path, dist)
	}
}

func TestClaimSILCFastestOnPathQueries(t *testing.T) {
	// §4.6: SILC outperforms CH and TNR on shortest-path queries where its
	// index fits.
	e := claims(t)
	silc := timeSet(e, core.MethodSILC, e.far, true)
	for _, m := range []core.Method{core.MethodCH, core.MethodTNR} {
		if v := timeSet(e, m, e.far, true); silc > v {
			t.Errorf("§4.6: SILC (%.2f us) should beat %s (%.2f us) on far path queries", silc, m, v)
		}
	}
}

func TestClaimCHPreprocessingFast(t *testing.T) {
	// §4.3: CH preprocessing is the cheapest by orders of magnitude; on
	// this 4k dataset it must stay well under a second.
	e := claims(t)
	if bt := e.indexes[core.MethodCH].Stats().BuildTime; bt > 5*time.Second {
		t.Errorf("CH preprocessing took %v on 4000 vertices; implausibly slow", bt)
	}
}
