package main

// The client mode: with -server, sproute queries a running spserve over
// HTTP instead of building a local index. -sources/-targets give the batch
// matrix; -ndjson asks for the chunked line-framed streaming response and
// consumes it line by line — bounded client memory however long the paths
// are — honoring the in-band status markers: {"done":true} means the
// matrix is complete, a {"truncated":true,...} marker (or a cell closed
// with "truncated":true) means the server cut the stream (vertex budget,
// timeout, disconnect) and sproute exits non-zero.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
)

// parseIDList parses a comma-separated vertex id list ("3,14,15").
func parseIDList(arg, name string) ([]int64, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, fmt.Errorf("client mode needs -%s (comma-separated vertex ids)", name)
	}
	parts := strings.Split(arg, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: bad vertex id %q", name, p)
		}
		out = append(out, id)
	}
	return out, nil
}

// runClient executes the batch-route request against server and renders
// the response. It returns the process exit code: 0 for a complete
// matrix, 1 for a truncated or failed one.
func runClient(server, sourcesArg, targetsArg string, ndjson, printPath bool) int {
	sources, err := parseIDList(sourcesArg, "sources")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	targets, err := parseIDList(targetsArg, "targets")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	body, _ := json.Marshal(struct {
		Sources []int64 `json:"sources"`
		Targets []int64 `json:"targets"`
	}{sources, targets})

	url := strings.TrimRight(server, "/") + "/v1/batch/route"
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(string(body)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	req.Header.Set("Content-Type", "application/json")
	if ndjson {
		req.Header.Set("Accept", "application/x-ndjson")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", url, resp.Status, e.Error)
		return 1
	}
	if ndjson {
		return consumeNDJSON(resp.Body, printPath)
	}
	return consumeJSON(resp.Body, printPath)
}

// routeCell is one matrix cell in either response mode. In NDJSON mode the
// i/j members locate it; Truncated marks a cell the server cut mid-path.
type routeCell struct {
	I         *int    `json:"i"`
	J         *int    `json:"j"`
	Reachable bool    `json:"reachable"`
	Distance  int64   `json:"distance"`
	Vertices  []int64 `json:"vertices"`
	Truncated bool    `json:"truncated"`
	// Marker-line members: {"done":true} / {"truncated":true,"error":...}.
	Done  bool   `json:"done"`
	Error string `json:"error"`
}

func printCell(i, j int64, c *routeCell, printPath bool) {
	switch {
	case !c.Reachable:
		fmt.Printf("%d -> %d: unreachable\n", i, j)
	case c.Truncated:
		fmt.Printf("%d -> %d: distance %d (path truncated at %d vertices)\n", i, j, c.Distance, len(c.Vertices))
	default:
		fmt.Printf("%d -> %d: distance %d (%d vertices)\n", i, j, c.Distance, len(c.Vertices))
	}
	if printPath && len(c.Vertices) > 0 {
		fmt.Print("  path:")
		for _, v := range c.Vertices {
			fmt.Printf(" %d", v)
		}
		fmt.Println()
	}
}

// consumeNDJSON reads the line-framed stream: a header line naming the
// matrix, one line per cell, and a final status marker. Every line is one
// JSON object, so a Scanner with an enlarged buffer handles even
// continent-length path lines.
func consumeNDJSON(body io.Reader, printPath bool) int {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), 64*1024*1024)
	var header struct {
		Sources []int64 `json:"sources"`
		Targets []int64 `json:"targets"`
	}
	if !sc.Scan() {
		fmt.Fprintln(os.Stderr, "empty response stream")
		return 1
	}
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		fmt.Fprintf(os.Stderr, "bad header line: %v\n", err)
		return 1
	}
	cells, cut, sawDone := 0, false, false
	for sc.Scan() {
		var c routeCell
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			fmt.Fprintf(os.Stderr, "bad stream line: %v\n", err)
			return 1
		}
		switch {
		case c.Done:
			sawDone = true
		case c.I == nil: // truncation marker line
			fmt.Fprintf(os.Stderr, "stream truncated by server: %s\n", c.Error)
			cut = true
		default:
			if c.J == nil || *c.I >= len(header.Sources) || *c.J >= len(header.Targets) {
				fmt.Fprintf(os.Stderr, "cell index out of range: %s\n", sc.Bytes())
				return 1
			}
			printCell(header.Sources[*c.I], header.Targets[*c.J], &c, printPath)
			cells++
			cut = cut || c.Truncated
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "reading stream: %v\n", err)
		return 1
	}
	want := len(header.Sources) * len(header.Targets)
	fmt.Printf("%d/%d cells received\n", cells, want)
	if cut || !sawDone {
		if !cut {
			fmt.Fprintln(os.Stderr, "stream ended without {\"done\":true}")
		}
		return 1
	}
	return 0
}

// consumeJSON reads the classic single-document response.
func consumeJSON(body io.Reader, printPath bool) int {
	var doc struct {
		Sources []int64       `json:"sources"`
		Targets []int64       `json:"targets"`
		Routes  [][]routeCell `json:"routes"`
	}
	if err := json.NewDecoder(body).Decode(&doc); err != nil {
		fmt.Fprintf(os.Stderr, "decoding response: %v\n", err)
		return 1
	}
	for i, row := range doc.Routes {
		for j := range row {
			printCell(doc.Sources[i], doc.Targets[j], &row[j], printPath)
		}
	}
	return 0
}
