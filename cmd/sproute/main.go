// Command sproute answers point-to-point shortest path and distance
// queries on a road network using any of the implemented techniques.
//
// Usage:
//
//	sproute -preset CO -method ch -s 12 -t 4711
//	sproute -gr map.gr -co map.co -method tnr -s 0 -t 99 -path
//
// With -server, sproute is an HTTP client for a running spserve instead:
//
//	sproute -server http://localhost:8080 -sources 0,1,2 -targets 40,41
//	sproute -server http://localhost:8080 -sources 0 -targets 41 -ndjson -path
//
// Client mode POSTs /v1/batch/route. -ndjson requests the chunked
// NDJSON streaming response and consumes it line by line (bounded client
// memory regardless of path length); the exit status is non-zero when the
// server's in-band marker reports a truncated stream — e.g. the
// route-vertex budget ran out — so scripts can tell a complete matrix
// from a cut one.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"roadnet"
)

func main() {
	var (
		preset  = flag.String("preset", "", "Table 1 dataset preset name")
		grPath  = flag.String("gr", "", "DIMACS .gr file")
		coPath  = flag.String("co", "", "DIMACS .co file")
		method  = flag.String("method", "ch", "technique: dijkstra, ch, tnr, silc, pcpd, alt")
		source  = flag.Int("s", 0, "source vertex id")
		target  = flag.Int("t", 1, "target vertex id")
		path    = flag.Bool("path", false, "print the full vertex path")
		queries = flag.Int("repeat", 1, "repeat the query to report a stable timing")
		srvURL  = flag.String("server", "", "spserve base URL: query it over HTTP instead of building a local index")
		sources = flag.String("sources", "", "client mode: comma-separated source vertex ids")
		targets = flag.String("targets", "", "client mode: comma-separated target vertex ids")
		ndjson  = flag.Bool("ndjson", false, "client mode: stream the response as NDJSON (bounded memory, in-band truncation marker)")
	)
	flag.Parse()

	if *srvURL != "" {
		os.Exit(runClient(*srvURL, *sources, *targets, *ndjson, *path))
	}

	g, err := load(*preset, *grPath, *coPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	n := g.NumVertices()
	if *source < 0 || *source >= n || *target < 0 || *target >= n {
		fmt.Fprintf(os.Stderr, "vertex ids must be in [0, %d)\n", n)
		os.Exit(2)
	}

	buildStart := time.Now()
	idx, err := roadnet.NewIndex(roadnet.Method(*method), g, roadnet.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("built %s index in %.2fs (%d vertices, %d edges)\n",
		*method, time.Since(buildStart).Seconds(), n, g.NumEdges())

	s, t := roadnet.VertexID(*source), roadnet.VertexID(*target)
	start := time.Now()
	var dist int64
	var vertices []roadnet.VertexID
	for i := 0; i < *queries; i++ {
		if *path {
			vertices, dist = idx.ShortestPath(s, t)
		} else {
			dist = idx.Distance(s, t)
		}
	}
	elapsed := time.Since(start) / time.Duration(*queries)

	if dist >= roadnet.Infinity {
		fmt.Printf("%d -> %d: unreachable (%.1f microsec/query)\n", s, t, float64(elapsed.Nanoseconds())/1e3)
		return
	}
	fmt.Printf("%d -> %d: distance %d (%.1f microsec/query)\n", s, t, dist, float64(elapsed.Nanoseconds())/1e3)
	if *path {
		fmt.Printf("path (%d vertices):", len(vertices))
		for i, v := range vertices {
			if i > 0 && i%12 == 0 {
				fmt.Println()
			}
			fmt.Printf(" %d", v)
		}
		fmt.Println()
	}
}

func load(preset, grPath, coPath string) (*roadnet.Graph, error) {
	if preset != "" {
		return roadnet.GeneratePreset(preset)
	}
	if grPath == "" || coPath == "" {
		return nil, fmt.Errorf("need -preset, or both -gr and -co")
	}
	gr, err := os.Open(grPath)
	if err != nil {
		return nil, err
	}
	defer gr.Close()
	co, err := os.Open(coPath)
	if err != nil {
		return nil, err
	}
	defer co.Close()
	return roadnet.LoadDIMACS(gr, co)
}
