// Command spverify audits the integrity of flat v2 files — the index,
// graph and R-tree caches written by spserve and the Save* APIs — without
// loading them into a serving process.
//
// Usage:
//
//	spverify [-q] [-strict] file...
//
// For each file it parses the container structure, then checks the
// header/table/meta CRC and every section's CRC32C, reporting a verdict
// per section. The exit status is the fleet-automation contract:
//
//	0  every file verified clean (or, without -strict, was unauditable)
//	1  at least one file is corrupt — structural damage or a checksum
//	   mismatch; rebuild it from source data before serving from it
//	2  usage error, or a file could not be read at all
//
// Files written before checksum support (and legacy v1 streams) carry no
// checksums; they parse but cannot be audited. By default these are
// reported as "unauditable" and do not fail the run; -strict treats them
// as failures, for fleets that require every serving byte to be
// attestable. Rewriting such a file with the current tools (load it, save
// it) upgrades it to the checksummed layout.
//
// Auditing maps the file read-only and streams one sequential CRC sweep;
// a multi-GB index audit allocates almost nothing.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"roadnet/internal/binio"
)

func main() {
	quiet := flag.Bool("q", false, "print only failures and the final verdict line")
	strict := flag.Bool("strict", false, "treat unauditable files (no checksums, legacy v1 streams) as failures")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: spverify [-q] [-strict] file...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	exit := 0
	raise := func(code int) {
		if code > exit {
			exit = code
		}
	}
	for _, path := range flag.Args() {
		switch verdict, err := audit(path, *quiet); verdict {
		case auditOK:
			fmt.Printf("%s: ok\n", path)
		case auditUnauditable:
			fmt.Printf("%s: unauditable: %v\n", path, err)
			if *strict {
				raise(1)
			}
		case auditCorrupt:
			fmt.Fprintf(os.Stderr, "%s: CORRUPT: %v\n", path, err)
			raise(1)
		case auditUnreadable:
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			raise(2)
		}
	}
	os.Exit(exit)
}

type auditVerdict int

const (
	auditOK auditVerdict = iota
	auditUnauditable
	auditCorrupt
	auditUnreadable
)

// audit opens one file without the load-time verification sweep, then runs
// the sweep itself so it can attribute a failure to the header or to a
// specific section.
func audit(path string, quiet bool) (auditVerdict, error) {
	f, err := binio.OpenFlat(path, true, binio.WithoutVerify())
	if err != nil {
		switch {
		case errors.Is(err, binio.ErrNotFlat), errors.Is(err, binio.ErrVersion):
			// Legacy v1 streams (and foreign files) have no checksums to
			// audit. They are not known-bad, merely unattestable.
			return auditUnauditable, err
		case errors.Is(err, binio.ErrCorrupt):
			return auditCorrupt, err
		default:
			return auditUnreadable, err
		}
	}
	defer f.Close()

	if !quiet {
		fmt.Printf("%s: %s, %d sections, %d bytes, %s\n",
			path, fourccString(f.Fourcc()), f.NumSections(), f.SizeBytes(), mode(f))
	}
	if !f.HasChecksums() {
		return auditUnauditable, errors.New("no checksums (written before checksum support); rewrite the file to upgrade it")
	}

	if err := f.VerifyHeader(); err != nil {
		return auditCorrupt, err
	}
	if !quiet {
		fmt.Printf("  header/table/meta: ok\n")
	}
	for i := 0; i < f.NumSections(); i++ {
		if err := f.VerifySection(i); err != nil {
			return auditCorrupt, err
		}
		if !quiet {
			kind, size := f.SectionInfo(i)
			fmt.Printf("  section %d (%s, %d bytes): ok\n", i, kind, size)
		}
	}
	return auditOK, nil
}

func mode(f *binio.FlatFile) string {
	if f.Mapped() {
		return "mmap"
	}
	return "heap"
}

func fourccString(fc uint32) string {
	b := []byte{byte(fc), byte(fc >> 8), byte(fc >> 16), byte(fc >> 24)}
	for i, c := range b {
		if c < 0x20 || c > 0x7e {
			b[i] = '?'
		}
	}
	return string(b)
}
