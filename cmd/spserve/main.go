// Command spserve serves shortest path and distance queries over HTTP —
// the online-map-service deployment the paper's introduction motivates.
//
// Usage:
//
//	spserve -preset CO -method ch -addr :8080
//	spserve -gr map.gr -co map.co -method tnr -index tnr.idx
//
// With -index, the index is loaded from the file when it exists and
// otherwise built and saved to it (preprocess once, serve forever). Index
// files in the flat v2 format are mmap'd by default on supported platforms
// (-mmap=false forces heap loads): startup is O(#sections) regardless of
// index size and the resident index memory is page cache shared across
// processes. -graph likewise caches the parsed network in binary form, so
// restarts skip DIMACS text parsing. Every load logs its mode (mmap /
// heap), duration and byte count.
//
// Queries are served concurrently: the index data is shared read-only
// across all request goroutines and each request draws a per-goroutine
// query context from a searcher pool, so throughput scales with cores
// (GOMAXPROCS).
//
// The searcher pool can be bounded (-pool-max caps live searchers, so the
// per-searcher O(n) arrays cannot grow without bound on very large graphs)
// and pre-warmed (-prewarm builds N searchers before the listener opens, so
// the first request burst does not pay N allocations).
//
// API (see docs/API.md for the full contract):
//
//	GET  /v1/distance?from=ID&to=ID
//	GET  /v1/route?from=ID&to=ID      (or from_x/from_y, to_x/to_y coordinates)
//	GET  /v1/nearest?x=X&y=Y
//	GET  /v1/stats
//	POST /v1/batch/distance            {"sources":[...],"targets":[...]}
//	POST /v1/batch/route               {"sources":[...],"targets":[...]}
//	POST /v1/knn                       {"source":ID,"k":K}
//	POST /v1/within                    {"source":ID,"radius":R}
//
// The spatial tier (coordinate snapping, /v1/knn, /v1/within) runs on an
// R-tree over the vertex coordinates, bulk-loaded at startup or mmap'd
// from a -rtree cache file. /v1/knn answers by exact network distance —
// SILC distance browsing with R-tree candidate pruning when the index was
// built with -knn (method silc), bounded Dijkstra otherwise; answers are
// bit-identical either way. -request-timeout bounds every request's
// wall-clock time.
//
// Batch routes are streamed row-by-row from lazy path iterators, so the
// server's resident memory is bounded regardless of path length and
// matrix size; with "Accept: application/x-ndjson" the response arrives
// as newline-delimited cells instead of one JSON document. A per-request
// total-vertex budget (-route-vertex-budget) caps how much path data one
// request may produce. Request contexts are propagated into every query,
// so disconnected clients stop consuming CPU mid-search.
//
// # Production resilience
//
// Flat-file checksums are verified at load by default (-verify=false
// defers the sweep, keeping mapped startups O(#sections); spverify audits
// such files offline). A corrupt index file does not stop the boot: the
// server falls back to exact answers from a Dijkstra index and reports
// "degraded":true on /readyz, so the fleet keeps answering while the
// operator rebuilds the file. GET /healthz is liveness (always 200 while
// the process serves); GET /readyz is readiness (503 while draining).
// -rate-limit/-rate-burst bound each client's admission (429 with
// Retry-After beyond the budget), and handler panics answer 500 without
// taking down the process.
//
// On SIGINT/SIGTERM the server drains instead of dying mid-request:
// /readyz flips to 503 so balancers stop routing, the listener closes,
// in-flight requests run to completion (bounded by -drain-timeout), and
// only then are the mmap'd graph, index and R-tree files unmapped. A
// second signal aborts immediately.
//
// # Observability
//
// GET /metrics serves Prometheus text exposition (on by default;
// -metrics=false disables it): per-endpoint request counts and latency
// histograms, per-technique query counters, searcher-pool occupancy,
// batch stream accounting, index load/verify timings, and the
// draining/degraded serving state. The scrape is exempt from rate
// limiting, like the health probes. docs/METRICS.md documents every
// metric; docs/OPERATIONS.md is the runbook built on them.
//
// -pprof-addr starts net/http/pprof on its own listener (e.g.
// "localhost:6060"). The profiler is never mounted on the public mux —
// bind it to localhost or an internal interface only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on the -pprof-addr listener's mux
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"roadnet"
	"roadnet/internal/core"
	"roadnet/internal/server"
)

func main() {
	var (
		preset      = flag.String("preset", "", "Table 1 dataset preset name")
		grPath      = flag.String("gr", "", "DIMACS .gr file")
		coPath      = flag.String("co", "", "DIMACS .co file")
		method      = flag.String("method", "ch", "technique: dijkstra, ch, tnr, silc, pcpd, alt, arcflags")
		indexPath   = flag.String("index", "", "index file: load if present, else build and save (ch/tnr/silc)")
		graphPath   = flag.String("graph", "", "binary graph file: load if present, else parse -preset/-gr/-co and save")
		useMmap     = flag.Bool("mmap", roadnet.MmapSupported, "mmap flat index/graph files instead of reading them onto the heap")
		addr        = flag.String("addr", ":8080", "listen address")
		poolMax     = flag.Int("pool-max", 0, "cap on live searchers (0 = unbounded); requests block when all are busy")
		prewarm     = flag.Int("prewarm", runtime.GOMAXPROCS(0), "searchers to build before serving, so the first burst pays no allocations (guaranteed to stay warm only with -pool-max; unbounded pools may drop idle searchers at GC)")
		routeBudget = flag.Int64("route-vertex-budget", server.DefaultBatchRouteVertexBudget, "max total path vertices one batch-route request may stream (JSON responses over budget get 413; NDJSON responses truncate in-band)")
		reqTimeout  = flag.Duration("request-timeout", 0, "wall-clock bound per request (0 = none); requests over it abort with 503")
		knnNearest  = flag.Bool("knn", false, "build the SILC per-region nearest bounds that accelerate /v1/knn (method silc only; grows the index)")
		rtreePath   = flag.String("rtree", "", "R-tree file: load (mmap) if present, else bulk-load from the graph and save")
		knnMax      = flag.Int("knn-max", server.DefaultMaxKNN, "max k accepted by /v1/knn")
		withinMax   = flag.Int("within-max", server.DefaultMaxWithinResults, "max neighbors one /v1/within response may carry (larger answers truncate)")
		verify      = flag.Bool("verify", true, "verify flat-file checksums at load; -verify=false keeps mapped startups O(#sections) at the cost of trusting the bytes (audit later with spverify)")
		drainWait   = flag.Duration("drain-timeout", 15*time.Second, "max time to let in-flight requests finish after SIGTERM/SIGINT before closing their connections")
		rateLimit   = flag.Float64("rate-limit", 0, "per-client admission rate in requests/sec (0 = unlimited); clients over their budget get 429 with Retry-After")
		rateBurst   = flag.Int("rate-burst", 10, "per-client burst allowance when -rate-limit is set")
		withMetrics = flag.Bool("metrics", true, "serve Prometheus text metrics at GET /metrics")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); never exposed on the public mux")
	)
	flag.Parse()

	var openOpts []roadnet.OpenOption
	if !*verify {
		openOpts = append(openOpts, roadnet.WithoutVerify())
	}

	g, err := loadGraph(*preset, *grPath, *coPath, *graphPath, *useMmap, openOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	cfg := roadnet.Config{}
	cfg.SILC.EnableNearest = *knnNearest
	idx, loadInfo, idxVerified, degraded, err := buildOrLoad(roadnet.Method(*method), g, *indexPath, *useMmap, openOpts, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := idx.Stats()
	fmt.Printf("index: %s, %d KB, built in %v\n", st.Method, st.IndexBytes/1024, st.BuildTime.Round(time.Millisecond))

	var reg *roadnet.MetricsRegistry
	if *withMetrics {
		reg = roadnet.NewMetricsRegistry()
		registerLoadMetrics(reg, loadInfo, st)
	}

	var poolOpts []core.PoolOption
	if *poolMax > 0 {
		poolOpts = append(poolOpts, core.WithMaxSearchers(*poolMax))
	}
	if reg != nil {
		poolOpts = append(poolOpts, core.WithMetrics(reg))
	}
	pool := core.NewPool(idx, poolOpts...)
	if n := pool.Prewarm(*prewarm); n > 0 {
		fmt.Printf("pool: pre-warmed %d searchers", n)
		if *poolMax > 0 {
			fmt.Printf(" (cap %d)", *poolMax)
		}
		fmt.Println()
	}

	loc, err := loadOrBuildLocator(g, *rtreePath, *useMmap, openOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The readiness report's verified flag means: every byte this process
	// serves from is known-good — built in-process, or checksum-verified
	// off disk. Loads that skipped verification (or legacy checksum-less
	// files) clear it.
	health := server.NewHealth()
	health.SetVerified(idxVerified && g.Verified() && loc.Tree().Verified())
	if degraded != "" {
		health.SetDegraded(degraded)
	}

	srvOpts := []server.Option{
		server.WithPool(pool),
		server.WithBatchRouteVertexBudget(*routeBudget),
		server.WithSpatialLocator(loc),
		server.WithSpatialLimits(*knnMax, *withinMax),
		server.WithHealth(health),
	}
	if *reqTimeout > 0 {
		srvOpts = append(srvOpts, server.WithRequestTimeout(*reqTimeout))
	}
	if *rateLimit > 0 {
		srvOpts = append(srvOpts, server.WithRateLimit(*rateLimit, *rateBurst))
	}
	if reg != nil {
		srvOpts = append(srvOpts, server.WithMetrics(reg))
	}
	srv := server.New(g, idx, srvOpts...)

	// The profiler gets its own listener and mux (net/http/pprof registers
	// on http.DefaultServeMux, which the public server never uses), so
	// heap dumps and CPU profiles are reachable only on the operator's
	// interface.
	if *pprofAddr != "" {
		go func() {
			fmt.Printf("pprof: listening on %s (keep this off public interfaces)\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Printf("listening on %s, serving concurrently on up to %d cores\n", *addr, runtime.GOMAXPROCS(0))

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: flip readiness first so balancers stop routing, then close the
	// listener and let in-flight requests run to completion. stop() restores
	// default signal handling, so a second signal aborts immediately.
	stop()
	health.SetDraining()
	fmt.Printf("shutdown: signal received, draining in-flight requests (up to %v)\n", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	code := 0
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "shutdown: drain incomplete: %v\n", err)
		code = 1
	}

	// Only after the last request finished is it safe to unmap the files
	// the serving data structures alias.
	for _, c := range []struct {
		name  string
		close func() error
	}{
		{"index", func() error { return roadnet.CloseIndex(idx) }},
		{"rtree", loc.Tree().Close},
		{"graph", g.Close},
	} {
		if err := c.close(); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: closing %s: %v\n", c.name, err)
			code = 1
		}
	}
	if code == 0 {
		fmt.Println("shutdown: drained cleanly")
	}
	os.Exit(code)
}

// buildOrLoad resolves the serving index. A readable index file is loaded
// (checksum-verified unless -verify=false); a corrupt one does not stop
// the boot — the server degrades to exact answers from a Dijkstra index
// and reports the reason on /readyz, keeping the endpoint answering while
// the operator rebuilds the file. The degraded return carries that reason
// ("" when healthy); verified reports whether the index bytes are
// known-good (built in-process, or checksum-verified off disk); info is
// the zero LoadInfo when the index was built rather than loaded.
func buildOrLoad(method roadnet.Method, g *roadnet.Graph, indexPath string, useMmap bool, openOpts []roadnet.OpenOption, cfg roadnet.Config) (idx core.Index, info roadnet.LoadInfo, verified bool, degraded string, err error) {
	if indexPath != "" {
		if _, statErr := os.Stat(indexPath); statErr == nil {
			idx, info, err := roadnet.LoadIndexFile(method, indexPath, g, useMmap, openOpts...)
			if err == nil {
				fmt.Printf("load: index %s via %s in %v (%d KB on disk)\n",
					indexPath, info.Mode(), info.LoadTime.Round(time.Microsecond), info.SizeBytes/1024)
				return idx, info, info.Verified, "", nil
			}
			if !errors.Is(err, roadnet.ErrCorrupt) {
				return nil, info, false, "", fmt.Errorf("loading %s: %w", indexPath, err)
			}
			degraded = fmt.Sprintf("index file %s is corrupt, serving exact Dijkstra answers", indexPath)
			fmt.Fprintf(os.Stderr, "load: %s: %v\ndegraded: falling back to a Dijkstra index; rebuild the file and restart to restore %s\n",
				indexPath, err, method)
			fallback, buildErr := roadnet.NewIndex(roadnet.Dijkstra, g, roadnet.Config{})
			if buildErr != nil {
				return nil, roadnet.LoadInfo{}, false, "", buildErr
			}
			return fallback, roadnet.LoadInfo{}, true, degraded, nil
		}
	}
	idx, err = roadnet.NewIndex(method, g, cfg)
	if err != nil {
		return nil, roadnet.LoadInfo{}, false, "", err
	}
	if indexPath != "" {
		f, err := os.Create(indexPath)
		if err != nil {
			return nil, roadnet.LoadInfo{}, false, "", err
		}
		defer f.Close()
		if err := roadnet.SaveIndex(idx, f); err != nil {
			return nil, roadnet.LoadInfo{}, false, "", fmt.Errorf("saving %s: %w", indexPath, err)
		}
		fmt.Printf("saved index to %s\n", indexPath)
	}
	return idx, roadnet.LoadInfo{}, true, "", nil
}

// registerLoadMetrics publishes the startup load path as gauges, set once:
// how big the serving index is, whether it came in over mmap or the heap,
// and how long the load and its checksum sweep took. For an index built
// in-process (zero LoadInfo) the size comes from the index stats and the
// load gauges stay zero.
func registerLoadMetrics(reg *roadnet.MetricsRegistry, info roadnet.LoadInfo, st roadnet.Stats) {
	bytes := float64(st.IndexBytes)
	if info.SizeBytes > 0 {
		bytes = float64(info.SizeBytes)
	}
	reg.Gauge("roadnet_index_bytes",
		"Size of the serving index: bytes on disk for a loaded index, in-memory footprint for a built one.").Set(bytes)
	mapped := 0.0
	if info.Mapped {
		mapped = 1
	}
	reg.Gauge("roadnet_index_mmap",
		"1 when the index file is mmap'd (zero-copy, page-cache resident), 0 for heap loads and built indexes.").Set(mapped)
	reg.Gauge("roadnet_index_load_seconds",
		"Wall-clock time of the startup index load (0 for an index built in-process).").Set(info.LoadTime.Seconds())
	reg.Gauge("roadnet_index_verify_seconds",
		"Portion of the load spent verifying checksums (0 when verification was skipped).").Set(info.VerifyTime.Seconds())
}

// loadOrBuildLocator resolves the spatial tier: the R-tree cache when
// present (mmap'd flat v2, O(#sections) startup), otherwise an STR bulk
// load over the graph's coordinates — saved back when -rtree is set.
func loadOrBuildLocator(g *roadnet.Graph, rtreePath string, useMmap bool, openOpts []roadnet.OpenOption) (*roadnet.SpatialLocator, error) {
	if rtreePath != "" {
		if _, err := os.Stat(rtreePath); err == nil {
			start := time.Now()
			t, err := roadnet.LoadRTreeFile(rtreePath, useMmap, openOpts...)
			if err != nil {
				return nil, fmt.Errorf("loading %s: %w", rtreePath, err)
			}
			loc, err := roadnet.NewSpatialLocatorFromTree(g, t)
			if err != nil {
				return nil, fmt.Errorf("%s does not match the graph: %w", rtreePath, err)
			}
			mode := "heap"
			if t.Mapped() {
				mode = "mmap"
			}
			fmt.Printf("load: rtree %s via %s in %v (%d vertices)\n",
				rtreePath, mode, time.Since(start).Round(time.Microsecond), t.Len())
			return loc, nil
		}
	}
	loc := roadnet.NewSpatialLocator(g)
	if rtreePath != "" {
		f, err := os.Create(rtreePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := roadnet.SaveRTree(f, loc.Tree()); err != nil {
			return nil, fmt.Errorf("saving %s: %w", rtreePath, err)
		}
		fmt.Printf("saved rtree to %s\n", rtreePath)
	}
	return loc, nil
}

// loadGraph resolves the network: the binary graph cache when present
// (mmap'd flat CSR, skipping DIMACS text parsing), otherwise the preset or
// DIMACS source — saved back to the cache when -graph is set.
func loadGraph(preset, grPath, coPath, graphPath string, useMmap bool, openOpts []roadnet.OpenOption) (*roadnet.Graph, error) {
	if graphPath != "" {
		if _, err := os.Stat(graphPath); err == nil {
			start := time.Now()
			g, err := roadnet.LoadGraphFile(graphPath, useMmap, openOpts...)
			if err != nil {
				return nil, fmt.Errorf("loading %s: %w", graphPath, err)
			}
			mode := "heap"
			if g.Mapped() {
				mode = "mmap"
			}
			fmt.Printf("load: graph %s via %s in %v\n", graphPath, mode, time.Since(start).Round(time.Microsecond))
			return g, nil
		}
	}
	g, err := parseGraph(preset, grPath, coPath)
	if err != nil {
		return nil, err
	}
	if graphPath != "" {
		f, err := os.Create(graphPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := roadnet.SaveGraph(f, g); err != nil {
			return nil, fmt.Errorf("saving %s: %w", graphPath, err)
		}
		fmt.Printf("saved graph to %s\n", graphPath)
	}
	return g, nil
}

func parseGraph(preset, grPath, coPath string) (*roadnet.Graph, error) {
	if preset != "" {
		return roadnet.GeneratePreset(preset)
	}
	if grPath == "" || coPath == "" {
		return nil, fmt.Errorf("need -preset, or both -gr and -co")
	}
	gr, err := os.Open(grPath)
	if err != nil {
		return nil, err
	}
	defer gr.Close()
	co, err := os.Open(coPath)
	if err != nil {
		return nil, err
	}
	defer co.Close()
	return roadnet.LoadDIMACS(gr, co)
}
