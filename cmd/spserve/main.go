// Command spserve serves shortest path and distance queries over HTTP —
// the online-map-service deployment the paper's introduction motivates.
//
// Usage:
//
//	spserve -preset CO -method ch -addr :8080
//	spserve -gr map.gr -co map.co -method tnr -index tnr.idx
//
// With -index, the index is loaded from the file when it exists and
// otherwise built and saved to it (preprocess once, serve forever).
//
// Queries are served concurrently: the index data is shared read-only
// across all request goroutines and each request draws a per-goroutine
// query context from a searcher pool, so throughput scales with cores
// (GOMAXPROCS).
//
// The searcher pool can be bounded (-pool-max caps live searchers, so the
// per-searcher O(n) arrays cannot grow without bound on very large graphs)
// and pre-warmed (-prewarm builds N searchers before the listener opens, so
// the first request burst does not pay N allocations).
//
// API:
//
//	GET  /v1/distance?from=ID&to=ID
//	GET  /v1/route?from=ID&to=ID
//	GET  /v1/nearest?x=X&y=Y
//	GET  /v1/stats
//	POST /v1/batch/distance            {"sources":[...],"targets":[...]}
//	POST /v1/batch/route               {"sources":[...],"targets":[...]}
//
// Request contexts are propagated into every query, so disconnected
// clients stop consuming CPU mid-search.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"roadnet"
	"roadnet/internal/core"
	"roadnet/internal/server"
)

func main() {
	var (
		preset    = flag.String("preset", "", "Table 1 dataset preset name")
		grPath    = flag.String("gr", "", "DIMACS .gr file")
		coPath    = flag.String("co", "", "DIMACS .co file")
		method    = flag.String("method", "ch", "technique: dijkstra, ch, tnr, silc, pcpd, alt, arcflags")
		indexPath = flag.String("index", "", "index file: load if present, else build and save (ch/tnr/silc)")
		addr      = flag.String("addr", ":8080", "listen address")
		poolMax   = flag.Int("pool-max", 0, "cap on live searchers (0 = unbounded); requests block when all are busy")
		prewarm   = flag.Int("prewarm", runtime.GOMAXPROCS(0), "searchers to build before serving, so the first burst pays no allocations (guaranteed to stay warm only with -pool-max; unbounded pools may drop idle searchers at GC)")
	)
	flag.Parse()

	g, err := load(*preset, *grPath, *coPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	idx, err := buildOrLoad(roadnet.Method(*method), g, *indexPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := idx.Stats()
	fmt.Printf("index: %s, %d KB, built in %v\n", st.Method, st.IndexBytes/1024, st.BuildTime.Round(time.Millisecond))

	var poolOpts []core.PoolOption
	if *poolMax > 0 {
		poolOpts = append(poolOpts, core.WithMaxSearchers(*poolMax))
	}
	pool := core.NewPool(idx, poolOpts...)
	if n := pool.Prewarm(*prewarm); n > 0 {
		fmt.Printf("pool: pre-warmed %d searchers", n)
		if *poolMax > 0 {
			fmt.Printf(" (cap %d)", *poolMax)
		}
		fmt.Println()
	}

	srv := server.New(g, idx, server.WithPool(pool))
	fmt.Printf("listening on %s, serving concurrently on up to %d cores\n", *addr, runtime.GOMAXPROCS(0))
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func buildOrLoad(method roadnet.Method, g *roadnet.Graph, indexPath string) (core.Index, error) {
	if indexPath != "" {
		if f, err := os.Open(indexPath); err == nil {
			defer f.Close()
			idx, err := roadnet.LoadIndex(method, f, g)
			if err != nil {
				return nil, fmt.Errorf("loading %s: %w", indexPath, err)
			}
			fmt.Printf("loaded index from %s\n", indexPath)
			return idx, nil
		}
	}
	idx, err := roadnet.NewIndex(method, g, roadnet.Config{})
	if err != nil {
		return nil, err
	}
	if indexPath != "" {
		f, err := os.Create(indexPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := roadnet.SaveIndex(idx, f); err != nil {
			return nil, fmt.Errorf("saving %s: %w", indexPath, err)
		}
		fmt.Printf("saved index to %s\n", indexPath)
	}
	return idx, nil
}

func load(preset, grPath, coPath string) (*roadnet.Graph, error) {
	if preset != "" {
		return roadnet.GeneratePreset(preset)
	}
	if grPath == "" || coPath == "" {
		return nil, fmt.Errorf("need -preset, or both -gr and -co")
	}
	gr, err := os.Open(grPath)
	if err != nil {
		return nil, err
	}
	defer gr.Close()
	co, err := os.Open(coPath)
	if err != nil {
		return nil, err
	}
	defer co.Close()
	return roadnet.LoadDIMACS(gr, co)
}
