// Command doccheck keeps the markdown documentation honest. For each
// given file (default: README.md and docs/*.md) it checks two things that
// rot silently:
//
//   - Every fenced ```go code block must parse. Blocks that are not
//     complete files are wrapped in a synthetic package/function first, so
//     statement-level snippets (the quick-start style) are covered too.
//     Parsing only — snippets may reference identifiers without importing
//     them, but syntax errors (a renamed API pasted half-heartedly, a
//     dropped brace) fail the build.
//   - Every relative markdown link must resolve to an existing file.
//     External links (http/https/mailto) and pure fragments are skipped;
//     a fragment on a relative link is stripped before the check.
//
// Exit status 0 when everything holds, 1 with one line per finding
// otherwise, 2 on usage errors. CI runs it in the lint job next to vet.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: doccheck [file.md ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		files = append(files, "README.md")
		docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
		if err == nil {
			files = append(files, docs...)
		}
	}

	var findings []string
	for _, f := range files {
		fs, err := checkFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("doccheck: %v", err)
	}
	text := string(data)
	var findings []string
	for _, b := range goBlocks(text) {
		if err := parseSnippet(b.code); err != nil {
			findings = append(findings, fmt.Sprintf("%s:%d: go snippet does not parse: %v", path, b.line, err))
		}
	}
	for _, l := range relativeLinks(text) {
		target := filepath.Join(filepath.Dir(path), filepath.FromSlash(l.target))
		if _, err := os.Stat(target); err != nil {
			findings = append(findings, fmt.Sprintf("%s:%d: broken link %q (%s does not exist)", path, l.line, l.target, target))
		}
	}
	return findings, nil
}

// block is one fenced ```go code block with its starting line number.
type block struct {
	line int
	code string
}

// goBlocks extracts the fenced code blocks tagged go. Fences inside other
// fences do not occur in this repository's docs; the scan is a flat state
// machine over lines.
func goBlocks(text string) []block {
	var out []block
	var cur []string
	inGo, inOther := false, false
	start := 0
	for i, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case inGo && strings.HasPrefix(trimmed, "```"):
			out = append(out, block{line: start, code: strings.Join(cur, "\n")})
			inGo, cur = false, nil
		case inOther && strings.HasPrefix(trimmed, "```"):
			inOther = false
		case inGo:
			cur = append(cur, line)
		case !inOther && trimmed == "```go":
			inGo, start = true, i+2 // first snippet line, 1-based
		case !inOther && strings.HasPrefix(trimmed, "```"):
			inOther = true
		}
	}
	return out
}

// parseSnippet accepts a snippet that is a complete file, a set of
// top-level declarations, or a statement list (tried in that order).
func parseSnippet(code string) error {
	candidates := []string{
		code,
		"package snippet\n" + code,
		"package snippet\nfunc _() {\n" + code + "\n}",
	}
	var firstErr error
	for _, src := range candidates {
		_, err := parser.ParseFile(token.NewFileSet(), "snippet.go", src, 0)
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// link is one relative markdown link with its line number.
type link struct {
	line   int
	target string
}

// linkRe matches inline markdown links. Good enough for these docs: no
// nested brackets, no reference-style links.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func relativeLinks(text string) []link {
	var out []link
	inFence := false
	for i, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			t := m[1]
			if strings.Contains(t, "://") || strings.HasPrefix(t, "mailto:") || strings.HasPrefix(t, "#") {
				continue
			}
			t, _, _ = strings.Cut(t, "#")
			if t == "" {
				continue
			}
			out = append(out, link{line: i + 1, target: t})
		}
	}
	return out
}
