// Command spexp regenerates the paper's tables and figures as text tables.
//
// Usage:
//
//	spexp -list
//	spexp -exp f8 -datasets DE,NH,ME,CO -queries 1000
//	spexp -exp all -full -queries 10000     # the paper's full workload
//
// Each experiment id maps to a paper artifact (t1, t2, f6..f17, b); see
// DESIGN.md for the index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"roadnet"
	"roadnet/internal/exp"
	"roadnet/internal/gen"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		expIDs   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		datasets = flag.String("datasets", "", "comma-separated dataset presets (default: the five smallest)")
		full     = flag.Bool("full", false, "use all ten Table 1 dataset presets")
		queries  = flag.Int("queries", 1000, "queries per Q/R set (the paper uses 10000)")
		seed     = flag.Int64("seed", 1, "workload seed")
		maxMB    = flag.Int64("maxmem", 1536, "index memory ceiling in MB (the paper's analogue is 24 GB)")
		grid     = flag.Int("grid", 32, "TNR coarse grid size (the paper's analogue of 128)")
		cacheDir = flag.String("cachedir", "", "persist built CH/TNR/SILC indexes here and reuse them across runs")
		useMmap  = flag.Bool("mmap", roadnet.MmapSupported, "mmap cached index files instead of reading them onto the heap")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %-11s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	cfg := exp.Config{
		QueriesPerSet: *queries,
		Seed:          *seed,
		MaxIndexBytes: *maxMB << 20,
		TNRGridSize:   *grid,
		CacheDir:      *cacheDir,
		CacheMmap:     *useMmap,
	}
	switch {
	case *datasets != "":
		cfg.Datasets = strings.Split(*datasets, ",")
	case *full:
		for _, p := range gen.Presets {
			cfg.Datasets = append(cfg.Datasets, p.Name)
		}
	}

	var selected []exp.Experiment
	if *expIDs == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*expIDs, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	// One Runner shares datasets, hierarchies and indexes across all
	// selected experiments; without it the all-pairs preprocessing of
	// SILC/PCPD would be repeated per experiment.
	runner := exp.NewRunner(cfg)
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
			fmt.Println(strings.Repeat("=", 72))
			fmt.Println()
		}
		start := time.Now()
		if err := runner.Run(e.ID, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s completed in %.1fs]\n", e.ID, time.Since(start).Seconds())
	}
}
