// Command genmap generates a synthetic road network and writes it in the
// DIMACS Implementation Challenge format (.gr graph + .co coordinates),
// the format of the paper's datasets.
//
// Usage:
//
//	genmap -preset CO -out colorado        # writes colorado.gr, colorado.co
//	genmap -n 50000 -seed 7 -out mymap
package main

import (
	"flag"
	"fmt"
	"os"

	"roadnet/internal/gen"
	"roadnet/internal/graph"
)

func main() {
	var (
		preset = flag.String("preset", "", "Table 1 dataset preset name (DE, NH, ..., US)")
		n      = flag.Int("n", 10000, "target vertex count (ignored with -preset)")
		seed   = flag.Int64("seed", 1, "generator seed (ignored with -preset)")
		out    = flag.String("out", "map", "output base name")
	)
	flag.Parse()

	var g *graph.Graph
	if *preset != "" {
		var err error
		g, err = gen.GeneratePreset(*preset)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		g = gen.Generate(gen.Params{N: *n, Seed: *seed})
	}

	grFile, err := os.Create(*out + ".gr")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer grFile.Close()
	coFile, err := os.Create(*out + ".co")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer coFile.Close()

	if err := graph.WriteGR(grFile, g); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := graph.WriteCO(coFile, g); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s.gr and %s.co: %d vertices, %d edges\n",
		*out, *out, g.NumVertices(), g.NumEdges())
}
