// Command benchcheck is the perf-regression gate of the CI bench job: it
// parses `go test -bench` output, aggregates repeated runs (-count N) into
// per-benchmark medians, and compares them against a committed baseline
// (BENCH_baseline.json), failing when a benchmark got more than the
// threshold slower.
//
// Usage:
//
//	go test -run xxx -bench . -cpu 4 -count 5 ./... | tee bench.txt
//	go run ./cmd/benchcheck -baseline BENCH_baseline.json bench.txt
//	go run ./cmd/benchcheck -baseline BENCH_baseline.json -update bench.txt
//
// Two kinds of checks run:
//
//   - Absolute: each benchmark's median ns/op must not exceed the
//     baseline's by more than -threshold (default 10%). Absolute numbers
//     are machine-specific, so the committed baseline must be refreshed
//     with -update when the CI runner class changes.
//
//   - Relative: when both BenchmarkServerThroughput and
//     BenchmarkServerThroughputSerialized appear in the same run, their
//     ratio (serialized / parallel — the multi-core speedup of the pooled
//     server) must not fall below the baseline ratio by more than the
//     threshold. The ratio is machine-independent, so this guards the
//     concurrency win even across runner changes. The same rule applies to
//     BenchmarkIndexLoadHeap / BenchmarkIndexLoadMmap (load_speedup): mmap
//     loads must stay an order of magnitude cheaper than heap loads, or the
//     zero-copy path has regressed into copying. And to
//     BenchmarkBatchRouteMaterialized / BenchmarkBatchRouteStreamed
//     (batch_route_alloc_ratio), compared by B/op instead of ns/op: a
//     streamed batch-route request must keep allocating far less than the
//     materialize-then-encode equivalent, or path streaming has regressed
//     into buffering whole matrices again. And to BenchmarkKNNLinear /
//     BenchmarkKNNPruned (knn_prune_ratio), compared by their
//     "candidates/op" custom metric — exact network-distance evaluations
//     per k-NN query: R-tree-seeded pruning must keep evaluating several
//     times fewer candidates than the evaluate-every-vertex linear scan.
//     The metric is a deterministic count over a fixed query set, so this
//     gate is immune to machine and -benchtime variation entirely.
//
// Use benchstat alongside for the human-readable comparison table; this
// tool only decides pass/fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkPoolDistanceCH-4   50000   30123 ns/op   0 B/op   0 allocs/op
//
// The B/op group is present only when the benchmark reports allocations.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?`)

// The benchmark pair whose ratio is the machine-independent scaling gate.
const (
	parallelBench   = "BenchmarkServerThroughput"
	serializedBench = "BenchmarkServerThroughputSerialized"
)

// The benchmark pair whose ratio gates the zero-copy load path.
const (
	heapLoadBench = "BenchmarkIndexLoadHeap"
	mmapLoadBench = "BenchmarkIndexLoadMmap"
)

// The benchmark pair whose B/op ratio gates batch-route streaming:
// materialized/streamed bytes allocated per request over the same long-path
// matrix. The ratio is machine-independent (allocation sizes, not speeds),
// so it guards "resident memory bounded independent of path length" across
// runner changes.
const (
	materializedRouteBench = "BenchmarkBatchRouteMaterialized"
	streamedRouteBench     = "BenchmarkBatchRouteStreamed"
)

// The benchmark pair whose candidates/op ratio gates R-tree k-NN pruning:
// linear/pruned exact distance evaluations per query. Both report the
// deterministic per-query candidate count via b.ReportMetric, so the ratio
// is bit-stable across machines.
const (
	linearKNNBench = "BenchmarkKNNLinear"
	prunedKNNBench = "BenchmarkKNNPruned"
)

// candMetric matches the custom candidates/op metric, which `go test
// -bench` prints after the built-in ns/op column.
var candMetric = regexp.MustCompile(`([0-9.]+(?:e[+-]?[0-9]+)?) candidates/op`)

// baseline is the committed reference file.
type baseline struct {
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks_ns_per_op"`
	// ParallelSpeedup is serialized/parallel median ns/op at the recorded
	// CPU count — the multi-core win of the searcher-pool server.
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	// LoadSpeedup is heap/mmap median index-load ns/op — the zero-copy win
	// of mmap'd flat files over heap loads of the same file.
	LoadSpeedup float64 `json:"load_speedup,omitempty"`
	// AllocRatio is materialized/streamed median B/op of one long-path
	// batch-route request — the bounded-residency win of streaming paths
	// through a PathIterator instead of materializing the matrix.
	AllocRatio float64 `json:"batch_route_alloc_ratio,omitempty"`
	// KNNPruneRatio is linear/pruned median candidates/op of a network
	// k-NN query — how many times fewer exact distance evaluations the
	// R-tree-seeded SILC browsing needs than a full linear scan.
	KNNPruneRatio float64 `json:"knn_prune_ratio,omitempty"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file to compare against (or write with -update)")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional slowdown before failing")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	flag.Parse()

	samples, byteSamples, candSamples, err := parseFiles(flag.Args())
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}
	medians := make(map[string]float64, len(samples))
	for name, ns := range samples {
		medians[name] = median(ns)
	}
	byteMedians := make(map[string]float64, len(byteSamples))
	for name, bs := range byteSamples {
		byteMedians[name] = median(bs)
	}
	candMedians := make(map[string]float64, len(candSamples))
	for name, cs := range candSamples {
		candMedians[name] = median(cs)
	}
	speedup := speedupOf(medians)
	loadSpeedup := ratioOf(medians, heapLoadBench, mmapLoadBench)
	allocRatio := ratioOf(byteMedians, materializedRouteBench, streamedRouteBench)
	knnPruneRatio := ratioOf(candMedians, linearKNNBench, prunedKNNBench)

	if *update {
		if err := writeBaseline(*baselinePath, medians, speedup, loadSpeedup, allocRatio, knnPruneRatio); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: wrote %s with %d benchmarks\n", *baselinePath, len(medians))
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	failures := compare(base, medians, speedup, loadSpeedup, allocRatio, knnPruneRatio, *threshold)
	names := make([]string, 0, len(medians))
	for name := range medians {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ref, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("  %-52s %12.0f ns/op   (no baseline)\n", name, medians[name])
			continue
		}
		fmt.Printf("  %-52s %12.0f ns/op   baseline %12.0f  (%+.1f%%)\n",
			name, medians[name], ref, 100*(medians[name]-ref)/ref)
	}
	if speedup > 0 {
		fmt.Printf("  %-52s %12.2fx          baseline %12.2fx\n", "parallel speedup (serialized/parallel)", speedup, base.ParallelSpeedup)
	}
	if loadSpeedup > 0 {
		fmt.Printf("  %-52s %12.2fx          baseline %12.2fx\n", "load speedup (heap/mmap)", loadSpeedup, base.LoadSpeedup)
	}
	if allocRatio > 0 {
		fmt.Printf("  %-52s %12.2fx          baseline %12.2fx\n", "batch route alloc ratio (materialized/streamed)", allocRatio, base.AllocRatio)
	}
	if knnPruneRatio > 0 {
		fmt.Printf("  %-52s %12.2fx          baseline %12.2fx\n", "knn prune ratio (linear/pruned candidates)", knnPruneRatio, base.KNNPruneRatio)
	}
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: FAIL")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("benchcheck: ok")
}

// compare returns one message per gate violation.
func compare(base *baseline, medians map[string]float64, speedup, loadSpeedup, allocRatio, knnPruneRatio, threshold float64) []string {
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ref := base.Benchmarks[name]
		got, ok := medians[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from this run", name))
			continue
		}
		if got > ref*(1+threshold) {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op is %.1f%% slower than baseline %.0f (threshold %.0f%%)",
				name, got, 100*(got-ref)/ref, ref, 100*threshold))
		}
	}
	if base.ParallelSpeedup > 0 && speedup > 0 && speedup < base.ParallelSpeedup*(1-threshold) {
		failures = append(failures, fmt.Sprintf(
			"parallel speedup %.2fx fell more than %.0f%% below baseline %.2fx — the pooled server lost its multi-core scaling",
			speedup, 100*threshold, base.ParallelSpeedup))
	}
	if base.LoadSpeedup > 0 && loadSpeedup > 0 && loadSpeedup < base.LoadSpeedup*(1-threshold) {
		failures = append(failures, fmt.Sprintf(
			"load speedup %.2fx fell more than %.0f%% below baseline %.2fx — the mmap load path lost its zero-copy advantage",
			loadSpeedup, 100*threshold, base.LoadSpeedup))
	}
	if base.AllocRatio > 0 && allocRatio > 0 && allocRatio < base.AllocRatio*(1-threshold) {
		failures = append(failures, fmt.Sprintf(
			"batch route alloc ratio %.2fx fell more than %.0f%% below baseline %.2fx — the streamed handler is materializing paths again",
			allocRatio, 100*threshold, base.AllocRatio))
	}
	if base.KNNPruneRatio > 0 && knnPruneRatio > 0 && knnPruneRatio < base.KNNPruneRatio*(1-threshold) {
		failures = append(failures, fmt.Sprintf(
			"knn prune ratio %.2fx fell more than %.0f%% below baseline %.2fx — R-tree seeding stopped pruning k-NN candidate evaluations",
			knnPruneRatio, 100*threshold, base.KNNPruneRatio))
	}
	return failures
}

// speedupOf derives the serialized/parallel ratio when both throughput
// benchmarks (at any -cpu suffix) are present, preferring the highest CPU
// count in the run.
func speedupOf(medians map[string]float64) float64 {
	best := 0.0
	bestCPU := -1
	for name, par := range medians {
		prefix, cpu := splitCPU(name)
		if prefix != parallelBench {
			continue
		}
		ser, ok := medians[serializedName(cpu)]
		if !ok || par <= 0 {
			continue
		}
		if cpu > bestCPU {
			bestCPU = cpu
			best = ser / par
		}
	}
	return best
}

// ratioOf derives numer/denom median ns/op for a benchmark pair (at any
// -cpu suffix, matched per suffix), preferring the highest CPU count.
func ratioOf(medians map[string]float64, numer, denom string) float64 {
	best := 0.0
	bestCPU := -1
	for name, down := range medians {
		prefix, cpu := splitCPU(name)
		if prefix != denom || down <= 0 {
			continue
		}
		upName := numer
		if cpu > 1 {
			upName = fmt.Sprintf("%s-%d", numer, cpu)
		}
		up, ok := medians[upName]
		if !ok {
			continue
		}
		if cpu > bestCPU {
			bestCPU = cpu
			best = up / down
		}
	}
	return best
}

func serializedName(cpu int) string {
	if cpu <= 1 {
		return serializedBench
	}
	return fmt.Sprintf("%s-%d", serializedBench, cpu)
}

// splitCPU splits "BenchmarkFoo-8" into ("BenchmarkFoo", 8); a name with no
// suffix is CPU 1.
func splitCPU(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	cpu, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return name, 1
	}
	return name[:i], cpu
}

// parseFiles collects ns/op samples per benchmark, plus B/op samples for
// the benchmarks that report allocations (the alloc-ratio gate's input)
// and candidates/op samples for the ones that report the k-NN pruning
// metric (the prune-ratio gate's input).
func parseFiles(paths []string) (map[string][]float64, map[string][]float64, map[string][]float64, error) {
	samples := make(map[string][]float64)
	byteSamples := make(map[string][]float64)
	candSamples := make(map[string][]float64)
	read := func(f *os.File) error {
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if m := benchLine.FindStringSubmatch(sc.Text()); m != nil {
				ns, err := strconv.ParseFloat(m[2], 64)
				if err != nil {
					return fmt.Errorf("parsing %q: %w", sc.Text(), err)
				}
				samples[m[1]] = append(samples[m[1]], ns)
				if m[3] != "" {
					bs, err := strconv.ParseFloat(m[3], 64)
					if err != nil {
						return fmt.Errorf("parsing %q: %w", sc.Text(), err)
					}
					byteSamples[m[1]] = append(byteSamples[m[1]], bs)
				}
				if c := candMetric.FindStringSubmatch(sc.Text()); c != nil {
					cs, err := strconv.ParseFloat(c[1], 64)
					if err != nil {
						return fmt.Errorf("parsing %q: %w", sc.Text(), err)
					}
					candSamples[m[1]] = append(candSamples[m[1]], cs)
				}
			}
		}
		return sc.Err()
	}
	if len(paths) == 0 {
		if err := read(os.Stdin); err != nil {
			return nil, nil, nil, err
		}
		return samples, byteSamples, candSamples, nil
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, nil, err
		}
		err = read(f)
		f.Close()
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return samples, byteSamples, candSamples, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func readBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &b, nil
}

func writeBaseline(path string, medians map[string]float64, speedup, loadSpeedup, allocRatio, knnPruneRatio float64) error {
	b := baseline{
		Note: "Median ns/op per benchmark from `go test -bench -cpu 4 -count 5`, " +
			"compared by cmd/benchcheck with a fractional threshold. Absolute numbers are " +
			"machine-specific: refresh with `go run ./cmd/benchcheck -update` output when the " +
			"CI runner class changes. parallel_speedup (serialized/parallel server throughput), " +
			"load_speedup (heap/mmap index load), batch_route_alloc_ratio " +
			"(materialized/streamed batch-route B/op) and knn_prune_ratio (linear/pruned k-NN " +
			"candidates/op) are machine-independent ratios guarding " +
			"the multi-core scaling of the searcher pool, the zero-copy mmap load path, the " +
			"bounded residency of batch-route streaming and the R-tree pruning of k-NN search.",
		Benchmarks:      medians,
		ParallelSpeedup: speedup,
		LoadSpeedup:     loadSpeedup,
		AllocRatio:      allocRatio,
		KNNPruneRatio:   knnPruneRatio,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
