// Integration tests for the command-line tools: each binary is built once
// and exercised end to end on small inputs. These verify flag parsing, file
// IO and the wiring between the commands and the library — the paths unit
// tests cannot reach.
package roadnet_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCommands compiles the cmd binaries into a temp dir once per test run.
var builtCommands struct {
	dir  string
	fail string
}

func commandPath(t *testing.T, name string) string {
	t.Helper()
	if builtCommands.fail != "" {
		t.Fatalf("command build failed earlier: %s", builtCommands.fail)
	}
	if builtCommands.dir == "" {
		dir, err := os.MkdirTemp("", "roadnet-cmds")
		if err != nil {
			t.Fatal(err)
		}
		out, err := exec.Command("go", "build", "-o", dir+string(filepath.Separator),
			"./cmd/spexp", "./cmd/genmap", "./cmd/sproute").CombinedOutput()
		if err != nil {
			builtCommands.fail = string(out)
			t.Fatalf("building commands: %v\n%s", err, out)
		}
		builtCommands.dir = dir
	}
	return filepath.Join(builtCommands.dir, name)
}

func runCommand(t *testing.T, name string, args ...string) string {
	t.Helper()
	out, err := exec.Command(commandPath(t, name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", name, strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestSpexpList(t *testing.T) {
	out := runCommand(t, "spexp", "-list")
	for _, id := range []string{"t1", "t2", "f6", "f17", "b", "ext"} {
		if !strings.Contains(out, id) {
			t.Errorf("spexp -list missing experiment %q:\n%s", id, out)
		}
	}
}

func TestSpexpRunsSingleExperiment(t *testing.T) {
	out := runCommand(t, "spexp", "-exp", "t1", "-datasets", "DE", "-queries", "10")
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Delaware") {
		t.Errorf("unexpected t1 output:\n%s", out)
	}
}

func TestGenmapAndSproute(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "tiny")
	out := runCommand(t, "genmap", "-n", "400", "-seed", "3", "-out", base)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("genmap output: %s", out)
	}
	for _, ext := range []string{".gr", ".co"} {
		if _, err := os.Stat(base + ext); err != nil {
			t.Fatalf("genmap did not write %s: %v", ext, err)
		}
	}

	out = runCommand(t, "sproute",
		"-gr", base+".gr", "-co", base+".co", "-method", "ch", "-s", "0", "-t", "5", "-path")
	if !strings.Contains(out, "distance") {
		t.Fatalf("sproute output: %s", out)
	}
	if !strings.Contains(out, "path (") {
		t.Fatalf("sproute -path did not print a path: %s", out)
	}
}

func TestSprouteRejectsBadVertex(t *testing.T) {
	cmd := exec.Command(commandPath(t, "sproute"), "-preset", "DE", "-s", "0", "-t", "999999")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected failure for out-of-range vertex, got:\n%s", out)
	}
}
