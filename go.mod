module roadnet

go 1.24
