// Quickstart: generate a road network, build a Contraction Hierarchies
// index, and answer a shortest-path and a distance query.
package main

import (
	"fmt"
	"log"

	"roadnet"
)

func main() {
	// A synthetic road network with ~10,000 vertices; Generate is seeded,
	// so this program is fully reproducible.
	g := roadnet.Generate(roadnet.GenParams{N: 10000, Seed: 42})
	fmt.Printf("network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// CH is the paper's recommendation when both space and time matter
	// (§5: "a preferable choice when both space efficiency and time
	// efficiency are major concerns").
	idx, err := roadnet.NewIndex(roadnet.CH, g, roadnet.Config{})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("CH index: built in %v, %d KB\n", st.BuildTime.Round(1e6), st.IndexBytes/1024)

	s, t := roadnet.VertexID(0), roadnet.VertexID(g.NumVertices()-1)

	// Distance query: just the length of the shortest path.
	fmt.Printf("distance %d -> %d: %d\n", s, t, idx.Distance(s, t))

	// Shortest path query: the edge sequence itself.
	path, dist := idx.ShortestPath(s, t)
	fmt.Printf("path has %d vertices, total weight %d\n", len(path), dist)
	fmt.Printf("first hops: %v ...\n", path[:min(6, len(path))])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
