// Logistics: a depot-to-customer distance matrix — the batch workload of
// fleet routing and delivery planning. With a CH index, DistanceMatrix runs
// the bucket many-to-many algorithm (one upward search per endpoint), the
// same accelerator the paper plugs into TNR's preprocessing (§4.1);
// repeated point-to-point queries would cost |depots| x |customers|
// searches instead.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"roadnet"
)

func main() {
	g := roadnet.Generate(roadnet.GenParams{N: 50000, Seed: 11})
	idx, err := roadnet.NewIndex(roadnet.CH, g, roadnet.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d vertices; CH built in %v\n",
		g.NumVertices(), idx.Stats().BuildTime.Round(time.Millisecond))

	rng := rand.New(rand.NewSource(5))
	depots := make([]roadnet.VertexID, 5)
	for i := range depots {
		depots[i] = roadnet.VertexID(rng.Intn(g.NumVertices()))
	}
	customers := make([]roadnet.VertexID, 400)
	for i := range customers {
		customers[i] = roadnet.VertexID(rng.Intn(g.NumVertices()))
	}

	start := time.Now()
	matrix := roadnet.DistanceMatrix(idx, depots, customers)
	elapsed := time.Since(start)
	fmt.Printf("distance matrix %dx%d in %v (%.2f microsec per entry)\n",
		len(depots), len(customers), elapsed.Round(time.Microsecond),
		float64(elapsed.Microseconds())/float64(len(depots)*len(customers)))

	// Assign every customer to its closest depot.
	counts := make([]int, len(depots))
	var worst int64
	for j := range customers {
		best, bestD := 0, matrix[0][j]
		for i := 1; i < len(depots); i++ {
			if matrix[i][j] < bestD {
				best, bestD = i, matrix[i][j]
			}
		}
		counts[best]++
		if bestD > worst && bestD < roadnet.Infinity {
			worst = bestD
		}
	}
	fmt.Println("\ncustomers per depot:")
	for i, d := range depots {
		fmt.Printf("  depot %-6d serves %3d customers\n", d, counts[i])
	}
	fmt.Printf("worst assigned travel time: %d\n", worst)
}
