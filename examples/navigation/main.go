// Navigation: a commercial-navigation-style route between two far-apart
// locations, printed leg by leg with coordinates and cumulative travel
// time. Uses CH for the route (the paper's recommended all-rounder) and
// shows the shortcut-unpacking cost difference between a distance query
// and a full shortest-path query (§4.6).
package main

import (
	"fmt"
	"log"
	"time"

	"roadnet"
)

func main() {
	g, err := roadnet.GeneratePreset("FL") // ~22k vertices
	if err != nil {
		log.Fatal(err)
	}
	idx, err := roadnet.NewIndex(roadnet.CH, g, roadnet.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Pick two far-apart corners of the map.
	b := g.Bounds()
	var src, dst roadnet.VertexID = -1, -1
	for v := 0; v < g.NumVertices(); v++ {
		p := g.Coord(roadnet.VertexID(v))
		if p.X-b.MinX < 2000 && p.Y-b.MinY < 2000 {
			src = roadnet.VertexID(v)
		}
		if b.MaxX-p.X < 2000 && b.MaxY-p.Y < 2000 {
			dst = roadnet.VertexID(v)
		}
	}
	if src < 0 || dst < 0 {
		log.Fatal("could not find corner vertices")
	}

	// Distance-only query vs full path query (averaged over a few runs so
	// the comparison is not dominated by cold caches).
	const reps = 20
	idx.Distance(src, dst) // warm up
	t0 := time.Now()
	var dist int64
	for i := 0; i < reps; i++ {
		dist = idx.Distance(src, dst)
	}
	distTime := time.Since(t0) / reps
	t0 = time.Now()
	var path []roadnet.VertexID
	for i := 0; i < reps; i++ {
		path, _ = idx.ShortestPath(src, dst)
	}
	pathTime := time.Since(t0) / reps
	fmt.Printf("route %d -> %d: travel time %d, %d road segments\n", src, dst, dist, len(path)-1)
	fmt.Printf("distance query: %v, shortest path query: %v (unpacking overhead, see paper §4.6)\n",
		distTime, pathTime)

	// Print a condensed turn sheet: every 20th waypoint.
	fmt.Println("\nwaypoints (every 20th):")
	var cum int64
	prev := path[0]
	for i, v := range path {
		if i > 0 {
			w, _ := g.HasEdge(prev, v)
			cum += int64(w)
			prev = v
		}
		if i%20 == 0 || i == len(path)-1 {
			p := g.Coord(v)
			fmt.Printf("  #%-4d vertex %-7d at (%7d, %7d)  elapsed %d\n", i, v, p.X, p.Y, cum)
		}
	}
}
