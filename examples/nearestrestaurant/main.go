// Nearest restaurant: the paper's §2 motivating scenario for distance
// queries — "a user has a list of her favorite Italian restaurants, and she
// wants to identify the restaurant that is closest to her working place q.
// She may issue a distance query from q to each of the restaurants to find
// the nearest one."
//
// The example compares the baseline (bidirectional Dijkstra) with CH and
// TNR on exactly this workload, showing why indexed methods matter for
// interactive map services.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"roadnet"
)

func main() {
	g := roadnet.Generate(roadnet.GenParams{N: 25000, Seed: 7})
	rng := rand.New(rand.NewSource(99))

	// The user's workplace and her favorite restaurants, as vertices.
	workplace := roadnet.VertexID(rng.Intn(g.NumVertices()))
	restaurants := make([]roadnet.VertexID, 40)
	for i := range restaurants {
		restaurants[i] = roadnet.VertexID(rng.Intn(g.NumVertices()))
	}
	fmt.Printf("network: %d vertices; %d candidate restaurants\n",
		g.NumVertices(), len(restaurants))

	for _, method := range []roadnet.Method{roadnet.Dijkstra, roadnet.CH, roadnet.TNR} {
		idx, err := roadnet.NewIndex(method, g, roadnet.Config{})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		best, bestDist := roadnet.VertexID(-1), roadnet.Infinity
		for _, r := range restaurants {
			if d := idx.Distance(workplace, r); d < bestDist {
				best, bestDist = r, d
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("%-9s nearest = vertex %-6d travel time %-6d (%8.1f microsec for %d queries)\n",
			method, best, bestDist, float64(elapsed.Microseconds()), len(restaurants))
	}

	// Bonus (Appendix A): SILC supports k-nearest-neighbor queries over
	// *all* vertices, not just a candidate list — "which 5 points in the
	// network are closest to me?" Build on a smaller map (SILC is an
	// all-pairs index).
	small := roadnet.Generate(roadnet.GenParams{N: 2500, Seed: 8})
	silcIdx, err := roadnet.NewIndex(roadnet.SILC, small, roadnet.Config{
		SILC: roadnet.SILCOptions{EnableNearest: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	q := roadnet.VertexID(1234)
	start := time.Now()
	nearest, err := roadnet.NearestK(silcIdx, q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSILC 5-nearest-neighbors of vertex %d (%.1f microsec):\n",
		q, float64(time.Since(start).Microseconds()))
	for i, nb := range nearest {
		fmt.Printf("  %d. vertex %-6d travel time %d\n", i+1, nb.V, nb.Dist)
	}
}
