// Comparison: build all five techniques of the paper on one dataset and
// print a summary in the spirit of the paper's §4.7 — preprocessing time,
// index size, and mean query times for distance and shortest-path queries
// on a mixed workload.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"roadnet"
)

func main() {
	g, err := roadnet.GeneratePreset("NH") // ~2.4k vertices: PCPD still feasible
	if err != nil {
		log.Fatal(err)
	}
	sets, err := roadnet.LInfQuerySets(g, roadnet.WorkloadConfig{PairsPerSet: 200, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	// A mixed workload: one short-range, one mid-range, one long-range set.
	workload := append(append(sets[0].Pairs, sets[4].Pairs...), sets[9].Pairs...)

	fmt.Printf("dataset NH': %d vertices, %d edges; %d mixed queries\n\n",
		g.NumVertices(), g.NumEdges(), len(workload))
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tbuild\tindex KB\tdistance microsec\tpath microsec")
	for _, m := range roadnet.Methods() {
		idx, err := roadnet.NewIndex(m, g, roadnet.Config{})
		if err != nil {
			log.Fatal(err)
		}
		st := idx.Stats()

		distMicros := timePerQuery(func() {
			for _, p := range workload {
				idx.Distance(p.S, p.T)
			}
		}, len(workload))
		pathMicros := timePerQuery(func() {
			for _, p := range workload {
				idx.ShortestPath(p.S, p.T)
			}
		}, len(workload))
		fmt.Fprintf(tw, "%s\t%v\t%d\t%.2f\t%.2f\n",
			m, st.BuildTime.Round(1e6), st.IndexBytes/1024, distMicros, pathMicros)
	}
	tw.Flush()
	fmt.Println("\nExpected shape (paper §4.7): Dijkstra slowest by orders of magnitude;")
	fmt.Println("CH smallest index; SILC fastest shortest paths; PCPD dominated by SILC.")
}

func timePerQuery(f func(), n int) float64 {
	start := time.Now()
	f()
	return float64(time.Since(start).Nanoseconds()) / 1e3 / float64(n)
}
