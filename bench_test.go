// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact; see DESIGN.md for the experiment index).
//
// Each iteration performs the complete experiment — dataset generation,
// preprocessing, and the timed query workload — on reduced dataset sizes so
// `go test -bench=.` finishes in minutes. cmd/spexp runs the same
// experiments at any scale (use -full -queries 10000 for the paper's
// workload).
package roadnet_test

import (
	"io"
	"testing"

	"roadnet/internal/ch"
	"roadnet/internal/core"
	"roadnet/internal/exp"
	"roadnet/internal/gen"
	"roadnet/internal/tnr"
	"roadnet/internal/workload"
)

// benchConfig keeps every artifact benchmark at laptop scale: the three
// smallest Table 1 analogues and 100 queries per set.
func benchConfig() exp.Config {
	return exp.Config{
		Datasets:      []string{"DE", "NH", "ME"},
		QueriesPerSet: 100,
		Seed:          1,
		TNRGridSize:   16,
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(benchConfig(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B)               { runExperiment(b, "t1") }
func BenchmarkTable2DeltaRedundancy(b *testing.B)        { runExperiment(b, "t2") }
func BenchmarkFigure6SpaceAndPreprocessing(b *testing.B) { runExperiment(b, "f6") }
func BenchmarkFigure7SilcVsPcpd(b *testing.B)            { runExperiment(b, "f7") }
func BenchmarkFigure8DistanceVsN(b *testing.B)           { runExperiment(b, "f8") }
func BenchmarkFigure9DistanceVsQuerySet(b *testing.B)    { runExperiment(b, "f9") }
func BenchmarkFigure10PathVsN(b *testing.B)              { runExperiment(b, "f10") }
func BenchmarkFigure11PathVsQuerySet(b *testing.B)       { runExperiment(b, "f11") }
func BenchmarkAppendixBFlawedTNR(b *testing.B)           { runExperiment(b, "b") }
func BenchmarkFigure13TnrGridSpace(b *testing.B)         { runExperiment(b, "f13") }
func BenchmarkFigure14TnrVariantsDistance(b *testing.B)  { runExperiment(b, "f14") }
func BenchmarkFigure15TnrVariantsPath(b *testing.B)      { runExperiment(b, "f15") }
func BenchmarkFigure16DistanceVsNRSets(b *testing.B)     { runExperiment(b, "f16") }
func BenchmarkFigure17PathVsNRSets(b *testing.B)         { runExperiment(b, "f17") }

// --- per-operation micro-benchmarks ---
//
// The artifact benchmarks above time whole experiments; the benchmarks
// below report per-query costs of each technique on one mid-size network,
// which is the granularity the paper's running-time figures use.

type benchEnv struct {
	pairsNear, pairsFar []workload.Pair
	indexes             map[core.Method]core.Index
}

var sharedEnv *benchEnv

func env(b *testing.B) *benchEnv {
	b.Helper()
	if sharedEnv != nil {
		return sharedEnv
	}
	g := gen.Generate(gen.Params{N: 9000, Seed: 104})
	sets, err := workload.LInfSets(g, workload.Config{PairsPerSet: 200, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	hierarchy := ch.Build(g, ch.Options{})
	e := &benchEnv{
		pairsNear: sets[1].Pairs,
		pairsFar:  sets[len(sets)-1].Pairs,
		indexes:   map[core.Method]core.Index{},
	}
	for _, m := range append(core.AllMethods(), core.MethodALT) {
		ix, err := core.BuildIndex(m, g, core.Config{
			Hierarchy: hierarchy,
			TNR:       tnr.Options{GridSize: 16},
		})
		if err != nil {
			b.Fatal(err)
		}
		e.indexes[m] = ix
	}
	sharedEnv = e
	return e
}

func benchQueries(b *testing.B, m core.Method, far, path bool) {
	e := env(b)
	ix := e.indexes[m]
	pairs := e.pairsNear
	if far {
		pairs = e.pairsFar
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if path {
			ix.ShortestPath(p.S, p.T)
		} else {
			ix.Distance(p.S, p.T)
		}
	}
}

func BenchmarkDistanceNearDijkstra(b *testing.B) { benchQueries(b, core.MethodDijkstra, false, false) }
func BenchmarkDistanceNearCH(b *testing.B)       { benchQueries(b, core.MethodCH, false, false) }
func BenchmarkDistanceNearTNR(b *testing.B)      { benchQueries(b, core.MethodTNR, false, false) }
func BenchmarkDistanceNearSILC(b *testing.B)     { benchQueries(b, core.MethodSILC, false, false) }
func BenchmarkDistanceNearPCPD(b *testing.B)     { benchQueries(b, core.MethodPCPD, false, false) }
func BenchmarkDistanceNearALT(b *testing.B)      { benchQueries(b, core.MethodALT, false, false) }

func BenchmarkDistanceFarDijkstra(b *testing.B) { benchQueries(b, core.MethodDijkstra, true, false) }
func BenchmarkDistanceFarCH(b *testing.B)       { benchQueries(b, core.MethodCH, true, false) }
func BenchmarkDistanceFarTNR(b *testing.B)      { benchQueries(b, core.MethodTNR, true, false) }
func BenchmarkDistanceFarSILC(b *testing.B)     { benchQueries(b, core.MethodSILC, true, false) }
func BenchmarkDistanceFarPCPD(b *testing.B)     { benchQueries(b, core.MethodPCPD, true, false) }
func BenchmarkDistanceFarALT(b *testing.B)      { benchQueries(b, core.MethodALT, true, false) }

func BenchmarkPathFarDijkstra(b *testing.B) { benchQueries(b, core.MethodDijkstra, true, true) }
func BenchmarkPathFarCH(b *testing.B)       { benchQueries(b, core.MethodCH, true, true) }
func BenchmarkPathFarTNR(b *testing.B)      { benchQueries(b, core.MethodTNR, true, true) }
func BenchmarkPathFarSILC(b *testing.B)     { benchQueries(b, core.MethodSILC, true, true) }
func BenchmarkPathFarPCPD(b *testing.B)     { benchQueries(b, core.MethodPCPD, true, true) }

// --- preprocessing benchmarks (Figure 6(b) at per-build granularity) ---

func BenchmarkBuildCH(b *testing.B) {
	g := gen.Generate(gen.Params{N: 9000, Seed: 104})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Build(g, ch.Options{})
	}
}

func BenchmarkBuildTNR(b *testing.B) {
	g := gen.Generate(gen.Params{N: 9000, Seed: 104})
	h := ch.Build(g, ch.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tnr.Build(g, tnr.Options{GridSize: 16, Hierarchy: h}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildSILC(b *testing.B) {
	g := gen.Generate(gen.Params{N: 2400, Seed: 102})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildIndex(core.MethodSILC, g, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildPCPD(b *testing.B) {
	g := gen.Generate(gen.Params{N: 1000, Seed: 101})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildIndex(core.MethodPCPD, g, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
