// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - the CH contraction-order heuristic (edge difference + deleted
//     neighbors + depth vs single-term orderings),
//   - the CH witness-search budget (more shortcuts vs slower build),
//   - the TNR grid granularity (the Appendix E.1 trade-off at
//     per-configuration granularity),
//   - ALT landmark counts.
//
// Run with: go test -bench=Ablation -benchmem
package roadnet_test

import (
	"testing"

	"roadnet/internal/ch"
	"roadnet/internal/gen"
	"roadnet/internal/graph"
	"roadnet/internal/tnr"
	"roadnet/internal/workload"

	altpkg "roadnet/internal/alt"
	arcflagspkg "roadnet/internal/arcflags"
)

func ablationGraph() *graph.Graph {
	return gen.Generate(gen.Params{N: 9000, Seed: 104})
}

func ablationPairs(b *testing.B, g *graph.Graph) []workload.Pair {
	b.Helper()
	sets, err := workload.LInfSets(g, workload.Config{PairsPerSet: 100, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return sets[len(sets)-1].Pairs // far pairs stress the hierarchy most
}

// benchCHOrdering builds a hierarchy with the given ordering weights and
// reports shortcut count and far-query time.
func benchCHOrdering(b *testing.B, opts ch.Options) {
	g := ablationGraph()
	pairs := ablationPairs(b, g)
	h := ch.Build(g, opts)
	b.ReportMetric(float64(h.NumShortcuts()), "shortcuts")
	s := h.NewSearcher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		s.Distance(p.S, p.T)
	}
}

func BenchmarkAblationCHOrderingFull(b *testing.B) {
	benchCHOrdering(b, ch.Options{}) // edge diff + deleted + depth
}

func BenchmarkAblationCHOrderingEdgeDiffOnly(b *testing.B) {
	benchCHOrdering(b, ch.Options{EdgeDiffWeight: 1})
}

func BenchmarkAblationCHOrderingDepthOnly(b *testing.B) {
	// Depth-only ordering approximates an arbitrary (input) order; the
	// paper notes an inferior ordering can be quadratically bad.
	benchCHOrdering(b, ch.Options{DepthWeight: 1})
}

func benchCHWitnessLimit(b *testing.B, limit int) {
	g := ablationGraph()
	pairs := ablationPairs(b, g)
	h := ch.Build(g, ch.Options{WitnessSettleLimit: limit})
	b.ReportMetric(float64(h.NumShortcuts()), "shortcuts")
	s := h.NewSearcher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		s.Distance(p.S, p.T)
	}
}

// Stall-on-demand ablation: same hierarchy, stalling on vs off.
func benchCHStalling(b *testing.B, disable bool) {
	g := ablationGraph()
	pairs := ablationPairs(b, g)
	h := ch.Build(g, ch.Options{})
	s := h.NewSearcher()
	s.DisableStalling = disable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		s.Distance(p.S, p.T)
	}
}

func BenchmarkAblationCHStallingOn(b *testing.B)  { benchCHStalling(b, false) }
func BenchmarkAblationCHStallingOff(b *testing.B) { benchCHStalling(b, true) }

func BenchmarkAblationCHWitness4(b *testing.B)    { benchCHWitnessLimit(b, 4) }
func BenchmarkAblationCHWitness120(b *testing.B)  { benchCHWitnessLimit(b, 120) }
func BenchmarkAblationCHWitness1000(b *testing.B) { benchCHWitnessLimit(b, 1000) }

func benchTNRGrid(b *testing.B, gridSize int, hybrid bool) {
	g := ablationGraph()
	pairs := ablationPairs(b, g)
	h := ch.Build(g, ch.Options{})
	ix, err := tnr.Build(g, tnr.Options{GridSize: gridSize, Hybrid: hybrid, Hierarchy: h})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(ix.SizeBytes())/(1<<20), "MB")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		ix.Distance(p.S, p.T)
	}
}

func BenchmarkAblationTNRGrid8(b *testing.B)    { benchTNRGrid(b, 8, false) }
func BenchmarkAblationTNRGrid16(b *testing.B)   { benchTNRGrid(b, 16, false) }
func BenchmarkAblationTNRGrid32(b *testing.B)   { benchTNRGrid(b, 32, false) }
func BenchmarkAblationTNRHybrid16(b *testing.B) { benchTNRGrid(b, 16, true) }

func benchALTLandmarks(b *testing.B, k int) {
	g := ablationGraph()
	pairs := ablationPairs(b, g)
	ix := altpkg.Build(g, altpkg.Options{NumLandmarks: k})
	b.ReportMetric(float64(ix.SizeBytes())/(1<<20), "MB")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		ix.Distance(p.S, p.T)
	}
}

func BenchmarkAblationALT4Landmarks(b *testing.B)  { benchALTLandmarks(b, 4) }
func BenchmarkAblationALT16Landmarks(b *testing.B) { benchALTLandmarks(b, 16) }
func BenchmarkAblationALT32Landmarks(b *testing.B) { benchALTLandmarks(b, 32) }

// BenchmarkAblationArcFlagsVsCH checks the paper's Appendix A claim that
// Arc Flags is inferior to CH in both space and query time.
func benchArcFlags(b *testing.B, gridSize int) {
	g := ablationGraph()
	pairs := ablationPairs(b, g)
	ix := arcflagspkg.Build(g, arcflagspkg.Options{GridSize: gridSize})
	b.ReportMetric(float64(ix.SizeBytes())/(1<<20), "MB")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		ix.Distance(p.S, p.T)
	}
}

func BenchmarkAblationArcFlagsGrid4(b *testing.B)  { benchArcFlags(b, 4) }
func BenchmarkAblationArcFlagsGrid8(b *testing.B)  { benchArcFlags(b, 8) }
func BenchmarkAblationArcFlagsGrid16(b *testing.B) { benchArcFlags(b, 16) }
